#!/bin/sh
# Repo check: build, run the test suites, then smoke-test the static
# analyzers over the example MiniC inputs. Any unexpected exit fails.
#
#   scripts/check.sh
#
# The static smoke test asserts the documented verdicts: examples named
# unstable_*.c must produce detection-grade findings (exit 1), examples
# named stable_*.c must be clean (exit 0). Exit code 2 (parse/usage
# error) always fails.

set -eu

cd "$(dirname "$0")/.."

echo "== dune build"
dune build

echo "== dune runtest"
dune runtest

echo "== static smoke test over examples/*.c"
status=0
for f in examples/*.c; do
  [ -e "$f" ] || continue
  case "$(basename "$f")" in
    stable_*) want=0 ;;
    *) want=1 ;;
  esac
  set +e
  dune exec bin/compdiff_cli.exe -- static "$f" > /dev/null 2>&1
  got=$?
  set -e
  if [ "$got" -ne "$want" ]; then
    echo "FAIL $f: compdiff static exited $got, expected $want"
    status=1
  else
    echo "ok   $f (exit $got)"
  fi
done

echo "== linked-vs-reference executor smoke test"
# The linked-image executor (the default everywhere) must be
# byte-identical to the tree-walking reference interpreter on every
# example, across all 10 profiles, including arena reuse.
for f in examples/*.c; do
  [ -e "$f" ] || continue
  set +e
  dune exec bin/compdiff_cli.exe -- vmcheck "$f"
  got=$?
  set -e
  if [ "$got" -ne 0 ]; then
    echo "FAIL $f: compdiff vmcheck exited $got"
    status=1
  fi
done

echo "== parallel-vs-sequential oracle smoke test"
# The pooled+deduped oracle must produce byte-identical diff reports and
# exit codes to the sequential one on every example.
for f in examples/*.c; do
  [ -e "$f" ] || continue
  set +e
  out1=$(COMPDIFF_JOBS=1 dune exec bin/compdiff_cli.exe -- diff "$f" 2>&1)
  got1=$?
  out4=$(COMPDIFF_JOBS=4 dune exec bin/compdiff_cli.exe -- diff "$f" --jobs 4 2>&1)
  got4=$?
  set -e
  if [ "$got1" -ne "$got4" ] || [ "$out1" != "$out4" ]; then
    echo "FAIL $f: jobs=1 and jobs=4 disagree (exit $got1 vs $got4)"
    status=1
  else
    echo "ok   $f (jobs=1 == jobs=4, exit $got1)"
  fi
done

echo "== engine session smoke test"
# Cached vs fresh: the same diff with caching disabled and enabled must
# produce identical reports and exit codes, and a second cached juliet
# pass must be served from the session caches (nonzero hit rate).
for f in examples/unstable_uninit.c examples/stable_guarded.c; do
  set +e
  out0=$(dune exec bin/compdiff_cli.exe -- diff "$f" --cache-mb 0 2>&1)
  got0=$?
  out1=$(dune exec bin/compdiff_cli.exe -- diff "$f" --cache-mb 128 2>&1)
  got1=$?
  set -e
  if [ "$got0" -ne "$got1" ] || [ "$out0" != "$out1" ]; then
    echo "FAIL $f: cached and uncached diff disagree (exit $got0 vs $got1)"
    status=1
  else
    echo "ok   $f (cache-mb 0 == cache-mb 128, exit $got0)"
  fi
done
juliet_stats=$(dune exec bin/compdiff_cli.exe -- juliet --per-cwe 1 --stats 2>&1)
hits=$(printf '%s\n' "$juliet_stats" \
  | sed -n 's/^ *units *\([0-9]*\) hits.*/\1/p')
if [ -z "$hits" ] || [ "$hits" -eq 0 ]; then
  echo "FAIL juliet --stats: expected a nonzero unit-cache hit count"
  printf '%s\n' "$juliet_stats" | tail -5
  status=1
else
  echo "ok   juliet --stats (unit cache: $hits hits)"
fi

echo "== disk cache smoke test"
# Cross-process persistence: fresh processes sharing one --disk-cache
# directory. The second process starts with empty in-memory LRUs, so it
# must produce byte-identical verdicts *and* report nonzero disk hits in
# --stats (every hit it gets can only have come back from the store).
diskdir=$(mktemp -d)
set +e
disk1=$(dune exec bin/compdiff_cli.exe -- juliet --per-cwe 1 \
  --disk-cache "$diskdir" 2>&1)
dgot1=$?
disk2=$(dune exec bin/compdiff_cli.exe -- juliet --per-cwe 1 \
  --disk-cache "$diskdir" 2>&1)
dgot2=$?
disk3=$(dune exec bin/compdiff_cli.exe -- juliet --per-cwe 1 \
  --disk-cache "$diskdir" --stats 2>&1)
set -e
rm -rf "$diskdir"
dhits=$(printf '%s\n' "$disk3" \
  | sed -n 's/^ *disk *\([0-9]*\) hits.*/\1/p')
if [ "$dgot1" -ne "$dgot2" ] || [ "$disk1" != "$disk2" ]; then
  echo "FAIL disk cache: restarted process disagrees (exit $dgot1 vs $dgot2)"
  status=1
elif [ -z "$dhits" ] || [ "$dhits" -eq 0 ]; then
  echo "FAIL disk cache: expected nonzero disk hits in a restarted process"
  printf '%s\n' "$disk3" | tail -8
  status=1
else
  echo "ok   disk cache (verdicts identical across restart, $dhits disk hits)"
fi

echo "== metacheck smoke test"
# The metamorphic meta-checker on the canonical eval-order seed (the
# oracle diverges on argument evaluation order, every sanitizer is
# silent) must cross-validate a sanitizer FN and generate at least 5
# UB-preserving twins, all of which re-typecheck (exit 2 otherwise).
seed=$(mktemp --suffix=.c)
cat > "$seed" <<'SEED'
int *addr_string(int v) {
  static int buffer[8];
  buffer[0] = 48 + v;
  buffer[1] = 0;
  return buffer;
}
int main() {
  print("who-is %s tell %s\n", addr_string(1), addr_string(2));
  return 0;
}
SEED
set +e
meta_out=$(dune exec bin/compdiff_cli.exe -- metacheck "$seed" 2>&1)
got=$?
set -e
rm -f "$seed"
if [ "$got" -ne 0 ]; then
  echo "FAIL metacheck: exited $got (retype failure or error)"
  printf '%s\n' "$meta_out" | tail -5
  status=1
else
  twins=$(printf '%s\n' "$meta_out" \
    | sed -n 's/^preserving twins: \([0-9]*\)$/\1/p' | head -1)
  if [ -z "$twins" ] || [ "$twins" -lt 5 ]; then
    echo "FAIL metacheck: ${twins:-0} preserving twins < 5"
    status=1
  elif ! printf '%s\n' "$meta_out" | grep -q "cross-validated FN"; then
    echo "FAIL metacheck: known sanitizer FN not cross-validated"
    status=1
  else
    echo "ok   metacheck ($twins preserving twins, sanitizer FN cross-validated)"
  fi
fi

echo "== reduce smoke test"
# Reduce a known divergence and assert the contract: the reduced input
# is no larger than the original, and still diverges under compdiff diff.
red=$(mktemp)
set +e
reduce_out=$(dune exec bin/compdiff_cli.exe -- reduce examples/unstable_uninit.c \
  --input 'XYZQRS' --stats --out "$red" 2>&1)
got=$?
set -e
if [ "$got" -ne 1 ]; then
  echo "FAIL reduce: exited $got, expected 1 (divergence reduced)"
  status=1
else
  raw_size=$(wc -c < "$red.orig")
  red_size=$(wc -c < "$red")
  if [ "$red_size" -gt "$raw_size" ]; then
    echo "FAIL reduce: reduced input grew ($raw_size -> $red_size bytes)"
    status=1
  else
    set +e
    dune exec bin/compdiff_cli.exe -- diff examples/unstable_uninit.c \
      --input-file "$red" > /dev/null 2>&1
    diffgot=$?
    set -e
    if [ "$diffgot" -ne 1 ]; then
      echo "FAIL reduce: reduced input no longer flagged (diff exit $diffgot)"
      status=1
    else
      # the acceptance bar: median input reduction of at least 50%
      median=$(printf '%s\n' "$reduce_out" \
        | sed -n 's/.*median input reduction \([0-9]*\)%.*/\1/p')
      if [ -z "$median" ] || [ "$median" -lt 50 ]; then
        echo "FAIL reduce: median input reduction ${median:-?}% < 50%"
        status=1
      else
        echo "ok   reduce ($raw_size -> $red_size bytes, median ${median}%, still diverges)"
      fi
    fi
  fi
fi
echo "== explore smoke test"
# Time-travel the divergence the reducer just minimized: explore must
# record both sides at instruction granularity, pin a first diverging
# instruction on each (with a source-line attribution), and print a
# value diff for it.
set +e
explore_out=$(dune exec bin/compdiff_cli.exe -- explore examples/unstable_uninit.c \
  --input-file "$red" 2>&1)
got=$?
set -e
if [ "$got" -ne 1 ]; then
  echo "FAIL explore: exited $got, expected 1 (divergence explored)"
  printf '%s\n' "$explore_out" | tail -5
  status=1
elif ! printf '%s\n' "$explore_out" \
    | grep -q 'first diverging instruction: step [0-9]*, .*(line [0-9]*)'; then
  echo "FAIL explore: no line-attributed first diverging instruction"
  printf '%s\n' "$explore_out" | tail -8
  status=1
elif ! printf '%s\n' "$explore_out" | grep -q 'diff (.* probes): .* writes '; then
  echo "FAIL explore: no value diff at the diverging instruction"
  printf '%s\n' "$explore_out" | tail -8
  status=1
else
  at=$(printf '%s\n' "$explore_out" \
    | sed -n 's/.*first diverging instruction: step \([0-9]*\).*/\1/p' | head -1)
  echo "ok   explore (first diverging instruction at step $at, value diff shown)"
fi
rm -f "$red" "$red.orig"

echo "== labeled-corpus generator smoke test"
# 50 generated clean/injected pairs swept through every tool: all 50
# must survive print -> parse -> typecheck (the generator emits source),
# and no clean twin may diverge under the oracle -- a clean-twin
# divergence disproves the generator's UB-freedom argument.
set +e
gen_out=$(dune exec bin/compdiff_cli.exe -- gen --count 50 --report 2>&1)
got=$?
set -e
gen_fail=$(printf '%s\n' "$gen_out" \
  | sed -n 's/.*typecheck failures: \([0-9]*\)).*/\1/p' | head -1)
gen_clean=$(printf '%s\n' "$gen_out" \
  | sed -n 's/^clean-twin divergences: \([0-9]*\)$/\1/p' | head -1)
if [ "$got" -ne 0 ]; then
  echo "FAIL gen: exited $got"
  printf '%s\n' "$gen_out" | tail -5
  status=1
elif [ "${gen_fail:-1}" -ne 0 ]; then
  echo "FAIL gen: ${gen_fail:-?} typecheck failures (expected 0)"
  status=1
elif [ "${gen_clean:-1}" -ne 0 ]; then
  echo "FAIL gen: ${gen_clean:-?} clean-twin divergences (expected 0)"
  status=1
else
  echo "ok   gen (50 pairs, 0 typecheck failures, 0 clean-twin divergences)"
fi

echo "== serve daemon smoke test"
# A daemon on a Unix socket must serve concurrent clients verdicts that
# are byte-identical to the direct (in-process) diff path, then exit on
# its own via the idle timeout, removing its socket.  The daemon and
# its clients run the built binary directly: `dune exec` holds the
# build-directory lock for the program's whole lifetime, which would
# serialize the concurrent clients behind the daemon.
BIN=_build/default/bin/compdiff_cli.exe
sock="$(mktemp -u -t compdiff_check_XXXXXX).sock"
"$BIN" serve --socket "$sock" --idle-timeout 10 --quiet &
serve_pid=$!
i=0
while [ ! -S "$sock" ] && [ $i -lt 100 ]; do sleep 0.1; i=$((i + 1)); done
if [ ! -S "$sock" ]; then
  echo "FAIL serve: daemon socket never appeared"
  status=1
else
  set +e
  "$BIN" connect --socket "$sock" --ping > /dev/null 2>&1
  pinged=$?
  set -e
  if [ "$pinged" -ne 0 ]; then
    echo "FAIL serve: ping failed"
    status=1
  fi
  # two clients at once, each asserting daemon == direct per example
  serve_client() {
    for f in examples/*.c; do
      [ -e "$f" ] || continue
      set +e
      direct=$("$BIN" diff "$f" 2>&1)
      dgot=$?
      viad=$("$BIN" diff "$f" --daemon "$sock" 2>&1)
      vgot=$?
      set -e
      if [ "$dgot" -ne "$vgot" ] || [ "$direct" != "$viad" ]; then
        echo "FAIL serve[$1] $f: daemon and direct disagree (exit $dgot vs $vgot)"
        return 1
      fi
    done
  }
  client_status=0
  serve_client A & ca=$!
  serve_client B & cb=$!
  wait $ca || client_status=1
  wait $cb || client_status=1
  if [ "$client_status" -ne 0 ]; then
    status=1
  else
    echo "ok   serve (2 concurrent clients, daemon == direct on every example)"
  fi
fi
# with no clients left, the idle timeout must shut the daemon down
set +e
wait $serve_pid
served=$?
set -e
if [ "$served" -ne 0 ]; then
  echo "FAIL serve: daemon exited $served"
  status=1
elif [ -e "$sock" ]; then
  echo "FAIL serve: socket file left behind after idle shutdown"
  status=1
else
  echo "ok   serve (idle timeout shutdown, socket removed)"
fi

exit $status
