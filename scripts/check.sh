#!/bin/sh
# Repo check: build, run the test suites, then smoke-test the static
# analyzers over the example MiniC inputs. Any unexpected exit fails.
#
#   scripts/check.sh
#
# The static smoke test asserts the documented verdicts: examples named
# unstable_*.c must produce detection-grade findings (exit 1), examples
# named stable_*.c must be clean (exit 0). Exit code 2 (parse/usage
# error) always fails.

set -eu

cd "$(dirname "$0")/.."

echo "== dune build"
dune build

echo "== dune runtest"
dune runtest

echo "== static smoke test over examples/*.c"
status=0
for f in examples/*.c; do
  [ -e "$f" ] || continue
  case "$(basename "$f")" in
    stable_*) want=0 ;;
    *) want=1 ;;
  esac
  set +e
  dune exec bin/compdiff_cli.exe -- static "$f" > /dev/null 2>&1
  got=$?
  set -e
  if [ "$got" -ne "$want" ]; then
    echo "FAIL $f: compdiff static exited $got, expected $want"
    status=1
  else
    echo "ok   $f (exit $got)"
  fi
done

exit $status
