#!/bin/sh
# Oracle + VM benchmarks: differential-oracle throughput (checks/sec)
# sequential-naive vs pooled+deduped+incremental plus the Juliet dedup
# ratios (BENCH_oracle.json), raw executor throughput of the
# tree-walking reference vs the linked-image executor with persistent
# arenas (BENCH_vm.json), and metamorphic twin-analysis throughput
# batched vs naive (BENCH_metacheck.json), and serve-daemon request
# throughput under concurrent clients vs the process-per-request
# baseline (BENCH_serve.json). All JSONs land in the repo root.
#
#   scripts/bench.sh            # oracle + vm + engine + serve + metacheck
#   scripts/bench.sh all        # every bench section (tables + figures)
#
# The JSONs report execs/sec, the dedup/escalation savings, the
# speedups, and a verdicts_match cross-validation bit. Each bench aborts
# if an optimized path ever disagrees with its naive reference.

set -eu

cd "$(dirname "$0")/.."

echo "== dune build"
dune build

if [ "${1:-oracle}" = "all" ]; then
  echo "== full bench suite"
  dune exec bench/main.exe
else
  echo "== oracle + vm + trace + engine + serve + metacheck + gen benches (write BENCH_*.json)"
  dune exec bench/main.exe -- oracle vm trace engine serve metacheck gen
fi

echo "== BENCH_oracle.json"
cat BENCH_oracle.json
echo "== BENCH_vm.json"
cat BENCH_vm.json
echo "== BENCH_trace.json"
cat BENCH_trace.json
echo "== BENCH_engine.json"
cat BENCH_engine.json
echo "== BENCH_serve.json"
cat BENCH_serve.json
echo "== BENCH_metacheck.json"
cat BENCH_metacheck.json
echo "== BENCH_gen.json"
cat BENCH_gen.json

# Regression gate: the linked-image executor must stay at least 2x the
# tree-walking reference, every optimized path must agree with its naive
# reference, and the restart-warm engine pass must actually be served
# from the disk store.  A bench run that "succeeds" below these floors
# is a perf regression, so fail loudly.
echo "== regression gate"
gate_status=0

vm_speedup=$(sed -n 's/^ *"speedup": \([0-9.]*\),*$/\1/p' BENCH_vm.json | head -1)
vm_match=$(sed -n 's/^ *"verdicts_match": \(true\|false\).*/\1/p' BENCH_vm.json | head -1)
if [ -z "$vm_speedup" ] || ! awk "BEGIN{exit !($vm_speedup >= 2.0)}"; then
  echo "FAIL gate: vm speedup ${vm_speedup:-?}x < 2.0x"
  gate_status=1
else
  echo "ok   gate: vm speedup ${vm_speedup}x >= 2.0x"
fi
if [ "$vm_match" != "true" ]; then
  echo "FAIL gate: vm verdicts_match is ${vm_match:-missing}"
  gate_status=1
else
  echo "ok   gate: vm verdicts match"
fi

# Trace gates: the Silent observer level must not tax the oracle's hot
# path (>= 95% of BENCH_vm's linked execs/sec), Steps recording must
# stay within its 5x budget, and every recorded run must return the
# exact result the silent run did (observation never perturbs).
trace_silent=$(sed -n 's/.*"silent": { "seconds": [0-9.]*, "execs_per_sec": \([0-9.]*\).*/\1/p' BENCH_trace.json | head -1)
vm_linked=$(sed -n 's/.*"linked": { "seconds": [0-9.]*, "execs_per_sec": \([0-9.]*\).*/\1/p' BENCH_vm.json | head -1)
trace_slowdown=$(sed -n 's/^ *"steps_slowdown": \([0-9.]*\),*$/\1/p' BENCH_trace.json | head -1)
trace_target=$(sed -n 's/^ *"steps_slowdown_target_met": \(true\|false\).*/\1/p' BENCH_trace.json | head -1)
trace_replay=$(sed -n 's/^ *"replay_match": \(true\|false\).*/\1/p' BENCH_trace.json | head -1)
if [ -z "$trace_silent" ] || [ -z "$vm_linked" ] ||
   ! awk "BEGIN{exit !($trace_silent >= 0.95 * $vm_linked)}"; then
  echo "FAIL gate: silent-observer throughput ${trace_silent:-?} < 95% of linked ${vm_linked:-?}"
  gate_status=1
else
  echo "ok   gate: silent observer keeps linked throughput (${trace_silent} vs ${vm_linked} execs/s)"
fi
if [ "$trace_target" != "true" ]; then
  echo "FAIL gate: steps recording slowdown ${trace_slowdown:-?}x > 5x"
  gate_status=1
else
  echo "ok   gate: steps recording slowdown ${trace_slowdown}x <= 5x"
fi
if [ "$trace_replay" != "true" ]; then
  echo "FAIL gate: trace replay_match is ${trace_replay:-missing}"
  gate_status=1
else
  echo "ok   gate: recorded runs byte-identical to silent runs"
fi

eng_match=$(sed -n 's/^ *"verdicts_match": \(true\|false\).*/\1/p' BENCH_engine.json | head -1)
eng_disk_hits=$(sed -n 's/.*"restart_warm": {.*"disk_hits": \([0-9]*\),.*/\1/p' BENCH_engine.json | head -1)
if [ "$eng_match" != "true" ]; then
  echo "FAIL gate: engine verdicts_match is ${eng_match:-missing}"
  gate_status=1
else
  echo "ok   gate: engine verdicts match"
fi
if [ -z "$eng_disk_hits" ] || [ "$eng_disk_hits" -eq 0 ]; then
  echo "FAIL gate: engine restart-warm pass had ${eng_disk_hits:-no} disk hits"
  gate_status=1
else
  echo "ok   gate: engine restart-warm served $eng_disk_hits disk hits"
fi

serve_target=$(sed -n 's/^ *"speedup_target_met": \(true\|false\).*/\1/p' BENCH_serve.json | head -1)
serve_match=$(sed -n 's/^ *"verdicts_match": \(true\|false\).*/\1/p' BENCH_serve.json | head -1)
serve_speedup=$(sed -n 's/^ *"speedup": \([0-9.]*\),*$/\1/p' BENCH_serve.json | head -1)
if [ "$serve_target" != "true" ]; then
  echo "FAIL gate: serve 4-client speedup ${serve_speedup:-?}x < 3.0x over process-per-request"
  gate_status=1
else
  echo "ok   gate: serve 4-client speedup ${serve_speedup}x >= 3.0x"
fi
if [ "$serve_match" != "true" ]; then
  echo "FAIL gate: serve verdicts_match is ${serve_match:-missing}"
  gate_status=1
else
  echo "ok   gate: serve daemon verdicts match the direct oracle"
fi

# Generator gates: emission throughput (generate + print + re-typecheck)
# must clear 500 programs/sec, no clean twin may diverge (the soundness
# argument), the measured oracle FN rate must be reported, and the
# session oracle must agree with the sequential naive one on the corpus.
gen_target=$(sed -n 's/^ *"per_sec_target_met": \(true\|false\).*/\1/p' BENCH_gen.json | head -1)
gen_per_sec=$(sed -n 's/^ *"per_sec": \([0-9.]*\),*$/\1/p' BENCH_gen.json | head -1)
gen_clean=$(sed -n 's/^ *"clean_divergences": \([0-9]*\),*$/\1/p' BENCH_gen.json | head -1)
gen_fn=$(sed -n 's/^ *"oracle_fn_rate": \([0-9.]*\),*$/\1/p' BENCH_gen.json | head -1)
gen_match=$(sed -n 's/^ *"verdicts_match": \(true\|false\).*/\1/p' BENCH_gen.json | head -1)
if [ "$gen_target" != "true" ]; then
  echo "FAIL gate: generator throughput ${gen_per_sec:-?}/s < 500/s"
  gate_status=1
else
  echo "ok   gate: generator throughput ${gen_per_sec}/s >= 500/s"
fi
if [ -z "$gen_clean" ] || [ "$gen_clean" -ne 0 ]; then
  echo "FAIL gate: ${gen_clean:-?} clean-twin divergences (soundness)"
  gate_status=1
else
  echo "ok   gate: 0 clean-twin divergences"
fi
if [ -z "$gen_fn" ]; then
  echo "FAIL gate: oracle FN rate missing from BENCH_gen.json"
  gate_status=1
else
  echo "ok   gate: oracle FN rate reported ($gen_fn)"
fi
if [ "$gen_match" != "true" ]; then
  echo "FAIL gate: gen naive/session verdicts_match is ${gen_match:-missing}"
  gate_status=1
else
  echo "ok   gate: gen naive/session oracle verdicts match"
fi

exit $gate_status
