#!/bin/sh
# Oracle benchmark: measures differential-oracle throughput (checks/sec)
# sequential-naive vs pooled+deduped+incremental, and the Juliet dedup
# ratios, then writes BENCH_oracle.json into the repo root.
#
#   scripts/bench.sh            # oracle bench only (BENCH_oracle.json)
#   scripts/bench.sh all        # every bench section (tables + figures)
#
# The JSON reports execs/sec (oracle checks per second), the dedup and
# escalation savings, the parallel/sequential speedup, and a
# verdicts_match cross-validation bit. The bench aborts if the optimized
# oracle ever disagrees with the naive reference.

set -eu

cd "$(dirname "$0")/.."

echo "== dune build"
dune build

if [ "${1:-oracle}" = "all" ]; then
  echo "== full bench suite"
  dune exec bench/main.exe
else
  echo "== oracle bench (writes BENCH_oracle.json)"
  dune exec bench/main.exe -- oracle
fi

echo "== BENCH_oracle.json"
cat BENCH_oracle.json
