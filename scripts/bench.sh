#!/bin/sh
# Oracle + VM benchmarks: differential-oracle throughput (checks/sec)
# sequential-naive vs pooled+deduped+incremental plus the Juliet dedup
# ratios (BENCH_oracle.json), raw executor throughput of the
# tree-walking reference vs the linked-image executor with persistent
# arenas (BENCH_vm.json), and metamorphic twin-analysis throughput
# batched vs naive (BENCH_metacheck.json). All JSONs land in the repo
# root.
#
#   scripts/bench.sh            # oracle + vm + engine + metacheck benches
#   scripts/bench.sh all        # every bench section (tables + figures)
#
# The JSONs report execs/sec, the dedup/escalation savings, the
# speedups, and a verdicts_match cross-validation bit. Each bench aborts
# if an optimized path ever disagrees with its naive reference.

set -eu

cd "$(dirname "$0")/.."

echo "== dune build"
dune build

if [ "${1:-oracle}" = "all" ]; then
  echo "== full bench suite"
  dune exec bench/main.exe
else
  echo "== oracle + vm + engine + metacheck benches (write BENCH_*.json)"
  dune exec bench/main.exe -- oracle vm engine metacheck
fi

echo "== BENCH_oracle.json"
cat BENCH_oracle.json
echo "== BENCH_vm.json"
cat BENCH_vm.json
echo "== BENCH_engine.json"
cat BENCH_engine.json
echo "== BENCH_metacheck.json"
cat BENCH_metacheck.json
