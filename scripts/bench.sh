#!/bin/sh
# Oracle + VM benchmarks: differential-oracle throughput (checks/sec)
# sequential-naive vs pooled+deduped+incremental plus the Juliet dedup
# ratios (BENCH_oracle.json), and raw executor throughput of the
# tree-walking reference vs the linked-image executor with persistent
# arenas (BENCH_vm.json). Both JSONs land in the repo root.
#
#   scripts/bench.sh            # oracle + vm + engine benches (three JSONs)
#   scripts/bench.sh all        # every bench section (tables + figures)
#
# The JSONs report execs/sec, the dedup/escalation savings, the
# speedups, and a verdicts_match cross-validation bit. Each bench aborts
# if an optimized path ever disagrees with its naive reference.

set -eu

cd "$(dirname "$0")/.."

echo "== dune build"
dune build

if [ "${1:-oracle}" = "all" ]; then
  echo "== full bench suite"
  dune exec bench/main.exe
else
  echo "== oracle + vm + engine benches (write BENCH_oracle.json, BENCH_vm.json, BENCH_engine.json)"
  dune exec bench/main.exe -- oracle vm engine
fi

echo "== BENCH_oracle.json"
cat BENCH_oracle.json
echo "== BENCH_vm.json"
cat BENCH_vm.json
echo "== BENCH_engine.json"
cat BENCH_engine.json
