examples/evalorder_tcpdump.mli:
