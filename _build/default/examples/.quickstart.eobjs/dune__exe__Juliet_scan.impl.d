examples/juliet_scan.ml: Juliet List Printf
