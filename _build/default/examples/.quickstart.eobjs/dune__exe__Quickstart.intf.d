examples/quickstart.mli:
