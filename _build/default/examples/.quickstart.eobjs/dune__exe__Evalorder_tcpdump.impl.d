examples/evalorder_tcpdump.ml: Compdiff Hashtbl List Minic Option Printf Sanitizers String
