examples/unstable_overflow.ml: Array Cdcompiler Cdvm Compdiff Minic Printf
