examples/fuzz_campaign.ml: Compdiff Fuzz List Option Printf Projects Sanitizers String
