examples/juliet_scan.mli:
