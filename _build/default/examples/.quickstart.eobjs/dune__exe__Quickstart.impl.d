examples/quickstart.ml: Array Cdcompiler Cdvm Compdiff Minic Printf
