examples/unstable_overflow.mli:
