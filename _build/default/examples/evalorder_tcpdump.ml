(* The three illustrative examples of Section 2, reproduced:

     dune exec examples/evalorder_tcpdump.exe

   - Listing 2 (binutils): relational comparison of pointers to different
     objects -- each implementation's layout decides the answer.
   - Listing 3 (tcpdump):  two calls sharing a static buffer passed as %s
     arguments -- the evaluation order decides what gets printed.
   - Listing 4 (exiv2):    a variable left uninitialized on the empty
     input -- the junk value is implementation-dependent.

   Each also shows why the matching sanitizer stays silent. *)

let check title source input =
  let tp =
    match Minic.frontend_of_source source with
    | Ok tp -> tp
    | Error msg -> failwith (title ^ ": " ^ msg)
  in
  Printf.printf "=== %s ===\n" title;
  let oracle = Compdiff.Oracle.create tp in
  (match Compdiff.Oracle.check oracle ~input with
  | Compdiff.Oracle.Diverge obs ->
    let by_out = Hashtbl.create 4 in
    List.iter
      (fun (name, (o : Compdiff.Oracle.observation)) ->
        let prev = Option.value ~default:[] (Hashtbl.find_opt by_out o.Compdiff.Oracle.output) in
        Hashtbl.replace by_out o.Compdiff.Oracle.output (name :: prev))
      obs;
    Hashtbl.iter
      (fun out names ->
        Printf.printf "  %-45s <- %s\n"
          (String.trim out)
          (String.concat "," (List.rev names)))
      by_out
  | Compdiff.Oracle.Agree _ -> Printf.printf "  (stable)\n");
  (* sanitizer check *)
  List.iter
    (fun kind ->
      let detected = Sanitizers.San.detects kind tp ~inputs:[ input ] in
      if detected then
        Printf.printf "  %s: reports\n" (Sanitizers.San.name kind))
    Sanitizers.San.all;
  if
    not
      (List.exists
         (fun k -> Sanitizers.San.detects k tp ~inputs:[ input ])
         Sanitizers.San.all)
  then Printf.printf "  (no sanitizer detects this)\n";
  print_newline ()

let listing2 =
  {|
int section_a[4];
int section_b[4];
int main() {
  int *saved_start = section_a;
  int *look_for = section_b;
  if (look_for <= saved_start) { print("backward\n"); }
  else { print("forward\n"); }
  return 0;
}
|}

let listing3 =
  {|
int *get_linkaddr_string(int v) {
  static int buffer[8];
  buffer[0] = 48 + v % 10;
  buffer[1] = 0;
  return buffer;
}
int main() {
  print("who-is %s tell %s\n", get_linkaddr_string(1), get_linkaddr_string(2));
  return 0;
}
|}

let listing4 =
  {|
int main() {
  int l;
  int c = getchar();                 // "is >> l" on an empty stream
  if (c >= 48 && c < 58) { l = c - 48; }
  print("0x%x\n", l & 65535);
  return 0;
}
|}

let () =
  check "Listing 2: invalid pointer comparison (binutils)" listing2 "";
  check "Listing 3: evaluation order with conflicting side effects (tcpdump)"
    listing3 "";
  check "Listing 4: use of uninitialized variable (exiv2)" listing4 ""
