(* Listing 1 of the paper, end to end.

     dune exec examples/unstable_overflow.exe

   The guard `offset + len < offset` can only be true after a signed
   overflow, which is undefined -- so an optimizing implementation deletes
   it. This example shows (a) the IR with and without the guard, (b) the
   divergent executions, (c) the oracle's bug report. *)

let source =
  {|
int dump_data(int offset, int len) {
  int size = 100;
  if (offset + len > size) { return -1; }
  if (offset + len < offset) { return -1; }   // the unstable guard
  print("dumping %d bytes at %d\n", len, offset);
  return 0;
}
int main() {
  int r = dump_data(2147483547, 101);   // INT_MAX - 100, as in the paper
  print("r=%d\n", r);
  return 0;
}
|}

(* instruction count of dump_data: the optimized build is visibly shorter
   because the folded guard and its arm were deleted *)
let count_instrs (u : Cdcompiler.Ir.unit_) name =
  match Cdcompiler.Ir.func u name with
  | None -> 0
  | Some f -> Array.length f.Cdcompiler.Ir.code

let () =
  let tp =
    match Minic.frontend_of_source source with
    | Ok tp -> tp
    | Error msg -> failwith msg
  in
  (* (a) the optimizing build has one fewer conditional branch: the
     overflow guard was folded away under the no-UB assumption *)
  let u0 = Cdcompiler.Pipeline.compile (Cdcompiler.Profiles.gccx "O0") tp in
  let u2 = Cdcompiler.Pipeline.compile (Cdcompiler.Profiles.clangx "O2") tp in
  Printf.printf "instructions in dump_data:  gccx-O0 = %d   clangx-O2 = %d\n"
    (count_instrs u0 "dump_data") (count_instrs u2 "dump_data");

  (* (b) run both: the unoptimized build honours the wrapped comparison
     and refuses; the optimized build dumps out-of-range memory *)
  let run u =
    (Cdvm.Exec.run ~config:Cdvm.Exec.default_config u).Cdvm.Exec.stdout
  in
  Printf.printf "\ngccx-O0 output:\n%s\nclangx-O2 output:\n%s\n" (run u0) (run u2);

  (* (c) the oracle report, in the format of the paper's bug reports *)
  let oracle = Compdiff.Oracle.create tp in
  match Compdiff.Oracle.check oracle ~input:"" with
  | Compdiff.Oracle.Diverge obs ->
    print_string (Compdiff.Oracle.report_to_string ~input:"" obs)
  | Compdiff.Oracle.Agree _ -> print_endline "unexpectedly stable!"
