(* Quickstart: the 60-second tour of the public API.

     dune exec examples/quickstart.exe

   1. Write a MiniC program (here: parsed from a string; see the Builder
      combinators for programmatic construction).
   2. Compile it with two compiler implementations.
   3. Run both binaries on the same input.
   4. Ask the CompDiff oracle whether the program is stable. *)

let source =
  {|
int main() {
  int l;                      // uninitialized
  int c = getchar();
  if (c > 64) { l = c; }      // initialized only for some inputs
  print("l=%d\n", l);
  return 0;
}
|}

let () =
  (* 1. front end: parse + type-check once; every backend shares it *)
  let tp =
    match Minic.frontend_of_source source with
    | Ok tp -> tp
    | Error msg -> failwith msg
  in

  (* 2. two "compiler implementations": unoptimizing gccx, aggressive clangx *)
  let b_gcc = Cdcompiler.Pipeline.compile (Cdcompiler.Profiles.gccx "O0") tp in
  let b_clang = Cdcompiler.Pipeline.compile (Cdcompiler.Profiles.clangx "O3") tp in

  (* 3. run both on an input that leaves [l] uninitialized *)
  let run u =
    Cdvm.Exec.run ~config:{ Cdvm.Exec.default_config with Cdvm.Exec.input = "!" } u
  in
  Printf.printf "gccx-O0   says: %s" (run b_gcc).Cdvm.Exec.stdout;
  Printf.printf "clangx-O3 says: %s" (run b_clang).Cdvm.Exec.stdout;

  (* 4. the oracle does this across all ten implementations and compares
        checksums of normalized outputs *)
  let oracle = Compdiff.Oracle.create tp in
  (match Compdiff.Oracle.check oracle ~input:"!" with
  | Compdiff.Oracle.Diverge obs ->
    Printf.printf "\nCompDiff verdict: UNSTABLE (%d behaviour classes)\n"
      (1
      + Array.fold_left max 0 (Compdiff.Oracle.partition oracle obs))
  | Compdiff.Oracle.Agree _ -> Printf.printf "\nCompDiff verdict: stable\n");

  (* on a well-defined input every legal implementation agrees *)
  match Compdiff.Oracle.check oracle ~input:"Z" with
  | Compdiff.Oracle.Agree obs ->
    Printf.printf "input \"Z\" is stable everywhere: %s" obs.Compdiff.Oracle.output
  | Compdiff.Oracle.Diverge _ -> assert false
