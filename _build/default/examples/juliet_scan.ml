(* A small slice of the Table 3 evaluation.

     dune exec examples/juliet_scan.exe

   Generates a few variants of each CWE category, runs the three static
   analyzers, the three sanitizers and CompDiff on each, and prints the
   per-category comparison (the full suite runs in bench/main.exe). *)

let () =
  let tests = Juliet.Suite.quick ~per_cwe:6 () in
  Printf.printf "generated %d test programs across %d CWEs\n%!"
    (List.length tests)
    (List.length (Juliet.Suite.count_by_cwe tests));
  let evals = Juliet.Eval.evaluate_suite tests in
  let rows = Juliet.Eval.aggregate evals in
  Printf.printf "%-36s %5s %9s %9s %9s %7s\n" "category" "tests" "Coverity~"
    "sanitizers" "CompDiff" "unique";
  List.iter
    (fun (r : Juliet.Eval.row) ->
      Printf.printf "%-36s %5d %8.0f%% %8.0f%% %8.0f%% %7d\n" r.Juliet.Eval.label
        r.Juliet.Eval.total
        (100. *. fst r.Juliet.Eval.r_coverity)
        (100. *. r.Juliet.Eval.r_san_total)
        (100. *. r.Juliet.Eval.r_compdiff)
        r.Juliet.Eval.unique)
    rows;
  let fps = Juliet.Eval.false_positive_counts evals in
  Printf.printf "\nfalse positives on the fixed (good) variants:\n";
  List.iter (fun (n, c) -> Printf.printf "  %-9s %d\n" n c) fps
