bench/ablations.ml: Cdcompiler Compdiff Fuzz Juliet List Minic Option Printf Projects
