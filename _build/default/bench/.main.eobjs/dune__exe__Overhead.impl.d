bench/overhead.ml: Analyze Bechamel Benchmark Cdcompiler Cdutil Cdvm Compdiff Fuzz Hashtbl Instance Lazy List Measure Minic Option Printf Projects Staged String Test Time Toolkit Unix
