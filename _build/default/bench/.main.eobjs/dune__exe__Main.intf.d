bench/main.mli:
