bench/table_projects.ml: Cdcompiler Cdutil Compdiff List Printf Projects Stats String Tablefmt Unix
