bench/main.ml: Ablations Array List Overhead Printf String Sys Table_juliet Table_projects
