bench/table_juliet.ml: Cdcompiler Cdutil Compdiff Juliet List Printf Stats String Tablefmt Unix
