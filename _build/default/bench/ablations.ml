(* Ablations for the design choices DESIGN.md calls out:

   A1. comparing (output, status) vs output only;
   A2. output normalization on the timestamped target (RQ5);
   A3. timeout escalation (RQ6) on vs off;
   A4. the recommended 2-subset vs the worst 2-subset (Section 4.2). *)

let sample_tests () = Juliet.Suite.quick ~per_cwe:6 ()

let a1_status_comparison () =
  let tests = sample_tests () in
  let count compare_status =
    List.length
      (List.filter
         (fun (t : Juliet.Testcase.t) ->
           let tp = Juliet.Testcase.frontend_bad t in
           let o = Compdiff.Oracle.create ~compare_status ~fuel:100_000 tp in
           Compdiff.Oracle.detects o ~inputs:t.Juliet.Testcase.inputs)
         tests)
  in
  let with_status = count true in
  let without = count false in
  Printf.printf
    "A1 oracle scope: %d/%d bugs with (output,status), %d/%d with output only\n"
    with_status (List.length tests) without (List.length tests);
  Printf.printf
    "   (crash-kind and exit-code divergences vanish without status comparison)\n\n"

let a2_normalization () =
  let p = Option.get (Projects.Registry.by_name "wireshark") in
  let tp = Projects.Project.frontend p in
  let benign_inputs = [ "TAB0"; "F\003abc"; "" ] in
  let count normalize =
    List.length
      (List.filter
         (fun input ->
           let o = Compdiff.Oracle.create ~normalize ~fuel:60_000 tp in
           Compdiff.Oracle.is_divergence (Compdiff.Oracle.check o ~input))
         benign_inputs)
  in
  let raw = count Compdiff.Normalize.identity in
  let filtered = count p.Projects.Project.normalize in
  Printf.printf
    "A2 normalization (wireshark, benign inputs): %d/%d false divergences raw, %d/%d with the timestamp filter\n\n"
    raw (List.length benign_inputs) filtered (List.length benign_inputs)

let a3_timeout_escalation () =
  (* needs more fuel at -O0 than the base budget; terminates everywhere *)
  let src =
    "int main() {\n\
     \  int s = 0;\n\
     \  for (int i = 0; i < 8000; i++) { s += i % 7; }\n\
     \  print(\"%d\\n\", s);\n\
     \  return 0;\n\
     }"
  in
  let tp = match Minic.frontend_of_source src with Ok tp -> tp | Error e -> failwith e in
  let verdict ~max_fuel =
    let o = Compdiff.Oracle.create ~fuel:100_000 ~max_fuel tp in
    Compdiff.Oracle.is_divergence (Compdiff.Oracle.check o ~input:"")
  in
  Printf.printf
    "A3 timeout escalation: partial-timeout reported as divergence without escalation: %b; with escalation: %b\n\n"
    (verdict ~max_fuel:100_000) (verdict ~max_fuel:4_000_000)

let a4_subset_choice () =
  let tests = sample_tests () in
  let detect profiles (t : Juliet.Testcase.t) =
    let tp = Juliet.Testcase.frontend_bad t in
    let o = Compdiff.Oracle.create ~profiles ~fuel:100_000 tp in
    Compdiff.Oracle.detects o ~inputs:t.Juliet.Testcase.inputs
  in
  let count profiles = List.length (List.filter (detect profiles) tests) in
  let recommended = [ Cdcompiler.Profiles.gccx "O0"; Cdcompiler.Profiles.clangx "O3" ] in
  let worst = [ Cdcompiler.Profiles.gccx "O2"; Cdcompiler.Profiles.gccx "O3" ] in
  Printf.printf
    "A4 subset choice on %d sampled bugs: full set %d, {gccx-O0, clangx-O3} %d, {gccx-O2, gccx-O3} %d\n\n"
    (List.length tests)
    (count Cdcompiler.Profiles.all)
    (count recommended) (count worst)

(* A5: the Section 5 future-work extension implemented here -- feeding
   new divergence signatures back into the queue as interesting inputs *)
let a5_divergence_feedback () =
  let p = Option.get (Projects.Registry.by_name "libtiff") in
  let tp = Projects.Project.frontend p in
  let unique feedback =
    let c =
      Fuzz.Compdiff_afl.run
        ~config:
          {
            Fuzz.Compdiff_afl.default_config with
            Fuzz.Compdiff_afl.max_execs = 2_000;
            seeds = p.Projects.Project.seeds;
            fuel = 60_000;
            divergence_feedback = feedback;
          }
        tp
    in
    Compdiff.Triage.unique_count c.Fuzz.Compdiff_afl.diffs
  in
  Printf.printf
    "A5 divergence feedback (libtiff, 2000 execs): %d unique signatures without, %d with the NEZHA-style feedback\n\n"
    (unique false) (unique true)

let run () =
  print_endline "Ablations";
  print_endline "=========";
  a1_status_comparison ();
  a2_normalization ();
  a3_timeout_escalation ();
  a4_subset_choice ();
  a5_divergence_feedback ()
