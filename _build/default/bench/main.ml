(* Benchmark harness entry point: regenerates every table and figure of
   the paper's evaluation section, plus the Section 5 overhead numbers
   and the design-choice ablations from DESIGN.md.

   Usage:  dune exec bench/main.exe [section...]
   Sections: table2 table3 figure1 table4 table5 table6 figure2 overhead
             ablations (default: all). *)

let sections : (string * (unit -> unit)) list =
  [
    ("table2", Table_juliet.table2);
    ("table3", Table_juliet.table3);
    ("figure1", Table_juliet.figure1);
    ("table4", Table_projects.table4);
    ("table5", Table_projects.table5);
    ("table6", Table_projects.table6);
    ("figure2", Table_projects.figure2);
    ("overhead", Overhead.run);
    ("ablations", Ablations.run);
  ]

let () =
  let requested = List.tl (Array.to_list Sys.argv) in
  let to_run =
    if requested = [] then sections
    else
      List.filter_map
        (fun name ->
          match List.assoc_opt name sections with
          | Some f -> Some (name, f)
          | None ->
            Printf.eprintf "unknown section %s (available: %s)\n" name
              (String.concat " " (List.map fst sections));
            None)
        requested
  in
  List.iter (fun (_, f) -> f ()) to_run
