(* Section 5 "Overhead": differential execution with k implementations
   costs ~k x a plain execution; a well-chosen pair retains most of the
   detection at ~2x. Measured two ways: a wall-clock fuzzing-throughput
   comparison, and Bechamel micro-benchmarks of the building blocks. *)

open Bechamel
open Toolkit

let sample_project () = Option.get (Projects.Registry.by_name "readelf")

let wallclock () =
  let p = sample_project () in
  let tp = Projects.Project.frontend p in
  let time_campaign profiles =
    let config =
      {
        Fuzz.Compdiff_afl.default_config with
        Fuzz.Compdiff_afl.seeds = p.Projects.Project.seeds;
        max_execs = 1_500;
        fuel = 60_000;
        profiles;
      }
    in
    let t0 = Unix.gettimeofday () in
    let c = Fuzz.Compdiff_afl.run ~config tp in
    let dt = Unix.gettimeofday () -. t0 in
    (dt, float_of_int c.Fuzz.Compdiff_afl.fuzz.Fuzz.Fuzzer.execs /. dt)
  in
  (* k = 0: plain AFL++ (no differential binaries at all) *)
  let t_plain =
    let config =
      {
        Fuzz.Fuzzer.default_config with
        Fuzz.Fuzzer.seeds = p.Projects.Project.seeds;
        max_execs = 1_500;
        fuel = 60_000;
      }
    in
    let u = Cdcompiler.Pipeline.compile Cdcompiler.Profiles.fuzz_profile tp in
    let t0 = Unix.gettimeofday () in
    let c = Fuzz.Fuzzer.run ~config u in
    let dt = Unix.gettimeofday () -. t0 in
    (dt, float_of_int c.Fuzz.Fuzzer.execs /. dt)
  in
  let pair =
    [ Cdcompiler.Profiles.gccx "O0"; Cdcompiler.Profiles.clangx "O3" ]
  in
  let t_pair = time_campaign pair in
  let t_full = time_campaign Cdcompiler.Profiles.all in
  let row name (dt, eps) base =
    [ name; Printf.sprintf "%.2fs" dt; Printf.sprintf "%.0f" eps;
      Printf.sprintf "%.1fx" (base /. eps) ]
  in
  let _, base_eps = t_plain in
  Cdutil.Tablefmt.print
    ~title:"Overhead (Section 5): fuzzing throughput vs differential set size"
    ~header:[ "configuration"; "time"; "execs/s"; "slowdown" ]
    [
      row "plain AFL++ (k=0)" t_plain base_eps;
      row "CompDiff {gccx-O0, clangx-O3} (k=2)" t_pair base_eps;
      row "CompDiff all implementations (k=10)" t_full base_eps;
    ]

(* --- Bechamel micro-benchmarks --- *)

let listing1_tp =
  lazy
    (match
       Minic.frontend_of_source
         "int dump_data(int offset, int len) {\n\
          \  if (offset + len > 1000) { return -1; }\n\
          \  if (offset + len < offset) { return -1; }\n\
          \  return len;\n\
          }\n\
          int main() { print(\"%d\\n\", dump_data(getchar(), 101)); return 0; }"
     with
    | Ok tp -> tp
    | Error e -> failwith e)

let bench_tests () =
  let tp = Lazy.force listing1_tp in
  let unit_O0 = Cdcompiler.Pipeline.compile (Cdcompiler.Profiles.gccx "O0") tp in
  let oracle2 =
    Compdiff.Oracle.create
      ~profiles:[ Cdcompiler.Profiles.gccx "O0"; Cdcompiler.Profiles.clangx "O3" ]
      ~fuel:50_000 tp
  in
  let oracle10 = Compdiff.Oracle.create ~fuel:50_000 tp in
  [
    Test.make ~name:"murmur3 (1KiB)"
      (Staged.stage
         (let s = String.make 1024 'x' in
          fun () -> ignore (Cdutil.Murmur3.hash32 s)));
    Test.make ~name:"frontend+compile gccx-O0"
      (Staged.stage (fun () ->
           ignore (Cdcompiler.Pipeline.compile (Cdcompiler.Profiles.gccx "O0") tp)));
    Test.make ~name:"frontend+compile clangx-O3"
      (Staged.stage (fun () ->
           ignore (Cdcompiler.Pipeline.compile (Cdcompiler.Profiles.clangx "O3") tp)));
    Test.make ~name:"vm exec (one binary)"
      (Staged.stage (fun () ->
           ignore
             (Cdvm.Exec.run
                ~config:{ Cdvm.Exec.default_config with Cdvm.Exec.input = "A" }
                unit_O0)));
    Test.make ~name:"oracle check k=2"
      (Staged.stage (fun () -> ignore (Compdiff.Oracle.check oracle2 ~input:"A")));
    Test.make ~name:"oracle check k=10"
      (Staged.stage (fun () -> ignore (Compdiff.Oracle.check oracle10 ~input:"A")));
  ]

let microbench () =
  print_endline "Bechamel micro-benchmarks (monotonic clock):";
  print_endline "============================================";
  let instances = [ Instance.monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.4) ~kde:(Some 100) ()
  in
  let grouped =
    Test.make_grouped ~name:"compdiff" ~fmt:"%s %s" (bench_tests ())
  in
  let raw = Benchmark.all cfg instances grouped in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let results =
    List.map (fun i -> Analyze.all ols i raw) instances
  in
  let merged = Analyze.merge ols instances results in
  Hashtbl.iter
    (fun measure tbl ->
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] ->
            Printf.printf "  %-40s %14.1f ns/run (%s)\n" name est measure
          | _ -> ())
        tbl)
    merged;
  print_newline ()

let run () =
  wallclock ();
  microbench ()
