(* Runtime values.

   32-bit integers are stored sign-extended inside [int64]; every 32-bit
   operation re-normalizes through {!norm32}. Pointers carry provenance:
   the object they were derived from plus a cell offset, which may be out
   of bounds -- the *access* decides what that means, not the arithmetic,
   matching C's provenance model. *)

type ptr = { obj : int; off : int }

let null = { obj = 0; off = 0 }
let is_null p = p.obj = 0 && p.off = 0

(* a forged pointer produced by an int-to-pointer cast that did not
   resolve to any object at cast time; [off] holds the absolute address *)
let wild addr = { obj = -1; off = addr }
let is_wild p = p.obj = -1

type t =
  | Vint of int64
  | Vfloat of float
  | Vptr of ptr

let norm32 v = Int64.of_int32 (Int64.to_int32 v)

let zero = Vint 0L

let truthy = function
  | Vint v -> v <> 0L
  | Vfloat f -> f <> 0.
  | Vptr p -> not (is_null p)

let to_string = function
  | Vint v -> Int64.to_string v
  | Vfloat f -> Printf.sprintf "%g" f
  | Vptr p when is_null p -> "null"
  | Vptr p -> Printf.sprintf "<obj%d+%d>" p.obj p.off
