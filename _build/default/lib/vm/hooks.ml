(* Sanitizer instrumentation points.

   The VM invokes these callbacks at the events real sanitizers intercept.
   A hook stops the program by raising {!Report}; the default hooks do
   nothing, which is the plain uninstrumented binary. *)

exception Report of string
(** Raised by a hook to terminate the run with a sanitizer report. *)

type access_kind = Aread | Awrite

type t = {
  on_access : Mem.t -> Value.ptr -> access_kind -> unit;
      (** every load/store, including those inside builtins like memcpy *)
  on_free : Mem.t -> Value.ptr -> [ `Ok | `Double | `Invalid | `Null ] -> unit;
      (** after the allocator classified the free *)
  on_signed_arith : Cdcompiler.Ir.ibin -> Cdcompiler.Ir.width -> int64 -> int64 -> unit;
      (** source-level signed arithmetic, before the operation executes *)
  on_branch : taint:bool -> unit;
      (** conditional branch; [taint] says the condition is uninitialized *)
  on_deref_taint : taint:bool -> unit;
      (** pointer dereference; [taint] says the pointer value is uninitialized *)
}

let none =
  {
    on_access = (fun _ _ _ -> ());
    on_free = (fun _ _ _ -> ());
    on_signed_arith = (fun _ _ _ _ -> ());
    on_branch = (fun ~taint:_ -> ());
    on_deref_taint = (fun ~taint:_ -> ());
  }

(* compose two hook sets (e.g. ASan + UBSan builds) *)
let combine a b =
  {
    on_access =
      (fun m p k ->
        a.on_access m p k;
        b.on_access m p k);
    on_free =
      (fun m p c ->
        a.on_free m p c;
        b.on_free m p c);
    on_signed_arith =
      (fun op w x y ->
        a.on_signed_arith op w x y;
        b.on_signed_arith op w x y);
    on_branch =
      (fun ~taint ->
        a.on_branch ~taint;
        b.on_branch ~taint);
    on_deref_taint =
      (fun ~taint ->
        a.on_deref_taint ~taint;
        b.on_deref_taint ~taint);
  }
