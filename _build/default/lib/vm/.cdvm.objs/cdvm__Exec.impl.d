lib/vm/exec.ml: Array Buffer Cdcompiler Char Coverage Float Hashtbl Hooks Int32 Int64 Ir List Mem Policy Printf String Trap Value
