lib/vm/coverage.ml: Bytes Cdutil Char
