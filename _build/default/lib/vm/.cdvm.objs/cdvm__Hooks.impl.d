lib/vm/hooks.ml: Cdcompiler Mem Value
