lib/vm/mem.ml: Array Cdcompiler Hashtbl Ir List Policy Trap Value
