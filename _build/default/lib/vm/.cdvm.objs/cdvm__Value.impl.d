lib/vm/value.ml: Int64 Printf
