(* Abnormal termination conditions. *)

type t =
  | Null_deref
  | Segfault of int          (* unmapped absolute address *)
  | Div_by_zero
  | Invalid_free             (* free of a non-heap pointer or interior pointer *)
  | Abort_called
  | Stack_overflow
  | Output_limit             (* runaway stdout *)

type status =
  | Exit of int              (* normal termination, low 8 bits of main *)
  | Trap of t
  | Hang                     (* fuel exhausted: the timeout of Algorithm 1 *)
  | San_report of string     (* a sanitizer stopped the program *)

let to_string = function
  | Null_deref -> "null-dereference"
  | Segfault a -> Printf.sprintf "segfault(0x%x)" a
  | Div_by_zero -> "divide-by-zero"
  | Invalid_free -> "invalid-free"
  | Abort_called -> "abort"
  | Stack_overflow -> "stack-overflow"
  | Output_limit -> "output-limit"

let status_to_string = function
  | Exit c -> Printf.sprintf "exit(%d)" c
  | Trap t -> Printf.sprintf "trap(%s)" (to_string t)
  | Hang -> "hang"
  | San_report msg -> Printf.sprintf "sanitizer(%s)" msg

(* What an external observer (the oracle) can distinguish: the faulting
   address of a segfault is internal diagnostic detail -- a real process
   just dies with SIGSEGV -- so it is excluded from the signature. *)
let signature = function
  | Exit c -> Printf.sprintf "exit(%d)" c
  | Trap (Segfault _) -> "trap(segfault)"
  | Trap t -> Printf.sprintf "trap(%s)" (to_string t)
  | Hang -> "hang"
  | San_report msg -> Printf.sprintf "sanitizer(%s)" msg

(* Statuses as CompDiff compares them: a hang is excluded from comparison
   at the oracle level (timeout escalation), everything else is part of
   the observable behaviour. *)
let equal_status a b = signature a = signature b
