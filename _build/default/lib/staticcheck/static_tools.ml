(* Registry and uniform interface over the three static analyzers. *)

type tool = Coverity | Cppcheck | Infer

let name = function
  | Coverity -> "Coverity-like"
  | Cppcheck -> "Cppcheck-like"
  | Infer -> "Infer-like"

let all = [ Coverity; Cppcheck; Infer ]

let check (t : tool) (p : Minic.Ast.program) : Finding.t list =
  match t with
  | Coverity -> Coverity_like.check p
  | Cppcheck -> Cppcheck_like.check p
  | Infer -> Infer_like.check p

(* does the tool report anything at all on this program? *)
let flags_program (t : tool) (p : Minic.Ast.program) : bool = check t p <> []

(* does it report a finding of one of the given kinds? *)
let flags_kinds (t : tool) (p : Minic.Ast.program) (kinds : Finding.kind list) : bool =
  List.exists (fun f -> List.mem f.Finding.kind kinds) (check t p)
