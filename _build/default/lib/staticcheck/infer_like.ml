(* An Infer-style analyzer: compositional memory-safety reasoning with
   per-function summaries, in the spirit of bi-abduction. It is strong on
   pointer lifecycle bugs (null dereference, use-after-free, double free,
   leaks-as-dangling) across call boundaries, and intentionally does not
   reason about arithmetic at all -- integer overflows and div-by-zero are
   outside its scope, exactly like the real tool's C analysis in the
   paper's Table 3. *)

open Minic.Ast

let tool = "infer-like"

(* summary of a function's effect on pointer arguments and its return *)
type summary = {
  returns_fresh : bool;        (* returns a malloc'd pointer *)
  returns_maybe_null : bool;
  frees_params : int list;     (* indices of pointer params it frees *)
  derefs_params : int list;    (* indices it dereferences unconditionally *)
}

let empty_summary =
  { returns_fresh = false; returns_maybe_null = false; frees_params = []; derefs_params = [] }

type pstate = Fresh | Checked | Freed | Null | MaybeNull | Unknown

type env = {
  mutable findings : Finding.t list;
  summaries : (string, summary) Hashtbl.t;
  mutable vars : (string * pstate) list;
  mutable reported : (int * string) list;
  params : string list;
}

let report env kind line fmt =
  Format.kasprintf
    (fun message ->
      if not (List.mem (line, message) env.reported) then begin
        env.reported <- (line, message) :: env.reported;
        env.findings <- Finding.make ~tool ~kind ~line message :: env.findings
      end)
    fmt

let get env v = Option.value ~default:Unknown (List.assoc_opt v env.vars)
let set env v s = env.vars <- (v, s) :: List.remove_assoc v env.vars

let param_index env v =
  let rec go i = function
    | [] -> None
    | p :: _ when p = v -> Some i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 env.params

(* effects accumulated for the current function's own summary *)
type own_effects = {
  mutable frees : int list;
  mutable derefs : int list;
  mutable ret_fresh : bool;
  mutable ret_maybe_null : bool;
}

let rec eval env eff (e : expr) : pstate =
  let line = e.eloc.line in
  match e.e with
  | EInt 0L -> Null
  | EInt _ | ELong _ | EFloat _ | ELine -> Unknown
  | EStr _ -> Checked
  | EVar v -> get env v
  | ECall ("malloc", args) ->
    List.iter (fun a -> ignore (eval env eff a)) args;
    MaybeNull
  | ECall ("free", [ { e = EVar v; _ } ]) ->
    (match get env v with
    | Freed -> report env Finding.Mem_error line "double free of '%s'" v
    | Null -> ()
    | _ ->
      (match param_index env v with
      | Some i when not (List.mem i eff.frees) -> eff.frees <- i :: eff.frees
      | _ -> ()));
    set env v Freed;
    Unknown
  | ECall (fname, args) ->
    let states = List.map (eval env eff) args in
    (match Hashtbl.find_opt env.summaries fname with
    | Some s ->
      List.iteri
        (fun i arg ->
          match arg.e with
          | EVar v when List.mem i s.frees_params ->
            if get env v = Freed then
              report env Finding.Mem_error line "double free of '%s' via %s" v fname
            else set env v Freed
          | EVar v when List.mem i s.derefs_params -> (
            match get env v with
            | Null -> report env Finding.Null_deref line "%s dereferences null '%s'" fname v
            | MaybeNull ->
              report env Finding.Null_deref line "%s may dereference null '%s'" fname v
            | Freed ->
              report env Finding.Mem_error line "%s uses '%s' after free" fname v
            | _ -> ())
          | _ -> ())
        args;
      ignore states;
      if s.returns_fresh then if s.returns_maybe_null then MaybeNull else Fresh
      else Unknown
    | None -> Unknown)
  | EDeref p | EIndex (p, _) ->
    (match e.e with
    | EIndex (_, idx) -> ignore (eval env eff idx)
    | _ -> ());
    (match p.e with
    | EVar v -> (
      (match param_index env v with
      | Some i when not (List.mem i eff.derefs) -> eff.derefs <- i :: eff.derefs
      | _ -> ());
      match get env v with
      | Null -> report env Finding.Null_deref line "null dereference of '%s'" v
      | MaybeNull ->
        report env Finding.Null_deref line "'%s' may be null here" v
      | Freed -> report env Finding.Mem_error line "use of '%s' after free" v
      | Fresh | Checked | Unknown -> ())
    | _ -> ignore (eval env eff p));
    Unknown
  | EAddr a ->
    (match a.e with EVar _ -> () | _ -> ignore (eval env eff a));
    Checked
  | EAssign (l, r) ->
    let sr = eval env eff r in
    (match l.e with
    | EVar v -> set env v sr
    | EDeref _ | EIndex _ -> ignore (eval env eff l)
    | _ -> ());
    sr
  | ECast (_, a) -> eval env eff a
  | EUnop (_, a) ->
    ignore (eval env eff a);
    Unknown
  | EBinop ((Land | Lor), a, b) ->
    ignore (eval env eff a);
    ignore (eval env eff b);
    Unknown
  | EBinop (_, a, b) ->
    let sa = eval env eff a in
    ignore (eval env eff b);
    (* pointer arithmetic keeps the base's state *)
    (match a.e with EVar _ -> sa | _ -> Unknown)
  | ECond (c, t, f) ->
    ignore (eval env eff c);
    let st = eval env eff t in
    let sf = eval env eff f in
    if st = sf then st else Unknown

let refine_null env (c : expr) (truth : bool) =
  match (c.e, truth) with
  | EVar v, true -> if get env v = MaybeNull then set env v Checked
  | EVar v, false -> if get env v = MaybeNull then set env v Null
  | EUnop (Lnot, { e = EVar v; _ }), true -> if get env v = MaybeNull then set env v Null
  | EUnop (Lnot, { e = EVar v; _ }), false ->
    if get env v = MaybeNull then set env v Checked
  | EBinop (Ne, { e = EVar v; _ }, { e = EInt 0L; _ }), true
  | EBinop (Eq, { e = EVar v; _ }, { e = EInt 0L; _ }), false ->
    if get env v = MaybeNull then set env v Checked
  | EBinop (Eq, { e = EVar v; _ }, { e = EInt 0L; _ }), true
  | EBinop (Ne, { e = EVar v; _ }, { e = EInt 0L; _ }), false ->
    if get env v = MaybeNull then set env v Null
  | EBinop (Eq, { e = EVar v; _ }, { e = ECast (_, { e = EInt 0L; _ }); _ }), true
  | EBinop (Ne, { e = EVar v; _ }, { e = ECast (_, { e = EInt 0L; _ }); _ }), false ->
    if get env v = MaybeNull then set env v Null
  | EBinop (Ne, { e = EVar v; _ }, { e = ECast (_, { e = EInt 0L; _ }); _ }), true
  | EBinop (Eq, { e = EVar v; _ }, { e = ECast (_, { e = EInt 0L; _ }); _ }), false ->
    if get env v = MaybeNull then set env v Checked
  | _ -> ()

let join a b =
  let names = List.sort_uniq compare (List.map fst a @ List.map fst b) in
  List.map
    (fun n ->
      let sa = Option.value ~default:Unknown (List.assoc_opt n a) in
      let sb = Option.value ~default:Unknown (List.assoc_opt n b) in
      let s =
        match (sa, sb) with
        | x, y when x = y -> x
        | Freed, _ | _, Freed -> Freed
        | Null, _ | _, Null -> MaybeNull
        | MaybeNull, _ | _, MaybeNull -> MaybeNull
        | _ -> Unknown
      in
      (n, s))
    names

let rec exec env eff (s : stmt) =
  match s.s with
  | SExpr e -> ignore (eval env eff e)
  | SDecl d -> (
    match d.dinit with
    | Some e -> set env d.dname (eval env eff e)
    | None -> set env d.dname Unknown)
  | SIf (c, t, f) ->
    ignore (eval env eff c);
    let snapshot = env.vars in
    refine_null env c true;
    List.iter (exec env eff) t;
    let after_then = env.vars in
    env.vars <- snapshot;
    refine_null env c false;
    List.iter (exec env eff) f;
    env.vars <- join after_then env.vars
  | SWhile (c, b) ->
    ignore (eval env eff c);
    let snapshot = env.vars in
    refine_null env c true;
    List.iter (exec env eff) b;
    env.vars <- join snapshot env.vars
  | SReturn (Some e) ->
    let se = eval env eff e in
    (match se with
    | Fresh -> eff.ret_fresh <- true
    | MaybeNull ->
      eff.ret_fresh <- true;
      eff.ret_maybe_null <- true
    | _ -> ())
  | SReturn None | SBreak | SContinue -> ()
  | SPrint (_, args) -> List.iter (fun a -> ignore (eval env eff a)) args
  | SBlock b -> List.iter (exec env eff) b

let analyze_function summaries (f : func) : Finding.t list * summary =
  let env =
    {
      findings = [];
      summaries;
      vars = List.map (fun (_, n) -> (n, Unknown)) f.params;
      reported = [];
      params = List.map snd f.params;
    }
  in
  let eff = { frees = []; derefs = []; ret_fresh = false; ret_maybe_null = false } in
  List.iter (exec env eff) f.body;
  ( List.rev env.findings,
    {
      returns_fresh = eff.ret_fresh;
      returns_maybe_null = eff.ret_maybe_null;
      frees_params = eff.frees;
      derefs_params = eff.derefs;
    } )

(* two passes so callees analyzed later still contribute summaries *)
let check (p : program) : Finding.t list =
  let summaries = Hashtbl.create 16 in
  List.iter
    (fun f ->
      let _, s = analyze_function summaries f in
      Hashtbl.replace summaries f.fname s)
    p.funcs;
  List.concat_map
    (fun f ->
      let findings, _ = analyze_function summaries f in
      findings)
    p.funcs
