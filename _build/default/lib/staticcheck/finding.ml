(* Findings reported by the static analyzers. *)

type kind =
  | Mem_error      (* buffer overflow/underflow, UAF, double free, bad free *)
  | Int_error      (* signed overflow / underflow / truncation *)
  | Div_zero
  | Null_deref
  | Uninit
  | Bad_call       (* wrong arguments, UB input to API *)
  | Ptr_sub        (* pointer subtraction across objects *)
  | Ub_generic     (* other undefined behaviour *)

type t = {
  tool : string;
  kind : kind;
  line : int;
  message : string;
}

let kind_to_string = function
  | Mem_error -> "memory-error"
  | Int_error -> "integer-error"
  | Div_zero -> "division-by-zero"
  | Null_deref -> "null-dereference"
  | Uninit -> "uninitialized-use"
  | Bad_call -> "bad-call"
  | Ptr_sub -> "pointer-subtraction"
  | Ub_generic -> "undefined-behavior"

let make ~tool ~kind ~line message = { tool; kind; line; message }

let pp ppf f =
  Format.fprintf ppf "[%s] line %d: %s (%s)" f.tool f.line f.message
    (kind_to_string f.kind)
