(* A Coverity-style analyzer: per-function abstract interpretation over an
   interval domain with branch-condition refinement, plus an
   allocated/freed/null pointer state machine.

   Stronger than syntactic matching -- it follows data flow through
   arithmetic and guards -- but joins at control-flow merges and a crude
   one-step loop widening produce the characteristic "may" reports, i.e.
   the non-negligible false positive rate Table 3 shows for static
   tools. *)

open Minic.Ast

let tool = "coverity-like"

(* --- interval domain --- *)

type itv = { lo : int64; hi : int64 }

let top = { lo = Int64.min_int; hi = Int64.max_int }
let const v = { lo = v; hi = v }
let input_itv = { lo = -1L; hi = 255L }
let int32_min = -2147483648L
let int32_max = 2147483647L

let join a b = { lo = min a.lo b.lo; hi = max a.hi b.hi }

let sat f a b =
  (* saturating arithmetic to avoid int64 wrap inside the domain *)
  let r = f a b in
  if a > 0L && b > 0L && r < 0L then Int64.max_int
  else if a < 0L && b < 0L && r > 0L then Int64.min_int
  else r

let add_itv a b = { lo = sat Int64.add a.lo b.lo; hi = sat Int64.add a.hi b.hi }
let sub_itv a b = { lo = sat Int64.sub a.lo b.hi; hi = sat Int64.sub a.hi b.lo }

let mul_itv a b =
  let cands =
    [ Int64.mul a.lo b.lo; Int64.mul a.lo b.hi; Int64.mul a.hi b.lo; Int64.mul a.hi b.hi ]
  in
  (* only trust multiplication of reasonably small intervals *)
  let small v = v > -4611686018427387904L && v < 4611686018427387904L in
  if List.for_all small [ a.lo; a.hi; b.lo; b.hi ] then
    { lo = List.fold_left min Int64.max_int cands;
      hi = List.fold_left max Int64.min_int cands }
  else top

(* --- pointer state --- *)

type pstate = Palloc of int | Pfreed | Pnull | Pmaybe_null of int | Punknown
(* Palloc n: heap block of n cells; Pmaybe_null: malloc result not yet
   null-checked *)

(* --- environment --- *)

type vstate = { itv : itv; uninit : bool; pstate : pstate }

let unknown_v = { itv = top; uninit = false; pstate = Punknown }
let uninit_v = { itv = top; uninit = true; pstate = Punknown }

type env = {
  mutable findings : Finding.t list;
  mutable vars : (string * vstate) list;     (* functional for easy snapshot *)
  arrays : (string, int) Hashtbl.t;
  mutable reported : (int * Finding.kind) list; (* dedup per line/kind *)
}

let report env kind line fmt =
  Format.kasprintf
    (fun message ->
      if not (List.mem (line, kind) env.reported) then begin
        env.reported <- (line, kind) :: env.reported;
        env.findings <- Finding.make ~tool ~kind ~line message :: env.findings
      end)
    fmt

let get env v =
  match List.assoc_opt v env.vars with Some s -> s | None -> unknown_v

let set env v s = env.vars <- (v, s) :: List.remove_assoc v env.vars

(* --- expression evaluation --- *)

let rec eval env (e : expr) : vstate =
  let line = e.eloc.line in
  match e.e with
  | EInt v | ELong v -> { unknown_v with itv = const v }
  | EFloat _ -> unknown_v
  | EStr _ -> { unknown_v with pstate = Punknown }
  | ELine -> { unknown_v with itv = const (Int64.of_int line) }
  | EVar v ->
    let s = get env v in
    if s.uninit then begin
      report env Finding.Uninit line "'%s' may be used uninitialized" v;
      (* report once per variable *)
      set env v { s with uninit = false }
    end;
    s
  | EUnop (Neg, a) ->
    let sa = eval env a in
    { unknown_v with itv = sub_itv (const 0L) sa.itv }
  | EUnop ((Lnot | Bnot), a) ->
    ignore (eval env a);
    { unknown_v with itv = top }
  | EBinop (op, a, b) -> eval_binop env line op a b
  | ECall ("getchar", _) | ECall ("peek", _) -> { unknown_v with itv = input_itv }
  | ECall ("input_len", _) -> { unknown_v with itv = { lo = 0L; hi = 4096L } }
  | ECall ("malloc", [ n ]) ->
    let sn = eval env n in
    let size = if sn.itv.lo = sn.itv.hi then Int64.to_int sn.itv.lo else -1 in
    { unknown_v with pstate = Pmaybe_null size }
  | ECall ("free", [ p ]) ->
    (match p.e with
    | EVar v when Hashtbl.mem env.arrays v ->
      report env Finding.Mem_error line "free of non-heap array '%s'" v
    | EVar v -> (
      let s = get env v in
      match s.pstate with
      | Pfreed -> report env Finding.Mem_error line "double free of '%s'" v
      | Palloc _ | Pmaybe_null _ | Punknown -> set env v { s with pstate = Pfreed }
      | Pnull -> ())
    | EAddr _ ->
      report env Finding.Mem_error line "free of address-of expression"
    | EBinop ((Add | Sub), _, _) ->
      report env Finding.Mem_error line "free of interior pointer"
    | _ -> ignore (eval env p));
    unknown_v
  | ECall ("memcpy", ([ d; s; _ ] as args)) ->
    List.iter (fun a -> ignore (eval env a)) args;
    let rec base (e : expr) =
      match e.e with
      | EVar v -> Some v
      | EBinop ((Add | Sub), a, _) -> base a
      | ECast (_, a) -> base a
      | _ -> None
    in
    (match (base d, base s) with
    | Some x, Some y when x = y ->
      report env Finding.Bad_call line "memcpy with overlapping regions on '%s'" x
    | _ -> ());
    unknown_v
  | ECall (_, args) ->
    check_unsequenced_args env line args;
    List.iter
      (fun (a : expr) ->
        (* passing a pointer reinterpreted as an integer: the CWE-685
           shape (argument of the wrong kind) *)
        (match a.e with
        | ECast ((Tint | Tlong), { e = EAddr _; _ }) ->
          report env Finding.Bad_call a.eloc.line
            "pointer passed where an integer is expected"
        | ECast ((Tint | Tlong), { e = EVar v; _ })
          when (get env v).pstate <> Punknown || Hashtbl.mem env.arrays v ->
          report env Finding.Bad_call a.eloc.line
            "pointer '%s' passed as an integer argument" v
        | _ -> ());
        ignore (eval env a))
      args;
    unknown_v
  | EIndex (base, idx) ->
    check_index env line base idx;
    unknown_v
  | EDeref p ->
    check_deref env line p;
    unknown_v
  | EAddr a ->
    (* taking the address blesses the variable as initialized-by-alias *)
    (match a.e with
    | EVar v ->
      let s = get env v in
      set env v { s with uninit = false }
    | _ -> ());
    unknown_v
  | EAssign (l, r) -> eval_assign env l r
  | ECast (Tptr _, { e = EInt 0L; _ }) -> { unknown_v with pstate = Pnull }
  | ECast ((Tint | Tlong), a) ->
    let sa = eval env a in
    { unknown_v with itv = sa.itv }
  | ECast (_, a) ->
    let sa = eval env a in
    { sa with uninit = false }
  | ECond (c, t, f) ->
    ignore (eval env c);
    let st = eval env t in
    let sf = eval env f in
    { unknown_v with itv = join st.itv sf.itv }

and eval_binop env line op a b : vstate =
  match op with
  | Land | Lor ->
    ignore (eval env a);
    ignore (eval env b);
    { unknown_v with itv = { lo = 0L; hi = 1L } }
  | _ ->
    let sa = eval env a in
    let sb = eval env b in
    let ia = sa.itv and ib = sb.itv in
    (match op with
    | Div | Mod ->
      if ib.lo = 0L && ib.hi = 0L then
        report env Finding.Div_zero line "division by zero"
      else if ib.lo <= 0L && ib.hi >= 0L then
        report env Finding.Div_zero line "possible division by zero"
    | Mul ->
      (* overflow reporting restricted to multiplications (additive "may
         overflow" reports drowned users in noise and were dropped) *)
      let r = mul_itv ia ib in
      let is_int_mul =
        match (a.e, b.e) with ELong _, _ | _, ELong _ -> false | _ -> true
      in
      if is_int_mul && r.lo <> Int64.min_int && r.hi <> Int64.max_int
         && (r.hi > int32_max || r.lo < int32_min)
      then report env Finding.Int_error line "possible signed integer overflow"
    | Shl | Shr ->
      if ib.lo = ib.hi && (ib.lo < 0L || ib.lo >= 32L) then
        report env Finding.Ub_generic line "shift amount is out of range"
      else if op = Shl && ia.hi < 0L then
        report env Finding.Ub_generic line "left shift of a negative value"
    | _ -> ());
    let itv =
      match op with
      | Add -> add_itv ia ib
      | Sub -> sub_itv ia ib
      | Mul -> mul_itv ia ib
      | Lt | Le | Gt | Ge | Eq | Ne -> { lo = 0L; hi = 1L }
      | Mod when ib.lo > 0L -> { lo = 0L; hi = Int64.sub ib.hi 1L }
      | Band when ib.lo = ib.hi && ib.lo >= 0L -> { lo = 0L; hi = ib.hi }
      | Band when ia.lo = ia.hi && ia.lo >= 0L -> { lo = 0L; hi = ia.hi }
      | _ -> top
    in
    { unknown_v with itv }

and check_index env line base idx =
  let si = eval env idx in
  (match base.e with
  | EVar arr -> (
    let bound =
      match Hashtbl.find_opt env.arrays arr with
      | Some n -> Some n
      | None -> (
        match (get env arr).pstate with
        | Palloc n when n > 0 -> Some n
        | Pmaybe_null n when n > 0 -> Some n
        | _ -> None)
    in
    (match (get env arr).pstate with
    | Pfreed -> report env Finding.Mem_error line "use of '%s' after free" arr
    | _ -> ());
    match bound with
    | Some n ->
      let bn = Int64.of_int n in
      let informed = si.itv.hi < 1_000_000_000L && si.itv.lo > -1_000_000_000L in
      if si.itv.lo >= bn && informed then
        report env Finding.Mem_error line "index always out of bounds for '%s'" arr
      else if si.itv.hi >= bn && informed then
        report env Finding.Mem_error line "index may exceed bounds of '%s'" arr
      else if si.itv.hi < 0L && informed then
        report env Finding.Mem_error line "index always negative for '%s'" arr
      else if si.itv.lo < 0L && si.itv.lo > -10000L then
        report env Finding.Mem_error line "index may be negative for '%s'" arr
    | None -> ())
  | _ -> ignore (eval env base))

and check_deref env line p =
  match p.e with
  | EVar v -> (
    let s = get env v in
    match s.pstate with
    | Pnull -> report env Finding.Null_deref line "null dereference of '%s'" v
    | Pmaybe_null _ ->
      report env Finding.Null_deref line "'%s' may be null (unchecked malloc)" v
    | Pfreed -> report env Finding.Mem_error line "use of '%s' after free" v
    | Palloc _ | Punknown ->
      if s.uninit then report env Finding.Uninit line "dereference of uninitialized '%s'" v)
  | _ -> ignore (eval env p)

and eval_assign env (l : expr) (r : expr) : vstate =
  let sr = eval env r in
  (match l.e with
  | EVar v ->
    let pstate =
      match r.e with
      | EInt 0L -> Pnull
      | ECast (Tptr _, { e = EInt 0L; _ }) -> Pnull
      | _ -> sr.pstate
    in
    set env v { itv = sr.itv; uninit = false; pstate }
  | EIndex (base, idx) ->
    check_index env l.eloc.line base idx
  | EDeref p -> check_deref env l.eloc.line p
  | _ -> ());
  sr

(* two sibling arguments calling the same function, or assigning the same
   variable: unsequenced side effects on shared state (CWE-758) *)
and check_unsequenced_args env line (args : expr list) =
  let rec callees acc (e : expr) =
    match e.e with
    | ECall (f, inner) -> List.fold_left callees (f :: acc) inner
    | EAssign ({ e = EVar v; _ }, r) -> callees (("=" ^ v) :: acc) r
    | EUnop (_, a) | ECast (_, a) | EDeref a | EAddr a -> callees acc a
    | EBinop (_, a, b) | EIndex (a, b) -> callees (callees acc a) b
    | ECond (a, b, c) -> callees (callees (callees acc a) b) c
    | EAssign (a, b) -> callees (callees acc a) b
    | EInt _ | ELong _ | EFloat _ | EStr _ | EVar _ | ELine -> acc
  in
  let per_arg = List.map (callees []) args in
  let rec dup_across = function
    | [] -> None
    | cs :: rest ->
      (match
         List.find_opt (fun c -> List.exists (fun cs' -> List.mem c cs') rest) cs
       with
      | Some c -> Some c
      | None -> dup_across rest)
  in
  match dup_across per_arg with
  | Some c when String.length c > 0 && c.[0] = '=' ->
    report env Finding.Ub_generic line
      "unsequenced modifications of '%s' between arguments" (String.sub c 1 (String.length c - 1))
  | Some c ->
    report env Finding.Ub_generic line
      "unsequenced calls to '%s' with potential side effects" c
  | None -> ()

(* --- condition refinement --- *)

let refine env (c : expr) (truth : bool) =
  let clamp_hi v bound =
    let s = get env v in
    if bound < s.itv.hi then set env v { s with itv = { s.itv with hi = bound } }
  in
  let clamp_lo v bound =
    let s = get env v in
    if bound > s.itv.lo then set env v { s with itv = { s.itv with lo = bound } }
  in
  let rec go (c : expr) truth =
    match (c.e, truth) with
    | EBinop (Land, a, b), true ->
      go a true;
      go b true
    | EBinop (Lor, a, b), false ->
      go a false;
      go b false
    | EUnop (Lnot, a), t -> go a (not t)
    | EBinop (Lt, { e = EVar v; _ }, rhs), true -> (
      match rhs.e with
      | EInt k | ELong k -> clamp_hi v (Int64.sub k 1L)
      | _ -> ())
    | EBinop (Lt, { e = EVar v; _ }, rhs), false -> (
      match rhs.e with EInt k | ELong k -> clamp_lo v k | _ -> ())
    | EBinop (Le, { e = EVar v; _ }, rhs), true -> (
      match rhs.e with EInt k | ELong k -> clamp_hi v k | _ -> ())
    | EBinop (Le, { e = EVar v; _ }, rhs), false -> (
      match rhs.e with EInt k | ELong k -> clamp_lo v (Int64.add k 1L) | _ -> ())
    | EBinop (Gt, { e = EVar v; _ }, rhs), true -> (
      match rhs.e with EInt k | ELong k -> clamp_lo v (Int64.add k 1L) | _ -> ())
    | EBinop (Gt, { e = EVar v; _ }, rhs), false -> (
      match rhs.e with EInt k | ELong k -> clamp_hi v k | _ -> ())
    | EBinop (Ge, { e = EVar v; _ }, rhs), true -> (
      match rhs.e with EInt k | ELong k -> clamp_lo v k | _ -> ())
    | EBinop (Ge, { e = EVar v; _ }, rhs), false -> (
      match rhs.e with EInt k | ELong k -> clamp_hi v (Int64.sub k 1L) | _ -> ())
    | EBinop (Eq, { e = EVar v; _ }, rhs), true -> (
      match rhs.e with
      | EInt k | ELong k ->
        let s = get env v in
        set env v { s with itv = const k }
      | _ -> ())
    | EBinop (Ne, { e = EVar v; _ }, rhs), false -> (
      match rhs.e with
      | EInt k | ELong k ->
        let s = get env v in
        set env v { s with itv = const k }
      | _ -> ())
    (* null-check refinement: if (p) / if (p != 0) *)
    | EVar v, true -> (
      let s = get env v in
      match s.pstate with
      | Pmaybe_null n -> set env v { s with pstate = Palloc (max n 0) }
      | _ -> ())
    | EVar v, false -> (
      let s = get env v in
      match s.pstate with
      | Pmaybe_null _ -> set env v { s with pstate = Pnull }
      | _ -> ())
    | EBinop (Ne, { e = EVar v; _ }, { e = EInt 0L; _ }), true
    | EBinop (Ne, { e = EVar v; _ }, { e = ECast (_, { e = EInt 0L; _ }); _ }), true
      -> (
      let s = get env v in
      match s.pstate with
      | Pmaybe_null n -> set env v { s with pstate = Palloc (max n 0) }
      | _ -> ())
    | EBinop (Eq, { e = EVar v; _ }, { e = EInt 0L; _ }), false
    | EBinop (Eq, { e = EVar v; _ }, { e = ECast (_, { e = EInt 0L; _ }); _ }), false
      -> (
      let s = get env v in
      match s.pstate with
      | Pmaybe_null n -> set env v { s with pstate = Palloc (max n 0) }
      | _ -> ())
    | _ -> ()
  in
  go c truth

(* --- statements --- *)

let join_states (a : (string * vstate) list) (b : (string * vstate) list) :
    (string * vstate) list =
  let names = List.sort_uniq compare (List.map fst a @ List.map fst b) in
  List.map
    (fun n ->
      let sa = Option.value ~default:unknown_v (List.assoc_opt n a) in
      let sb = Option.value ~default:unknown_v (List.assoc_opt n b) in
      let pstate =
        match (sa.pstate, sb.pstate) with
        | x, y when x = y -> x
        | Pfreed, _ | _, Pfreed -> Pfreed (* pessimistic: may be freed *)
        | Pnull, _ | _, Pnull -> Punknown
        | _ -> Punknown
      in
      (n, { itv = join sa.itv sb.itv; uninit = sa.uninit || sb.uninit; pstate }))
    names

let rec exec_stmt env (s : stmt) =
  match s.s with
  | SExpr e -> ignore (eval env e)
  | SDecl d ->
    (match d.dtyp with
    | Tarr (_, n) ->
      Hashtbl.replace env.arrays d.dname n;
      set env d.dname unknown_v
    | _ -> (
      match d.dinit with
      | Some e ->
        let se = eval env e in
        set env d.dname { se with uninit = false }
      | None -> if d.dstatic then set env d.dname unknown_v else set env d.dname uninit_v))
  | SIf (c, t, f) ->
    ignore (eval env c);
    let snapshot = env.vars in
    refine env c true;
    List.iter (exec_stmt env) t;
    let after_then = env.vars in
    env.vars <- snapshot;
    refine env c false;
    List.iter (exec_stmt env) f;
    let after_else = env.vars in
    env.vars <- join_states after_then after_else
  | SWhile (c, b) ->
    ignore (eval env c);
    (* one abstract iteration, then widen every modified variable to top;
       the loop may execute zero times, so uninit flags join with the
       pre-loop state (the source of "may be uninitialized" reports on
       loop-initialized variables) *)
    let snapshot = env.vars in
    refine env c true;
    List.iter (exec_stmt env) b;
    let after = env.vars in
    let widened =
      List.map
        (fun (n, s_before) ->
          match List.assoc_opt n after with
          | Some s_after when s_after.itv <> s_before.itv ->
            (n, { s_after with itv = top; uninit = s_after.uninit || s_before.uninit })
          | Some s_after -> (n, { s_after with uninit = s_after.uninit || s_before.uninit })
          | None -> (n, s_before))
        snapshot
    in
    let new_vars =
      List.filter (fun (n, _) -> not (List.mem_assoc n widened)) after
    in
    env.vars <- widened @ List.map (fun (n, s) -> (n, { s with itv = top })) new_vars
  | SReturn (Some e) -> ignore (eval env e)
  | SReturn None | SBreak | SContinue -> ()
  | SPrint (_, args) ->
    check_unsequenced_args env s.sloc.line args;
    List.iter (fun a -> ignore (eval env a)) args
  | SBlock b -> List.iter (exec_stmt env) b

(* does this block definitely return on every path? *)
let rec always_returns (b : block) : bool =
  match List.rev b with
  | [] -> false
  | last :: _ -> (
    match last.s with
    | SReturn _ -> true
    | SIf (_, t, f) -> always_returns t && always_returns f
    | SBlock inner -> always_returns inner
    | SWhile ({ e = EInt 1L; _ }, _) -> true (* while(1): treated as noreturn *)
    | SExpr { e = ECall (("exit" | "abort"), _); _ } -> true
    | _ -> false)

let check (p : program) : Finding.t list =
  let env =
    { findings = []; vars = []; arrays = Hashtbl.create 16; reported = [] }
  in
  List.iter
    (fun g ->
      match g.gtyp with
      | Tarr (_, n) -> Hashtbl.replace env.arrays g.gname n
      | _ -> ())
    p.globals;
  List.iter
    (fun (f : func) ->
      env.vars <- List.map (fun (_, n) -> (n, unknown_v)) f.params;
      List.iter (exec_stmt env) f.body;
      if f.fret <> Tvoid && f.fname <> "main" && not (always_returns f.body) then
        report env Finding.Ub_generic f.floc.line
          "control may reach the end of non-void function '%s'" f.fname)
    p.funcs;
  List.rev env.findings
