(* A Cppcheck-style analyzer: cheap, purely syntactic, path-insensitive
   pattern matching over the AST. High precision on the trivial shapes it
   knows, blind to anything requiring data flow, and prone to false
   positives when a guard it cannot see makes the flagged code safe. *)

open Minic.Ast

let tool = "cppcheck-like"

type env = {
  mutable findings : Finding.t list;
  (* statically known array sizes (globals + locals in scope) *)
  arrays : (string, int) Hashtbl.t;
  (* variables whose most recent syntactic assignment is the literal 0 *)
  zeros : (string, unit) Hashtbl.t;
  (* locals declared without initializer and not yet syntactically assigned *)
  uninit : (string, unit) Hashtbl.t;
  (* pointers freed earlier in the same linear statement sequence *)
  freed : (string, unit) Hashtbl.t;
}

let report env kind line fmt =
  Format.kasprintf
    (fun message -> env.findings <- Finding.make ~tool ~kind ~line message :: env.findings)
    fmt

let rec const_of (e : expr) : int64 option =
  match e.e with
  | EInt v | ELong v -> Some v
  | EUnop (Neg, a) -> Option.map Int64.neg (const_of a)
  | EBinop (Add, a, b) -> map2 Int64.add a b
  | EBinop (Sub, a, b) -> map2 Int64.sub a b
  | EBinop (Mul, a, b) -> map2 Int64.mul a b
  | _ -> None

and map2 f a b =
  match (const_of a, const_of b) with
  | Some x, Some y -> Some (f x y)
  | _ -> None

let rec scan_expr env (e : expr) =
  let line = e.eloc.line in
  (match e.e with
  | EIndex ({ e = EVar arr; _ }, idx) ->
    if Hashtbl.mem env.freed arr then
      report env Finding.Mem_error line "access through freed pointer '%s'" arr
    else (
      match (Hashtbl.find_opt env.arrays arr, const_of idx) with
      | Some size, Some i when i >= Int64.of_int size ->
        report env Finding.Mem_error line "array '%s' index %Ld out of bounds [0,%d)"
          arr i size
      | Some _, Some i when i < 0L ->
        report env Finding.Mem_error line "array '%s' negative index %Ld" arr i
      | _ -> ())
  | EBinop ((Div | Mod), _, rhs) -> (
    match const_of rhs with
    | Some 0L -> report env Finding.Div_zero line "division by constant zero"
    | Some _ -> ()
    | None -> (
      match rhs.e with
      | EVar v when Hashtbl.mem env.zeros v ->
        report env Finding.Div_zero line "division by '%s' which is zero here" v
      | _ -> ()))
  | EDeref { e = EVar p; _ } when Hashtbl.mem env.zeros p ->
    report env Finding.Null_deref line "null pointer '%s' dereferenced" p
  | EDeref { e = EVar p; _ } when Hashtbl.mem env.freed p ->
    report env Finding.Mem_error line "dereference of freed pointer '%s'" p
  | ECall ("free", [ { e = EVar p; _ } ]) ->
    if Hashtbl.mem env.arrays p then
      report env Finding.Mem_error line "free of non-heap array '%s'" p
    else if Hashtbl.mem env.freed p then
      report env Finding.Mem_error line "double free of '%s'" p
    else Hashtbl.replace env.freed p ()
  | ECall ("free", [ { e = EAddr _; _ } ]) ->
    report env Finding.Mem_error line "free of address-of expression"
  | ECall ("memcpy", [ d; src; _ ]) ->
    let rec base (x : expr) =
      match x.e with
      | EVar v -> Some v
      | EBinop ((Add | Sub), a, _) -> base a
      | ECast (_, a) -> base a
      | _ -> None
    in
    (match (base d, base src) with
    | Some x, Some y when x = y ->
      report env Finding.Bad_call line "overlapping memcpy on '%s'" x
    | _ -> ())
  | ECall (_, cargs)
    when List.exists
           (fun (a : expr) ->
             match a.e with
             | ECast ((Tint | Tlong), { e = EAddr _; _ }) -> true
             | _ -> false)
           cargs ->
    report env Finding.Bad_call line "address passed as an integer argument"
  | EVar v when Hashtbl.mem env.uninit v ->
    report env Finding.Uninit line "variable '%s' may be used uninitialized" v
  | EBinop ((Shl | Shr), _, rhs) -> (
    match const_of rhs with
    | Some c when c < 0L || c >= 32L ->
      report env Finding.Ub_generic line "shift amount %Ld out of range" c
    | _ -> ())
  | _ -> ());
  (* recurse; assignment handling updates state after scanning the rhs *)
  match e.e with
  | EAssign ({ e = EVar v; _ }, rhs) ->
    scan_expr env rhs;
    Hashtbl.remove env.uninit v;
    Hashtbl.remove env.freed v;
    (match const_of rhs with
    | Some 0L -> Hashtbl.replace env.zeros v ()
    | _ -> Hashtbl.remove env.zeros v);
    (match rhs.e with
    | ECall ("malloc", _) -> Hashtbl.remove env.freed v
    | _ -> ())
  | EAssign (l, r) ->
    (* non-variable target: the checks on indexing/dereference apply to
       writes exactly as to reads *)
    scan_expr env l;
    scan_expr env r
  | EUnop (_, a) | ECast (_, a) -> scan_expr env a
  | EAddr { e = EVar v; _ } ->
    (* address-taken: assume initialized through the pointer from here on *)
    Hashtbl.remove env.uninit v
  | EAddr a -> scan_expr env a
  | EBinop (_, a, b) ->
    scan_expr env a;
    scan_expr env b
  | ECall (_, args) -> List.iter (scan_expr env) args
  | EIndex (a, i) ->
    scan_base env a;
    scan_expr env i
  | EDeref a -> scan_base env a
  | ECond (c, t, f) ->
    scan_expr env c;
    scan_expr env t;
    scan_expr env f
  | EInt _ | ELong _ | EFloat _ | EStr _ | EVar _ | ELine -> ()

(* a variable used as a base of indexing/deref is a use, but not an
   uninitialized-value read of the pointee *)
and scan_base env (e : expr) =
  match e.e with EVar _ -> () | _ -> scan_expr env e

and scan_lvalue_subexprs env (e : expr) =
  match e.e with
  | EIndex (a, i) ->
    scan_base env a;
    scan_expr env i
  | EDeref a -> scan_base env a
  | _ -> ()

let rec scan_stmt env (s : stmt) =
  match s.s with
  | SExpr e -> scan_expr env e
  | SDecl d ->
    (match d.dtyp with
    | Tarr (_, n) -> Hashtbl.replace env.arrays d.dname n
    | _ -> ());
    (match d.dinit with
    | Some e ->
      scan_expr env e;
      (match const_of e with
      | Some 0L -> Hashtbl.replace env.zeros d.dname ()
      | _ -> ())
    | None ->
      (match d.dtyp with
      | Tarr _ -> () (* arrays are usually filled element-wise; too noisy *)
      | _ -> if not d.dstatic then Hashtbl.replace env.uninit d.dname ()))
  | SIf (c, t, f) ->
    (* uses inside conditions and after branches are not flagged as
       uninitialized: a branch might have initialized the variable, and
       flagging the condition itself proved too noisy *)
    Hashtbl.reset env.uninit;
    scan_expr env c;
    List.iter (scan_stmt env) t;
    List.iter (scan_stmt env) f
  | SWhile (c, b) ->
    Hashtbl.reset env.uninit;
    scan_expr env c;
    List.iter (scan_stmt env) b
  | SReturn (Some e) -> scan_expr env e
  | SReturn None | SBreak | SContinue -> ()
  | SPrint (_, args) -> List.iter (scan_expr env) args
  | SBlock b -> List.iter (scan_stmt env) b

let check (p : program) : Finding.t list =
  let env =
    {
      findings = [];
      arrays = Hashtbl.create 16;
      zeros = Hashtbl.create 16;
      uninit = Hashtbl.create 16;
      freed = Hashtbl.create 16;
    }
  in
  List.iter
    (fun g ->
      match g.gtyp with
      | Tarr (_, n) -> Hashtbl.replace env.arrays g.gname n
      | _ -> ())
    p.globals;
  List.iter
    (fun f ->
      Hashtbl.reset env.zeros;
      Hashtbl.reset env.uninit;
      Hashtbl.reset env.freed;
      List.iter (scan_stmt env) f.body)
    p.funcs;
  List.rev env.findings
