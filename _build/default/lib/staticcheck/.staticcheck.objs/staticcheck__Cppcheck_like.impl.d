lib/staticcheck/cppcheck_like.ml: Finding Format Hashtbl Int64 List Minic Option
