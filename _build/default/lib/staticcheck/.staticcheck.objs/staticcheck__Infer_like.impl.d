lib/staticcheck/infer_like.ml: Finding Format Hashtbl List Minic Option
