lib/staticcheck/static_tools.ml: Coverity_like Cppcheck_like Finding Infer_like List Minic
