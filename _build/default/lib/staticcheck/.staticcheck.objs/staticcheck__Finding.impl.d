lib/staticcheck/finding.ml: Format
