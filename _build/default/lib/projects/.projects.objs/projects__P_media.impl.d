lib/projects/p_media.ml: Project Skeleton Templates Templates_benign
