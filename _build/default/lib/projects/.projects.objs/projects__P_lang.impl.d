lib/projects/p_lang.ml: Project Skeleton Templates Templates_benign
