lib/projects/p_sys.ml: Project Skeleton Templates Templates_benign
