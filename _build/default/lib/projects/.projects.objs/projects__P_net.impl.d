lib/projects/p_net.ml: Compdiff Minic Project Skeleton Templates Templates_benign
