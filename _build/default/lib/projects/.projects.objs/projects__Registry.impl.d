lib/projects/registry.ml: Hashtbl List Option P_binutils P_lang P_media P_net P_sys Project
