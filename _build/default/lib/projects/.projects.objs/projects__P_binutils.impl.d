lib/projects/p_binutils.ml: Project Skeleton Templates Templates_benign
