lib/projects/skeleton.ml: Char Compdiff List Minic Printf Project String Templates
