lib/projects/templates.ml: Char Minic Printf Project Sanitizers String
