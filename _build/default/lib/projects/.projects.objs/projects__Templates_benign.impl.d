lib/projects/templates_benign.ml: Minic Templates
