lib/projects/project.ml: Cdcompiler Compdiff List Minic Sanitizers String
