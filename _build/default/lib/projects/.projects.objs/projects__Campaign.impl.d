lib/projects/campaign.ml: Array Cdcompiler Compdiff Fuzz Hashtbl List Project Registry Sanitizers
