(* A synthetic "real-world project": a MiniC program modeling one of the
   paper's 23 fuzzing targets (Table 4), with ground-truth seeded bugs.

   Each bug carries the category of Table 5, a witness input that
   triggers it, a trigger predicate used for triage (attributing a found
   divergence to a seeded bug), and the confirmed/fixed status we model
   after the paper's bug-report outcomes. *)

type bug_category =
  | EvalOrder
  | UninitMem
  | IntError
  | MemError
  | PointerCmp
  | Line
  | Misc

let category_to_string = function
  | EvalOrder -> "EvalOrder"
  | UninitMem -> "UninitMem"
  | IntError -> "IntError"
  | MemError -> "MemError"
  | PointerCmp -> "PointerCmp"
  | Line -> "LINE"
  | Misc -> "Misc."

type seeded_bug = {
  bug_id : string;
  category : bug_category;
  witness : string;             (* an input known to trigger the bug *)
  trigger : string -> bool;     (* does this input reach the bug? *)
  confirmed : bool;             (* modeled developer response *)
  fixed : bool;
  sanitizer_visible : Sanitizers.San.kind option;
      (* which sanitizer is expected to cover it (Table 6); checked by the
         harness, not assumed *)
}

type t = {
  pname : string;
  input_type : string;          (* Table 4 column *)
  version : string;
  paper_kloc : string;          (* the real project's size, for Table 4 *)
  program : Minic.Ast.program;
  seeds : string list;          (* initial fuzzing corpus *)
  bugs : seeded_bug list;
  normalize : Compdiff.Normalize.filter;
      (* per-target output post-processing (RQ5) *)
  nondeterministic : bool;      (* the RQ5 classification *)
  needs_buggy_compiler : bool;  (* MuJS: include the known-bad profile *)
}

let frontend (p : t) = Minic.frontend_exn p.program

let profiles_for (p : t) =
  if p.needs_buggy_compiler then Cdcompiler.Profiles.extended_with_buggy
  else Cdcompiler.Profiles.all

let loc (p : t) =
  (* lines of the rendered MiniC source *)
  let src = Minic.Pretty.program_to_string p.program in
  List.length (String.split_on_char '\n' src)

let find_bug (p : t) (id : string) = List.find_opt (fun b -> b.bug_id = id) p.bugs
