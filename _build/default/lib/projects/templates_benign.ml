(* Additional benign handler templates: realistic parsing machinery with
   no seeded flaw. They give the fuzzer a genuine coverage landscape (so
   queue growth and power scheduling matter, as on real targets) and make
   each synthetic project behave like the format family it models. *)

open Minic.Ast
open Minic.Builder

let handler ?(helpers = []) ?(globals = []) ~tag body : Templates.handler =
  { Templates.tag; helpers; globals; body; bug = None }

(* a TLV (type-length-value) walker: the bread and butter of every binary
   format the paper's targets parse *)
let tlv_walker ~uid ~tag : Templates.handler =
  ignore uid;
  handler ~tag
    [
      decl Tint "pos" ~init:(int 1);
      decl Tint "records" ~init:(int 0);
      decl Tint "bad" ~init:(int 0);
      while_
        (var "pos" +: int 1 <: call "input_len" [] &&: (var "records" <: int 12))
        [
          decl Tint "ty" ~init:(call "peek" [ var "pos" ]);
          decl Tint "len" ~init:(call "peek" [ var "pos" +: int 1 ] &: int 15);
          if_ (var "ty" ==: int 0) [ break_ ] [];
          decl Tint "sum" ~init:(int 0);
          for_up "i" (int 0) (var "len")
            [
              decl Tint "b" ~init:(call "peek" [ var "pos" +: int 2 +: var "i" ]);
              if_ (var "b" <: int 0)
                [ set "bad" (var "bad" +: int 1); break_ ]
                [ set "sum" (var "sum" +: var "b") ];
            ];
          print "tlv type=%d len=%d sum=%d\n" [ var "ty"; var "len"; var "sum" ];
          set "pos" (var "pos" +: int 2 +: var "len");
          set "records" (var "records" +: int 1);
        ];
      print "%d records, %d truncated\n" [ var "records"; var "bad" ];
    ]

(* a varint (LEB128-style) reader *)
let varint_reader ~uid ~tag : Templates.handler =
  let f = uid ^ "_read_varint" in
  handler ~tag
    ~helpers:
      [
        func Tint f
          ~params:[ (Tint, "start") ]
          [
            decl Tint "result" ~init:(int 0);
            decl Tint "shift" ~init:(int 0);
            decl Tint "i" ~init:(var "start");
            while_
              (var "shift" <: int 28)
              [
                decl Tint "b" ~init:(call "peek" [ var "i" ]);
                if_ (var "b" <: int 0) [ ret (neg (int 1)) ] [];
                set "result"
                  (var "result" |: ((var "b" &: int 127) <<: var "shift"));
                if_ ((var "b" &: int 128) ==: int 0) [ ret (var "result") ] [];
                set "shift" (var "shift" +: int 7);
                set "i" (var "i" +: int 1);
              ];
            ret (var "result");
          ];
      ]
    [
      decl Tint "v1" ~init:(call f [ int 1 ]);
      decl Tint "v2" ~init:(call f [ int 3 ]);
      if_ (var "v1" <: int 0 ||: (var "v2" <: int 0))
        [ print "truncated varint\n" [] ]
        [ print "varints %d %d\n" [ var "v1"; var "v2" ] ];
    ]

(* base64-flavoured alphabet validation and 4->3 length accounting *)
let base64_validator ~uid ~tag : Templates.handler =
  let f = uid ^ "_b64_class" in
  handler ~tag
    ~helpers:
      [
        func Tint f
          ~params:[ (Tint, "c") ]
          [
            if_ (var "c" >=: int 65 &&: (var "c" <=: int 90)) [ ret (int 1) ] [];
            if_ (var "c" >=: int 97 &&: (var "c" <=: int 122)) [ ret (int 1) ] [];
            if_ (var "c" >=: int 48 &&: (var "c" <=: int 57)) [ ret (int 1) ] [];
            if_ (var "c" ==: int 43 ||: (var "c" ==: int 47)) [ ret (int 1) ] [];
            if_ (var "c" ==: int 61) [ ret (int 2) ] [];
            ret (int 0);
          ];
      ]
    [
      decl Tint "valid" ~init:(int 0);
      decl Tint "pad" ~init:(int 0);
      decl Tint "i" ~init:(int 1);
      while_
        (var "i" <: call "input_len" [] &&: (var "i" <: int 40))
        [
          decl Tint "cls" ~init:(call f [ call "peek" [ var "i" ] ]);
          if_ (var "cls" ==: int 0) [ break_ ] [];
          if_ (var "cls" ==: int 2) [ set "pad" (var "pad" +: int 1) ]
            [ set "valid" (var "valid" +: int 1) ];
          set "i" (var "i" +: int 1);
        ];
      if_
        ((var "valid" +: var "pad") %: int 4 ==: int 0 &&: (var "pad" <=: int 2))
        [ print "b64 ok, %d bytes decoded\n" [ (var "valid" +: var "pad") /: int 4 *: int 3 -: var "pad" ] ]
        [ print "b64 malformed at %d\n" [ var "valid" +: var "pad" ] ];
    ]

(* run-length decoding into a bounded buffer, with correct clamping *)
let rle_decoder ~uid ~tag : Templates.handler =
  let g = uid ^ "_rle_out" in
  handler ~tag
    ~globals:[ global_arr g Tint 32 ]
    [
      decl Tint "outpos" ~init:(int 0);
      decl Tint "inpos" ~init:(int 1);
      while_
        (var "inpos" +: int 1 <: call "input_len" []
        &&: (var "outpos" <: int 32))
        [
          decl Tint "count" ~init:(call "peek" [ var "inpos" ] &: int 7);
          decl Tint "value" ~init:(call "peek" [ var "inpos" +: int 1 ] &: int 255);
          for_up "i" (int 0) (var "count")
            [
              if_ (var "outpos" <: int 32)
                [
                  set_idx (var g) (var "outpos") (var "value");
                  set "outpos" (var "outpos" +: int 1);
                ]
                [];
            ];
          set "inpos" (var "inpos" +: int 2);
        ];
      decl Tint "acc" ~init:(int 0);
      for_up "i" (int 0) (var "outpos")
        [ set "acc" (var "acc" ^: idx (var g) (var "i")) ];
      print "rle %d cells, xor=%d\n" [ var "outpos"; var "acc" ];
    ]

(* a little hash-chain over the payload (symbol-table flavour) *)
let hash_chain ~uid ~tag : Templates.handler =
  let g = uid ^ "_buckets" in
  handler ~tag
    ~globals:[ global_arr g Tint 8 ]
    [
      for_up "i" (int 0) (int 8) [ set_idx (var g) (var "i") (int 0) ];
      decl Tint "i" ~init:(int 1);
      while_
        (var "i" <: call "input_len" [] &&: (var "i" <: int 32))
        [
          decl Tint "h" ~init:((call "peek" [ var "i" ] *: int 31) &: int 7);
          set_idx (var g) (var "h") (idx (var g) (var "h") +: int 1);
          set "i" (var "i" +: int 1);
        ];
      decl Tint "max" ~init:(int 0);
      decl Tint "arg" ~init:(int 0);
      for_up "j" (int 0) (int 8)
        [
          if_ (idx (var g) (var "j") >: var "max")
            [ set "max" (idx (var g) (var "j")); set "arg" (var "j") ]
            [];
        ];
      print "hottest bucket %d (%d entries)\n" [ var "arg"; var "max" ];
    ]

(* fixed-point scaling arithmetic (image/audio resampling flavour),
   carefully kept within defined ranges *)
let fixed_point_scaler ~uid ~tag : Templates.handler =
  ignore uid;
  handler ~tag
    [
      decl Tint "num" ~init:(call "peek" [ int 1 ] &: int 63 |: int 1);
      decl Tint "den" ~init:(call "peek" [ int 2 ] &: int 63 |: int 1);
      decl Tint "acc" ~init:(int 0);
      for_up "i" (int 0) (int 8)
        [
          decl Tint "sample" ~init:(call "peek" [ var "i" +: int 3 ] &: int 255);
          set "acc" (var "acc" +: (var "sample" *: var "num" /: var "den"));
        ];
      print "scaled sum %d (ratio %d/%d)\n" [ var "acc"; var "num"; var "den" ];
    ]
