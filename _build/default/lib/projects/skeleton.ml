(* Assembles a list of tag handlers into a complete project program:
   one function per handler plus a dispatching [main] that reads the tag
   byte, mirroring the structure of the real fuzzing targets (one input
   format, many record kinds). *)

open Minic.Ast
open Minic.Builder

let handler_fname (uid : string) (h : Templates.handler) =
  Printf.sprintf "%s_handle_%c" uid h.Templates.tag

(* optional banner statements prepended to main (e.g. wireshark's
   timestamped warnings) *)
let build ?(banner = []) ~(uid : string) (handlers : Templates.handler list) :
    Minic.Ast.program * Project.seeded_bug list * string list =
  let helper_funcs = List.concat_map (fun h -> h.Templates.helpers) handlers in
  let globals = List.concat_map (fun h -> h.Templates.globals) handlers in
  let handler_funcs =
    List.map
      (fun h -> func Tint (handler_fname uid h) (h.Templates.body @ [ ret (int 0) ]))
      handlers
  in
  let dispatch =
    List.fold_right
      (fun h rest ->
        [
          if_
            (var "tag" ==: int (Char.code h.Templates.tag))
            [ expr (call (handler_fname uid h) []); ret (int 0) ]
            rest;
        ])
      handlers
      [ print "unknown record %d\n" [ var "tag" ]; ret (int 1) ]
  in
  let main_f =
    func Tint "main"
      (banner
      @ [
          decl Tint "tag" ~init:(call "getchar" []);
          if_ (var "tag" ==: int (-1)) [ print "empty input\n" []; ret (int 0) ] [];
        ]
      @ dispatch)
  in
  let program = { globals; funcs = helper_funcs @ handler_funcs @ [ main_f ] } in
  let bugs = List.filter_map (fun h -> h.Templates.bug) handlers in
  let seeds =
    (* every tag appears in the corpus with a small payload, as a real
       target's test suite would cover every record kind *)
    "" :: List.map (fun h -> Printf.sprintf "%cAB0" h.Templates.tag) handlers
  in
  (program, bugs, seeds)

let make ?banner ?(normalize = Compdiff.Normalize.identity)
    ?(nondeterministic = false) ?(needs_buggy_compiler = false) ~pname
    ~input_type ~version ~paper_kloc (handlers : Templates.handler list) :
    Project.t =
  let uid = String.map (fun c -> if c = '-' then '_' else c) pname in
  let program, bugs, seeds = build ?banner ~uid handlers in
  {
    Project.pname;
    input_type;
    version;
    paper_kloc;
    program;
    seeds;
    bugs;
    normalize;
    nondeterministic;
    needs_buggy_compiler;
  }
