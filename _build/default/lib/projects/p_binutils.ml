(* Binary-file analyzers: objdump, readelf, nm-new, sysdump (binutils
   2.36.1 in the paper) plus their characteristic findings -- including
   readelf's invalid pointer comparison (Listing 2) and the LINE
   interpretation inconsistency. *)

open Templates

let objdump : Project.t =
  Skeleton.make ~pname:"objdump" ~input_type:"Binary file" ~version:"2.36.1"
    ~paper_kloc:"74K"
    [
      benign_magic ~uid:"objdump_hdr" ~tag:'E' ~magic:127;
      bug_mem_oob ~uid:"objdump_sec" ~tag:'S';
      bug_uninit_branch ~uid:"objdump_sym" ~tag:'Y';
      bug_misc_ptrprint ~uid:"objdump_val" ~tag:'V';
      benign_fields ~uid:"objdump_rel" ~tag:'R';
      Templates_benign.tlv_walker ~uid:"objdump_notes" ~tag:'T';
      Templates_benign.hash_chain ~uid:"objdump_symhash" ~tag:'Z';
    ]

let readelf : Project.t =
  Skeleton.make ~pname:"readelf" ~input_type:"Binary file" ~version:"2.36.1"
    ~paper_kloc:"72K"
    [
      benign_magic ~uid:"readelf_hdr" ~tag:'E' ~magic:127;
      bug_mem_oob ~uid:"readelf_dyn" ~tag:'D';
      bug_uninit_print ~uid:"readelf_note" ~tag:'N';
      bug_ptrcmp ~uid:"readelf_dwarf" ~tag:'W';
      bug_line ~uid:"readelf_diag" ~tag:'L';
      benign_checksum ~uid:"readelf_crc" ~tag:'C';
      Templates_benign.varint_reader ~uid:"readelf_uleb" ~tag:'V';
      Templates_benign.hash_chain ~uid:"readelf_gnuhash" ~tag:'H';
    ]

let nm_new : Project.t =
  Skeleton.make ~pname:"nm-new" ~input_type:"Binary file" ~version:"2.36.1"
    ~paper_kloc:"55K"
    [
      benign_magic ~uid:"nm_hdr" ~tag:'E' ~magic:127;
      bug_mem_uaf ~uid:"nm_symtab" ~tag:'S';
      bug_uninit_branch ~uid:"nm_demangle" ~tag:'D';
      bug_misc_addrkey ~uid:"nm_sort" ~tag:'O';
      benign_statemachine ~uid:"nm_names" ~tag:'N';
      Templates_benign.tlv_walker ~uid:"nm_stabs" ~tag:'T';
      Templates_benign.fixed_point_scaler ~uid:"nm_sizes" ~tag:'X';
    ]

let sysdump : Project.t =
  Skeleton.make ~pname:"sysdump" ~input_type:"Binary file" ~version:"2.36.1"
    ~paper_kloc:"10K"
    [
      bug_mem_oob ~uid:"sysdump_rec" ~tag:'R';
      bug_uninit_branch ~uid:"sysdump_hdr" ~tag:'H';
      bug_misc_addrkey ~uid:"sysdump_idx" ~tag:'I';
      benign_fields ~uid:"sysdump_raw" ~tag:'B';
      Templates_benign.tlv_walker ~uid:"sysdump_it" ~tag:'T';
      Templates_benign.varint_reader ~uid:"sysdump_len" ~tag:'V';
    ]
