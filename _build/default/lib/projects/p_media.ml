(* Multimedia targets: audio, images, PDF, video. exiv2 carries the
   Listing 4 uninitialized-print; libtiff the "bad random value" finding;
   the floating-point Misc findings live in libsndfile/ImageMagick/gpac
   and brotli (in [P_sys]). *)

open Templates

let libsndfile : Project.t =
  Skeleton.make ~pname:"libsndfile" ~input_type:"Audio" ~version:"1.0.31"
    ~paper_kloc:"66K"
    [
      benign_magic ~uid:"snd_riff" ~tag:'R' ~magic:82;
      bug_mem_oob ~uid:"snd_chunk" ~tag:'C';
      bug_uninit_branch ~uid:"snd_fmt" ~tag:'F';
      bug_misc_float ~uid:"snd_gain" ~tag:'G';
      benign_fields ~uid:"snd_data" ~tag:'D';
      Templates_benign.fixed_point_scaler ~uid:"snd_resample" ~tag:'X';
      Templates_benign.tlv_walker ~uid:"snd_chunks" ~tag:'T';
    ]

let exiv2 : Project.t =
  Skeleton.make ~pname:"exiv2" ~input_type:"Exiv2 image" ~version:"0.27.5"
    ~paper_kloc:"384K"
    [
      benign_magic ~uid:"exiv2_jpg" ~tag:'J' ~magic:216;
      bug_uninit_print ~uid:"exiv2_canon" ~tag:'C';
      bug_uninit_branch ~uid:"exiv2_ifd" ~tag:'I';
      bug_misc_rand ~uid:"exiv2_thumb" ~tag:'T';
      benign_statemachine ~uid:"exiv2_xmp" ~tag:'X';
      Templates_benign.varint_reader ~uid:"exiv2_rational" ~tag:'V';
      Templates_benign.rle_decoder ~uid:"exiv2_preview" ~tag:'R';
    ]

let libtiff : Project.t =
  Skeleton.make ~pname:"libtiff" ~input_type:"Tiff image" ~version:"4.3.0"
    ~paper_kloc:"37K" ~nondeterministic:false
    [
      benign_magic ~uid:"tiff_hdr" ~tag:'I' ~magic:42;
      bug_uninit_branch ~uid:"tiff_strip" ~tag:'S';
      bug_uninit_print ~uid:"tiff_tag" ~tag:'T';
      bug_int_promote ~uid:"tiff_dims" ~tag:'D';
      bug_line ~uid:"tiff_warn" ~tag:'W';
      bug_misc_rand ~uid:"tiff_fill" ~tag:'F';
      Templates_benign.rle_decoder ~uid:"tiff_packbits" ~tag:'R';
      Templates_benign.hash_chain ~uid:"tiff_tags" ~tag:'H';
    ]

let imagemagick : Project.t =
  Skeleton.make ~pname:"ImageMagick" ~input_type:"Image" ~version:"7.1.0-23"
    ~paper_kloc:"655K" ~nondeterministic:true
    [
      bug_mem_oob ~uid:"magick_pixels" ~tag:'P';
      bug_uninit_branch ~uid:"magick_profile" ~tag:'R';
      bug_line ~uid:"magick_assert" ~tag:'A';
      bug_misc_float ~uid:"magick_gamma" ~tag:'G';
      benign_checksum ~uid:"magick_sig" ~tag:'S';
      benign_fields ~uid:"magick_meta" ~tag:'M';
      Templates_benign.fixed_point_scaler ~uid:"magick_resize" ~tag:'X';
      Templates_benign.tlv_walker ~uid:"magick_chunks" ~tag:'T';
    ]

let grok : Project.t =
  Skeleton.make ~pname:"grok" ~input_type:"JPEG 2000" ~version:"9.7.0"
    ~paper_kloc:"127K" ~nondeterministic:true
    [
      benign_magic ~uid:"grok_soc" ~tag:'O' ~magic:79;
      bug_uninit_branch ~uid:"grok_tile" ~tag:'T';
      bug_int_promote ~uid:"grok_res" ~tag:'R';
      bug_misc_addrkey ~uid:"grok_cblk" ~tag:'C';
      benign_statemachine ~uid:"grok_marker" ~tag:'M';
      Templates_benign.fixed_point_scaler ~uid:"grok_dwt" ~tag:'X';
      Templates_benign.hash_chain ~uid:"grok_prec" ~tag:'H';
    ]

let pdftotext : Project.t =
  Skeleton.make ~pname:"pdftotext" ~input_type:"PDF" ~version:"4.03"
    ~paper_kloc:"130K"
    [
      benign_magic ~uid:"pdf_hdr" ~tag:'P' ~magic:37;
      bug_mem_oob ~uid:"pdf_xref" ~tag:'X';
      bug_uninit_branch ~uid:"pdf_font" ~tag:'F';
      bug_uninit_print ~uid:"pdf_encoding" ~tag:'E';
      benign_statemachine ~uid:"pdf_objs" ~tag:'O';
      Templates_benign.varint_reader ~uid:"pdf_stream" ~tag:'V';
      Templates_benign.rle_decoder ~uid:"pdf_ascii85" ~tag:'R';
    ]

let pdftoppm : Project.t =
  Skeleton.make ~pname:"pdftoppm" ~input_type:"PDF" ~version:"21.11.0"
    ~paper_kloc:"203K"
    [
      benign_magic ~uid:"ppm_hdr" ~tag:'P' ~magic:37;
      bug_uninit_branch ~uid:"ppm_render" ~tag:'R';
      bug_misc_addrkey ~uid:"ppm_splash" ~tag:'S';
      bug_misc_rand ~uid:"ppm_dither" ~tag:'D';
      benign_fields ~uid:"ppm_page" ~tag:'G';
      Templates_benign.fixed_point_scaler ~uid:"ppm_scale" ~tag:'X';
      Templates_benign.hash_chain ~uid:"ppm_palette" ~tag:'H';
    ]

let gpac : Project.t =
  Skeleton.make ~pname:"gpac" ~input_type:"Video" ~version:"2.0.0"
    ~paper_kloc:"597K" ~nondeterministic:true
    [
      benign_magic ~uid:"gpac_ftyp" ~tag:'F' ~magic:102;
      bug_uninit_branch ~uid:"gpac_track" ~tag:'T';
      bug_int_guard ~uid:"gpac_sample" ~tag:'S';
      bug_line ~uid:"gpac_isom" ~tag:'M';
      benign_checksum ~uid:"gpac_box" ~tag:'B';
      Templates_benign.varint_reader ~uid:"gpac_nal" ~tag:'V';
      Templates_benign.fixed_point_scaler ~uid:"gpac_pts" ~tag:'X';
    ]
