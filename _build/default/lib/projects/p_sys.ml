(* Crypto, archives and compression: openssl, ClamAV, libzip, brotli
   (whose floating-point imprecision finding the developers committed to
   fixing because it changed compressed output across compilers). *)

open Templates

let openssl : Project.t =
  Skeleton.make ~pname:"openssl" ~input_type:"Binary file" ~version:"3.0.0"
    ~paper_kloc:"702K"
    [
      benign_magic ~uid:"ssl_der" ~tag:'D' ~magic:48;
      bug_mem_uaf ~uid:"ssl_session" ~tag:'S';
      bug_uninit_branch ~uid:"ssl_ext" ~tag:'E';
      bug_int_guard ~uid:"ssl_asn1len" ~tag:'L';
      bug_misc_addrkey ~uid:"ssl_ctxid" ~tag:'C';
      benign_checksum ~uid:"ssl_digest" ~tag:'G';
      Templates_benign.varint_reader ~uid:"ssl_asn1tag" ~tag:'V';
      Templates_benign.base64_validator ~uid:"ssl_pem" ~tag:'B';
    ]

let clamav : Project.t =
  Skeleton.make ~pname:"ClamAV" ~input_type:"Binary file" ~version:"0.103.3"
    ~paper_kloc:"239K"
    [
      benign_magic ~uid:"clam_pe" ~tag:'M' ~magic:90;
      bug_mem_oob ~uid:"clam_section" ~tag:'S';
      bug_uninit_branch ~uid:"clam_sigs" ~tag:'G';
      bug_uninit_branch ~uid:"clam_heur" ~tag:'H';
      bug_int_promote ~uid:"clam_unpack" ~tag:'U';
      benign_fields ~uid:"clam_hdr" ~tag:'F';
      Templates_benign.tlv_walker ~uid:"clam_res" ~tag:'T';
      Templates_benign.rle_decoder ~uid:"clam_rle" ~tag:'R';
    ]

let libzip : Project.t =
  Skeleton.make ~pname:"libzip" ~input_type:"Compress tool" ~version:"v1.8.0"
    ~paper_kloc:"29K"
    [
      benign_magic ~uid:"zip_eocd" ~tag:'K' ~magic:80;
      bug_mem_uaf ~uid:"zip_entry" ~tag:'E';
      bug_uninit_branch ~uid:"zip_extfield" ~tag:'X';
      bug_int_guard ~uid:"zip_cdoffset" ~tag:'C';
      bug_misc_addrkey ~uid:"zip_source" ~tag:'S';
      benign_checksum ~uid:"zip_crc" ~tag:'R';
      Templates_benign.varint_reader ~uid:"zip_extra" ~tag:'V';
      Templates_benign.hash_chain ~uid:"zip_names" ~tag:'H';
    ]

let brotli : Project.t =
  Skeleton.make ~pname:"brotli" ~input_type:"Compress tool" ~version:"v1.0.9"
    ~paper_kloc:"55K"
    [
      bug_int_promote ~uid:"brotli_window" ~tag:'W';
      bug_misc_float ~uid:"brotli_bitcost" ~tag:'B';
      benign_statemachine ~uid:"brotli_rle" ~tag:'R';
      benign_fields ~uid:"brotli_dict" ~tag:'D';
      benign_checksum ~uid:"brotli_check" ~tag:'C';
      Templates_benign.rle_decoder ~uid:"brotli_runs" ~tag:'L';
      Templates_benign.hash_chain ~uid:"brotli_ctx" ~tag:'H';
    ]
