(* Bug and benign-code templates for the synthetic projects.

   A project is a tag-dispatched input parser; each handler is generated
   from a template, optionally seeding one ground-truth bug of a Table 5
   category. Templates take a unique prefix [uid] (names stay distinct
   when several instances land in one project) and the dispatch [tag]. *)

open Minic.Ast
open Minic.Builder

type handler = {
  tag : char;
  helpers : func list;
  globals : global list;
  body : stmt list;          (* body of the per-tag handler function *)
  bug : Project.seeded_bug option;
}

let mk_bug ?(sanitizer = None) ~id ~category ~witness ~trigger () =
  Some
    {
      Project.bug_id = id;
      category;
      witness;
      trigger;
      confirmed = false;       (* statuses assigned by the registry *)
      fixed = false;
      sanitizer_visible = sanitizer;
    }

let tag_is tag s = String.length s > 0 && s.[0] = tag

let payload_byte s i = if String.length s > i then Char.code s.[i] else -1

(* --- benign handlers: realistic parsing code with no seeded flaw --- *)

(* checksum over the payload *)
let benign_checksum ~uid ~tag : handler =
  let f = uid ^ "_checksum" in
  {
    tag;
    helpers =
      [
        func Tint f
          ~params:[ (Tint, "len") ]
          [
            decl Tint "sum" ~init:(int 0);
            for_up "i" (int 0) (var "len")
              [ set "sum" (var "sum" +: (call "peek" [ var "i" +: int 1 ] &: int 255)) ];
            ret (var "sum" &: int 65535);
          ];
      ];
    globals = [];
    body =
      [
        decl Tint "n" ~init:(call "input_len" [] -: int 1);
        if_ (var "n" >: int 64) [ set "n" (int 64) ] [];
        print "checksum=%d\n" [ call f [ var "n" ] ];
      ];
    bug = None;
  }

(* length-prefixed field dump with correct bounds checks *)
let benign_fields ~uid ~tag : handler =
  let g = uid ^ "_fieldbuf" in
  {
    tag;
    helpers = [];
    globals = [ global_arr g Tint 16 ];
    body =
      [
        decl Tint "len" ~init:(call "peek" [ int 1 ]);
        if_ (var "len" <: int 0 ||: (var "len" >: int 15)) [ set "len" (int 0) ] [];
        for_up "i" (int 0) (var "len")
          [ set_idx (var g) (var "i") (call "peek" [ var "i" +: int 2 ]) ];
        decl Tint "acc" ~init:(int 0);
        for_up "i" (int 0) (var "len") [ set "acc" (var "acc" +: idx (var g) (var "i")) ];
        print "fields=%d acc=%d\n" [ var "len"; var "acc" ];
      ];
    bug = None;
  }

(* magic validation + version print *)
let benign_magic ~uid ~tag ~magic : handler =
  ignore uid;
  {
    tag;
    helpers = [];
    globals = [];
    body =
      [
        if_ (call "peek" [ int 1 ] ==: int magic)
          [ print "magic ok version=%d\n" [ call "peek" [ int 2 ] &: int 15 ] ]
          [ print "bad magic\n" [] ];
      ];
    bug = None;
  }

(* a small state machine over payload bytes *)
let benign_statemachine ~uid ~tag : handler =
  ignore uid;
  {
    tag;
    helpers = [];
    globals = [];
    body =
      [
        decl Tint "state" ~init:(int 0);
        decl Tint "i" ~init:(int 1);
        while_
          (var "i" <: call "input_len" [] &&: (var "i" <: int 48))
          [
            decl Tint "c" ~init:(call "peek" [ var "i" ]);
            if_ (var "c" ==: int 40) [ set "state" (var "state" +: int 1) ] [];
            if_ (var "c" ==: int 41 &&: (var "state" >: int 0))
              [ set "state" (var "state" -: int 1) ]
              [];
            set "i" (var "i" +: int 1);
          ];
        print "nesting=%d\n" [ var "state" ];
      ];
    bug = None;
  }

(* --- bug templates --- *)

(* EvalOrder: the Tcpdump Listing 3 shape (shared static buffer, %s) *)
let bug_evalorder ~uid ~tag : handler =
  let f = uid ^ "_addr_string" in
  {
    tag;
    helpers =
      [
        func (Tptr Tint) f
          ~params:[ (Tint, "v") ]
          [
            decl_static (Tarr (Tint, 8)) "buffer";
            set_idx (var "buffer") (int 0) (int 48 +: (var "v" /: int 10 %: int 10));
            set_idx (var "buffer") (int 1) (int 48 +: (var "v" %: int 10));
            set_idx (var "buffer") (int 2) (int 0);
            ret (var "buffer");
          ];
      ];
    globals = [];
    body =
      [
        print "who-is %s tell %s\n"
          [
            call f [ call "peek" [ int 1 ] &: int 63 ];
            call f [ call "peek" [ int 2 ] &: int 63 |: int 64 ];
          ];
      ];
    bug =
      mk_bug ~id:(uid ^ "-evalorder") ~category:Project.EvalOrder
        ~witness:(Printf.sprintf "%c12" tag)
        ~trigger:(tag_is tag) ();
  }

(* UninitMem, MSan-visible: the uninitialized value decides a branch *)
let bug_uninit_branch ~uid ~tag : handler =
  {
    tag;
    helpers = [];
    globals = [];
    body =
      [
        decl Tint "status";
        decl Tint "marker" ~init:(call "peek" [ int 1 ]);
        if_ (var "marker" ==: int 73) [ set "status" (int 1) ] [];
        if_ (var "status" >: int 0)
          [ print "record valid\n" [] ]
          [ print "record invalid\n" [] ];
      ];
    bug =
      mk_bug
        ~sanitizer:(Some Sanitizers.San.Msan)
        ~id:(uid ^ "-uninit-branch") ~category:Project.UninitMem
        ~witness:(String.make 1 tag)
        ~trigger:(fun s -> tag_is tag s && payload_byte s 1 <> 73)
        ();
  }

(* UninitMem, MSan-invisible: the uninitialized value is only printed
   (the exiv2 Listing 4 shape) *)
let bug_uninit_print ~uid ~tag : handler =
  {
    tag;
    helpers = [];
    globals = [];
    body =
      [
        decl Tint "l";
        decl Tint "c" ~init:(call "peek" [ int 1 ]);
        if_ (var "c" >=: int 48 &&: (var "c" <: int 58))
          [ set "l" (var "c" -: int 48) ]
          [];
        print "field value %d\n" [ var "l" ];
      ];
    bug =
      mk_bug ~id:(uid ^ "-uninit-print") ~category:Project.UninitMem
        ~witness:(String.make 1 tag)
        ~trigger:(fun s ->
          tag_is tag s
          && not (payload_byte s 1 >= 48 && payload_byte s 1 < 58))
        ();
  }

(* IntError: widened multiplication (clangx -O1) on a size computation *)
let bug_int_promote ~uid ~tag : handler =
  {
    tag;
    helpers = [];
    globals = [];
    body =
      [
        decl Tint "dim" ~init:((call "peek" [ int 1 ] &: int 127) *: int 1000);
        decl Tlong "pixels" ~init:(var "dim" *: var "dim");
        print "need %ld cells\n" [ var "pixels" ];
      ];
    bug =
      mk_bug
        ~sanitizer:(Some Sanitizers.San.Ubsan)
        ~id:(uid ^ "-int-promote") ~category:Project.IntError
        ~witness:(Printf.sprintf "%c%c" tag (Char.chr 100))
        ~trigger:(fun s -> tag_is tag s && payload_byte s 1 land 127 >= 47)
        ();
  }

(* IntError: overflow guard folded away (Listing 1) *)
let bug_int_guard ~uid ~tag : handler =
  {
    tag;
    helpers = [];
    globals = [];
    body =
      [
        decl Tint "offset" ~init:(int 2147483000);
        (* record length field is stored in 8-byte units *)
        decl Tint "len" ~init:((call "peek" [ int 1 ] &: int 255) *: int 8);
        if_ (var "offset" +: var "len" <: var "offset")
          [ print "length rejected\n" [] ]
          [ print "dumping at %d\n" [ var "offset" +: var "len" ] ];
      ];
    bug =
      mk_bug
        ~sanitizer:(Some Sanitizers.San.Ubsan)
        ~id:(uid ^ "-int-guard") ~category:Project.IntError
        ~witness:(Printf.sprintf "%c%c" tag (Char.chr 200))
        ~trigger:(fun s ->
          tag_is tag s && (payload_byte s 1 land 255) * 8 > 647)
        ();
  }

(* MemError: off-by-one through a length field, adjacent victim printed *)
let bug_mem_oob ~uid ~tag : handler =
  let f = uid ^ "_copy_record" in
  {
    tag;
    helpers =
      [
        func Tvoid f
          ~params:[ (Tptr Tint, "dst"); (Tint, "cnt") ]
          [
            (* the off-by-one: records hold cnt+1 entries (count byte plus
               payload), the buffer only cnt *)
            for_up "i" (int 0) (var "cnt" +: int 1)
              [ set_idx (var "dst") (var "i") (call "peek" [ var "i" +: int 2 ] &: int 255) ];
          ];
      ];
    globals = [];
    body =
      [
        decl_arr Tint "record" 4;
        decl Tint "kind" ~init:(int 505);
        for_up "i" (int 0) (int 4) [ set_idx (var "record") (var "i") (int 0) ];
        decl Tint "len" ~init:(call "peek" [ int 1 ] -: int 48);
        (* the validation believes the loop writes len entries; it writes
           len+1, so len == 4 overruns the 4-cell record *)
        if_ (var "len" <: int 0 ||: (var "len" >: int 4)) [ set "len" (int 0) ] [];
        expr (call f [ var "record"; var "len" ]);
        print "kind=%d first=%d\n" [ var "kind"; idx (var "record") (int 0) ];
      ];
    bug =
      mk_bug
        ~sanitizer:(Some Sanitizers.San.Asan)
        ~id:(uid ^ "-mem-oob") ~category:Project.MemError
        ~witness:(Printf.sprintf "%c4ABCDE" tag)
        ~trigger:(fun s -> tag_is tag s && payload_byte s 1 = 52)
        ();
  }

(* MemError: stale heap pointer read after reallocation *)
let bug_mem_uaf ~uid ~tag : handler =
  {
    tag;
    helpers = [];
    globals = [];
    body =
      [
        decl (Tptr Tint) "hdr" ~init:(call "malloc" [ int 4 ]);
        set_idx (var "hdr") (int 0) (int 1111);
        if_ (call "peek" [ int 1 ] ==: int 82)
          [
            (* "reload" path frees and reallocates, but keeps using hdr *)
            expr (call "free" [ var "hdr" ]);
            decl (Tptr Tint) "fresh" ~init:(call "malloc" [ int 4 ]);
            set_idx (var "fresh") (int 0) (int 2222);
            print "hdr=%d\n" [ idx (var "hdr") (int 0) ];
            expr (call "free" [ var "fresh" ]);
          ]
          [
            print "hdr=%d\n" [ idx (var "hdr") (int 0) ];
            expr (call "free" [ var "hdr" ]);
          ];
      ];
    bug =
      mk_bug
        ~sanitizer:(Some Sanitizers.San.Asan)
        ~id:(uid ^ "-mem-uaf") ~category:Project.MemError
        ~witness:(Printf.sprintf "%cR" tag)
        ~trigger:(fun s -> tag_is tag s && payload_byte s 1 = 82)
        ();
  }

(* PointerCmp: the binutils Listing 2 shape *)
let bug_ptrcmp ~uid ~tag : handler =
  let a = uid ^ "_section_a" and b = uid ^ "_section_b" in
  {
    tag;
    helpers = [];
    globals = [ global_arr a Tint 4; global_arr b Tint 4 ];
    body =
      [
        decl (Tptr Tint) "saved_start" ~init:(var a);
        decl (Tptr Tint) "look_for" ~init:(var b);
        if_ (binop Le (var "look_for") (var "saved_start"))
          [ print "scanning backwards\n" [] ]
          [ print "scanning forwards\n" [] ];
      ];
    bug =
      mk_bug ~id:(uid ^ "-ptrcmp") ~category:Project.PointerCmp
        ~witness:(String.make 1 tag)
        ~trigger:(tag_is tag) ();
  }

(* LINE: a diagnostic printing __LINE__ from a multi-line statement *)
let bug_line ~uid ~tag : handler =
  ignore uid;
  let spanning_line =
    (* token on the line after the statement start: implementations
       legally disagree on which line __LINE__ names *)
    { e = ELine; eloc = { line = 1202; stmt_line = 1201 } }
  in
  {
    tag;
    helpers = [];
    globals = [];
    body =
      [
        if_ (call "peek" [ int 1 ] ==: int 63)
          [ print "warning: bad escape at line %d\n" [ spanning_line ] ]
          [ print "parsed ok\n" [] ];
      ];
    bug =
      mk_bug ~id:(uid ^ "-line") ~category:Project.Line
        ~witness:(Printf.sprintf "%c?" tag)
        ~trigger:(fun s -> tag_is tag s && payload_byte s 1 = 63)
        ();
  }

(* Misc: floating-point imprecision (pow -> exp2 under clangx -O3) *)
let bug_misc_float ~uid ~tag : handler =
  ignore uid;
  {
    tag;
    helpers = [];
    globals = [];
    body =
      [
        decl Tdouble "ratio" ~init:(flt 0.731);
        decl Tdouble "scale" ~init:(call "pow" [ flt 2.0; var "ratio" ]);
        print "window=%f\n" [ var "scale" *: flt 1000000000000.0 ];
      ];
    bug =
      mk_bug ~id:(uid ^ "-misc-float") ~category:Project.Misc
        ~witness:(String.make 1 tag)
        ~trigger:(tag_is tag) ();
  }

(* Misc: printing a pointer instead of the pointed-to value (objdump) *)
let bug_misc_ptrprint ~uid ~tag : handler =
  let g = uid ^ "_symtab" in
  {
    tag;
    helpers = [];
    globals = [ global_arr g Tint 4 ~init:[ 7L; 8L; 9L; 10L ] ];
    body =
      [
        decl (Tptr Tint) "sym" ~init:(var g +: (call "peek" [ int 1 ] &: int 3));
        (* meant to print *sym; prints the pointer *)
        print "symbol value %d\n" [ cast Tint (var "sym") ];
      ];
    bug =
      mk_bug ~id:(uid ^ "-misc-ptrprint") ~category:Project.Misc
        ~witness:(String.make 1 tag)
        ~trigger:(tag_is tag) ();
  }

(* Misc: a "random" session token read from an uninitialized heap cell
   (the libtiff bad-random finding) *)
let bug_misc_rand ~uid ~tag : handler =
  {
    tag;
    helpers = [];
    globals = [];
    body =
      [
        decl (Tptr Tint) "scratch" ~init:(call "malloc" [ int 8 ]);
        print "session token %d\n" [ idx (var "scratch") (int 5) ];
        expr (call "free" [ var "scratch" ]);
      ];
    bug =
      mk_bug ~id:(uid ^ "-misc-rand") ~category:Project.Misc
        ~witness:(String.make 1 tag)
        ~trigger:(tag_is tag) ();
  }

(* Misc: a genuine compiler bug -- the known-bad clangx-Os-buggy CSE
   reuses a stale load across a store through an alias (MuJS RQ2) *)
let bug_misc_compiler ~uid ~tag : handler =
  {
    tag;
    helpers = [];
    globals = [];
    body =
      [
        decl Tint "slot" ~init:(int 5);
        decl (Tptr Tint) "alias" ~init:(addr (var "slot"));
        decl Tint "v" ~init:(call "peek" [ int 1 ] &: int 15);
        decl Tint "before" ~init:(var "slot");
        (* the store through the alias must invalidate the loaded value;
           the buggy CSE forgets it and reuses [before] for [after] *)
        set_deref (var "alias") (var "v");
        decl Tint "after" ~init:(var "slot");
        print "reg=%d\n" [ var "before" +: (var "after" *: int 100) ];
      ];
    bug =
      mk_bug ~id:(uid ^ "-misc-compilerbug") ~category:Project.Misc
        ~witness:(Printf.sprintf "%c0" tag)
        ~trigger:(fun s -> tag_is tag s && payload_byte s 1 land 15 <> 5)
        ();
  }

(* Misc: output embeds an address-derived cache key *)
let bug_misc_addrkey ~uid ~tag : handler =
  let g = uid ^ "_cache" in
  {
    tag;
    helpers = [];
    globals = [ global_arr g Tint 8 ];
    body =
      [
        decl Tint "key" ~init:(cast Tint (var g) &: int 65535);
        print "cache key %d\n" [ var "key" ];
      ];
    bug =
      mk_bug ~id:(uid ^ "-misc-addrkey") ~category:Project.Misc
        ~witness:(String.make 1 tag)
        ~trigger:(tag_is tag) ();
  }
