(* The 23 targets in Table 4 order, with modeled bug-report outcomes.

   The paper's Table 5 reports, per root-cause category, how many of the
   78 reported bugs were confirmed and fixed by developers. We model the
   same totals by marking, within each category (in registry order), the
   first [confirmed] bugs as confirmed and the first [fixed] as fixed. *)

let raw : Project.t list =
  [
    P_net.tcpdump;
    P_net.wireshark;
    P_binutils.objdump;
    P_binutils.readelf;
    P_binutils.nm_new;
    P_binutils.sysdump;
    P_sys.openssl;
    P_sys.clamav;
    P_media.libsndfile;
    P_sys.libzip;
    P_sys.brotli;
    P_lang.php;
    P_lang.mujs;
    P_media.pdftotext;
    P_media.pdftoppm;
    P_lang.jq;
    P_media.exiv2;
    P_media.libtiff;
    P_media.imagemagick;
    P_media.grok;
    P_lang.libxml2;
    P_net.curl;
    P_media.gpac;
  ]

(* (category, confirmed, fixed) out of the reported counts of Table 5.
   The paper's per-category "Fixed" cells sum to 50 while its total reads
   52; we attribute the difference to Misc so the totals (65 confirmed,
   52 fixed) match. *)
let outcome_totals =
  [
    (Project.EvalOrder, 2, 2);
    (Project.UninitMem, 19, 15);
    (Project.IntError, 8, 6);
    (Project.MemError, 13, 12);
    (Project.PointerCmp, 1, 1);
    (Project.Line, 5, 5);
    (Project.Misc, 17, 11);
  ]

let all : Project.t list =
  let counters = Hashtbl.create 8 in
  let next cat =
    let n = Option.value ~default:0 (Hashtbl.find_opt counters cat) in
    Hashtbl.replace counters cat (n + 1);
    n
  in
  List.map
    (fun (p : Project.t) ->
      let bugs =
        List.map
          (fun (b : Project.seeded_bug) ->
            let rank = next b.Project.category in
            let _, conf, fix =
              List.find (fun (c, _, _) -> c = b.Project.category) outcome_totals
            in
            { b with Project.confirmed = rank < conf; fixed = rank < fix })
          p.Project.bugs
      in
      { p with Project.bugs })
    raw

let by_name name = List.find_opt (fun (p : Project.t) -> p.Project.pname = name) all

let total_bugs = List.fold_left (fun acc (p : Project.t) -> acc + List.length p.Project.bugs) 0 all

let all_bugs : (Project.t * Project.seeded_bug) list =
  List.concat_map (fun (p : Project.t) -> List.map (fun b -> (p, b)) p.Project.bugs) all
