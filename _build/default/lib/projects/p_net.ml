(* Network-facing targets: tcpdump (the EvalOrder discovery of Listing 3),
   wireshark (timestamped warnings needing output normalization, RQ5),
   and curl. *)

open Minic.Ast
open Minic.Builder
open Templates

let tcpdump : Project.t =
  Skeleton.make ~pname:"tcpdump" ~input_type:"Network packet" ~version:"4.99.1"
    ~paper_kloc:"99K" ~nondeterministic:true
    [
      benign_magic ~uid:"tcpdump_pcap" ~tag:'P' ~magic:212;
      bug_evalorder ~uid:"tcpdump_arp" ~tag:'A';
      bug_evalorder ~uid:"tcpdump_rarp" ~tag:'R';
      bug_uninit_branch ~uid:"tcpdump_vlan" ~tag:'V';
      benign_checksum ~uid:"tcpdump_ip" ~tag:'I';
      benign_fields ~uid:"tcpdump_tcp" ~tag:'T';
      Templates_benign.tlv_walker ~uid:"tcpdump_opts" ~tag:'L';
      Templates_benign.hash_chain ~uid:"tcpdump_flows" ~tag:'H';
    ]

let wireshark : Project.t =
  (* the banner stamps an epan warning with a time-of-day whose digits are
     layout-derived: deterministic per binary, different across binaries,
     and stripped by the timestamp filter exactly as in RQ5 *)
  let banner =
    [
      print "10:44:2%d.40583%d [Epan WARNING] preferences reloaded\n"
        [
          cast Tint (var "wireshark_epan_cache") %: int 10;
          cast Tint (var "wireshark_epan_cache") /: int 10 %: int 10;
        ];
    ]
  in
  Skeleton.make ~pname:"wireshark" ~input_type:"Network packet" ~version:"3.4.5"
    ~paper_kloc:"4.6M" ~nondeterministic:true
    ~normalize:Compdiff.Normalize.strip_timestamps ~banner
    [
      bug_misc_addrkey ~uid:"wireshark_epan" ~tag:'E';
      bug_uninit_branch ~uid:"wireshark_dissect" ~tag:'D';
      bug_uninit_branch ~uid:"wireshark_col" ~tag:'C';
      bug_line ~uid:"wireshark_expert" ~tag:'X';
      benign_statemachine ~uid:"wireshark_tlv" ~tag:'T';
      benign_fields ~uid:"wireshark_frame" ~tag:'F';
      Templates_benign.varint_reader ~uid:"wireshark_vint" ~tag:'V';
      Templates_benign.rle_decoder ~uid:"wireshark_pcapng" ~tag:'R';
    ]

let curl : Project.t =
  Skeleton.make ~pname:"curl" ~input_type:"URL" ~version:"7.80.0"
    ~paper_kloc:"13K"
    [
      bug_mem_oob ~uid:"curl_query" ~tag:'Q';
      bug_misc_addrkey ~uid:"curl_handle" ~tag:'H';
      bug_misc_ptrprint ~uid:"curl_scheme" ~tag:'S';
      benign_statemachine ~uid:"curl_escape" ~tag:'U';
      benign_checksum ~uid:"curl_host" ~tag:'N';
      Templates_benign.base64_validator ~uid:"curl_auth" ~tag:'B';
      Templates_benign.varint_reader ~uid:"curl_chunk" ~tag:'V';
    ]
