(* Language implementations and structured-text parsers: php, MuJS (the
   target where the paper's CompDiff caught real compiler
   miscompilations), jq, libxml2. *)

open Templates

let php : Project.t =
  Skeleton.make ~pname:"php" ~input_type:"PHP" ~version:"7.4.26"
    ~paper_kloc:"1.4M"
    [
      bug_uninit_branch ~uid:"php_opline" ~tag:'O';
      bug_uninit_print ~uid:"php_zval" ~tag:'Z';
      bug_int_guard ~uid:"php_strrepeat" ~tag:'S';
      bug_line ~uid:"php_vardump" ~tag:'V';
      bug_misc_addrkey ~uid:"php_objid" ~tag:'J';
      benign_statemachine ~uid:"php_braces" ~tag:'B';
      benign_checksum ~uid:"php_hash" ~tag:'H';
      Templates_benign.base64_validator ~uid:"php_b64" ~tag:'E';
      Templates_benign.rle_decoder ~uid:"php_serial" ~tag:'R';
    ]

let mujs : Project.t =
  (* the RQ2 target: fuzzing it with the extended implementation set
     (including the known-miscompiling clangx-Os-buggy) surfaces genuine
     compiler bugs as divergences *)
  Skeleton.make ~pname:"MuJS" ~input_type:"JavaScript" ~version:"1.1.3"
    ~paper_kloc:"18K" ~nondeterministic:true ~needs_buggy_compiler:true
    [
      bug_misc_compiler ~uid:"mujs_regalloc" ~tag:'R';
      bug_misc_compiler ~uid:"mujs_jsvalue" ~tag:'J';
      bug_misc_compiler ~uid:"mujs_gcflag" ~tag:'G';
      benign_statemachine ~uid:"mujs_parens" ~tag:'P';
      benign_fields ~uid:"mujs_tokens" ~tag:'T';
      Templates_benign.varint_reader ~uid:"mujs_const" ~tag:'V';
      Templates_benign.hash_chain ~uid:"mujs_atoms" ~tag:'H';
    ]

let jq : Project.t =
  Skeleton.make ~pname:"jq" ~input_type:"json" ~version:"1.6" ~paper_kloc:"46K"
    [
      bug_mem_oob ~uid:"jq_path" ~tag:'P';
      bug_uninit_print ~uid:"jq_number" ~tag:'N';
      bug_misc_addrkey ~uid:"jq_strtbl" ~tag:'S';
      benign_statemachine ~uid:"jq_brackets" ~tag:'B';
      benign_checksum ~uid:"jq_keys" ~tag:'K';
      Templates_benign.varint_reader ~uid:"jq_num" ~tag:'V';
      Templates_benign.base64_validator ~uid:"jq_b64" ~tag:'U';
    ]

let libxml2 : Project.t =
  Skeleton.make ~pname:"libxml2" ~input_type:"XML" ~version:"2.9.12"
    ~paper_kloc:"458K"
    [
      bug_mem_oob ~uid:"xml_attr" ~tag:'A';
      bug_uninit_branch ~uid:"xml_ns" ~tag:'N';
      bug_uninit_branch ~uid:"xml_dtd" ~tag:'D';
      benign_statemachine ~uid:"xml_tags" ~tag:'T';
      benign_fields ~uid:"xml_entities" ~tag:'E';
      Templates_benign.base64_validator ~uid:"xml_cdata" ~tag:'B';
      Templates_benign.hash_chain ~uid:"xml_atomtbl" ~tag:'H';
    ]
