lib/compiler/opt_common.ml: Array Int64 Ir List
