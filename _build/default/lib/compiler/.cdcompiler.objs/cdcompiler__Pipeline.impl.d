lib/compiler/pipeline.ml: Ir List Lower Minic Opt_constfold Opt_copyprop Opt_cse Opt_dce Opt_inline Opt_peephole Opt_ubfold Policy Profiles
