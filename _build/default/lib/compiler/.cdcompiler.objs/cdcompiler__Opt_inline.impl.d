lib/compiler/opt_inline.ml: Array Ir List Opt_common Option
