lib/compiler/opt_peephole.ml: Array Hashtbl Int64 Ir List Option
