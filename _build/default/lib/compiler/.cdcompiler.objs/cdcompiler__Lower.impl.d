lib/compiler/lower.ml: Array Ast Buffer Hashtbl Int64 Ir List Minic Policy Printf String Tast
