lib/compiler/policy.ml: Cdutil Int64
