lib/compiler/opt_constfold.ml: Hashtbl Int64 Ir Opt_common
