lib/compiler/opt_cse.ml: Hashtbl Ir List Opt_common
