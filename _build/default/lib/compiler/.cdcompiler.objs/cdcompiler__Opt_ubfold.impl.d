lib/compiler/opt_ubfold.ml: Hashtbl Int32 Int64 Ir List Opt_common
