lib/compiler/ir.ml: Array Buffer Hashtbl Int64 List Policy Printf String
