lib/compiler/opt_dce.ml: Array Hashtbl Ir List Option
