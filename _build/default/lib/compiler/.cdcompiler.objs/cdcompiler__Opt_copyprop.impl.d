lib/compiler/opt_copyprop.ml: Hashtbl Ir Opt_common
