lib/compiler/profiles.ml: List Policy
