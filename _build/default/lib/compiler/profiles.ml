(* The concrete compiler implementations.

   Two families ("gccx" and "clangx") times five optimization levels give
   the ten implementations of the paper's default CompDiff configuration.
   The families differ in unspecified-behaviour choices that mirror the
   real gcc/clang differences the paper reports:

   - argument evaluation order: gccx right-to-left, clangx left-to-right
     (the Tcpdump EvalOrder bug, Listing 3);
   - frame layout: gccx lays slots in source order, clangx reversed, and
     padding shrinks as the optimization level grows (MemError / UninitMem
     divergence);
   - uninitialized-value patterns differ per family and level;
   - clangx widens int multiplications feeding a long context starting at
     -O1 (the IntError example in §4.3);
   - gccx folds UB-guard branches from -O2, clangx already from -O1
     (clang is the more aggressive UB exploiter in the paper's examples);
   - __LINE__ reports the token line under clangx but the statement line
     under gccx (the LINE category of Table 5);
   - clangx at -O3 contracts a*b+c to fma and rewrites pow(2,x) to exp2
     (the floating-point Misc findings of RQ2). *)

open Policy

let mklayout ~family ~level_idx =
  let clang = family = "clangx" in
  {
    globals_base = (if clang then 0x2000 else 0x1000);
    global_gap = (if clang then 1 else 0);
    globals_reversed = clang;
    stack_base = (if clang then 0x90000 else 0x80000);
    stack_size = 0x2000;
    frame_align = (if level_idx = 0 then 4 else 2);
    (* real frames pack locals tightly; only the unoptimized clangx build
       leaves one slack cell between slots *)
    slot_gap = (if clang && level_idx = 0 then 1 else 0);
    slots_reversed = clang;
    heap_base = (if clang then 0x50000 else 0x40000);
    heap_gap = (if clang then 1 else 0);
    heap_reuse = (if clang then level_idx >= 1 else true);
  }

let mkruntime ~family ~level_idx =
  let fam_seed = if family = "clangx" then 77 else 13 in
  {
    layout = mklayout ~family ~level_idx;
    uninit_reg =
      (* an unoptimizing build happens to hand out zeros (registers are
         freshly spilled); optimized builds reuse registers -> junk *)
      (if level_idx = 0 then Uzero else Upattern (fam_seed + (level_idx * 101)));
    uninit_heap = Upattern (fam_seed + 9);
    stack_seed = fam_seed * 31;
    ptrcmp = Pabs;
    memcpy_backward = (family = "clangx");
  }

let levels = [ ("O0", 0); ("O1", 1); ("O2", 2); ("O3", 3); ("Os", 1) ]

let flags_of ~family ~level =
  let clang = family = "clangx" in
  match level with
  | "O0" -> no_opt
  | "O1" ->
    {
      no_opt with
      constfold = true;
      copyprop = true;
      dce = true;
      strength = true;
      promote_scalars = true;
      promote_mul = clang;
      ub_branch_fold = clang;
      null_deref_trap = clang;
    }
  | "O2" ->
    {
      no_opt with
      constfold = true;
      copyprop = true;
      cse = true;
      ub_branch_fold = true;
      null_check_fold = true;
      dce = true;
      inline_limit = 24;
      strength = true;
      promote_mul = clang;
      null_deref_trap = clang;
      promote_scalars = true;
    }
  | "O3" ->
    {
      no_opt with
      constfold = true;
      copyprop = true;
      cse = true;
      ub_branch_fold = true;
      null_check_fold = true;
      dce = true;
      inline_limit = 64;
      strength = true;
      promote_mul = clang;
      null_deref_trap = clang;
      promote_scalars = true;
      fp_contract = clang;
      pow_to_exp2 = clang;
    }
  | "Os" ->
    {
      no_opt with
      constfold = true;
      copyprop = true;
      cse = true;
      ub_branch_fold = true;
      dce = true;
      strength = false;
      promote_mul = clang;
      null_deref_trap = clang;
      promote_scalars = true;
    }
  | _ -> invalid_arg "unknown optimization level"

let make ~family ~level =
  let level_idx = List.assoc level levels in
  {
    pname = family ^ "-" ^ level;
    family;
    level;
    arg_order = (if family = "clangx" then Left_to_right else Right_to_left);
    line = (if family = "clangx" then Ltoken else Lstmt);
    flags = flags_of ~family ~level;
    runtime = mkruntime ~family ~level_idx;
  }

let gccx level = make ~family:"gccx" ~level
let clangx level = make ~family:"clangx" ~level

(* The paper's default: both compilers at all five levels. *)
let all : profile list =
  List.concat_map
    (fun (level, _) -> [ gccx level; clangx level ])
    levels

let by_name name = List.find_opt (fun p -> p.pname = name) all

(* The fuzzer-facing build (B_fuzz in Algorithm 1): an unoptimizing build
   whose VM run also records edge coverage. *)
let fuzz_profile = gccx "O0"

(* A deliberately miscompiling variant of clangx-Os: copy propagation that
   ignores stores as clobbers of frame-slot loads. Used only by the RQ2
   experiment to reproduce "CompDiff catches compiler bugs": it is NOT part
   of {!all}. *)
let clangx_os_buggy =
  let base = clangx "Os" in
  {
    base with
    pname = "clangx-Os-buggy";
    flags = { base.flags with unsafe_copyprop = true };
  }

let extended_with_buggy = all @ [ clangx_os_buggy ]
