(* Shared helpers for the optimization passes.

   All passes are local (basic-block scoped) except DCE's reachability and
   the use-count based dead-code removal, which are whole-function. A
   basic block starts at an [Ilabel] or right after a terminator. *)

open Ir

let is_terminator = function
  | Ijmp _ | Ibr _ | Iret _ | Itrap _ -> true
  | _ -> false

(* Rewrite instructions sequentially; [reset] runs at every block boundary
   so passes can drop their per-block state. Each input instruction may be
   replaced by any list of instructions. *)
let rewrite_local ~(reset : unit -> unit) (f : instr -> instr list)
    (code : instr array) : instr array =
  let out = ref [] in
  reset ();
  Array.iter
    (fun ins ->
      match ins with
      | Ilabel _ ->
        reset ();
        out := ins :: !out
      | _ ->
        let repl = f ins in
        List.iter (fun i -> out := i :: !out) repl;
        if is_terminator ins then reset ())
    code;
  Array.of_list (List.rev !out)

(* Arithmetic at IR widths. W32 values are kept sign-extended inside
   int64; [norm] restores that invariant after an operation. *)
let norm w v =
  match w with
  | W32 -> Int64.of_int32 (Int64.to_int32 v)
  | W64 -> v

let bits = function W32 -> 32 | W64 -> 64

(* Fold an integer binop the way the *compiler* does it. Shifts with an
   out-of-range count are folded to 0 (a legal choice for UB); the VM, by
   contrast, masks the count like x86 hardware -- this asymmetry is one of
   the modeled unstable behaviours. Division folding is refused when the
   divisor is 0 so the runtime trap survives. *)
let fold_ibin op w a b : int64 option =
  let ( &&& ) f x = Some (norm w (f x)) in
  match op with
  | Badd -> (fun () -> Int64.add a b) &&& ()
  | Bsub -> (fun () -> Int64.sub a b) &&& ()
  | Bmul -> (fun () -> Int64.mul a b) &&& ()
  | Bdiv ->
    if b = 0L then None
    else if a = Int64.min_int && b = -1L then None
    else (fun () -> Int64.div a b) &&& ()
  | Bmod ->
    if b = 0L then None
    else if a = Int64.min_int && b = -1L then None
    else (fun () -> Int64.rem a b) &&& ()
  | Bshl ->
    let c = Int64.to_int b in
    if c < 0 || c >= bits w then Some 0L else (fun () -> Int64.shift_left a c) &&& ()
  | Bshr ->
    let c = Int64.to_int b in
    if c < 0 || c >= bits w then Some 0L
    else (fun () -> Int64.shift_right a c) &&& ()
  | Band -> (fun () -> Int64.logand a b) &&& ()
  | Bor -> (fun () -> Int64.logor a b) &&& ()
  | Bxor -> (fun () -> Int64.logxor a b) &&& ()

let fold_icmp c a b : int64 =
  let r =
    match c with
    | Clt -> a < b
    | Cle -> a <= b
    | Cgt -> a > b
    | Cge -> a >= b
    | Ceq -> a = b
    | Cne -> a <> b
  in
  if r then 1L else 0L

let fold_fcmp c a b : int64 =
  let r =
    match c with
    | Clt -> a < b
    | Cle -> a <= b
    | Cgt -> a > b
    | Cge -> a >= b
    | Ceq -> a = b
    | Cne -> a <> b
  in
  if r then 1L else 0L

let fold_cast k (v : int64) : int64 option =
  match k with
  | Sext3264 -> Some v (* W32 values are already sign-extended *)
  | Trunc6432 -> Some (norm W32 v)
  | I2F _ | F2I _ | P2I _ | I2P -> None

(* substitute register operands through a map *)
let subst_operand lookup (o : operand) =
  match o with
  | Reg r -> (match lookup r with Some o' -> o' | None -> o)
  | ImmI _ | ImmF _ | Nullptr -> o

let map_operands f (ins : instr) : instr =
  match ins with
  | Iconst (r, o) -> Iconst (r, f o)
  | Imov (r, o) -> Imov (r, f o)
  | Ibin (op, w, s, r, a, b) -> Ibin (op, w, s, r, f a, f b)
  | Ineg (w, s, r, a) -> Ineg (w, s, r, f a)
  | Inot (w, r, a) -> Inot (w, r, f a)
  | Ifbin (op, r, a, b) -> Ifbin (op, r, f a, f b)
  | Ifma (r, a, b, c) -> Ifma (r, f a, f b, f c)
  | Ifneg (r, a) -> Ifneg (r, f a)
  | Icmp (c, w, r, a, b) -> Icmp (c, w, r, f a, f b)
  | Ifcmp (c, r, a, b) -> Ifcmp (c, r, f a, f b)
  | Ipcmp (c, r, a, b) -> Ipcmp (c, r, f a, f b)
  | Ipadd (r, a, b) -> Ipadd (r, f a, f b)
  | Ipdiff (r, a, b) -> Ipdiff (r, f a, f b)
  | Icast (k, r, a) -> Icast (k, r, f a)
  | Ilea _ -> ins
  | Iload (r, p) -> Iload (r, f p)
  | Istore (p, v) -> Istore (f p, f v)
  | Icall (d, name, args) -> Icall (d, name, List.map f args)
  | Ibuiltin (d, name, args) -> Ibuiltin (d, name, List.map f args)
  | Iprint items ->
    Iprint
      (List.map
         (function
           | Flit s -> Flit s
           | Fint o -> Fint (f o)
           | Flong o -> Flong (f o)
           | Fuint o -> Fuint (f o)
           | Fhex o -> Fhex (f o)
           | Fchar o -> Fchar (f o)
           | Fstr o -> Fstr (f o)
           | Ffloat o -> Ffloat (f o)
           | Fptr o -> Fptr (f o))
         items)
  | Ijmp _ | Ilabel _ | Iret None | Itrap _ -> ins
  | Ibr (c, t, e) -> Ibr (f c, t, e)
  | Iret (Some o) -> Iret (Some (f o))
