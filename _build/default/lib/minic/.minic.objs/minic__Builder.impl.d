lib/minic/builder.ml: Ast Int64
