lib/minic/pretty.ml: Ast Buffer Float Format Int64 List String
