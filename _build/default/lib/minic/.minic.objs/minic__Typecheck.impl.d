lib/minic/typecheck.ml: Ast Char Format Hashtbl Int64 List Option Pretty Printf String Tast
