lib/minic/minic.ml: Ast Builder Lexer Parser Pretty Tast Typecheck
