(* Type checker and elaborator: {!Ast.program} -> {!Tast.tprogram}.

   Besides checking, this pass performs the front-end desugarings every
   compiler implementation must agree on (so that divergence can only come
   from the back end): usual arithmetic conversions, array decay, hoisting
   of string literals and [static] locals to globals, and alpha-renaming of
   shadowed locals so that every local name is unique within a function. *)

open Ast

exception Type_error of string * loc

let err loc fmt = Format.kasprintf (fun msg -> raise (Type_error (msg, loc))) fmt

(* A scope entry either names a true local or aliases a hoisted global
   (static locals). Both carry the resolved (unique) name. *)
type entry =
  | Slocal of string * typ
  | Sglobal_alias of string * typ

type env = {
  globals : (string, typ) Hashtbl.t;
  funcs : (string, typ list * typ) Hashtbl.t;
  mutable scopes : (string * entry) list list; (* innermost first *)
  mutable local_names : (string, int) Hashtbl.t; (* per-function rename counts *)
  mutable hoisted : global list;                 (* reversed *)
  strings : (string, string) Hashtbl.t;          (* literal -> global name *)
  mutable counter : int;
  mutable fname : string;
}

let fresh env prefix =
  env.counter <- env.counter + 1;
  Printf.sprintf "%s$%s$%d" prefix env.fname env.counter

(* Unique local name within the current function. *)
let unique_local env name =
  match Hashtbl.find_opt env.local_names name with
  | None ->
    Hashtbl.add env.local_names name 1;
    name
  | Some k ->
    Hashtbl.replace env.local_names name (k + 1);
    Printf.sprintf "%s@%d" name k

let lookup_var env name =
  let rec in_scopes = function
    | [] -> None
    | scope :: rest ->
      (match List.assoc_opt name scope with
      | Some (Slocal (resolved, t)) -> Some (Tast.Vlocal, resolved, t)
      | Some (Sglobal_alias (resolved, t)) -> Some (Tast.Vglobal, resolved, t)
      | None -> in_scopes rest)
  in
  match in_scopes env.scopes with
  | Some r -> Some r
  | None ->
    (match Hashtbl.find_opt env.globals name with
    | Some t -> Some (Tast.Vglobal, name, t)
    | None -> None)

let add_scope_entry env name entry =
  match env.scopes with
  | scope :: rest -> env.scopes <- ((name, entry) :: scope) :: rest
  | [] -> assert false

let is_integer = function Tint | Tlong -> true | _ -> false
let is_numeric = function Tint | Tlong | Tdouble -> true | _ -> false
let is_scalar = function Tint | Tlong | Tdouble | Tptr _ -> true | _ -> false

let mk te tty tloc = { Tast.te; tty; tloc }

(* Insert a conversion from [e.tty] to [want]; identity when equal. *)
let rec convert ?(explicit = false) want (e : Tast.texpr) =
  let have = e.Tast.tty in
  if equal_typ have want then e
  else
    match (have, want) with
    | Tarr (t, _), Tptr t' when equal_typ t t' ->
      mk (Tast.TDecay e) want e.Tast.tloc
    | Tarr (t, _), Tptr _ ->
      let decayed = mk (Tast.TDecay e) (Tptr t) e.Tast.tloc in
      convert ~explicit want decayed
    | (Tint | Tlong | Tdouble), (Tint | Tlong | Tdouble) ->
      mk (Tast.TCast (want, e)) want e.Tast.tloc
    | Tptr _, Tptr _ -> mk (Tast.TCast (want, e)) want e.Tast.tloc
    | Tptr _, (Tint | Tlong) when explicit ->
      mk (Tast.TCast (want, e)) want e.Tast.tloc
    | (Tint | Tlong), Tptr _ when explicit ->
      mk (Tast.TCast (want, e)) want e.Tast.tloc
    | _ ->
      err e.Tast.tloc "cannot convert %s to %s" (typ_to_string have)
        (typ_to_string want)

(* Usual arithmetic conversions: double > long > int. *)
let arith_join loc a b =
  match (a, b) with
  | Tdouble, t when is_numeric t -> Tdouble
  | t, Tdouble when is_numeric t -> Tdouble
  | Tlong, t when is_integer t -> Tlong
  | t, Tlong when is_integer t -> Tlong
  | Tint, Tint -> Tint
  | _ -> err loc "invalid operand types %s and %s" (typ_to_string a) (typ_to_string b)

let decay_if_array (e : Tast.texpr) =
  match e.Tast.tty with
  | Tarr (t, _) -> mk (Tast.TDecay e) (Tptr t) e.Tast.tloc
  | _ -> e

(* Constant evaluation for static initializers. *)
let rec const_eval (e : expr) : int64 option =
  match e.e with
  | EInt v | ELong v -> Some v
  | EUnop (Neg, a) -> Option.map Int64.neg (const_eval a)
  | EUnop (Bnot, a) -> Option.map Int64.lognot (const_eval a)
  | EBinop (Add, a, b) -> const_map2 Int64.add a b
  | EBinop (Sub, a, b) -> const_map2 Int64.sub a b
  | EBinop (Mul, a, b) -> const_map2 Int64.mul a b
  | _ -> None

and const_map2 f a b =
  match (const_eval a, const_eval b) with
  | Some x, Some y -> Some (f x y)
  | _ -> None

let rec check_expr env (e : expr) : Tast.texpr =
  let loc = e.eloc in
  match e.e with
  | EInt v -> mk (Tast.TConstI v) Tint loc
  | ELong v -> mk (Tast.TConstI v) Tlong loc
  | EFloat f -> mk (Tast.TConstF f) Tdouble loc
  | ELine -> mk Tast.TLine Tint loc
  | EStr s ->
    let name =
      match Hashtbl.find_opt env.strings s with
      | Some n -> n
      | None ->
        let n = fresh env "str" in
        Hashtbl.add env.strings s n;
        let cells =
          List.init (String.length s + 1) (fun i ->
              if i < String.length s then Int64.of_int (Char.code s.[i]) else 0L)
        in
        env.hoisted <-
          { gname = n; gtyp = Tarr (Tint, String.length s + 1); ginit = cells }
          :: env.hoisted;
        n
    in
    mk (Tast.TStr name) (Tptr Tint) loc
  | EVar name ->
    (match lookup_var env name with
    | Some (kind, resolved, t) -> mk (Tast.TVar (kind, resolved)) t loc
    | None -> err loc "unbound variable %s" name)
  | EUnop (Lnot, a) ->
    let ta = decay_if_array (check_expr env a) in
    if not (is_scalar ta.Tast.tty) then err loc "! requires a scalar operand";
    mk (Tast.TUnop (Lnot, ta)) Tint loc
  | EUnop (op, a) ->
    let ta = check_expr env a in
    let t = ta.Tast.tty in
    (match op with
    | Neg when is_numeric t -> mk (Tast.TUnop (Neg, ta)) t loc
    | Bnot when is_integer t -> mk (Tast.TUnop (Bnot, ta)) t loc
    | Neg | Bnot -> err loc "invalid operand type %s" (typ_to_string t)
    | Lnot -> assert false)
  | EBinop ((Land | Lor) as op, a, b) ->
    let ta = decay_if_array (check_expr env a) in
    let tb = decay_if_array (check_expr env b) in
    if not (is_scalar ta.Tast.tty && is_scalar tb.Tast.tty) then
      err loc "logical operators require scalar operands";
    mk (Tast.TBinop (op, ta, tb)) Tint loc
  | EBinop (op, a, b) -> check_binop env loc op a b
  | ECall (name, args) ->
    let param_tys, ret =
      match Hashtbl.find_opt env.funcs name with
      | Some s -> s
      | None ->
        (match builtin_sig name with
        | Some s -> s
        | None -> err loc "unknown function %s" name)
    in
    if List.length args <> List.length param_tys then
      err loc "%s expects %d arguments, got %d" name (List.length param_tys)
        (List.length args);
    let targs =
      List.map2
        (fun want arg ->
          let ta = check_expr env arg in
          match (want, ta.Tast.tty) with
          | Tptr _, (Tptr _ | Tarr _) ->
            (* builtins such as free/memcpy accept any pointer type *)
            let p = decay_if_array ta in
            if equal_typ p.Tast.tty want then p
            else mk (Tast.TCast (want, p)) want p.Tast.tloc
          | _ -> convert want ta)
        param_tys args
    in
    mk (Tast.TCall (name, targs)) ret loc
  | EIndex (a, i) ->
    let ta = decay_if_array (check_expr env a) in
    let ti = check_expr env i in
    let elem =
      match ta.Tast.tty with
      | Tptr t -> t
      | t -> err loc "cannot index a value of type %s" (typ_to_string t)
    in
    if not (is_integer ti.Tast.tty) then err loc "array index must be an integer";
    mk (Tast.TIndex (ta, convert Tint ti)) elem loc
  | EDeref a ->
    let ta = decay_if_array (check_expr env a) in
    (match ta.Tast.tty with
    | Tptr t -> mk (Tast.TDeref ta) t loc
    | t -> err loc "cannot dereference a value of type %s" (typ_to_string t))
  | EAddr a ->
    let ta = check_expr env a in
    if not (Tast.is_lvalue ta) then err loc "& requires an lvalue";
    (match ta.Tast.tty with
    | Tarr (t, _) -> mk (Tast.TAddr ta) (Tptr t) loc
    | t -> mk (Tast.TAddr ta) (Tptr t) loc)
  | EAssign (l, r) ->
    let tl = check_expr env l in
    if not (Tast.is_lvalue tl) then err loc "assignment target is not an lvalue";
    (match tl.Tast.tty with
    | Tarr _ -> err loc "cannot assign to an array"
    | _ -> ());
    let tr = convert tl.Tast.tty (check_expr env r) in
    mk (Tast.TAssign (tl, tr)) tl.Tast.tty loc
  | ECast (t, a) ->
    let ta = decay_if_array (check_expr env a) in
    (convert ~explicit:true t ta : Tast.texpr)
  | ECond (c, t, f) ->
    let tc = decay_if_array (check_expr env c) in
    if not (is_scalar tc.Tast.tty) then err loc "condition must be scalar";
    let tt = decay_if_array (check_expr env t) in
    let tf = decay_if_array (check_expr env f) in
    let join =
      if equal_typ tt.Tast.tty tf.Tast.tty then tt.Tast.tty
      else if is_numeric tt.Tast.tty && is_numeric tf.Tast.tty then
        arith_join loc tt.Tast.tty tf.Tast.tty
      else err loc "branches of ?: have incompatible types"
    in
    mk (Tast.TCond (tc, convert join tt, convert join tf)) join loc

and check_binop env loc op a b =
  let ta = decay_if_array (check_expr env a) in
  let tb = decay_if_array (check_expr env b) in
  let tya = ta.Tast.tty and tyb = tb.Tast.tty in
  let comparison = match op with Lt | Le | Gt | Ge | Eq | Ne -> true | _ -> false in
  match (op, tya, tyb) with
  | Add, Tptr _, (Tint | Tlong) ->
    mk (Tast.TBinop (Add, ta, convert Tint tb)) tya loc
  | Add, (Tint | Tlong), Tptr _ ->
    mk (Tast.TBinop (Add, tb, convert Tint ta)) tyb loc
  | Sub, Tptr _, (Tint | Tlong) ->
    mk (Tast.TBinop (Sub, ta, convert Tint tb)) tya loc
  | Sub, Tptr _, Tptr _ -> mk (Tast.TBinop (Sub, ta, tb)) Tint loc
  | (Lt | Le | Gt | Ge | Eq | Ne), Tptr _, Tptr _ ->
    (* cross-object relational comparison is the UB of Listing 2; the
       checker, like a C compiler, accepts it *)
    mk (Tast.TBinop (op, ta, tb)) Tint loc
  | (Eq | Ne), Tptr _, (Tint | Tlong) ->
    mk (Tast.TBinop (op, ta, convert ~explicit:true tya tb)) Tint loc
  | (Eq | Ne), (Tint | Tlong), Tptr _ ->
    mk (Tast.TBinop (op, convert ~explicit:true tyb ta, tb)) Tint loc
  | (Shl | Shr), t, t' when is_integer t && is_integer t' ->
    mk (Tast.TBinop (op, ta, convert Tint tb)) t loc
  | (Band | Bor | Bxor | Mod), t, t' when is_integer t && is_integer t' ->
    let j = arith_join loc t t' in
    mk (Tast.TBinop (op, convert j ta, convert j tb)) j loc
  | (Add | Sub | Mul | Div), t, t' when is_numeric t && is_numeric t' ->
    let j = arith_join loc t t' in
    mk (Tast.TBinop (op, convert j ta, convert j tb)) j loc
  | _, t, t' when comparison && is_numeric t && is_numeric t' ->
    let j = arith_join loc t t' in
    mk (Tast.TBinop (op, convert j ta, convert j tb)) Tint loc
  | _ ->
    err loc "invalid operands to %s: %s and %s" (Pretty.binop_str op)
      (typ_to_string tya) (typ_to_string tyb)

(* --- print format string checking --- *)

type fmt_spec = Fd | Fld | Fu | Fx | Fc | Fs | Ff | Fp

let parse_fmt loc fmt =
  let specs = ref [] in
  let i = ref 0 in
  let n = String.length fmt in
  while !i < n do
    if fmt.[!i] = '%' && !i + 1 < n then begin
      (match fmt.[!i + 1] with
      | 'd' -> specs := Fd :: !specs
      | 'u' -> specs := Fu :: !specs
      | 'x' -> specs := Fx :: !specs
      | 'c' -> specs := Fc :: !specs
      | 's' -> specs := Fs :: !specs
      | 'f' -> specs := Ff :: !specs
      | 'p' -> specs := Fp :: !specs
      | 'l' ->
        if !i + 2 < n && fmt.[!i + 2] = 'd' then begin
          specs := Fld :: !specs;
          incr i
        end
        else err loc "bad format specifier %%l"
      | '%' -> ()
      | c -> err loc "bad format specifier %%%c" c);
      i := !i + 2
    end
    else incr i
  done;
  List.rev !specs

let check_print env loc fmt args =
  let specs = parse_fmt loc fmt in
  if List.length specs <> List.length args then
    err loc "print format expects %d arguments, got %d" (List.length specs)
      (List.length args);
  List.map2
    (fun spec arg ->
      let ta = decay_if_array (check_expr env arg) in
      match (spec, ta.Tast.tty) with
      | (Fd | Fu | Fx | Fc), Tint -> ta
      | (Fd | Fu | Fx | Fc), Tlong -> convert Tint ta
      | Fld, (Tint | Tlong) -> convert Tlong ta
      | Ff, Tdouble -> ta
      | Ff, (Tint | Tlong) -> convert Tdouble ta
      | (Fs | Fp), Tptr _ -> ta
      | _, t ->
        err loc "format specifier does not match argument type %s" (typ_to_string t))
    specs args

(* --- statements --- *)

type fctx = { ret : typ; in_loop : bool }

let rec check_stmt env fctx (st : stmt) : Tast.tstmt list =
  let loc = st.sloc in
  let one ts = [ { Tast.ts; tsloc = loc } ] in
  match st.s with
  | SExpr e -> one (Tast.TSExpr (check_expr env e))
  | SDecl d ->
    if d.dtyp = Tvoid then err loc "cannot declare a void variable";
    if d.dstatic then begin
      let gname = fresh env ("static$" ^ d.dname) in
      let init_cells =
        match d.dinit with
        | None -> []
        | Some e ->
          (match const_eval e with
          | Some v -> [ v ]
          | None -> err loc "static initializer must be a constant")
      in
      env.hoisted <- { gname; gtyp = d.dtyp; ginit = init_cells } :: env.hoisted;
      add_scope_entry env d.dname (Sglobal_alias (gname, d.dtyp));
      []
    end
    else begin
      let tinit =
        match d.dinit with
        | None -> None
        | Some e ->
          let te = check_expr env e in
          (match d.dtyp with
          | Tarr _ -> err loc "array locals cannot have initializers"
          | t -> Some (convert t te))
      in
      let resolved = unique_local env d.dname in
      add_scope_entry env d.dname (Slocal (resolved, d.dtyp));
      one (Tast.TSDecl (d.dtyp, resolved, tinit))
    end
  | SIf (c, t, f) ->
    let tc = decay_if_array (check_expr env c) in
    if not (is_scalar tc.Tast.tty) then err loc "if condition must be scalar";
    one (Tast.TSIf (tc, check_block env fctx t, check_block env fctx f))
  | SWhile (c, b) ->
    let tc = decay_if_array (check_expr env c) in
    if not (is_scalar tc.Tast.tty) then err loc "while condition must be scalar";
    one (Tast.TSWhile (tc, check_block env { fctx with in_loop = true } b))
  | SReturn None ->
    if fctx.ret <> Tvoid then err loc "non-void function must return a value";
    one (Tast.TSReturn None)
  | SReturn (Some e) ->
    if fctx.ret = Tvoid then err loc "void function cannot return a value";
    let te = convert fctx.ret (check_expr env e) in
    one (Tast.TSReturn (Some te))
  | SBreak ->
    if not fctx.in_loop then err loc "break outside a loop";
    one Tast.TSBreak
  | SContinue ->
    if not fctx.in_loop then err loc "continue outside a loop";
    one Tast.TSContinue
  | SPrint (fmt, args) -> one (Tast.TSPrint (fmt, check_print env loc fmt args))
  | SBlock b -> one (Tast.TSBlock (check_block env fctx b))

and check_block env fctx stmts =
  env.scopes <- [] :: env.scopes;
  let result = List.concat_map (check_stmt env fctx) stmts in
  (match env.scopes with
  | _ :: rest -> env.scopes <- rest
  | [] -> assert false);
  result

(* --- top level --- *)

let check_func env (f : func) : Tast.tfunc =
  env.fname <- f.fname;
  env.local_names <- Hashtbl.create 16;
  env.scopes <- [ [] ];
  List.iter
    (fun (t, name) ->
      if t = Tvoid then err f.floc "void parameter in %s" f.fname;
      add_scope_entry env name (Slocal (name, t));
      Hashtbl.replace env.local_names name 1)
    f.params;
  let fctx = { ret = f.fret; in_loop = false } in
  let tbody = check_block env fctx f.body in
  env.scopes <- [];
  { Tast.tfname = f.fname; tparams = f.params; tfret = f.fret; tbody }

let check_program (p : program) : Tast.tprogram =
  let env =
    {
      globals = Hashtbl.create 16;
      funcs = Hashtbl.create 16;
      scopes = [];
      local_names = Hashtbl.create 16;
      hoisted = [];
      strings = Hashtbl.create 16;
      counter = 0;
      fname = "";
    }
  in
  List.iter
    (fun g ->
      if Hashtbl.mem env.globals g.gname then
        err no_loc "duplicate global %s" g.gname;
      if sizeof g.gtyp < List.length g.ginit then
        err no_loc "initializer for %s is larger than the object" g.gname;
      Hashtbl.add env.globals g.gname g.gtyp)
    p.globals;
  List.iter
    (fun (f : func) ->
      if Hashtbl.mem env.funcs f.fname then err f.floc "duplicate function %s" f.fname;
      if is_builtin f.fname then err f.floc "%s shadows a builtin" f.fname;
      Hashtbl.add env.funcs f.fname (List.map fst f.params, f.fret))
    p.funcs;
  if not (Hashtbl.mem env.funcs "main") then err no_loc "program has no main function";
  let tfuncs = List.map (check_func env) p.funcs in
  { Tast.tglobals = p.globals @ List.rev env.hoisted; tfuncs }

let check_program_result p =
  match check_program p with
  | tp -> Ok tp
  | exception Type_error (msg, loc) ->
    Error (Printf.sprintf "type error at line %d: %s" loc.line msg)
