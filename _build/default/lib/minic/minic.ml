(* Umbrella module re-exporting the MiniC front end.

   [Minic.Ast] / [Minic.Parser] / [Minic.Typecheck] etc. are the names the
   rest of the system uses; the individual modules stay separate files to
   keep each phase small. *)

module Ast = Ast
module Lexer = Lexer
module Parser = Parser
module Pretty = Pretty
module Tast = Tast
module Typecheck = Typecheck
module Builder = Builder

(* Parse and type-check in one step. *)
let frontend_of_source src =
  match Parser.parse_program_result src with
  | Error _ as e -> e
  | Ok ast -> Typecheck.check_program_result ast

let frontend_exn ast = Typecheck.check_program ast
