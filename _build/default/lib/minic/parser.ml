(* Recursive-descent parser for MiniC.

   Grammar is a small C subset. Notable points:
   - [for] loops are desugared to [while] (so [continue] inside a [for]
     skips the increment; MiniC sources in this repo avoid that pattern);
   - prefix [++e]/[--e] desugar to assignments; postfix increments are only
     accepted in expression-statement position;
   - a parenthesized type name starts a cast, resolved with one token of
     lookahead. *)

open Lexer

exception Error of string * int

type state = {
  toks : spanned array;
  mutable idx : int;
  mutable stmt_line : int; (* line on which the current statement began *)
}

let cur st = st.toks.(st.idx)
let peek st = (cur st).tok
let peek_ahead st n =
  let i = min (st.idx + n) (Array.length st.toks - 1) in
  st.toks.(i).tok

let line st = (cur st).tline

let advance st = if st.idx < Array.length st.toks - 1 then st.idx <- st.idx + 1

let fail st msg = raise (Error (msg, line st))

let expect st tok what =
  if peek st = tok then advance st else fail st (Printf.sprintf "expected %s" what)

let mkloc st = { Ast.line = line st; stmt_line = st.stmt_line }

let mke st desc = { Ast.e = desc; eloc = mkloc st }

(* --- types --- *)

let is_type_kw = function
  | KW ("int" | "long" | "double" | "void") -> true
  | _ -> false

let base_type st =
  match peek st with
  | KW "int" -> advance st; Ast.Tint
  | KW "long" -> advance st; Ast.Tlong
  | KW "double" -> advance st; Ast.Tdouble
  | KW "void" -> advance st; Ast.Tvoid
  | _ -> fail st "expected a type"

let rec ptr_suffix st t =
  if peek st = STAR then begin
    advance st;
    ptr_suffix st (Ast.Tptr t)
  end
  else t

let parse_type st = ptr_suffix st (base_type st)

(* --- expressions --- *)

let unop_of_token = function
  | MINUS -> Some Ast.Neg
  | BANG -> Some Ast.Lnot
  | TILDE -> Some Ast.Bnot
  | _ -> None

let rec parse_expr st = parse_assign st

and parse_assign st =
  let lhs = parse_ternary st in
  match peek st with
  | ASSIGN ->
    advance st;
    let rhs = parse_assign st in
    mke st (Ast.EAssign (lhs, rhs))
  | PLUSEQ ->
    advance st;
    let rhs = parse_assign st in
    mke st (Ast.EAssign (lhs, mke st (Ast.EBinop (Ast.Add, lhs, rhs))))
  | MINUSEQ ->
    advance st;
    let rhs = parse_assign st in
    mke st (Ast.EAssign (lhs, mke st (Ast.EBinop (Ast.Sub, lhs, rhs))))
  | STAREQ ->
    advance st;
    let rhs = parse_assign st in
    mke st (Ast.EAssign (lhs, mke st (Ast.EBinop (Ast.Mul, lhs, rhs))))
  | _ -> lhs

and parse_ternary st =
  let c = parse_binary st 0 in
  if peek st = QUESTION then begin
    advance st;
    let t = parse_expr st in
    expect st COLON ":";
    let f = parse_ternary st in
    mke st (Ast.ECond (c, t, f))
  end
  else c

(* Precedence-climbing over binary operators; level 0 is loosest. *)
and binop_at_level tok level =
  let open Ast in
  match (level, tok) with
  | 0, OROR -> Some Lor
  | 1, ANDAND -> Some Land
  | 2, PIPE -> Some Bor
  | 3, CARET -> Some Bxor
  | 4, AMP -> Some Band
  | 5, EQEQ -> Some Eq
  | 5, NEQ -> Some Ne
  | 6, LT -> Some Lt
  | 6, LE -> Some Le
  | 6, GT -> Some Gt
  | 6, GE -> Some Ge
  | 7, SHL -> Some Shl
  | 7, SHR -> Some Shr
  | 8, PLUS -> Some Add
  | 8, MINUS -> Some Sub
  | 9, STAR -> Some Mul
  | 9, SLASH -> Some Div
  | 9, PERCENT -> Some Mod
  | _ -> None

and parse_binary st level =
  if level > 9 then parse_unary st
  else begin
    let lhs = ref (parse_binary st (level + 1)) in
    let continue = ref true in
    while !continue do
      match binop_at_level (peek st) level with
      | Some op ->
        advance st;
        let rhs = parse_binary st (level + 1) in
        lhs := mke st (Ast.EBinop (op, !lhs, rhs))
      | None -> continue := false
    done;
    !lhs
  end

and parse_unary st =
  match peek st with
  | MINUS | BANG | TILDE ->
    let op = Option.get (unop_of_token (peek st)) in
    advance st;
    let e = parse_unary st in
    mke st (Ast.EUnop (op, e))
  | STAR ->
    advance st;
    let e = parse_unary st in
    mke st (Ast.EDeref e)
  | AMP ->
    advance st;
    let e = parse_unary st in
    mke st (Ast.EAddr e)
  | PLUSPLUS ->
    advance st;
    let e = parse_unary st in
    mke st (Ast.EAssign (e, mke st (Ast.EBinop (Ast.Add, e, mke st (Ast.EInt 1L)))))
  | MINUSMINUS ->
    advance st;
    let e = parse_unary st in
    mke st (Ast.EAssign (e, mke st (Ast.EBinop (Ast.Sub, e, mke st (Ast.EInt 1L)))))
  | LPAREN when is_type_kw (peek_ahead st 1) ->
    advance st;
    let t = parse_type st in
    expect st RPAREN ")";
    let e = parse_unary st in
    mke st (Ast.ECast (t, e))
  | _ -> parse_postfix st

and parse_postfix st =
  let e = ref (parse_primary st) in
  let continue = ref true in
  while !continue do
    match peek st with
    | LBRACK ->
      advance st;
      let idx = parse_expr st in
      expect st RBRACK "]";
      e := mke st (Ast.EIndex (!e, idx))
    | _ -> continue := false
  done;
  !e

and parse_primary st =
  match peek st with
  | INT v ->
    let r = mke st (Ast.EInt v) in
    advance st;
    r
  | LONGLIT v ->
    let r = mke st (Ast.ELong v) in
    advance st;
    r
  | FLOAT f ->
    let r = mke st (Ast.EFloat f) in
    advance st;
    r
  | STR s ->
    let r = mke st (Ast.EStr s) in
    advance st;
    r
  | LINEKW ->
    let r = mke st Ast.ELine in
    advance st;
    r
  | IDENT name ->
    advance st;
    if peek st = LPAREN then begin
      advance st;
      let args = parse_args st in
      mke st (Ast.ECall (name, args))
    end
    else mke st (Ast.EVar name)
  | LPAREN ->
    advance st;
    let e = parse_expr st in
    expect st RPAREN ")";
    e
  | t -> fail st (Printf.sprintf "unexpected token %s" (token_to_string t))

and parse_args st =
  if peek st = RPAREN then begin
    advance st;
    []
  end
  else begin
    let rec loop acc =
      let e = parse_expr st in
      match peek st with
      | COMMA ->
        advance st;
        loop (e :: acc)
      | RPAREN ->
        advance st;
        List.rev (e :: acc)
      | _ -> fail st "expected ',' or ')' in argument list"
    in
    loop []
  end

(* --- statements --- *)

let mks st desc = { Ast.s = desc; sloc = mkloc st }

let rec parse_stmt st =
  st.stmt_line <- line st;
  match peek st with
  | KW "static" -> parse_decl st
  | KW ("int" | "long" | "double") -> parse_decl st
  | KW "if" -> parse_if st
  | KW "while" -> parse_while st
  | KW "for" -> parse_for st
  | KW "return" ->
    let loc_stmt = mks st in
    advance st;
    if peek st = SEMI then begin
      advance st;
      loc_stmt (Ast.SReturn None)
    end
    else begin
      let e = parse_expr st in
      expect st SEMI ";";
      loc_stmt (Ast.SReturn (Some e))
    end
  | KW "break" ->
    let r = mks st Ast.SBreak in
    advance st;
    expect st SEMI ";";
    r
  | KW "continue" ->
    let r = mks st Ast.SContinue in
    advance st;
    expect st SEMI ";";
    r
  | KW "print" ->
    advance st;
    expect st LPAREN "(";
    let fmt =
      match peek st with
      | STR s ->
        advance st;
        s
      | _ -> fail st "print expects a format string literal"
    in
    let args =
      if peek st = COMMA then begin
        advance st;
        let rec loop acc =
          let e = parse_expr st in
          if peek st = COMMA then begin
            advance st;
            loop (e :: acc)
          end
          else List.rev (e :: acc)
        in
        loop []
      end
      else []
    in
    expect st RPAREN ")";
    expect st SEMI ";";
    mks st (Ast.SPrint (fmt, args))
  | LBRACE -> mks st (Ast.SBlock (parse_block st))
  | _ ->
    let e = parse_expr_statement st in
    expect st SEMI ";";
    mks st (Ast.SExpr e)

(* Expression statements additionally allow postfix ++/--. *)
and parse_expr_statement st =
  let e = parse_expr st in
  match peek st with
  | PLUSPLUS ->
    advance st;
    mke st (Ast.EAssign (e, mke st (Ast.EBinop (Ast.Add, e, mke st (Ast.EInt 1L)))))
  | MINUSMINUS ->
    advance st;
    mke st (Ast.EAssign (e, mke st (Ast.EBinop (Ast.Sub, e, mke st (Ast.EInt 1L)))))
  | _ -> e

and parse_decl st =
  let dstatic =
    if peek st = KW "static" then begin
      advance st;
      true
    end
    else false
  in
  let base = parse_type st in
  let name =
    match peek st with
    | IDENT n ->
      advance st;
      n
    | _ -> fail st "expected a variable name"
  in
  let dtyp =
    if peek st = LBRACK then begin
      advance st;
      match peek st with
      | INT n ->
        advance st;
        expect st RBRACK "]";
        Ast.Tarr (base, Int64.to_int n)
      | _ -> fail st "expected an array size literal"
    end
    else base
  in
  let dinit =
    if peek st = ASSIGN then begin
      advance st;
      Some (parse_expr st)
    end
    else None
  in
  expect st SEMI ";";
  mks st (Ast.SDecl { dtyp; dname = name; dinit; dstatic })

and parse_if st =
  let mk = mks st in
  advance st;
  expect st LPAREN "(";
  let cond = parse_expr st in
  expect st RPAREN ")";
  let then_b = parse_branch st in
  let else_b =
    if peek st = KW "else" then begin
      advance st;
      parse_branch st
    end
    else []
  in
  mk (Ast.SIf (cond, then_b, else_b))

and parse_while st =
  let mk = mks st in
  advance st;
  expect st LPAREN "(";
  let cond = parse_expr st in
  expect st RPAREN ")";
  let body = parse_branch st in
  mk (Ast.SWhile (cond, body))

and parse_for st =
  let mk = mks st in
  advance st;
  expect st LPAREN "(";
  let init =
    if peek st = SEMI then begin
      advance st;
      None
    end
    else begin
      match peek st with
      | KW ("int" | "long" | "double" | "static") -> Some (parse_decl st)
      | _ ->
        let e = parse_expr st in
        expect st SEMI ";";
        Some (mk (Ast.SExpr e))
    end
  in
  let cond =
    if peek st = SEMI then mke st (Ast.EInt 1L) else parse_expr st
  in
  expect st SEMI ";";
  let incr =
    if peek st = RPAREN then None
    else Some (mk (Ast.SExpr (parse_expr_statement st)))
  in
  expect st RPAREN ")";
  let body = parse_branch st in
  let while_body = body @ Option.to_list incr in
  let loop = mk (Ast.SWhile (cond, while_body)) in
  mk (Ast.SBlock (Option.to_list init @ [ loop ]))

and parse_branch st =
  if peek st = LBRACE then parse_block st else [ parse_stmt st ]

and parse_block st =
  expect st LBRACE "{";
  let rec loop acc =
    if peek st = RBRACE then begin
      advance st;
      List.rev acc
    end
    else if peek st = EOF then fail st "unexpected end of file in block"
    else loop (parse_stmt st :: acc)
  in
  loop []

(* --- top level --- *)

let parse_global_init st =
  if peek st = ASSIGN then begin
    advance st;
    if peek st = LBRACE then begin
      advance st;
      let rec loop acc =
        match peek st with
        | INT v | LONGLIT v ->
          advance st;
          if peek st = COMMA then begin
            advance st;
            loop (v :: acc)
          end
          else begin
            expect st RBRACE "}";
            List.rev (v :: acc)
          end
        | MINUS ->
          advance st;
          (match peek st with
          | INT v | LONGLIT v ->
            advance st;
            let v = Int64.neg v in
            if peek st = COMMA then begin
              advance st;
              loop (v :: acc)
            end
            else begin
              expect st RBRACE "}";
              List.rev (v :: acc)
            end
          | _ -> fail st "expected a number after '-'")
        | RBRACE ->
          advance st;
          List.rev acc
        | _ -> fail st "expected a constant in initializer"
      in
      loop []
    end
    else begin
      match peek st with
      | INT v | LONGLIT v ->
        advance st;
        [ v ]
      | MINUS ->
        advance st;
        (match peek st with
        | INT v | LONGLIT v ->
          advance st;
          [ Int64.neg v ]
        | _ -> fail st "expected a number after '-'")
      | _ -> fail st "expected a constant global initializer"
    end
  end
  else []

let parse_toplevel st =
  let base = parse_type st in
  let name =
    match peek st with
    | IDENT n ->
      advance st;
      n
    | _ -> fail st "expected a name at top level"
  in
  if peek st = LPAREN then begin
    (* function definition *)
    let floc = mkloc st in
    advance st;
    let params =
      if peek st = RPAREN || (peek st = KW "void" && peek_ahead st 1 = RPAREN)
      then begin
        if peek st = KW "void" then advance st;
        advance st;
        []
      end
      else begin
        let rec loop acc =
          let t = parse_type st in
          let pname =
            match peek st with
            | IDENT n ->
              advance st;
              n
            | _ -> fail st "expected a parameter name"
          in
          if peek st = COMMA then begin
            advance st;
            loop ((t, pname) :: acc)
          end
          else begin
            expect st RPAREN ")";
            List.rev ((t, pname) :: acc)
          end
        in
        loop []
      end
    in
    let body = parse_block st in
    `Func { Ast.fname = name; params; fret = base; body; floc }
  end
  else begin
    (* global variable *)
    let gtyp =
      if peek st = LBRACK then begin
        advance st;
        match peek st with
        | INT n ->
          advance st;
          expect st RBRACK "]";
          Ast.Tarr (base, Int64.to_int n)
        | _ -> fail st "expected an array size literal"
      end
      else base
    in
    let ginit = parse_global_init st in
    expect st SEMI ";";
    `Global { Ast.gname = name; gtyp; ginit }
  end

let parse_program src =
  let toks = Array.of_list (Lexer.tokenize src) in
  let st = { toks; idx = 0; stmt_line = 1 } in
  let rec loop globals funcs =
    if peek st = EOF then
      { Ast.globals = List.rev globals; funcs = List.rev funcs }
    else begin
      match parse_toplevel st with
      | `Func f -> loop globals (f :: funcs)
      | `Global g -> loop (g :: globals) funcs
    end
  in
  loop [] []

let parse_program_result src =
  match parse_program src with
  | p -> Ok p
  | exception Error (msg, line) -> Error (Printf.sprintf "parse error at line %d: %s" line msg)
  | exception Lexer.Error (msg, line) ->
    Error (Printf.sprintf "lex error at line %d: %s" line msg)
