(* Combinators for constructing MiniC ASTs programmatically.

   The Juliet-style suite generators and the synthetic projects build
   thousands of programs; these helpers keep those definitions close to the
   C they denote, e.g.

   {[
     func Tint "main" [] [
       decl Tint "x" ~init:(call "getchar" []);
       if_ (var "x" >: int 0) [ print "pos %d\n" [ var "x" ] ] [];
       ret (int 0);
     ]
   ]}

   Locations: [at] wraps a statement with an explicit line; otherwise a
   builder-wide counter assigns consecutive lines so that [__LINE__]
   behaviour is still meaningful in generated programs. *)

open Ast

let line_counter = ref 0

let next_loc () =
  incr line_counter;
  { line = !line_counter; stmt_line = !line_counter }

let e d = { e = d; eloc = next_loc () }

let int n = e (EInt (Int64.of_int n))
let int64 v = e (EInt v)
let long n = e (ELong (Int64.of_int n))
let long64 v = e (ELong v)
let flt f = e (EFloat f)
let str s = e (EStr s)
let var v = e (EVar v)
let line_ () = e ELine

let neg a = e (EUnop (Neg, a))
let lnot a = e (EUnop (Lnot, a))
let bnot a = e (EUnop (Bnot, a))

let binop op a b = e (EBinop (op, a, b))
let ( +: ) a b = binop Add a b
let ( -: ) a b = binop Sub a b
let ( *: ) a b = binop Mul a b
let ( /: ) a b = binop Div a b
let ( %: ) a b = binop Mod a b
let ( <: ) a b = binop Lt a b
let ( <=: ) a b = binop Le a b
let ( >: ) a b = binop Gt a b
let ( >=: ) a b = binop Ge a b
let ( ==: ) a b = binop Eq a b
let ( <>: ) a b = binop Ne a b
let ( &&: ) a b = binop Land a b
let ( ||: ) a b = binop Lor a b
let ( &: ) a b = binop Band a b
let ( |: ) a b = binop Bor a b
let ( ^: ) a b = binop Bxor a b
let ( <<: ) a b = binop Shl a b
let ( >>: ) a b = binop Shr a b

let call f args = e (ECall (f, args))
let idx a i = e (EIndex (a, i))
let deref a = e (EDeref a)
let addr a = e (EAddr a)
let assign l r = e (EAssign (l, r))
let cast t a = e (ECast (t, a))
let cond c t f = e (ECond (c, t, f))

let s d = { s = d; sloc = next_loc () }

let at line stmt = { stmt with sloc = { line; stmt_line = line } }

let expr ex = s (SExpr ex)
let set name ex = s (SExpr (assign (var name) ex))
let set_idx arr i ex = s (SExpr (assign (idx arr i) ex))
let set_deref p ex = s (SExpr (assign (deref p) ex))

let decl ?init t name = s (SDecl { dtyp = t; dname = name; dinit = init; dstatic = false })
let decl_static ?init t name =
  s (SDecl { dtyp = t; dname = name; dinit = init; dstatic = true })
let decl_arr t name n = s (SDecl { dtyp = Tarr (t, n); dname = name; dinit = None; dstatic = false })

let if_ c t f = s (SIf (c, t, f))
let while_ c b = s (SWhile (c, b))
let ret ex = s (SReturn (Some ex))
let ret_void = s (SReturn None)
let break_ = s SBreak
let continue_ = s SContinue
let print fmt args = s (SPrint (fmt, args))
let block b = s (SBlock b)

(* A counted loop [for (int i = lo; i < hi; i++) body]. *)
let for_up i lo hi body =
  block
    [
      decl Tint i ~init:lo;
      while_ (var i <: hi) (body @ [ set i (var i +: int 1) ]);
    ]

let func ?(params = []) fret fname body =
  { fname; params; fret; body; floc = next_loc () }

let global ?(init = []) gname gtyp = { gname; gtyp; ginit = init }
let global_arr ?(init = []) gname t n = { gname; gtyp = Tarr (t, n); ginit = init }

let program ?(globals = []) funcs = { globals; funcs }

(* Convenience: a whole program with just a [main]. *)
let main_program ?(globals = []) ?(funcs = []) body =
  { globals; funcs = funcs @ [ func Tint "main" body ] }
