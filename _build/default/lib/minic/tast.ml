(* Typed abstract syntax, the output of {!Typecheck} and the input of the
   compiler's lowering phase.

   Differences from {!Ast}:
   - every expression carries its static type;
   - implicit conversions are explicit [TCast] nodes;
   - array-to-pointer decay is an explicit [TDecay] node;
   - string literals and [static] locals have been hoisted to globals, so
     the body only ever refers to [Vglobal] or [Vlocal] variables. *)

type vkind = Vglobal | Vlocal

type texpr = { te : tdesc; tty : Ast.typ; tloc : Ast.loc }

and tdesc =
  | TConstI of int64                 (* typed Tint or Tlong constant *)
  | TConstF of float
  | TStr of string                   (* name of the hoisted string global *)
  | TVar of vkind * string
  | TLine
  | TUnop of Ast.unop * texpr
  | TBinop of Ast.binop * texpr * texpr
  | TCall of string * texpr list
  | TIndex of texpr * texpr          (* pointer/array element access *)
  | TDeref of texpr
  | TAddr of texpr
  | TAssign of texpr * texpr
  | TCast of Ast.typ * texpr
  | TDecay of texpr                  (* array value used as a pointer *)
  | TCond of texpr * texpr * texpr

type tstmt = { ts : tsdesc; tsloc : Ast.loc }

and tsdesc =
  | TSExpr of texpr
  | TSDecl of Ast.typ * string * texpr option (* non-static local *)
  | TSIf of texpr * tblock * tblock
  | TSWhile of texpr * tblock
  | TSReturn of texpr option
  | TSBreak
  | TSContinue
  | TSPrint of string * texpr list
  | TSBlock of tblock

and tblock = tstmt list

type tfunc = {
  tfname : string;
  tparams : (Ast.typ * string) list;
  tfret : Ast.typ;
  tbody : tblock;
}

type tprogram = { tglobals : Ast.global list; tfuncs : tfunc list }

let rec is_lvalue e =
  match e.te with
  | TVar _ | TIndex _ | TDeref _ -> true
  | TCast (_, inner) -> is_lvalue inner
  | TConstI _ | TConstF _ | TStr _ | TLine | TUnop _ | TBinop _ | TCall _
  | TAddr _ | TAssign _ | TDecay _ | TCond _ -> false
