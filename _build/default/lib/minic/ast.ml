(* Abstract syntax of MiniC.

   MiniC is the C-like target language of this reproduction. It is small
   but deliberately keeps every construct the paper's bug taxonomy needs:
   fixed-width signed integers ([int] is 32-bit, [long] is 64-bit) whose
   overflow is undefined, raw pointers with arithmetic, [malloc]/[free],
   unsequenced side effects in call arguments, uninitialized locals,
   cross-object pointer comparison, division by zero, shifts, doubles, and
   a [__LINE__] construct whose interpretation is implementation-defined.

   Programs are produced either by the hand-written parser ({!Parser}) or
   programmatically through {!Builder}. *)

type typ =
  | Tint                   (* 32-bit signed *)
  | Tlong                  (* 64-bit signed *)
  | Tdouble
  | Tptr of typ
  | Tarr of typ * int      (* fixed-size array; decays to pointer *)
  | Tvoid                  (* only as a function return type *)

type unop =
  | Neg                    (* -e : signed negation (UB on INT_MIN at [int]) *)
  | Lnot                   (* !e : logical not, yields 0/1 *)
  | Bnot                   (* ~e : bitwise complement *)

type binop =
  | Add | Sub | Mul | Div | Mod
  | Shl | Shr
  | Lt | Le | Gt | Ge | Eq | Ne
  | Band | Bor | Bxor
  | Land | Lor             (* short-circuit && and || *)

(* Source position: [line] is the physical line of the token, [stmt_line]
   the line on which the enclosing statement began. C compilers are free
   to report either for [__LINE__]-style constructs spanning several lines
   (C17 6.10.4), which is the "LINE" bug category of Table 5. *)
type loc = { line : int; stmt_line : int }

let no_loc = { line = 0; stmt_line = 0 }

type expr = { e : expr_desc; eloc : loc }

and expr_desc =
  | EInt of int64          (* integer literal; type fixed by context/suffix *)
  | ELong of int64         (* literal with the [L] suffix *)
  | EFloat of float
  | EStr of string         (* string literal: pointer to a fresh global *)
  | EVar of string
  | ELine                  (* __LINE__ *)
  | EUnop of unop * expr
  | EBinop of binop * expr * expr
  | ECall of string * expr list
  | EIndex of expr * expr  (* e1[e2] *)
  | EDeref of expr         (* *e *)
  | EAddr of expr          (* &e, where e must be an lvalue *)
  | EAssign of expr * expr (* e1 = e2, where e1 must be an lvalue *)
  | ECast of typ * expr
  | ECond of expr * expr * expr (* e1 ? e2 : e3 *)

type decl = {
  dtyp : typ;
  dname : string;
  dinit : expr option;
  dstatic : bool;          (* [static] locals persist across calls *)
}

type stmt = { s : stmt_desc; sloc : loc }

and stmt_desc =
  | SExpr of expr
  | SDecl of decl
  | SIf of expr * block * block
  | SWhile of expr * block
  | SReturn of expr option
  | SBreak
  | SContinue
  | SPrint of string * expr list
    (* printf-like output: %d %ld %u %x %c %s %f %p plus literal text *)
  | SBlock of block

and block = stmt list

type func = {
  fname : string;
  params : (typ * string) list;
  fret : typ;
  body : block;
  floc : loc;
}

type global = {
  gname : string;
  gtyp : typ;
  ginit : int64 list;      (* cell-wise initial contents; padded with zeros *)
}

type program = { globals : global list; funcs : func list }

(* Builtin functions provided by the runtime rather than user code. The
   compiler type-checks calls against these signatures and emits dedicated
   IR; the VM implements their behaviour (and sanitizers intercept the
   memory-touching ones, mirroring ASan's interceptors). *)
let builtins : (string * typ list * typ) list =
  [
    ("getchar", [], Tint);            (* next input byte, -1 at EOF *)
    ("input_len", [], Tint);
    ("peek", [ Tint ], Tint);         (* input byte at index, -1 if out of range *)
    ("malloc", [ Tint ], Tptr Tint);  (* n cells; returns null on n <= 0 *)
    ("free", [ Tptr Tint ], Tvoid);
    ("memset", [ Tptr Tint; Tint; Tint ], Tvoid);
    ("memcpy", [ Tptr Tint; Tptr Tint; Tint ], Tvoid);
    ("strlen", [ Tptr Tint ], Tint);
    ("exit", [ Tint ], Tvoid);
    ("abort", [], Tvoid);
    ("pow", [ Tdouble; Tdouble ], Tdouble);
    ("sqrt", [ Tdouble ], Tdouble);
    ("exp2", [ Tdouble ], Tdouble);
    ("floor", [ Tdouble ], Tdouble);
  ]

let is_builtin name = List.exists (fun (n, _, _) -> n = name) builtins

let builtin_sig name =
  List.find_map (fun (n, args, ret) -> if n = name then Some (args, ret) else None) builtins

let rec sizeof = function
  | Tint | Tlong | Tdouble | Tptr _ -> 1
  | Tarr (t, n) -> n * sizeof t
  | Tvoid -> 0

let rec equal_typ a b =
  match (a, b) with
  | Tint, Tint | Tlong, Tlong | Tdouble, Tdouble | Tvoid, Tvoid -> true
  | Tptr x, Tptr y -> equal_typ x y
  | Tarr (x, n), Tarr (y, m) -> n = m && equal_typ x y
  | (Tint | Tlong | Tdouble | Tvoid | Tptr _ | Tarr _), _ -> false

let rec pp_typ ppf = function
  | Tint -> Format.pp_print_string ppf "int"
  | Tlong -> Format.pp_print_string ppf "long"
  | Tdouble -> Format.pp_print_string ppf "double"
  | Tptr t -> Format.fprintf ppf "%a*" pp_typ t
  | Tarr (t, n) -> Format.fprintf ppf "%a[%d]" pp_typ t n
  | Tvoid -> Format.pp_print_string ppf "void"

let typ_to_string t = Format.asprintf "%a" pp_typ t
