(* Hand-written lexer for MiniC source text. *)

type token =
  | INT of int64
  | LONGLIT of int64
  | FLOAT of float
  | STR of string
  | IDENT of string
  | KW of string           (* int long double void if else while for return
                              break continue static print *)
  | LINEKW                 (* __LINE__ *)
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACK | RBRACK
  | SEMI | COMMA | QUESTION | COLON
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | AMP | PIPE | CARET | TILDE | BANG
  | SHL | SHR
  | LT | LE | GT | GE | EQEQ | NEQ
  | ANDAND | OROR
  | ASSIGN
  | PLUSEQ | MINUSEQ | STAREQ
  | PLUSPLUS | MINUSMINUS
  | EOF

type spanned = { tok : token; tline : int }

exception Error of string * int

let keywords =
  [ "int"; "long"; "double"; "void"; "if"; "else"; "while"; "for";
    "return"; "break"; "continue"; "static"; "print" ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_digit c = c >= '0' && c <= '9'
let is_ident_char c = is_ident_start c || is_digit c
let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

type state = { src : string; mutable pos : int; mutable line : int }

let peek_char st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek_char st with Some '\n' -> st.line <- st.line + 1 | _ -> ());
  st.pos <- st.pos + 1

let rec skip_ws_and_comments st =
  match peek_char st with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance st;
    skip_ws_and_comments st
  | Some '/' when peek2 st = Some '/' ->
    while peek_char st <> None && peek_char st <> Some '\n' do
      advance st
    done;
    skip_ws_and_comments st
  | Some '/' when peek2 st = Some '*' ->
    advance st;
    advance st;
    let rec loop () =
      match peek_char st with
      | None -> raise (Error ("unterminated comment", st.line))
      | Some '*' when peek2 st = Some '/' ->
        advance st;
        advance st
      | Some _ ->
        advance st;
        loop ()
    in
    loop ();
    skip_ws_and_comments st
  | Some _ | None -> ()

let int64_of_literal st text =
  (* out-of-range literals are a lex error, not a crash *)
  match Int64.of_string_opt text with
  | Some v -> v
  | None -> raise (Error (Printf.sprintf "integer literal %s out of range" text, st.line))

let lex_number st =
  let start = st.pos in
  let hex =
    peek_char st = Some '0' && (peek2 st = Some 'x' || peek2 st = Some 'X')
  in
  if hex then begin
    advance st;
    advance st;
    let digits = ref 0 in
    while (match peek_char st with Some c -> is_hex c | None -> false) do
      incr digits;
      advance st
    done;
    if !digits = 0 then raise (Error ("hexadecimal literal without digits", st.line));
    let text = String.sub st.src start (st.pos - start) in
    let v = int64_of_literal st text in
    if peek_char st = Some 'L' then begin
      advance st;
      LONGLIT v
    end
    else INT v
  end
  else begin
    while (match peek_char st with Some c -> is_digit c | None -> false) do
      advance st
    done;
    let is_float =
      peek_char st = Some '.'
      && (match peek2 st with Some c -> is_digit c | None -> false)
    in
    if is_float then begin
      advance st;
      while (match peek_char st with Some c -> is_digit c | None -> false) do
        advance st
      done;
      let text = String.sub st.src start (st.pos - start) in
      FLOAT (float_of_string text)
    end
    else begin
      let text = String.sub st.src start (st.pos - start) in
      let v = int64_of_literal st text in
      if peek_char st = Some 'L' then begin
        advance st;
        LONGLIT v
      end
      else INT v
    end
  end

let lex_escape st =
  match peek_char st with
  | Some 'n' -> advance st; '\n'
  | Some 't' -> advance st; '\t'
  | Some 'r' -> advance st; '\r'
  | Some '0' -> advance st; '\000'
  | Some '\\' -> advance st; '\\'
  | Some '\'' -> advance st; '\''
  | Some '"' -> advance st; '"'
  | Some c -> raise (Error (Printf.sprintf "bad escape '\\%c'" c, st.line))
  | None -> raise (Error ("unterminated escape", st.line))

let lex_string st =
  advance st;
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek_char st with
    | None -> raise (Error ("unterminated string literal", st.line))
    | Some '"' -> advance st
    | Some '\\' ->
      advance st;
      Buffer.add_char buf (lex_escape st);
      loop ()
    | Some c ->
      advance st;
      Buffer.add_char buf c;
      loop ()
  in
  loop ();
  STR (Buffer.contents buf)

let lex_char st =
  advance st;
  let c =
    match peek_char st with
    | Some '\\' ->
      advance st;
      lex_escape st
    | Some c ->
      advance st;
      c
    | None -> raise (Error ("unterminated char literal", st.line))
  in
  (match peek_char st with
  | Some '\'' -> advance st
  | _ -> raise (Error ("unterminated char literal", st.line)));
  INT (Int64.of_int (Char.code c))

let next_token st =
  skip_ws_and_comments st;
  let line = st.line in
  let mk tok = { tok; tline = line } in
  match peek_char st with
  | None -> mk EOF
  | Some c when is_digit c -> mk (lex_number st)
  | Some '"' -> mk (lex_string st)
  | Some '\'' -> mk (lex_char st)
  | Some c when is_ident_start c ->
    let start = st.pos in
    while (match peek_char st with Some c -> is_ident_char c | None -> false) do
      advance st
    done;
    let text = String.sub st.src start (st.pos - start) in
    if text = "__LINE__" then mk LINEKW
    else if List.mem text keywords then mk (KW text)
    else mk (IDENT text)
  | Some c ->
    advance st;
    let two expect a b = if peek_char st = Some expect then (advance st; a) else b in
    let tok =
      match c with
      | '(' -> LPAREN
      | ')' -> RPAREN
      | '{' -> LBRACE
      | '}' -> RBRACE
      | '[' -> LBRACK
      | ']' -> RBRACK
      | ';' -> SEMI
      | ',' -> COMMA
      | '?' -> QUESTION
      | ':' -> COLON
      | '~' -> TILDE
      | '^' -> CARET
      | '%' -> PERCENT
      | '+' ->
        (match peek_char st with
        | Some '+' -> advance st; PLUSPLUS
        | Some '=' -> advance st; PLUSEQ
        | _ -> PLUS)
      | '-' ->
        (match peek_char st with
        | Some '-' -> advance st; MINUSMINUS
        | Some '=' -> advance st; MINUSEQ
        | _ -> MINUS)
      | '*' -> two '=' STAREQ STAR
      | '/' -> SLASH
      | '&' -> two '&' ANDAND AMP
      | '|' -> two '|' OROR PIPE
      | '!' -> two '=' NEQ BANG
      | '=' -> two '=' EQEQ ASSIGN
      | '<' ->
        (match peek_char st with
        | Some '<' -> advance st; SHL
        | Some '=' -> advance st; LE
        | _ -> LT)
      | '>' ->
        (match peek_char st with
        | Some '>' -> advance st; SHR
        | Some '=' -> advance st; GE
        | _ -> GT)
      | c -> raise (Error (Printf.sprintf "unexpected character %C" c, line))
    in
    mk tok

let tokenize src =
  let st = { src; pos = 0; line = 1 } in
  let rec loop acc =
    let t = next_token st in
    if t.tok = EOF then List.rev (t :: acc) else loop (t :: acc)
  in
  loop []

let token_to_string = function
  | INT v -> Printf.sprintf "int(%Ld)" v
  | LONGLIT v -> Printf.sprintf "long(%Ld)" v
  | FLOAT f -> Printf.sprintf "float(%g)" f
  | STR s -> Printf.sprintf "str(%S)" s
  | IDENT s -> Printf.sprintf "ident(%s)" s
  | KW s -> Printf.sprintf "kw(%s)" s
  | LINEKW -> "__LINE__"
  | LPAREN -> "(" | RPAREN -> ")" | LBRACE -> "{" | RBRACE -> "}"
  | LBRACK -> "[" | RBRACK -> "]" | SEMI -> ";" | COMMA -> ","
  | QUESTION -> "?" | COLON -> ":" | PLUS -> "+" | MINUS -> "-"
  | STAR -> "*" | SLASH -> "/" | PERCENT -> "%" | AMP -> "&"
  | PIPE -> "|" | CARET -> "^" | TILDE -> "~" | BANG -> "!"
  | SHL -> "<<" | SHR -> ">>" | LT -> "<" | LE -> "<=" | GT -> ">"
  | GE -> ">=" | EQEQ -> "==" | NEQ -> "!=" | ANDAND -> "&&"
  | OROR -> "||" | ASSIGN -> "=" | PLUSEQ -> "+=" | MINUSEQ -> "-="
  | STAREQ -> "*=" | PLUSPLUS -> "++" | MINUSMINUS -> "--" | EOF -> "<eof>"
