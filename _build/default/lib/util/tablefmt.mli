(** Plain-text table rendering for the benchmark harness.

    All paper tables are emitted through this module so that the harness
    output lines up into readable columns regardless of cell width. *)

type align = Left | Right

val render : ?aligns:align list -> header:string list -> string list list -> string
(** [render ~header rows] lays the table out with a separator line under
    the header. [aligns] defaults to all [Left]; a shorter list is padded
    with [Left]. *)

val print : ?aligns:align list -> title:string -> header:string list -> string list list -> unit
(** [print ~title ~header rows] writes a titled table to stdout followed by
    a blank line. *)

val pct : float -> string
(** [pct 0.372] is ["37%"] — percentage formatting used across Table 3. *)
