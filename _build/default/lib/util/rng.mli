(** Deterministic pseudo-random number generation.

    Every stochastic component of the system (fuzzer mutations, test-suite
    generation, seeded bug placement) draws from this splitmix64-based
    generator so that whole experiments are reproducible from a single
    integer seed. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator. Equal seeds yield equal
    streams. *)

val copy : t -> t
(** Independent copy with the same state. *)

val next64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val bool : t -> bool

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val choose_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val bytes : t -> int -> bytes
(** [bytes t n] is [n] uniform random bytes. *)

val split : t -> t
(** Derive an independent child generator; advances the parent. *)

val mix : int -> int -> int
(** [mix a b] is a stateless 62-bit positive hash of the pair, used to
    derive stable sub-seeds. *)
