(** Small descriptive-statistics helpers used by the benchmark harness to
    summarise subset studies (Figures 1 and 2) as box-plot rows. *)

type box = {
  minimum : float;
  q1 : float;
  median : float;
  q3 : float;
  maximum : float;
  mean : float;
  count : int;
}
(** Five-number summary plus mean, as printed for each box in the subset
    figures. *)

val mean : float list -> float
(** Arithmetic mean; 0 on the empty list. *)

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [\[0,1\]], linear interpolation between
    order statistics. Raises [Invalid_argument] on the empty list. *)

val box_of : float list -> box
(** Five-number summary of a non-empty sample. *)

val box_of_ints : int list -> box

val pp_box : Format.formatter -> box -> unit
