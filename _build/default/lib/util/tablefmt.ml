type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render ?(aligns = []) ~header rows =
  let ncols = List.fold_left (fun acc r -> max acc (List.length r)) (List.length header) rows in
  let get l i = match List.nth_opt l i with Some x -> x | None -> "" in
  let widths =
    Array.init ncols (fun i ->
        List.fold_left
          (fun acc r -> max acc (String.length (get r i)))
          (String.length (get header i))
          rows)
  in
  let align_of i = match List.nth_opt aligns i with Some a -> a | None -> Left in
  let line cells =
    String.concat "  " (List.init ncols (fun i -> pad (align_of i) widths.(i) (get cells i)))
  in
  let sep =
    String.concat "  " (List.init ncols (fun i -> String.make widths.(i) '-'))
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (line header);
  Buffer.add_char buf '\n';
  Buffer.add_string buf sep;
  List.iter
    (fun r ->
      Buffer.add_char buf '\n';
      Buffer.add_string buf (line r))
    rows;
  Buffer.contents buf

let print ?aligns ~title ~header rows =
  print_endline title;
  print_endline (String.make (String.length title) '=');
  print_endline (render ?aligns ~header rows);
  print_newline ()

let pct f = Printf.sprintf "%.0f%%" (100. *. f)
