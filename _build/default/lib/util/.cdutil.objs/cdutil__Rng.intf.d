lib/util/rng.mli:
