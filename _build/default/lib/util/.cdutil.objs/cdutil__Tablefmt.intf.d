lib/util/tablefmt.mli:
