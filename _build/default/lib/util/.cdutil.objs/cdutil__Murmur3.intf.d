lib/util/murmur3.mli:
