lib/util/murmur3.ml: Char Int32 String
