type box = {
  minimum : float;
  q1 : float;
  median : float;
  q3 : float;
  maximum : float;
  mean : float;
  count : int;
}

let mean = function
  | [] -> 0.
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let percentile p xs =
  match List.sort compare xs with
  | [] -> invalid_arg "Stats.percentile: empty sample"
  | sorted ->
    let arr = Array.of_list sorted in
    let n = Array.length arr in
    if n = 1 then arr.(0)
    else begin
      let pos = p *. float_of_int (n - 1) in
      let lo = int_of_float (Float.floor pos) in
      let hi = min (lo + 1) (n - 1) in
      let frac = pos -. float_of_int lo in
      (arr.(lo) *. (1. -. frac)) +. (arr.(hi) *. frac)
    end

let box_of xs =
  match xs with
  | [] -> invalid_arg "Stats.box_of: empty sample"
  | _ ->
    {
      minimum = percentile 0.0 xs;
      q1 = percentile 0.25 xs;
      median = percentile 0.5 xs;
      q3 = percentile 0.75 xs;
      maximum = percentile 1.0 xs;
      mean = mean xs;
      count = List.length xs;
    }

let box_of_ints xs = box_of (List.map float_of_int xs)

let pp_box ppf b =
  Format.fprintf ppf "min=%.0f q1=%.1f med=%.1f q3=%.1f max=%.0f (n=%d)"
    b.minimum b.q1 b.median b.q3 b.maximum b.count
