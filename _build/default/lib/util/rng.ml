type t = { mutable state : int64 }

let gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64 step: fast, high-quality, and trivially reproducible. *)
let next64 t =
  t.state <- Int64.add t.state gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let r = Int64.to_int (Int64.shift_right_logical (next64 t) 2) in
  r mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (next64 t) 1L = 1L

let float t =
  let r = Int64.to_float (Int64.shift_right_logical (next64 t) 11) in
  r /. 9007199254740992.0

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choose: empty array";
  arr.(int t (Array.length arr))

let choose_list t l =
  match l with
  | [] -> invalid_arg "Rng.choose_list: empty list"
  | _ -> List.nth l (int t (List.length l))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let bytes t n =
  let b = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.set b i (Char.chr (Int64.to_int (Int64.logand (next64 t) 0xFFL)))
  done;
  b

let split t =
  let s = next64 t in
  { state = s }

let mix a b =
  let t = { state = Int64.logxor (Int64.of_int a) (Int64.mul (Int64.of_int b) gamma) } in
  Int64.to_int (Int64.shift_right_logical (next64 t) 2)
