(* Generator for CWE-469: using pointer subtraction to determine size.

   Subtracting pointers into *different* objects is undefined; the result
   under our implementations is the absolute address distance, which
   depends entirely on the layout policy -- every variant diverges, no
   sanitizer or (modeled) static tool has a check, matching Table 3's
   0%/0%/.../100% row. *)

open Minic.Ast
open Minic.Builder
open Gen_common

let cwe469 ~index =
  let rng = rng_for ~cwe:469 ~index in
  let n = small_size rng in
  let shape_two_globals () =
    let globals = [ global_arr "a" Tint n; global_arr "b" Tint n ] in
    let mk cross =
      with_test_func ~globals
        [
          decl (Tptr Tint) "pa" ~init:(var "a");
          decl (Tptr Tint) "pb" ~init:(if cross then var "b" else var "a" +: int n);
          sink_print (var "pb" -: var "pa");
          ret (int 0);
        ]
    in
    (mk true, mk false, [ "" ])
  in
  let shape_two_locals () =
    let mk cross =
      with_test_func
        [
          decl_arr Tint "x" n;
          decl_arr Tint "y" n;
          decl (Tptr Tint) "px" ~init:(var "x");
          decl (Tptr Tint) "py" ~init:(if cross then var "y" else var "x" +: int 2);
          decl Tint "size" ~init:(var "py" -: var "px");
          sink_print (var "size");
          ret (int 0);
        ]
    in
    (mk true, mk false, [ "" ])
  in
  let shape_heap_blocks () =
    let mk cross =
      with_test_func
        [
          decl (Tptr Tint) "p" ~init:(call "malloc" [ int n ]);
          decl (Tptr Tint) "q" ~init:(call "malloc" [ int n ]);
          decl Tint "dist"
            ~init:((if cross then var "q" else var "p" +: int 1) -: var "p");
          sink_print (var "dist");
          expr (call "free" [ var "p" ]);
          expr (call "free" [ var "q" ]);
          ret (int 0);
        ]
    in
    (mk true, mk false, [ "" ])
  in
  let shape_size_loop () =
    (* the classic: iterate "end - start" elements where the pointers do
       not share an object *)
    let mk cross =
      with_test_func
        [
          decl_arr Tint "src" n;
          decl_arr Tint "other" 4;
          decl (Tptr Tint) "start" ~init:(var "src");
          decl (Tptr Tint) "fin"
            ~init:(if cross then var "other" else var "src" +: int n);
          decl Tint "count" ~init:(var "fin" -: var "start");
          if_ (var "count" <: int 0) [ set "count" (int 0) ] [];
          if_ (var "count" >: int 64) [ set "count" (int 64) ] [];
          decl Tint "sum" ~init:(int 0);
          for_up "i" (int 0) (var "count") [ set "sum" (var "sum" +: int 1) ];
          sink_print (var "sum");
          ret (int 0);
        ]
    in
    (mk true, mk false, [ "" ])
  in
  let bad, good, inputs =
    match index mod 4 with
    | 0 -> shape_two_globals ()
    | 1 -> shape_two_locals ()
    | 2 -> shape_heap_blocks ()
    | _ -> shape_size_loop ()
  in
  Testcase.make ~cwe:469 ~index ~inputs ~bad ~good ()
