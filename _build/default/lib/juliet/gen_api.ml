(* Generators for the API/UB CWEs: 475 (undefined behavior for input to
   API), 588 (access of a non-struct pointer's "child"), 685 (bad function
   call), 758 (general undefined behavior).

   Modeling notes (documented in DESIGN.md):
   - 475 uses overlapping memcpy: the copy direction is a per-libc choice,
     so the result diverges; no sanitizer checks it;
   - 685 (wrong argument count) cannot be typed in MiniC, so it is modeled
     as the adjacent flaw Juliet drives at: an argument of the wrong kind
     -- a pointer reinterpreted as an integer, whose value is the
     layout-dependent address;
   - 758 mixes unsequenced side effects in call arguments (Listing 3),
     out-of-range constant shifts (folded to a UB value by optimizing
     builds, masked by the hardware at -O0) and missing return values. *)

open Minic.Ast
open Minic.Builder
open Gen_common

(* ---------- CWE-475: undefined behavior for input to API ---------- *)

let cwe475 ~index =
  let rng = rng_for ~cwe:475 ~index in
  let n = max 6 (small_size rng) in
  let fill =
    for_up "i" (int 0) (int n) [ set_idx (var "buf") (var "i") (var "i" +: int 1) ]
  in
  let dump =
    [
      for_up "i" (int 0) (int n) [ print "%d " [ idx (var "buf") (var "i") ] ];
      print "\n" [];
      ret (int 0);
    ]
  in
  let shape_overlap_forward () =
    let mk overlap =
      with_test_func
        ([ decl_arr Tint "buf" n; decl_arr Tint "tmp" n; fill ]
        @ (if overlap then
             [ expr (call "memcpy" [ var "buf" +: int 1; var "buf"; int (n - 1) ]) ]
           else
             [
               expr (call "memcpy" [ var "tmp"; var "buf"; int (n - 1) ]);
               expr (call "memcpy" [ var "buf" +: int 1; var "tmp"; int (n - 1) ]);
             ])
        @ dump)
    in
    (mk true, mk false, [ "" ])
  in
  let shape_overlap_backward () =
    let mk overlap =
      with_test_func
        ([ decl_arr Tint "buf" n; decl_arr Tint "tmp" n; fill ]
        @ (if overlap then
             [ expr (call "memcpy" [ var "buf"; var "buf" +: int 2; int (n - 2) ]) ]
           else
             [
               expr (call "memcpy" [ var "tmp"; var "buf" +: int 2; int (n - 2) ]);
               expr (call "memcpy" [ var "buf"; var "tmp"; int (n - 2) ]);
             ])
        @ dump)
    in
    (mk true, mk false, [ "" ])
  in
  let bad, good, inputs =
    match index mod 2 with
    | 0 -> shape_overlap_forward ()
    | _ -> shape_overlap_backward ()
  in
  Testcase.make ~cwe:475 ~index ~inputs ~bad ~good ()

(* ---------- CWE-588: access child of a non-struct pointer ---------- *)

let cwe588 ~index =
  let rng = rng_for ~cwe:588 ~index in
  let k = salt rng in
  let shape_scalar_as_array off =
    (* a scalar treated as a record: reads past it hit layout-dependent
       neighbours; [off] beyond the redzone models ASan's miss *)
    let mk bad_access =
      with_test_func
        [
          decl Tint "scalar" ~init:(int k);
          decl Tint "other" ~init:(int (k * 2));
          decl (Tptr Tint) "p" ~init:(addr (var "scalar"));
          sink_print (if bad_access then idx (var "p") (int off) else deref (var "p"));
          ret (int 0);
        ]
    in
    (mk true, mk false, [ "" ])
  in
  let shape_scalar_write off =
    let mk bad_access =
      with_test_func
        [
          decl Tint "scalar" ~init:(int 5);
          decl Tint "witness" ~init:(int 100);
          decl (Tptr Tint) "p" ~init:(addr (var "scalar"));
          (if bad_access then set_idx (var "p") (int off) (int k)
           else set_deref (var "p") (int k));
          print "s=%d w=%d\n" [ var "scalar"; var "witness" ];
          ret (int 0);
        ]
    in
    (mk true, mk false, [ "" ])
  in
  let shape_int_as_ptr () =
    (* reinterpret an integer global as a pointer-sized record *)
    let mk bad_access =
      with_test_func
        ~globals:[ global "g" Tint ~init:[ 12L ]; global "h" Tint ~init:[ 34L ] ]
        [
          decl (Tptr Tint) "p" ~init:(addr (var "g"));
          sink_print (if bad_access then idx (var "p") (int 1) else deref (var "p"));
          ret (int 0);
        ]
    in
    (mk true, mk false, [ "" ])
  in
  let shape_far_read () =
    (* reads stack junk far below the frame: beyond the redzone (ASan
       miss), junk pattern differs per implementation *)
    let mk bad_access =
      with_test_func
        [
          decl Tint "scalar" ~init:(int k);
          decl (Tptr Tint) "p" ~init:(addr (var "scalar"));
          sink_print (if bad_access then idx (var "p") (int (-40)) else deref (var "p"));
          ret (int 0);
        ]
    in
    (mk true, mk false, [ "" ])
  in
  let shape_far_write () =
    let mk bad_access =
      with_test_func
        [
          decl_arr Tint "big" 48;
          decl Tint "scalar" ~init:(int 5);
          decl (Tptr Tint) "p" ~init:(addr (var "scalar"));
          for_up "j" (int 0) (int 48) [ set_idx (var "big") (var "j") (int 1) ];
          (if bad_access then set_idx (var "p") (int (-25)) (int k)
           else set_deref (var "p") (int k));
          print "s=%d b=%d\n" [ var "scalar"; idx (var "big") (int 22) ];
          ret (int 0);
        ]
    in
    (mk true, mk false, [ "" ])
  in
  let bad, good, inputs =
    match index mod 5 with
    | 0 -> shape_scalar_as_array 2
    | 1 -> shape_far_read () (* beyond the redzone: ASan miss *)
    | 2 -> shape_scalar_write 2
    | 3 -> shape_far_write ()
    | _ -> shape_int_as_ptr ()
  in
  Testcase.make ~cwe:588 ~index ~inputs ~bad ~good ()

(* ---------- CWE-685: function call with wrong arguments ---------- *)

let cwe685 ~index =
  let rng = rng_for ~cwe:685 ~index in
  let k = salt rng in
  let helper =
    func Tint "format_value" ~params:[ (Tint, "v") ]
      [ sink_print (var "v"); ret (var "v" +: int 1) ]
  in
  let shape_ptr_as_int_global () =
    let mk bad_call =
      with_test_func
        ~globals:[ global "g" Tint ~init:[ Int64.of_int k ] ]
        ~helpers:[ helper ]
        [
          expr
            (call "format_value"
               [ (if bad_call then cast Tint (addr (var "g")) else var "g") ]);
          ret (int 0);
        ]
    in
    (mk true, mk false, [ "" ])
  in
  let shape_ptr_as_int_heap () =
    let mk bad_call =
      with_test_func ~helpers:[ helper ]
        [
          decl (Tptr Tint) "p" ~init:(call "malloc" [ int 4 ]);
          set_idx (var "p") (int 0) (int k);
          expr
            (call "format_value"
               [ (if bad_call then cast Tint (var "p") else idx (var "p") (int 0)) ]);
          expr (call "free" [ var "p" ]);
          ret (int 0);
        ]
    in
    (mk true, mk false, [ "" ])
  in
  let bad, good, inputs =
    match index mod 2 with
    | 0 -> shape_ptr_as_int_global ()
    | _ -> shape_ptr_as_int_heap ()
  in
  Testcase.make ~cwe:685 ~index ~inputs ~bad ~good ()

(* ---------- CWE-758: undefined behavior (general) ---------- *)

let cwe758 ~index =
  let rng = rng_for ~cwe:758 ~index in
  let k = salt rng in
  let shape_const_shift () =
    (* constant out-of-range shift: the constant folder picks the "poison"
       value 0, the hardware masks the count *)
    let mk count =
      with_test_func
        [
          decl Tint "x" ~init:(call "getchar" [] &: int 63);
          sink_print (var "x" <<: int count);
          ret (int 0);
        ]
    in
    (mk 33, mk 3, [ "A" ])
  in
  let shape_runtime_shift () =
    (* runtime out-of-range shift: masked identically everywhere, only
       UBSan sees it *)
    let mk offset =
      with_test_func
        [
          decl Tint "s" ~init:(call "getchar" [] -: int offset);
          sink_print (int (k + 1) <<: var "s");
          ret (int 0);
        ]
    in
    (mk 31, mk 63, [ "A" ]) (* 'A'=65: bad shift 34, good shift 2 *)
  in
  let shape_negative_shl () =
    let mk positive =
      with_test_func
        [
          decl Tint "v"
            ~init:(if positive then call "getchar" [] &: int 31
                   else int 0 -: (call "getchar" [] &: int 31));
          sink_print (var "v" <<: int 2);
          ret (int 0);
        ]
    in
    (mk false, mk true, [ "A" ])
  in
  let shape_evalorder_static_buffer () =
    (* Listing 3: both %s arguments are calls returning the same static
       buffer; %s reads memory after all arguments were evaluated, so the
       dumped strings depend on the evaluation order *)
    let linkaddr_string =
      func (Tptr Tint) "linkaddr_string" ~params:[ (Tint, "v") ]
        [
          decl_static (Tarr (Tint, 4)) "buffer";
          set_idx (var "buffer") (int 0) (int 48 +: binop Mod (var "v") (int 10));
          set_idx (var "buffer") (int 1) (int 0);
          ret (var "buffer");
        ]
    in
    let mk conflicting =
      with_test_func ~helpers:[ linkaddr_string ]
        (if conflicting then
           [
             print "who-is %s tell %s\n"
               [
                 call "linkaddr_string" [ int (1 + (k mod 3)) ];
                 call "linkaddr_string" [ int (7 + (k mod 3)) ];
               ];
             ret (int 0);
           ]
         else
           [
             (* the fix the tcpdump developers applied: copy out each
                string before the next call *)
             decl Tint "a" ~init:(deref (call "linkaddr_string" [ int (1 + (k mod 3)) ]));
             decl Tint "b" ~init:(deref (call "linkaddr_string" [ int (7 + (k mod 3)) ]));
             print "who-is %c tell %c\n" [ var "a"; var "b" ];
             ret (int 0);
           ])
    in
    (mk true, mk false, [ "" ])
  in
  let shape_unsequenced_assign () =
    let sum2 =
      func Tint "sum2" ~params:[ (Tint, "a"); (Tint, "b") ]
        [ ret (var "a" +: var "b") ]
    in
    let mk sequenced =
      with_test_func ~helpers:[ sum2 ]
        (if sequenced then
           [
             decl Tint "x" ~init:(int 0);
             decl Tint "first" ~init:(assign (var "x") (int 1));
             decl Tint "second" ~init:(assign (var "x") (int 2));
             sink_print (call "sum2" [ var "first"; var "second" ] +: var "x");
             ret (int 0);
           ]
         else
           [
             decl Tint "x" ~init:(int 0);
             sink_print
               (call "sum2" [ assign (var "x") (int 1); assign (var "x") (int 2) ]
               +: var "x");
             ret (int 0);
           ])
    in
    (mk false, mk true, [ "" ])
  in
  let shape_missing_return () =
    let mk returns =
      let classify =
        func Tint "classify" ~params:[ (Tint, "v") ]
          ([ if_ (var "v" >: int 10) [ ret (int 1) ] [] ]
          @ if returns then [ ret (int 0) ] else [])
      in
      with_test_func ~helpers:[ classify ]
        [
          sink_print (call "classify" [ int (k mod 10) ]);
          ret (int 0);
        ]
    in
    (mk false, mk true, [ "" ])
  in
  let bad, good, inputs =
    match index mod 8 with
    | 0 -> shape_const_shift ()
    | 1 -> shape_runtime_shift ()
    | 2 -> shape_negative_shl ()
    | 3 | 6 -> shape_evalorder_static_buffer ()
    | 4 | 7 -> shape_unsequenced_assign ()
    | _ -> shape_missing_return ()
  in
  Testcase.make ~cwe:758 ~index ~inputs ~bad ~good ()
