(** Assembly of the generated Juliet-style benchmark suite (Table 2).

    Generation is deterministic: variant [i] of a CWE is a pure function
    of [(cwe, i)], so the suite is identical across runs and machines. *)

val generator_of_cwe : int -> index:int -> Testcase.t
(** Generator for one CWE id (raises [Invalid_argument] on ids outside
    Table 2's twenty). *)

val generate_cwe : count:int -> int -> Testcase.t list

val full : unit -> Testcase.t list
(** The scaled suite: every CWE at [Cwe.scaled_count] (≈1,500 tests). *)

val quick : ?per_cwe:int -> unit -> Testcase.t list
(** A small slice for unit tests and smoke runs (default 8 per CWE). *)

val count_by_cwe : Testcase.t list -> (int * int) list
