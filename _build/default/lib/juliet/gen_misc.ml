(* Generators for CWE-369 (divide by zero) and CWE-476 (null pointer
   dereference).

   Divide-by-zero: a *live* integer division by zero traps identically in
   every implementation, so CompDiff only detects the cases where an
   optimizing build deletes the (dead) division an unoptimized build still
   executes. Floating-point division by zero is well defined (inf) and
   not checked by UBSan's default config -- those variants model the
   paper's UBSan misses.

   Null dereference: plain executed null dereferences trap everywhere;
   divergence comes from (a) dead null loads deleted by DCE and (b) the
   clangx-style rewrite of provably-null dereferences into a ud2-style
   abort, which changes the crash kind. *)

open Minic.Ast
open Minic.Builder
open Gen_common

(* ---------- CWE-369: divide by zero ---------- *)

let cwe369 ~index =
  let rng = rng_for ~cwe:369 ~index in
  let k = salt rng in
  let opaque =
    func Tint "opaque" ~params:[ (Tint, "x") ] [ ret (var "x") ]
  in
  (* divisor laundered through a call: invisible to the static tools,
     identical at run time *)
  let shape_live_div_opaque () =
    let mk offset =
      with_test_func ~helpers:[ opaque ]
        [
          decl Tint "z" ~init:(call "opaque" [ call "getchar" [] -: int offset ]);
          sink_print (int (100 + k) /: var "z");
          ret (int 0);
        ]
    in
    (mk 65, mk 1, [ "A" ])
  in
  let shape_dead_div_opaque () =
    let mk zero =
      with_test_func ~helpers:[ opaque ]
        [
          decl Tint "z" ~init:(call "opaque" [ int (if zero then 0 else 3) ]);
          sink_dead "t" (int (50 + k) /: var "z");
          print "survived\n" [];
          ret (int 0);
        ]
    in
    (mk true, mk false, [ "" ])
  in
  let shape_live_div () =
    let bad =
      with_test_func
        [
          decl Tint "z" ~init:(call "getchar" [] -: int 65);
          sink_print (int (100 + k) /: var "z");
          ret (int 0);
        ]
    in
    let good =
      (* robust version: divisor forced strictly positive *)
      with_test_func
        [
          decl Tint "z" ~init:(call "getchar" [] &: int 63 +: int 1);
          sink_print (int (100 + k) /: var "z");
          ret (int 0);
        ]
    in
    (bad, good, [ "A" ])
  in
  let shape_live_mod () =
    let mk offset =
      with_test_func
        [
          decl Tint "z" ~init:(call "getchar" [] -: int offset);
          sink_print (int (77 + k) %: var "z");
          ret (int 0);
        ]
    in
    (mk 65, mk 2, [ "A" ])
  in
  let shape_const_var () =
    let mk zero =
      with_test_func
        [
          decl Tint "z" ~init:(int (if zero then 0 else 5));
          sink_print (int (30 + k) /: var "z");
          ret (int 0);
        ]
    in
    (mk true, mk false, [ "" ])
  in
  let shape_dead_div () =
    let mk zero =
      with_test_func
        [
          decl Tint "z" ~init:(int (if zero then 0 else 3));
          sink_dead "t" (int (50 + k) /: var "z");
          print "survived\n" [];
          ret (int 0);
        ]
    in
    (mk true, mk false, [ "" ])
  in
  let shape_float_div () =
    let mk zero =
      with_test_func
        [
          decl Tdouble "d" ~init:(flt (if zero then 0.0 else 2.0));
          sink_print (cast Tint (flt 10.0 /: var "d" +: flt 0.5));
          ret (int 0);
        ]
    in
    (mk true, mk false, [ "" ])
  in
  let shape_float_div_input () =
    let mk offset =
      with_test_func
        [
          decl Tdouble "d" ~init:(cast Tdouble (call "getchar" [] -: int offset));
          print "%f\n" [ flt 3.0 /: var "d" ];
          ret (int 0);
        ]
    in
    (mk 65, mk 1, [ "A" ])
  in
  let bad, good, inputs =
    match index mod 10 with
    | 0 -> shape_live_div ()
    | 1 -> shape_live_mod ()
    | 2 -> shape_const_var ()
    | 3 -> shape_live_div_opaque ()
    | 4 | 5 -> shape_dead_div ()
    | 6 -> shape_dead_div_opaque ()
    | 7 | 8 -> shape_float_div ()
    | _ -> shape_float_div_input ()
  in
  Testcase.make ~cwe:369 ~index ~inputs ~bad ~good ()

(* ---------- CWE-476: null pointer dereference ---------- *)

let cwe476 ~index =
  let rng = rng_for ~cwe:476 ~index in
  let n = small_size rng in
  let shape_const_null_read () =
    (* provably null at compile time: clangx turns the load into a trap,
       gccx segfaults -- the crash kinds diverge *)
    let mk null =
      with_test_func
        [
          decl_arr Tint "buf" n;
          set_idx (var "buf") (int 0) (int 8);
          decl (Tptr Tint) "p" ~init:(if null then null_ptr else var "buf");
          sink_print (deref (var "p"));
          ret (int 0);
        ]
    in
    (mk true, mk false, [ "" ])
  in
  let shape_const_null_write () =
    let mk null =
      with_test_func
        [
          decl_arr Tint "buf" n;
          decl (Tptr Tint) "p" ~init:(if null then null_ptr else var "buf");
          set_deref (var "p") (int 9);
          print "wrote\n" [];
          ret (int 0);
        ]
    in
    (mk true, mk false, [ "" ])
  in
  let shape_dead_null_read () =
    let mk null =
      with_test_func
        [
          decl_arr Tint "buf" n;
          set_idx (var "buf") (int 0) (int 1);
          decl (Tptr Tint) "p" ~init:(if null then null_ptr else var "buf");
          sink_dead "t" (deref (var "p"));
          print "done\n" [];
          ret (int 0);
        ]
    in
    (mk true, mk false, [ "" ])
  in
  let shape_helper_null () =
    let fetch =
      func Tint "fetch" ~params:[ (Tptr Tint, "q") ] [ ret (deref (var "q")) ]
    in
    let mk null =
      with_test_func ~helpers:[ fetch ]
        [
          decl_arr Tint "buf" n;
          set_idx (var "buf") (int 0) (int 3);
          sink_print (call "fetch" [ (if null then null_ptr else var "buf") ]);
          ret (int 0);
        ]
    in
    (mk true, mk false, [ "" ])
  in
  let shape_unchecked_malloc () =
    (* allocation failure path: p is null only dynamically *)
    let mk checked =
      with_test_func
        ([
           decl (Tptr Tint) "p" ~init:(call "malloc" [ int 10000000 ]);
         ]
        @ (if checked then [ if_ (lnot (var "p")) [ ret (int 1) ] [] ] else [])
        @ [
            set_idx (var "p") (int 0) (int 4);
            sink_print (idx (var "p") (int 0));
            expr (call "free" [ var "p" ]);
            ret (int 0);
          ])
    in
    (mk false, mk true, [ "" ])
  in
  let shape_input_gated () =
    let mk guarded =
      with_test_func
        ([
           decl_arr Tint "buf" n;
           set_idx (var "buf") (int 0) (int 2);
           decl (Tptr Tint) "p" ~init:(var "buf");
           if_ (call "getchar" [] ==: int 78) [ set "p" null_ptr ] [];
         ]
        @ (if guarded then [ if_ (lnot (var "p")) [ ret (int 1) ] [] ] else [])
        @ [ sink_print (deref (var "p")); ret (int 0) ])
    in
    (mk false, mk true, [ "N"; "x" ])
  in
  let bad, good, inputs =
    match index mod 8 with
    | 0 | 5 -> shape_const_null_read ()
    | 1 -> shape_const_null_write ()
    | 2 | 6 -> shape_dead_null_read ()
    | 3 -> shape_helper_null ()
    | 4 -> shape_unchecked_malloc ()
    | _ -> shape_input_gated ()
  in
  Testcase.make ~cwe:476 ~index ~inputs ~bad ~good ()
