(* One generated benchmark test: a flawed ("bad") and a fixed ("good")
   variant of the same program, plus the inputs on which dynamic tools are
   exercised. Mirrors the structure of NIST Juliet test cases. *)

type t = {
  cwe : int;
  index : int;
  name : string;                (* e.g. "CWE121_v03" *)
  bad : Minic.Ast.program;
  good : Minic.Ast.program;
  inputs : string list;         (* trigger inputs for dynamic analysis *)
}

let make ~cwe ~index ?(inputs = [ "" ]) ~bad ~good () =
  { cwe; index; name = Printf.sprintf "CWE%d_v%02d" cwe index; bad; good; inputs }

let frontend_bad (t : t) = Minic.frontend_exn t.bad
let frontend_good (t : t) = Minic.frontend_exn t.good
