(* Generators for the integer-error CWEs: overflow (190), underflow (191)
   and overflow-to-buffer-overflow (680).

   Reproduction notes. At run time every implementation's hardware wraps
   identically, so a plain executed signed overflow does NOT diverge --
   CompDiff's detection rate on this family is low (11% in Table 3).
   What does diverge:
   - overflow guards folded away under the no-overflow assumption
     (Listing 1);
   - the widened multiplication of clangx -O1 (the §4.3 IntError example);
   - overflow in pointer arithmetic, whose result is layout-dependent.
   UBSan conversely flags executed *signed* overflow but is silent on the
   "unsigned-style" wrap variants (modeled with masked long arithmetic,
   like Juliet's many unsigned tests) and on truncating conversions. *)

open Minic.Ast
open Minic.Builder
open Gen_common

(* read one input byte as a guaranteed-positive scale-ish value *)
let input_val name = decl Tint name ~init:(call "getchar" [] &: int 127)

(* ---------- CWE-190: integer overflow ---------- *)

let cwe190 ~index =
  let rng = rng_for ~cwe:190 ~index in
  let k = salt rng in
  let shape_add_overflow () =
    (* executed signed addition overflow, result printed: wraps the same
       everywhere *)
    let mk huge =
      with_test_func
        [
          input_val "x";
          decl Tint "y" ~init:(int (if huge then 2147483600 else 100) +: var "x");
          sink_print (var "y");
          ret (int 0);
        ]
    in
    (mk true, mk false, [ "A" ])
  in
  let shape_mul_overflow () =
    let mk big =
      with_test_func
        [
          input_val "x";
          decl Tint "y" ~init:(var "x" *: int (if big then 100000000 else 3));
          sink_print (var "y");
          ret (int 0);
        ]
    in
    (mk true, mk false, [ "A" ])
  in
  let shape_trunc () =
    (* long value truncated into int: lossy but identical everywhere *)
    let mk big =
      with_test_func
        [
          input_val "x";
          decl Tlong "wide"
            ~init:(cast Tlong (var "x") *: long (if big then 400000000 else 4));
          decl Tint "narrow" ~init:(cast Tint (var "wide"));
          sink_print (var "narrow");
          ret (int 0);
        ]
    in
    (mk true, mk false, [ "A" ])
  in
  let shape_unsigned_wrap () =
    (* Juliet's unsigned tests: wrap-around is well defined, nobody flags
       it, yet it is counted as a flaw *)
    let mk big =
      with_test_func
        [
          input_val "x";
          decl Tlong "u"
            ~init:
              (binop Band
                 (cast Tlong (var "x") +: long64 (if big then 4294967290L else 10L))
                 (long64 0xFFFFFFFFL));
          print "u=%ld\n" [ var "u" ];
          ret (int 0);
        ]
    in
    (mk true, mk false, [ "A" ])
  in
  let shape_guard_fold () =
    (* the Listing 1 pattern: the overflow check itself is unstable *)
    let mk overflowing =
      with_test_func
        [
          decl Tint "offset"
            ~init:(int (if overflowing then 2147483000 else 1000));
          decl Tint "len" ~init:(call "getchar" [] &: int 1023);
          if_ (var "offset" +: var "len" <: var "offset")
            [ print "rejected\n" []; ret (int (-1)) ]
            [];
          print "accepted %d\n" [ var "offset" +: var "len" ];
          ret (int 0);
        ]
    in
    (mk true, mk false, [ String.make 1 (Char.chr 127) ])
  in
  let shape_promote_mul () =
    (* §4.3: long x = a * b, widened by clangx -O1 *)
    let mk big =
      with_test_func
        [
          input_val "c";
          decl Tint "a" ~init:(var "c" *: int (if big then 1000 else 2));
          decl Tlong "x" ~init:(var "a" *: var "a");
          print "x=%ld\n" [ var "x" ];
          ret (int 0);
        ]
    in
    (mk true, mk false, [ "d" ])
  in
  let shape_dead_overflow () =
    let mk big =
      with_test_func
        [
          input_val "x";
          sink_dead "t" (var "x" +: int (if big then 2147483600 else 5));
          print "done\n" [];
          ret (int 0);
        ]
    in
    (mk true, mk false, [ "A" ])
  in
  let shape_helper_overflow () =
    let scale =
      func Tint "scale" ~params:[ (Tint, "v"); (Tint, "by") ]
        [ ret (var "v" *: var "by") ]
    in
    let mk big =
      with_test_func ~helpers:[ scale ]
        [
          input_val "x";
          sink_print (call "scale" [ var "x"; int (if big then 90000000 else 9) ]);
          ret (int 0);
        ]
    in
    (mk true, mk false, [ "A" ])
  in
  (* overflow folded into address arithmetic: UBSan-silent, divergent
     because the absolute address is layout-dependent *)
  let shape_ptr_addr () =
    let bad =
      with_test_func
        [
          decl_arr Tint "buf" 8;
          sink_print (cast Tint (var "buf" +: int (1000 + k)));
          ret (int 0);
        ]
    in
    let good =
      with_test_func
        [
          decl_arr Tint "buf" 8;
          set_idx (var "buf") (int 2) (int k);
          sink_print (idx (var "buf") (int 2));
          ret (int 0);
        ]
    in
    (bad, good, [ "" ])
  in
  let bad, good, inputs =
    match index mod 16 with
    | 0 | 9 -> shape_add_overflow ()
    | 1 | 10 -> shape_mul_overflow ()
    | 2 | 5 | 11 -> shape_trunc ()
    | 3 | 6 | 12 | 14 -> shape_unsigned_wrap ()
    | 4 -> shape_guard_fold ()
    | 7 -> shape_promote_mul ()
    | 8 -> shape_dead_overflow ()
    | 13 -> shape_helper_overflow ()
    | _ -> shape_ptr_addr ()
  in
  Testcase.make ~cwe:190 ~index ~inputs ~bad ~good ()

(* ---------- CWE-191: integer underflow ---------- *)

let cwe191 ~index =
  let rng = rng_for ~cwe:191 ~index in
  let k = salt rng in
  let shape_sub_underflow () =
    let mk big =
      with_test_func
        [
          input_val "x";
          decl Tint "y"
            ~init:(int (if big then -2147483600 else -100) -: var "x");
          sink_print (var "y");
          ret (int 0);
        ]
    in
    (mk true, mk false, [ "A" ])
  in
  let shape_guard_fold () =
    (* if (x - y > x) underflow guard, folded under the no-UB assumption *)
    let mk underflowing =
      with_test_func
        [
          decl Tint "x" ~init:(int (if underflowing then -2147483000 else 0));
          decl Tint "y" ~init:(call "getchar" [] &: int 1023);
          if_ (var "x" -: var "y" >: var "x")
            [ print "rejected\n" []; ret (int (-1)) ]
            [];
          print "accepted %d\n" [ var "x" -: var "y" ];
          ret (int 0);
        ]
    in
    (mk true, mk false, [ String.make 1 (Char.chr 127) ])
  in
  let shape_unsigned_wrap () =
    let mk under =
      with_test_func
        [
          input_val "x";
          decl Tlong "u"
            ~init:
              (binop Band
                 (long64 (if under then 3L else 1000L) -: cast Tlong (var "x"))
                 (long64 0xFFFFFFFFL));
          print "u=%ld\n" [ var "u" ];
          ret (int 0);
        ]
    in
    (mk true, mk false, [ "d" ])
  in
  let shape_counter_underflow () =
    (* a countdown that crosses zero and keeps going *)
    let mk bad_guard =
      with_test_func
        [
          decl Tint "count" ~init:(call "getchar" [] &: int 3);
          decl Tint "total" ~init:(int 0);
          while_
            (if bad_guard then var "count" <>: int (-k) else var "count" >: int 0)
            [ set "total" (var "total" +: int 1);
              set "count" (var "count" -: int 1);
              if_ (var "total" >: int 50) [ break_ ] [] ];
          sink_print (var "total");
          ret (int 0);
        ]
    in
    (mk true, mk false, [ "B" ])
  in
  let shape_dead_underflow () =
    let mk big =
      with_test_func
        [
          input_val "x";
          sink_dead "t" (neg (int (if big then 2147483600 else 7)) -: var "x");
          print "done\n" [];
          ret (int 0);
        ]
    in
    (mk true, mk false, [ "A" ])
  in
  let bad, good, inputs =
    match index mod 8 with
    | 0 | 4 -> shape_sub_underflow ()
    | 1 -> shape_guard_fold ()
    | 2 | 5 | 7 -> shape_unsigned_wrap ()
    | 3 -> shape_counter_underflow ()
    | _ -> shape_dead_underflow ()
  in
  Testcase.make ~cwe:191 ~index ~inputs ~bad ~good ()

(* ---------- CWE-680: integer overflow to buffer overflow ---------- *)

let cwe680 ~index =
  let rng = rng_for ~cwe:680 ~index in
  let n = small_size rng in
  let shape_negative_malloc () =
    (* len*scale overflows to a negative size; malloc fails; deref traps
       everywhere identically *)
    let mk overflow =
      with_test_func
        [
          decl Tint "len"
            ~init:(int (if overflow then 600000000 else 4));
          decl Tint "bytes" ~init:(var "len" *: int 4);
          decl (Tptr Tint) "p" ~init:(call "malloc" [ var "bytes" ]);
          set_idx (var "p") (int 0) (int 5);
          sink_print (idx (var "p") (int 0));
          expr (call "free" [ var "p" ]);
          ret (int 0);
        ]
    in
    (mk true, mk false, [ "" ])
  in
  let shape_mod_index () =
    (* overflowed product reduced mod n can go negative: an underread
       whose victim depends on the layout *)
    let mk overflow =
      with_test_func
        [
          input_val "x";
          decl Tint "prod"
            ~init:(var "x" *: int (if overflow then 100000000 else 3));
          decl Tint "i" ~init:(var "prod" %: int n);
          decl_arr Tint "pre" 4;
          decl_arr Tint "buf" n;
          set_idx (var "pre") (int 0) (int 66);
          for_up "j" (int 0) (int n) [ set_idx (var "buf") (var "j") (int 1) ];
          sink_print (idx (var "buf") (var "i"));
          ret (int 0);
        ]
    in
    (mk true, mk false, [ "K" ])
  in
  let shape_promoted_size () =
    (* the size survives in long under clangx -O1 but wraps elsewhere:
       allocation sizes differ, then a fixed index is OOB only on some
       implementations *)
    let mk overflow =
      with_test_func
        [
          input_val "c";
          decl Tint "len"
            ~init:(var "c" *: int (if overflow then 1000 else 1));
          decl Tlong "need" ~init:(var "len" *: var "len");
          if_
            (var "need" <: long 0 ||: (var "need" >: long 1000000))
            [ print "too big\n" []; ret (int 1) ]
            [];
          print "alloc %ld\n" [ var "need" ];
          ret (int 0);
        ]
    in
    (mk true, mk false, [ "d" ])
  in
  let shape_wild_index () =
    let mk overflow =
      with_test_func
        [
          input_val "x";
          decl Tint "i"
            ~init:
              (if overflow then var "x" *: int 900000000
               else binop Mod (var "x") (int n));
          decl_arr Tint "buf" n;
          set_idx (var "buf") (var "i") (int 3);
          print "ok\n" [];
          ret (int 0);
        ]
    in
    (mk true, mk false, [ "B" ])
  in
  let bad, good, inputs =
    match index mod 4 with
    | 0 -> shape_negative_malloc ()
    | 1 -> shape_mod_index ()
    | 2 -> shape_promoted_size ()
    | _ -> shape_wild_index ()
  in
  Testcase.make ~cwe:680 ~index ~inputs ~bad ~good ()
