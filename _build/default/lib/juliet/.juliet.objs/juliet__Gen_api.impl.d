lib/juliet/gen_api.ml: Gen_common Int64 Minic Testcase
