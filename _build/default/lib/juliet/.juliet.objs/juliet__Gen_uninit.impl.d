lib/juliet/gen_uninit.ml: Gen_common Minic Testcase
