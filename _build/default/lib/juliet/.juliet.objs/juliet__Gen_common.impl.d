lib/juliet/gen_common.ml: Cdutil List Minic
