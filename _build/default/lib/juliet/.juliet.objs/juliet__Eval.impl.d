lib/juliet/eval.ml: Array Cdcompiler Compdiff Cwe List Minic Sanitizers Staticcheck Testcase
