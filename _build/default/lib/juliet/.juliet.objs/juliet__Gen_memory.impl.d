lib/juliet/gen_memory.ml: Char Gen_common Int64 List Minic String Testcase
