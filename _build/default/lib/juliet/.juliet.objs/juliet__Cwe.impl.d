lib/juliet/cwe.ml: List Staticcheck
