lib/juliet/suite.ml: Cwe Gen_api Gen_int Gen_memory Gen_misc Gen_ptrsub Gen_uninit Hashtbl List Option Printf Testcase
