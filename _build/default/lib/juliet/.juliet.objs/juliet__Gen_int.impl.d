lib/juliet/gen_int.ml: Char Gen_common Minic String Testcase
