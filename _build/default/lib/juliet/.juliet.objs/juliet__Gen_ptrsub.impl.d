lib/juliet/gen_ptrsub.ml: Gen_common Minic Testcase
