lib/juliet/testcase.ml: Minic Printf
