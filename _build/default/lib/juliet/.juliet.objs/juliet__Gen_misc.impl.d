lib/juliet/gen_misc.ml: Gen_common Minic Testcase
