lib/juliet/suite.mli: Testcase
