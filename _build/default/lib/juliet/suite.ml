(* Suite assembly: the scaled Juliet-style benchmark. *)

let generator_of_cwe (id : int) : index:int -> Testcase.t =
  match id with
  | 121 -> Gen_memory.cwe121
  | 122 -> Gen_memory.cwe122
  | 124 -> Gen_memory.cwe124
  | 126 -> Gen_memory.cwe126
  | 127 -> Gen_memory.cwe127
  | 415 -> Gen_memory.cwe415
  | 416 -> Gen_memory.cwe416
  | 590 -> Gen_memory.cwe590
  | 475 -> Gen_api.cwe475
  | 588 -> Gen_api.cwe588
  | 685 -> Gen_api.cwe685
  | 758 -> Gen_api.cwe758
  | 190 -> Gen_int.cwe190
  | 191 -> Gen_int.cwe191
  | 680 -> Gen_int.cwe680
  | 369 -> Gen_misc.cwe369
  | 476 -> Gen_misc.cwe476
  | 457 -> Gen_uninit.cwe457
  | 665 -> Gen_uninit.cwe665
  | 469 -> Gen_ptrsub.cwe469
  | _ -> invalid_arg (Printf.sprintf "Suite: unknown CWE %d" id)

let generate_cwe ~(count : int) (id : int) : Testcase.t list =
  let gen = generator_of_cwe id in
  List.init count (fun index -> gen ~index)

(* the full scaled suite (~1,500 tests) *)
let full () : Testcase.t list =
  List.concat_map
    (fun (info : Cwe.info) -> generate_cwe ~count:(Cwe.scaled_count info) info.Cwe.id)
    Cwe.all

(* a smaller suite for unit tests and smoke runs *)
let quick ?(per_cwe = 8) () : Testcase.t list =
  List.concat_map
    (fun (info : Cwe.info) ->
      generate_cwe
        ~count:(min per_cwe (Cwe.scaled_count info))
        info.Cwe.id)
    Cwe.all

let count_by_cwe (tests : Testcase.t list) : (int * int) list =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun (t : Testcase.t) ->
      Hashtbl.replace tbl t.Testcase.cwe
        (1 + Option.value ~default:0 (Hashtbl.find_opt tbl t.Testcase.cwe)))
    tests;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare
