(* Shared machinery for the CWE test-case generators.

   Every generator is deterministic: variant [index] of a CWE derives its
   randomness from [rng_for], so the whole suite is a pure function of the
   CWE table. Shapes rotate through data-flow wrappers (direct, through a
   helper function, through a loop) and sinks (value printed vs dead) the
   same way Juliet's flow variants do. *)

open Minic.Builder

let rng_for ~cwe ~index = Cdutil.Rng.create (Cdutil.Rng.mix (cwe * 7919) index)

(* sizes that differ across variants but stay small enough for the VM *)
let small_size rng = Cdutil.Rng.int_in rng 4 12

(* a value that obviously depends on the variant, for varied constants *)
let salt rng = Cdutil.Rng.int_in rng 1 99

(* --- sinks --- *)

(* print an int-typed expression: the canonical output-propagating sink
   (Juliet's printIntLine) *)
let sink_print e = print "value: %d\n" [ e ]

(* consume a value without output: erroneous state does not propagate *)
let sink_dead name e = decl Minic.Ast.Tint name ~init:e

(* --- misc --- *)

let null_ptr = cast (Minic.Ast.Tptr Minic.Ast.Tint) (int 0)

(* standard main wrapper calling a single test function *)
let with_test_func ?(globals = []) ?(helpers = []) body =
  program ~globals
    (helpers
    @ [
        func Minic.Ast.Tint "test_case" body;
        func Minic.Ast.Tint "main"
          [ expr (call "test_case" []); ret (int 0) ];
      ])

(* variant selector: rotate through the shape list by index *)
let pick_shape shapes ~index = List.nth shapes (index mod List.length shapes)
