(* The 20 CWE categories of Table 2, with the paper's test counts and the
   scaled counts this reproduction generates (roughly 1/12, floor 4). *)

type category =
  | Memory_error      (* 121~127, 415, 416, 590 -- Table 3 row 1 *)
  | Ub_api            (* 475 *)
  | Bad_struct_ptr    (* 588 *)
  | Bad_call          (* 685 *)
  | Ub_general        (* 758 *)
  | Int_error         (* 190, 191, 680 *)
  | Div_zero          (* 369 *)
  | Null_deref        (* 476 *)
  | Uninit            (* 457, 665 *)
  | Ptr_sub           (* 469 *)

type info = {
  id : int;
  description : string;
  category : category;
  paper_count : int;
}

let all : info list =
  [
    { id = 121; description = "Stack Based Buffer Overflow"; category = Memory_error; paper_count = 2951 };
    { id = 122; description = "Heap Based Buffer Overflow"; category = Memory_error; paper_count = 3575 };
    { id = 124; description = "Buffer Underwrite"; category = Memory_error; paper_count = 1024 };
    { id = 126; description = "Buffer Overread"; category = Memory_error; paper_count = 721 };
    { id = 127; description = "Buffer Underread"; category = Memory_error; paper_count = 1022 };
    { id = 415; description = "Double Free"; category = Memory_error; paper_count = 820 };
    { id = 416; description = "Use After Free"; category = Memory_error; paper_count = 394 };
    { id = 475; description = "Undefined Behavior for Input to API"; category = Ub_api; paper_count = 18 };
    { id = 588; description = "Access Child of Non Struct. Pointer"; category = Bad_struct_ptr; paper_count = 80 };
    { id = 590; description = "Free Memory Not on Heap"; category = Memory_error; paper_count = 2280 };
    { id = 685; description = "Function Call With Incorrect #Args."; category = Bad_call; paper_count = 18 };
    { id = 758; description = "Undefined Behavior"; category = Ub_general; paper_count = 523 };
    { id = 190; description = "Integer Overflow"; category = Int_error; paper_count = 1564 };
    { id = 191; description = "Integer Underflow"; category = Int_error; paper_count = 1169 };
    { id = 369; description = "Divide by Zero"; category = Div_zero; paper_count = 437 };
    { id = 476; description = "NULL Pointer Dereference"; category = Null_deref; paper_count = 306 };
    { id = 680; description = "Integer Overflow to Buffer Overflow"; category = Int_error; paper_count = 196 };
    { id = 457; description = "Use of Uninitialized Variable"; category = Uninit; paper_count = 928 };
    { id = 665; description = "Improper Initialization"; category = Uninit; paper_count = 98 };
    { id = 469; description = "Use of Pointer Sub. to Determine Size"; category = Ptr_sub; paper_count = 18 };
  ]

let scale = 12

let scaled_count (i : info) = max 4 (i.paper_count / scale)

let info id = List.find (fun i -> i.id = id) all

let total_paper = List.fold_left (fun acc i -> acc + i.paper_count) 0 all
let total_scaled = List.fold_left (fun acc i -> acc + scaled_count i) 0 all

let category_to_string = function
  | Memory_error -> "Memory error"
  | Ub_api -> "UB for input to API"
  | Bad_struct_ptr -> "Bad struct. pointer"
  | Bad_call -> "Bad function call"
  | Ub_general -> "UB"
  | Int_error -> "Integer error"
  | Div_zero -> "Divide by zero"
  | Null_deref -> "Null pointer deref."
  | Uninit -> "Uninitialized memory"
  | Ptr_sub -> "UB of pointer Sub."

(* which Finding kinds count as a true detection for a category when
   scoring the static tools *)
let matching_kinds (c : category) : Staticcheck.Finding.kind list =
  let open Staticcheck.Finding in
  match c with
  | Memory_error -> [ Mem_error; Null_deref ]
  | Ub_api -> [ Bad_call; Mem_error ]
  | Bad_struct_ptr -> [ Mem_error; Bad_call ]
  | Bad_call -> [ Bad_call ]
  | Ub_general -> [ Ub_generic; Uninit; Int_error ]
  | Int_error -> [ Int_error ]
  | Div_zero -> [ Div_zero ]
  | Null_deref -> [ Null_deref ]
  | Uninit -> [ Uninit ]
  | Ptr_sub -> [ Ptr_sub; Int_error ]
