(* Generators for CWE-457 (use of uninitialized variable) and CWE-665
   (improper initialization).

   This is the family where CompDiff shines in Table 3 (92% vs MSan's 7%):
   most Juliet variants only *print* the uninitialized value, which MSan
   deliberately does not flag (it reports decisions, not copies), while
   the junk value itself differs between implementations (stack leftovers,
   register-reuse patterns, layouts). The handful of branch-on-uninit
   variants are the MSan-detectable slice. *)

open Minic.Ast
open Minic.Builder
open Gen_common

(* ---------- CWE-457: use of uninitialized variable ---------- *)

let cwe457 ~index =
  let rng = rng_for ~cwe:457 ~index in
  let n = small_size rng in
  let k = salt rng in
  let shape_print_uninit () =
    let mk init =
      with_test_func
        ([ decl Tint "x" ?init:(if init then Some (int k) else None) ]
        @ [ sink_print (var "x"); ret (int 0) ])
    in
    (mk false, mk true, [ "" ])
  in
  let shape_print_uninit_slot () =
    (* the address-taken variant stays in the stack frame at every level *)
    let mk init =
      with_test_func
        [
          decl Tint "x" ?init:(if init then Some (int k) else None);
          decl (Tptr Tint) "px" ~init:(addr (var "x"));
          sink_print (deref (var "px"));
          ret (int 0);
        ]
    in
    (mk false, mk true, [ "" ])
  in
  let shape_branch_uninit () =
    (* MSan's detectable slice: the uninitialized value decides a branch *)
    let mk init =
      with_test_func
        [
          decl Tint "flag" ?init:(if init then Some (int 1) else None);
          if_ (var "flag" >: int 0)
            [ print "positive\n" [] ]
            [ print "non-positive\n" [] ];
          ret (int 0);
        ]
    in
    (mk false, mk true, [ "" ])
  in
  let shape_heap_uninit () =
    let mk init =
      with_test_func
        ([ decl (Tptr Tint) "p" ~init:(call "malloc" [ int n ]) ]
        @ (if init then [ expr (call "memset" [ var "p"; int 0; int n ]) ] else [])
        @ [
            sink_print (idx (var "p") (int (n / 2)));
            expr (call "free" [ var "p" ]);
            ret (int 0);
          ])
    in
    (mk false, mk true, [ "" ])
  in
  let shape_dead_uninit () =
    let mk init =
      with_test_func
        [
          decl Tint "x" ?init:(if init then Some (int 2) else None);
          sink_dead "t" (var "x");
          print "fin\n" [];
          ret (int 0);
        ]
    in
    (mk false, mk true, [ "" ])
  in
  let shape_conditional_init () =
    (* the exiv2 shape (Listing 4): initialized only when input arrives *)
    let mk always =
      with_test_func
        [
          decl Tint "l" ?init:(if always then Some (int 0) else None);
          decl Tint "c" ~init:(call "getchar" []);
          if_ (var "c" >=: int 48) [ set "l" (var "c" -: int 48) ] [];
          sink_print (var "l");
          ret (int 0);
        ]
    in
    (mk false, mk true, [ ""; "7" ])
  in
  let shape_arith_uninit () =
    let mk init =
      with_test_func
        [
          decl Tint "x" ?init:(if init then Some (int 1) else None);
          decl Tint "y" ~init:(var "x" *: int 3 +: int k);
          sink_print (var "y");
          ret (int 0);
        ]
    in
    (mk false, mk true, [ "" ])
  in
  let shape_partial_array () =
    let mk full =
      let bound = if full then n else n - 2 in
      with_test_func
        [
          decl_arr Tint "buf" n;
          for_up "i" (int 0) (int bound) [ set_idx (var "buf") (var "i") (int 5) ];
          sink_print (idx (var "buf") (int (n - 1)));
          ret (int 0);
        ]
    in
    (mk false, mk true, [ "" ])
  in
  let shape_loop_init () =
    (* good variant initializes inside a loop whose entry a join-based
       analyzer cannot prove: static-tool FP fodder *)
    let mk init_in_loop =
      with_test_func
        [
          decl Tint "acc" ?init:(if init_in_loop then None else Some (int 0));
          for_up "i" (int 0) (int 3)
            [
              (if init_in_loop then
                 if_ (var "i" ==: int 0) [ set "acc" (int 0) ] []
               else expr (int 0));
              set "acc" (var "acc" +: var "i");
            ];
          sink_print (var "acc");
          ret (int 0);
        ]
    in
    (* bad: accumulator never initialized at all *)
    let bad =
      with_test_func
        [
          decl Tint "acc";
          for_up "i" (int 0) (int 3) [ set "acc" (var "acc" +: var "i") ];
          sink_print (var "acc");
          ret (int 0);
        ]
    in
    (bad, mk true, [ "" ])
  in
  let bad, good, inputs =
    match index mod 10 with
    | 0 | 4 -> shape_print_uninit ()
    | 1 -> shape_print_uninit_slot ()
    | 2 -> shape_branch_uninit ()
    | 3 -> shape_heap_uninit ()
    | 5 -> shape_dead_uninit ()
    | 6 -> shape_conditional_init ()
    | 7 -> shape_arith_uninit ()
    | 8 -> shape_partial_array ()
    | _ -> shape_loop_init ()
  in
  Testcase.make ~cwe:457 ~index ~inputs ~bad ~good ()

(* ---------- CWE-665: improper initialization ---------- *)

let cwe665 ~index =
  let rng = rng_for ~cwe:665 ~index in
  let n = max 6 (small_size rng) in
  let shape_partial_memset () =
    let mk full =
      with_test_func
        [
          decl (Tptr Tint) "p" ~init:(call "malloc" [ int n ]);
          expr (call "memset" [ var "p"; int 7; int (if full then n else n - 3) ]);
          sink_print (idx (var "p") (int (n - 1)));
          expr (call "free" [ var "p" ]);
          ret (int 0);
        ]
    in
    (mk false, mk true, [ "" ])
  in
  let shape_wrong_order () =
    (* value consumed before the initializing call *)
    let setup =
      func Tvoid "setup" ~params:[ (Tptr Tint, "s") ] [ set_deref (var "s") (int 41) ]
    in
    let mk correct =
      let use = sink_print (var "state") in
      let init_call = expr (call "setup" [ addr (var "state") ]) in
      with_test_func ~helpers:[ setup ]
        ([ decl Tint "state" ]
        @ (if correct then [ init_call; use ] else [ use; init_call ])
        @ [ ret (int 0) ])
    in
    (mk false, mk true, [ "" ])
  in
  let shape_string_unterminated () =
    let mk terminated =
      with_test_func
        [
          decl_arr Tint "s" n;
          set_idx (var "s") (int 0) (int 72);
          set_idx (var "s") (int 1) (int 73);
          (if terminated then set_idx (var "s") (int 2) (int 0)
           else expr (int 0));
          print "s=%s.\n" [ var "s" ];
          ret (int 0);
        ]
    in
    (mk false, mk true, [ "" ])
  in
  let shape_field_skipped () =
    (* one "field" of a poor man's struct (array) left uninitialized *)
    let mk full =
      with_test_func
        ([
           decl_arr Tint "rec" 3;
           set_idx (var "rec") (int 0) (int 1);
           set_idx (var "rec") (int 1) (int 2);
         ]
        @ (if full then [ set_idx (var "rec") (int 2) (int 3) ] else [])
        @ [
            sink_print
              (idx (var "rec") (int 0) +: idx (var "rec") (int 1)
              +: idx (var "rec") (int 2));
            ret (int 0);
          ])
    in
    (mk false, mk true, [ "" ])
  in
  let bad, good, inputs =
    match index mod 4 with
    | 0 -> shape_partial_memset ()
    | 1 -> shape_wrong_order ()
    | 2 -> shape_string_unterminated ()
    | _ -> shape_field_skipped ()
  in
  Testcase.make ~cwe:665 ~index ~inputs ~bad ~good ()
