(* Generators for the memory-error CWEs (Table 3, row 1): stack/heap
   buffer overflow (121/122), buffer underwrite (124), buffer
   over/under-read (126/127), double free (415), use after free (416) and
   free of non-heap memory (590).

   Shape design notes (what each shape is tuned to exercise):
   - "adjacent" OOB accesses sit in the sanitizer redzone: ASan catches
     them; the corrupted/read cell differs across layouts, so CompDiff
     sees divergent output when the program prints an affected value;
   - "far" OOB accesses land inside a neighbouring live object: ASan's
     documented blind spot, still divergent for CompDiff;
   - "dead" shapes never let the erroneous state reach the output: ASan
     still catches the access, CompDiff by design cannot;
   - free-of-non-heap traps identically in every implementation (glibc
     abort), so CompDiff misses the whole CWE-590 slice, as discussed in
     the paper's limitations. *)

open Minic.Ast
open Minic.Builder
open Gen_common

(* ---------- CWE-121: stack-based buffer overflow ---------- *)

let cwe121 ~index =
  let rng = rng_for ~cwe:121 ~index in
  let n = small_size rng in
  let v = salt rng in
  let body_locals =
    [
      decl_arr Tint "buf" n;
      decl Tint "marker" ~init:(int 1000);
      for_up "z" (int 0) (int n) [ set_idx (var "buf") (var "z") (int 3) ];
    ]
  in
  let observe =
    [ print "m=%d b=%d\n" [ var "marker"; idx (var "buf") (int 0) ]; ret (int 0) ]
  in
  let opaque =
    func Tint "opaque" ~params:[ (Tint, "x") ] [ ret (var "x") ]
  in
  (* [hidden]: index through an opaque call -- interval analysis loses it *)
  let shape_direct_write ?(hidden = false) off =
    let index o = if hidden then call "opaque" [ int o ] else int o in
    let mk o =
      with_test_func
        ~helpers:(if hidden then [ opaque ] else [])
        (body_locals @ [ set_idx (var "buf") (index o) (int v) ] @ observe)
    in
    (mk off, mk (n - 1), [ "" ])
  in
  let shape_helper () =
    (* off-by-one loop bound passed to a helper *)
    let helper count =
      [
        decl_arr Tint "buf" n;
        decl Tint "marker" ~init:(int 777);
        expr (call "fill" [ var "buf"; count ]);
        print "m=%d b=%d\n" [ var "marker"; idx (var "buf") (int 0) ];
        ret (int 0);
      ]
    in
    let fill =
      func Tvoid "fill"
        ~params:[ (Tptr Tint, "b"); (Tint, "cnt") ]
        [ for_up "i" (int 0) (var "cnt") [ set_idx (var "b") (var "i") (var "i") ] ]
    in
    let bad = with_test_func ~helpers:[ fill ] (helper (int (n + 1))) in
    let good = with_test_func ~helpers:[ fill ] (helper (int n)) in
    (bad, good, [ "" ])
  in
  let shape_guarded ~early_return_guard =
    (* input-derived index with an off-by-one guard *)
    let access = set_idx (var "buf") (var "i") (int v) in
    let mk guard_ok =
      let guard_stmts =
        if early_return_guard then
          [
            if_
              (var "i" <: int 0 ||: (var "i" >: int (if guard_ok then n - 1 else n)))
              [ ret (int 0) ] [];
            access;
          ]
        else
          [
            if_
              (var "i" >=: int 0 &&: (var "i" <: int (if guard_ok then n else n + 1)))
              [ access ] [];
          ]
      in
      with_test_func
        (body_locals
        @ [ decl Tint "i" ~init:(call "getchar" [] -: int 48) ]
        @ guard_stmts @ observe)
    in
    (* trigger: i = n, one past the end in the bad variant *)
    (mk false, mk true, [ String.make 1 (Char.chr (48 + n)) ])
  in
  let shape_dead_read () =
    let bad =
      with_test_func
        (body_locals
        @ [ sink_dead "tmp" (idx (var "buf") (int n)); print "done\n" []; ret (int 0) ])
    in
    let good =
      with_test_func
        (body_locals
        @ [ sink_dead "tmp" (idx (var "buf") (int (n - 1))); print "done\n" []; ret (int 0) ])
    in
    (bad, good, [ "" ])
  in
  let shape_read_printed off =
    let bad =
      with_test_func (body_locals @ [ sink_print (idx (var "buf") (int off)); ret (int 0) ])
    in
    let good =
      with_test_func
        (body_locals @ [ sink_print (idx (var "buf") (int (n - 1))); ret (int 0) ])
    in
    (bad, good, [ "" ])
  in
  let shape_far_jump () =
    (* lands inside the neighbouring big buffer: ASan's blind spot *)
    let locals =
      [ decl_arr Tint "big" 64; decl_arr Tint "buf" 4; decl Tint "k" ~init:(int 3) ]
    in
    let seed_big =
      block
        [
          for_up "j" (int 0) (int 64) [ set_idx (var "big") (var "j") (int 5) ];
          for_up "j" (int 0) (int 4) [ set_idx (var "buf") (var "j") (int 2) ];
        ]
    in
    let obs =
      [
        print "b=%d big=%d\n"
          [ idx (var "buf") (int 0); idx (var "big") (int 30) ];
        ret (int 0);
      ]
    in
    let bad =
      with_test_func
        (locals @ [ seed_big; set_idx (var "buf") (int 30 +: var "k") (int v) ] @ obs)
    in
    let good =
      with_test_func (locals @ [ seed_big; set_idx (var "buf") (var "k") (int v) ] @ obs)
    in
    (bad, good, [ "" ])
  in
  let shape_loop () =
    let mk bound =
      with_test_func
        (body_locals
        @ [
            for_up "i" (int 0) bound [ set_idx (var "buf") (var "i") (var "i") ];
          ]
        @ observe)
    in
    (mk (int n +: int 1), mk (int n), [ "" ])
  in
  let shape_silent_write () =
    (* guard arrays on both sides keep the stray write inside the frame,
       and nothing it can corrupt is ever printed: the erroneous state
       does not propagate (CompDiff's designed miss) *)
    let locals =
      [
        decl_arr Tint "lo_guard" 4;
        decl_arr Tint "buf" n;
        decl_arr Tint "hi_guard" 4;
      ]
    in
    let mk o =
      with_test_func
        (locals @ [ set_idx (var "buf") (int o) (int v); print "ok\n" []; ret (int 0) ])
    in
    (mk n, mk (n - 1), [ "" ])
  in
  let shape_unvalidated_input () =
    let mk validated =
      let access = set_idx (var "buf") (var "i") (int 1) in
      with_test_func
        (body_locals
        @ [ decl Tint "i" ~init:(call "getchar" [] -: int 48) ]
        @ (if validated then
             (* robust but opaque to interval refinement: early return *)
             [ if_ (var "i" <: int 0 ||: (var "i" >=: int n)) [ ret (int 0) ] [];
               access ]
           else [ access ])
        @ observe)
    in
    (mk false, mk true, [ String.make 1 (Char.chr (48 + n + 1)) ])
  in
  let bad, good, inputs =
    match index mod 10 with
    | 0 -> shape_direct_write ~hidden:true n
    | 1 -> shape_helper ()
    | 2 -> shape_guarded ~early_return_guard:true
    | 3 -> shape_direct_write (n + 2)
    | 4 -> shape_dead_read ()
    | 5 -> shape_read_printed (n + 1)
    | 6 -> shape_far_jump ()
    | 7 -> shape_loop ()
    | 8 -> shape_silent_write ()
    | _ -> shape_unvalidated_input ()
  in
  Testcase.make ~cwe:121 ~index ~inputs ~bad ~good ()

(* ---------- CWE-122: heap-based buffer overflow ---------- *)

let cwe122 ~index =
  let rng = rng_for ~cwe:122 ~index in
  let n = small_size rng in
  let v = salt rng in
  let alloc =
    [
      decl (Tptr Tint) "p" ~init:(call "malloc" [ int n ]);
      decl (Tptr Tint) "q" ~init:(call "malloc" [ int n ]);
      if_ (lnot (var "p") ||: lnot (var "q")) [ ret (int 1) ] [];
      expr (call "memset" [ var "p"; int 11; int n ]);
      expr (call "memset" [ var "q"; int 42; int n ]);
      set_idx (var "q") (int 0) (int 4242);
      set_idx (var "p") (int 0) (int 11);
    ]
  in
  let observe =
    [
      print "p0=%d q0=%d\n" [ idx (var "p") (int 0); idx (var "q") (int 0) ];
      expr (call "free" [ var "p" ]);
      expr (call "free" [ var "q" ]);
      ret (int 0);
    ]
  in
  let shape_write off =
    let mk o = with_test_func (alloc @ [ set_idx (var "p") (int o) (int v) ] @ observe) in
    (mk off, mk (n - 1), [ "" ])
  in
  let shape_read off =
    let mk o = with_test_func (alloc @ [ sink_print (idx (var "p") (int o)) ] @ observe) in
    (mk off, mk (n - 1), [ "" ])
  in
  let shape_dead_read () =
    let mk o =
      with_test_func
        (alloc @ [ sink_dead "tmp" (idx (var "p") (int o)); print "done\n" [] ] @ observe)
    in
    (mk n, mk (n - 1), [ "" ])
  in
  let shape_loop_fill () =
    let mk bound =
      with_test_func
        (alloc
        @ [ for_up "i" (int 0) bound [ set_idx (var "p") (var "i") (var "i" *: int 2) ] ]
        @ observe)
    in
    (mk (int (n + 2)), mk (int n), [ "" ])
  in
  let shape_input_size () =
    (* allocation size from input, fixed write index *)
    let mk checked =
      let stmts =
        [
          decl Tint "sz" ~init:(call "getchar" [] -: int 48);
        ]
        @ (if checked then [ if_ (var "sz" <: int 0 ||: (var "sz" <: int (n + 1))) [ ret (int 0) ] [] ] else [])
        @ [
            decl (Tptr Tint) "p" ~init:(call "malloc" [ var "sz" ]);
            set_idx (var "p") (int n) (int v);
            sink_print (idx (var "p") (int n));
            expr (call "free" [ var "p" ]);
            ret (int 0);
          ]
      in
      with_test_func stmts
    in
    (* trigger: sz = 2 < n, so writing index n overflows the block *)
    (mk false, mk true, [ "2"; String.make 1 (Char.chr (48 + n + 3)) ])
  in
  let shape_helper () =
    let copy =
      func Tvoid "copy_n"
        ~params:[ (Tptr Tint, "dst"); (Tint, "cnt") ]
        [ for_up "i" (int 0) (var "cnt") [ set_idx (var "dst") (var "i") (var "i") ] ]
    in
    let mk cnt =
      with_test_func ~helpers:[ copy ]
        (alloc @ [ expr (call "copy_n" [ var "p"; int cnt ]) ] @ observe)
    in
    (mk (n + 1), mk n, [ "" ])
  in
  let shape_far_write () =
    (* far jump over the redzone into the adjacent heap block *)
    let mk o = with_test_func (alloc @ [ set_idx (var "p") (int o) (int v) ] @ observe) in
    (mk (n + 20), mk (n - 1), [ "" ])
  in
  let shape_memset_overflow () =
    let mk len =
      with_test_func
        (alloc @ [ expr (call "memset" [ var "p"; int 9; int len ]) ] @ observe)
    in
    (mk (n + 1), mk n, [ "" ])
  in
  let bad, good, inputs =
    match index mod 8 with
    | 0 -> shape_write n
    | 1 -> shape_read (n + 1)
    | 2 -> shape_dead_read ()
    | 3 -> shape_loop_fill ()
    | 4 -> shape_input_size ()
    | 5 -> shape_helper ()
    | 6 -> shape_far_write ()
    | _ -> shape_memset_overflow ()
  in
  Testcase.make ~cwe:122 ~index ~inputs ~bad ~good ()

(* ---------- CWE-124: buffer underwrite ---------- *)

let cwe124 ~index =
  let rng = rng_for ~cwe:124 ~index in
  let n = small_size rng in
  let v = salt rng in
  let stack_frame =
    [
      decl_arr Tint "before" 4;
      decl_arr Tint "buf" n;
      for_up "z" (int 0) (int 4) [ set_idx (var "before") (var "z") (int 31) ];
      set_idx (var "buf") (int 0) (int 7);
    ]
  in
  let observe =
    [
      print "a=%d z=%d b=%d\n"
        [
          idx (var "before") (int 0);
          idx (var "before") (int 3);
          idx (var "buf") (int 0);
        ];
      ret (int 0);
    ]
  in
  let shape_stack off =
    let mk o = with_test_func (stack_frame @ [ set_idx (var "buf") (int o) (int v) ] @ observe) in
    (mk (-off), mk 0, [ "" ])
  in
  let shape_heap () =
    let mk o =
      with_test_func
        [
          decl (Tptr Tint) "q" ~init:(call "malloc" [ int 4 ]);
          decl (Tptr Tint) "p" ~init:(call "malloc" [ int n ]);
          set_idx (var "q") (int 3) (int 55);
          set_idx (var "p") (int o) (int v);
          print "q3=%d\n" [ idx (var "q") (int 3) ];
          expr (call "free" [ var "p" ]);
          expr (call "free" [ var "q" ]);
          ret (int 0);
        ]
    in
    (mk (-2), mk 0, [ "" ])
  in
  let shape_pointer_walk () =
    (* decrement a pointer below the base in a loop *)
    let mk steps =
      with_test_func
        (stack_frame
        @ [
            decl (Tptr Tint) "w" ~init:(var "buf" +: int 2);
            for_up "i" (int 0) (int steps)
              [ set_deref (var "w") (int v); set "w" (var "w" -: int 1) ];
          ]
        @ observe)
    in
    (mk 5, mk 2, [ "" ])
  in
  let shape_const_negative () =
    let mk o = with_test_func (stack_frame @ [ set_idx (var "buf") (int o) (int v) ] @ observe) in
    (mk (-1), mk 1, [ "" ])
  in
  let shape_input_index () =
    let mk validated =
      let access = set_idx (var "buf") (var "i") (int v) in
      with_test_func
        (stack_frame
        @ [ decl Tint "i" ~init:(call "getchar" [] -: int 52) ]
        @ (if validated then
             [ if_ (var "i" <: int 0 ||: (var "i" >=: int n)) [ ret (int 0) ] []; access ]
           else [ access ])
        @ observe)
    in
    (mk false, mk true, [ "0" ]) (* '0' - 52 = -4 *)
  in
  let bad, good, inputs =
    match index mod 5 with
    | 0 -> shape_stack 1
    | 1 -> shape_heap ()
    | 2 -> shape_pointer_walk ()
    | 3 -> shape_const_negative ()
    | _ -> shape_input_index ()
  in
  Testcase.make ~cwe:124 ~index ~inputs ~bad ~good ()

(* ---------- CWE-126: buffer overread ---------- *)

let cwe126 ~index =
  let rng = rng_for ~cwe:126 ~index in
  let n = small_size rng in
  let globals = [ global_arr "gbuf" Tint n ~init:(List.init n (fun i -> Int64.of_int (i + 1))); global "gnext" Tint ~init:[ 99L ] ] in
  let shape_global off =
    let mk o =
      with_test_func ~globals
        [
          decl Tint "i" ~init:(int o);
          sink_print (idx (var "gbuf") (var "i"));
          ret (int 0);
        ]
    in
    (mk off, mk (n - 1), [ "" ])
  in
  let shape_stack () =
    let mk o =
      with_test_func
        [
          decl_arr Tint "buf" n;
          set_idx (var "buf") (int 0) (int 3);
          sink_print (idx (var "buf") (int o));
          ret (int 0);
        ]
    in
    (mk (n + 1), mk 0, [ "" ])
  in
  let shape_heap () =
    let mk o =
      with_test_func
        [
          decl (Tptr Tint) "p" ~init:(call "malloc" [ int n ]);
          expr (call "memset" [ var "p"; int 8; int n ]);
          sink_print (idx (var "p") (int o));
          expr (call "free" [ var "p" ]);
          ret (int 0);
        ]
    in
    (mk n, mk (n - 1), [ "" ])
  in
  let shape_strlen_unterminated () =
    (* strlen walks past the end of a buffer that lost its terminator *)
    let mk terminated =
      with_test_func
        [
          decl_arr Tint "s" 4;
          set_idx (var "s") (int 0) (int 65);
          set_idx (var "s") (int 1) (int 66);
          set_idx (var "s") (int 2) (int 67);
          set_idx (var "s") (int 3) (int (if terminated then 0 else 68));
          sink_print (call "strlen" [ var "s" ]);
          ret (int 0);
        ]
    in
    (mk false, mk true, [ "" ])
  in
  let shape_loop_sum () =
    let mk bound =
      with_test_func
        [
          decl_arr Tint "buf" n;
          for_up "i" (int 0) (int n) [ set_idx (var "buf") (var "i") (int 2) ];
          decl Tint "sum" ~init:(int 0);
          for_up "i" (int 0) bound
            [ set "sum" (var "sum" +: idx (var "buf") (var "i")) ];
          sink_print (var "sum");
          ret (int 0);
        ]
    in
    (mk (int (n + 2)), mk (int n), [ "" ])
  in
  let bad, good, inputs =
    match index mod 5 with
    | 0 -> shape_global n
    | 1 -> shape_stack ()
    | 2 -> shape_heap ()
    | 3 -> shape_strlen_unterminated ()
    | _ -> shape_loop_sum ()
  in
  Testcase.make ~cwe:126 ~index ~inputs ~bad ~good ()

(* ---------- CWE-127: buffer underread ---------- *)

let cwe127 ~index =
  let rng = rng_for ~cwe:127 ~index in
  let n = small_size rng in
  let shape_stack off =
    let mk o =
      with_test_func
        [
          decl_arr Tint "pre" 4;
          decl_arr Tint "buf" n;
          set_idx (var "pre") (int 3) (int 17);
          set_idx (var "buf") (int 0) (int 5);
          decl Tint "i" ~init:(int o);
          sink_print (idx (var "buf") (var "i"));
          ret (int 0);
        ]
    in
    (mk (-off), mk 0, [ "" ])
  in
  let shape_heap () =
    let mk o =
      with_test_func
        [
          decl (Tptr Tint) "p" ~init:(call "malloc" [ int n ]);
          expr (call "memset" [ var "p"; int 6; int n ]);
          sink_print (idx (var "p") (int o));
          expr (call "free" [ var "p" ]);
          ret (int 0);
        ]
    in
    (mk (-1), mk 0, [ "" ])
  in
  let shape_pointer_arith () =
    let mk back =
      with_test_func
        [
          decl_arr Tint "buf" n;
          set_idx (var "buf") (int 0) (int 9);
          decl (Tptr Tint) "p" ~init:(var "buf" +: int 2);
          sink_print (deref (var "p" -: int back));
          ret (int 0);
        ]
    in
    (mk 4, mk 2, [ "" ])
  in
  let shape_input_index () =
    let mk validated =
      let access = sink_print (idx (var "buf") (var "i")) in
      with_test_func
        ([
           decl_arr Tint "buf" n;
           set_idx (var "buf") (int 0) (int 5);
           decl Tint "i" ~init:(call "getchar" [] -: int 51);
         ]
        @ (if validated then
             [ if_ (var "i" >=: int 0 &&: (var "i" <: int n)) [ access ] [] ]
           else [ access ])
        @ [ ret (int 0) ])
    in
    (mk false, mk true, [ "0" ])
  in
  let bad, good, inputs =
    match index mod 4 with
    | 0 -> shape_stack 1
    | 1 -> shape_heap ()
    | 2 -> shape_pointer_arith ()
    | _ -> shape_input_index ()
  in
  Testcase.make ~cwe:127 ~index ~inputs ~bad ~good ()

(* ---------- CWE-415: double free ---------- *)

let cwe415 ~index =
  let rng = rng_for ~cwe:415 ~index in
  let n = small_size rng in
  let shape_plain () =
    (* double free at the end: allocator corruption never observed *)
    let mk dbl =
      with_test_func
        ([
           decl (Tptr Tint) "p" ~init:(call "malloc" [ int n ]);
           set_idx (var "p") (int 0) (int 3);
           sink_print (idx (var "p") (int 0));
           expr (call "free" [ var "p" ]);
         ]
        @ (if dbl then [ expr (call "free" [ var "p" ]) ] else [])
        @ [ ret (int 0) ])
    in
    (mk true, mk false, [ "" ])
  in
  let shape_alias_after () =
    (* double free followed by two allocations that alias: observable *)
    let mk dbl =
      with_test_func
        ([
           decl (Tptr Tint) "p" ~init:(call "malloc" [ int n ]);
           expr (call "free" [ var "p" ]);
         ]
        @ (if dbl then [ expr (call "free" [ var "p" ]) ] else [])
        @ [
            decl (Tptr Tint) "a" ~init:(call "malloc" [ int n ]);
            decl (Tptr Tint) "b" ~init:(call "malloc" [ int n ]);
            set_idx (var "a") (int 0) (int 111);
            set_idx (var "b") (int 0) (int 222);
            print "a=%d b=%d\n" [ idx (var "a") (int 0); idx (var "b") (int 0) ];
            ret (int 0);
          ])
    in
    (mk true, mk false, [ "" ])
  in
  let shape_helper () =
    let release = func Tvoid "release" ~params:[ (Tptr Tint, "q") ] [ expr (call "free" [ var "q" ]) ] in
    let mk dbl =
      with_test_func ~helpers:[ release ]
        ([
           decl (Tptr Tint) "p" ~init:(call "malloc" [ int n ]);
           expr (call "release" [ var "p" ]);
         ]
        @ (if dbl then [ expr (call "free" [ var "p" ]) ] else [])
        @ [ print "done\n" []; ret (int 0) ])
    in
    (mk true, mk false, [ "" ])
  in
  let shape_conditional () =
    (* bad: frees on both paths plus once after; good: single free but the
       branchy flow still confuses join-based analyzers (FP source) *)
    let mk dbl =
      with_test_func
        [
          decl (Tptr Tint) "p" ~init:(call "malloc" [ int n ]);
          decl Tint "c" ~init:(call "getchar" []);
          if_ (var "c" ==: int 70)
            [ expr (call "free" [ var "p" ]) ]
            (if dbl then [ expr (call "free" [ var "p" ]) ] else []);
          (if dbl then expr (call "free" [ var "p" ])
           else if_ (var "c" <>: int 70) [ expr (call "free" [ var "p" ]) ] []);
          print "done\n" [];
          ret (int 0);
        ]
    in
    (mk true, mk false, [ "F"; "x" ])
  in
  let bad, good, inputs =
    match index mod 4 with
    | 0 -> shape_plain ()
    | 1 -> shape_alias_after ()
    | 2 -> shape_helper ()
    | _ -> shape_conditional ()
  in
  Testcase.make ~cwe:415 ~index ~inputs ~bad ~good ()

(* ---------- CWE-416: use after free ---------- *)

let cwe416 ~index =
  let rng = rng_for ~cwe:416 ~index in
  let n = small_size rng in
  let v = salt rng in
  let shape_read_after_realloc () =
    (* allocator reuse policy differs across implementations *)
    let mk uaf =
      with_test_func
        [
          decl (Tptr Tint) "p" ~init:(call "malloc" [ int n ]);
          set_idx (var "p") (int 0) (int 1111);
          expr (call "free" [ var "p" ]);
          decl (Tptr Tint) "q" ~init:(call "malloc" [ int n ]);
          set_idx (var "q") (int 0) (int 2222);
          sink_print (idx (if uaf then var "p" else var "q") (int 0));
          expr (call "free" [ var "q" ]);
          ret (int 0);
        ]
    in
    (mk true, mk false, [ "" ])
  in
  let shape_write_after_free () =
    let mk uaf =
      with_test_func
        [
          decl (Tptr Tint) "p" ~init:(call "malloc" [ int n ]);
          expr (call "free" [ var "p" ]);
          decl (Tptr Tint) "q" ~init:(call "malloc" [ int n ]);
          set_idx (var "q") (int 0) (int 10);
          set_idx (if uaf then var "p" else var "q") (int 0) (int v);
          print "q0=%d\n" [ idx (var "q") (int 0) ];
          expr (call "free" [ var "q" ]);
          ret (int 0);
        ]
    in
    (mk true, mk false, [ "" ])
  in
  let shape_dead_uaf () =
    let mk uaf =
      with_test_func
        [
          decl (Tptr Tint) "p" ~init:(call "malloc" [ int n ]);
          set_idx (var "p") (int 0) (int 5);
          expr (call "free" [ var "p" ]);
          (if uaf then sink_dead "tmp" (idx (var "p") (int 0))
           else sink_dead "tmp" (int 5));
          print "ok\n" [];
          ret (int 0);
        ]
    in
    (mk true, mk false, [ "" ])
  in
  let shape_helper_uaf () =
    let release = func Tvoid "release" ~params:[ (Tptr Tint, "q") ] [ expr (call "free" [ var "q" ]) ] in
    let mk uaf =
      with_test_func ~helpers:[ release ]
        ([
           decl (Tptr Tint) "p" ~init:(call "malloc" [ int n ]);
           set_idx (var "p") (int 0) (int 42);
         ]
        @ (if uaf then
             [
               expr (call "release" [ var "p" ]);
               decl (Tptr Tint) "r" ~init:(call "malloc" [ int n ]);
               set_idx (var "r") (int 0) (int 7);
               sink_print (idx (var "p") (int 0));
               expr (call "free" [ var "r" ]);
             ]
           else
             [
               sink_print (idx (var "p") (int 0));
               expr (call "release" [ var "p" ]);
             ])
        @ [ ret (int 0) ])
    in
    (mk true, mk false, [ "" ])
  in
  let bad, good, inputs =
    match index mod 4 with
    | 0 -> shape_read_after_realloc ()
    | 1 -> shape_write_after_free ()
    | 2 -> shape_dead_uaf ()
    | _ -> shape_helper_uaf ()
  in
  Testcase.make ~cwe:416 ~index ~inputs ~bad ~good ()

(* ---------- CWE-590: free of memory not on the heap ---------- *)

let cwe590 ~index =
  let rng = rng_for ~cwe:590 ~index in
  let n = small_size rng in
  let globals = [ global_arr "gbuf" Tint n ] in
  let shape_stack () =
    let mk bad_free =
      with_test_func
        ([ decl_arr Tint "buf" n; set_idx (var "buf") (int 0) (int 2) ]
        @ (if bad_free then [ expr (call "free" [ var "buf" ]) ] else [])
        @ [ sink_print (idx (var "buf") (int 0)); ret (int 0) ])
    in
    (mk true, mk false, [ "" ])
  in
  let shape_global () =
    let mk bad_free =
      with_test_func ~globals
        ((if bad_free then [ expr (call "free" [ var "gbuf" ]) ] else [])
        @ [ sink_print (idx (var "gbuf") (int 0)); ret (int 0) ])
    in
    (mk true, mk false, [ "" ])
  in
  let shape_interior () =
    let mk interior =
      with_test_func
        [
          decl (Tptr Tint) "p" ~init:(call "malloc" [ int n ]);
          set_idx (var "p") (int 0) (int 1);
          expr (call "free" [ (if interior then var "p" +: int 1 else var "p") ]);
          print "done\n" [];
          ret (int 0);
        ]
    in
    (mk true, mk false, [ "" ])
  in
  let shape_addr_local () =
    let mk bad_free =
      with_test_func
        ([ decl Tint "x" ~init:(int 3) ]
        @ (if bad_free then [ expr (call "free" [ addr (var "x") ]) ] else [])
        @ [ sink_print (var "x"); ret (int 0) ])
    in
    (mk true, mk false, [ "" ])
  in
  let shape_helper () =
    let release = func Tvoid "release" ~params:[ (Tptr Tint, "q") ] [ expr (call "free" [ var "q" ]) ] in
    let mk bad_free =
      with_test_func ~helpers:[ release ]
        [
          decl_arr Tint "buf" n;
          decl (Tptr Tint) "h" ~init:(call "malloc" [ int n ]);
          set_idx (var "buf") (int 0) (int 4);
          expr (call "release" [ (if bad_free then var "buf" else var "h") ]);
          (if bad_free then expr (call "free" [ var "h" ]) else print "done\n" []);
          ret (int 0);
        ]
    in
    (mk true, mk false, [ "" ])
  in
  let bad, good, inputs =
    match index mod 5 with
    | 0 -> shape_stack ()
    | 1 -> shape_global ()
    | 2 -> shape_interior ()
    | 3 -> shape_addr_local ()
    | _ -> shape_helper ()
  in
  Testcase.make ~cwe:590 ~index ~inputs ~bad ~good ()
