(* The CompDiff oracle (Section 3.1).

   A program is compiled once per implementation; [check] runs every
   binary on one input, normalizes the outputs, and compares their
   MurmurHash3 checksums. Any disagreement is a divergence: for programs
   with deterministic output this is a true positive by construction.

   Timeouts follow RQ6: if only some binaries hang, the fuel budget is
   escalated (up to a cap) until the set of hanging binaries stabilizes;
   a residual mixed hang is reported as a divergence, an all-hang as
   agreement. *)

open Cdcompiler

type observation = {
  output : string;          (* normalized stdout *)
  status : Cdvm.Trap.status;
  fuel_used : int;
}

type verdict =
  | Agree of observation
  | Diverge of (string * observation) list
      (* every implementation's observation, in implementation order *)

type t = {
  binaries : (string * Ir.unit_) list;
  normalize : Normalize.filter;
  base_fuel : int;
  max_fuel : int;
  compare_status : bool;    (* ablation knob: include exit/trap status *)
}

let create ?(profiles = Profiles.all) ?(normalize = Normalize.identity)
    ?(fuel = 200_000) ?(max_fuel = 3_200_000) ?(compare_status = true)
    (tp : Minic.Tast.tprogram) : t =
  let binaries =
    List.map (fun p -> (p.Policy.pname, Pipeline.compile p tp)) profiles
  in
  { binaries; normalize; base_fuel = fuel; max_fuel; compare_status }

let of_binaries ?(normalize = Normalize.identity) ?(fuel = 200_000)
    ?(max_fuel = 3_200_000) ?(compare_status = true)
    (binaries : (string * Ir.unit_) list) : t =
  { binaries; normalize; base_fuel = fuel; max_fuel; compare_status }

let names t = List.map fst t.binaries
let binaries t = t.binaries

let run_one t ~fuel ~input (u : Ir.unit_) : observation =
  let r =
    Cdvm.Exec.run
      ~config:{ Cdvm.Exec.default_config with Cdvm.Exec.input; fuel }
      u
  in
  {
    output = t.normalize r.Cdvm.Exec.stdout;
    status = r.Cdvm.Exec.status;
    fuel_used = r.Cdvm.Exec.fuel_used;
  }

(* checksum of what CompDiff compares for one observation *)
let checksum t (o : observation) : int32 =
  let status_part = if t.compare_status then Cdvm.Trap.signature o.status else "" in
  Cdutil.Murmur3.hash32 (o.output ^ "\x00" ^ status_part)

(* Run every binary on [input], escalating fuel while the hang set is
   mixed (some binaries hang, some do not). *)
let observe t ~(input : string) : (string * observation) list =
  let rec attempt fuel =
    let obs = List.map (fun (n, u) -> (n, run_one t ~fuel ~input u)) t.binaries in
    let hangs, finished =
      List.partition (fun (_, o) -> o.status = Cdvm.Trap.Hang) obs
    in
    if hangs = [] || finished = [] then obs
    else if fuel >= t.max_fuel then obs
    else attempt (fuel * 4)
  in
  attempt t.base_fuel

let verdict_of_observations t (obs : (string * observation) list) : verdict =
  match obs with
  | [] -> invalid_arg "Oracle: no binaries"
  | (_, first) :: rest ->
    let c0 = checksum t first in
    if List.for_all (fun (_, o) -> checksum t o = c0) rest then Agree first
    else Diverge obs

let check t ~(input : string) : verdict =
  verdict_of_observations t (observe t ~input)

let is_divergence = function Diverge _ -> true | Agree _ -> false

(* Scan an input set; return the first bug-triggering input, like the
   "save to diffs/" step of Algorithm 1. *)
let find_bug t ~(inputs : string list) : (string * (string * observation) list) option
    =
  List.find_map
    (fun input ->
      match check t ~input with
      | Diverge obs -> Some (input, obs)
      | Agree _ -> None)
    inputs

let detects t ~(inputs : string list) : bool = find_bug t ~inputs <> None

(* Group implementations by observed behaviour: the equivalence classes
   that drive the subset studies of Figures 1 and 2. Returns a class id
   per implementation, in implementation order. *)
let partition t (obs : (string * observation) list) : int array =
  let table : (int32, int) Hashtbl.t = Hashtbl.create 8 in
  let next = ref 0 in
  Array.of_list
    (List.map
       (fun (_, o) ->
         let c = checksum t o in
         match Hashtbl.find_opt table c with
         | Some id -> id
         | None ->
           let id = !next in
           incr next;
           Hashtbl.add table c id;
           id)
       obs)

(* human-readable divergence report, in the paper's bug-report format:
   input, reproducing configurations, divergent outputs *)
let report_to_string ~(input : string) (obs : (string * observation) list) : string =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "=== CompDiff divergence report ===\n";
  Buffer.add_string buf
    (Printf.sprintf "input (%d bytes): %S\n" (String.length input) input);
  let by_output = Hashtbl.create 8 in
  List.iter
    (fun (name, o) ->
      let key = (o.output, Cdvm.Trap.status_to_string o.status) in
      let cur = Option.value ~default:[] (Hashtbl.find_opt by_output key) in
      Hashtbl.replace by_output key (name :: cur))
    obs;
  Hashtbl.iter
    (fun (out, status) names ->
      Buffer.add_string buf
        (Printf.sprintf "--- %s (status %s):\n%s\n"
           (String.concat ", " (List.rev names))
           status out))
    by_output;
  Buffer.contents buf
