(* Divergence triage.

   Many inputs trigger the same underlying bug; like AFL crash dedup,
   divergences are bucketed by a signature. Our signature is the shape of
   the behaviour partition: which implementations agree with which (not
   the concrete outputs, which often vary with the input bytes). *)

type diff_entry = {
  input : string;
  observations : (string * Oracle.observation) list;
  signature : int;
}

(* canonical-form partition signature: rename class ids in first-seen
   order so the signature depends only on the grouping *)
let signature_of_partition (classes : int array) : int =
  let canon = Array.make (Array.length classes) 0 in
  let next = ref 0 in
  let map = Hashtbl.create 8 in
  Array.iteri
    (fun i c ->
      match Hashtbl.find_opt map c with
      | Some id -> canon.(i) <- id
      | None ->
        Hashtbl.add map c !next;
        canon.(i) <- !next;
        incr next)
    classes;
  let s = String.concat "," (Array.to_list (Array.map string_of_int canon)) in
  Cdutil.Murmur3.hash s

type t = {
  mutable entries : diff_entry list;      (* newest first *)
  mutable signatures : (int, int) Hashtbl.t; (* signature -> count *)
}

let create () = { entries = []; signatures = Hashtbl.create 16 }

let add t (oracle : Oracle.t) ~(input : string)
    (obs : (string * Oracle.observation) list) : [ `New | `Duplicate ] =
  let classes = Oracle.partition oracle obs in
  let signature = signature_of_partition classes in
  let entry = { input; observations = obs; signature } in
  t.entries <- entry :: t.entries;
  match Hashtbl.find_opt t.signatures signature with
  | Some n ->
    Hashtbl.replace t.signatures signature (n + 1);
    `Duplicate
  | None ->
    Hashtbl.add t.signatures signature 1;
    `New

let unique_count t = Hashtbl.length t.signatures
let total_count t = List.length t.entries
let entries t = List.rev t.entries

(* one representative entry per signature *)
let representatives t : diff_entry list =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun e ->
      if Hashtbl.mem seen e.signature then false
      else begin
        Hashtbl.add seen e.signature ();
        true
      end)
    (List.rev t.entries)
