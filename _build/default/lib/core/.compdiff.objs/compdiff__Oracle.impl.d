lib/core/oracle.ml: Array Buffer Cdcompiler Cdutil Cdvm Hashtbl Ir List Minic Normalize Option Pipeline Policy Printf Profiles String
