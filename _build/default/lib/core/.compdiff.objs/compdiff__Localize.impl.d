lib/core/localize.ml: Buffer Cdcompiler Cdvm List Oracle Printf
