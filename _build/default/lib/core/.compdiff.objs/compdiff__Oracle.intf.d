lib/core/oracle.mli: Cdcompiler Cdvm Minic Normalize
