lib/core/triage.ml: Array Cdutil Hashtbl List Oracle String
