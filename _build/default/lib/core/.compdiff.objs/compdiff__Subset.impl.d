lib/core/subset.ml: Array Cdutil List
