lib/core/normalize.ml: Buffer List String
