lib/core/normalize.mli:
