lib/core/subset.mli: Cdutil
