lib/core/triage.mli: Oracle
