(** Subset studies over compiler implementations (Figures 1 and 2,
    §4.2/RQ4).

    A detected bug is summarized by its behaviour partition — one class id
    per implementation (see {!Oracle.partition}). A subset of
    implementations detects the bug iff it spans at least two classes.
    Subsets are bitmasks over the implementation list. *)

type study_row = {
  size : int;                        (** subset size *)
  box : Cdutil.Stats.box;            (** detected-bug counts over all subsets *)
  best : int * int;                  (** (mask, detected count) *)
  worst : int * int;
}

val detects_mask : int array -> int -> bool
(** [detects_mask classes mask]: does the subset straddle two behaviour
    classes? *)

val popcount : int -> int

val masks_of_size : n:int -> size:int -> int list
(** All C(n, size) subsets as bitmasks. *)

val count_detected : int array list -> int -> int
(** Bugs (partitions) detected by one subset. *)

val study : ?min_size:int -> n:int -> int array list -> study_row list
(** One row per subset size from [min_size] (default 2) to [n]: the data
    behind the box plots of Figures 1 and 2. *)

val mask_to_names : names:string list -> int -> string list

val recommend : names:string list -> string list
(** The paper's practical advice (§4.2): two instances from different
    compilers, one unoptimizing and one aggressively optimizing. *)
