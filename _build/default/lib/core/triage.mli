(** Divergence triage (paper §3.2, "Bug-triggering inputs").

    Many inputs trigger the same bug; entries are bucketed by a
    canonical-form signature of the behaviour partition (which
    implementations agree with which), the differential analogue of AFL
    crash deduplication. *)

type diff_entry = {
  input : string;
  observations : (string * Oracle.observation) list;
  signature : int;
}

type t

val signature_of_partition : int array -> int
(** Renaming-invariant hash of a partition: [[0;0;1]] and [[1;1;0]] get
    the same signature, [[0;1;0]] a different one. *)

val create : unit -> t

val add :
  t -> Oracle.t -> input:string -> (string * Oracle.observation) list ->
  [ `New | `Duplicate ]
(** Record a divergent input; [`New] iff its signature was not seen. *)

val unique_count : t -> int
val total_count : t -> int

val entries : t -> diff_entry list
(** All recorded entries, oldest first. *)

val representatives : t -> diff_entry list
(** One entry per unique signature, oldest first. *)
