(* Subset studies (Figures 1 and 2, §4.2 and RQ4).

   Every bug is summarized by its behaviour partition: a class id per
   implementation (same class = same normalized output). A subset of
   implementations detects the bug iff it straddles at least two classes.
   Subsets are bitmasks over the implementation list, enumerated for every
   size from 2 to n. *)

type study_row = {
  size : int;
  box : Cdutil.Stats.box;                 (* detected-bug counts across subsets *)
  best : int * int;                       (* (mask, count) *)
  worst : int * int;
}

(* does the subset [mask] span >= 2 behaviour classes of [classes]? *)
let detects_mask (classes : int array) (mask : int) : bool =
  let seen = ref (-1) in
  let distinct = ref false in
  Array.iteri
    (fun i c ->
      if mask land (1 lsl i) <> 0 then begin
        if !seen = -1 then seen := c else if !seen <> c then distinct := true
      end)
    classes;
  !distinct

let popcount mask =
  let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
  go mask 0

(* all bitmasks over n implementations with the given population *)
let masks_of_size ~n ~size : int list =
  let out = ref [] in
  for mask = 1 to (1 lsl n) - 1 do
    if popcount mask = size then out := mask :: !out
  done;
  List.rev !out

let count_detected (partitions : int array list) (mask : int) : int =
  List.fold_left
    (fun acc classes -> if detects_mask classes mask then acc + 1 else acc)
    0 partitions

(* full study: one row per subset size *)
let study ?(min_size = 2) ~(n : int) (partitions : int array list) : study_row list =
  List.init (n - min_size + 1) (fun i ->
      let size = min_size + i in
      let masks = masks_of_size ~n ~size in
      let scored = List.map (fun m -> (m, count_detected partitions m)) masks in
      let counts = List.map snd scored in
      let best =
        List.fold_left (fun (bm, bc) (m, c) -> if c > bc then (m, c) else (bm, bc))
          (0, min_int) scored
      in
      let worst =
        List.fold_left (fun (bm, bc) (m, c) -> if c < bc then (m, c) else (bm, bc))
          (0, max_int) scored
      in
      { size; box = Cdutil.Stats.box_of_ints counts; best; worst })

let mask_to_names ~(names : string list) (mask : int) : string list =
  List.filteri (fun i _ -> mask land (1 lsl i) <> 0) names

(* The paper's practical recommendation (§4.2): at least two instances
   from different compilers, one unoptimizing and one aggressively
   optimizing. *)
let recommend ~(names : string list) : string list =
  let pick pred = List.find_opt pred names in
  let a = pick (fun n -> n = "gccx-O0") in
  let b = pick (fun n -> n = "clangx-O3") in
  match (a, b) with
  | Some x, Some y -> [ x; y ]
  | _ -> (
    match names with
    | x :: _ -> (
      match List.rev names with
      | y :: _ when y <> x -> [ x; y ]
      | _ -> [ x ])
    | [] -> [])
