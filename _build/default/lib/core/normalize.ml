(* Output normalization (RQ5/RQ6).

   Non-deterministic programs with deterministic output are CompDiff's
   target domain; programs that stamp timestamps or random cookies into
   otherwise deterministic output can be handled by stripping those
   fields, exactly as the paper does for wireshark's
   "10:44:23.405830 [Epan WARNING]" lines. Filters compose left to
   right. *)

type filter = string -> string

let identity : filter = fun s -> s

let compose (fs : filter list) : filter = fun s -> List.fold_left (fun acc f -> f acc) s fs

let is_digit c = c >= '0' && c <= '9'
let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

(* Replace every timestamp of the shape HH:MM:SS (optionally .uuuuuu) with
   a fixed token. *)
let strip_timestamps : filter =
 fun s ->
  let n = String.length s in
  let buf = Buffer.create n in
  let i = ref 0 in
  let looks_like_ts i =
    i + 8 <= n
    && is_digit s.[i] && is_digit s.[i + 1]
    && s.[i + 2] = ':'
    && is_digit s.[i + 3] && is_digit s.[i + 4]
    && s.[i + 5] = ':'
    && is_digit s.[i + 6] && is_digit s.[i + 7]
  in
  while !i < n do
    if looks_like_ts !i then begin
      Buffer.add_string buf "<TS>";
      i := !i + 8;
      (* optional fractional part *)
      if !i < n && s.[!i] = '.' then begin
        incr i;
        while !i < n && is_digit s.[!i] do
          incr i
        done
      end
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.contents buf

(* Replace 0x... hexadecimal addresses with a fixed token: pointer values
   are implementation-defined and a legitimate thing to filter when the
   *presence* of an address, not its value, is the intended output. *)
let strip_hex_addresses : filter =
 fun s ->
  let n = String.length s in
  let buf = Buffer.create n in
  let i = ref 0 in
  while !i < n do
    if !i + 2 < n && s.[!i] = '0' && s.[!i + 1] = 'x' && is_hex s.[!i + 2] then begin
      Buffer.add_string buf "<ADDR>";
      i := !i + 2;
      while !i < n && is_hex s.[!i] do
        incr i
      done
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.contents buf

(* Drop whole lines containing a marker, e.g. "[random]". *)
let strip_lines_containing (marker : string) : filter =
 fun s ->
  let contains line =
    let nl = String.length line and nm = String.length marker in
    let rec at i = i + nm <= nl && (String.sub line i nm = marker || at (i + 1)) in
    nm > 0 && at 0
  in
  String.split_on_char '\n' s
  |> List.filter (fun line -> not (contains line))
  |> String.concat "\n"

(* Keep only the first [n] characters: a cheap way to compare prefixes of
   runaway outputs. *)
let truncate_to (n : int) : filter =
 fun s -> if String.length s <= n then s else String.sub s 0 n
