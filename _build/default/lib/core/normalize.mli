(** Output normalization (paper RQ5/RQ6).

    CompDiff targets programs with deterministic output; programs that
    stamp timestamps or random cookies into otherwise deterministic
    output become comparable after stripping those fields — exactly what
    the paper does for wireshark's "[10:44:23.405830 \[Epan WARNING\]]"
    lines. Filters are plain [string -> string] functions and compose. *)

type filter = string -> string

val identity : filter

val compose : filter list -> filter
(** Left-to-right composition. *)

val strip_timestamps : filter
(** Replace [HH:MM:SS(.uuu...)] shapes with a fixed token. *)

val strip_hex_addresses : filter
(** Replace [0x...] hexadecimal addresses with a fixed token. Pointer
    values are implementation-defined; when the presence of an address,
    not its value, is the intended output, this makes runs comparable. *)

val strip_lines_containing : string -> filter
(** Drop whole lines containing the marker. *)

val truncate_to : int -> filter
(** Keep only the first [n] characters. *)
