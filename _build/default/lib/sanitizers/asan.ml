(* AddressSanitizer model.

   Scope (Table 1): memory errors -- buffer overflows around redzones,
   use-after-free, double free, free of non-heap memory.

   The modeled detection gap matches the real tool: accesses that jump
   clear over the redzone and land inside another *live* object's payload
   are not flagged (real ASan only sees poisoned shadow memory, and a far
   out-of-bounds offset may hit an unpoisoned address). *)

open Cdvm

let redzone = 16

let on_access (m : Mem.t) (p : Value.ptr) (kind : Hooks.access_kind) =
  let dir = match kind with Hooks.Aread -> "READ" | Hooks.Awrite -> "WRITE" in
  if Value.is_wild p then ()
  else
    match Mem.obj m p.Value.obj with
    | None -> ()
    | Some o ->
      if not o.Mem.alive then begin
        let what =
          match o.Mem.kind with
          | Mem.Kheap -> "heap-use-after-free"
          | Mem.Kstack -> "stack-use-after-scope"
          | Mem.Kglobal -> "use-after-free"
        in
        raise (Hooks.Report (Printf.sprintf "AddressSanitizer: %s %s" what dir))
      end
      else begin
        let off = p.Value.off in
        if off >= 0 && off < o.Mem.size then ()
        else if off < 0 && off >= -redzone then
          raise
            (Hooks.Report
               (Printf.sprintf "AddressSanitizer: %s-buffer-underflow %s"
                  (match o.Mem.kind with
                  | Mem.Kheap -> "heap"
                  | Mem.Kstack -> "stack"
                  | Mem.Kglobal -> "global")
                  dir))
        else if off >= o.Mem.size && off < o.Mem.size + redzone then
          raise
            (Hooks.Report
               (Printf.sprintf "AddressSanitizer: %s-buffer-overflow %s"
                  (match o.Mem.kind with
                  | Mem.Kheap -> "heap"
                  | Mem.Kstack -> "stack"
                  | Mem.Kglobal -> "global")
                  dir))
        else begin
          (* far out-of-bounds: only caught if it happens to land in
             unmapped memory (then the plain trap fires) or in another
             object's redzone -- approximated by checking whether the
             absolute address resolves to a live object *)
          let addr = Mem.addr_of_ptr m p in
          match Mem.object_at m addr with
          | Some (o', _) when o'.Mem.alive -> () (* lands in a valid object: missed *)
          | Some _ | None -> ()
          (* unmapped addresses already segfault without ASan; report
             nothing extra here *)
        end
      end

let on_free (m : Mem.t) (p : Value.ptr) cls =
  ignore m;
  ignore p;
  match cls with
  | `Double -> raise (Hooks.Report "AddressSanitizer: attempting double-free")
  | `Invalid ->
    raise (Hooks.Report "AddressSanitizer: attempting free on address which was not malloc()-ed")
  | `Ok | `Null -> ()

let hooks : Hooks.t =
  { Hooks.none with Hooks.on_access; on_free }
