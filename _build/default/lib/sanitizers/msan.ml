(* MemorySanitizer model.

   Scope (Table 1): use of uninitialized memory. Like the real tool, a
   report fires only when an uninitialized value is *used to make a
   decision* -- a conditional branch or an address computation -- not when
   it is merely copied or printed. (That is why the exiv2 example of
   Listing 4, which only prints the uninitialized value, is missed by
   MSan but caught by CompDiff.) *)

open Cdvm

let on_branch ~taint =
  if taint then
    raise (Hooks.Report "MemorySanitizer: use-of-uninitialized-value in branch")

let on_deref_taint ~taint =
  if taint then
    raise (Hooks.Report "MemorySanitizer: use-of-uninitialized-value as pointer")

let hooks : Hooks.t = { Hooks.none with Hooks.on_branch; on_deref_taint }
