(* Driver for sanitizer-instrumented runs.

   A "sanitizer build" is the unoptimizing build (the fuzzer's compiler,
   as in CompDiff-AFL++ where B_fuzz carries the sanitizer checks) plus
   the corresponding VM hooks. *)

open Cdcompiler

type kind = Asan | Ubsan | Msan

let name = function Asan -> "ASan" | Ubsan -> "UBSan" | Msan -> "MSan"

let hooks = function
  | Asan -> Asan.hooks
  | Ubsan -> Ubsan.hooks
  | Msan -> Msan.hooks

let all = [ Asan; Ubsan; Msan ]

(* the build sanitizers instrument: unoptimized, every local observable *)
let build_profile = Profiles.gccx "O0"

let run ?(fuel = 200_000) (kind : kind) (tp : Minic.Tast.tprogram) ~(input : string) :
    Cdvm.Exec.result =
  let u = Pipeline.compile build_profile tp in
  Cdvm.Exec.run
    ~config:
      { Cdvm.Exec.default_config with Cdvm.Exec.input; fuel; hooks = hooks kind }
    u

(* Did this sanitizer report anything on any of the inputs? *)
let detects ?fuel (kind : kind) (tp : Minic.Tast.tprogram) ~(inputs : string list) :
    bool =
  List.exists
    (fun input ->
      match (run ?fuel kind tp ~input).Cdvm.Exec.status with
      | Cdvm.Trap.San_report _ -> true
      | Cdvm.Trap.Exit _ | Cdvm.Trap.Trap _ | Cdvm.Trap.Hang -> false)
    inputs

(* First report message, for diagnostics. *)
let first_report ?fuel (kind : kind) (tp : Minic.Tast.tprogram)
    ~(inputs : string list) : string option =
  List.find_map
    (fun input ->
      match (run ?fuel kind tp ~input).Cdvm.Exec.status with
      | Cdvm.Trap.San_report msg -> Some msg
      | Cdvm.Trap.Exit _ | Cdvm.Trap.Trap _ | Cdvm.Trap.Hang -> None)
    inputs
