(** Driver for sanitizer-instrumented runs.

    A "sanitizer build" is the unoptimizing build (the same compiler
    configuration the fuzzer uses for [B_fuzz]) executed with the
    corresponding VM hook set. A report terminates the run with
    {!Cdvm.Trap.San_report}. *)

type kind = Asan | Ubsan | Msan

val name : kind -> string

val hooks : kind -> Cdvm.Hooks.t
(** The VM instrumentation implementing this sanitizer's checks (and its
    documented blind spots — see {!Asan}, {!Ubsan}, {!Msan}). *)

val all : kind list

val build_profile : Cdcompiler.Policy.profile
(** The compiler configuration sanitizer builds use. *)

val run :
  ?fuel:int -> kind -> Minic.Tast.tprogram -> input:string -> Cdvm.Exec.result

val detects : ?fuel:int -> kind -> Minic.Tast.tprogram -> inputs:string list -> bool
(** Did the sanitizer report anything on any of the inputs? *)

val first_report :
  ?fuel:int -> kind -> Minic.Tast.tprogram -> inputs:string list -> string option
