lib/sanitizers/san.ml: Asan Cdcompiler Cdvm List Minic Msan Pipeline Profiles Ubsan
