lib/sanitizers/asan.ml: Cdvm Hooks Mem Printf Value
