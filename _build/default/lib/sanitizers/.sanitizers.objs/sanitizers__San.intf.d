lib/sanitizers/san.mli: Cdcompiler Cdvm Minic
