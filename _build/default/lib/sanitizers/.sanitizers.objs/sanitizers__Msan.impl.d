lib/sanitizers/msan.ml: Cdvm Hooks
