lib/sanitizers/ubsan.ml: Cdcompiler Cdvm Format Hooks Int64 Ir Mem Value
