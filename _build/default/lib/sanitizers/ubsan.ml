(* UndefinedBehaviorSanitizer model.

   Scope (Table 1): miscellaneous arithmetic UB -- signed overflow in
   add/sub/mul, division by zero (and INT_MIN / -1), out-of-range and
   negative shifts -- plus null-pointer dereference.

   Like the real tool it checks the *operations the compiled code still
   performs*: its scope is per-operation, so UB whose only consequence is
   a divergent evaluation order, a stale pointer or an uninitialized read
   is invisible to it. *)

open Cdcompiler
open Cdvm

let int_min = function Ir.W32 -> -2147483648L | Ir.W64 -> Int64.min_int
let int_max = function Ir.W32 -> 2147483647L | Ir.W64 -> Int64.max_int
let bits = function Ir.W32 -> 32 | Ir.W64 -> 64

let report fmt = Format.kasprintf (fun s -> raise (Hooks.Report ("UndefinedBehaviorSanitizer: " ^ s))) fmt

(* precise overflow checks at the given width; W32 operands are stored
   sign-extended so 64-bit arithmetic is exact for them *)
let check_add w a b =
  match w with
  | Ir.W32 ->
    let r = Int64.add a b in
    if r < int_min w || r > int_max w then report "signed integer overflow: %Ld + %Ld" a b
  | Ir.W64 ->
    let r = Int64.add a b in
    if (a > 0L && b > 0L && r < 0L) || (a < 0L && b < 0L && r >= 0L) then
      report "signed integer overflow: %Ld + %Ld" a b

let check_sub w a b =
  match w with
  | Ir.W32 ->
    let r = Int64.sub a b in
    if r < int_min w || r > int_max w then report "signed integer overflow: %Ld - %Ld" a b
  | Ir.W64 ->
    let r = Int64.sub a b in
    if (a >= 0L && b < 0L && r < 0L) || (a < 0L && b > 0L && r > 0L) then
      report "signed integer overflow: %Ld - %Ld" a b

let check_mul w a b =
  match w with
  | Ir.W32 ->
    let r = Int64.mul a b in
    if r < int_min w || r > int_max w then report "signed integer overflow: %Ld * %Ld" a b
  | Ir.W64 ->
    if a <> 0L && b <> 0L then begin
      let r = Int64.mul a b in
      if Int64.div r b <> a then report "signed integer overflow: %Ld * %Ld" a b
    end

let on_signed_arith op w a b =
  match op with
  | Ir.Badd -> check_add w a b
  | Ir.Bsub -> check_sub w a b
  | Ir.Bmul -> check_mul w a b
  | Ir.Bdiv | Ir.Bmod ->
    if b = 0L then report "division by zero"
    else if b = -1L && a = int_min w then
      report "signed integer overflow: %Ld / -1" a
  | Ir.Bshl ->
    let c = Int64.to_int b in
    if c < 0 || c >= bits w then report "shift exponent %Ld is out of range" b
    else if a < 0L then report "left shift of negative value %Ld" a
    else begin
      (* shifting out significant bits of a positive value is also UB *)
      let r = Int64.shift_left a c in
      if r > int_max w || r < 0L then report "left shift overflows %Ld << %Ld" a b
    end
  | Ir.Bshr ->
    let c = Int64.to_int b in
    if c < 0 || c >= bits w then report "shift exponent %Ld is out of range" b
  | Ir.Band | Ir.Bor | Ir.Bxor -> ()

let on_access (m : Mem.t) (p : Value.ptr) _kind =
  ignore m;
  if Value.is_null p then report "null pointer dereference"

let hooks : Hooks.t = { Hooks.none with Hooks.on_signed_arith; on_access }
