(* AFL-style input mutators.

   The havoc stage stacks a random number of the elementary mutations;
   splice combines two queue entries. All randomness flows through
   {!Cdutil.Rng} so campaigns are reproducible. *)

open Cdutil

let interesting8 = [| 0; 1; 2; 16; 32; 64; 100; 127; 128; 255; 254 |]
let interesting32 =
  [| 0l; 1l; -1l; 16l; 32l; 64l; 100l; 127l; 128l; 255l; 256l; 1024l;
     32767l; -32768l; 65535l; 65536l; 100663045l; Int32.max_int; Int32.min_int |]

let clone s = Bytes.of_string s

let ensure_nonempty b = if Bytes.length b = 0 then Bytes.of_string "\000" else b

let bitflip rng b =
  let b = ensure_nonempty b in
  let bit = Rng.int rng (Bytes.length b * 8) in
  let i = bit / 8 and m = 1 lsl (bit mod 8) in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor m));
  b

let byte_set rng b =
  let b = ensure_nonempty b in
  let i = Rng.int rng (Bytes.length b) in
  Bytes.set b i (Char.chr (Rng.int rng 256));
  b

let byte_interesting rng b =
  let b = ensure_nonempty b in
  let i = Rng.int rng (Bytes.length b) in
  Bytes.set b i (Char.chr (Rng.choose rng interesting8 land 0xff));
  b

let arith rng b =
  let b = ensure_nonempty b in
  let i = Rng.int rng (Bytes.length b) in
  let delta = Rng.int_in rng (-35) 35 in
  Bytes.set b i (Char.chr ((Char.code (Bytes.get b i) + delta) land 0xff));
  b

(* overwrite 4 bytes with an interesting 32-bit value, little-endian *)
let word_interesting rng b =
  let b = ensure_nonempty b in
  if Bytes.length b < 4 then byte_interesting rng b
  else begin
    let i = Rng.int rng (Bytes.length b - 3) in
    let v = Rng.choose rng interesting32 in
    for k = 0 to 3 do
      Bytes.set b (i + k)
        (Char.chr (Int32.to_int (Int32.shift_right_logical v (8 * k)) land 0xff))
    done;
    b
  end

let insert_byte rng b =
  let n = Bytes.length b in
  if n >= 4096 then b
  else begin
    let i = Rng.int rng (n + 1) in
    let nb = Bytes.create (n + 1) in
    Bytes.blit b 0 nb 0 i;
    Bytes.set nb i (Char.chr (Rng.int rng 256));
    Bytes.blit b i nb (i + 1) (n - i);
    nb
  end

let delete_byte rng b =
  let n = Bytes.length b in
  if n <= 1 then b
  else begin
    let i = Rng.int rng n in
    let nb = Bytes.create (n - 1) in
    Bytes.blit b 0 nb 0 i;
    Bytes.blit b (i + 1) nb i (n - 1 - i);
    nb
  end

let dup_block rng b =
  let n = Bytes.length b in
  if n = 0 || n >= 4096 then ensure_nonempty b
  else begin
    let len = 1 + Rng.int rng (min 16 n) in
    let src = Rng.int rng (n - len + 1) in
    let dst = Rng.int rng (n + 1) in
    let nb = Bytes.create (n + len) in
    Bytes.blit b 0 nb 0 dst;
    Bytes.blit b src nb dst len;
    Bytes.blit b dst nb (dst + len) (n - dst);
    nb
  end

let elementary =
  [| bitflip; byte_set; byte_interesting; arith; word_interesting; insert_byte;
     delete_byte; dup_block |]

(* stacked havoc: 1..2^k elementary mutations *)
let havoc rng (s : string) : string =
  let steps = 1 lsl (1 + Rng.int rng 5) in
  let b = ref (clone s) in
  for _ = 1 to steps do
    let m = Rng.choose rng elementary in
    b := m rng !b
  done;
  Bytes.to_string !b

(* splice two inputs at random midpoints, then havoc lightly *)
let splice rng (a : string) (b : string) : string =
  if String.length a = 0 || String.length b = 0 then havoc rng (a ^ b)
  else begin
    let i = Rng.int rng (String.length a) in
    let j = Rng.int rng (String.length b) in
    let merged = String.sub a 0 i ^ String.sub b j (String.length b - j) in
    havoc rng merged
  end
