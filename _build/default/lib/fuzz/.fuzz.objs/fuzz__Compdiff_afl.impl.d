lib/fuzz/compdiff_afl.ml: Cdcompiler Cdvm Compdiff Fuzzer Minic Pipeline Policy Profiles Sanitizers
