lib/fuzz/mutator.ml: Bytes Cdutil Char Int32 Rng String
