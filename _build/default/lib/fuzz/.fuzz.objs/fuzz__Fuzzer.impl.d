lib/fuzz/fuzzer.ml: Bytes Cdcompiler Cdutil Cdvm Char Hashtbl List Mutator Queue Rng String
