lib/fuzz/mutator.mli: Cdutil
