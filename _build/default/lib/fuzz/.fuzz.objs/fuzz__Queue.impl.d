lib/fuzz/queue.ml: Array Cdutil String
