lib/fuzz/compdiff_afl.mli: Cdcompiler Compdiff Fuzzer Minic Sanitizers
