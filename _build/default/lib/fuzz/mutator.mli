(** AFL-style input mutators.

    All randomness flows through {!Cdutil.Rng}, so identical seeds give
    identical mutation streams and whole campaigns replay exactly. *)

val interesting8 : int array
(** AFL's interesting byte values. *)

val interesting32 : int32 array
(** AFL's interesting 32-bit values (written little-endian). *)

val bitflip : Cdutil.Rng.t -> bytes -> bytes
val byte_set : Cdutil.Rng.t -> bytes -> bytes
val byte_interesting : Cdutil.Rng.t -> bytes -> bytes
val arith : Cdutil.Rng.t -> bytes -> bytes
(** Add a small delta (±35) to one byte. *)

val word_interesting : Cdutil.Rng.t -> bytes -> bytes
val insert_byte : Cdutil.Rng.t -> bytes -> bytes
val delete_byte : Cdutil.Rng.t -> bytes -> bytes
val dup_block : Cdutil.Rng.t -> bytes -> bytes

val havoc : Cdutil.Rng.t -> string -> string
(** Stack 2–32 elementary mutations. *)

val splice : Cdutil.Rng.t -> string -> string -> string
(** Merge two inputs at random cut points, then a light havoc. *)
