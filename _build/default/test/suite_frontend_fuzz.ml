(* Robustness properties of the front end itself: the lexer and parser
   must never crash with anything but their own error exceptions, and the
   elaborated pipeline must be total on accepted programs.

   (The compilers under differential test deserve the same scrutiny the
   paper applies to gcc/clang: a front-end crash would poison every
   implementation identically and hide bugs.) *)

let check_bool = Alcotest.(check bool)

(* random byte soup, biased toward MiniC-ish tokens *)
let gen_soup =
  let open QCheck.Gen in
  let token =
    oneofl
      [
        "int "; "long "; "double "; "if"; "else"; "while"; "return "; "break";
        "print"; "("; ")"; "{"; "}"; "["; "]"; ";"; ","; "+"; "-"; "*"; "/";
        "%"; "="; "=="; "<"; ">"; "&&"; "||"; "&"; "|"; "^"; "<<"; ">>"; "!";
        "~"; "?"; ":"; "x"; "y"; "foo"; "main"; "0"; "1"; "42"; "2147483647";
        "0x1F"; "7L"; "1.5"; "\"str\""; "'c'"; "__LINE__"; "static "; "for";
        "getchar()"; "malloc"; "free"; " "; "\n"; "//c\n"; "/*c*/";
      ]
  in
  let* n = int_range 0 40 in
  let* parts = list_repeat n token in
  return (String.concat "" parts)

let prop_lexer_total =
  QCheck.Test.make ~name:"lexer is total (tokens or Lexer.Error)" ~count:500
    (QCheck.make gen_soup) (fun src ->
      match Minic.Lexer.tokenize src with
      | _ -> true
      | exception Minic.Lexer.Error _ -> true)

let prop_parser_total =
  QCheck.Test.make ~name:"parser is total (AST or parse error)" ~count:500
    (QCheck.make gen_soup) (fun src ->
      match Minic.Parser.parse_program_result src with
      | Ok _ | Error _ -> true)

let prop_frontend_total =
  QCheck.Test.make ~name:"typechecker is total on parsed programs" ~count:500
    (QCheck.make gen_soup) (fun src ->
      match Minic.frontend_of_source src with Ok _ | Error _ -> true)

(* raw byte soup, no token bias at all *)
let prop_raw_bytes =
  QCheck.Test.make ~name:"raw bytes never crash the front end" ~count:300
    QCheck.(string_of_size (QCheck.Gen.int_range 0 200))
    (fun src ->
      match Minic.frontend_of_source src with Ok _ | Error _ -> true)

(* accepted random programs must compile and run on every implementation
   without internal errors (traps/hangs are legitimate outcomes) *)
let prop_accepted_programs_execute =
  QCheck.Test.make ~name:"accepted soup compiles and executes everywhere" ~count:200
    (QCheck.make gen_soup) (fun soup ->
      let src = "int main() { " ^ soup ^ " ; return 0; }" in
      match Minic.frontend_of_source src with
      | Error _ -> true
      | Ok tp ->
        List.for_all
          (fun p ->
            let u = Cdcompiler.Pipeline.compile p tp in
            match
              Cdvm.Exec.run
                ~config:{ Cdvm.Exec.default_config with Cdvm.Exec.fuel = 20_000 }
                u
            with
            | _ -> true)
          Cdcompiler.Profiles.all)

let test_pretty_idempotent_on_projects () =
  (* print-parse-print stabilizes on every synthetic project *)
  List.iter
    (fun (p : Projects.Project.t) ->
      let s1 = Minic.Pretty.program_to_string p.Projects.Project.program in
      match Minic.Parser.parse_program_result s1 with
      | Error msg ->
        Alcotest.failf "%s does not re-parse: %s" p.Projects.Project.pname msg
      | Ok ast ->
        Alcotest.(check string)
          (p.Projects.Project.pname ^ " round trip")
          s1
          (Minic.Pretty.program_to_string ast))
    Projects.Registry.all

let test_pretty_roundtrip_preserves_behaviour () =
  (* parsing the pretty-printed source yields observably equal binaries *)
  List.iter
    (fun pname ->
      let p = Option.get (Projects.Registry.by_name pname) in
      let src = Minic.Pretty.program_to_string p.Projects.Project.program in
      let tp1 = Projects.Project.frontend p in
      let tp2 =
        match Minic.frontend_of_source src with
        | Ok tp -> tp
        | Error e -> Alcotest.failf "%s: %s" pname e
      in
      let run tp input =
        let u = Cdcompiler.Pipeline.compile (Cdcompiler.Profiles.gccx "O2") tp in
        (Cdvm.Exec.run ~config:{ Cdvm.Exec.default_config with Cdvm.Exec.input } u)
          .Cdvm.Exec.stdout
      in
      (* only compare on inputs that trigger no seeded bug: on a
         UB-triggering input the observed junk legitimately depends on
         register numbering, which the round trip may permute *)
      let benign input =
        not
          (List.exists
             (fun (b : Projects.Project.seeded_bug) -> b.Projects.Project.trigger input)
             p.Projects.Project.bugs)
      in
      List.iter
        (fun input ->
          if benign input then
            Alcotest.(check string)
              (Printf.sprintf "%s on %S" pname input)
              (run tp1 input) (run tp2 input))
        p.Projects.Project.seeds)
    [ "jq"; "brotli"; "curl" ]

let tc name f = Alcotest.test_case name `Quick f

let suites =
  [
    ( "frontend.fuzz",
      List.map QCheck_alcotest.to_alcotest
        [ prop_lexer_total; prop_parser_total; prop_frontend_total; prop_raw_bytes;
          prop_accepted_programs_execute ] );
    ( "frontend.roundtrip",
      [
        tc "projects re-parse" test_pretty_idempotent_on_projects;
        tc "round trip preserves behaviour" test_pretty_roundtrip_preserves_behaviour;
      ] );
  ]
