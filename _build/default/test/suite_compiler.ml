(* Tests for the compiler + VM pipeline.

   The central correctness property of the whole reproduction is tested
   here: all ten implementation profiles agree on well-defined programs
   (legal compilers), and disagree on the paper's canonical unstable-code
   examples (UB exploitation). *)

open Cdcompiler

let compile_run ?(input = "") ?(fuel = 200_000) profile src =
  match Minic.frontend_of_source src with
  | Error msg -> Alcotest.failf "front end: %s" msg
  | Ok tp ->
    let u = Pipeline.compile profile tp in
    Cdvm.Exec.run ~config:{ Cdvm.Exec.default_config with input; fuel } u

let outputs_all ?(input = "") ?(profiles = Profiles.all) src =
  List.map
    (fun p ->
      let r = compile_run ~input p src in
      (p.Policy.pname, r.Cdvm.Exec.stdout, r.Cdvm.Exec.status))
    profiles

let check_all_agree ?(input = "") name src =
  match outputs_all ~input src with
  | [] -> Alcotest.fail "no profiles"
  | (_, out0, st0) :: rest ->
    List.iter
      (fun (pname, out, st) ->
        Alcotest.(check string) (Printf.sprintf "%s: %s stdout" name pname) out0 out;
        Alcotest.(check bool)
          (Printf.sprintf "%s: %s status" name pname)
          true
          (Cdvm.Trap.equal_status st0 st))
      rest

let check_some_diverge ?(input = "") name src =
  let results = outputs_all ~input src in
  let distinct =
    List.sort_uniq compare (List.map (fun (_, out, st) -> (out, st)) results)
  in
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected divergence across implementations" name)
    true
    (List.length distinct > 1)

let gccx_O0 = Profiles.gccx "O0"
let clangx_O2 = Profiles.clangx "O2"

(* --- agreement on well-defined programs --- *)

let test_hello () =
  check_all_agree "hello" "int main() { print(\"hello world\\n\"); return 0; }"

let test_arith_agree () =
  check_all_agree "arith"
    "int main() {\n\
     \  int a = 17; int b = -5; long c = 1000000L;\n\
     \  print(\"%d %d %d %d %d\\n\", a + b, a * b, a / b, a % b, a << 2);\n\
     \  print(\"%ld %ld\\n\", c * c, c - 1L);\n\
     \  print(\"%d %d %d\\n\", a < b, a == 17, b != 0);\n\
     \  return 0;\n\
     }"

let test_control_flow_agree () =
  check_all_agree "control flow"
    "int main() {\n\
     \  int sum = 0;\n\
     \  for (int i = 0; i < 10; i++) { if (i % 2 == 0) sum += i; }\n\
     \  int j = 0;\n\
     \  while (1) { j++; if (j > 5) break; }\n\
     \  print(\"%d %d\\n\", sum, j);\n\
     \  return 0;\n\
     }"

let test_functions_agree () =
  check_all_agree "functions"
    "int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }\n\
     int twice(int x) { return 2 * x; }\n\
     int main() { print(\"%d %d\\n\", fib(12), twice(21)); return 0; }"

let test_arrays_agree () =
  check_all_agree "arrays"
    "int tab[5] = {10, 20, 30, 40, 50};\n\
     int main() {\n\
     \  int local[4];\n\
     \  for (int i = 0; i < 4; i++) local[i] = tab[i] + 1;\n\
     \  int *p = local;\n\
     \  print(\"%d %d %d\\n\", local[0], p[3], tab[4]);\n\
     \  return 0;\n\
     }"

let test_pointers_agree () =
  check_all_agree "pointers"
    "int g = 5;\n\
     void bump(int *p, int by) { *p = *p + by; }\n\
     int main() {\n\
     \  int x = 1;\n\
     \  bump(&x, 10);\n\
     \  bump(&g, 2);\n\
     \  int a[3];\n\
     \  a[0] = 7; a[1] = 8; a[2] = 9;\n\
     \  int *q = a + 1;\n\
     \  print(\"%d %d %d %d\\n\", x, g, *q, q - a);\n\
     \  return 0;\n\
     }"

let test_heap_agree () =
  check_all_agree "heap"
    "int main() {\n\
     \  int *p = malloc(8);\n\
     \  for (int i = 0; i < 8; i++) p[i] = i * i;\n\
     \  int s = 0;\n\
     \  for (int i = 0; i < 8; i++) s += p[i];\n\
     \  free(p);\n\
     \  int *q = malloc(4);\n\
     \  q[0] = 1; q[3] = 4;\n\
     \  print(\"%d %d %d\\n\", s, q[0], q[3]);\n\
     \  free(q);\n\
     \  return 0;\n\
     }"

let test_strings_agree () =
  check_all_agree "strings"
    "int main() {\n\
     \  print(\"%s has %d chars\\n\", \"MiniC\", strlen(\"MiniC\"));\n\
     \  return 0;\n\
     }"

let test_input_agree () =
  check_all_agree ~input:"AB" "input"
    "int main() {\n\
     \  int a = getchar(); int b = getchar(); int c = getchar();\n\
     \  print(\"%d %d %d %d\\n\", a, b, c, input_len());\n\
     \  return 0;\n\
     }"

let test_statics_agree () =
  check_all_agree "statics"
    "int counter() { static int n = 100; n++; return n; }\n\
     int main() { counter(); counter(); print(\"%d\\n\", counter()); return 0; }"

let test_longs_agree () =
  check_all_agree "longs"
    "int main() {\n\
     \  long big = 4000000000L;\n\
     \  long sq = big * 2L;\n\
     \  print(\"%ld %ld\\n\", sq, big / 7L);\n\
     \  return 0;\n\
     }"

let test_doubles_agree () =
  (* keep to operations the fp passes leave alone at every level *)
  check_all_agree "doubles"
    "int main() {\n\
     \  double x = 1.5; double y = 2.25;\n\
     \  print(\"%f %f %f\\n\", x + y, x * y, sqrt(4.0));\n\
     \  return 0;\n\
     }"

let test_exit_code_agree () =
  let results = outputs_all "int main() { return 42; }" in
  List.iter
    (fun (pname, _, st) ->
      Alcotest.(check bool) (pname ^ " exit 42") true (st = Cdvm.Trap.Exit 42))
    results

let test_ternary_logic_agree () =
  check_all_agree "ternary and logic"
    "int check(int v) { return v > 10 ? 100 : -100; }\n\
     int main() {\n\
     \  int a = 5;\n\
     \  int r = (a > 0 && a < 10) || a == 42;\n\
     \  print(\"%d %d %d\\n\", r, check(11), check(9));\n\
     \  return 0;\n\
     }"

(* --- canonical unstable-code divergences --- *)

(* Listing 1: the overflow guard `offset + len < offset` is folded away by
   optimizing implementations but honoured (wrapping) by -O0. *)
let listing1_src =
  "int dump_data(int offset, int len) {\n\
   \  int size = 100;\n\
   \  if (offset + len > size) { return -1; }\n\
   \  if (offset + len < offset) { return -1; }\n\
   \  print(\"dumping %d bytes at %d\\n\", len, offset);\n\
   \  return 0;\n\
   }\n\
   int main() {\n\
   \  int r = dump_data(2147483547, 101);\n\
   \  print(\"r=%d\\n\", r);\n\
   \  return 0;\n\
   }"

let test_listing1_diverges () =
  let r0 = compile_run gccx_O0 listing1_src in
  let r2 = compile_run clangx_O2 listing1_src in
  Alcotest.(check bool) "O0 vs O2 outputs differ" true
    (r0.Cdvm.Exec.stdout <> r2.Cdvm.Exec.stdout);
  (* the unoptimized build honours the wrapped comparison and refuses *)
  Alcotest.(check string) "O0 refuses" "r=-1\n" r0.Cdvm.Exec.stdout

let test_listing1_good_variant_agrees () =
  (* without overflow, all implementations agree *)
  check_all_agree "listing1 in-range"
    "int dump_data(int offset, int len) {\n\
     \  int size = 100;\n\
     \  if (offset + len > size) { return -1; }\n\
     \  if (offset + len < offset) { return -1; }\n\
     \  print(\"dumping %d bytes at %d\\n\", len, offset);\n\
     \  return 0;\n\
     }\n\
     int main() { print(\"r=%d\\n\", dump_data(10, 20)); return 0; }"

(* Listing 3 (Tcpdump): two calls with conflicting side effects as print
   arguments, sharing a static buffer that %s reads at print time; gccx
   evaluates right-to-left, clangx left-to-right. *)
let evalorder_src =
  "int *linkaddr_string(int v) {\n\
   \  static int buffer[8];\n\
   \  buffer[0] = 48 + v;\n\
   \  buffer[1] = 0;\n\
   \  return buffer;\n\
   }\n\
   int main() {\n\
   \  print(\"who-is %s tell %s\\n\", linkaddr_string(1), linkaddr_string(2));\n\
   \  return 0;\n\
   }"

let test_evalorder_diverges () =
  let rg = compile_run gccx_O0 evalorder_src in
  let rc = compile_run (Profiles.clangx "O0") evalorder_src in
  Alcotest.(check bool) "gccx vs clangx differ" true
    (rg.Cdvm.Exec.stdout <> rc.Cdvm.Exec.stdout)

(* Uninitialized local used on an input-dependent path (Listing 4). *)
let uninit_src =
  "int main() {\n\
   \  int l;\n\
   \  int c = getchar();\n\
   \  if (c > 64) { l = c; }\n\
   \  print(\"%d\\n\", l);\n\
   \  return 0;\n\
   }"

let test_uninit_diverges () =
  (* empty input: l stays uninitialized *)
  check_some_diverge ~input:"" "uninit" uninit_src

let test_uninit_good_agrees () =
  (* 'A' > 64 initializes l on every implementation *)
  check_all_agree ~input:"A" "uninit-initialized" uninit_src

(* Invalid pointer comparison (Listing 2): two distinct objects. *)
let ptrcmp_src =
  "int a[4];\n\
   int b[4];\n\
   int main() {\n\
   \  if (a < b) { print(\"a first\\n\"); } else { print(\"b first\\n\"); }\n\
   \  return 0;\n\
   }"

let test_ptrcmp_diverges () = check_some_diverge "ptrcmp" ptrcmp_src

(* Dead division by zero: removed at -O2, traps at -O0. *)
let deaddiv_src =
  "int main() {\n\
   \  int z = 0;\n\
   \  int dead = 100 / z;\n\
   \  print(\"alive\\n\");\n\
   \  return 0;\n\
   }"

let test_dead_div_diverges () =
  let r0 = compile_run gccx_O0 deaddiv_src in
  let r2 = compile_run clangx_O2 deaddiv_src in
  Alcotest.(check bool) "O0 traps" true
    (r0.Cdvm.Exec.status = Cdvm.Trap.Trap Cdvm.Trap.Div_by_zero);
  Alcotest.(check bool) "O2 survives" true (r2.Cdvm.Exec.status = Cdvm.Trap.Exit 0);
  Alcotest.(check string) "O2 prints" "alive\n" r2.Cdvm.Exec.stdout

(* Used division by zero traps everywhere. *)
let test_live_div_traps_everywhere () =
  let src =
    "int main() { int z = 0; int d = 7 / z; print(\"%d\\n\", d); return 0; }"
  in
  List.iter
    (fun p ->
      let r = compile_run p src in
      Alcotest.(check bool)
        (p.Policy.pname ^ " traps")
        true
        (r.Cdvm.Exec.status = Cdvm.Trap.Trap Cdvm.Trap.Div_by_zero))
    Profiles.all

(* __LINE__ interpretation differs across families on multi-line
   statements. *)
let line_src =
  "int main() {\n\
   \  print(\"%d\\n\",\n\
   \    __LINE__);\n\
   \  return 0;\n\
   }"

let test_line_diverges () =
  let rg = compile_run gccx_O0 line_src in
  let rc = compile_run (Profiles.clangx "O0") line_src in
  Alcotest.(check bool) "LINE differs" true (rg.Cdvm.Exec.stdout <> rc.Cdvm.Exec.stdout)

let test_line_same_line_agrees () =
  check_all_agree "single-line __LINE__"
    "int main() { print(\"%d\\n\", __LINE__); return 0; }"

(* promote_mul: clangx-O1 widens the multiplication, others wrap in 32. *)
let widen_src =
  (* operands must be runtime values or the front ends of every profile
     would fold the product *)
  "int main() {\n\
   \  int c = getchar();\n\
   \  int a = c * 1000;\n\
   \  long x = a * a;\n\
   \  print(\"%ld\\n\", x);\n\
   \  return 0;\n\
   }"

let test_promote_mul_diverges () =
  (* input 'd' = 100 -> a = 100000, a*a overflows 32 bits *)
  let rg = compile_run ~input:"d" gccx_O0 widen_src in
  let rc = compile_run ~input:"d" (Profiles.clangx "O1") widen_src in
  Alcotest.(check bool) "wide mul differs" true
    (rg.Cdvm.Exec.stdout <> rc.Cdvm.Exec.stdout);
  Alcotest.(check string) "clangx-O1 computes wide" "10000000000\n" rc.Cdvm.Exec.stdout

let test_promote_mul_defined_agrees () =
  check_all_agree "small mul into long"
    "int main() { int a = 11; int b = 13; long x = a * b; print(\"%ld\\n\", x); return 0; }"

(* null-check removal after a dereference *)
let nullfold_src =
  "int read_field(int *p) {\n\
   \  int v = *p;\n\
   \  if (p == (int *) 0) { return -1; }\n\
   \  return v;\n\
   }\n\
   int main() {\n\
   \  int x = 9;\n\
   \  print(\"%d\\n\", read_field(&x));\n\
   \  return 0;\n\
   }"

let test_nullfold_agrees_when_nonnull () =
  check_all_agree "null check with valid pointer" nullfold_src

(* traps: hang, stack overflow, null deref consistent across impls *)
let test_hang () =
  let r = compile_run ~fuel:5_000 gccx_O0 "int main() { while (1) { } return 0; }" in
  Alcotest.(check bool) "hang" true (r.Cdvm.Exec.status = Cdvm.Trap.Hang)

let test_stack_overflow () =
  let r =
    compile_run gccx_O0
      "int rec(int n) { int pad[10]; pad[0] = n; return rec(n + 1) + pad[0]; }\n\
       int main() { return rec(0); }"
  in
  Alcotest.(check bool) "stack overflow" true
    (r.Cdvm.Exec.status = Cdvm.Trap.Trap Cdvm.Trap.Stack_overflow)

let test_null_deref_all () =
  (* every implementation crashes, but clangx at -O1+ folds the provably
     null dereference into a ud2-style abort while the others hit the
     natural segv -- itself an observable divergence (the 476 mechanism) *)
  let src = "int main() { int *p = (int *) 0; return *p; }" in
  List.iter
    (fun p ->
      let r = compile_run p src in
      let expected =
        if p.Policy.flags.Policy.null_deref_trap then
          Cdvm.Trap.Trap Cdvm.Trap.Abort_called
        else Cdvm.Trap.Trap Cdvm.Trap.Null_deref
      in
      Alcotest.(check bool)
        (p.Policy.pname ^ " null deref crash kind")
        true
        (r.Cdvm.Exec.status = expected))
    Profiles.all

(* far out-of-bounds write: segfault on every implementation *)
let test_wild_write_traps () =
  let src = "int g; int main() { int *p = &g; p[100000] = 1; return 0; }" in
  List.iter
    (fun prof ->
      let r = compile_run prof src in
      match r.Cdvm.Exec.status with
      | Cdvm.Trap.Trap (Cdvm.Trap.Segfault _) -> ()
      | s ->
        Alcotest.failf "%s: expected segfault, got %s" prof.Policy.pname
          (Cdvm.Trap.status_to_string s))
    Profiles.all

(* neighbouring-object OOB: silent corruption whose victim depends on the
   layout -> divergence *)
let oob_neighbor_src =
  "int main() {\n\
   \  int a[4];\n\
   \  int b[4];\n\
   \  a[0] = 1; a[1] = 1; a[2] = 1; a[3] = 1;\n\
   \  b[0] = 2; b[1] = 2; b[2] = 2; b[3] = 2;\n\
   \  int i = getchar() - 48;\n\
   \  a[i] = 99;\n\
   \  print(\"%d %d %d %d %d %d %d %d\\n\", a[0], a[1], a[2], a[3], b[0], b[1], b[2], b[3]);\n\
   \  return 0;\n\
   }"

let test_oob_neighbor_diverges () =
  (* i = 5: one cell past a[4] with gap/order differences between layouts *)
  check_some_diverge ~input:"5" "stack OOB" oob_neighbor_src

let test_oob_inbounds_agrees () = check_all_agree ~input:"2" "in-bounds" oob_neighbor_src

(* use-after-free: allocator reuse differs across implementations *)
let uaf_src =
  "int main() {\n\
   \  int *p = malloc(4);\n\
   \  p[0] = 1111;\n\
   \  free(p);\n\
   \  int *q = malloc(4);\n\
   \  q[0] = 2222;\n\
   \  print(\"%d\\n\", p[0]);\n\
   \  free(q);\n\
   \  return 0;\n\
   }"

let test_uaf_diverges () = check_some_diverge "use after free" uaf_src

(* pow vs exp2 rewriting at clangx -O3 *)
let pow_src =
  (* x1e12 magnifies the last-bit difference into the %f decimals *)
  "int main() {\n\
   \  double x = 0.731;\n\
   \  print(\"%f\\n\", pow(2.0, x) * 1000000000000.0);\n\
   \  return 0;\n\
   }"

let test_pow_rewrite_diverges () =
  let rg = compile_run gccx_O0 pow_src in
  let rc = compile_run (Profiles.clangx "O3") pow_src in
  Alcotest.(check bool) "pow vs exp2" true (rg.Cdvm.Exec.stdout <> rc.Cdvm.Exec.stdout)

(* --- IR-level pass unit tests --- *)

let compile_get profile src fname =
  match Minic.frontend_of_source src with
  | Error msg -> Alcotest.failf "front end: %s" msg
  | Ok tp ->
    let u = Pipeline.compile profile tp in
    (match Ir.func u fname with
    | Some f -> f
    | None -> Alcotest.failf "no function %s" fname)

let count_instrs pred (f : Ir.ifunc) =
  Array.fold_left (fun acc i -> if pred i then acc + 1 else acc) 0 f.Ir.code

let test_constfold_folds () =
  let f = compile_get clangx_O2 "int main() { return 2 + 3 * 4; }" "main" in
  let has_mul =
    count_instrs (function Ir.Ibin (Ir.Bmul, _, _, _, _, _) -> true | _ -> false) f
  in
  Alcotest.(check int) "mul folded away" 0 has_mul

let test_dce_removes_dead () =
  let f =
    compile_get clangx_O2
      "int main() { int dead = 5 * 391; int live = 2; return live; }" "main"
  in
  Alcotest.(check bool) "small body" true (Array.length f.Ir.code <= 4)

let test_O0_does_not_optimize () =
  let f = compile_get gccx_O0 "int main() { return 2 + 3 * 4; }" "main" in
  let muls =
    count_instrs (function Ir.Ibin (Ir.Bmul, _, _, _, _, _) -> true | _ -> false) f
  in
  Alcotest.(check int) "mul kept at O0" 1 muls

let test_inline_at_O2 () =
  let src = "int sq(int x) { return x * x; }\nint main() { return sq(5); }" in
  let f2 = compile_get clangx_O2 src "main" in
  let f0 = compile_get gccx_O0 src "main" in
  let calls f =
    count_instrs (function Ir.Icall _ -> true | _ -> false) f
  in
  Alcotest.(check int) "call inlined at O2" 0 (calls f2);
  Alcotest.(check int) "call kept at O0" 1 (calls f0)

let test_strength_reduction () =
  let f =
    compile_get (Profiles.gccx "O1") "int main() { int x = getchar(); return x * 8; }"
      "main"
  in
  let shifts =
    count_instrs (function Ir.Ibin (Ir.Bshl, _, _, _, _, _) -> true | _ -> false) f
  in
  Alcotest.(check bool) "mul by 8 became shift" true (shifts >= 1)

let test_ubfold_removes_guard () =
  let src =
    "int main() {\n\
     \  int x = getchar();\n\
     \  if (x + 100 < x) { print(\"overflow\\n\"); return 1; }\n\
     \  return 0;\n\
     }"
  in
  let f = compile_get clangx_O2 src "main" in
  let prints = count_instrs (function Ir.Iprint _ -> true | _ -> false) f in
  Alcotest.(check int) "guarded print removed" 0 prints

(* property: random well-defined arithmetic agrees across all profiles *)
let gen_expr_src =
  let open QCheck.Gen in
  let rec go depth =
    if depth = 0 then
      oneof
        [ map string_of_int (int_range 1 50); return "a"; return "b" ]
    else
      frequency
        [
          (2, map string_of_int (int_range 1 50));
          (1, return "a");
          (1, return "b");
          ( 4,
            map3
              (fun op l r -> Printf.sprintf "(%s %s %s)" l op r)
              (oneofl [ "+"; "-"; "*"; "&"; "|"; "^" ])
              (go (depth - 1)) (go (depth - 1)) );
        ]
  in
  go 3

let prop_welldefined_agree =
  QCheck.Test.make ~name:"profiles agree on defined arithmetic" ~count:60
    (QCheck.make gen_expr_src) (fun expr ->
      (* a,b in [0,9]: small operands cannot overflow within depth-3 *)
      let src =
        Printf.sprintf
          "int main() { int a = getchar() %% 10; int b = 7; print(\"%%d\\n\", %s); return 0; }"
          expr
      in
      match outputs_all ~input:"5" src with
      | [] -> false
      | (_, out0, st0) :: rest ->
        List.for_all
          (fun (_, out, st) -> out = out0 && Cdvm.Trap.equal_status st st0)
          rest)

let tc name f = Alcotest.test_case name `Quick f

let suites =
  [
    ( "compiler.agreement",
      [
        tc "hello" test_hello;
        tc "arith" test_arith_agree;
        tc "control flow" test_control_flow_agree;
        tc "functions" test_functions_agree;
        tc "arrays" test_arrays_agree;
        tc "pointers" test_pointers_agree;
        tc "heap" test_heap_agree;
        tc "strings" test_strings_agree;
        tc "input" test_input_agree;
        tc "statics" test_statics_agree;
        tc "longs" test_longs_agree;
        tc "doubles" test_doubles_agree;
        tc "exit codes" test_exit_code_agree;
        tc "ternary/logic" test_ternary_logic_agree;
        tc "listing1 good" test_listing1_good_variant_agrees;
        tc "uninit good" test_uninit_good_agrees;
        tc "mul good" test_promote_mul_defined_agrees;
        tc "nullfold good" test_nullfold_agrees_when_nonnull;
        tc "line good" test_line_same_line_agrees;
        tc "oob good" test_oob_inbounds_agrees;
      ]
      @ [ QCheck_alcotest.to_alcotest prop_welldefined_agree ] );
    ( "compiler.divergence",
      [
        tc "listing1 overflow guard" test_listing1_diverges;
        tc "eval order" test_evalorder_diverges;
        tc "uninit local" test_uninit_diverges;
        tc "pointer comparison" test_ptrcmp_diverges;
        tc "dead division" test_dead_div_diverges;
        tc "__LINE__" test_line_diverges;
        tc "promote mul" test_promote_mul_diverges;
        tc "stack OOB" test_oob_neighbor_diverges;
        tc "use after free" test_uaf_diverges;
        tc "pow/exp2" test_pow_rewrite_diverges;
      ] );
    ( "compiler.traps",
      [
        tc "live div traps" test_live_div_traps_everywhere;
        tc "hang" test_hang;
        tc "stack overflow" test_stack_overflow;
        tc "null deref" test_null_deref_all;
        tc "wild write" test_wild_write_traps;
      ] );
    ( "compiler.passes",
      [
        tc "constfold" test_constfold_folds;
        tc "dce" test_dce_removes_dead;
        tc "O0 no-opt" test_O0_does_not_optimize;
        tc "inline" test_inline_at_O2;
        tc "strength" test_strength_reduction;
        tc "ubfold" test_ubfold_removes_guard;
      ] );
  ]
