test/suite_frontend_fuzz.ml: Alcotest Cdcompiler Cdvm List Minic Option Printf Projects QCheck QCheck_alcotest String
