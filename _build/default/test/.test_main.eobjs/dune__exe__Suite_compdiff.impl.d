test/suite_compdiff.ml: Alcotest Array Cdcompiler Cdvm Compdiff List Localize Minic Normalize Oracle String Subset Triage
