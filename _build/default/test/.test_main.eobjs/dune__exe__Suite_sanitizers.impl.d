test/suite_sanitizers.ml: Alcotest Minic San Sanitizers
