test/suite_vm.ml: Alcotest Array Bytes Cdcompiler Cdvm Coverage Exec Hashtbl Ir List Mem Minic Option Pipeline Policy Printf Profiles Trap Value
