test/suite_compiler.ml: Alcotest Array Cdcompiler Cdvm Ir List Minic Pipeline Policy Printf Profiles QCheck QCheck_alcotest
