test/suite_minic.ml: Alcotest Ast Builder Lexer List Minic Parser Pretty Printf QCheck QCheck_alcotest String Tast Test Typecheck
