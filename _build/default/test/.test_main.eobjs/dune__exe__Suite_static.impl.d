test/suite_static.ml: Alcotest Finding List Minic Static_tools Staticcheck
