test/suite_util.ml: Alcotest Array Bytes Cdutil Gen Int64 List Murmur3 Printf QCheck QCheck_alcotest Rng Stats String Tablefmt Test
