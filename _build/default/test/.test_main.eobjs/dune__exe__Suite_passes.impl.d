test/suite_passes.ml: Alcotest Array Cdcompiler Cdvm Compdiff Ir Minic Opt_constfold Opt_copyprop Opt_cse Opt_dce Opt_peephole Opt_ubfold Option Pipeline Printf Profiles QCheck QCheck_alcotest String
