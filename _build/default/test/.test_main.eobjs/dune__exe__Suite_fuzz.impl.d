test/suite_fuzz.ml: Alcotest Cdcompiler Cdutil Compdiff Fuzz List Minic Sanitizers String
