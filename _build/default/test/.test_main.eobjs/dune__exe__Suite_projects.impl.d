test/suite_projects.ml: Alcotest Cdcompiler Compdiff List Option Printexc Printf Projects Sanitizers
