test/suite_juliet.ml: Alcotest Array Cdcompiler Compdiff Juliet Lazy List Minic Printexc Printf Sanitizers
