(* Tests for the synthetic real-world targets: Table 4/5 invariants, bug
   triggers, triage, and the campaign machinery. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_registry_shape () =
  check_int "23 targets" 23 (List.length Projects.Registry.all);
  check_int "78 seeded bugs" 78 Projects.Registry.total_bugs

let test_outcome_totals () =
  (* Table 5 bottom line: 65 confirmed, 52 fixed of the 78 *)
  let bugs = List.map snd Projects.Registry.all_bugs in
  check_int "confirmed" 65
    (List.length (List.filter (fun (b : Projects.Project.seeded_bug) -> b.Projects.Project.confirmed) bugs));
  check_int "fixed" 52
    (List.length (List.filter (fun (b : Projects.Project.seeded_bug) -> b.Projects.Project.fixed) bugs));
  check_bool "fixed implies confirmed" true
    (List.for_all
       (fun (b : Projects.Project.seeded_bug) ->
         (not b.Projects.Project.fixed) || b.Projects.Project.confirmed)
       bugs)

let test_category_totals () =
  let count cat =
    List.length
      (List.filter
         (fun (_, (b : Projects.Project.seeded_bug)) -> b.Projects.Project.category = cat)
         Projects.Registry.all_bugs)
  in
  check_int "EvalOrder" 2 (count Projects.Project.EvalOrder);
  check_int "UninitMem" 27 (count Projects.Project.UninitMem);
  check_int "IntError" 8 (count Projects.Project.IntError);
  check_int "MemError" 13 (count Projects.Project.MemError);
  check_int "PointerCmp" 1 (count Projects.Project.PointerCmp);
  check_int "LINE" 6 (count Projects.Project.Line);
  check_int "Misc" 21 (count Projects.Project.Misc)

let test_all_projects_compile () =
  List.iter
    (fun (p : Projects.Project.t) ->
      let tp =
        try Projects.Project.frontend p
        with e ->
          Alcotest.failf "%s rejected by the front end: %s" p.Projects.Project.pname
            (Printexc.to_string e)
      in
      List.iter
        (fun prof -> ignore (Cdcompiler.Pipeline.compile prof tp))
        (Projects.Project.profiles_for p))
    Projects.Registry.all

(* every witness input must actually produce a divergence on its project *)
let test_witnesses_trigger () =
  List.iter
    (fun (p : Projects.Project.t) ->
      let tp = Projects.Project.frontend p in
      let oracle =
        Compdiff.Oracle.create
          ~profiles:(Projects.Project.profiles_for p)
          ~normalize:p.Projects.Project.normalize ~fuel:60_000 tp
      in
      List.iter
        (fun (b : Projects.Project.seeded_bug) ->
          check_bool
            (Printf.sprintf "%s witness triggers a divergence" b.Projects.Project.bug_id)
            true
            (Compdiff.Oracle.is_divergence
               (Compdiff.Oracle.check oracle ~input:b.Projects.Project.witness));
          check_bool
            (Printf.sprintf "%s witness satisfies its own trigger" b.Projects.Project.bug_id)
            true
            (b.Projects.Project.trigger b.Projects.Project.witness))
        p.Projects.Project.bugs)
    Projects.Registry.all

(* benign seeds must not diverge: the triage baseline is clean *)
let test_benign_seeds_clean () =
  List.iter
    (fun pname ->
      let p = Option.get (Projects.Registry.by_name pname) in
      let tp = Projects.Project.frontend p in
      let oracle =
        Compdiff.Oracle.create
          ~profiles:(Projects.Project.profiles_for p)
          ~normalize:p.Projects.Project.normalize ~fuel:60_000 tp
      in
      List.iter
        (fun input ->
          (* a seed that happens to satisfy a bug trigger is allowed to
             diverge; everything else must agree *)
          let triggers_something =
            List.exists
              (fun (b : Projects.Project.seeded_bug) -> b.Projects.Project.trigger input)
              p.Projects.Project.bugs
          in
          if not triggers_something then
            check_bool
              (Printf.sprintf "%s seed %S stable" pname input)
              false
              (Compdiff.Oracle.is_divergence (Compdiff.Oracle.check oracle ~input)))
        p.Projects.Project.seeds)
    [ "tcpdump"; "readelf"; "brotli"; "jq"; "libxml2" ]

let test_campaign_finds_and_triages () =
  let p = Option.get (Projects.Registry.by_name "exiv2") in
  let r = Projects.Campaign.run_project ~max_execs:2_500 p in
  check_bool "finds most seeded bugs" true
    (List.length r.Projects.Campaign.found >= 2);
  check_int "no unattributed divergences" 0 r.Projects.Campaign.unattributed

let test_mujs_needs_buggy_compiler () =
  let p = Option.get (Projects.Registry.by_name "MuJS") in
  check_bool "extended set" true p.Projects.Project.needs_buggy_compiler;
  let tp = Projects.Project.frontend p in
  (* without the buggy build there is nothing to diverge *)
  let plain = Compdiff.Oracle.create ~fuel:60_000 tp in
  let extended =
    Compdiff.Oracle.create
      ~profiles:Cdcompiler.Profiles.extended_with_buggy ~fuel:60_000 tp
  in
  let witness = (List.hd p.Projects.Project.bugs).Projects.Project.witness in
  check_bool "ten correct compilers agree" false
    (Compdiff.Oracle.is_divergence (Compdiff.Oracle.check plain ~input:witness));
  check_bool "the miscompiling build diverges" true
    (Compdiff.Oracle.is_divergence (Compdiff.Oracle.check extended ~input:witness))

let test_sanitizer_visibility_matches () =
  (* spot-check Table 6 expectations: the declared sanitizer really covers
     the bug, and EvalOrder/PointerCmp/LINE bugs have no sanitizer *)
  let spot = [ "tcpdump"; "readelf"; "libtiff"; "openssl" ] in
  List.iter
    (fun pname ->
      let p = Option.get (Projects.Registry.by_name pname) in
      let tp = Projects.Project.frontend p in
      List.iter
        (fun (b : Projects.Project.seeded_bug) ->
          match b.Projects.Project.sanitizer_visible with
          | Some kind ->
            check_bool
              (Printf.sprintf "%s covered by %s" b.Projects.Project.bug_id
                 (Sanitizers.San.name kind))
              true
              (Sanitizers.San.detects ~fuel:60_000 kind tp
                 ~inputs:[ b.Projects.Project.witness ])
          | None -> ())
        p.Projects.Project.bugs)
    spot

let test_wireshark_normalization () =
  let p = Option.get (Projects.Registry.by_name "wireshark") in
  let tp = Projects.Project.frontend p in
  let raw = Compdiff.Oracle.create ~fuel:60_000 tp in
  let filtered =
    Compdiff.Oracle.create ~normalize:p.Projects.Project.normalize ~fuel:60_000 tp
  in
  (* a benign input: the only difference is the banner timestamp *)
  check_bool "raw output diverges on the banner" true
    (Compdiff.Oracle.is_divergence (Compdiff.Oracle.check raw ~input:"TAB0"));
  check_bool "normalized output is stable" false
    (Compdiff.Oracle.is_divergence (Compdiff.Oracle.check filtered ~input:"TAB0"))

let test_loc_counts () =
  List.iter
    (fun (p : Projects.Project.t) ->
      check_bool
        (p.Projects.Project.pname ^ " has a non-trivial program")
        true
        (Projects.Project.loc p > 40))
    Projects.Registry.all

let tc name f = Alcotest.test_case name `Quick f
let tc_slow name f = Alcotest.test_case name `Slow f

let suites =
  [
    ( "projects.registry",
      [
        tc "shape" test_registry_shape;
        tc "outcome totals" test_outcome_totals;
        tc "category totals" test_category_totals;
        tc "LoC" test_loc_counts;
      ] );
    ( "projects.behaviour",
      [
        tc "all compile" test_all_projects_compile;
        tc_slow "witnesses trigger" test_witnesses_trigger;
        tc "benign seeds clean" test_benign_seeds_clean;
        tc "MuJS compiler bug" test_mujs_needs_buggy_compiler;
        tc "wireshark normalization" test_wireshark_normalization;
        tc "sanitizer visibility" test_sanitizer_visibility_matches;
      ] );
    ( "projects.campaign",
      [ tc_slow "find and triage" test_campaign_finds_and_triages ] );
  ]
