// Signed overflow and a zero divisor: both intervals are fully known to
// the dataflow analysis, so UnstableCheck reports both sites as errors.
//
//   compdiff static examples/unstable_arith.c   (exits 1)

int test_case(void) {
  int x = getchar();
  print("scaled: %d\n", x * 100000000);
  int d = 0;
  print("ratio: %d\n", 10 / d);
  return 0;
}

int main(void) {
  test_case();
  return 0;
}
