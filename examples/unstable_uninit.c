// Listing-4 shape (exiv2): a scalar read before any store. The junk
// value is implementation-dependent, so implementations diverge and
// UnstableCheck reports a detection-grade uninitialized-use.
//
//   compdiff static examples/unstable_uninit.c   (exits 1)

int test_case(void) {
  int count;
  if (getchar() == 65) {
    count = 1;
  }
  print("count: %d\n", count);
  return 0;
}

int main(void) {
  test_case();
  return 0;
}
