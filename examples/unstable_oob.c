// Out-of-bounds address math: the index interval [0,255] escapes the
// 8-cell buffer, and no guard constrains it before the store.
//
//   compdiff static examples/unstable_oob.c   (exits 1)

int test_case(void) {
  int buf[8];
  int i = getchar();
  buf[i] = 7;
  print("wrote %d\n", buf[0]);
  return 0;
}

int main(void) {
  test_case();
  return 0;
}
