(* CompDiff-AFL++ on a realistic target.

     dune exec examples/fuzz_campaign.exe

   Fuzzes the synthetic "tcpdump" (a tag-dispatched packet printer with
   the paper's seeded bugs) and shows the full workflow: coverage-guided
   exploration, the differential oracle on every generated input, triage
   of the divergences, and attribution to root causes. *)

let () =
  let p = Option.get (Projects.Registry.by_name "tcpdump") in
  Printf.printf "target: %s (%s, ~%d LoC of MiniC)\n" p.Projects.Project.pname
    p.Projects.Project.input_type (Projects.Project.loc p);
  Printf.printf "seeded ground-truth bugs: %d\n\n"
    (List.length p.Projects.Project.bugs);

  let r = Projects.Campaign.run_project ~max_execs:3_000 p in
  let fuzz = r.Projects.Campaign.campaign.Fuzz.Compdiff_afl.fuzz in
  Printf.printf "campaign: %d execs, %d seeds in queue, %d edges covered\n"
    fuzz.Fuzz.Fuzzer.execs
    (List.length fuzz.Fuzz.Fuzzer.queue)
    fuzz.Fuzz.Fuzzer.edges_covered;
  Printf.printf "divergent inputs saved to diffs/: %d (%d unique signatures)\n\n"
    (Compdiff.Triage.total_count r.Projects.Campaign.campaign.Fuzz.Compdiff_afl.diffs)
    (Compdiff.Triage.unique_count r.Projects.Campaign.campaign.Fuzz.Compdiff_afl.diffs);

  Printf.printf "triaged root causes (%d of %d seeded bugs found):\n"
    (List.length r.Projects.Campaign.found)
    (List.length p.Projects.Project.bugs);
  List.iter
    (fun (f : Projects.Campaign.found_bug) ->
      Printf.printf "  [%-9s] %-28s trigger input %S\n"
        (Projects.Project.category_to_string
           f.Projects.Campaign.bug.Projects.Project.category)
        f.Projects.Campaign.bug.Projects.Project.bug_id
        f.Projects.Campaign.found_input)
    r.Projects.Campaign.found;

  (* the complementarity story: which of these do sanitizers also see? *)
  print_newline ();
  let san_build = Sanitizers.San.build (Projects.Project.frontend p) in
  List.iter
    (fun (f : Projects.Campaign.found_bug) ->
      let covered =
        List.filter
          (fun k -> Projects.Campaign.sanitizer_covers san_build k f)
          Sanitizers.San.all
      in
      Printf.printf "  %-28s sanitizers: %s\n"
        f.Projects.Campaign.bug.Projects.Project.bug_id
        (match covered with
        | [] -> "none (CompDiff-unique)"
        | ks -> String.concat ", " (List.map Sanitizers.San.name ks)))
    r.Projects.Campaign.found
