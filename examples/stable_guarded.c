// The fixed variant of the out-of-bounds example: the short-circuit
// guard constrains the index, branch refinement transports the facts
// through the lowered 0/1 join, and UnstableCheck stays silent.
//
//   compdiff static examples/stable_guarded.c   (exits 0)

int test_case(void) {
  int buf[8];
  buf[0] = 0;
  buf[1] = 0;
  buf[2] = 0;
  buf[3] = 0;
  buf[4] = 0;
  buf[5] = 0;
  buf[6] = 0;
  buf[7] = 0;
  int i = getchar() - 48;
  if (i >= 0 && i < 8) {
    buf[i] = 7;
    print("wrote %d\n", buf[i]);
  }
  return 0;
}

int main(void) {
  test_case();
  return 0;
}
