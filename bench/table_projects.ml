(* Real-world-project sections: Table 4 (targets), Table 5 (bugs found by
   CompDiff-AFL++ by root cause), Table 6 (sanitizer overlap), Figure 2
   (subset study over the found bugs). *)

open Cdutil

let campaign_results =
  let cache = ref None in
  fun () ->
    match !cache with
    | Some r -> r
    | None ->
      let jobs = Pool.default_jobs () in
      Printf.printf "[projects] fuzzing %d targets (jobs=%d)...\n%!"
        (List.length Projects.Registry.all) jobs;
      let t0 = Unix.gettimeofday () in
      let r = Projects.Campaign.run_all ~max_execs:6_000 ~jobs () in
      Printf.printf "[projects] done in %.0fs\n%!" (Unix.gettimeofday () -. t0);
      cache := Some r;
      r

let table4 () =
  let rows =
    List.map
      (fun (p : Projects.Project.t) ->
        [
          p.Projects.Project.pname;
          p.Projects.Project.input_type;
          p.Projects.Project.version;
          p.Projects.Project.paper_kloc;
          string_of_int (Projects.Project.loc p);
          (if p.Projects.Project.nondeterministic then "yes" else "no");
        ])
      Projects.Registry.all
  in
  Tablefmt.print ~title:"Table 4: Details of selected target projects"
    ~header:
      [ "Target"; "Input type"; "Version"; "Size (paper)"; "LoC (here)"; "nondet." ]
    rows

let table5 () =
  let results = campaign_results () in
  let rows = Projects.Campaign.table5 results in
  let cat r = Projects.Project.category_to_string r.Projects.Campaign.category in
  let line f = List.map (fun r -> string_of_int (f r)) rows in
  let total f = List.fold_left (fun acc r -> acc + f r) 0 rows in
  let header = "" :: List.map cat rows @ [ "Total" ] in
  let body =
    [
      "Seeded"
      :: (line (fun r -> r.Projects.Campaign.seeded)
         @ [ string_of_int (total (fun r -> r.Projects.Campaign.seeded)) ]);
      "Reported (found)"
      :: (line (fun r -> r.Projects.Campaign.found)
         @ [ string_of_int (total (fun r -> r.Projects.Campaign.found)) ]);
      "Confirmed"
      :: (line (fun r -> r.Projects.Campaign.confirmed)
         @ [ string_of_int (total (fun r -> r.Projects.Campaign.confirmed)) ]);
      "Fixed"
      :: (line (fun r -> r.Projects.Campaign.fixed)
         @ [ string_of_int (total (fun r -> r.Projects.Campaign.fixed)) ]);
    ]
  in
  Tablefmt.print
    ~title:"Table 5: Bugs detected by CompDiff-AFL++ on the 23 targets" ~header body;
  let unattributed =
    List.fold_left
      (fun acc (r : Projects.Campaign.project_result) ->
        acc + r.Projects.Campaign.unattributed)
      0 results
  in
  Printf.printf "divergent inputs not matching any seeded bug: %d (expect 0)\n"
    unattributed;
  (* §5 reporting workload: one oracle-validated reduction per signature
     representative, summarized across all campaigns *)
  let s = Projects.Campaign.summarize_reductions results in
  if s.Projects.Campaign.rs_divergences > 0 then
    Printf.printf
      "reduced reproducers: %d divergences, %d -> %d bytes, median input \
       reduction %.0f%% (%d oracle checks)\n"
      s.Projects.Campaign.rs_divergences s.Projects.Campaign.rs_raw_bytes
      s.Projects.Campaign.rs_reduced_bytes
      (100. *. s.Projects.Campaign.rs_median_ratio)
      s.Projects.Campaign.rs_checks;
  print_newline ()

let table6 () =
  let results = campaign_results () in
  let rows, total_any = Projects.Campaign.table6 results in
  let body =
    List.map
      (fun (r : Projects.Campaign.t6_row) ->
        [
          Projects.Project.category_to_string r.Projects.Campaign.t6_category;
          string_of_int r.Projects.Campaign.t6_found;
          string_of_int r.Projects.Campaign.by_asan;
          string_of_int r.Projects.Campaign.by_ubsan;
          string_of_int r.Projects.Campaign.by_msan;
          string_of_int r.Projects.Campaign.by_any;
        ])
      rows
  in
  let found_total =
    List.fold_left (fun acc r -> acc + r.Projects.Campaign.t6_found) 0 rows
  in
  Tablefmt.print
    ~title:"Table 6: Of the bugs detected by CompDiff, those also covered by sanitizers"
    ~header:[ "Category"; "CompDiff"; "ASan"; "UBSan"; "MSan"; "Any sanitizer" ]
    (body
    @ [
        [
          "Total";
          string_of_int found_total;
          "";
          "";
          "";
          string_of_int total_any;
        ];
      ]);
  Printf.printf "CompDiff-unique bugs: %d of %d\n\n" (found_total - total_any)
    found_total

let figure2 () =
  let results = campaign_results () in
  let partitions = Projects.Campaign.partitions results in
  let n = List.length Cdcompiler.Profiles.all in
  let names = List.map (fun p -> p.Cdcompiler.Policy.pname) Cdcompiler.Profiles.all in
  Printf.printf
    "Figure 2: real-world bugs detected by every subset of the %d implementations\n"
    n;
  Printf.printf "(%d found bugs)\n\n" (List.length partitions);
  let rows = Compdiff.Subset.study ~n partitions in
  let render (r : Compdiff.Subset.study_row) =
    [
      string_of_int r.Compdiff.Subset.size;
      Printf.sprintf "%.0f" r.Compdiff.Subset.box.Stats.minimum;
      Printf.sprintf "%.1f" r.Compdiff.Subset.box.Stats.median;
      Printf.sprintf "%.0f" r.Compdiff.Subset.box.Stats.maximum;
      String.concat "+"
        (Compdiff.Subset.mask_to_names ~names (fst r.Compdiff.Subset.best));
      String.concat "+"
        (Compdiff.Subset.mask_to_names ~names (fst r.Compdiff.Subset.worst));
    ]
  in
  Tablefmt.print ~title:"Figure 2 data (box per subset size)"
    ~header:[ "size"; "min"; "med"; "max"; "best"; "worst" ]
    (List.map render rows)
