(* Benchmark harness entry point: regenerates every table and figure of
   the paper's evaluation section, plus the Section 5 overhead numbers,
   the parallel-oracle bench (BENCH_oracle.json) and the design-choice
   ablations from DESIGN.md.

   Usage:  dune exec bench/main.exe [--jobs N] [section...]
   Sections: table2 table3 figure1 table4 table5 table6 figure2 overhead
             oracle engine serve metacheck vm trace gen ablations
             (default: all). *)

let sections : (string * (unit -> unit)) list =
  [
    ("table2", Table_juliet.table2);
    ("table3", Table_juliet.table3);
    ("figure1", Table_juliet.figure1);
    ("table4", Table_projects.table4);
    ("table5", Table_projects.table5);
    ("table6", Table_projects.table6);
    ("figure2", Table_projects.figure2);
    ("overhead", Overhead.run);
    ("oracle", Overhead.oracle_bench);
    ("engine", Engine_bench.run);
    ("serve", Serve_bench.run);
    ("metacheck", Metacheck_bench.run);
    ("vm", Vm_bench.run);
    ("trace", Trace_bench.run);
    ("gen", Gen_bench.run);
    ("ablations", Ablations.run);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let rec parse acc = function
    | "--jobs" :: n :: rest -> (
        match int_of_string_opt n with
        | Some n when n >= 1 ->
          Cdutil.Pool.set_default_jobs n;
          parse acc rest
        | _ ->
          Printf.eprintf "--jobs expects a positive integer, got %s\n" n;
          exit 2)
    | s :: rest -> parse (s :: acc) rest
    | [] -> List.rev acc
  in
  let requested = parse [] args in
  let to_run =
    if requested = [] then sections
    else
      List.filter_map
        (fun name ->
          match List.assoc_opt name sections with
          | Some f -> Some (name, f)
          | None ->
            Printf.eprintf "unknown section %s (available: %s)\n" name
              (String.concat " " (List.map fst sections));
            None)
        requested
  in
  List.iter (fun (_, f) -> f ()) to_run
