(* Serve-daemon benchmark (emits BENCH_serve.json).

   Measures differential-check service throughput (requests/sec) through
   a real daemon — Unix-domain socket, framing, scheduler — under 1, 4
   and 8 concurrent clients, against the process-per-request baseline:
   every request pays a fresh engine session and a fresh oracle (exactly
   the compile work a cold [compdiff diff] invocation performs, minus
   fork/exec — a conservative floor for the per-process cost).

   The workload is a pool of distinct programs times a set of inputs;
   every client walks the full pool, so concurrent clients ask about the
   same programs and the daemon's two levers both engage: the warm
   oracle table plus session caches turn repeat compiles into lookups,
   and coalesce-on-pop merges same-key checks from different clients
   into single batched oracle flights ([joined] > 0, batching ratio =
   checks per flight > 1).

   Soundness gate: every daemon verdict — every client, every trial — is
   compared against the verdict the oracle produces directly for that
   (program, input); any mismatch fails the bench.  Acceptance floor:
   4-client throughput at least 3x the baseline. *)

let json_escape = Overhead.json_escape

(* Distinct programs: same shape, different constants, so each is its
   own oracle key and compiles separately.  A mix of stable and unstable
   behaviour (the `+ n` variant of the unguarded store shifts which
   inputs go out of bounds). *)
let program (k : int) : string =
  Printf.sprintf
    "int test_case(void) {\n\
    \  int buf[8];\n\
    \  int i;\n\
    \  i = 0;\n\
    \  while (i < 8) { buf[i] = i * %d; i = i + 1; }\n\
    \  int x = getchar() - 48 + %d;\n\
    \  if (x < 8) {\n\
    \    buf[x] = %d;\n\
    \    print(\"v %%d\\n\", buf[x < 0 ? 0 : x]);\n\
    \  }\n\
    \  print(\"sum %%d\\n\", buf[0] + buf[3] + buf[7] + x * %d);\n\
    \  return 0;\n\
     }\n\
     int main(void) { test_case(); return 0; }\n"
    (k + 1) (k mod 3) (41 + k) (13 + k)

let n_programs = 4
let inputs = [ ""; "0"; "5"; ":" ]

(* (program index, input) work items, in a fixed order every client walks *)
let workload : (int * string) list =
  List.concat_map
    (fun k -> List.map (fun i -> (k, i)) inputs)
    (List.init n_programs (fun k -> k))

let fuel = 200_000

(* canonical verdict form, comparable across the proto and direct paths *)
let canon_direct (v : Compdiff.Oracle.verdict) : string =
  match v with
  | Compdiff.Oracle.Agree o ->
      Printf.sprintf "A|%s|%s"
        (Cdvm.Trap.status_to_string o.Compdiff.Oracle.status)
        o.Compdiff.Oracle.output
  | Compdiff.Oracle.Diverge obs ->
      "D|"
      ^ String.concat "|"
          (List.map
             (fun (name, (o : Compdiff.Oracle.observation)) ->
               Printf.sprintf "%s:%s:%s" name
                 (Cdvm.Trap.status_to_string o.Compdiff.Oracle.status)
                 o.Compdiff.Oracle.output)
             obs)

let canon_proto (v : Serve.Proto.verdict) : string =
  match v with
  | Serve.Proto.V_agree o ->
      Printf.sprintf "A|%s|%s" o.Serve.Proto.ob_status o.Serve.Proto.ob_output
  | Serve.Proto.V_diverge obs ->
      "D|"
      ^ String.concat "|"
          (List.map
             (fun (o : Serve.Proto.obs) ->
               Printf.sprintf "%s:%s:%s" o.Serve.Proto.ob_impl
                 o.Serve.Proto.ob_status o.Serve.Proto.ob_output)
             obs)

let trials = 3

let time f =
  let best = ref infinity in
  let result = ref None in
  for _ = 1 to trials do
    Gc.full_major ();
    let t0 = Unix.gettimeofday () in
    let r = f () in
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt;
    result := Some r
  done;
  (!best, Option.get !result)

let run () =
  let sources = Array.init n_programs program in
  (* ground truth, computed directly (one warm session of its own) *)
  let truth_session = Engine.Session.create ~cache_mb:128 () in
  let truth = Hashtbl.create 32 in
  Array.iteri
    (fun k src ->
      let tp =
        match Minic.frontend_of_source src with
        | Ok tp -> tp
        | Error m -> failwith ("serve bench: bad program: " ^ m)
      in
      let o = Compdiff.Oracle.create ~session:truth_session ~fuel tp in
      List.iter
        (fun input ->
          Hashtbl.replace truth (k, input)
            (canon_direct (Compdiff.Oracle.check o ~input)))
        inputs)
    sources;
  (* process-per-request baseline: fresh session + fresh oracle + one
     check, per request (the cold-CLI cost floor) *)
  let baseline_once () =
    List.iter
      (fun (k, input) ->
        let s = Engine.Session.create ~cache_mb:128 () in
        let tp =
          match Minic.frontend_of_source sources.(k) with
          | Ok tp -> tp
          | Error m -> failwith m
        in
        let o = Compdiff.Oracle.create ~session:s ~fuel tp in
        let v = canon_direct (Compdiff.Oracle.check o ~input) in
        if v <> Hashtbl.find truth (k, input) then
          failwith "serve bench: baseline verdict mismatch")
      workload
  in
  ignore (baseline_once ());
  let base_time, () = time baseline_once in
  (* the daemon, served from a sibling thread in this process *)
  let socket_path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "compdiff-bench-%d.sock" (Unix.getpid ()))
  in
  let srv =
    Serve.Server.create
      {
        Serve.Server.socket_path;
        sched =
          {
            (Serve.Scheduler.default_config
               ~session:(Engine.Session.create ~cache_mb:256 ())
               ())
            with
            Serve.Scheduler.executors = 2;
            quota = 64;
          };
        client_timeout = 0.;
        idle_timeout = 0.;
        quiet = true;
      }
  in
  let server_thread = Thread.create Serve.Server.serve srv in
  (* one scenario: [n] client threads, each walking the whole workload
     synchronously; throughput = total requests / wall time *)
  let mismatches = Atomic.make 0 in
  let client_pass () =
    let cl = Serve.Client.connect socket_path in
    List.iter
      (fun (k, input) ->
        match
          Serve.Client.check cl ~fuel ~source:sources.(k) ~inputs:[ input ] ()
        with
        | Ok [ v ] ->
            if canon_proto v <> Hashtbl.find truth (k, input) then
              Atomic.incr mismatches
        | Ok _ | Error _ -> Atomic.incr mismatches)
      workload;
    Serve.Client.close cl
  in
  let scenario n =
    let run_all () =
      let ths = List.init n (fun _ -> Thread.create client_pass ()) in
      List.iter Thread.join ths
    in
    let t, () = time run_all in
    let requests = n * List.length workload in
    (t, float_of_int requests /. t)
  in
  (* warmup: populate the daemon's caches so every scenario measures the
     steady serving state, not first-compile *)
  client_pass ();
  let t1, rps1 = scenario 1 in
  let t4, rps4 = scenario 4 in
  let t8, rps8 = scenario 8 in
  let sched = Serve.Scheduler.sched_stats (Serve.Server.sched srv) in
  Serve.Server.stop srv;
  Thread.join server_thread;
  let base_rps = float_of_int (List.length workload) /. base_time in
  let speedup = rps4 /. base_rps in
  let batching_ratio =
    float_of_int sched.Serve.Proto.sr_checks
    /. float_of_int (max 1 sched.Serve.Proto.sr_flights)
  in
  let verdicts_match = Atomic.get mismatches = 0 in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"bench\": \"serve\",\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"metric\": \"%s\",\n"
       (json_escape
          "requests/sec = differential checks served per second through the \
           daemon socket; baseline = fresh session + fresh oracle per \
           request (cold-CLI cost floor); speedup = 4-client daemon vs \
           baseline"));
  Buffer.add_string buf
    (Printf.sprintf "  \"programs\": %d,\n  \"inputs_per_program\": %d,\n"
       n_programs (List.length inputs));
  Buffer.add_string buf
    (Printf.sprintf
       "  \"baseline\": { \"seconds\": %.4f, \"requests_per_sec\": %.2f },\n"
       base_time base_rps);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"clients_1\": { \"seconds\": %.4f, \"requests_per_sec\": %.2f, \
        \"speedup\": %.2f },\n"
       t1 rps1 (rps1 /. base_rps));
  Buffer.add_string buf
    (Printf.sprintf
       "  \"clients_4\": { \"seconds\": %.4f, \"requests_per_sec\": %.2f, \
        \"speedup\": %.2f },\n"
       t4 rps4 speedup);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"clients_8\": { \"seconds\": %.4f, \"requests_per_sec\": %.2f, \
        \"speedup\": %.2f },\n"
       t8 rps8 (rps8 /. base_rps));
  Buffer.add_string buf
    (Printf.sprintf
       "  \"scheduler\": { \"requests\": %d, \"flights\": %d, \"checks\": \
        %d, \"joined\": %d, \"shed\": %d, \"warm_oracles\": %d },\n"
       sched.Serve.Proto.sr_requests sched.Serve.Proto.sr_flights
       sched.Serve.Proto.sr_checks sched.Serve.Proto.sr_joined
       sched.Serve.Proto.sr_shed sched.Serve.Proto.sr_oracles);
  Buffer.add_string buf
    (Printf.sprintf "  \"batching_ratio\": %.3f,\n" batching_ratio);
  Buffer.add_string buf (Printf.sprintf "  \"speedup\": %.2f,\n" speedup);
  Buffer.add_string buf
    (Printf.sprintf "  \"speedup_target_met\": %b,\n" (speedup >= 3.0));
  Buffer.add_string buf
    (Printf.sprintf "  \"verdicts_match\": %b\n" verdicts_match);
  Buffer.add_string buf "}\n";
  let path = "BENCH_serve.json" in
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  print_string (Buffer.contents buf);
  Printf.printf "wrote %s\n" path
