(* Benchmark-suite sections: Table 2 (CWE overview), Table 3 (detection
   and false-positive rates), Figure 1 (subset study). *)

open Cdutil

let pct = Tablefmt.pct

let table2 () =
  let rows =
    List.map
      (fun (i : Juliet.Cwe.info) ->
        [
          Printf.sprintf "CWE-%d" i.Juliet.Cwe.id;
          i.Juliet.Cwe.description;
          string_of_int i.Juliet.Cwe.paper_count;
          string_of_int (Juliet.Cwe.scaled_count i);
        ])
      Juliet.Cwe.all
    @ [
        [
          "Total";
          "";
          string_of_int Juliet.Cwe.total_paper;
          string_of_int Juliet.Cwe.total_scaled;
        ];
      ]
  in
  Tablefmt.print ~title:"Table 2: Overview of selected CWEs"
    ~aligns:[ Tablefmt.Left; Tablefmt.Left; Tablefmt.Right; Tablefmt.Right ]
    ~header:[ "CWE-ID"; "Description"; "#Tests (paper)"; "#Tests (here)" ]
    rows

let evaluate_full_suite =
  let cache = ref None in
  fun () ->
    match !cache with
    | Some evals -> evals
    | None ->
      let tests = Juliet.Suite.full () in
      let jobs = Cdutil.Pool.default_jobs () in
      Printf.printf "[juliet] evaluating %d generated tests (jobs=%d)...\n%!"
        (List.length tests) jobs;
      let t0 = Unix.gettimeofday () in
      (* one caching engine session for the whole suite: the sanitizer
         builds reuse the oracles' gccx-O0 units and the ~validate
         re-checks hit the observation store.  ~validate cross-checks,
         on every input of every test, that the cached/deduped/parallel
         oracle verdict is structurally identical to the sequential
         naive oracle's, which bypasses the session (it raises on any
         mismatch). *)
      let session = Engine.Session.create ~cache_mb:256 () in
      let evals =
        Juliet.Eval.evaluate_suite ~session ~jobs ~validate:true tests
      in
      Printf.printf
        "[juliet] done in %.1fs (cached oracle cross-validated against \
         the naive session-free oracle on all tests)\n%!"
        (Unix.gettimeofday () -. t0);
      print_string (Engine.Session.stats_to_string (Engine.Session.stats session));
      cache := Some evals;
      evals

let table3 () =
  let evals = evaluate_full_suite () in
  let rows = Juliet.Eval.aggregate evals in
  let render (r : Juliet.Eval.row) =
    let sp (d, fp) = [ pct d; pct fp ] in
    [ r.Juliet.Eval.label; string_of_int r.Juliet.Eval.total ]
    @ sp r.Juliet.Eval.r_coverity @ sp r.Juliet.Eval.r_cppcheck
    @ sp r.Juliet.Eval.r_infer @ sp r.Juliet.Eval.r_unstable
    @ [
        pct r.Juliet.Eval.r_asan;
        pct r.Juliet.Eval.r_ubsan;
        pct r.Juliet.Eval.r_msan;
        pct r.Juliet.Eval.r_san_total;
        pct r.Juliet.Eval.r_compdiff;
        string_of_int r.Juliet.Eval.unique;
        pct r.Juliet.Eval.r_reduction;
      ]
  in
  Tablefmt.print
    ~title:"Table 3: Bug detection rates and false positive rates on the generated suite"
    ~header:
      [
        "CWE-IDs"; "#"; "Covty"; "FP"; "Cppchk"; "FP"; "Infer"; "FP";
        "UnstChk"; "FP"; "ASan"; "UBSan"; "MSan"; "SanTot"; "CompDiff";
        "#Unique"; "Reduce";
      ]
    (List.map render rows);
  let fps = Juliet.Eval.false_positive_counts evals in
  Printf.printf "False positives on good variants (Finding 5 expects 0):\n";
  List.iter (fun (name, n) -> Printf.printf "  %-9s %d\n" name n) fps;
  print_newline ();
  (* static-vs-dynamic cross-validation: how does the IR-level analyzer
     line up with the differential oracle's ground truth? *)
  let count f = List.length (List.filter f evals) in
  let total = List.length evals in
  let u_det = count (fun e -> fst e.Juliet.Eval.unstable) in
  let u_fp = count (fun e -> snd e.Juliet.Eval.unstable) in
  let both = count (fun e -> fst e.Juliet.Eval.unstable && fst e.Juliet.Eval.compdiff) in
  let only_static =
    count (fun e -> fst e.Juliet.Eval.unstable && not (fst e.Juliet.Eval.compdiff))
  in
  let only_dyn =
    count (fun e -> fst e.Juliet.Eval.compdiff && not (fst e.Juliet.Eval.unstable))
  in
  Printf.printf
    "UnstableCheck vs differential oracle (%d tests):\n\
    \  static+dynamic agree on %d bugs; static-only %d; dynamic-only %d\n\
    \  UnstableCheck: %d detections, %d good-variant reports (FP rate %s)\n\n"
    total both only_static only_dyn u_det u_fp
    (Cdutil.Tablefmt.pct
       (Juliet.Eval.fp_rate ~detections:u_det ~good_flags:u_fp))

let figure1 () =
  let evals = evaluate_full_suite () in
  let partitions = Juliet.Eval.detected_partitions evals in
  let n = Juliet.Eval.nimpls in
  let names = List.map (fun p -> p.Cdcompiler.Policy.pname) Cdcompiler.Profiles.all in
  Printf.printf
    "Figure 1: bugs detected by every subset of the %d implementations\n" n;
  Printf.printf "(%d bugs detectable by the full set)\n\n" (List.length partitions);
  let rows = Compdiff.Subset.study ~n partitions in
  let render (r : Compdiff.Subset.study_row) =
    [
      string_of_int r.Compdiff.Subset.size;
      Printf.sprintf "%.0f" r.Compdiff.Subset.box.Stats.minimum;
      Printf.sprintf "%.1f" r.Compdiff.Subset.box.Stats.q1;
      Printf.sprintf "%.1f" r.Compdiff.Subset.box.Stats.median;
      Printf.sprintf "%.1f" r.Compdiff.Subset.box.Stats.q3;
      Printf.sprintf "%.0f" r.Compdiff.Subset.box.Stats.maximum;
      string_of_int r.Compdiff.Subset.box.Stats.count;
      String.concat "+"
        (Compdiff.Subset.mask_to_names ~names (fst r.Compdiff.Subset.best));
      String.concat "+"
        (Compdiff.Subset.mask_to_names ~names (fst r.Compdiff.Subset.worst));
    ]
  in
  Tablefmt.print ~title:"Figure 1 data (box per subset size)"
    ~header:[ "size"; "min"; "q1"; "med"; "q3"; "max"; "#subsets"; "best"; "worst" ]
    (List.map render rows);
  (* the paper's headline pair comparison *)
  let best2 = List.hd rows in
  let full = List.nth rows (List.length rows - 1) in
  Printf.printf "best 2-subset detects %.0f of %.0f bugs (%.0f%%)\n"
    (float_of_int (snd best2.Compdiff.Subset.best))
    full.Compdiff.Subset.box.Stats.maximum
    (100.
    *. float_of_int (snd best2.Compdiff.Subset.best)
    /. full.Compdiff.Subset.box.Stats.maximum);
  Printf.printf "policy-recommended pair: %s\n\n"
    (String.concat "+" (Compdiff.Subset.recommend ~names ()))
