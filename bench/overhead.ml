(* Section 5 "Overhead": differential execution with k implementations
   costs ~k x a plain execution; a well-chosen pair retains most of the
   detection at ~2x. Measured two ways: a wall-clock fuzzing-throughput
   comparison, and Bechamel micro-benchmarks of the building blocks. *)

open Bechamel
open Toolkit

let sample_project () = Option.get (Projects.Registry.by_name "readelf")

let wallclock () =
  let p = sample_project () in
  let tp = Projects.Project.frontend p in
  let time_campaign profiles =
    let config =
      {
        Fuzz.Compdiff_afl.default_config with
        Fuzz.Compdiff_afl.seeds = p.Projects.Project.seeds;
        max_execs = 1_500;
        fuel = 60_000;
        profiles;
      }
    in
    let t0 = Unix.gettimeofday () in
    let c = Fuzz.Compdiff_afl.run ~config tp in
    let dt = Unix.gettimeofday () -. t0 in
    (dt, float_of_int c.Fuzz.Compdiff_afl.fuzz.Fuzz.Fuzzer.execs /. dt)
  in
  (* k = 0: plain AFL++ (no differential binaries at all) *)
  let t_plain =
    let config =
      {
        Fuzz.Fuzzer.default_config with
        Fuzz.Fuzzer.seeds = p.Projects.Project.seeds;
        max_execs = 1_500;
        fuel = 60_000;
      }
    in
    let u = Cdcompiler.Pipeline.compile Cdcompiler.Profiles.fuzz_profile tp in
    let t0 = Unix.gettimeofday () in
    let c = Fuzz.Fuzzer.run ~config u in
    let dt = Unix.gettimeofday () -. t0 in
    (dt, float_of_int c.Fuzz.Fuzzer.execs /. dt)
  in
  let pair =
    [ Cdcompiler.Profiles.gccx "O0"; Cdcompiler.Profiles.clangx "O3" ]
  in
  let t_pair = time_campaign pair in
  let t_full = time_campaign Cdcompiler.Profiles.all in
  let row name (dt, eps) base =
    [ name; Printf.sprintf "%.2fs" dt; Printf.sprintf "%.0f" eps;
      Printf.sprintf "%.1fx" (base /. eps) ]
  in
  let _, base_eps = t_plain in
  Cdutil.Tablefmt.print
    ~title:"Overhead (Section 5): fuzzing throughput vs differential set size"
    ~header:[ "configuration"; "time"; "execs/s"; "slowdown" ]
    [
      row "plain AFL++ (k=0)" t_plain base_eps;
      row "CompDiff {gccx-O0, clangx-O3} (k=2)" t_pair base_eps;
      row "CompDiff all implementations (k=10)" t_full base_eps;
    ]

(* --- Bechamel micro-benchmarks --- *)

let listing1_tp =
  lazy
    (match
       Minic.frontend_of_source
         "int dump_data(int offset, int len) {\n\
          \  if (offset + len > 1000) { return -1; }\n\
          \  if (offset + len < offset) { return -1; }\n\
          \  return len;\n\
          }\n\
          int main() { print(\"%d\\n\", dump_data(getchar(), 101)); return 0; }"
     with
    | Ok tp -> tp
    | Error e -> failwith e)

let bench_tests () =
  let tp = Lazy.force listing1_tp in
  let unit_O0 = Cdcompiler.Pipeline.compile (Cdcompiler.Profiles.gccx "O0") tp in
  let oracle2 =
    Compdiff.Oracle.create
      ~profiles:[ Cdcompiler.Profiles.gccx "O0"; Cdcompiler.Profiles.clangx "O3" ]
      ~fuel:50_000 tp
  in
  let oracle10 = Compdiff.Oracle.create ~fuel:50_000 tp in
  [
    Test.make ~name:"murmur3 (1KiB)"
      (Staged.stage
         (let s = String.make 1024 'x' in
          fun () -> ignore (Cdutil.Murmur3.hash32 s)));
    Test.make ~name:"frontend+compile gccx-O0"
      (Staged.stage (fun () ->
           ignore (Cdcompiler.Pipeline.compile (Cdcompiler.Profiles.gccx "O0") tp)));
    Test.make ~name:"frontend+compile clangx-O3"
      (Staged.stage (fun () ->
           ignore (Cdcompiler.Pipeline.compile (Cdcompiler.Profiles.clangx "O3") tp)));
    Test.make ~name:"vm exec (one binary)"
      (Staged.stage (fun () ->
           ignore
             (Cdvm.Exec.run
                ~config:{ Cdvm.Exec.default_config with Cdvm.Exec.input = "A" }
                unit_O0)));
    Test.make ~name:"oracle check k=2"
      (Staged.stage (fun () -> ignore (Compdiff.Oracle.check oracle2 ~input:"A")));
    Test.make ~name:"oracle check k=10"
      (Staged.stage (fun () -> ignore (Compdiff.Oracle.check oracle10 ~input:"A")));
  ]

let microbench () =
  print_endline "Bechamel micro-benchmarks (monotonic clock):";
  print_endline "============================================";
  let instances = [ Instance.monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.4) ~kde:(Some 100) ()
  in
  let grouped =
    Test.make_grouped ~name:"compdiff" ~fmt:"%s %s" (bench_tests ())
  in
  let raw = Benchmark.all cfg instances grouped in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let results =
    List.map (fun i -> Analyze.all ols i raw) instances
  in
  let merged = Analyze.merge ols instances results in
  Hashtbl.iter
    (fun measure tbl ->
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] ->
            Printf.printf "  %-40s %14.1f ns/run (%s)\n" name est measure
          | _ -> ())
        tbl)
    merged;
  print_newline ()

(* --- parallel-oracle benchmark (emits BENCH_oracle.json) ---

   Measures oracle throughput in oracle checks per second ("execs/sec"
   as the fuzzer sees them: one check = one input judged against the
   whole differential set).  The workload mixes a cheap branchy program
   (the Listing-1 pattern) with an input-dependent escalator whose O0
   builds exceed the base fuel while the optimized builds finish —
   exercising both binary dedup and incremental fuel escalation. *)

let escalator_tp =
  lazy
    (match
       Minic.frontend_of_source
         "int main() {\n\
          \  int c = getchar();\n\
          \  int n = 600;\n\
          \  if (c > 64) { n = 20000; }\n\
          \  int i = 0;\n\
          \  int acc = 0;\n\
          \  while (i < n) { acc = acc + i * 3 + 1; i = i + 1; }\n\
          \  print(\"%d %d\\n\", c, acc);\n\
          \  return 0;\n\
          }"
     with
    | Ok tp -> tp
    | Error e -> failwith e)

let oracle_workload () =
  let listing_inputs = List.init 40 (fun i -> String.make 1 (Char.chr (32 + i))) in
  let escal_inputs =
    (* 12 cheap inputs, 4 that trigger the mixed hang + escalation *)
    List.init 12 (fun i -> String.make 1 (Char.chr (33 + i)))
    @ [ "z"; "q"; "x"; "~" ]
  in
  [ (Lazy.force listing1_tp, listing_inputs);
    (Lazy.force escalator_tp, escal_inputs) ]

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 32 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let oracle_bench () =
  let par_jobs = 4 in
  Cdutil.Pool.set_default_jobs par_jobs;
  let fuel = 300_000 and max_fuel = 4_800_000 in
  let workload = oracle_workload () in
  let nchecks =
    List.fold_left (fun a (_, inputs) -> a + List.length inputs) 0 workload
  in
  (* one oracle pair per program: a sequential dedup-free baseline and
     the deduped pooled one; compilation happens outside the timers *)
  let seq_oracles =
    List.map
      (fun (tp, inputs) ->
        (Compdiff.Oracle.create ~fuel ~max_fuel ~jobs:1 ~dedup:false tp, inputs))
      workload
  in
  let par_oracles =
    List.map
      (fun (tp, inputs) ->
        (Compdiff.Oracle.create ~fuel ~max_fuel ~jobs:par_jobs ~dedup:true tp,
         inputs))
      workload
  in
  let reps = 3 in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (Unix.gettimeofday () -. t0, r)
  in
  let seq_time, seq_verdicts =
    time (fun () ->
        List.concat_map
          (fun _ ->
            List.concat_map
              (fun (o, inputs) ->
                List.map (fun input -> Compdiff.Oracle.check_naive o ~input) inputs)
              seq_oracles)
          (List.init reps Fun.id))
  in
  let par_time, par_verdicts =
    time (fun () ->
        List.concat_map
          (fun _ ->
            List.concat_map
              (fun (o, inputs) ->
                List.map (fun input -> Compdiff.Oracle.check o ~input) inputs)
              par_oracles)
          (List.init reps Fun.id))
  in
  let verdicts_match = seq_verdicts = par_verdicts in
  let total_checks = reps * nchecks in
  let seq_cps = float_of_int total_checks /. seq_time in
  let par_cps = float_of_int total_checks /. par_time in
  let pstats =
    List.fold_left
      (fun (e, d, s) (o, _) ->
        let st = Compdiff.Oracle.stats o in
        ( e + st.Compdiff.Oracle.vm_execs,
          d + st.Compdiff.Oracle.dedup_saved,
          s + st.Compdiff.Oracle.escalation_saved ))
      (0, 0, 0) par_oracles
  in
  let par_execs, dedup_saved, escal_saved = pstats in
  let naive_execs = par_execs + dedup_saved + escal_saved in
  let class_info =
    List.map
      (fun (o, _) ->
        (Compdiff.Oracle.class_count o, List.length (Compdiff.Oracle.binaries o)))
      par_oracles
  in
  (* binary-dedup ratio on Juliet CWE categories: fraction of binaries
     the oracle does not need to execute *)
  let juliet_dedup =
    List.map
      (fun cwe ->
        let tests =
          List.filter
            (fun (t : Juliet.Testcase.t) -> t.Juliet.Testcase.cwe = cwe)
            (Juliet.Suite.quick ~per_cwe:2 ())
        in
        let ratios =
          List.map
            (fun (t : Juliet.Testcase.t) ->
              let o =
                Compdiff.Oracle.create ~jobs:1 (Juliet.Testcase.frontend_bad t)
              in
              let k = List.length (Compdiff.Oracle.binaries o) in
              1. -. (float_of_int (Compdiff.Oracle.class_count o) /. float_of_int k))
            tests
        in
        let avg =
          if ratios = [] then 0.
          else List.fold_left ( +. ) 0. ratios /. float_of_int (List.length ratios)
        in
        (cwe, avg))
      [ 190; 369; 457; 476 ]
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"bench\": \"oracle\",\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"metric\": \"%s\",\n"
       (json_escape
          "execs/sec = oracle checks per second (one check = one input \
           judged against the full differential set)"));
  Buffer.add_string buf (Printf.sprintf "  \"jobs_parallel\": %d,\n" par_jobs);
  Buffer.add_string buf (Printf.sprintf "  \"checks\": %d,\n" total_checks);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"sequential\": { \"seconds\": %.4f, \"execs_per_sec\": %.1f, \
        \"vm_execs\": %d },\n"
       seq_time seq_cps naive_execs);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"parallel\": { \"seconds\": %.4f, \"execs_per_sec\": %.1f, \
        \"vm_execs\": %d, \"dedup_saved\": %d, \"escalation_saved\": %d },\n"
       par_time par_cps par_execs dedup_saved escal_saved);
  Buffer.add_string buf
    (Printf.sprintf "  \"speedup\": %.2f,\n" (par_cps /. seq_cps));
  Buffer.add_string buf
    (Printf.sprintf "  \"verdicts_match\": %b,\n" verdicts_match);
  Buffer.add_string buf
    (Printf.sprintf "  \"class_counts\": [%s],\n"
       (String.concat ", "
          (List.map
             (fun (c, k) -> Printf.sprintf "{ \"classes\": %d, \"k\": %d }" c k)
             class_info)));
  Buffer.add_string buf
    (Printf.sprintf "  \"juliet_dedup\": [%s]\n"
       (String.concat ", "
          (List.map
             (fun (cwe, r) ->
               Printf.sprintf "{ \"cwe\": %d, \"dedup_ratio\": %.3f }" cwe r)
             juliet_dedup)));
  Buffer.add_string buf "}\n";
  let path = "BENCH_oracle.json" in
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf
    "Parallel oracle bench (%d checks, %d jobs):\n\
    \  sequential naive: %.1f checks/s (%d VM execs)\n\
    \  deduped+parallel: %.1f checks/s (%d VM execs; %d saved by dedup, %d \
     by incremental escalation)\n\
    \  speedup: %.2fx   verdicts match: %b\n\
     wrote %s\n\n"
    total_checks par_jobs seq_cps naive_execs par_cps par_execs dedup_saved
    escal_saved (par_cps /. seq_cps) verdicts_match path;
  if not verdicts_match then failwith "oracle bench: verdict mismatch"

let run () =
  wallclock ();
  microbench ()
