(* Engine session-layer benchmark (emits BENCH_engine.json).

   Measures Juliet-suite evaluation throughput (tests/sec; compile the
   bad+good variants for all ten profiles, run the oracle over the bug
   inputs, probe the three sanitizer builds) under three regimes:

   - [nocache]   a caching-disabled session — every stage recomputes
                 (the reference the caches are validated against);
   - [cold]      a fresh caching session — first pass pays the misses
                 but already shares work within the suite (the
                 sanitizer builds reuse the oracle's gccx-O0 unit);
   - [warm]      the same session again — compiles, links and
                 observations are served from the caches.

   Cross-validation: all three passes must produce structurally
   identical verdicts (detections, partitions, sanitizer results); a
   mismatch fails the bench.  The headline speedup is warm vs nocache
   and the acceptance floor is 1.5x. *)

let json_escape = Overhead.json_escape

let sample () = Juliet.Suite.quick ~per_cwe:2 ()

(* the behavioural essence of a test evaluation: everything except the
   execution counters (which legitimately differ across regimes) *)
let essence (e : Juliet.Eval.test_eval) =
  ( e.Juliet.Eval.compdiff,
    e.Juliet.Eval.partition,
    e.Juliet.Eval.asan,
    e.Juliet.Eval.ubsan,
    e.Juliet.Eval.msan )

(* Single-shot wall clock is noisy (one-sided: runs only ever get
   slower, from scheduler interference and major-GC heap growth), so
   each regime is timed as the minimum over a few trials.  Regimes that
   must start empty (cold, restart) construct a fresh session inside
   every trial.  Each trial starts from a collected heap so no timed
   region pays the major-GC debt of a previous regime's garbage (the
   discarded sessions of earlier trials). *)
let trials = 3

let time f =
  let best = ref infinity in
  let result = ref None in
  for _ = 1 to trials do
    Gc.full_major ();
    let t0 = Unix.gettimeofday () in
    let r = f () in
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt;
    result := Some r
  done;
  (!best, Option.get !result)

let run () =
  let tests = sample () in
  let n = List.length tests in
  let eval session =
    Juliet.Eval.evaluate_suite ~session ~reduce:false ~jobs:1 tests
  in
  (* untimed warmup: grow the heap once so no timed regime pays the
     first-touch major-GC expansion cost *)
  ignore (eval (Engine.Session.create ~cache_mb:0 ()));
  let base_time, base_evals =
    time (fun () -> eval (Engine.Session.create ~cache_mb:0 ()))
  in
  let last_cold = ref None in
  let cold_time, cold_evals =
    time (fun () ->
        let s = Engine.Session.create ~cache_mb:128 () in
        let r = eval s in
        last_cold := Some s;
        r)
  in
  let cached = Option.get !last_cold in
  let warm_time, warm_evals = time (fun () -> eval cached) in
  (* restart-warm: populate a disk store with one session, then discard
     it and evaluate through a brand-new session over the same directory.
     The new session's in-memory LRUs start empty, so every hit it gets
     comes back from disk -- the cross-restart persistence claim. *)
  let disk_dir =
    let d = Filename.temp_file "compdiff-bench-disk" "" in
    Sys.remove d;
    d
  in
  let seeder = Engine.Session.create ~cache_mb:128 ~disk_dir () in
  let _ = eval seeder in
  let last_restart = ref None in
  let restart_time, restart_evals =
    time (fun () ->
        let s = Engine.Session.create ~cache_mb:128 ~disk_dir () in
        let r = eval s in
        last_restart := Some s;
        r)
  in
  let restart_stats = Engine.Session.stats (Option.get !last_restart) in
  let disk =
    match restart_stats.Engine.Session.disk with
    | Some d -> d
    | None -> failwith "engine bench: restart session has no disk store"
  in
  let rec rm_rf path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  (try rm_rf disk_dir with Sys_error _ -> ());
  let verdicts_match =
    List.map essence base_evals = List.map essence cold_evals
    && List.map essence cold_evals = List.map essence warm_evals
    && List.map essence base_evals = List.map essence restart_evals
    && disk.Engine.Session.disk_hits > 0
  in
  let tps t = float_of_int n /. t in
  let speedup_cold = base_time /. cold_time in
  let speedup_warm = base_time /. warm_time in
  let st = Engine.Session.stats cached in
  let cache_json name (c : Engine.Session.cache_stats) =
    Printf.sprintf
      "  \"%s\": { \"hits\": %d, \"misses\": %d, \"hit_rate\": %.3f, \
       \"evictions\": %d, \"entries\": %d, \"bytes\": %d },\n"
      name c.Engine.Session.hits c.Engine.Session.misses
      (Engine.Session.hit_rate c)
      c.Engine.Session.evictions c.Engine.Session.entries
      c.Engine.Session.bytes
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"bench\": \"engine\",\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"metric\": \"%s\",\n"
       (json_escape
          "tests/sec = Juliet evaluations per second (oracle + sanitizer \
           probes per test); speedup = warm cached pass vs caching-disabled \
           session"));
  Buffer.add_string buf (Printf.sprintf "  \"tests\": %d,\n" n);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"nocache\": { \"seconds\": %.4f, \"tests_per_sec\": %.2f },\n"
       base_time (tps base_time));
  Buffer.add_string buf
    (Printf.sprintf
       "  \"cold\": { \"seconds\": %.4f, \"tests_per_sec\": %.2f, \
        \"speedup\": %.2f },\n"
       cold_time (tps cold_time) speedup_cold);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"warm\": { \"seconds\": %.4f, \"tests_per_sec\": %.2f, \
        \"speedup\": %.2f },\n"
       warm_time (tps warm_time) speedup_warm);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"restart_warm\": { \"seconds\": %.4f, \"tests_per_sec\": %.2f, \
        \"speedup\": %.2f, \"disk_hits\": %d, \"disk_misses\": %d, \
        \"disk_stores\": %d },\n"
       restart_time (tps restart_time)
       (base_time /. restart_time)
       disk.Engine.Session.disk_hits disk.Engine.Session.disk_misses
       disk.Engine.Session.disk_stores);
  Buffer.add_string buf (cache_json "unit_cache" st.Engine.Session.units);
  Buffer.add_string buf (cache_json "image_cache" st.Engine.Session.images);
  Buffer.add_string buf
    (cache_json "observation_store" st.Engine.Session.observations);
  Buffer.add_string buf
    (Printf.sprintf "  \"speedup\": %.2f,\n" speedup_warm);
  Buffer.add_string buf
    (Printf.sprintf "  \"speedup_target_met\": %b,\n" (speedup_warm >= 1.5));
  Buffer.add_string buf
    (Printf.sprintf "  \"verdicts_match\": %b\n" verdicts_match);
  Buffer.add_string buf "}\n";
  let path = "BENCH_engine.json" in
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf
    "Engine session bench (%d Juliet tests):\n\
    \  caching disabled: %.2f tests/s\n\
    \  cold session:     %.2f tests/s (%.2fx)\n\
    \  warm session:     %.2f tests/s (%.2fx)\n\
    \  restart (disk):   %.2f tests/s (%.2fx, %d disk hits)\n\
    \  unit cache %.0f%% hits, image cache %.0f%% hits, observation store \
     %.0f%% hits\n\
    \  verdicts match: %b\n\
     wrote %s\n\n"
    n (tps base_time) (tps cold_time) speedup_cold (tps warm_time)
    speedup_warm (tps restart_time)
    (base_time /. restart_time)
    disk.Engine.Session.disk_hits
    (100. *. Engine.Session.hit_rate st.Engine.Session.units)
    (100. *. Engine.Session.hit_rate st.Engine.Session.images)
    (100. *. Engine.Session.hit_rate st.Engine.Session.observations)
    verdicts_match path;
  if not verdicts_match then
    failwith "engine bench: cached verdicts differ from the fresh path"
