(* Engine session-layer benchmark (emits BENCH_engine.json).

   Measures Juliet-suite evaluation throughput (tests/sec; compile the
   bad+good variants for all ten profiles, run the oracle over the bug
   inputs, probe the three sanitizer builds) under three regimes:

   - [nocache]   a caching-disabled session — every stage recomputes
                 (the reference the caches are validated against);
   - [cold]      a fresh caching session — first pass pays the misses
                 but already shares work within the suite (the
                 sanitizer builds reuse the oracle's gccx-O0 unit);
   - [warm]      the same session again — compiles, links and
                 observations are served from the caches.

   Cross-validation: all three passes must produce structurally
   identical verdicts (detections, partitions, sanitizer results); a
   mismatch fails the bench.  The headline speedup is warm vs nocache
   and the acceptance floor is 1.5x. *)

let json_escape = Overhead.json_escape

let sample () = Juliet.Suite.quick ~per_cwe:2 ()

(* the behavioural essence of a test evaluation: everything except the
   execution counters (which legitimately differ across regimes) *)
let essence (e : Juliet.Eval.test_eval) =
  ( e.Juliet.Eval.compdiff,
    e.Juliet.Eval.partition,
    e.Juliet.Eval.asan,
    e.Juliet.Eval.ubsan,
    e.Juliet.Eval.msan )

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (Unix.gettimeofday () -. t0, r)

let run () =
  let tests = sample () in
  let n = List.length tests in
  let eval session =
    Juliet.Eval.evaluate_suite ~session ~reduce:false ~jobs:1 tests
  in
  let nocache = Engine.Session.create ~cache_mb:0 () in
  let cached = Engine.Session.create ~cache_mb:128 () in
  let base_time, base_evals = time (fun () -> eval nocache) in
  let cold_time, cold_evals = time (fun () -> eval cached) in
  let warm_time, warm_evals = time (fun () -> eval cached) in
  let verdicts_match =
    List.map essence base_evals = List.map essence cold_evals
    && List.map essence cold_evals = List.map essence warm_evals
  in
  let tps t = float_of_int n /. t in
  let speedup_cold = base_time /. cold_time in
  let speedup_warm = base_time /. warm_time in
  let st = Engine.Session.stats cached in
  let cache_json name (c : Engine.Session.cache_stats) =
    Printf.sprintf
      "  \"%s\": { \"hits\": %d, \"misses\": %d, \"hit_rate\": %.3f, \
       \"evictions\": %d, \"entries\": %d, \"bytes\": %d },\n"
      name c.Engine.Session.hits c.Engine.Session.misses
      (Engine.Session.hit_rate c)
      c.Engine.Session.evictions c.Engine.Session.entries
      c.Engine.Session.bytes
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"bench\": \"engine\",\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"metric\": \"%s\",\n"
       (json_escape
          "tests/sec = Juliet evaluations per second (oracle + sanitizer \
           probes per test); speedup = warm cached pass vs caching-disabled \
           session"));
  Buffer.add_string buf (Printf.sprintf "  \"tests\": %d,\n" n);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"nocache\": { \"seconds\": %.4f, \"tests_per_sec\": %.2f },\n"
       base_time (tps base_time));
  Buffer.add_string buf
    (Printf.sprintf
       "  \"cold\": { \"seconds\": %.4f, \"tests_per_sec\": %.2f, \
        \"speedup\": %.2f },\n"
       cold_time (tps cold_time) speedup_cold);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"warm\": { \"seconds\": %.4f, \"tests_per_sec\": %.2f, \
        \"speedup\": %.2f },\n"
       warm_time (tps warm_time) speedup_warm);
  Buffer.add_string buf (cache_json "unit_cache" st.Engine.Session.units);
  Buffer.add_string buf (cache_json "image_cache" st.Engine.Session.images);
  Buffer.add_string buf
    (cache_json "observation_store" st.Engine.Session.observations);
  Buffer.add_string buf
    (Printf.sprintf "  \"speedup\": %.2f,\n" speedup_warm);
  Buffer.add_string buf
    (Printf.sprintf "  \"speedup_target_met\": %b,\n" (speedup_warm >= 1.5));
  Buffer.add_string buf
    (Printf.sprintf "  \"verdicts_match\": %b\n" verdicts_match);
  Buffer.add_string buf "}\n";
  let path = "BENCH_engine.json" in
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf
    "Engine session bench (%d Juliet tests):\n\
    \  caching disabled: %.2f tests/s\n\
    \  cold session:     %.2f tests/s (%.2fx)\n\
    \  warm session:     %.2f tests/s (%.2fx)\n\
    \  unit cache %.0f%% hits, image cache %.0f%% hits, observation store \
     %.0f%% hits\n\
    \  verdicts match: %b\n\
     wrote %s\n\n"
    n (tps base_time) (tps cold_time) speedup_cold (tps warm_time)
    speedup_warm
    (100. *. Engine.Session.hit_rate st.Engine.Session.units)
    (100. *. Engine.Session.hit_rate st.Engine.Session.images)
    (100. *. Engine.Session.hit_rate st.Engine.Session.observations)
    verdicts_match path;
  if not verdicts_match then
    failwith "engine bench: cached verdicts differ from the fresh path"
