(* Labeled-corpus generator benchmark (emits BENCH_gen.json).

   Two measurements:

   - generator throughput: programs/sec through the full emission path
     (effect-typed generation, pretty-printing, re-parse + typecheck of
     the emitted source) — the floor is 500/s, far above what a fuzzing
     campaign consumes;
   - corpus quality on a fixed sweep: pair count, clean-twin divergence
     count (any nonzero disproves the generator's soundness argument),
     the oracle's measured FN rate on the injected twins, and
     naive-vs-session verdict equality on a sample (the deduped/pooled
     oracle must be observationally identical to the sequential one).

   Throughput is the best of a few trials (wall clock is one-sided
   noisy); quality is deterministic given the seed range. *)

let trials = 3

let time f =
  let best = ref infinity in
  for _ = 1 to trials do
    Gc.full_major ();
    let t0 = Unix.gettimeofday () in
    f ();
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt
  done;
  !best

let run () =
  (* throughput: generate + print + re-elaborate [n] programs *)
  let n = 300 in
  let emit seed =
    let src =
      Minic.Pretty.program_to_string (Gen.Effgen.generate ~seed).Gen.Effgen.prog
    in
    match Minic.frontend_of_source src with
    | Ok _ -> ()
    | Error m -> failwith (Printf.sprintf "gen bench: seed %d: %s" seed m)
  in
  ignore (emit 0) (* warmup: touch the heap once *);
  let dt =
    time (fun () ->
        for seed = 0 to n - 1 do
          emit seed
        done)
  in
  let per_sec = float_of_int n /. dt in
  (* corpus quality on a fixed sweep *)
  let sweep = 50 in
  let session = Engine.Session.create ~cache_mb:64 () in
  let results =
    List.init sweep (fun seed -> Gen.Corpus.make ~seed ())
  in
  let pairs = List.filter_map Result.to_option results in
  let gen_failures = sweep - List.length pairs in
  let evals = Gen.Corpus.evaluate ~session pairs in
  let report = Gen.Corpus.report ~gen_failures evals in
  let fn_rate = Gen.Corpus.oracle_fn_rate report in
  let verdicts_match =
    List.for_all
      (fun p -> Gen.Corpus.naive_agrees ~session p)
      (List.filteri (fun i _ -> i < 10) pairs)
  in
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{\n";
  Printf.bprintf buf "  \"programs\": %d,\n" n;
  Printf.bprintf buf "  \"per_sec\": %.1f,\n" per_sec;
  Printf.bprintf buf "  \"per_sec_target_met\": %b,\n" (per_sec >= 500.);
  Printf.bprintf buf "  \"pairs\": %d,\n" (List.length pairs);
  Printf.bprintf buf "  \"gen_failures\": %d,\n" gen_failures;
  Printf.bprintf buf "  \"clean_divergences\": %d,\n"
    report.Gen.Corpus.clean_divergences;
  Printf.bprintf buf "  \"oracle_fn_rate\": %.4f,\n" fn_rate;
  Printf.bprintf buf "  \"verdicts_match\": %b\n" verdicts_match;
  Buffer.add_string buf "}\n";
  let path = "BENCH_gen.json" in
  let oc = open_out path in
  Buffer.output_buffer oc buf;
  close_out oc;
  Printf.printf
    "Labeled-corpus generator bench:\n\
    \  emission throughput: %.0f programs/s (floor 500)\n\
    \  corpus: %d pairs, %d generation failures, %d clean-twin divergences\n\
    \  oracle FN rate: %.4f\n\
    \  naive/session verdicts match: %b\n\
     wrote %s\n\n"
    per_sec (List.length pairs) gen_failures
    report.Gen.Corpus.clean_divergences fn_rate verdicts_match path;
  if report.Gen.Corpus.clean_divergences > 0 then
    failwith "gen bench: a clean twin diverged (generator soundness)";
  if not verdicts_match then
    failwith "gen bench: session and naive oracle verdicts differ"
