(* Trace recorder benchmark (emits BENCH_trace.json): the cost of
   observation at each level of the unified [Observer] interface, and
   the payoff of snapshot-accelerated seeking in the trace store.

   Three throughput rows over the BENCH_vm workload, all through the
   linked executor:

   - silent: the oracle's path, [Observer.silent] (the refactor's "no
     observation costs nothing" claim -- bench.sh gates this against
     BENCH_vm's linked execs/sec);
   - prints: a per-print callback, the level classic localization uses;
   - steps: full [Cdtrace] recording (every pc, register write, memory
     write, call/return), the time-travel explorer's input.  The gate
     is a <= 5x slowdown over silent.

   Recording must never perturb execution: every recorded run's
   [Exec.result] is compared byte-for-byte against the silent run's.

   The seek row records one long trace (~1e5 steps) and times random
   [seek]s with the periodic snapshots against [seek_slow]'s
   replay-from-zero, reporting per-seek latency for both. *)

let fuel = 100_000

let workload () =
  [ (Lazy.force Overhead.listing1_tp,
     List.init 32 (fun i -> String.make 1 (Char.chr (33 + i))));
    (Lazy.force Overhead.escalator_tp,
     List.init 8 (fun i -> String.make 1 (Char.chr (40 + i))) @ [ "z"; "~" ]) ]

let trials = 3

let time ?(trials = trials) f =
  let best = ref infinity in
  let result = ref None in
  for _ = 1 to trials do
    Gc.full_major ();
    let t0 = Unix.gettimeofday () in
    let r = f () in
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt;
    (match !result with
    | Some prev when prev <> r -> failwith "trace bench: trial results differ"
    | _ -> ());
    result := Some r
  done;
  (!best, Option.get !result)

let run () =
  (* earlier bench sections leave idle pool domains behind, and every
     one of them joins each stop-the-world minor collection -- which
     taxes the allocation-heavy steps recorder ~4x.  This is a
     single-domain measurement, so quiesce the pool first (it is
     rebuilt lazily if a later section needs it). *)
  Cdutil.Pool.quiesce ();
  Gc.compact ();
  let profile = Cdcompiler.Profiles.gccx "O0" in
  let images =
    List.map
      (fun (tp, inputs) ->
        (Cdvm.Image.link (Cdcompiler.Pipeline.compile profile tp), inputs))
      (workload ())
  in
  let nexecs_round =
    List.fold_left (fun a (_, inputs) -> a + List.length inputs) 0 images
  in
  let reps = 100 in
  let total = reps * nexecs_round in
  (* silent: default observer, pooled arena -- BENCH_vm's linked path *)
  let arenas =
    List.map (fun (img, inputs) -> (img, Cdvm.Arena.create img, inputs)) images
  in
  let sil_time, sil_results =
    time (fun () ->
        let last = ref [] in
        for _ = 1 to reps do
          last :=
            List.concat_map
              (fun (img, arena, inputs) ->
                List.map
                  (fun input ->
                    let config =
                      { Cdvm.Exec.default_config with Cdvm.Exec.input; fuel }
                    in
                    Cdvm.Exec.run_linked ~config ~arena img)
                  inputs)
              arenas
        done;
        !last)
  in
  (* prints: one callback per executed print statement *)
  let printed = ref 0 in
  let prints_obs = Cdvm.Observer.prints (fun ~fn:_ _ -> incr printed) in
  let pr_time, pr_results =
    time (fun () ->
        let last = ref [] in
        for _ = 1 to reps do
          last :=
            List.concat_map
              (fun (img, arena, inputs) ->
                List.map
                  (fun input ->
                    let config =
                      {
                        Cdvm.Exec.default_config with
                        Cdvm.Exec.input;
                        fuel;
                        observer = prints_obs;
                      }
                    in
                    Cdvm.Exec.run_linked ~config ~arena img)
                  inputs)
              arenas
        done;
        !last)
  in
  (* steps: a full Cdtrace recording per execution (fresh memory: the
     recorder mirrors the run, so no arena on this path) *)
  let st_time, st_results =
    time (fun () ->
        let last = ref [] in
        for _ = 1 to reps do
          last :=
            List.concat_map
              (fun (img, inputs) ->
                List.map
                  (fun input ->
                    let _tr, r = Cdtrace.record ~fuel img ~impl:"bench" ~input in
                    r)
                  inputs)
              images
        done;
        !last)
  in
  let replay_match = sil_results = pr_results && sil_results = st_results in
  let sil_eps = float_of_int total /. sil_time in
  let pr_eps = float_of_int total /. pr_time in
  let st_eps = float_of_int total /. st_time in
  let steps_slowdown = st_time /. sil_time in
  let steps_ok = steps_slowdown <= 5.0 in
  (* seek: one long trace, random positions, snapshots vs linear replay *)
  let seek_img, _ = List.nth images 1 in
  let tr, _ = Cdtrace.record ~fuel:2_000_000 seek_img ~impl:"bench" ~input:"z" in
  let nsteps = Cdtrace.length tr in
  let nseeks = 200 in
  let positions =
    (* fixed-seed LCG: deterministic, scattered over the whole trace *)
    let s = ref 12345 in
    Array.init nseeks (fun _ ->
        s := ((!s * 1103515245) + 12347) land 0x3FFFFFFF;
        !s mod max 1 nsteps)
  in
  let cur = Cdtrace.cursor tr in
  let snap_time, _ =
    time (fun () ->
        Array.iter (fun k -> Cdtrace.seek cur k) positions;
        Cdtrace.pos cur)
  in
  let slow_time, _ =
    time ~trials:1 (fun () ->
        Array.iter (fun k -> Cdtrace.seek_slow cur k) positions;
        Cdtrace.pos cur)
  in
  let snap_us = snap_time /. float_of_int nseeks *. 1e6 in
  let slow_us = slow_time /. float_of_int nseeks *. 1e6 in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"bench\": \"trace\",\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"metric\": \"%s\",\n"
       (Overhead.json_escape
          "execs/sec per observer level (linked executor); seek latency \
           is microseconds per random reposition of a replay cursor"));
  Buffer.add_string buf (Printf.sprintf "  \"execs\": %d,\n" total);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"silent\": { \"seconds\": %.4f, \"execs_per_sec\": %.1f },\n"
       sil_time sil_eps);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"prints\": { \"seconds\": %.4f, \"execs_per_sec\": %.1f, \
        \"ratio\": %.3f },\n"
       pr_time pr_eps (pr_eps /. sil_eps));
  Buffer.add_string buf
    (Printf.sprintf
       "  \"steps\": { \"seconds\": %.4f, \"execs_per_sec\": %.1f },\n"
       st_time st_eps);
  Buffer.add_string buf
    (Printf.sprintf "  \"steps_slowdown\": %.2f,\n" steps_slowdown);
  Buffer.add_string buf
    (Printf.sprintf "  \"steps_slowdown_target_met\": %b,\n" steps_ok);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"seek\": { \"trace_steps\": %d, \"seeks\": %d, \"snapshot_us\": \
        %.1f, \"linear_us\": %.1f, \"speedup\": %.1f },\n"
       nsteps nseeks snap_us slow_us (slow_us /. max 1e-9 snap_us));
  Buffer.add_string buf
    (Printf.sprintf "  \"replay_match\": %b\n" replay_match);
  Buffer.add_string buf "}\n";
  let path = "BENCH_trace.json" in
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf
    "Trace recorder bench (%d execs, gccx-O0 binaries):\n\
    \  silent observer:  %.0f execs/s\n\
    \  prints observer:  %.0f execs/s (%.2fx of silent, %d prints)\n\
    \  steps recording:  %.0f execs/s (%.2fx slowdown, target <= 5x: %b)\n\
    \  seek (%d-step trace, %d seeks): %.1f us snapshot vs %.1f us linear \
     (%.0fx)\n\
    \  recorded results byte-identical to silent: %b\n\
     wrote %s\n\n"
    total sil_eps pr_eps (pr_eps /. sil_eps) !printed st_eps steps_slowdown
    steps_ok nsteps nseeks snap_us slow_us
    (slow_us /. max 1e-9 snap_us)
    replay_match path;
  if not replay_match then failwith "trace bench: observer perturbed execution"
