(* Metamorphic meta-checker benchmark (emits BENCH_metacheck.json).

   Measures twin-analysis throughput (twins/sec: erase + re-typecheck +
   static tools + sanitizer builds + oracle per metamorphic twin) over a
   slice of the generated Juliet suite, batched over the shared
   {!Cdutil.Pool} versus the sequential naive path.

   Cross-validation: both paths must produce identical flag sets per
   program ({!Metacheck.Driver.essence}); a mismatch fails the bench. *)

let json_escape = Overhead.json_escape

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (Unix.gettimeofday () -. t0, r)

(* one representative CWE per verdict family the meta-checker exercises *)
let sample_cwes = [ 190; 369; 457; 476; 121; 758 ]

let sample () =
  List.filter
    (fun (t : Juliet.Testcase.t) -> List.mem t.Juliet.Testcase.cwe sample_cwes)
    (Juliet.Suite.quick ~per_cwe:1 ())

let run () =
  let tests = sample () in
  let programs =
    List.map
      (fun (t : Juliet.Testcase.t) ->
        ( t.Juliet.Testcase.name,
          Juliet.Testcase.frontend_bad t,
          t.Juliet.Testcase.inputs ))
      tests
  in
  let session = Engine.Session.create ~cache_mb:128 () in
  let naive_time, naive =
    time (fun () ->
        List.map
          (fun (name, tp, inputs) ->
            Metacheck.Driver.analyze_naive ~session ~limit:2 ~name tp ~inputs)
          programs)
  in
  let batch_time, batched =
    time (fun () ->
        List.map
          (fun (name, tp, inputs) ->
            Metacheck.Driver.analyze ~session ~limit:2 ~name tp ~inputs)
          programs)
  in
  let verdicts_match =
    List.map Metacheck.Driver.essence naive
    = List.map Metacheck.Driver.essence batched
  in
  let twins =
    List.fold_left
      (fun n (r : Metacheck.Driver.result) ->
        n + r.Metacheck.Driver.mc_preserving
        + r.Metacheck.Driver.mc_eliminating)
      0 naive
  in
  let flags =
    List.fold_left
      (fun n (r : Metacheck.Driver.result) ->
        n + List.length r.Metacheck.Driver.mc_flags)
      0 naive
  in
  let retype_failures =
    List.fold_left
      (fun n (r : Metacheck.Driver.result) ->
        n + List.length r.Metacheck.Driver.mc_retype_failures)
      0 naive
  in
  let tps t = float_of_int twins /. t in
  let speedup = naive_time /. batch_time in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"bench\": \"metacheck\",\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"metric\": \"%s\",\n"
       (json_escape
          "twins/sec = metamorphic twins fully analyzed per second (erase + \
           re-typecheck + 4 static tools + 3 sanitizers + oracle); speedup \
           = pool-batched vs sequential naive path"));
  Buffer.add_string buf (Printf.sprintf "  \"programs\": %d,\n" (List.length programs));
  Buffer.add_string buf (Printf.sprintf "  \"twins\": %d,\n" twins);
  Buffer.add_string buf (Printf.sprintf "  \"flags\": %d,\n" flags);
  Buffer.add_string buf
    (Printf.sprintf "  \"retype_failures\": %d,\n" retype_failures);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"naive\": { \"seconds\": %.4f, \"twins_per_sec\": %.2f },\n"
       naive_time (tps naive_time));
  Buffer.add_string buf
    (Printf.sprintf
       "  \"batched\": { \"seconds\": %.4f, \"twins_per_sec\": %.2f },\n"
       batch_time (tps batch_time));
  Buffer.add_string buf (Printf.sprintf "  \"speedup\": %.2f,\n" speedup);
  Buffer.add_string buf
    (Printf.sprintf "  \"verdicts_match\": %b\n" verdicts_match);
  Buffer.add_string buf "}\n";
  let path = "BENCH_metacheck.json" in
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf
    "Metacheck bench (%d programs, %d twins, %d flags):\n\
    \  naive:   %.2f twins/s\n\
    \  batched: %.2f twins/s (%.2fx)\n\
    \  retype failures: %d\n\
    \  verdicts match: %b\n\
     wrote %s\n\n"
    (List.length programs) twins flags (tps naive_time) (tps batch_time)
    speedup retype_failures verdicts_match path;
  if not verdicts_match then
    failwith "metacheck bench: batched flags differ from the naive path";
  if retype_failures > 0 then
    failwith "metacheck bench: a preserving twin failed to re-typecheck"
