(* VM executor benchmark (emits BENCH_vm.json): raw interpretation
   throughput of the tree-walking reference vs the linked-image executor
   with a persistent arena, plus the end-to-end effect on oracle
   throughput.

   "execs/sec" here is plain VM executions per second of a single
   binary; "checks/sec" is full oracle checks (one input judged against
   the whole differential set), reusing the oracle's pooled arenas.  The
   two executors must stay byte-identical, so every timed run is also
   compared against the reference result. *)

let workload () =
  [ (Lazy.force Overhead.listing1_tp, List.init 32 (fun i -> String.make 1 (Char.chr (33 + i))));
    (Lazy.force Overhead.escalator_tp,
     List.init 8 (fun i -> String.make 1 (Char.chr (40 + i))) @ [ "z"; "~" ]) ]

let fuel = 100_000

(* Single-shot wall clock is noisy on a shared machine, and the
   interference is one-sided (runs only ever get slower), so the minimum
   over a few trials is the stable estimator.  Every trial's result goes
   through the same byte-identity comparison.  Each trial starts from a
   collected heap so later-timed configurations don't inherit the
   major-GC debt of earlier ones' garbage. *)
let trials = 3

let time ?(trials = trials) f =
  let best = ref infinity in
  let result = ref None in
  for _ = 1 to trials do
    Gc.full_major ();
    let t0 = Unix.gettimeofday () in
    let r = f () in
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt;
    (match !result with
    | Some prev when prev <> r -> failwith "vm bench: trial results differ"
    | _ -> ());
    result := Some r
  done;
  (!best, Option.get !result)

let run () =
  let profile = Cdcompiler.Profiles.gccx "O0" in
  let units =
    List.map
      (fun (tp, inputs) -> (Cdcompiler.Pipeline.compile profile tp, inputs))
      (workload ())
  in
  let images = List.map (fun (u, inputs) -> (Cdvm.Image.link u, inputs)) units in
  let nexecs_round =
    List.fold_left (fun a (_, inputs) -> a + List.length inputs) 0 units
  in
  let reps = 400 in
  let total = reps * nexecs_round in
  let config input = { Cdvm.Exec.default_config with Cdvm.Exec.input; fuel } in
  (* reference: tree-walking interpreter, fresh state per run *)
  let ref_words0 = Gc.minor_words () in
  let ref_time, ref_results =
    time (fun () ->
        let last = ref [] in
        for _ = 1 to reps do
          last :=
            List.concat_map
              (fun (u, inputs) ->
                List.map
                  (fun input -> Cdvm.Exec.run ~config:(config input) u)
                  inputs)
              units
        done;
        !last)
  in
  let ref_words = Gc.minor_words () -. ref_words0 in
  (* linked: pre-resolved image + one persistent arena per image *)
  let arenas = List.map (fun (img, inputs) -> (img, Cdvm.Arena.create img, inputs)) images in
  let lin_words0 = Gc.minor_words () in
  let lin_time, lin_results =
    time (fun () ->
        let last = ref [] in
        for _ = 1 to reps do
          last :=
            List.concat_map
              (fun (img, arena, inputs) ->
                List.map
                  (fun input ->
                    Cdvm.Exec.run_linked ~config:(config input) ~arena img)
                  inputs)
              arenas
        done;
        !last)
  in
  let lin_words = Gc.minor_words () -. lin_words0 in
  (* batched: whole per-image input sets through one [Exec.run_batch]
     call (single arena validation, amortized reset) *)
  let batch_inputs =
    List.map
      (fun (img, arena, inputs) -> (img, arena, Array.of_list inputs))
      arenas
  in
  let bat_config = { Cdvm.Exec.default_config with Cdvm.Exec.fuel } in
  let bat_words0 = Gc.minor_words () in
  let bat_time, bat_results =
    time (fun () ->
        let last = ref [] in
        for _ = 1 to reps do
          last :=
            List.concat_map
              (fun (img, arena, inputs) ->
                Array.to_list
                  (Cdvm.Exec.run_batch ~config:bat_config ~arena img ~inputs))
              batch_inputs
        done;
        !last)
  in
  let bat_words = Gc.minor_words () -. bat_words0 in
  let execs_match = ref_results = lin_results && ref_results = bat_results in
  let ref_eps = float_of_int total /. ref_time in
  let lin_eps = float_of_int total /. lin_time in
  let bat_eps = float_of_int total /. bat_time in
  let exec_speedup = lin_eps /. ref_eps in
  let exec_speedup_batched = bat_eps /. ref_eps in
  (* end-to-end: oracle checks/sec, naive reference path vs the linked
     path with pooled arenas (both sequential so only the executor and
     linking differ) *)
  let oracles =
    List.map
      (fun (tp, inputs) ->
        (Compdiff.Oracle.create ~fuel ~jobs:1 ~dedup:true tp, inputs))
      (workload ())
  in
  let oreps = 8 in
  let nchecks =
    oreps
    * List.fold_left (fun a (_, inputs) -> a + List.length inputs) 0 oracles
  in
  let naive_time, naive_verdicts =
    time (fun () ->
        List.concat_map
          (fun _ ->
            List.concat_map
              (fun (o, inputs) ->
                List.map (fun input -> Compdiff.Oracle.check_naive o ~input) inputs)
              oracles)
          (List.init oreps Fun.id))
  in
  let linked_time, linked_verdicts =
    time (fun () ->
        List.concat_map
          (fun _ ->
            List.concat_map
              (fun (o, inputs) ->
                List.map (fun input -> Compdiff.Oracle.check o ~input) inputs)
              oracles)
          (List.init oreps Fun.id))
  in
  (* batched oracle: the same checks through [check_batch] (per-class
     batched VM sessions, level-synchronous escalation) *)
  let obatch_time, obatch_verdicts =
    time (fun () ->
        List.concat_map
          (fun _ ->
            List.concat_map
              (fun (o, inputs) ->
                Array.to_list
                  (Compdiff.Oracle.check_batch o
                     ~inputs:(Array.of_list inputs)))
              oracles)
          (List.init oreps Fun.id))
  in
  let verdicts_match =
    execs_match
    && naive_verdicts = linked_verdicts
    && naive_verdicts = obatch_verdicts
  in
  let naive_cps = float_of_int nchecks /. naive_time in
  let linked_cps = float_of_int nchecks /. linked_time in
  let obatch_cps = float_of_int nchecks /. obatch_time in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"bench\": \"vm\",\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"metric\": \"%s\",\n"
       (Overhead.json_escape
          "execs/sec = raw VM executions per second of one binary; \
           checks/sec = oracle checks per second"));
  Buffer.add_string buf (Printf.sprintf "  \"execs\": %d,\n" total);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"reference\": { \"seconds\": %.4f, \"execs_per_sec\": %.1f, \
        \"minor_words_per_exec\": %.0f },\n"
       ref_time ref_eps
       (ref_words /. float_of_int (trials * total)));
  Buffer.add_string buf
    (Printf.sprintf
       "  \"linked\": { \"seconds\": %.4f, \"execs_per_sec\": %.1f, \
        \"minor_words_per_exec\": %.0f },\n"
       lin_time lin_eps
       (lin_words /. float_of_int (trials * total)));
  Buffer.add_string buf
    (Printf.sprintf
       "  \"batched\": { \"seconds\": %.4f, \"execs_per_sec\": %.1f, \
        \"minor_words_per_exec\": %.0f },\n"
       bat_time bat_eps
       (bat_words /. float_of_int (trials * total)));
  Buffer.add_string buf (Printf.sprintf "  \"speedup\": %.2f,\n" exec_speedup);
  Buffer.add_string buf
    (Printf.sprintf "  \"speedup_batched\": %.2f,\n" exec_speedup_batched);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"oracle\": { \"checks\": %d, \"naive_checks_per_sec\": %.1f, \
        \"linked_checks_per_sec\": %.1f, \"batched_checks_per_sec\": %.1f, \
        \"speedup\": %.2f, \"speedup_batched\": %.2f },\n"
       nchecks naive_cps linked_cps obatch_cps
       (linked_cps /. naive_cps)
       (obatch_cps /. naive_cps));
  Buffer.add_string buf
    (Printf.sprintf "  \"verdicts_match\": %b\n" verdicts_match);
  Buffer.add_string buf "}\n";
  let path = "BENCH_vm.json" in
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf
    "VM executor bench (%d execs, gccx-O0 binary):\n\
    \  reference interpreter: %.0f execs/s (%.0f minor words/exec)\n\
    \  linked image + arena:  %.0f execs/s (%.0f minor words/exec)\n\
    \  batched (run_batch):   %.0f execs/s (%.0f minor words/exec)\n\
    \  speedup: %.2fx linked, %.2fx batched   results byte-identical: %b\n\
    \  oracle: %.1f -> %.1f checks/s (%.2fx), batched %.1f (%.2fx), \
     verdicts match: %b\n\
     wrote %s\n\n"
    total ref_eps
    (ref_words /. float_of_int (trials * total))
    lin_eps
    (lin_words /. float_of_int (trials * total))
    bat_eps
    (bat_words /. float_of_int (trials * total))
    exec_speedup exec_speedup_batched execs_match naive_cps linked_cps
    (linked_cps /. naive_cps)
    obatch_cps
    (obatch_cps /. naive_cps)
    verdicts_match path;
  if not verdicts_match then failwith "vm bench: executor mismatch"
