(* Tests for the CompDiff core: oracle verdicts, output normalization,
   timeout escalation, subset studies and triage. *)

open Compdiff

let frontend src =
  match Minic.frontend_of_source src with
  | Ok tp -> tp
  | Error msg -> Alcotest.failf "front end: %s" msg

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- oracle --- *)

let stable_src = "int main() { print(\"ok %d\\n\", getchar()); return 0; }"

let unstable_src =
  "int main() {\n\
   \  int l;\n\
   \  int c = getchar();\n\
   \  if (c > 64) { l = c; }\n\
   \  print(\"%d\\n\", l);\n\
   \  return 0;\n\
   }"

let test_oracle_agree () =
  let o = Oracle.create (frontend stable_src) in
  match Oracle.check o ~input:"A" with
  | Oracle.Agree obs -> Alcotest.(check string) "output" "ok 65\n" obs.Oracle.output
  | Oracle.Diverge _ -> Alcotest.fail "expected agreement"

let test_oracle_diverge () =
  let o = Oracle.create (frontend unstable_src) in
  check_bool "diverges on empty input" true (Oracle.is_divergence (Oracle.check o ~input:""));
  check_bool "agrees on initializing input" false
    (Oracle.is_divergence (Oracle.check o ~input:"Z"))

let test_oracle_find_bug () =
  let o = Oracle.create (frontend unstable_src) in
  match Oracle.find_bug o ~inputs:[ "Z"; "Y"; ""; "X" ] with
  | Some (input, _) -> Alcotest.(check string) "bug input" "" input
  | None -> Alcotest.fail "expected to find the bug-triggering input"

let test_oracle_subset_profiles () =
  (* with two identical-family implementations the uninit bug may vanish *)
  let profiles = [ Cdcompiler.Profiles.gccx "O2"; Cdcompiler.Profiles.gccx "O3" ] in
  let o10 = Oracle.create (frontend unstable_src) in
  let o2 = Oracle.create ~profiles (frontend unstable_src) in
  let d10 = Oracle.is_divergence (Oracle.check o10 ~input:"") in
  let d2 = Oracle.is_divergence (Oracle.check o2 ~input:"") in
  check_bool "full set detects" true d10;
  (* the small same-family subset is allowed to detect or miss; this test
     pins the current behaviour so regressions surface *)
  check_bool "subset result is deterministic" d2
    (Oracle.is_divergence (Oracle.check o2 ~input:""))

let test_oracle_partition () =
  let o = Oracle.create (frontend stable_src) in
  let obs = Oracle.observe o ~input:"A" in
  let classes = Oracle.partition o obs in
  Alcotest.(check (array int)) "all in one class" (Array.make 10 0) classes

let test_oracle_timeout_escalation () =
  (* terminates everywhere, but needs more fuel at -O0 than the base
     budget: escalation must avoid the false positive *)
  let src =
    "int main() {\n\
     \  int s = 0;\n\
     \  for (int i = 0; i < 20000; i++) { s += i % 7; }\n\
     \  print(\"%d\\n\", s);\n\
     \  return 0;\n\
     }"
  in
  let o = Oracle.create ~fuel:60_000 ~max_fuel:4_000_000 (frontend src) in
  match Oracle.check o ~input:"" with
  | Oracle.Agree _ -> ()
  | Oracle.Diverge obs ->
    Alcotest.failf "escalation failed: %s" (Oracle.report_to_string ~input:"" obs)

let test_oracle_all_hang_agrees () =
  let src = "int main() { while (1) { } return 0; }" in
  let o = Oracle.create ~fuel:10_000 ~max_fuel:20_000 (frontend src) in
  match Oracle.check o ~input:"" with
  | Oracle.Agree obs ->
    check_bool "status hang" true (obs.Oracle.status = Cdvm.Trap.Hang)
  | Oracle.Diverge _ -> Alcotest.fail "all-hang must not be a divergence"

let test_oracle_status_ablation () =
  (* same stdout, different exit codes: caught only when comparing status *)
  let src =
    "int main() {\n\
     \  int x;\n\
     \  print(\"fixed\\n\");\n\
     \  return x & 127;\n\
     }"
  in
  let with_status = Oracle.create (frontend src) in
  let without = Oracle.create ~compare_status:false (frontend src) in
  let d1 = Oracle.is_divergence (Oracle.check with_status ~input:"") in
  let d2 = Oracle.is_divergence (Oracle.check without ~input:"") in
  check_bool "status comparison detects" true d1;
  check_bool "output-only misses" false d2

let test_report_format () =
  let o = Oracle.create (frontend unstable_src) in
  match Oracle.check o ~input:"" with
  | Oracle.Diverge obs ->
    let r = Oracle.report_to_string ~input:"" obs in
    check_bool "mentions input" true
      (String.length r > 0 && String.sub r 0 3 = "===")
  | Oracle.Agree _ -> Alcotest.fail "expected divergence"

(* --- normalize --- *)

let test_normalize_timestamps () =
  Alcotest.(check string) "strip ts" "<TS> [Epan WARNING]"
    (Normalize.strip_timestamps "10:44:23.405830 [Epan WARNING]");
  Alcotest.(check string) "no ts untouched" "hello 1:2"
    (Normalize.strip_timestamps "hello 1:2")

let test_normalize_addresses () =
  Alcotest.(check string) "strip addr" "ptr=<ADDR> end"
    (Normalize.strip_hex_addresses "ptr=0x7ffe123 end")

let test_normalize_lines () =
  Alcotest.(check string) "drop marked lines" "keep\nkeep2"
    (Normalize.strip_lines_containing "[random]" "keep\nnoise [random] 42\nkeep2")

let test_normalize_compose () =
  let f = Normalize.compose [ Normalize.strip_timestamps; Normalize.strip_hex_addresses ] in
  Alcotest.(check string) "both" "<TS> at <ADDR>" (f "10:00:00 at 0xdead")

let test_normalize_makes_outputs_agree () =
  (* %p output differs across layouts; address stripping removes the
     divergence *)
  let src = "int g;\nint main() { print(\"ptr %p\\n\", &g); return 0; }" in
  let raw = Oracle.create (frontend src) in
  let filtered =
    Oracle.create ~normalize:Normalize.strip_hex_addresses (frontend src)
  in
  check_bool "raw %p diverges" true (Oracle.is_divergence (Oracle.check raw ~input:""));
  check_bool "normalized agrees" false
    (Oracle.is_divergence (Oracle.check filtered ~input:""))

(* --- subset --- *)

let test_subset_masks () =
  check_int "C(4,2)" 6 (List.length (Subset.masks_of_size ~n:4 ~size:2));
  check_int "C(10,2)" 45 (List.length (Subset.masks_of_size ~n:10 ~size:2));
  check_int "C(10,10)" 1 (List.length (Subset.masks_of_size ~n:10 ~size:10))

let test_subset_detects_mask () =
  let classes = [| 0; 0; 1; 0 |] in
  check_bool "straddles" true (Subset.detects_mask classes 0b0101);
  check_bool "same class" false (Subset.detects_mask classes 0b1011);
  check_bool "single impl" false (Subset.detects_mask classes 0b0100)

let test_subset_study_monotone () =
  (* detection counts never decrease with subset size (max over subsets) *)
  let partitions =
    [ [| 0; 0; 0; 1 |]; [| 0; 1; 1; 1 |]; [| 0; 0; 0; 0 |]; [| 0; 1; 0; 1 |] ]
  in
  let rows = Subset.study ~n:4 partitions in
  check_int "three sizes" 3 (List.length rows);
  let maxima = List.map (fun r -> snd r.Subset.best) rows in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b && monotone rest
    | _ -> true
  in
  check_bool "max detection grows with size" true (monotone maxima)

let test_subset_full_set_detects_all_detectable () =
  let partitions = [ [| 0; 0; 0; 1 |]; [| 0; 0; 0; 0 |]; [| 0; 1; 0; 1 |] ] in
  let full_mask = (1 lsl 4) - 1 in
  check_int "full set detects the 2 detectable bugs" 2
    (Subset.count_detected partitions full_mask)

let test_subset_recommend () =
  let names = List.map (fun p -> p.Cdcompiler.Policy.pname) Cdcompiler.Profiles.all in
  Alcotest.(check (list string)) "recommendation" [ "gccx-O0"; "clangx-O3" ]
    (Subset.recommend ~names ())

(* --- localize (the Section 5 prototype) --- *)

let test_localize_listing1 () =
  (* the first divergent observation must sit in dump_data *)
  let src =
    "int dump_data(int offset, int len) {\n\
     \  if (offset + len > 100) { return -1; }\n\
     \  if (offset + len < offset) { return -1; }\n\
     \  print(\"dumping %d bytes\\n\", len);\n\
     \  return 0;\n\
     }\n\
     int main() { print(\"r=%d\\n\", dump_data(2147483547, 101)); return 0; }"
  in
  let o = Oracle.create (frontend src) in
  match Oracle.check o ~input:"" with
  | Oracle.Agree _ -> Alcotest.fail "expected divergence"
  | Oracle.Diverge obs -> (
    match Localize.of_divergence o (Oracle.binaries o) obs ~input:"" with
    | None -> Alcotest.fail "expected a localization"
    | Some l ->
      check_int "diverges at the first observation" 0 l.Localize.event_index;
      let mentions_dump =
        match (l.Localize.at_a, l.Localize.at_b) with
        | Some a, Some b -> a.Localize.ev_fn = "dump_data" || b.Localize.ev_fn = "dump_data"
        | _ -> false
      in
      check_bool "localized into dump_data" true mentions_dump;
      check_bool "report renders" true (String.length (Localize.to_string l) > 0))

let test_localize_shared_prefix () =
  (* agreement on the first print, divergence on the second: index 1 and
     a shared-prefix context *)
  let src =
    "int main() {\n\
     \  print(\"header\\n\");\n\
     \  int l;\n\
     \  print(\"%d\\n\", l);\n\
     \  return 0;\n\
     }"
  in
  let o = Oracle.create (frontend src) in
  match Oracle.check o ~input:"" with
  | Oracle.Agree _ -> Alcotest.fail "expected divergence"
  | Oracle.Diverge obs -> (
    match Localize.of_divergence o (Oracle.binaries o) obs ~input:"" with
    | None -> Alcotest.fail "expected a localization"
    | Some l ->
      check_int "second observation" 1 l.Localize.event_index;
      check_int "one shared event kept as context" 1 (List.length l.Localize.before))

let test_localize_none_on_status_only () =
  (* divergence via exit code only: traces are identical *)
  let src =
    "int main() {\n\
     \  int x;\n\
     \  print(\"fixed\\n\");\n\
     \  return x & 127;\n\
     }"
  in
  let o = Oracle.create (frontend src) in
  match Oracle.check o ~input:"" with
  | Oracle.Agree _ -> Alcotest.fail "expected divergence"
  | Oracle.Diverge obs ->
    check_bool "no print-level localization" true
      (Localize.of_divergence o (Oracle.binaries o) obs ~input:"" = None)

(* --- triage --- *)

let test_triage_dedup () =
  let o = Oracle.create (frontend unstable_src) in
  let t = Triage.create () in
  (* the same uninit bug via two different non-initializing inputs *)
  List.iter
    (fun input ->
      match Oracle.check o ~input with
      | Oracle.Diverge obs -> ignore (Triage.add t o ~input obs)
      | Oracle.Agree _ -> Alcotest.failf "expected divergence on %S" input)
    [ ""; "!" ];
  check_int "two entries" 2 (Triage.total_count t);
  check_bool "deduplicated to fewer uniques" true (Triage.unique_count t <= 2);
  check_int "representatives match uniques" (Triage.unique_count t)
    (List.length (Triage.representatives t))

(* --- parallel oracle: dedup, incremental escalation, equivalence --- *)

let hang_src = "int main() { while (1) { } return 0; }"

(* terminates everywhere; -O0 needs ~420k fuel, the optimized pipelines
   ~220k, so a 300k base budget forces exactly one escalation round in
   which only the -O0 class is re-run *)
let escalation_src =
  "int main() {\n\
   \  int acc = 0;\n\
   \  int i = 0;\n\
   \  while (i < 20000) { acc = acc + i * 3 + 1; i = i + 1; }\n\
   \  print(\"%d\\n\", acc);\n\
   \  return 0;\n\
   }"

let test_oracle_dedup_classes () =
  let deduped = Oracle.create ~jobs:2 (frontend stable_src) in
  let naive = Oracle.create ~dedup:false (frontend stable_src) in
  check_bool "dedup merges some of the 10 binaries" true (Oracle.class_count deduped < 10);
  check_int "dedup:false keeps 10 classes" 10 (Oracle.class_count naive);
  check_int "one class index per binary" 10 (Array.length (Oracle.classes deduped));
  Array.iter
    (fun c -> check_bool "class index in range" true (c >= 0 && c < Oracle.class_count deduped))
    (Oracle.classes deduped)

let test_oracle_matches_naive () =
  (* the optimized path must be observationally identical to the
     sequential dedup-free reference, including fuel_used *)
  List.iter
    (fun src ->
      let o = Oracle.create ~jobs:2 ~fuel:60_000 ~max_fuel:240_000 (frontend src) in
      List.iter
        (fun input ->
          check_bool
            (Printf.sprintf "observe = observe_naive on %S" input)
            true
            (Oracle.observe o ~input = Oracle.observe_naive o ~input);
          check_bool
            (Printf.sprintf "check = check_naive on %S" input)
            true
            (Oracle.check o ~input = Oracle.check_naive o ~input))
        [ ""; "A"; "Z"; "!" ])
    [ stable_src; unstable_src; hang_src ]

let test_oracle_escalation_keeps_fuel_used () =
  (* regression: observations finished in round 1 must keep their
     original fuel_used when other classes escalate *)
  let o = Oracle.create ~jobs:2 ~fuel:300_000 ~max_fuel:4_800_000 (frontend escalation_src) in
  let obs = Oracle.observe o ~input:"" in
  let finished = List.filter (fun (_, ob) -> ob.Oracle.fuel_used <= 300_000) obs in
  let escalated = List.filter (fun (_, ob) -> ob.Oracle.fuel_used > 300_000) obs in
  check_bool "some binaries finished within the base budget" true (finished <> []);
  check_bool "the -O0 class needed escalation" true (escalated <> []);
  List.iter
    (fun (name, ob) ->
      check_bool
        (name ^ " keeps a sub-budget fuel_used")
        true
        (ob.Oracle.status = Cdvm.Trap.Exit 0 && ob.Oracle.fuel_used < 300_000))
    finished;
  check_bool "identical to the naive escalation" true (obs = Oracle.observe_naive o ~input:"");
  let s = Oracle.stats o in
  check_bool "escalation skipped finished classes" true (s.Oracle.escalation_saved > 0);
  check_bool "dedup skipped duplicate binaries" true (s.Oracle.dedup_saved > 0);
  match Oracle.check o ~input:"" with
  | Oracle.Agree _ -> ()
  | Oracle.Diverge _ -> Alcotest.fail "escalation must converge to agreement"

let test_oracle_stats_invariant () =
  let o = Oracle.create ~jobs:2 (frontend unstable_src) in
  List.iter (fun input -> ignore (Oracle.check o ~input)) [ ""; "A"; "Z" ];
  let s = Oracle.stats o in
  check_int "checks counted" 3 s.Oracle.checks;
  (* every check runs each of the 10 binaries exactly once here (no
     escalation in this program), so the naive total is 30 *)
  check_int "vm_execs + saved = naive execs" 30
    (s.Oracle.vm_execs + s.Oracle.dedup_saved + s.Oracle.escalation_saved);
  check_bool "dedup saved something" true (s.Oracle.dedup_saved > 0);
  Oracle.reset_stats o;
  check_int "reset" 0 (Oracle.stats o).Oracle.checks

(* same token soup the front-end fuzz suite uses *)
let gen_soup =
  let open QCheck.Gen in
  let token =
    oneofl
      [
        "int "; "long "; "double "; "if"; "else"; "while"; "return "; "break";
        "print"; "("; ")"; "{"; "}"; "["; "]"; ";"; ","; "+"; "-"; "*"; "/";
        "%"; "="; "=="; "<"; ">"; "&&"; "||"; "&"; "|"; "^"; "<<"; ">>"; "!";
        "~"; "?"; ":"; "x"; "y"; "foo"; "main"; "0"; "1"; "42"; "2147483647";
        "0x1F"; "7L"; "1.5"; "\"str\""; "'c'"; "__LINE__"; "static "; "for";
        "getchar()"; "malloc"; "free"; " "; "\n"; "//c\n"; "/*c*/";
      ]
  in
  let* n = int_range 0 40 in
  let* parts = list_repeat n token in
  return (String.concat "" parts)

let prop_parallel_oracle_matches_naive =
  QCheck.Test.make
    ~name:"deduped+pooled verdicts = sequential naive on random programs" ~count:80
    (QCheck.make gen_soup)
    (fun soup ->
      let src = "int main() { " ^ soup ^ " ; return 0; }" in
      match Minic.frontend_of_source src with
      | Error _ -> true
      | Ok tp ->
        let o = Oracle.create ~jobs:2 ~fuel:20_000 ~max_fuel:80_000 tp in
        List.for_all
          (fun input -> Oracle.check o ~input = Oracle.check_naive o ~input)
          [ ""; "A"; "zz" ])

let test_triage_signature_canonical () =
  let s1 = Triage.signature_of_partition [| 0; 0; 1; 1 |] in
  let s2 = Triage.signature_of_partition [| 1; 1; 0; 0 |] in
  let s3 = Triage.signature_of_partition [| 0; 1; 0; 1 |] in
  check_bool "renaming-invariant" true (s1 = s2);
  check_bool "different groupings differ" true (s1 <> s3)

let tc name f = Alcotest.test_case name `Quick f

let suites =
  [
    ( "compdiff.oracle",
      [
        tc "agree" test_oracle_agree;
        tc "diverge" test_oracle_diverge;
        tc "find bug" test_oracle_find_bug;
        tc "subset profiles" test_oracle_subset_profiles;
        tc "partition" test_oracle_partition;
        tc "timeout escalation" test_oracle_timeout_escalation;
        tc "all-hang agrees" test_oracle_all_hang_agrees;
        tc "status ablation" test_oracle_status_ablation;
        tc "report format" test_report_format;
      ] );
    ( "compdiff.normalize",
      [
        tc "timestamps" test_normalize_timestamps;
        tc "addresses" test_normalize_addresses;
        tc "line dropping" test_normalize_lines;
        tc "composition" test_normalize_compose;
        tc "%p agreement" test_normalize_makes_outputs_agree;
      ] );
    ( "compdiff.subset",
      [
        tc "mask counts" test_subset_masks;
        tc "detects_mask" test_subset_detects_mask;
        tc "study monotone" test_subset_study_monotone;
        tc "full set" test_subset_full_set_detects_all_detectable;
        tc "recommend" test_subset_recommend;
      ] );
    ( "compdiff.localize",
      [
        tc "listing1" test_localize_listing1;
        tc "shared prefix" test_localize_shared_prefix;
        tc "status-only divergence" test_localize_none_on_status_only;
      ] );
    ( "compdiff.parallel_oracle",
      [
        tc "dedup classes" test_oracle_dedup_classes;
        tc "matches naive reference" test_oracle_matches_naive;
        tc "escalation keeps fuel_used" test_oracle_escalation_keeps_fuel_used;
        tc "stats invariant" test_oracle_stats_invariant;
        QCheck_alcotest.to_alcotest prop_parallel_oracle_matches_naive;
      ] );
    ( "compdiff.triage",
      [
        tc "dedup" test_triage_dedup;
        tc "canonical signature" test_triage_signature_canonical;
      ] );
  ]
