(* Tests for the VM substrate: the memory model (layout, provenance,
   allocator policies, stack reuse), value coercions, traps, coverage
   accounting, and builtin semantics. *)

open Cdvm
open Cdcompiler

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let runtime_of profile = profile.Policy.runtime

let mem_of ?(globals = []) profile = Mem.create (runtime_of profile) globals

let gccx_O0 = Profiles.gccx "O0"
let clangx_O0 = Profiles.clangx "O0"

(* --- globals layout --- *)

let two_globals =
  [
    { Ir.g_name = "a"; g_size = 4; g_init = [ 1L; 2L; 3L; 4L ] };
    { Ir.g_name = "b"; g_size = 2; g_init = [ 9L ] };
  ]

let test_globals_zero_init () =
  let m = mem_of ~globals:two_globals gccx_O0 in
  let ids = Mem.global_ids m in
  let b = Hashtbl.find ids "b" in
  (* b[1] has no initializer: C semantics zero-initialize *)
  let o = Option.get (Mem.obj m b) in
  let v, taint = Mem.read_abs m (o.Mem.base + 1) in
  check_bool "zero" true (v = Value.Vint 0L);
  check_bool "globals are initialized memory" false taint

let test_globals_order_policy () =
  let addr_of m name =
    let ids = Mem.global_ids m in
    (Option.get (Mem.obj m (Hashtbl.find ids name))).Mem.base
  in
  let mg = mem_of ~globals:two_globals gccx_O0 in
  let mc = mem_of ~globals:two_globals clangx_O0 in
  check_bool "gccx: a before b" true (addr_of mg "a" < addr_of mg "b");
  check_bool "clangx reverses global order" true (addr_of mc "a" > addr_of mc "b")

let test_oob_global_resolves_to_neighbor () =
  let m = mem_of ~globals:two_globals gccx_O0 in
  let ids = Mem.global_ids m in
  let a = Hashtbl.find ids "a" in
  let oa = Option.get (Mem.obj m a) in
  (* gccx has no global gap: a[4] is b[0] *)
  let v, _ = Mem.read_abs m (oa.Mem.base + 4) in
  check_bool "a[4] lands on b[0]" true (v = Value.Vint 9L)

(* --- heap allocator --- *)

let test_heap_reuse_policy () =
  (* gccx reuses freed blocks LIFO; clangx-O0 does not *)
  let mg = mem_of gccx_O0 in
  let p1 = Mem.malloc mg 4 in
  ignore (Mem.free mg p1);
  let p2 = Mem.malloc mg 4 in
  check_bool "gccx reuses the block" true
    (Mem.addr_of_ptr mg p1 = Mem.addr_of_ptr mg p2);
  let mc = mem_of clangx_O0 in
  let q1 = Mem.malloc mc 4 in
  ignore (Mem.free mc q1);
  let q2 = Mem.malloc mc 4 in
  check_bool "clangx-O0 allocates fresh" true
    (Mem.addr_of_ptr mc q1 <> Mem.addr_of_ptr mc q2)

let test_heap_free_classification () =
  let m = mem_of gccx_O0 in
  let p = Mem.malloc m 4 in
  check_bool "ok" true (Mem.free m p = `Ok);
  check_bool "double" true (Mem.free m p = `Double);
  check_bool "null" true (Mem.free m Value.null = `Null);
  let q = Mem.malloc m 4 in
  check_bool "interior is invalid" true
    (Mem.free m { q with Value.off = 1 } = `Invalid)

let test_heap_uaf_reads_leftover () =
  let m = mem_of clangx_O0 in
  let p = Mem.malloc m 4 in
  Mem.write_abs m (Mem.addr_of_ptr m p) (Value.Vint 77L) ~taint:false;
  ignore (Mem.free m p);
  (* no reuse at clangx-O0: the stale pointer still reads the old cell *)
  let v, _ = Mem.read_abs m (Mem.addr_of_ptr m p) in
  check_bool "leftover value" true (v = Value.Vint 77L)

let test_malloc_limits () =
  let m = mem_of gccx_O0 in
  check_bool "zero-size is null" true (Value.is_null (Mem.malloc m 0));
  check_bool "negative is null" true (Value.is_null (Mem.malloc m (-3)));
  check_bool "huge is null" true (Value.is_null (Mem.malloc m 100_000_000))

(* --- stack frames --- *)

let slots sizes =
  Array.of_list
    (List.mapi (fun i n -> { Ir.slot_name = Printf.sprintf "s%d" i; slot_size = n }) sizes)

let test_stack_reuse_leftovers () =
  let m = mem_of gccx_O0 in
  let ids = Mem.push_frame m (slots [ 2 ]) in
  let o = Option.get (Mem.obj m ids.(0)) in
  Mem.write_abs m o.Mem.base (Value.Vint 4242L) ~taint:false;
  Mem.pop_frame m;
  (* the next frame of the same shape lands on the same cells *)
  let ids2 = Mem.push_frame m (slots [ 2 ]) in
  let o2 = Option.get (Mem.obj m ids2.(0)) in
  check_int "same address reused" o.Mem.base o2.Mem.base;
  let v, taint = Mem.read_abs m o2.Mem.base in
  check_bool "leftover value visible" true (v = Value.Vint 4242L);
  check_bool "but tainted as uninitialized for the new frame" true taint;
  Mem.pop_frame m

let test_slot_order_policy () =
  let layout_of profile =
    let m = mem_of profile in
    let ids = Mem.push_frame m (slots [ 1; 1 ]) in
    let a = (Option.get (Mem.obj m ids.(0))).Mem.base in
    let b = (Option.get (Mem.obj m ids.(1))).Mem.base in
    Mem.pop_frame m;
    compare a b
  in
  check_bool "families lay slots in opposite orders" true
    (layout_of gccx_O0 <> layout_of clangx_O0)

let test_stack_overflow_trap () =
  let m = mem_of gccx_O0 in
  match
    for _ = 1 to 100_000 do
      ignore (Mem.push_frame m (slots [ 8 ]))
    done
  with
  | () -> Alcotest.fail "expected a stack overflow"
  | exception Mem.Trapped Trap.Stack_overflow -> ()

let test_object_at_resolution () =
  let m = mem_of ~globals:two_globals gccx_O0 in
  let ids = Mem.global_ids m in
  let a = Hashtbl.find ids "a" in
  let oa = Option.get (Mem.obj m a) in
  (match Mem.object_at m (oa.Mem.base + 2) with
  | Some (o, off) ->
    check_int "object" a o.Mem.id;
    check_int "offset" 2 off
  | None -> Alcotest.fail "expected to resolve a[2]");
  check_bool "unmapped address resolves to nothing" true
    (Mem.object_at m 0xDEAD00 = None)

let test_wild_pointer_roundtrip () =
  let m = mem_of ~globals:two_globals gccx_O0 in
  let ids = Mem.global_ids m in
  let a = Hashtbl.find ids "a" in
  let oa = Option.get (Mem.obj m a) in
  let p = Mem.ptr_of_addr m (oa.Mem.base + 1) in
  check_bool "forged pointer has provenance" true (p.Value.obj = a && p.Value.off = 1);
  let wild = Mem.ptr_of_addr m 0x777777 in
  check_bool "unmapped forge is wild" true (Value.is_wild wild)

(* --- trap/status signatures --- *)

let test_segfault_signature_ignores_address () =
  check_bool "same signature" true
    (Trap.equal_status (Trap.Trap (Trap.Segfault 1)) (Trap.Trap (Trap.Segfault 2)));
  check_bool "different kinds differ" false
    (Trap.equal_status (Trap.Trap Trap.Null_deref) (Trap.Trap Trap.Div_by_zero));
  check_bool "exit codes compare" false
    (Trap.equal_status (Trap.Exit 0) (Trap.Exit 1))

(* --- coverage --- *)

let test_coverage_buckets () =
  check_int "0" 0 (Coverage.bucket 0);
  check_int "1" 1 (Coverage.bucket 1);
  check_int "3" 4 (Coverage.bucket 3);
  check_int "10" 16 (Coverage.bucket 10);
  check_int "200" 128 (Coverage.bucket 200)

let test_coverage_merge () =
  let cov = Coverage.create () in
  let virgin = Bytes.make Coverage.size '\000' in
  Coverage.hit cov 42;
  check_bool "first merge is novel" true (Coverage.merge_into ~virgin cov);
  Coverage.reset cov;
  Coverage.hit cov 42;
  check_bool "same edge same count is stale" false (Coverage.merge_into ~virgin cov);
  (* hitting the same edge more times moves to a new bucket *)
  Coverage.reset cov;
  for _ = 1 to 5 do
    Coverage.hit cov 42;
    Coverage.hit cov 99
  done;
  check_bool "new bucket is novel" true (Coverage.merge_into ~virgin cov)

let test_coverage_edges_differ_by_order () =
  let c1 = Coverage.create () in
  Coverage.hit c1 10;
  Coverage.hit c1 20;
  let c2 = Coverage.create () in
  Coverage.hit c2 20;
  Coverage.hit c2 10;
  check_bool "edge hashing is direction-sensitive" true
    (Coverage.count_nonzero c1 = 2 && c1.Coverage.map <> c2.Coverage.map)

(* --- builtins through the interpreter --- *)

let run_src ?(input = "") ?(profile = gccx_O0) src =
  match Minic.frontend_of_source src with
  | Error e -> Alcotest.failf "frontend: %s" e
  | Ok tp ->
    let u = Pipeline.compile profile tp in
    Exec.run ~config:{ Exec.default_config with Exec.input } u

let test_builtin_memset_memcpy () =
  let r =
    run_src
      "int main() {\n\
       \  int a[6];\n\
       \  memset(a, 7, 6);\n\
       \  int b[6];\n\
       \  memcpy(b, a, 6);\n\
       \  print(\"%d %d\\n\", b[0], b[5]);\n\
       \  return 0;\n\
       }"
  in
  Alcotest.(check string) "copied" "7 7\n" r.Exec.stdout

let test_builtin_memcpy_direction_policy () =
  (* overlapping copy: the families copy in opposite directions *)
  let src =
    "int main() {\n\
     \  int a[5];\n\
     \  for (int i = 0; i < 5; i++) a[i] = i + 1;\n\
     \  memcpy(a + 1, a, 4);\n\
     \  print(\"%d %d %d %d %d\\n\", a[0], a[1], a[2], a[3], a[4]);\n\
     \  return 0;\n\
     }"
  in
  let g = run_src ~profile:gccx_O0 src in
  let c = run_src ~profile:clangx_O0 src in
  Alcotest.(check string) "forward smears" "1 1 1 1 1\n" g.Exec.stdout;
  Alcotest.(check string) "backward shifts" "1 1 2 3 4\n" c.Exec.stdout

let test_builtin_strlen () =
  let r =
    run_src "int main() { print(\"%d %d\\n\", strlen(\"hello\"), strlen(\"\")); return 0; }"
  in
  Alcotest.(check string) "lengths" "5 0\n" r.Exec.stdout

let test_builtin_peek_input_len () =
  let r =
    run_src ~input:"xyz"
      "int main() { print(\"%d %d %d %d\\n\", input_len(), peek(0), peek(2), peek(9)); return 0; }"
  in
  Alcotest.(check string) "peeks" "3 120 122 -1\n" r.Exec.stdout

let test_builtin_exit_code () =
  let r = run_src "int main() { exit(7); return 0; }" in
  check_bool "exit(7)" true (r.Exec.status = Trap.Exit 7);
  let r2 = run_src "int main() { abort(); return 0; }" in
  check_bool "abort traps" true (r2.Exec.status = Trap.Trap Trap.Abort_called)

let test_output_limit () =
  let r =
    run_src ~profile:gccx_O0
      "int main() { while (1) { print(\"aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\\n\"); } return 0; }"
  in
  check_bool "output limit trap" true (r.Exec.status = Trap.Trap Trap.Output_limit)

let test_fuel_accounting () =
  let r1 = run_src "int main() { return 0; }" in
  let r2 =
    run_src "int main() { int s = 0; for (int i = 0; i < 100; i++) s += i; return s & 0; }"
  in
  check_bool "loops consume more fuel" true (r2.Exec.fuel_used > r1.Exec.fuel_used)

let test_format_specifiers () =
  let r =
    run_src
      "int main() {\n\
       \  print(\"%d %u %x %c %ld %f %%\\n\", -1, -1, 255, 65, 1234567890123L, 1.5);\n\
       \  return 0;\n\
       }"
  in
  Alcotest.(check string) "formats" "-1 4294967295 ff A 1234567890123 1.500000 %\n"
    r.Exec.stdout

(* --- linked-image executor vs reference interpreter --- *)

let triple (r : Exec.result) = (r.Exec.stdout, r.Exec.status, r.Exec.fuel_used)

(* run the reference once and the linked executor twice through the same
   arena (the second run exercises arena reuse after reset) *)
let check_linked ?(input = "") ?(fuel = 200_000) profile src =
  match Minic.frontend_of_source src with
  | Error e -> Alcotest.failf "frontend: %s" e
  | Ok tp ->
    let u = Pipeline.compile profile tp in
    let config = { Exec.default_config with Exec.input; fuel } in
    let want = triple (Exec.run ~config u) in
    let img = Image.link u in
    let arena = Arena.create img in
    let got1 = triple (Exec.run_linked ~config ~arena img) in
    let got2 = triple (Exec.run_linked ~config ~arena img) in
    check_bool "linked matches reference" true (got1 = want);
    check_bool "arena reuse is deterministic" true (got2 = want)

let check_linked_all_profiles ?input ?fuel src =
  List.iter (fun p -> check_linked ?input ?fuel p src) Profiles.all

let test_linked_basic () =
  check_linked_all_profiles
    "int main() {\n\
     \  int s = 0;\n\
     \  for (int i = 0; i < 20; i++) s += i * 3;\n\
     \  print(\"%d\\n\", s);\n\
     \  return s & 1;\n\
     }"

let test_linked_uninit_junk () =
  (* uninitialized reads surface the per-profile junk policy: the linked
     executor must reproduce the exact junk values, and arena reuse must
     not change them (frame_seq and stack leftovers restart per run) *)
  check_linked_all_profiles ~input:"AB"
    "int helper(int x) { int a[3]; a[0] = x; return a[0] + a[2]; }\n\
     int main() {\n\
     \  int v;\n\
     \  print(\"%d %d %d\\n\", v, helper(getchar()), helper(getchar()));\n\
     \  return 0;\n\
     }"

let test_linked_heap_and_memcpy () =
  check_linked_all_profiles ~input:"x"
    "int main() {\n\
     \  int *p = malloc(6);\n\
     \  memset(p, getchar(), 6);\n\
     \  int q[6];\n\
     \  memcpy(q, p, 6);\n\
     \  memcpy(q + 1, q, 4);\n\
     \  free(p);\n\
     \  int *r = malloc(4);\n\
     \  print(\"%d %d %d\\n\", q[1], q[4], r[0]);\n\
     \  return 0;\n\
     }"

let test_linked_traps () =
  check_linked_all_profiles
    "int main() { int a[2]; int i = 5; print(\"%d\\n\", a[i * 7]); return 0; }";
  check_linked_all_profiles "int main() { int z = 0; return 1 / z; }"

let test_linked_hang_fuel () =
  (* fuel exhaustion must happen at the identical instruction count *)
  check_linked_all_profiles ~fuel:5_000
    "int main() { int i = 0; while (1) { i = i + 1; } return i; }"

let test_linked_output_limit () =
  check_linked_all_profiles ~fuel:10_000_000
    "int main() { while (1) { print(\"aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\\n\"); } return 0; }"

let test_linked_missing_main () =
  (* the frontend requires main, so build the unit directly *)
  let f =
    {
      Ir.name = "f";
      nparams = 0;
      nregs = 1;
      slots = [||];
      code = [| Ir.Iconst (0, Ir.ImmI 1L); Ir.Iret (Some (Ir.Reg 0)) |];
      code_lines = [| 1; 1 |];
    }
  in
  let u =
    {
      Ir.funcs = [ ("f", f) ];
      globals = [];
      runtime = gccx_O0.Policy.runtime;
      impl_name = "test";
    }
  in
  let img = Image.link u in
  check_bool "no entry" true (img.Image.entry < 0);
  match Exec.run_linked img with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_linked_unknown_builtin_deferred () =
  (* linking a unit that calls an unresolvable builtin must succeed —
     the fault is deferred to execution of the call site, exactly like
     the reference interpreter (the frontend never emits one, so build
     the unit directly) *)
  let func name code =
    {
      Ir.name;
      nparams = 0;
      nregs = 1;
      slots = [||];
      code;
      code_lines = Array.map (fun _ -> 1) code;
    }
  in
  let unit_ funcs =
    {
      Ir.funcs;
      globals = [];
      runtime = gccx_O0.Policy.runtime;
      impl_name = "test";
    }
  in
  let bad_call = Ir.Ibuiltin (Some 0, "frobnicate", []) in
  let ret0 = [| Ir.Iconst (0, Ir.ImmI 0L); Ir.Iret (Some (Ir.Reg 0)) |] in
  (* unknown builtin in dead code: links, runs clean *)
  let dead =
    unit_ [ ("dead", func "dead" [| bad_call; Ir.Iret (Some (Ir.Reg 0)) |]);
            ("main", func "main" ret0) ]
  in
  let img = Image.link dead in
  check_bool "dead unknown builtin is inert" true
    (triple (Exec.run_linked img) = triple (Exec.run dead));
  (* unknown builtin actually reached: the deferred fault fires *)
  let live =
    unit_ [ ("main", func "main" [| bad_call; Ir.Iret (Some (Ir.Reg 0)) |]) ]
  in
  let img2 = Image.link live in
  match Exec.run_linked img2 with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_arena_wrong_image_rejected () =
  let compile src =
    match Minic.frontend_of_source src with
    | Ok tp -> Image.link (Pipeline.compile gccx_O0 tp)
    | Error e -> Alcotest.failf "frontend: %s" e
  in
  let img1 = compile "int main() { return 0; }" in
  let img2 = compile "int main() { return 1; }" in
  let arena = Arena.create img1 in
  match Exec.run_linked ~arena img2 with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* same token soup the other fuzz suites use *)
let gen_soup =
  let open QCheck.Gen in
  let token =
    oneofl
      [
        "int "; "long "; "double "; "if"; "else"; "while"; "return "; "break";
        "print"; "("; ")"; "{"; "}"; "["; "]"; ";"; ","; "+"; "-"; "*"; "/";
        "%"; "="; "=="; "<"; ">"; "&&"; "||"; "&"; "|"; "^"; "<<"; ">>"; "!";
        "~"; "?"; ":"; "x"; "y"; "foo"; "main"; "0"; "1"; "42"; "2147483647";
        "0x1F"; "7L"; "1.5"; "\"str\""; "'c'"; "__LINE__"; "static "; "for";
        "getchar()"; "malloc"; "free"; " "; "\n"; "//c\n"; "/*c*/";
      ]
  in
  let* n = int_range 0 40 in
  let* parts = list_repeat n token in
  return (String.concat "" parts)

let prop_linked_matches_reference =
  QCheck.Test.make
    ~name:"linked executor = reference interpreter on random programs" ~count:60
    (QCheck.make gen_soup)
    (fun soup ->
      let src = "int main() { " ^ soup ^ " ; return 0; }" in
      match Minic.frontend_of_source src with
      | Error _ -> true
      | Ok tp ->
        List.for_all
          (fun profile ->
            let u = Pipeline.compile profile tp in
            let img = Image.link u in
            let arena = Arena.create img in
            List.for_all
              (fun input ->
                let config =
                  { Exec.default_config with Exec.input; fuel = 20_000 }
                in
                let want = triple (Exec.run ~config u) in
                triple (Exec.run_linked ~config ~arena img) = want
                && triple (Exec.run_linked ~config ~arena img) = want)
              [ ""; "A"; "zz" ])
          Profiles.all)

let prop_run_batch_matches_run_linked =
  QCheck.Test.make
    ~name:"run_batch = map run_linked (shuffled order, arena reuse)" ~count:30
    (QCheck.make QCheck.Gen.(pair gen_soup (int_bound 1000)))
    (fun (soup, salt) ->
      let src = "int main() { " ^ soup ^ " ; return 0; }" in
      match Minic.frontend_of_source src with
      | Error _ -> true
      | Ok tp ->
        List.for_all
          (fun profile ->
            let u = Pipeline.compile profile tp in
            let img = Image.link u in
            let arena = Arena.create img in
            (* duplicated inputs in a salt-rotated order: batching must
               be insensitive to both *)
            let base = [| ""; "A"; "zz"; "A"; "\x00\x01" |] in
            let n = Array.length base in
            let inputs = Array.init n (fun i -> base.((i + salt) mod n)) in
            let config = { Exec.default_config with Exec.fuel = 20_000 } in
            let batch = Exec.run_batch ~config ~arena img ~inputs in
            let seq =
              Array.map
                (fun input ->
                  Exec.run_linked ~config:{ config with Exec.input } ~arena img)
                inputs
            in
            (* and again on the same arena: reuse must not leak state *)
            let batch2 = Exec.run_batch ~config ~arena img ~inputs in
            Array.for_all2 (fun a b -> triple a = triple b) batch seq
            && Array.for_all2 (fun a b -> triple a = triple b) batch batch2)
          Profiles.all)

let tc name f = Alcotest.test_case name `Quick f

let suites =
  [
    ( "vm.globals",
      [
        tc "zero init" test_globals_zero_init;
        tc "order policy" test_globals_order_policy;
        tc "OOB neighbour" test_oob_global_resolves_to_neighbor;
      ] );
    ( "vm.heap",
      [
        tc "reuse policy" test_heap_reuse_policy;
        tc "free classification" test_heap_free_classification;
        tc "UAF leftover" test_heap_uaf_reads_leftover;
        tc "malloc limits" test_malloc_limits;
      ] );
    ( "vm.stack",
      [
        tc "reuse leftovers" test_stack_reuse_leftovers;
        tc "slot order policy" test_slot_order_policy;
        tc "overflow trap" test_stack_overflow_trap;
        tc "object resolution" test_object_at_resolution;
        tc "wild pointers" test_wild_pointer_roundtrip;
      ] );
    ("vm.trap", [ tc "signatures" test_segfault_signature_ignores_address ]);
    ( "vm.coverage",
      [
        tc "buckets" test_coverage_buckets;
        tc "merge" test_coverage_merge;
        tc "edge direction" test_coverage_edges_differ_by_order;
      ] );
    ( "vm.builtins",
      [
        tc "memset/memcpy" test_builtin_memset_memcpy;
        tc "memcpy direction policy" test_builtin_memcpy_direction_policy;
        tc "strlen" test_builtin_strlen;
        tc "peek/input_len" test_builtin_peek_input_len;
        tc "exit/abort" test_builtin_exit_code;
        tc "output limit" test_output_limit;
        tc "fuel accounting" test_fuel_accounting;
        tc "format specifiers" test_format_specifiers;
      ] );
    ( "vm.linked",
      [
        tc "basic program, all profiles" test_linked_basic;
        tc "uninit junk reproduced" test_linked_uninit_junk;
        tc "heap + memcpy direction" test_linked_heap_and_memcpy;
        tc "traps" test_linked_traps;
        tc "hang at identical fuel" test_linked_hang_fuel;
        tc "output limit" test_linked_output_limit;
        tc "missing main" test_linked_missing_main;
        tc "unknown builtin deferred fault" test_linked_unknown_builtin_deferred;
        tc "arena bound to its image" test_arena_wrong_image_rejected;
        QCheck_alcotest.to_alcotest prop_linked_matches_reference;
        QCheck_alcotest.to_alcotest prop_run_batch_matches_run_linked;
      ] );
  ]
