(* Tests for the greybox fuzzer and the CompDiff-AFL++ integration. *)

let frontend src =
  match Minic.frontend_of_source src with
  | Ok tp -> tp
  | Error msg -> Alcotest.failf "front end: %s" msg

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- mutators --- *)

let test_mutators_deterministic () =
  let a = Cdutil.Rng.create 5 and b = Cdutil.Rng.create 5 in
  Alcotest.(check string) "same seed, same mutation"
    (Fuzz.Mutator.havoc a "hello world")
    (Fuzz.Mutator.havoc b "hello world")

let test_mutators_change_input () =
  let rng = Cdutil.Rng.create 7 in
  let changed = ref 0 in
  for _ = 1 to 50 do
    if Fuzz.Mutator.havoc rng "some input bytes" <> "some input bytes" then incr changed
  done;
  check_bool "mutations usually change the input" true (!changed > 40)

let test_mutators_handle_empty () =
  let rng = Cdutil.Rng.create 9 in
  for _ = 1 to 50 do
    ignore (Fuzz.Mutator.havoc rng "");
    ignore (Fuzz.Mutator.splice rng "" "")
  done

let test_splice_mixes () =
  let rng = Cdutil.Rng.create 11 in
  let s = Fuzz.Mutator.splice rng (String.make 20 'a') (String.make 20 'b') in
  check_bool "non-empty" true (String.length s > 0)

(* --- queue --- *)

let test_queue_roundrobin () =
  let q = Fuzz.Queue.create () in
  ignore (Fuzz.Queue.add q ~data:"a" ~fuel_used:10 ~found_at:0);
  ignore (Fuzz.Queue.add q ~data:"b" ~fuel_used:10 ~found_at:1);
  let s1 = Fuzz.Queue.select q and s2 = Fuzz.Queue.select q and s3 = Fuzz.Queue.select q in
  Alcotest.(check string) "cycles" "a" s1.Fuzz.Queue.data;
  Alcotest.(check string) "cycles" "b" s2.Fuzz.Queue.data;
  Alcotest.(check string) "wraps" "a" s3.Fuzz.Queue.data

(* regression for the cursor-drift bug: with an unbounded cursor reduced
   [mod n] at selection time, a queue growing mid-cycle shifts the
   meaning of the cursor — after [add a; add b; select x3; add c] the
   old code re-served "a" (visited twice this cycle) and pushed "c" a
   full extra cycle out.  The explicit wrap keeps the sweep front
   stable: the next selections must be "b" then "c". *)
let test_queue_growth_no_drift () =
  let q = Fuzz.Queue.create () in
  ignore (Fuzz.Queue.add q ~data:"a" ~fuel_used:10 ~found_at:0);
  ignore (Fuzz.Queue.add q ~data:"b" ~fuel_used:10 ~found_at:1);
  for _ = 1 to 3 do ignore (Fuzz.Queue.select q) done;
  (* cursor sits just past "a" on the second sweep *)
  ignore (Fuzz.Queue.add q ~data:"c" ~fuel_used:10 ~found_at:2);
  Alcotest.(check string) "sweep continues at b" "b"
    (Fuzz.Queue.select q).Fuzz.Queue.data;
  Alcotest.(check string) "fresh seed served this sweep" "c"
    (Fuzz.Queue.select q).Fuzz.Queue.data

(* one full sweep (n consecutive selects, no adds in between) serves
   every entry exactly once, wherever the cursor starts *)
let test_queue_sweep_covers_all () =
  let q = Fuzz.Queue.create () in
  for i = 0 to 4 do
    ignore (Fuzz.Queue.add q ~data:(string_of_int i) ~fuel_used:1 ~found_at:i)
  done;
  (* desynchronize the cursor from position 0 *)
  for _ = 1 to 7 do ignore (Fuzz.Queue.select q) done;
  let seen = Hashtbl.create 8 in
  for _ = 1 to Fuzz.Queue.length q do
    let e = Fuzz.Queue.select q in
    Alcotest.(check bool) "no repeat within a sweep" false
      (Hashtbl.mem seen e.Fuzz.Queue.id);
    Hashtbl.replace seen e.Fuzz.Queue.id ()
  done;
  check_int "every entry visited" (Fuzz.Queue.length q) (Hashtbl.length seen)

(* model-based property: the queue against a reference model (plain list
   plus an explicitly wrapped cursor) over random add/select programs *)
let queue_props =
  let open QCheck in
  let ops_gen =
    (* true = add (with a fresh payload), false = select *)
    small_list bool
  in
  [
    Test.make ~name:"Queue.select agrees with the wrapped-cursor model"
      ~count:300 ops_gen (fun ops ->
        let q = Fuzz.Queue.create () in
        let model = ref [] (* reversed *) and cursor = ref 0 and k = ref 0 in
        List.for_all
          (fun is_add ->
            if is_add || !model = [] then begin
              let data = string_of_int !k in
              incr k;
              ignore (Fuzz.Queue.add q ~data ~fuel_used:1 ~found_at:!k);
              model := data :: !model;
              true
            end
            else begin
              let entries = List.rev !model in
              if !cursor >= List.length entries then cursor := 0;
              let expect = List.nth entries !cursor in
              incr cursor;
              (Fuzz.Queue.select q).Fuzz.Queue.data = expect
            end)
          ops);
  ]

let test_queue_energy () =
  let q = Fuzz.Queue.create () in
  let small = Fuzz.Queue.add q ~data:"ab" ~fuel_used:100 ~found_at:0 in
  let large =
    Fuzz.Queue.add q ~data:(String.make 1000 'x') ~fuel_used:50_000 ~found_at:0
  in
  check_bool "small fast seeds get more energy" true
    (Fuzz.Queue.energy q small > Fuzz.Queue.energy q large)

(* the fitness schedule: coverage novelty and oracle divergence add
   energy on top of the favored heuristic *)
let test_queue_energy_fitness () =
  let q = Fuzz.Queue.create () in
  let plain = Fuzz.Queue.add q ~data:"a" ~fuel_used:100 ~found_at:0 in
  let novel =
    Fuzz.Queue.add q ~novelty:6 ~data:"b" ~fuel_used:100 ~found_at:0
  in
  let divergent =
    Fuzz.Queue.add q ~divergent:true ~data:"c" ~fuel_used:100 ~found_at:0
  in
  check_bool "novelty earns energy" true
    (Fuzz.Queue.energy q novel > Fuzz.Queue.energy q plain);
  check_bool "divergence earns energy" true
    (Fuzz.Queue.energy q divergent > Fuzz.Queue.energy q plain)

(* found_at is live (the satellite bugfix): a seed found late in the
   campaign outranks an otherwise-identical early one *)
let test_queue_energy_exploration () =
  let q = Fuzz.Queue.create () in
  let early = Fuzz.Queue.add q ~data:"a" ~fuel_used:100 ~found_at:10 in
  let late = Fuzz.Queue.add q ~data:"b" ~fuel_used:100 ~found_at:1_000 in
  check_bool "late finds get exploration energy" true
    (Fuzz.Queue.energy q late > Fuzz.Queue.energy q early)

(* --- coverage-guided loop --- *)

(* a program with input-dependent branches: coverage must grow and the
   queue must collect new seeds *)
let branchy_src =
  "int main() {\n\
   \  int a = getchar();\n\
   \  if (a == 77) {\n\
   \    int b = getchar();\n\
   \    if (b == 88) { print(\"deep\\n\"); }\n\
   \    else { print(\"mid\\n\"); }\n\
   \  }\n\
   \  if (a > 100) { print(\"high\\n\"); }\n\
   \  return 0;\n\
   }"

let test_fuzzer_grows_queue () =
  let u = Cdcompiler.Pipeline.compile Cdcompiler.Profiles.fuzz_profile (frontend branchy_src) in
  let c =
    Fuzz.Fuzzer.run
      ~config:{ Fuzz.Fuzzer.default_config with Fuzz.Fuzzer.max_execs = 1_500; seeds = [ "MX" ] }
      u
  in
  check_bool "several seeds found" true (List.length c.Fuzz.Fuzzer.queue >= 2);
  check_bool "edges covered" true (c.Fuzz.Fuzzer.edges_covered > 0);
  check_int "exec budget respected" 1_500 c.Fuzz.Fuzzer.execs

(* regression: [seeds = []] used to crash in the deterministic stage
   ([List.hd] of the empty corpus); it now falls back to the empty
   input and completes the full budget *)
let test_fuzzer_empty_seeds () =
  let u = Cdcompiler.Pipeline.compile Cdcompiler.Profiles.fuzz_profile (frontend branchy_src) in
  let c =
    Fuzz.Fuzzer.run
      ~config:{ Fuzz.Fuzzer.default_config with Fuzz.Fuzzer.max_execs = 500; seeds = [] }
      u
  in
  check_int "budget spent despite empty corpus" 500 c.Fuzz.Fuzzer.execs;
  check_bool "queue seeded with fallback input" true
    (List.length c.Fuzz.Fuzzer.queue >= 1)

let test_fuzzer_single_byte_seed () =
  let u = Cdcompiler.Pipeline.compile Cdcompiler.Profiles.fuzz_profile (frontend branchy_src) in
  let c =
    Fuzz.Fuzzer.run
      ~config:{ Fuzz.Fuzzer.default_config with Fuzz.Fuzzer.max_execs = 1_000; seeds = [ "M" ] }
      u
  in
  check_int "budget spent" 1_000 c.Fuzz.Fuzzer.execs;
  check_bool "edges covered" true (c.Fuzz.Fuzzer.edges_covered > 0)

let test_fuzzer_reproducible () =
  let u = Cdcompiler.Pipeline.compile Cdcompiler.Profiles.fuzz_profile (frontend branchy_src) in
  let run () =
    let c =
      Fuzz.Fuzzer.run
        ~config:{ Fuzz.Fuzzer.default_config with Fuzz.Fuzzer.max_execs = 600; rng_seed = 42 }
        u
    in
    List.map (fun e -> e.Fuzz.Queue.data) c.Fuzz.Fuzzer.queue
  in
  Alcotest.(check (list string)) "identical campaigns" (run ()) (run ())

let test_fuzzer_finds_crash () =
  (* crash guarded by a 1-byte comparison: easily reached *)
  let src =
    "int main() {\n\
     \  int a = getchar();\n\
     \  if (a == 75) { int *p = (int *) 0; return *p; }\n\
     \  return 0;\n\
     }"
  in
  let u = Cdcompiler.Pipeline.compile Cdcompiler.Profiles.fuzz_profile (frontend src) in
  let c =
    Fuzz.Fuzzer.run
      ~config:{ Fuzz.Fuzzer.default_config with Fuzz.Fuzzer.max_execs = 3_000; seeds = [ "K" ] }
      u
  in
  check_bool "crash found" true (List.length c.Fuzz.Fuzzer.crashes >= 1)

let test_fuzzer_sanitizer_reports () =
  let src =
    "int main() {\n\
     \  int a = getchar();\n\
     \  int buf[4];\n\
     \  buf[0] = 0;\n\
     \  if (a >= 52) { buf[a - 48] = 7; }\n\
     \  return buf[0];\n\
     }"
  in
  let u = Cdcompiler.Pipeline.compile Cdcompiler.Profiles.fuzz_profile (frontend src) in
  let c =
    Fuzz.Fuzzer.run
      ~config:
        {
          Fuzz.Fuzzer.default_config with
          Fuzz.Fuzzer.max_execs = 3_000;
          seeds = [ "0" ];
          hooks = Sanitizers.Asan.hooks;
        }
      u
  in
  check_bool "ASan report found while fuzzing" true
    (List.length c.Fuzz.Fuzzer.san_reports >= 1)

(* regression for the shared-dedup bug: crash signatures and sanitizer
   messages used to go through one table, so a trap string and a
   sanitizer message that collide (e.g. both "divide-by-zero")
   suppressed each other's first report.  Feed the bookkeeping a trap
   and a sanitizer report with the same signature: both must be kept. *)
let test_dedup_tables_split () =
  let u =
    Cdcompiler.Pipeline.compile Cdcompiler.Profiles.fuzz_profile
      (frontend "int main() { return 0; }")
  in
  let image = Cdvm.Image.link u in
  let st =
    {
      Fuzz.Fuzzer.target = u;
      image;
      arena = Cdvm.Arena.create image;
      cfg = Fuzz.Fuzzer.default_config;
      rng = Cdutil.Rng.create 1;
      cov = Cdvm.Coverage.create ();
      virgin = Bytes.make Cdvm.Coverage.size '\000';
      queue = Fuzz.Queue.create ();
      execs = 2;
      crashes = [];
      san_reports = [];
      crash_sigs = Hashtbl.create 4;
      san_sigs = Hashtbl.create 4;
    }
  in
  let result status =
    { Cdvm.Exec.stdout = ""; status; fuel_used = 10 }
  in
  Fuzz.Fuzzer.process st "a"
    (result (Cdvm.Trap.Trap Cdvm.Trap.Div_by_zero))
    ~novelty:0;
  Fuzz.Fuzzer.process st "b"
    (result (Cdvm.Trap.San_report "divide-by-zero"))
    ~novelty:0;
  check_int "crash recorded" 1 (List.length st.Fuzz.Fuzzer.crashes);
  check_int "sanitizer report recorded despite colliding signature" 1
    (List.length st.Fuzz.Fuzzer.san_reports);
  (* and each table still dedups within its own namespace *)
  Fuzz.Fuzzer.process st "c"
    (result (Cdvm.Trap.Trap Cdvm.Trap.Div_by_zero))
    ~novelty:0;
  Fuzz.Fuzzer.process st "d"
    (result (Cdvm.Trap.San_report "divide-by-zero"))
    ~novelty:0;
  check_int "duplicate crash deduped" 1 (List.length st.Fuzz.Fuzzer.crashes);
  check_int "duplicate sanitizer report deduped" 1
    (List.length st.Fuzz.Fuzzer.san_reports)

(* --- CompDiff-AFL++ --- *)

let unstable_parser_src =
  (* divergence only on a guarded path: the fuzzer must find the byte *)
  "int main() {\n\
   \  int tag = getchar();\n\
   \  if (tag == 85) {\n\
   \    int l;\n\
   \    print(\"field=%d\\n\", l);\n\
   \  } else {\n\
   \    print(\"tag=%d\\n\", tag);\n\
   \  }\n\
   \  return 0;\n\
   }"

let test_compdiff_afl_finds_divergence () =
  let c =
    Fuzz.Compdiff_afl.run
      ~config:
        {
          Fuzz.Compdiff_afl.default_config with
          Fuzz.Compdiff_afl.max_execs = 1_200;
          seeds = [ "T" ];
        }
      (frontend unstable_parser_src)
  in
  check_bool "divergence found" true (Fuzz.Compdiff_afl.found_divergence c);
  check_bool "oracle ran" true (c.Fuzz.Compdiff_afl.diff_checks > 0)

let test_compdiff_afl_stable_program_clean () =
  let c =
    Fuzz.Compdiff_afl.run
      ~config:
        { Fuzz.Compdiff_afl.default_config with Fuzz.Compdiff_afl.max_execs = 800 }
      (frontend branchy_src)
  in
  check_int "no divergence on stable program" 0
    (Compdiff.Triage.total_count c.Fuzz.Compdiff_afl.diffs)

let test_compdiff_afl_diff_every () =
  let c =
    Fuzz.Compdiff_afl.run
      ~config:
        {
          Fuzz.Compdiff_afl.default_config with
          Fuzz.Compdiff_afl.max_execs = 400;
          diff_every = 4;
        }
      (frontend branchy_src)
  in
  check_bool "reduced oracle rate" true
    (c.Fuzz.Compdiff_afl.diff_checks * 4 <= c.Fuzz.Compdiff_afl.fuzz.Fuzz.Fuzzer.execs + 4)

(* the Section 5 extension: a previously-unseen divergence signature
   makes the input interesting even without coverage gain *)
let test_divergence_feedback_mechanism () =
  (* straight-line program: every input takes the same path, so coverage
     never grows after the first execution; masking the junk with the
     input byte makes different bytes group the implementations
     differently, i.e. produce distinct divergence signatures *)
  let src =
    "int main() {\n\
     \  int junk;\n\
     \  print(\"%d\\n\", junk & getchar());\n\
     \  return 0;\n\
     }"
  in
  let run feedback =
    let c =
      Fuzz.Compdiff_afl.run
        ~config:
          {
            Fuzz.Compdiff_afl.default_config with
            Fuzz.Compdiff_afl.max_execs = 300;
            seeds = [ "A" ];
            divergence_feedback = feedback;
          }
        (frontend src)
    in
    List.length c.Fuzz.Compdiff_afl.fuzz.Fuzz.Fuzzer.queue
  in
  let with_fb = run true and without = run false in
  check_bool "feedback enqueues divergent inputs" true (with_fb > without)

let tc name f = Alcotest.test_case name `Quick f

let suites =
  [
    ( "fuzz.mutator",
      [
        tc "deterministic" test_mutators_deterministic;
        tc "changes input" test_mutators_change_input;
        tc "empty input" test_mutators_handle_empty;
        tc "splice" test_splice_mixes;
      ] );
    ( "fuzz.queue",
      [
        tc "round robin" test_queue_roundrobin;
        tc "growth keeps sweep front" test_queue_growth_no_drift;
        tc "sweep covers all" test_queue_sweep_covers_all;
        tc "energy" test_queue_energy;
        tc "energy fitness" test_queue_energy_fitness;
        tc "energy exploration" test_queue_energy_exploration;
      ]
      @ List.map QCheck_alcotest.to_alcotest queue_props );
    ( "fuzz.fuzzer",
      [
        tc "queue grows" test_fuzzer_grows_queue;
        tc "empty seed corpus" test_fuzzer_empty_seeds;
        tc "single-byte seed" test_fuzzer_single_byte_seed;
        tc "reproducible" test_fuzzer_reproducible;
        tc "finds crash" test_fuzzer_finds_crash;
        tc "sanitizer integration" test_fuzzer_sanitizer_reports;
        tc "crash/sanitizer dedup tables split" test_dedup_tables_split;
      ] );
    ( "fuzz.compdiff_afl",
      [
        tc "finds divergence" test_compdiff_afl_finds_divergence;
        tc "stable program clean" test_compdiff_afl_stable_program_clean;
        tc "diff_every" test_compdiff_afl_diff_every;
        tc "divergence feedback" test_divergence_feedback_mechanism;
      ] );
  ]
