(* Tests for the MiniC front end: lexer, parser, pretty-printer round trip,
   type checker (acceptance and rejection). *)

open Minic

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let parse_ok src =
  match Parser.parse_program_result src with
  | Ok p -> p
  | Error msg -> Alcotest.failf "unexpected parse error: %s" msg

let parse_err src =
  match Parser.parse_program_result src with
  | Ok _ -> Alcotest.failf "expected a parse error for: %s" src
  | Error _ -> ()

let typecheck_ok src =
  match Minic.frontend_of_source src with
  | Ok tp -> tp
  | Error msg -> Alcotest.failf "unexpected front-end error: %s" msg

let typecheck_err src =
  match Minic.frontend_of_source src with
  | Ok _ -> Alcotest.failf "expected a type error for: %s" src
  | Error _ -> ()

(* --- lexer --- *)

let test_lex_basic () =
  let toks = Lexer.tokenize "int x = 42;" in
  check_int "token count (incl. eof)" 6 (List.length toks)

let test_lex_line_tracking () =
  let toks = Lexer.tokenize "int\nx\n=\n1;" in
  let lines = List.map (fun t -> t.Lexer.tline) toks in
  Alcotest.(check (list int)) "lines" [ 1; 2; 3; 4; 4; 4 ] lines

let test_lex_comments () =
  let toks = Lexer.tokenize "// comment\nint /* inline */ x;" in
  check_int "comments skipped" 4 (List.length toks)

let test_lex_operators () =
  let toks = Lexer.tokenize "<< >> <= >= == != && || += -= *= ++ --" in
  check_int "all multi-char operators" 14 (List.length toks)

let test_lex_literals () =
  let open Lexer in
  (match tokenize "0x10" with
  | [ { tok = INT 16L; _ }; _ ] -> ()
  | _ -> Alcotest.fail "hex literal");
  (match tokenize "7L" with
  | [ { tok = LONGLIT 7L; _ }; _ ] -> ()
  | _ -> Alcotest.fail "long literal");
  (match tokenize "1.5" with
  | [ { tok = FLOAT 1.5; _ }; _ ] -> ()
  | _ -> Alcotest.fail "float literal");
  (match tokenize "'A'" with
  | [ { tok = INT 65L; _ }; _ ] -> ()
  | _ -> Alcotest.fail "char literal");
  match tokenize "\"a\\n\"" with
  | [ { tok = STR "a\n"; _ }; _ ] -> ()
  | _ -> Alcotest.fail "string escape"

let test_lex_errors () =
  (match Lexer.tokenize "@" with
  | exception Lexer.Error _ -> ()
  | _ -> Alcotest.fail "expected lex error");
  match Lexer.tokenize "\"unterminated" with
  | exception Lexer.Error _ -> ()
  | _ -> Alcotest.fail "expected lex error"

(* --- parser --- *)

let test_parse_minimal () =
  let p = parse_ok "int main() { return 0; }" in
  check_int "one function" 1 (List.length p.Ast.funcs)

let test_parse_globals () =
  let p = parse_ok "int g; int buf[10]; int init = 5; int tab[3] = {1, 2, 3};\nint main() { return 0; }" in
  check_int "four globals" 4 (List.length p.Ast.globals);
  let tab = List.nth p.Ast.globals 3 in
  Alcotest.(check (list int64)) "init cells" [ 1L; 2L; 3L ]
    tab.Ast.ginit

let test_parse_precedence () =
  let p = parse_ok "int main() { return 1 + 2 * 3; }" in
  match (List.hd p.Ast.funcs).Ast.body with
  | [ { Ast.s = Ast.SReturn (Some { Ast.e = Ast.EBinop (Ast.Add, _, rhs); _ }); _ } ] ->
    (match rhs.Ast.e with
    | Ast.EBinop (Ast.Mul, _, _) -> ()
    | _ -> Alcotest.fail "expected * to bind tighter than +")
  | _ -> Alcotest.fail "unexpected shape"

let test_parse_assoc () =
  (* 10 - 4 - 3 must parse as (10 - 4) - 3 *)
  let p = parse_ok "int main() { return 10 - 4 - 3; }" in
  match (List.hd p.Ast.funcs).Ast.body with
  | [ { Ast.s = Ast.SReturn (Some { Ast.e = Ast.EBinop (Ast.Sub, lhs, _); _ }); _ } ] ->
    (match lhs.Ast.e with
    | Ast.EBinop (Ast.Sub, _, _) -> ()
    | _ -> Alcotest.fail "subtraction must be left-associative")
  | _ -> Alcotest.fail "unexpected shape"

let test_parse_for_desugar () =
  let p = parse_ok "int main() { for (int i = 0; i < 3; i++) { } return 0; }" in
  match (List.hd p.Ast.funcs).Ast.body with
  | { Ast.s = Ast.SBlock [ _; { Ast.s = Ast.SWhile _; _ } ]; _ } :: _ -> ()
  | _ -> Alcotest.fail "for should desugar to { init; while }"

let test_parse_if_else () =
  let p = parse_ok "int main() { if (1) return 1; else return 2; }" in
  match (List.hd p.Ast.funcs).Ast.body with
  | [ { Ast.s = Ast.SIf (_, [ _ ], [ _ ]); _ } ] -> ()
  | _ -> Alcotest.fail "if/else with single statements"

let test_parse_cast_vs_paren () =
  let p = parse_ok "int main() { int x; x = (int) 1; x = (x); return x; }" in
  match (List.hd p.Ast.funcs).Ast.body with
  | [ _; { Ast.s = Ast.SExpr { Ast.e = Ast.EAssign (_, r1); _ }; _ };
      { Ast.s = Ast.SExpr { Ast.e = Ast.EAssign (_, r2); _ }; _ }; _ ] ->
    (match (r1.Ast.e, r2.Ast.e) with
    | Ast.ECast (Ast.Tint, _), Ast.EVar "x" -> ()
    | _ -> Alcotest.fail "cast vs parenthesised expression")
  | _ -> Alcotest.fail "unexpected shape"

let test_parse_pointer_decls () =
  let p = parse_ok "int main() { int *p; int **q; long *r; return 0; }" in
  match (List.hd p.Ast.funcs).Ast.body with
  | [ { Ast.s = Ast.SDecl { Ast.dtyp = Ast.Tptr Ast.Tint; _ }; _ };
      { Ast.s = Ast.SDecl { Ast.dtyp = Ast.Tptr (Ast.Tptr Ast.Tint); _ }; _ };
      { Ast.s = Ast.SDecl { Ast.dtyp = Ast.Tptr Ast.Tlong; _ }; _ }; _ ] -> ()
  | _ -> Alcotest.fail "pointer declarator shapes"

let test_parse_line_macro () =
  let p = parse_ok "int main() {\n  return\n  __LINE__;\n}" in
  match (List.hd p.Ast.funcs).Ast.body with
  | [ { Ast.s = Ast.SReturn (Some { Ast.e = Ast.ELine; eloc }); _ } ] ->
    check_int "token line" 3 eloc.Ast.line;
    check_int "stmt line" 2 eloc.Ast.stmt_line
  | _ -> Alcotest.fail "__LINE__ locations"

let test_parse_print () =
  let p = parse_ok "int main() { print(\"x=%d y=%s\\n\", 1, \"s\"); return 0; }" in
  match (List.hd p.Ast.funcs).Ast.body with
  | [ { Ast.s = Ast.SPrint ("x=%d y=%s\n", [ _; _ ]); _ }; _ ] -> ()
  | _ -> Alcotest.fail "print statement"

let test_parse_errors () =
  parse_err "int main() { return 0 }";
  parse_err "int main() { if }";
  parse_err "int main( { }";
  parse_err "int 3x;";
  parse_err "int main() { int a[x]; }"

(* --- pretty-printer round trip --- *)

let roundtrip src =
  let p1 = parse_ok src in
  let printed = Pretty.program_to_string p1 in
  let p2 =
    match Parser.parse_program_result printed with
    | Ok p -> p
    | Error msg -> Alcotest.failf "re-parse failed: %s\n%s" msg printed
  in
  let printed2 = Pretty.program_to_string p2 in
  Alcotest.(check string) "print . parse . print is stable" printed printed2

let test_roundtrip_simple () = roundtrip "int main() { return 1 + 2 * 3; }"

let test_roundtrip_rich () =
  roundtrip
    "int g = 3;\n\
     int buf[8];\n\
     int helper(int a, int *p) { *p = a; return a * 2; }\n\
     int main() {\n\
     \  int x = getchar();\n\
     \  long y = 100L;\n\
     \  double d = 1.5;\n\
     \  static int count = 0;\n\
     \  if (x > 0 && x < 10) { print(\"small %d\\n\", x); } else { x = -x; }\n\
     \  while (x > 0) { x = x - 1; if (x == 5) break; }\n\
     \  buf[0] = helper(x, &g);\n\
     \  print(\"%d %ld %f\\n\", buf[0], y, d);\n\
     \  return 0;\n\
     }"

let test_roundtrip_precedence_preserved () =
  (* (1+2)*3 must keep parentheses when printed *)
  let p = parse_ok "int main() { return (1 + 2) * 3; }" in
  let printed = Pretty.program_to_string p in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
    at 0
  in
  check_bool "parens kept" true (contains printed "(1 + 2) * 3")

let test_pretty_prefix_postfix () =
  (* regression: parentheses exactly where the grammar needs them.
     "-" before an operand that renders with a leading "-" must be
     separated (else the lexer sees "--"); a prefix operator under a
     postfix index must be wrapped (else the index re-parses under the
     prefix operator). *)
  let open Builder in
  let r expect e =
    Alcotest.(check string) expect expect (Pretty.expr_to_string e)
  in
  r "-(-x)" (neg (neg (var "x")));
  r "-(-5)" (neg (int (-5)));
  r "(*p)[0]" (idx (deref (var "p")) (int 0));
  r "*p[0]" (deref (idx (var "p") (int 0)));
  r "((int*) p)[1]" (idx (cast Ast.(Tptr Tint) (var "p")) (int 1))

let test_roundtrip_deref_index () =
  (* the fixed forms survive the full front end, not just the parser *)
  let src =
    "int main() {\n\
     \  int a[4];\n\
     \  a[0] = 7;\n\
     \  int *p = a;\n\
     \  int **q = &p;\n\
     \  int x = -(-a[0]);\n\
     \  int y = (*q)[0];\n\
     \  print(\"%d %d\\n\", x, y);\n\
     \  return 0;\n\
     }"
  in
  roundtrip src;
  match Minic.frontend_of_source src with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "typecheck failed: %s" m

(* --- typecheck --- *)

let test_typecheck_ok_basics () =
  let _ = typecheck_ok "int main() { int x = 1; long y = x; double d = y; return (int) d; }" in
  ()

let test_typecheck_promotions () =
  let tp = typecheck_ok "int main() { int a = 1; long b = 2L; return (int) (a + b); }" in
  let f = List.hd tp.Tast.tfuncs in
  (* a + b must be computed at type long with a cast inserted on [a] *)
  match List.rev f.Tast.tbody with
  | { Tast.ts = Tast.TSReturn (Some { Tast.te = Tast.TCast (Ast.Tint, inner); _ }); _ } :: _ ->
    (match inner.Tast.te with
    | Tast.TBinop (Ast.Add, l, _) ->
      Alcotest.(check string) "join type" "long" (Ast.typ_to_string inner.Tast.tty);
      (match l.Tast.te with
      | Tast.TCast (Ast.Tlong, _) -> ()
      | _ -> Alcotest.fail "expected widening cast on int operand")
    | _ -> Alcotest.fail "expected binop")
  | _ -> Alcotest.fail "unexpected body shape"

let test_typecheck_array_decay () =
  let tp = typecheck_ok "int main() { int a[4]; int *p = a; return p[0]; }" in
  let f = List.hd tp.Tast.tfuncs in
  match f.Tast.tbody with
  | _ :: { Tast.ts = Tast.TSDecl (_, _, Some init); _ } :: _ ->
    (match init.Tast.te with
    | Tast.TDecay _ -> ()
    | _ -> Alcotest.fail "expected array decay node")
  | _ -> Alcotest.fail "unexpected body shape"

let test_typecheck_static_hoisting () =
  let tp =
    typecheck_ok
      "int counter() { static int n = 10; n = n + 1; return n; }\n\
       int main() { return counter(); }"
  in
  check_bool "static local became a global" true
    (List.exists
       (fun g -> g.Ast.ginit = [ 10L ])
       tp.Tast.tglobals)

let test_typecheck_string_hoisting () =
  let tp = typecheck_ok "int main() { print(\"%s\", \"hi\"); return 0; }" in
  check_bool "string literal hoisted with NUL" true
    (List.exists
       (fun g -> g.Ast.ginit = [ 104L; 105L; 0L ])
       tp.Tast.tglobals)

let test_typecheck_string_dedup () =
  let tp =
    typecheck_ok
      "int main() { print(\"%s%s\", \"dup\", \"dup\"); return 0; }"
  in
  let dups =
    List.filter (fun g -> g.Ast.ginit = [ 100L; 117L; 112L; 0L ]) tp.Tast.tglobals
  in
  check_int "identical literals shared" 1 (List.length dups)

let test_typecheck_shadowing () =
  let tp =
    typecheck_ok
      "int main() { int x = 1; { int x = 2; print(\"%d\", x); } return x; }"
  in
  let f = List.hd tp.Tast.tfuncs in
  let names = ref [] in
  let rec walk_stmt (s : Tast.tstmt) =
    match s.Tast.ts with
    | Tast.TSDecl (_, n, _) -> names := n :: !names
    | Tast.TSBlock b -> List.iter walk_stmt b
    | Tast.TSIf (_, a, b) ->
      List.iter walk_stmt a;
      List.iter walk_stmt b
    | Tast.TSWhile (_, b) -> List.iter walk_stmt b
    | _ -> ()
  in
  List.iter walk_stmt f.Tast.tbody;
  check_int "two distinct locals" 2 (List.length (List.sort_uniq compare !names))

let test_typecheck_pointer_rules () =
  let _ = typecheck_ok "int main() { int a[4]; int *p = a + 1; int d = p - a; return d; }" in
  let _ = typecheck_ok "int main() { int a[4]; int b[4]; return a < b; }" in
  ()

let test_typecheck_rejects () =
  typecheck_err "int main() { return \"str\"; }";
  typecheck_err "int main() { undefined_fn(); return 0; }";
  typecheck_err "int main() { return y; }";
  typecheck_err "int main() { int x; x[0] = 1; return 0; }";
  typecheck_err "int main() { 3 = 4; return 0; }";
  typecheck_err "int main() { break; }";
  typecheck_err "void f() { return 3; } int main() { return 0; }";
  typecheck_err "int f() { return; } int main() { return 0; }";
  typecheck_err "int main() { print(\"%d\"); return 0; }";
  typecheck_err "int main() { print(\"%s\", 3); return 0; }";
  typecheck_err "int main() { getchar(1); return 0; }";
  typecheck_err "int f(int a) { return a; } int f(int a) { return a; } int main() { return 0; }";
  typecheck_err "int g; int g; int main() { return 0; }";
  typecheck_err "int getchar() { return 0; } int main() { return 0; }";
  typecheck_err "int notmain() { return 0; }"

let test_typecheck_div_types () =
  typecheck_err "int main() { int *p; return p * 2; }";
  typecheck_err "int main() { double d; return d % 2.0; }";
  typecheck_err "int main() { double d; return d << 1; }"

(* --- builder --- *)

let test_builder_program_typechecks () =
  let open Builder in
  let p =
    main_program
      ~globals:[ global_arr "buf" Ast.Tint 16 ]
      [
        decl Ast.Tint "x" ~init:(call "getchar" []);
        if_ (var "x" >: int 0)
          [ set_idx (var "buf") (int 0) (var "x"); print "got %d\n" [ var "x" ] ]
          [ print "eof\n" [] ];
        ret (int 0);
      ]
  in
  match Typecheck.check_program_result p with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "builder program failed: %s" msg

let test_builder_for_up () =
  let open Builder in
  let p = main_program [ for_up "i" (int 0) (int 5) [ print "%d" [ var "i" ] ]; ret (int 0) ] in
  match Typecheck.check_program_result p with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "for_up failed: %s" msg

(* --- property tests --- *)

let gen_small_expr_src =
  (* random arithmetic expression over literals, rendered as source *)
  let open QCheck.Gen in
  let rec go depth =
    if depth = 0 then map (fun n -> string_of_int n) (int_range 0 99)
    else
      frequency
        [
          (2, map (fun n -> string_of_int n) (int_range 0 99));
          ( 3,
            map3
              (fun op a b -> Printf.sprintf "(%s %s %s)" a op b)
              (oneofl [ "+"; "-"; "*" ])
              (go (depth - 1)) (go (depth - 1)) );
        ]
  in
  go 3

(* [QCheck.Gen] shadows the generator library's root module inside the
   [open QCheck] scope below; alias what the property needs first *)
module Effgen = Gen.Effgen

let minic_props =
  let open QCheck in
  [
    Test.make ~name:"generated programs print/parse/typecheck to a fixpoint"
      ~count:40 (int_range 0 1_000_000) (fun seed ->
        let p = (Effgen.generate ~seed).Effgen.prog in
        let s1 = Pretty.program_to_string p in
        match Minic.frontend_of_source s1 with
        | Error _ -> false
        | Ok tp1 -> (
          let s2 = Pretty.tprogram_to_string tp1 in
          match Minic.frontend_of_source s2 with
          | Error _ -> false
          | Ok tp2 -> Pretty.tprogram_to_string tp2 = s2));
    Test.make ~name:"random arithmetic expressions parse and typecheck" ~count:200
      (make gen_small_expr_src) (fun src ->
        let prog = Printf.sprintf "int main() { return %s; }" src in
        match Minic.frontend_of_source prog with Ok _ -> true | Error _ -> false);
    Test.make ~name:"pretty/parse round-trip is stable" ~count:200
      (make gen_small_expr_src) (fun src ->
        let prog = Printf.sprintf "int main() { return %s; }" src in
        match Parser.parse_program_result prog with
        | Error _ -> false
        | Ok p1 ->
          let s1 = Pretty.program_to_string p1 in
          (match Parser.parse_program_result s1 with
          | Error _ -> false
          | Ok p2 -> Pretty.program_to_string p2 = s1));
  ]

let tc name f = Alcotest.test_case name `Quick f

let suites =
  [
    ( "minic.lexer",
      [
        tc "basic" test_lex_basic;
        tc "line tracking" test_lex_line_tracking;
        tc "comments" test_lex_comments;
        tc "operators" test_lex_operators;
        tc "literals" test_lex_literals;
        tc "errors" test_lex_errors;
      ] );
    ( "minic.parser",
      [
        tc "minimal" test_parse_minimal;
        tc "globals" test_parse_globals;
        tc "precedence" test_parse_precedence;
        tc "associativity" test_parse_assoc;
        tc "for desugar" test_parse_for_desugar;
        tc "if/else" test_parse_if_else;
        tc "cast vs paren" test_parse_cast_vs_paren;
        tc "pointer declarators" test_parse_pointer_decls;
        tc "__LINE__ locations" test_parse_line_macro;
        tc "print" test_parse_print;
        tc "errors" test_parse_errors;
      ] );
    ( "minic.pretty",
      [
        tc "round trip simple" test_roundtrip_simple;
        tc "round trip rich" test_roundtrip_rich;
        tc "precedence preserved" test_roundtrip_precedence_preserved;
        tc "prefix/postfix parenthesization" test_pretty_prefix_postfix;
        tc "round trip deref/index" test_roundtrip_deref_index;
      ] );
    ( "minic.typecheck",
      [
        tc "basics" test_typecheck_ok_basics;
        tc "promotions" test_typecheck_promotions;
        tc "array decay" test_typecheck_array_decay;
        tc "static hoisting" test_typecheck_static_hoisting;
        tc "string hoisting" test_typecheck_string_hoisting;
        tc "string dedup" test_typecheck_string_dedup;
        tc "shadowing" test_typecheck_shadowing;
        tc "pointer rules" test_typecheck_pointer_rules;
        tc "rejections" test_typecheck_rejects;
        tc "operand type errors" test_typecheck_div_types;
      ] );
    ( "minic.builder",
      [
        tc "program typechecks" test_builder_program_typechecks;
        tc "for_up" test_builder_for_up;
      ] );
    ("minic.properties", List.map QCheck_alcotest.to_alcotest minic_props);
  ]
