(* Tests for the sanitizer models: each detects its specialty, stays
   silent on clean programs, and exhibits its documented gaps. *)

open Sanitizers

let frontend src =
  match Minic.frontend_of_source src with
  | Ok tp -> tp
  | Error msg -> Alcotest.failf "front end: %s" msg

let detects kind src inputs = San.detects kind (frontend src) ~inputs

let check_detect name kind src inputs =
  Alcotest.(check bool) name true (detects kind src inputs)

let check_silent name kind src inputs =
  Alcotest.(check bool) name false (detects kind src inputs)

(* --- ASan --- *)

let test_asan_heap_overflow () =
  check_detect "heap overflow" San.Asan
    "int main() { int *p = malloc(4); p[4] = 1; free(p); return 0; }" [ "" ]

let test_asan_heap_underflow () =
  check_detect "heap underflow" San.Asan
    "int main() { int *p = malloc(4); p[0 - 1] = 1; free(p); return 0; }" [ "" ]

let test_asan_stack_overflow () =
  check_detect "stack buffer overflow" San.Asan
    "int main() { int a[4]; a[5] = 1; return a[0]; }" [ "" ]

let test_asan_global_overflow () =
  check_detect "global buffer overflow" San.Asan
    "int g[4];\nint main() { g[4] = 1; return 0; }" [ "" ]

let test_asan_uaf () =
  check_detect "use after free" San.Asan
    "int main() { int *p = malloc(4); p[0] = 1; free(p); return p[0]; }" [ "" ]

let test_asan_double_free () =
  check_detect "double free" San.Asan
    "int main() { int *p = malloc(4); free(p); free(p); return 0; }" [ "" ]

let test_asan_invalid_free () =
  check_detect "invalid free" San.Asan
    "int main() { int x; int *p = &x; free(p); return 0; }" [ "" ]

let test_asan_clean_silent () =
  check_silent "clean program" San.Asan
    "int main() { int *p = malloc(4); p[0] = 1; p[3] = 2; int s = p[0] + p[3]; free(p); return s; }"
    [ "" ]

let test_asan_misses_far_oob () =
  (* a jump clear over the redzone into a neighbouring object *)
  check_silent "far OOB into valid object missed" San.Asan
    "int a[4];\nint b[100];\nint main() { a[40] = 7; return 0; }" [ "" ]

let test_asan_misses_uninit () =
  check_silent "uninit is out of ASan scope" San.Asan
    "int main() { int x; if (getchar() == 65) { x = 1; } print(\"%d\\n\", x); return 0; }"
    [ "" ]

(* --- UBSan --- *)

let test_ubsan_add_overflow () =
  check_detect "add overflow" San.Ubsan
    "int main() { int x = 2147483647; int y = getchar(); return x + y; }" [ "A" ]

let test_ubsan_mul_overflow () =
  check_detect "mul overflow" San.Ubsan
    "int main() { int a = getchar() * 1000; int b = a * a; return b; }" [ "d" ]

let test_ubsan_div_zero () =
  check_detect "division by zero" San.Ubsan
    "int main() { int z = getchar() - 65; return 7 / z; }" [ "A" ]

let test_ubsan_intmin_div () =
  check_detect "INT_MIN / -1" San.Ubsan
    "int main() { int m = -2147483647 - 1; int d = getchar() - 66; return m / d; }"
    [ "A" ]

let test_ubsan_shift_range () =
  check_detect "shift out of range" San.Ubsan
    "int main() { int s = getchar() - 33; return 1 << s; }" [ "A" ]

let test_ubsan_shift_negative () =
  check_detect "left shift of negative" San.Ubsan
    "int main() { int v = 65 - getchar() - 1; return v << 2; }" [ "B" ]

let test_ubsan_null_deref () =
  check_detect "null deref" San.Ubsan
    "int main() { int *p = (int *) 0; return *p; }" [ "" ]

let test_ubsan_clean_silent () =
  check_silent "clean arithmetic" San.Ubsan
    "int main() { int a = getchar(); int b = a * a; return (b / (a + 1)) << 2; }"
    [ "A" ]

let test_ubsan_misses_memory () =
  check_silent "memory errors out of UBSan scope" San.Ubsan
    "int main() { int *p = malloc(4); p[4] = 1; return 0; }" [ "" ]

let test_ubsan_misses_evalorder () =
  check_silent "eval order out of UBSan scope" San.Ubsan
    "int *f(int v) { static int b[4]; b[0] = v; return b; }\n\
     int main() { print(\"%d %d\\n\", f(1)[0], f(2)[0]); return 0; }" [ "" ]

(* --- MSan --- *)

let test_msan_branch_on_uninit () =
  check_detect "branch on uninit" San.Msan
    "int main() { int x; if (x > 0) { print(\"pos\\n\"); } return 0; }" [ "" ]

let test_msan_uninit_heap_branch () =
  check_detect "branch on uninit heap" San.Msan
    "int main() { int *p = malloc(4); if (p[2] > 0) { print(\"y\\n\"); } free(p); return 0; }"
    [ "" ]

let test_msan_misses_printed_uninit () =
  (* the Listing 4 gap: merely printing an uninitialized value *)
  check_silent "printed uninit missed (exiv2 case)" San.Msan
    "int main() { int l; print(\"%d\\n\", l); return 0; }" [ "" ]

let test_msan_clean_silent () =
  check_silent "fully initialized" San.Msan
    "int main() { int x = getchar(); if (x > 0) { print(\"%d\\n\", x); } return 0; }"
    [ "A" ]

let test_msan_initialized_via_pointer () =
  check_silent "init through pointer" San.Msan
    "void init(int *p) { *p = 5; }\n\
     int main() { int x; init(&x); if (x > 3) { print(\"ok\\n\"); } return 0; }"
    [ "" ]

let test_msan_taint_propagates () =
  check_detect "taint flows through arithmetic" San.Msan
    "int main() { int x; int y = x + 1; int z = y * 2; if (z > 0) { print(\"p\\n\"); } return 0; }"
    [ "" ]

(* cross-check: each sanitizer is silent where another reports *)
let test_scopes_disjoint () =
  let uaf = "int main() { int *p = malloc(4); p[0] = 1; free(p); return p[0]; }" in
  Alcotest.(check bool) "MSan silent on UAF" false (detects San.Msan uaf [ "" ]);
  let ovf = "int main() { int x = 2147483647; return x + getchar(); }" in
  Alcotest.(check bool) "ASan silent on overflow" false (detects San.Asan ovf [ "A" ])

(* --- verdict edges ---

   Exact boundaries of each sanitizer's detection, pinned down so the
   metamorphic meta-checker's verdict extraction can rely on them. *)

let test_asan_one_past_end_boundary () =
  check_silent "last element is in bounds" San.Asan
    "int main() { int a[4]; a[3] = 1; return 0; }" [ "" ];
  check_detect "one past the end is out" San.Asan
    "int main() { int a[4]; a[4] = 1; return 0; }" [ "" ]

(* shift exponent fed from input so no pass can fold the site away *)
let shift32_src =
  "int main() { int w = getchar(); print(\"%d\\n\", 1 << w); return 0; }"

let shift64_src =
  "int main() { int w = getchar(); print(\"%ld\\n\", 1L << w); return 0; }"

let test_ubsan_shift_width_edges () =
  (* int is 32-bit: exponent 30 legal, 31 overflows 1<<31, 32 out of range,
     EOF (-1) negative *)
  check_silent "1 << 30 legal" San.Ubsan shift32_src [ "\x1e" ];
  check_detect "1 << 31 overflows int" San.Ubsan shift32_src [ "\x1f" ];
  check_detect "1 << 32 out of range" San.Ubsan shift32_src [ "\x20" ];
  check_detect "negative exponent" San.Ubsan shift32_src [ "" ]

let test_ubsan_shift_long_edges () =
  (* long is 64-bit: the int-illegal exponent 32 is legal, 63 overflows,
     64 out of range *)
  check_silent "1L << 32 legal" San.Ubsan shift64_src [ "\x20" ];
  check_detect "1L << 63 overflows long" San.Ubsan shift64_src [ "\x3f" ];
  check_detect "1L << 64 out of range" San.Ubsan shift64_src [ "\x40" ]

let test_msan_partial_array_init () =
  check_detect "uninitialized element of a partly written array" San.Msan
    "int main() { int a[2]; a[0] = 1; if (a[1] > 0) { print(\"y\\n\"); } return 0; }"
    [ "" ]

let test_msan_overwrite_clears_taint () =
  check_silent "write clears the taint" San.Msan
    "int main() { int x; x = 3; if (x > 1) { print(\"y\\n\"); } return 0; }" [ "" ]

let test_first_report_built_edges () =
  let b = San.build (frontend shift32_src) in
  (match San.first_report_built San.Ubsan b ~inputs:[ "\x20" ] with
  | Some msg ->
    Alcotest.(check bool) "out-of-range message mentions the exponent" true
      (let has sub =
         let n = String.length msg and m = String.length sub in
         let rec go i = i + m <= n && (String.sub msg i m = sub || go (i + 1)) in
         go 0
       in
       has "shift")
  | None -> Alcotest.fail "expected a UBSan report for 1 << 32");
  Alcotest.(check bool) "silent run yields no report" true
    (San.first_report_built San.Ubsan b ~inputs:[ "\x1e" ] = None)

let tc name f = Alcotest.test_case name `Quick f

let suites =
  [
    ( "sanitizers.asan",
      [
        tc "heap overflow" test_asan_heap_overflow;
        tc "heap underflow" test_asan_heap_underflow;
        tc "stack overflow" test_asan_stack_overflow;
        tc "global overflow" test_asan_global_overflow;
        tc "use after free" test_asan_uaf;
        tc "double free" test_asan_double_free;
        tc "invalid free" test_asan_invalid_free;
        tc "clean silent" test_asan_clean_silent;
        tc "far OOB gap" test_asan_misses_far_oob;
        tc "uninit out of scope" test_asan_misses_uninit;
      ] );
    ( "sanitizers.ubsan",
      [
        tc "add overflow" test_ubsan_add_overflow;
        tc "mul overflow" test_ubsan_mul_overflow;
        tc "div zero" test_ubsan_div_zero;
        tc "INT_MIN/-1" test_ubsan_intmin_div;
        tc "shift range" test_ubsan_shift_range;
        tc "shift negative" test_ubsan_shift_negative;
        tc "null deref" test_ubsan_null_deref;
        tc "clean silent" test_ubsan_clean_silent;
        tc "memory out of scope" test_ubsan_misses_memory;
        tc "eval order out of scope" test_ubsan_misses_evalorder;
      ] );
    ( "sanitizers.msan",
      [
        tc "branch on uninit" test_msan_branch_on_uninit;
        tc "uninit heap branch" test_msan_uninit_heap_branch;
        tc "printed uninit gap" test_msan_misses_printed_uninit;
        tc "clean silent" test_msan_clean_silent;
        tc "init via pointer" test_msan_initialized_via_pointer;
        tc "taint propagation" test_msan_taint_propagates;
      ] );
    ("sanitizers.scopes", [ tc "disjoint scopes" test_scopes_disjoint ]);
    ( "sanitizers.edges",
      [
        tc "asan one-past-end boundary" test_asan_one_past_end_boundary;
        tc "ubsan shift width (int)" test_ubsan_shift_width_edges;
        tc "ubsan shift width (long)" test_ubsan_shift_long_edges;
        tc "msan partial array init" test_msan_partial_array_init;
        tc "msan overwrite clears taint" test_msan_overwrite_clears_taint;
        tc "first_report_built" test_first_report_built_edges;
      ] );
  ]
