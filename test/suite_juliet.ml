(* Tests for the generated benchmark suite: every variant is well-formed,
   good variants are clean for every dynamic tool (the Finding 5
   invariant), and the per-category detection characteristics hold. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let quick_tests = lazy (Juliet.Suite.quick ~per_cwe:4 ())

let test_suite_size () =
  let full = Juliet.Suite.full () in
  check_bool "suite is near the scaled target" true
    (abs (List.length full - Juliet.Cwe.total_scaled) < 5);
  check_int "twenty CWE categories" 20
    (List.length (Juliet.Suite.count_by_cwe full))

let test_generation_deterministic () =
  let t1 = Juliet.Suite.generator_of_cwe 121 ~index:3 in
  let t2 = Juliet.Suite.generator_of_cwe 121 ~index:3 in
  Alcotest.(check string) "same program text"
    (Minic.Pretty.program_to_string t1.Juliet.Testcase.bad)
    (Minic.Pretty.program_to_string t2.Juliet.Testcase.bad)

let test_all_variants_frontend () =
  List.iter
    (fun (t : Juliet.Testcase.t) ->
      (try ignore (Juliet.Testcase.frontend_bad t)
       with e ->
         Alcotest.failf "%s bad variant rejected: %s" t.Juliet.Testcase.name
           (Printexc.to_string e));
      try ignore (Juliet.Testcase.frontend_good t)
      with e ->
        Alcotest.failf "%s good variant rejected: %s" t.Juliet.Testcase.name
          (Printexc.to_string e))
    (Lazy.force quick_tests)

let test_all_variants_compile_everywhere () =
  List.iter
    (fun (t : Juliet.Testcase.t) ->
      let tp = Juliet.Testcase.frontend_bad t in
      List.iter
        (fun p -> ignore (Cdcompiler.Pipeline.compile p tp))
        Cdcompiler.Profiles.all)
    (Lazy.force quick_tests)

let test_good_variants_clean () =
  List.iter
    (fun (t : Juliet.Testcase.t) ->
      let good = Juliet.Testcase.frontend_good t in
      let oracle = Compdiff.Oracle.create ~fuel:100_000 good in
      check_bool
        (t.Juliet.Testcase.name ^ " good variant has no divergence")
        false
        (Compdiff.Oracle.detects oracle ~inputs:t.Juliet.Testcase.inputs);
      List.iter
        (fun kind ->
          check_bool
            (Printf.sprintf "%s good variant clean under %s" t.Juliet.Testcase.name
               (Sanitizers.San.name kind))
            false
            (Sanitizers.San.detects kind good ~inputs:t.Juliet.Testcase.inputs))
        Sanitizers.San.all)
    (Lazy.force quick_tests)

(* category-level characteristics, on small samples *)
let eval_sample cwe count =
  List.map
    (fun i -> Juliet.Eval.evaluate (Juliet.Suite.generator_of_cwe cwe ~index:i))
    (List.init count (fun i -> i))

let test_469_compdiff_only () =
  List.iter
    (fun (e : Juliet.Eval.test_eval) ->
      check_bool "CompDiff detects CWE-469" true (fst e.Juliet.Eval.compdiff);
      check_bool "sanitizers silent on CWE-469" false
        (fst e.Juliet.Eval.asan || fst e.Juliet.Eval.ubsan || fst e.Juliet.Eval.msan))
    (eval_sample 469 4)

let test_590_compdiff_blind () =
  List.iter
    (fun (e : Juliet.Eval.test_eval) ->
      check_bool "CompDiff misses free-of-non-heap" false (fst e.Juliet.Eval.compdiff);
      check_bool "ASan catches free-of-non-heap" true (fst e.Juliet.Eval.asan))
    (eval_sample 590 4)

let test_475_memcpy_overlap () =
  List.iter
    (fun (e : Juliet.Eval.test_eval) ->
      check_bool "CompDiff detects overlap" true (fst e.Juliet.Eval.compdiff);
      check_bool "no sanitizer check exists" false
        (fst e.Juliet.Eval.asan || fst e.Juliet.Eval.ubsan || fst e.Juliet.Eval.msan))
    (eval_sample 475 2)

let test_457_msan_gap () =
  (* shape 0 prints the uninitialized value: CompDiff catches, MSan not *)
  let e = Juliet.Eval.evaluate (Juliet.Suite.generator_of_cwe 457 ~index:0) in
  check_bool "CompDiff" true (fst e.Juliet.Eval.compdiff);
  check_bool "MSan gap" false (fst e.Juliet.Eval.msan);
  (* shape 2 branches on it: MSan's slice *)
  let e2 = Juliet.Eval.evaluate (Juliet.Suite.generator_of_cwe 457 ~index:2) in
  check_bool "MSan branch slice" true (fst e2.Juliet.Eval.msan)

let test_partition_shape () =
  let e = Juliet.Eval.evaluate (Juliet.Suite.generator_of_cwe 457 ~index:0) in
  check_int "one class id per implementation" Juliet.Eval.nimpls
    (Array.length e.Juliet.Eval.partition);
  check_bool "detected bug spans >= 2 classes" true
    (Array.exists (fun c -> c <> e.Juliet.Eval.partition.(0)) e.Juliet.Eval.partition)

let test_aggregate_rows () =
  let evals = List.concat [ eval_sample 121 3; eval_sample 469 2; eval_sample 369 3 ] in
  let rows = Juliet.Eval.aggregate evals in
  check_int "all ten rows present" 10 (List.length rows);
  let mem_row = List.hd rows in
  check_int "memory row counts only its tests" 3 mem_row.Juliet.Eval.total

let test_parallel_validated_suite () =
  (* the pooled evaluator cross-validates every oracle verdict against
     the sequential naive reference; validate_oracle raises on mismatch *)
  let tests = Juliet.Suite.quick ~per_cwe:1 () in
  let evals = Juliet.Eval.evaluate_suite ~jobs:2 ~validate:true tests in
  check_int "one eval per test" (List.length tests) (List.length evals)

let tc name f = Alcotest.test_case name `Quick f


let suites =
  [
    ( "juliet.suite",
      [
        tc "scaled size" test_suite_size;
        tc "deterministic" test_generation_deterministic;
        tc "variants type-check" test_all_variants_frontend;
        tc "variants compile on all profiles" test_all_variants_compile_everywhere;
      ] );
    ("juliet.finding5", [ tc "good variants clean" test_good_variants_clean ]);
    ( "juliet.characteristics",
      [
        tc "469 CompDiff-only" test_469_compdiff_only;
        tc "590 CompDiff-blind" test_590_compdiff_blind;
        tc "475 overlap" test_475_memcpy_overlap;
        tc "457 MSan gap" test_457_msan_gap;
        tc "partition shape" test_partition_shape;
        tc "aggregation rows" test_aggregate_rows;
      ] );
    ( "juliet.parallel",
      [ tc "pooled suite cross-validates against naive" test_parallel_validated_suite ] );
  ]
