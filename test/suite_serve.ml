(* Tests for the serve daemon: protocol codecs, end-to-end verdict
   equality against the direct oracle under concurrent clients,
   credit-based backpressure, fault isolation (killed clients, garbage
   frames), heavy request types, and the idle-timeout lifecycle.

   Every daemon here is a real one — Unix-domain socket, reader threads,
   scheduler executors — served from a sibling thread of the test
   process, exactly as the bench runs it. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let frontend src =
  match Minic.frontend_of_source src with
  | Ok tp -> tp
  | Error msg -> Alcotest.failf "front end: %s" msg

let stable_src = "int main() { print(\"ok %d\\n\", getchar()); return 0; }"

let unstable_src =
  "int main() {\n\
   \  int l;\n\
   \  int c = getchar();\n\
   \  if (c > 64) { l = c; }\n\
   \  print(\"%d\\n\", l);\n\
   \  return 0;\n\
   }"

(* every implementation exhausts any budget: a deterministic slow check
   (all-hang stops escalation, so cost = the requested base fuel) *)
let slow_src =
  "int main() {\n\
   \  int i;\n\
   \  i = 0;\n\
   \  while (i < 1000000000) { i = i + 1; }\n\
   \  print(\"%d\\n\", i);\n\
   \  return 0;\n\
   }"

let temp_socket () =
  let f = Filename.temp_file "cds_test" ".sock" in
  Sys.remove f;
  f

(* a daemon on a fresh socket; returns (socket path, server, its thread) *)
let start_server ?(quota = 32) ?(executors = 2) ?(idle_timeout = 0.)
    ?(client_timeout = 0.) () =
  let socket_path = temp_socket () in
  let srv =
    Serve.Server.create
      {
        Serve.Server.socket_path;
        sched =
          {
            (Serve.Scheduler.default_config
               ~session:(Engine.Session.create ~cache_mb:64 ())
               ())
            with
            Serve.Scheduler.quota;
            executors;
          };
        client_timeout;
        idle_timeout;
        quiet = true;
      }
  in
  let th = Thread.create Serve.Server.serve srv in
  (socket_path, srv, th)

let stop_server (srv, th) =
  Serve.Server.stop srv;
  Thread.join th

(* canonical verdict forms, comparable across the two paths *)
let canon_direct (v : Compdiff.Oracle.verdict) : string =
  match v with
  | Compdiff.Oracle.Agree o ->
      Printf.sprintf "A|%s|%s"
        (Cdvm.Trap.status_to_string o.Compdiff.Oracle.status)
        o.Compdiff.Oracle.output
  | Compdiff.Oracle.Diverge obs ->
      "D|"
      ^ String.concat "|"
          (List.map
             (fun (name, (o : Compdiff.Oracle.observation)) ->
               Printf.sprintf "%s:%s:%s" name
                 (Cdvm.Trap.status_to_string o.Compdiff.Oracle.status)
                 o.Compdiff.Oracle.output)
             obs)

let canon_proto (v : Serve.Proto.verdict) : string =
  match v with
  | Serve.Proto.V_agree o ->
      Printf.sprintf "A|%s|%s" o.Serve.Proto.ob_status o.Serve.Proto.ob_output
  | Serve.Proto.V_diverge obs ->
      "D|"
      ^ String.concat "|"
          (List.map
             (fun (o : Serve.Proto.obs) ->
               Printf.sprintf "%s:%s:%s" o.Serve.Proto.ob_impl
                 o.Serve.Proto.ob_status o.Serve.Proto.ob_output)
             obs)

(* --- protocol codecs --- *)

let test_proto_roundtrip () =
  let reqs =
    [
      Serve.Proto.Ping;
      Serve.Proto.Get_stats;
      Serve.Proto.Check
        {
          Serve.Proto.ck_source = "int main() { return 0; }";
          ck_inputs = [ ""; "ab\x00\xff"; "z" ];
          ck_profiles = [ "gccx-O0"; "clangx-O3" ];
          ck_fuel = 12345;
          ck_strip = true;
        };
      Serve.Proto.Fuzz
        {
          Serve.Proto.fz_source = "s";
          fz_execs = 7;
          fz_seed = 3;
          fz_seeds = [ "a"; "" ];
          fz_profiles = [];
          fz_fuel = 0;
        };
      Serve.Proto.Metacheck
        {
          Serve.Proto.mc_source = "m";
          mc_inputs = [ "x" ];
          mc_limit = 2;
          mc_profiles = [ "gccx-O2" ];
          mc_fuel = 99;
        };
      Serve.Proto.Reduce
        {
          Serve.Proto.rd_source = "r";
          rd_input = "inp";
          rd_max_checks = 55;
          rd_profiles = [];
          rd_fuel = 1;
        };
      Serve.Proto.Explore
        {
          Serve.Proto.ex_source = "e";
          ex_input = "inp";
          ex_profiles = [ "gccx-O0" ];
          ex_fuel = 9;
          ex_limit = 4096;
        };
    ]
  in
  List.iteri
    (fun i req ->
      let id = i * 7 + 1 in
      let id', req' =
        Serve.Proto.decode_request (Serve.Proto.encode_request ~id req)
      in
      check_int "request id round-trips" id id';
      check_bool "request round-trips" true (req = req'))
    reqs;
  let obs =
    {
      Serve.Proto.ob_impl = "gccx-O2";
      ob_output = "out\n";
      ob_status = "exit(0)";
      ob_fuel = 417;
    }
  in
  let resps =
    [
      Serve.Proto.Pong;
      Serve.Proto.Check_reply
        [ Serve.Proto.V_agree obs; Serve.Proto.V_diverge [ obs; obs ] ];
      Serve.Proto.Busy 32;
      Serve.Proto.Err "nope";
      Serve.Proto.Fuzz_reply
        {
          Serve.Proto.fr_execs = 10;
          fr_divergent = 2;
          fr_unique = 1;
          fr_reports = [ ("in", "report") ];
        };
      Serve.Proto.Metacheck_reply
        {
          Serve.Proto.mr_preserving = 3;
          mr_eliminating = 1;
          mr_retype_failures = 0;
          mr_flags = [ ("t", "r", "w", "d") ];
        };
      Serve.Proto.Reduce_reply
        {
          Serve.Proto.rr_found = true;
          rr_input = "long";
          rr_reduced = "l";
          rr_checks = 12;
          rr_report = "rep";
        };
      Serve.Proto.Explore_reply
        {
          Serve.Proto.er_found = true;
          er_impl_a = "gccx/O0";
          er_impl_b = "clangx/O3";
          er_step_a = 41;
          er_step_b = 40;
          er_line = 5;
          er_probes = 7;
          er_report = "rep";
        };
      (* the -1 "absent" sentinels must survive the unsigned wire *)
      Serve.Proto.Explore_reply
        {
          Serve.Proto.er_found = false;
          er_impl_a = "";
          er_impl_b = "";
          er_step_a = -1;
          er_step_b = -1;
          er_line = -1;
          er_probes = 0;
          er_report = "";
        };
    ]
  in
  List.iteri
    (fun i r ->
      let id = i + 100 in
      let id', r' =
        Serve.Proto.decode_response (Serve.Proto.encode_response ~id r)
      in
      check_int "response id round-trips" id id';
      check_bool "response round-trips" true (r = r'))
    resps;
  (* malformed payloads raise Malformed, never a wrong decode *)
  List.iter
    (fun s ->
      check_bool "malformed raises" true
        (match Serve.Proto.decode_request s with
        | exception Serve.Proto.Malformed _ -> true
        | _ -> false))
    [ ""; "\xff"; "\x00\x00\x00\x01\x63" ]

(* --- ping / stats --- *)

let test_ping_and_stats () =
  let path, srv, th = start_server () in
  let cl = Serve.Client.connect path in
  check_bool "pong" true (Serve.Client.ping cl);
  (match Serve.Client.stats cl with
  | None -> Alcotest.fail "no stats reply"
  | Some s ->
      check_int "one client listed" 1
        (List.length s.Serve.Proto.st_sched.Serve.Proto.sr_clients);
      check_bool "session json present" true
        (String.length s.Serve.Proto.st_session > 2));
  Serve.Client.close cl;
  stop_server (srv, th)

(* --- concurrent clients: verdict equality against the direct oracle --- *)

let test_concurrent_verdict_equality () =
  let sources = [| stable_src; unstable_src |] in
  let inputs = [ ""; "A"; "z" ] in
  (* ground truth from a direct oracle *)
  let session = Engine.Session.create ~cache_mb:64 () in
  let truth = Hashtbl.create 16 in
  Array.iteri
    (fun k src ->
      let o =
        Compdiff.Oracle.create ~session ~fuel:100_000 (frontend src)
      in
      List.iter
        (fun input ->
          Hashtbl.replace truth (k, input)
            (canon_direct (Compdiff.Oracle.check o ~input)))
        inputs)
    sources;
  let path, srv, th = start_server () in
  let mismatches = Atomic.make 0 in
  let client_pass () =
    let cl = Serve.Client.connect path in
    Array.iteri
      (fun k src ->
        List.iter
          (fun input ->
            match
              Serve.Client.check cl ~fuel:100_000 ~source:src
                ~inputs:[ input ] ()
            with
            | Ok [ v ] ->
                if canon_proto v <> Hashtbl.find truth (k, input) then
                  Atomic.incr mismatches
            | _ -> Atomic.incr mismatches)
          inputs)
      sources;
    (* interleave a stats request mid-stream, like a monitoring client *)
    (match Serve.Client.stats cl with
    | Some _ -> ()
    | None -> Atomic.incr mismatches);
    Serve.Client.close cl;
    ()
  in
  let ths = List.init 4 (fun _ -> Thread.create client_pass ()) in
  List.iter Thread.join ths;
  check_int "all daemon verdicts equal direct verdicts" 0
    (Atomic.get mismatches);
  stop_server (srv, th)

(* a multi-input check request comes back positionally aligned *)
let test_multi_input_positions () =
  let path, srv, th = start_server () in
  let session = Engine.Session.create ~cache_mb:64 () in
  let o =
    Compdiff.Oracle.create ~session ~fuel:100_000 (frontend unstable_src)
  in
  let inputs = [ "A"; ""; "q"; "A" ] in
  let want =
    List.map (fun input -> canon_direct (Compdiff.Oracle.check o ~input)) inputs
  in
  let cl = Serve.Client.connect path in
  (match
     Serve.Client.check cl ~fuel:100_000 ~source:unstable_src ~inputs ()
   with
  | Ok vs ->
      check_int "verdict per input" (List.length inputs) (List.length vs);
      List.iter2
        (fun w v -> check_bool "position preserved" true (canon_proto v = w))
        want vs
  | _ -> Alcotest.fail "check failed");
  Serve.Client.close cl;
  stop_server (srv, th)

(* --- backpressure: an over-quota client is shed, others are served --- *)

let test_quota_backpressure () =
  let path, srv, th = start_server ~quota:1 ~executors:1 () in
  let flood = Serve.Client.connect path in
  (* pipeline a burst of slow checks without reading responses: the
     first consumes the only credit, the rest must be shed Busy *)
  let burst = 6 in
  let ids =
    List.init burst (fun _ ->
        Serve.Client.send flood
          (Serve.Proto.Check
             {
               Serve.Proto.ck_source = slow_src;
               ck_inputs = [ "" ];
               ck_profiles = [];
               ck_fuel = 5_000_000;
               ck_strip = false;
             }))
  in
  (* a second client is admitted and served despite the flood *)
  let other = Serve.Client.connect path in
  (match
     Serve.Client.check other ~fuel:100_000 ~source:stable_src ~inputs:[ "A" ]
       ()
   with
  | Ok [ Serve.Proto.V_agree _ ] -> ()
  | _ -> Alcotest.fail "victim client was not served during the flood");
  Serve.Client.close other;
  (* drain the flood's responses: one real verdict, the rest Busy *)
  let busy = ref 0 and replies = ref 0 in
  List.iter
    (fun _ ->
      match Serve.Client.recv flood with
      | Some (_, Serve.Proto.Busy _) -> incr busy
      | Some (_, Serve.Proto.Check_reply _) -> incr replies
      | Some _ | None -> Alcotest.fail "unexpected flood response")
    ids;
  check_int "exactly one accepted" 1 !replies;
  check_int "rest shed as Busy" (burst - 1) !busy;
  (* shed requests are visible in the daemon's stats *)
  let sched = Serve.Scheduler.sched_stats (Serve.Server.sched srv) in
  check_int "shed counter" (burst - 1) sched.Serve.Proto.sr_shed;
  Serve.Client.close flood;
  stop_server (srv, th)

(* --- fault isolation --- *)

let test_killed_mid_request_client () =
  let path, srv, th = start_server ~executors:1 () in
  (* fire a slow request and vanish without reading the response *)
  let doomed = Serve.Client.connect path in
  ignore
    (Serve.Client.send doomed
       (Serve.Proto.Check
          {
            Serve.Proto.ck_source = slow_src;
            ck_inputs = [ "" ];
            ck_profiles = [];
            ck_fuel = 5_000_000;
            ck_strip = false;
          }));
  Serve.Client.close doomed;
  (* the daemon keeps serving: a fresh client gets a correct verdict *)
  let cl = Serve.Client.connect path in
  (match
     Serve.Client.check cl ~fuel:100_000 ~source:stable_src ~inputs:[ "x" ] ()
   with
  | Ok [ Serve.Proto.V_agree obs ] ->
      check_bool "correct output after killed client" true
        (obs.Serve.Proto.ob_output = "ok 120\n")
  | _ -> Alcotest.fail "daemon did not serve after a killed client");
  check_bool "still pings" true (Serve.Client.ping cl);
  Serve.Client.close cl;
  stop_server (srv, th)

let test_garbage_frame_is_rejected () =
  let path, srv, th = start_server () in
  (* speak the handshake, then send a syntactically valid frame whose
     payload is garbage: the daemon answers Err and disconnects us *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  Serve.Proto.really_write fd (Serve.Proto.hello ());
  (match Serve.Proto.really_read fd Serve.Proto.hello_bytes with
  | Some _ -> ()
  | None -> Alcotest.fail "no hello echo");
  Serve.Proto.write_frame fd "\xee\xee\xee";
  (match Serve.Proto.read_frame fd with
  | Some frame -> (
      match Serve.Proto.decode_response frame with
      | _, Serve.Proto.Err _ -> ()
      | _ -> Alcotest.fail "expected Err for garbage frame")
  | None -> Alcotest.fail "no response to garbage frame");
  check_bool "disconnected after garbage" true
    (Serve.Proto.read_frame fd = None);
  Unix.close fd;
  (* and the daemon is still healthy *)
  let cl = Serve.Client.connect path in
  check_bool "daemon alive after garbage" true (Serve.Client.ping cl);
  Serve.Client.close cl;
  stop_server (srv, th)

(* --- heavy request types through the daemon --- *)

let test_fuzz_metacheck_reduce_requests () =
  let path, srv, th = start_server () in
  let cl = Serve.Client.connect path in
  (match
     Serve.Client.call cl
       (Serve.Proto.Fuzz
          {
            Serve.Proto.fz_source = unstable_src;
            fz_execs = 300;
            fz_seed = 7;
            fz_seeds = [];
            fz_profiles = [];
            fz_fuel = 100_000;
          })
   with
  | Serve.Proto.Fuzz_reply r ->
      check_bool "campaign executed" true (r.Serve.Proto.fr_execs > 0);
      check_bool "divergences found on unstable program" true
        (r.Serve.Proto.fr_unique > 0);
      check_bool "reports rendered" true (r.Serve.Proto.fr_reports <> [])
  | _ -> Alcotest.fail "fuzz request failed");
  (match
     Serve.Client.call cl
       (Serve.Proto.Metacheck
          {
            Serve.Proto.mc_source = stable_src;
            mc_inputs = [ "A" ];
            mc_limit = 2;
            mc_profiles = [];
            mc_fuel = 100_000;
          })
   with
  | Serve.Proto.Metacheck_reply r ->
      check_bool "twins generated" true
        (r.Serve.Proto.mr_preserving + r.Serve.Proto.mr_eliminating > 0)
  | _ -> Alcotest.fail "metacheck request failed");
  (match
     Serve.Client.call cl
       (Serve.Proto.Reduce
          {
            Serve.Proto.rd_source = unstable_src;
            (* first byte <= '@' keeps [l] uninitialized: divergent,
               with trailing bytes the reducer can strip *)
            rd_input = "0 stray bytes the divergence does not need";
            rd_max_checks = 500;
            rd_profiles = [];
            rd_fuel = 100_000;
          })
   with
  | Serve.Proto.Reduce_reply r ->
      check_bool "divergence found" true r.Serve.Proto.rr_found;
      check_bool "input shrank" true
        (String.length r.Serve.Proto.rr_reduced
        <= String.length r.Serve.Proto.rr_input);
      check_bool "report rendered" true (r.Serve.Proto.rr_report <> "")
  | _ -> Alcotest.fail "reduce request failed");
  (match
     Serve.Client.explore cl ~fuel:100_000 ~source:unstable_src ~input:"0" ()
   with
  | Ok e ->
      check_bool "explore found the divergence" true e.Serve.Proto.er_found;
      check_bool "implementations named" true
        (e.Serve.Proto.er_impl_a <> "" && e.Serve.Proto.er_impl_b <> "");
      check_bool "diverging step localized" true
        (e.Serve.Proto.er_step_a >= 0 && e.Serve.Proto.er_step_b >= 0);
      (* the uninitialized read is on the print at line 5 *)
      check_int "line attributed" 5 e.Serve.Proto.er_line;
      check_bool "deep report rendered" true (e.Serve.Proto.er_report <> "")
  | Error m -> Alcotest.failf "explore request failed: %s" m);
  (match
     Serve.Client.explore cl ~fuel:100_000 ~source:stable_src ~input:"A" ()
   with
  | Ok e ->
      check_bool "stable program does not diverge" false
        e.Serve.Proto.er_found
  | Error m -> Alcotest.failf "stable explore failed: %s" m);
  (* an unparsable program is an Err, not a dead daemon *)
  (match
     Serve.Client.check cl ~source:"int main( {" ~inputs:[ "" ] ()
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "parse error should be an Err");
  check_bool "alive after Err" true (Serve.Client.ping cl);
  Serve.Client.close cl;
  stop_server (srv, th)

(* --- lifecycle: idle timeout exits cleanly --- *)

let test_idle_timeout_shutdown () =
  let path, srv, th = start_server ~idle_timeout:0.4 () in
  ignore srv;
  let cl = Serve.Client.connect path in
  check_bool "served before timeout" true (Serve.Client.ping cl);
  Serve.Client.close cl;
  (* no clients, no work: the daemon must exit by itself *)
  Thread.join th;
  check_bool "socket file removed on shutdown" true
    (not (Sys.file_exists path))

let tc name f = Alcotest.test_case name `Quick f

let suites =
  [
    ( "serve.proto",
      [ tc "request/response codecs round-trip" test_proto_roundtrip ] );
    ( "serve.daemon",
      [
        tc "ping and stats" test_ping_and_stats;
        tc "concurrent clients match the direct oracle"
          test_concurrent_verdict_equality;
        tc "multi-input positions preserved" test_multi_input_positions;
        tc "quota backpressure sheds only the flooder" test_quota_backpressure;
        tc "killed mid-request client leaves the daemon serving"
          test_killed_mid_request_client;
        tc "garbage frame rejected, daemon stays up"
          test_garbage_frame_is_rejected;
        tc "fuzz/metacheck/reduce/explore over the wire"
          test_fuzz_metacheck_reduce_requests;
        tc "idle timeout shuts down cleanly" test_idle_timeout_shutdown;
      ] );
  ]
