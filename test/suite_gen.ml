(* Tests for the effect-typed generator, the single-UB injector and the
   labeled-corpus driver.

   The injector invariant (per UB class): the clean twin is verdict-clean
   under [check_naive] across all ten profiles, and the injected twin is
   flagged with the matching ground-truth label. *)

(* [open QCheck] below shadows the [gen] library's root module with
   [QCheck.Gen]; bind what the property needs under stable names *)
module Corpus = Gen.Corpus

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let make_exn ?cls seed =
  match Gen.Corpus.make ?cls ~seed () with
  | Ok p -> p
  | Error m -> Alcotest.failf "pair generation failed: %s" m

(* --- generator --- *)

let test_gen_deterministic () =
  let src seed =
    Minic.Pretty.program_to_string (Gen.Effgen.generate ~seed).Gen.Effgen.prog
  in
  check_string "same seed, same program" (src 7) (src 7);
  check_bool "different seeds differ" true (src 7 <> src 8)

let test_gen_sites_recorded () =
  for seed = 0 to 19 do
    let r = Gen.Effgen.generate ~seed in
    check_bool "at least one injection site" true
      (List.length r.Gen.Effgen.sites >= 1)
  done

let test_gen_typechecks () =
  (* the generator emits source: every program must survive
     print -> parse -> typecheck *)
  for seed = 0 to 49 do
    let src =
      Minic.Pretty.program_to_string (Gen.Effgen.generate ~seed).Gen.Effgen.prog
    in
    match Minic.frontend_of_source src with
    | Ok _ -> ()
    | Error m -> Alcotest.failf "seed %d does not typecheck: %s\n%s" seed m src
  done

(* --- injector invariant, per class --- *)

let clean_under_naive (p : Gen.Corpus.pair) =
  let o = Compdiff.Oracle.create p.Gen.Corpus.clean_tp in
  List.for_all
    (fun input ->
      not (Compdiff.Oracle.is_divergence (Compdiff.Oracle.check_naive o ~input)))
    (Gen.Corpus.inputs_for p)

let injected_flagged (p : Gen.Corpus.pair) =
  let o = Compdiff.Oracle.create p.Gen.Corpus.inj_tp in
  Compdiff.Oracle.detects o ~inputs:(Gen.Corpus.inputs_for p)

let test_class cls () =
  (* several seeds per class: site choice and surrounding program vary *)
  List.iter
    (fun seed ->
      let p = make_exn ~cls seed in
      check_bool "ground-truth class matches request" true
        (p.Gen.Corpus.cls = cls);
      check_bool "ground-truth line recovered" true (p.Gen.Corpus.line > 0);
      check_bool "clean twin verdict-clean under check_naive" true
        (clean_under_naive p);
      check_bool "injected twin flagged by the oracle" true
        (injected_flagged p))
    [ 11; 23; 37 ]

(* the sanitizer models must see exactly the classes they are built to
   see: per-operation arithmetic (UBSan), branch-on-uninit (MSan),
   redzone access (ASan) *)
let san_detects kind (p : Gen.Corpus.pair) =
  Sanitizers.San.detects kind p.Gen.Corpus.inj_tp
    ~inputs:(Gen.Corpus.inputs_for p)

let test_sanitizer_ground_truth () =
  let p cls = make_exn ~cls 41 in
  check_bool "UBSan sees the injected overflow" true
    (san_detects Sanitizers.San.Ubsan (p Gen.Inject.Overflow));
  check_bool "UBSan sees the injected zero division" true
    (san_detects Sanitizers.San.Ubsan (p Gen.Inject.Divzero));
  check_bool "MSan sees the injected uninit branch" true
    (san_detects Sanitizers.San.Msan (p Gen.Inject.Uninit));
  check_bool "ASan sees the injected OOB read" true
    (san_detects Sanitizers.San.Asan (p Gen.Inject.Oob))

let test_single_defect () =
  (* the clean twin carries no injected code; the injected twin differs
     only at the defect *)
  let p = make_exn ~cls:Gen.Inject.Uninit 53 in
  check_bool "clean source has no injected code" false
    (contains p.Gen.Corpus.clean_src "inj_");
  check_bool "injected source has the defect" true
    (contains p.Gen.Corpus.inj_src "inj_u")

(* --- corpus driver --- *)

let test_corpus_report () =
  let pairs =
    List.filter_map
      (fun seed -> Result.to_option (Gen.Corpus.make ~seed ()))
      (List.init 10 (fun i -> i))
  in
  check_int "all pairs generated" 10 (List.length pairs);
  let evals = Gen.Corpus.evaluate pairs in
  let r = Gen.Corpus.report evals in
  check_int "no clean-twin divergences" 0 r.Gen.Corpus.clean_divergences;
  let oracle = List.assoc "CompDiff" r.Gen.Corpus.rows in
  check_int "oracle has no false positives" 0 oracle.Gen.Corpus.fp;
  check_bool "oracle detects the injected defects" true
    (oracle.Gen.Corpus.tp >= 8);
  (* the rendered table carries every tool row *)
  let s = Gen.Corpus.report_to_string r in
  List.iter
    (fun name -> check_bool (name ^ " row present") true (contains s name))
    [ "CompDiff"; "ASan"; "UBSan"; "MSan" ]

let test_naive_agrees () =
  List.iter
    (fun seed ->
      check_bool "session and naive oracle verdicts agree" true
        (Gen.Corpus.naive_agrees (make_exn seed)))
    [ 3; 14 ]

(* generated programs as structured fuzzer seeds: the CompDiff-AFL++
   campaign on an injected twin must find the planted divergence *)
let test_fuzz_integration () =
  let p = make_exn ~cls:Gen.Inject.Overflow 61 in
  check_bool "fuzzer finds the injected divergence" true
    (Gen.Corpus.fuzz_divergence ~max_execs:200 p)

(* --- property: generator soundness over random seeds --- *)

let gen_props =
  let open QCheck in
  [
    Test.make ~name:"clean twins are UB-free by construction" ~count:12
      (int_range 0 100_000) (fun seed ->
        match Corpus.make ~seed () with
        | Error _ -> false
        | Ok p ->
          let o = Compdiff.Oracle.create p.Corpus.clean_tp in
          not
            (Compdiff.Oracle.is_divergence
               (Compdiff.Oracle.check_naive o ~input:"")));
  ]

let tc name f = Alcotest.test_case name `Quick f

let suites =
  [
    ( "gen.effgen",
      [
        tc "deterministic" test_gen_deterministic;
        tc "sites recorded" test_gen_sites_recorded;
        tc "typechecks through source" test_gen_typechecks;
      ] );
    ( "gen.inject",
      [
        tc "signed-overflow" (test_class Gen.Inject.Overflow);
        tc "uninit-read" (test_class Gen.Inject.Uninit);
        tc "oob-index" (test_class Gen.Inject.Oob);
        tc "ptr-compare" (test_class Gen.Inject.Ptrcmp);
        tc "div-by-zero" (test_class Gen.Inject.Divzero);
        tc "sanitizer ground truth" test_sanitizer_ground_truth;
        tc "single defect" test_single_defect;
      ] );
    ( "gen.corpus",
      [
        tc "report" test_corpus_report;
        tc "naive agrees" test_naive_agrees;
        tc "fuzz integration" test_fuzz_integration;
      ]
      @ List.map QCheck_alcotest.to_alcotest gen_props );
  ]
