(* Tests for the oracle-validated divergence reducer (paper §5). *)

let frontend src =
  match Minic.frontend_of_source src with
  | Ok tp -> tp
  | Error msg -> Alcotest.failf "front end: %s" msg

let parse src =
  match Minic.Parser.parse_program_result src with
  | Ok p -> p
  | Error msg -> Alcotest.failf "parse: %s" msg

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* an uninitialized read guarded by one input byte: diverging inputs
   carry lots of removable padding, the guard byte is all that matters *)
let guarded_uninit_src =
  "int main() {\n\
   \  int a = getchar();\n\
   \  int junk;\n\
   \  if (a == 85) { print(\"v=%d\\n\", junk); }\n\
   \  else { print(\"ok\\n\"); }\n\
   \  return 0;\n\
   }"

(* divergence on the very first byte read (no guard): the minimal
   reproducer is the empty input, since getchar returns -1 on EOF and
   the junk read happens unconditionally *)
let unconditional_uninit_src =
  "int main() {\n\
   \  int junk;\n\
   \  int tag = getchar();\n\
   \  print(\"%d\\n\", junk);\n\
   \  print(\"tag=%d\\n\", tag);\n\
   \  return 0;\n\
   }"

let diverging_obs oracle ~input =
  match Compdiff.Oracle.check oracle ~input with
  | Compdiff.Oracle.Diverge obs -> obs
  | Compdiff.Oracle.Agree _ -> Alcotest.failf "expected divergence on %S" input

let reduce_exn ?max_checks ?program ?reoracle oracle ~input =
  let obs = diverging_obs oracle ~input in
  match Compdiff.Reduce.reduce ?max_checks ?program ?reoracle oracle ~input obs with
  | Some r -> r
  | None -> Alcotest.fail "reduce returned None on a divergence"

(* --- invariants --- *)

let test_reduced_still_diverges () =
  let oracle = Compdiff.Oracle.create ~fuel:60_000 (frontend guarded_uninit_src) in
  let input = "U-and-a-lot-of-padding-bytes" in
  let r = reduce_exn oracle ~input in
  (* re-validate from scratch: the reduced input must diverge on its own *)
  let obs' = diverging_obs oracle ~input:r.Compdiff.Reduce.red_input in
  check_bool "reduced input still diverges" true (obs' <> [])

let test_reduce_preserves_class () =
  let oracle = Compdiff.Oracle.create ~fuel:60_000 (frontend guarded_uninit_src) in
  let input = "Upadding" in
  let obs = diverging_obs oracle ~input in
  let before = Compdiff.Reduce.class_of oracle ~input obs in
  let r = reduce_exn oracle ~input in
  let after =
    Compdiff.Reduce.class_of oracle ~input:r.Compdiff.Reduce.red_input
      r.Compdiff.Reduce.red_observations
  in
  check_int "same partition signature" before.Compdiff.Reduce.cls_signature
    after.Compdiff.Reduce.cls_signature;
  Alcotest.(check (option string))
    "same localized function"
    before.Compdiff.Reduce.cls_fn after.Compdiff.Reduce.cls_fn

let test_reduce_never_grows () =
  let oracle = Compdiff.Oracle.create ~fuel:60_000 (frontend guarded_uninit_src) in
  List.iter
    (fun input ->
      let r = reduce_exn oracle ~input in
      check_bool "input never grows" true
        (String.length r.Compdiff.Reduce.red_input <= String.length input);
      check_int "stats match input" (String.length input)
        r.Compdiff.Reduce.red_stats.Compdiff.Reduce.input_before;
      check_int "stats match reduced"
        (String.length r.Compdiff.Reduce.red_input)
        r.Compdiff.Reduce.red_stats.Compdiff.Reduce.input_after)
    [ "Uxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"; "U" ]

let test_reduce_strips_padding () =
  let oracle = Compdiff.Oracle.create ~fuel:60_000 (frontend guarded_uninit_src) in
  let input = "U" ^ String.make 63 'z' in
  let r = reduce_exn oracle ~input in
  (* only the guard byte matters; ddmin must strip essentially all of
     the padding (the guard byte itself cannot be removed) *)
  check_bool "padding removed" true
    (String.length r.Compdiff.Reduce.red_input <= 2);
  check_bool "at least the guard byte kept" true
    (String.length r.Compdiff.Reduce.red_input >= 1)

let test_reduce_already_minimal () =
  let oracle =
    Compdiff.Oracle.create ~fuel:60_000 (frontend unconditional_uninit_src)
  in
  let r = reduce_exn oracle ~input:"" in
  check_int "empty input stays empty" 0
    (String.length r.Compdiff.Reduce.red_input);
  Alcotest.(check (float 0.001)) "ratio of empty input is 0" 0.
    (Compdiff.Reduce.input_ratio r.Compdiff.Reduce.red_stats)

let test_reduce_rejects_agreement () =
  let stable = "int main() { print(\"hi\\n\"); return 0; }" in
  let oracle = Compdiff.Oracle.create ~fuel:60_000 (frontend stable) in
  let obs = Compdiff.Oracle.observe oracle ~input:"abc" in
  Alcotest.(check bool) "agreement is not reducible" true
    (Compdiff.Reduce.reduce oracle ~input:"abc" obs = None)

(* --- program reduction --- *)

let test_program_reduction_shrinks () =
  let src = guarded_uninit_src in
  let program = parse src in
  let oracle = Compdiff.Oracle.create ~fuel:60_000 (frontend src) in
  let r = reduce_exn oracle ~input:"Upadding" ~program in
  let s = r.Compdiff.Reduce.red_stats in
  check_int "stmts counted" (Compdiff.Reduce.count_stmts program)
    s.Compdiff.Reduce.stmts_before;
  check_bool "program never gains statements" true
    (s.Compdiff.Reduce.stmts_after <= s.Compdiff.Reduce.stmts_before);
  match r.Compdiff.Reduce.red_program with
  | None -> ()                        (* no progress is a legal outcome *)
  | Some p ->
    check_int "reduced stmt count reported" (Compdiff.Reduce.count_stmts p)
      s.Compdiff.Reduce.stmts_after;
    (* the reduced program still typechecks and still diverges on the
       reduced input under a fresh oracle *)
    (match Minic.Typecheck.check_program_result p with
    | Error msg -> Alcotest.failf "reduced program does not typecheck: %s" msg
    | Ok tp ->
      let oracle' = Compdiff.Oracle.create ~fuel:60_000 tp in
      (match
         Compdiff.Oracle.check oracle' ~input:r.Compdiff.Reduce.red_input
       with
      | Compdiff.Oracle.Diverge _ -> ()
      | Compdiff.Oracle.Agree _ ->
        Alcotest.fail "reduced program no longer diverges"))

let test_budget_respected () =
  let oracle = Compdiff.Oracle.create ~fuel:60_000 (frontend guarded_uninit_src) in
  let input = "U" ^ String.make 40 'q' in
  let r = reduce_exn ~max_checks:10 oracle ~input in
  check_bool "validation budget respected" true
    (r.Compdiff.Reduce.red_stats.Compdiff.Reduce.checks <= 10)

let tc name f = Alcotest.test_case name `Quick f

let suites =
  [
    ( "compdiff.reduce",
      [
        tc "reduced input still diverges" test_reduced_still_diverges;
        tc "class preserved" test_reduce_preserves_class;
        tc "never grows" test_reduce_never_grows;
        tc "strips padding" test_reduce_strips_padding;
        tc "already minimal" test_reduce_already_minimal;
        tc "agreement rejected" test_reduce_rejects_agreement;
        tc "program reduction" test_program_reduction_shrinks;
        tc "budget respected" test_budget_respected;
      ] );
  ]
