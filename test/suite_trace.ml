(* Tests for the trace store (lib/trace): a recorded [Steps]-level run
   must be a faithful, replayable copy of the live execution.

   The two properties that make time-travel exploration trustworthy:
   - recording is invisible: (stdout, status, fuel_used) of a recorded
     run are byte-identical to the Silent run and the reference
     interpreter, on every profile;
   - replay is exact: seeking a cursor to step k through snapshots
     reconstructs the same state as linear replay from the start. *)

open Cdcompiler

let frontend src =
  match Minic.frontend_of_source src with
  | Ok tp -> tp
  | Error msg -> Alcotest.failf "front end: %s" msg

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let triple (r : Cdvm.Exec.result) =
  (r.Cdvm.Exec.stdout, r.Cdvm.Exec.status, r.Cdvm.Exec.fuel_used)

let link ?(profile = Profiles.gccx "O2") src =
  Cdvm.Image.link (Pipeline.compile profile (frontend src))

(* a call-heavy, memory-touching, printing program; well-defined on any
   input by construction *)
let busy_src =
  "int bump(int x) { return x * 2 + 1; }\n\
   int main() {\n\
   \  int tab[8];\n\
   \  for (int z = 0; z < 8; z++) tab[z] = 0;\n\
   \  int acc = 0;\n\
   \  for (int i = 0; i < 20; i++) {\n\
   \    int c = peek(i);\n\
   \    if (c < 0) { break; }\n\
   \    int slot = c % 8;\n\
   \    tab[slot] = tab[slot] + bump(c);\n\
   \    acc = acc + c;\n\
   \    print(\"%d \", acc);\n\
   \  }\n\
   \  print(\"| %d\\n\", acc);\n\
   \  return 0;\n\
   }"

(* --- recording is invisible --- *)

let test_record_matches_live () =
  List.iter
    (fun profile ->
      let img = link ~profile busy_src in
      let input = "hello, trace" in
      let config =
        { Cdvm.Exec.default_config with Cdvm.Exec.input; fuel = 200_000 }
      in
      let silent = triple (Cdvm.Exec.run_linked ~config img) in
      let tr, res = Cdtrace.record img ~impl:profile.Policy.pname ~input in
      check_bool
        (Printf.sprintf "recorded run matches Silent (%s)" profile.Policy.pname)
        true
        (triple res = silent);
      check_str "trace stdout" (let s, _, _ = silent in s) tr.Cdtrace.stdout;
      check_bool "trace not truncated" false tr.Cdtrace.truncated;
      check_int "recorded = executed" tr.Cdtrace.total_steps tr.Cdtrace.nsteps)
    Profiles.all

let test_events_match_prints () =
  let img = link busy_src in
  let input = "abc" in
  let tr, _ = Cdtrace.record img ~impl:"gccx-O2" ~input in
  let live, _, _ = Compdiff.Localize.trace_image img ~input in
  let recorded =
    Array.to_list (Array.map (fun (_, fn, text) -> (fn, text)) tr.Cdtrace.events)
  in
  let expected =
    List.map
      (fun e -> (e.Compdiff.Localize.ev_fn, e.Compdiff.Localize.ev_text))
      live
  in
  check_bool "print events identical to a Prints-level run" true
    (recorded = expected);
  (* every event's step index points inside the trace *)
  Array.iter
    (fun (step, _, _) ->
      check_bool "event step in range" true (step >= 0 && step < tr.Cdtrace.nsteps))
    tr.Cdtrace.events

let test_line_table () =
  let img = link ~profile:(Profiles.gccx "O0") busy_src in
  let tr, _ = Cdtrace.record img ~impl:"gccx-O0" ~input:"x" in
  let c = Cdtrace.cursor tr in
  match Cdtrace.peek c with
  | None -> Alcotest.fail "empty trace"
  | Some (fi, pc, depth) ->
    check_int "starts at depth 1" 1 depth;
    check_str "starts in main" "main" (Cdtrace.func_name tr fi);
    check_bool "entry instruction has a source line" true
      (Cdtrace.line_of tr ~fi ~pc <> None)

(* --- seeking --- *)

let states_agree tr ks =
  let c = Cdtrace.cursor tr in
  let oracle = Cdtrace.cursor tr in
  List.for_all
    (fun k ->
      Cdtrace.seek c k;
      Cdtrace.seek_slow oracle k;
      Cdtrace.state_to_string c = Cdtrace.state_to_string oracle)
    ks

let test_snapshot_boundary_seeks () =
  let img = link busy_src in
  let tr, _ =
    Cdtrace.record ~snapshot_every:4 img ~impl:"gccx-O2" ~input:"snapshots"
  in
  let n = Cdtrace.length tr in
  check_bool "trace long enough to cross snapshots" true (n > 12);
  (* positions straddling every snapshot boundary, plus the ends *)
  let ks = ref [ 0; 1; n - 1; n ] in
  let b = ref 4 in
  while !b < n do
    ks := (!b - 1) :: !b :: (!b + 1) :: !ks;
    b := !b + 4
  done;
  check_bool "seek = seek_slow at snapshot boundaries" true
    (states_agree tr !ks);
  (* backward seek across a snapshot, then forward again *)
  let c = Cdtrace.cursor tr in
  Cdtrace.seek c n;
  Cdtrace.seek c 2;
  let oracle = Cdtrace.cursor tr in
  Cdtrace.seek_slow oracle 2;
  check_str "backward seek" (Cdtrace.state_to_string oracle)
    (Cdtrace.state_to_string c);
  (* seeks clamp rather than fail *)
  Cdtrace.seek c (n + 1000);
  check_int "seek clamps high" n (Cdtrace.pos c);
  Cdtrace.seek c (-5);
  check_int "seek clamps low" 0 (Cdtrace.pos c)

let test_truncation_cap () =
  let img = link busy_src in
  let tr, res =
    Cdtrace.record ~limit:10 img ~impl:"gccx-O2" ~input:"plenty of input"
  in
  check_bool "truncated flag" true tr.Cdtrace.truncated;
  check_int "recorded exactly the cap" 10 (Cdtrace.length tr);
  check_bool "executed more than the cap" true (tr.Cdtrace.total_steps > 10);
  (* the run itself is unaffected by the recorder going dead *)
  let silent =
    triple
      (Cdvm.Exec.run_linked
         ~config:
           {
             Cdvm.Exec.default_config with
             Cdvm.Exec.input = "plenty of input";
             fuel = 200_000;
           }
         img)
  in
  check_bool "truncated recording still invisible" true (triple res = silent);
  (* the capped prefix replays *)
  check_bool "capped prefix replays" true (states_agree tr [ 0; 5; 10; 99 ])

(* --- disk format --- *)

let with_temp f =
  let file = Filename.temp_file "cdtrace" ".ctr" in
  Fun.protect ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ()) (fun () -> f file)

let test_save_load_roundtrip () =
  let img = link busy_src in
  let tr, _ = Cdtrace.record img ~impl:"gccx-O2" ~input:"roundtrip" in
  with_temp (fun file ->
      Cdtrace.save_to tr ~file;
      match Cdtrace.load file with
      | Error e -> Alcotest.failf "load failed: %s" e
      | Ok tr' ->
        check_int "length survives" (Cdtrace.length tr) (Cdtrace.length tr');
        check_str "stdout survives" tr.Cdtrace.stdout tr'.Cdtrace.stdout;
        let c = Cdtrace.cursor tr and c' = Cdtrace.cursor tr' in
        let k = Cdtrace.length tr / 2 in
        Cdtrace.seek c k;
        Cdtrace.seek c' k;
        check_str "replay state survives" (Cdtrace.state_to_string c)
          (Cdtrace.state_to_string c'))

let test_content_addressed_save () =
  let img = link busy_src in
  let tr, _ = Cdtrace.record img ~impl:"gccx/O2 (weird)" ~input:"addr" in
  let dir = Filename.get_temp_dir_name () in
  let f1 = Cdtrace.save tr ~dir in
  let f2 = Cdtrace.save tr ~dir in
  Fun.protect
    ~finally:(fun () -> try Sys.remove f1 with Sys_error _ -> ())
    (fun () ->
      check_str "same trace, same name" f1 f2;
      check_bool "impl name sanitized" true
        (String.for_all
           (fun ch ->
             match ch with
             | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> true
             | _ -> false)
           (Filename.basename f1)))

let read_file file =
  let ic = open_in_bin file in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file file s =
  let oc = open_out_bin file in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc s)

let expect_error name file =
  match Cdtrace.load file with
  | Ok _ -> Alcotest.failf "%s: corrupt file loaded successfully" name
  | Error _ -> ()

let test_corrupt_files () =
  let img = link busy_src in
  let tr, _ = Cdtrace.record img ~impl:"gccx-O2" ~input:"corrupt" in
  with_temp (fun file ->
      Cdtrace.save_to tr ~file;
      let good = read_file file in
      (* sanity: the pristine bytes load *)
      (match Cdtrace.load file with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "pristine file rejected: %s" e);
      (* bad magic *)
      write_file file ("XXXXX" ^ String.sub good 5 (String.length good - 5));
      expect_error "bad magic" file;
      (* bit flip in the payload: checksum must catch it *)
      let b = Bytes.of_string good in
      let mid = 13 + ((Bytes.length b - 13) / 2) in
      Bytes.set b mid (Char.chr (Char.code (Bytes.get b mid) lxor 0x40));
      write_file file (Bytes.to_string b);
      expect_error "bit flip" file;
      (* truncated payload *)
      write_file file (String.sub good 0 (String.length good - 7));
      expect_error "truncated" file;
      (* shorter than the header *)
      write_file file "CDTR";
      expect_error "short" file;
      (* missing file *)
      match Cdtrace.load (file ^ ".does-not-exist") with
      | Ok _ -> Alcotest.fail "missing file loaded"
      | Error _ -> ())

(* --- sequential decoding --- *)

let test_iter_consistent_with_cursor () =
  let img = link busy_src in
  let tr, _ = Cdtrace.record img ~impl:"gccx-O2" ~input:"iterate" in
  let n = ref 0 in
  let c = Cdtrace.cursor tr in
  Cdtrace.iter tr (fun sv ->
      check_int "iter visits steps in order" !n sv.Cdtrace.sv_ix;
      (match Cdtrace.peek c with
      | Some (fi, pc, depth) ->
        check_int "iter fi matches cursor" fi sv.Cdtrace.sv_fi;
        check_int "iter pc matches cursor" pc sv.Cdtrace.sv_pc;
        check_int "iter depth matches cursor" depth sv.Cdtrace.sv_depth
      | None -> Alcotest.fail "cursor ended before iter");
      Cdtrace.seek c (!n + 1);
      incr n);
  check_int "iter visits every step" (Cdtrace.length tr) !n

(* --- deep localization over recorded traces --- *)

(* uninitialized read: the canonical unstable program (paper listing 1
   in miniature) — implementations print different junk on empty input *)
let unstable_src =
  "int main() {\n\
   \  int l;\n\
   \  int c = getchar();\n\
   \  if (c > 64) { l = c; }\n\
   \  print(\"%d\\n\", l);\n\
   \  return 0;\n\
   }"

let test_deep_localization () =
  let o = Compdiff.Oracle.create (frontend unstable_src) in
  match Compdiff.Oracle.check o ~input:"" with
  | Compdiff.Oracle.Agree _ -> Alcotest.fail "expected a divergence"
  | Compdiff.Oracle.Diverge obs -> (
    match
      Compdiff.Localize.deep_of_divergence o (Compdiff.Oracle.binaries o) obs
        ~input:""
    with
    | None -> Alcotest.fail "expected a deep localization"
    | Some d ->
      let open Compdiff.Localize in
      check_bool "diff is nonempty" true (String.length d.diff > 0);
      check_bool "divergence explained" true
        (d.diverging_event <> None || d.deep_a.ds_at <> None
        || d.deep_b.ds_at <> None);
      (* the uninit junk flows into a concrete write on each side *)
      (match (d.deep_a.ds_at, d.deep_b.ds_at) with
      | Some a, Some b ->
        check_bool "differing values reported" true (a.pr_value <> b.pr_value);
        check_bool "source line attributed" true
          (a.pr_line <> None && b.pr_line <> None)
      | _ -> Alcotest.fail "expected a diverging instruction on both sides"))

let test_deep_identical_binaries () =
  (* same binary on both sides: the fallback chain must still return a
     total answer, not a crash *)
  let img = link busy_src in
  let ta, _ = Cdtrace.record img ~impl:"left" ~input:"same" in
  let tb, _ = Cdtrace.record img ~impl:"right" ~input:"same" in
  let d = Compdiff.Localize.deep_of_traces ta tb in
  let open Compdiff.Localize in
  check_bool "no diverging event" true (d.diverging_event = None);
  check_bool "no diverging write" true
    (d.deep_a.ds_at = None && d.deep_b.ds_at = None);
  check_bool "still explains itself" true (String.length d.diff > 0)

(* --- properties --- *)

(* random "parser-like" programs with a helper function so traces have
   call/return structure; well-defined by construction *)
let gen_program_src =
  let open QCheck.Gen in
  let arith_op = oneofl [ "+"; "-"; "*" ] in
  let small = int_range 1 9 in
  let* n = int_range 4 8 in
  let* op1 = arith_op and* op2 = arith_op in
  let* k1 = small and* k2 = small and* k3 = small in
  return
    (Printf.sprintf
       "int mix(int a, int b) { return a %s b %s %d; }\n\
        int main() {\n\
       \  int tab[%d];\n\
       \  for (int z = 0; z < %d; z++) tab[z] = 0;\n\
       \  int acc = 0;\n\
       \  for (int i = 0; i < 16; i++) {\n\
       \    int c = peek(i);\n\
       \    if (c < 0) { break; }\n\
       \    int slot = (c %s %d) %% %d;\n\
       \    if (slot < 0) { slot = 0 - slot; }\n\
       \    tab[slot] = mix(tab[slot], c %% %d);\n\
       \    acc = acc %s %d;\n\
       \  }\n\
       \  for (int z = 0; z < %d; z++) print(\"%%d \", tab[z]);\n\
       \  print(\"| %%d\\n\", acc);\n\
       \  return 0;\n\
        }"
       op1 op2 k1 n n op1 k2 n (k3 + 1) op2 k1 n)

let gen_case =
  QCheck.Gen.(
    triple gen_program_src
      (string_size (int_range 0 12))
      (int_range 0 (List.length Profiles.all - 1)))

let prop_replay_invisible =
  QCheck.Test.make ~name:"recording never perturbs execution" ~count:25
    (QCheck.make gen_case)
    (fun (src, input, pidx) ->
      match Minic.frontend_of_source src with
      | Error _ -> false
      | Ok tp ->
        let profile = List.nth Profiles.all pidx in
        let img = Cdvm.Image.link (Pipeline.compile profile tp) in
        let config =
          { Cdvm.Exec.default_config with Cdvm.Exec.input; fuel = 200_000 }
        in
        let silent = triple (Cdvm.Exec.run_linked ~config img) in
        let tr, res = Cdtrace.record img ~impl:profile.Policy.pname ~input in
        triple res = silent && tr.Cdtrace.stdout = (let s, _, _ = silent in s))

let prop_seek_equals_slow =
  QCheck.Test.make ~name:"snapshot seek = linear replay" ~count:20
    (QCheck.make
       QCheck.Gen.(pair gen_case (list_size (int_range 1 8) (int_range 0 2000))))
    (fun ((src, input, pidx), ks) ->
      match Minic.frontend_of_source src with
      | Error _ -> false
      | Ok tp ->
        let profile = List.nth Profiles.all pidx in
        let img = Cdvm.Image.link (Pipeline.compile profile tp) in
        let tr, _ =
          Cdtrace.record ~snapshot_every:7 img ~impl:profile.Policy.pname
            ~input
        in
        states_agree tr ks)

let tc name f = Alcotest.test_case name `Quick f

let suites =
  [
    ( "trace.record",
      [
        tc "matches live run on all profiles" test_record_matches_live;
        tc "events match prints-level run" test_events_match_prints;
        tc "line table" test_line_table;
        tc "truncation cap" test_truncation_cap;
      ] );
    ( "trace.seek",
      [
        tc "snapshot boundaries" test_snapshot_boundary_seeks;
        tc "iter consistent with cursor" test_iter_consistent_with_cursor;
      ] );
    ( "trace.disk",
      [
        tc "save/load roundtrip" test_save_load_roundtrip;
        tc "content-addressed name" test_content_addressed_save;
        tc "corrupt files rejected" test_corrupt_files;
      ] );
    ( "trace.deep",
      [
        tc "uninit divergence pinned" test_deep_localization;
        tc "identical binaries total" test_deep_identical_binaries;
      ] );
    ( "trace.props",
      [
        QCheck_alcotest.to_alcotest prop_replay_invisible;
        QCheck_alcotest.to_alcotest prop_seek_equals_slow;
      ] );
  ]
