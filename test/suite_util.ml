(* Tests for Cdutil: deterministic RNG, MurmurHash3 reference vectors,
   descriptive statistics. *)

open Cdutil

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Rng --- *)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next64 a) (Rng.next64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Rng.next64 a <> Rng.next64 b then differs := true
  done;
  check_bool "streams differ across seeds" true !differs

let test_rng_bounds () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    check_bool "in range" true (v >= 0 && v < 17)
  done

let test_rng_int_in () =
  let r = Rng.create 9 in
  for _ = 1 to 1000 do
    let v = Rng.int_in r (-5) 5 in
    check_bool "in inclusive range" true (v >= -5 && v <= 5)
  done

let test_rng_copy_independent () =
  let a = Rng.create 3 in
  let _ = Rng.next64 a in
  let b = Rng.copy a in
  check_int "copies agree" 0 (Int64.compare (Rng.next64 a) (Rng.next64 b))

let test_rng_shuffle_permutation () =
  let r = Rng.create 11 in
  let arr = Array.init 50 (fun i -> i) in
  Rng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 (fun i -> i)) sorted

let test_rng_mix_stable () =
  check_int "mix is a function" (Rng.mix 12 34) (Rng.mix 12 34);
  check_bool "mix separates pairs" true (Rng.mix 12 34 <> Rng.mix 34 12);
  check_bool "mix non-negative" true (Rng.mix 5 6 >= 0)

let test_rng_bytes_len () =
  let r = Rng.create 5 in
  check_int "requested length" 33 (Bytes.length (Rng.bytes r 33))

let rng_props =
  let open QCheck in
  [
    Test.make ~name:"Rng.int always within bound" ~count:500
      (pair small_int (int_range 1 1000))
      (fun (seed, bound) ->
        let r = Rng.create seed in
        let v = Rng.int r bound in
        v >= 0 && v < bound);
    Test.make ~name:"Rng.float in [0,1)" ~count:500 small_int (fun seed ->
        let r = Rng.create seed in
        let f = Rng.float r in
        f >= 0. && f < 1.);
  ]

(* --- Murmur3: reference vectors from the canonical C++ implementation --- *)

let test_murmur_empty () =
  Alcotest.(check int32) "empty/0" 0l (Murmur3.hash32 "")

let test_murmur_vectors () =
  (* Known-answer tests for MurmurHash3_x86_32. *)
  let cases =
    [
      ("", 0x1l, 0x514E28B7l);
      ("", 0xffffffffl, 0x81F16F39l);
      ("hello", 0l, 0x248BFA47l);
      ("hello, world", 0l, 0x149BBB7Fl);
      ("The quick brown fox jumps over the lazy dog", 0l, 0x2E4FF723l);
      ("aaaa", 0x9747b28cl, 0x5A97808Al);
      ("aaa", 0x9747b28cl, 0x283E0130l);
      ("aa", 0x9747b28cl, 0x5D211726l);
      ("a", 0x9747b28cl, 0x7FA09EA6l);
    ]
  in
  List.iter
    (fun (s, seed, want) ->
      Alcotest.(check int32) (Printf.sprintf "murmur3(%S)" s) want
        (Murmur3.hash32 ~seed s))
    cases

let test_murmur_distinct () =
  check_bool "different strings hash differently" true
    (Murmur3.hash32 "output A" <> Murmur3.hash32 "output B")

let test_murmur_hash_nonneg () =
  List.iter
    (fun s -> check_bool "non-negative" true (Murmur3.hash s >= 0))
    [ ""; "x"; "hello"; String.make 1000 'z' ]

(* --- Murmur3 streaming: bit-identical to hashing the concatenation --- *)

let test_murmur_stream_cases () =
  let cases =
    [
      [];
      [ "" ];
      [ "hello"; ", "; "world" ];
      [ "a"; ""; "b"; "cd"; "efghij" ];
      [ "out\x00put"; "\x00"; "exit(0)" ];
      [ String.make 1023 'q'; "x" ];
      [ "1"; "2"; "3"; "4"; "5" ];
    ]
  in
  List.iter
    (fun parts ->
      Alcotest.(check int32)
        (Printf.sprintf "parts %s" (String.concat "|" parts))
        (Murmur3.hash32 (String.concat "" parts))
        (Murmur3.hash32_parts parts))
    cases

let murmur_stream_props =
  let open QCheck in
  [
    Test.make ~name:"hash32_parts = hash32 of concat" ~count:500
      (pair small_int (small_list (string_gen_of_size (Gen.int_range 0 9) Gen.char)))
      (fun (seed, parts) ->
        let seed = Int32.of_int seed in
        Murmur3.hash32_parts ~seed parts
        = Murmur3.hash32 ~seed (String.concat "" parts));
  ]

(* --- Pool --- *)

let test_pool_map_order () =
  let p = Pool.create ~jobs:4 () in
  let xs = List.init 200 Fun.id in
  let got = Pool.map ~pool:p (fun i -> (i * i) + 1) xs in
  Pool.shutdown p;
  Alcotest.(check (list int)) "results in input order"
    (List.map (fun i -> (i * i) + 1) xs)
    got

let test_pool_jobs1_inline () =
  let p = Pool.create ~jobs:1 () in
  let got = Pool.map ~pool:p string_of_int [ 1; 2; 3 ] in
  Pool.shutdown p;
  Alcotest.(check (list string)) "sequential degenerate" [ "1"; "2"; "3" ] got

let test_pool_exception_propagation () =
  let p = Pool.create ~jobs:4 () in
  let ran = Atomic.make 0 in
  (try
     ignore
       (Pool.map ~pool:p
          (fun i ->
            Atomic.incr ran;
            if i = 37 then failwith "boom";
            i)
          (List.init 64 Fun.id));
     Alcotest.fail "expected Failure"
   with Failure msg -> Alcotest.(check string) "original exn" "boom" msg);
  (* every task still ran to completion, and the pool stays usable *)
  check_int "all tasks ran" 64 (Atomic.get ran);
  let again = Pool.map ~pool:p (fun i -> i + 1) [ 1; 2; 3 ] in
  Pool.shutdown p;
  Alcotest.(check (list int)) "pool usable after failure" [ 2; 3; 4 ] again

let test_pool_nested_map () =
  let p = Pool.create ~jobs:3 () in
  let got =
    Pool.map ~pool:p
      (fun i -> List.fold_left ( + ) 0 (Pool.map ~pool:p (fun j -> (i * 10) + j) [ 1; 2; 3 ]))
      [ 1; 2; 3; 4 ]
  in
  Pool.shutdown p;
  Alcotest.(check (list int)) "nested maps don't deadlock"
    (List.map (fun i -> (3 * i * 10) + 6) [ 1; 2; 3; 4 ])
    got

let test_pool_run_and_shutdown_idempotent () =
  let p = Pool.create ~jobs:2 () in
  let got = Pool.run ~pool:p [ (fun () -> "a"); (fun () -> "b") ] in
  Alcotest.(check (list string)) "run order" [ "a"; "b" ] got;
  Pool.shutdown p;
  Pool.shutdown p;
  (* a shut-down pool still executes batches on the caller *)
  let late = Pool.map ~pool:p (fun i -> -i) [ 4; 5 ] in
  Alcotest.(check (list int)) "works after shutdown" [ -4; -5 ] late

let pool_props =
  let open QCheck in
  [
    Test.make ~name:"Pool.map agrees with List.map" ~count:50
      (pair (int_range 1 4) (small_list small_int))
      (fun (jobs, xs) ->
        let p = Pool.create ~jobs () in
        let got = Pool.map ~pool:p (fun x -> (x * 7) - 1) xs in
        Pool.shutdown p;
        got = List.map (fun x -> (x * 7) - 1) xs);
  ]

(* --- Stats --- *)

let test_stats_mean () =
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Stats.mean [ 1.; 2.; 3.; 4. ])

let test_stats_percentile () =
  let xs = [ 1.; 2.; 3.; 4.; 5. ] in
  Alcotest.(check (float 1e-9)) "median" 3. (Stats.percentile 0.5 xs);
  Alcotest.(check (float 1e-9)) "min" 1. (Stats.percentile 0. xs);
  Alcotest.(check (float 1e-9)) "max" 5. (Stats.percentile 1. xs);
  Alcotest.(check (float 1e-9)) "q1" 2. (Stats.percentile 0.25 xs)

let test_stats_box () =
  let b = Stats.box_of_ints [ 5; 1; 3; 2; 4 ] in
  Alcotest.(check (float 1e-9)) "median" 3. b.Stats.median;
  Alcotest.(check (float 1e-9)) "min" 1. b.Stats.minimum;
  Alcotest.(check (float 1e-9)) "max" 5. b.Stats.maximum;
  check_int "count" 5 b.Stats.count

let test_stats_singleton () =
  let b = Stats.box_of [ 7. ] in
  Alcotest.(check (float 1e-9)) "all equal" 7. b.Stats.q1;
  Alcotest.(check (float 1e-9)) "all equal" 7. b.Stats.q3

let stats_props =
  let open QCheck in
  [
    Test.make ~name:"percentile is monotone in p" ~count:300
      (list_of_size (Gen.int_range 1 30) (float_bound_exclusive 100.))
      (fun xs ->
        let p25 = Stats.percentile 0.25 xs
        and p75 = Stats.percentile 0.75 xs in
        p25 <= p75);
    Test.make ~name:"mean within [min,max]" ~count:300
      (list_of_size (Gen.int_range 1 30) (float_bound_exclusive 100.))
      (fun xs ->
        let b = Stats.box_of xs in
        b.Stats.mean >= b.Stats.minimum -. 1e-9
        && b.Stats.mean <= b.Stats.maximum +. 1e-9);
  ]

(* --- Tablefmt --- *)

let test_table_render () =
  let out =
    Tablefmt.render ~header:[ "a"; "bb" ] [ [ "xxx"; "y" ]; [ "z"; "wwww" ] ]
  in
  let lines = String.split_on_char '\n' out in
  check_int "4 lines" 4 (List.length lines);
  (* all lines share the same width *)
  match lines with
  | first :: rest ->
    List.iter
      (fun l -> check_int "aligned" (String.length first) (String.length l))
      rest
  | [] -> Alcotest.fail "no output"

let test_table_pct () =
  Alcotest.(check string) "pct" "37%" (Tablefmt.pct 0.372);
  Alcotest.(check string) "pct0" "0%" (Tablefmt.pct 0.);
  Alcotest.(check string) "pct100" "100%" (Tablefmt.pct 1.)

let tc name f = Alcotest.test_case name `Quick f

let suites =
  [
    ( "util.rng",
      [
        tc "determinism" test_rng_determinism;
        tc "seed sensitivity" test_rng_seed_sensitivity;
        tc "bounds" test_rng_bounds;
        tc "int_in bounds" test_rng_int_in;
        tc "copy" test_rng_copy_independent;
        tc "shuffle permutes" test_rng_shuffle_permutation;
        tc "mix stable" test_rng_mix_stable;
        tc "bytes length" test_rng_bytes_len;
      ]
      @ List.map QCheck_alcotest.to_alcotest rng_props );
    ( "util.murmur3",
      [
        tc "empty" test_murmur_empty;
        tc "reference vectors" test_murmur_vectors;
        tc "distinct" test_murmur_distinct;
        tc "hash non-negative" test_murmur_hash_nonneg;
        tc "streaming matches concat" test_murmur_stream_cases;
      ]
      @ List.map QCheck_alcotest.to_alcotest murmur_stream_props );
    ( "util.pool",
      [
        tc "map preserves order" test_pool_map_order;
        tc "jobs=1 is inline" test_pool_jobs1_inline;
        tc "exception propagation" test_pool_exception_propagation;
        tc "nested map" test_pool_nested_map;
        tc "run + idempotent shutdown" test_pool_run_and_shutdown_idempotent;
      ]
      @ List.map QCheck_alcotest.to_alcotest pool_props );
    ( "util.stats",
      [
        tc "mean" test_stats_mean;
        tc "percentile" test_stats_percentile;
        tc "box" test_stats_box;
        tc "singleton" test_stats_singleton;
      ]
      @ List.map QCheck_alcotest.to_alcotest stats_props );
    ( "util.tablefmt",
      [ tc "render alignment" test_table_render; tc "pct" test_table_pct ] );
  ]
