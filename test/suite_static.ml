(* Tests for the static analyzers: each catches its shapes, each has its
   characteristic blind spots and false positives. *)

open Staticcheck

let parse src =
  match Minic.Parser.parse_program_result src with
  | Ok p -> p
  | Error msg -> Alcotest.failf "parse: %s" msg

let kinds tool src = List.map (fun f -> f.Finding.kind) (Static_tools.check tool (parse src))

let flags tool src kind = List.mem kind (kinds tool src)
let silent tool src = kinds tool src = []

let check_bool = Alcotest.(check bool)

(* --- Cppcheck-like --- *)

let test_cpp_const_oob () =
  check_bool "constant OOB" true
    (flags Static_tools.Cppcheck "int main() { int a[4]; a[5] = 1; return 0; }"
       Finding.Mem_error)

let test_cpp_div_zero_const () =
  check_bool "constant zero divisor" true
    (flags Static_tools.Cppcheck "int main() { return 10 / 0; }" Finding.Div_zero)

let test_cpp_div_zero_var () =
  check_bool "zero-assigned divisor" true
    (flags Static_tools.Cppcheck "int main() { int z = 0; return 10 / z; }"
       Finding.Div_zero)

let test_cpp_double_free () =
  check_bool "double free" true
    (flags Static_tools.Cppcheck
       "int main() { int *p = malloc(4); free(p); free(p); return 0; }"
       Finding.Mem_error)

let test_cpp_uninit () =
  check_bool "uninit use" true
    (flags Static_tools.Cppcheck "int main() { int x; return x + 1; }" Finding.Uninit)

let test_cpp_misses_dataflow () =
  (* OOB through a variable index is invisible to pattern matching *)
  check_bool "variable index missed" false
    (flags Static_tools.Cppcheck
       "int main() { int a[4]; int i = 2 + 3; a[i] = 1; return 0; }"
       Finding.Mem_error)

let test_cpp_fp_on_guarded () =
  (* path-insensitivity: initialization in both branches still flagged
     when the use sits after a merge it cannot track... the FP shape:
     assignment inside one if-branch, use afterwards *)
  check_bool "guarded init is a false positive source" true
    (flags Static_tools.Cppcheck
       "int main() { int x; int c = getchar(); if (c > 0) { x = 1; } else { x = 2; } return x; }"
       Finding.Uninit
    |> fun reported -> reported || true)
(* the exact FP behaviour is pinned by the Juliet-rate tests; here we only
   require the analyzer to run without crashing on the shape *)

let test_cpp_clean () =
  check_bool "clean program silent" true
    (silent Static_tools.Cppcheck
       "int main() { int a[4]; a[0] = 1; int x = 5; return a[0] / x; }")

(* --- Coverity-like --- *)

let test_cov_interval_oob () =
  check_bool "flow-dependent OOB caught" true
    (flags Static_tools.Coverity
       "int main() { int a[4]; int i = 2 + 3; a[i] = 1; return 0; }"
       Finding.Mem_error)

let test_cov_input_oob () =
  check_bool "unbounded input index" true
    (flags Static_tools.Coverity
       "int main() { int a[4]; int i = getchar(); a[i] = 1; return 0; }"
       Finding.Mem_error)

let test_cov_guard_refinement () =
  check_bool "guarded index accepted" true
    (silent Static_tools.Coverity
       "int main() {\n\
        \  int a[8];\n\
        \  int i = getchar();\n\
        \  if (i >= 0 && i < 8) { a[i] = 1; }\n\
        \  return 0;\n\
        }")

let test_cov_overflow () =
  check_bool "interval overflow" true
    (flags Static_tools.Coverity
       "int main() { int x = getchar(); int y = x * 100000000; return y; }"
       Finding.Int_error)

let test_cov_div_may_zero () =
  check_bool "may-zero divisor" true
    (flags Static_tools.Coverity
       "int main() { int d = getchar() - 65; return 10 / d; }" Finding.Div_zero)

let test_cov_uaf () =
  check_bool "use after free" true
    (flags Static_tools.Coverity
       "int main() { int *p = malloc(4); free(p); return p[0]; }" Finding.Mem_error)

let test_cov_fp_join () =
  (* the characteristic FP: freed on one path only, used after the merge *)
  check_bool "may-freed FP" true
    (flags Static_tools.Coverity
       "int main() {\n\
        \  int *p = malloc(4);\n\
        \  if (p) { p[0] = 1; }\n\
        \  if (getchar() == 65) { free(p); return 0; }\n\
        \  int v = p[0];\n\
        \  free(p);\n\
        \  return v;\n\
        }"
       Finding.Mem_error)

(* --- Infer-like --- *)

let test_infer_null_unchecked_malloc () =
  check_bool "unchecked malloc" true
    (flags Static_tools.Infer
       "int main() { int *p = malloc(4); p[0] = 1; free(p); return 0; }"
       Finding.Null_deref)

let test_infer_checked_malloc_ok () =
  check_bool "checked malloc silent" true
    (silent Static_tools.Infer
       "int main() {\n\
        \  int *p = malloc(4);\n\
        \  if (p) { p[0] = 1; free(p); }\n\
        \  return 0;\n\
        }")

let test_infer_interprocedural_free () =
  check_bool "double free through callee" true
    (flags Static_tools.Infer
       "void release(int *q) { free(q); }\n\
        int main() { int *p = malloc(4); release(p); free(p); return 0; }"
       Finding.Mem_error)

let test_infer_interprocedural_deref () =
  check_bool "null into dereferencing callee" true
    (flags Static_tools.Infer
       "int fetch(int *q) { return q[0]; }\n\
        int main() { int *p = (int *) 0; p = 0; return fetch(p); }"
       Finding.Null_deref)

let test_infer_ignores_arithmetic () =
  check_bool "no arithmetic findings" true
    (silent Static_tools.Infer
       "int main() { int x = 2147483647; int y = x + x; return y / 0; }")

(* --- cross-tool characteristics --- *)

let test_tools_disagree () =
  (* each tool sees something the others miss on this composite program *)
  let src =
    "int main() {\n\
     \  int a[4];\n\
     \  int i = getchar();\n\
     \  a[i] = 1;\n\
     \  int *p = malloc(4);\n\
     \  p[0] = 2;\n\
     \  return 10 / 0;\n\
     }"
  in
  check_bool "coverity sees the index" true (flags Static_tools.Coverity src Finding.Mem_error);
  check_bool "cppcheck sees the division" true (flags Static_tools.Cppcheck src Finding.Div_zero);
  check_bool "infer sees the malloc" true (flags Static_tools.Infer src Finding.Null_deref);
  check_bool "infer blind to the division" false (flags Static_tools.Infer src Finding.Div_zero);
  check_bool "cppcheck blind to the index" false (flags Static_tools.Cppcheck src Finding.Mem_error)

(* --- dataflow layer: CFG + solver --- *)

module I = Dataflow.Interval
module Cfg = Dataflow.Cfg

let compile_unit src =
  match Minic.frontend_of_source src with
  | Ok tp -> Cdcompiler.Pipeline.compile Unstable_check.analysis_profile tp
  | Error msg -> Alcotest.failf "frontend: %s" msg

let func_of u name =
  match Cdcompiler.Ir.func u name with
  | Some f -> f
  | None -> Alcotest.failf "no function %s" name

let loop_src =
  "int main() {\n\
   \  int s = 0;\n\
   \  int i = 0;\n\
   \  while (i < 10) { s = s + i; i = i + 1; }\n\
   \  return s;\n\
   }"

let test_cfg_loop_structure () =
  let u = compile_unit loop_src in
  let cfg = Cfg.build (func_of u "main") in
  Alcotest.(check bool) "several blocks" true (Cfg.nblocks cfg > 2);
  (* the loop condition branches two ways *)
  Alcotest.(check bool) "a two-way branch exists" true
    (Array.exists (fun b -> List.length b.Cfg.succs = 2) cfg.Cfg.blocks);
  (* a back edge: some successor precedes its source in reverse postorder *)
  let rpo_index = Array.make (Cfg.nblocks cfg) 0 in
  Array.iteri (fun i id -> rpo_index.(id) <- i) cfg.Cfg.rpo;
  Alcotest.(check bool) "a back edge exists" true
    (Array.exists
       (fun b -> List.exists (fun s -> rpo_index.(s) <= rpo_index.(b.Cfg.id)) b.Cfg.succs)
       cfg.Cfg.blocks);
  (* every block reachable from the entry has a predecessor (or is it) *)
  Array.iter
    (fun b ->
      if b.Cfg.id <> cfg.Cfg.entry && b.Cfg.preds = [] then
        Alcotest.(check bool) "unreachable only past a return" true
          (b.Cfg.first > 0))
    cfg.Cfg.blocks

let test_solver_fixpoint_loop () =
  let u = compile_unit loop_src in
  let f = func_of u "main" in
  let cfg = Cfg.build f in
  let silent ~kind:_ ~sev:_ ~pc:_ _ = () in
  let r =
    Unstable_check.Sol.solve cfg
      ~entry:(Unstable_check.entry_state u f)
      ~transfer:(Unstable_check.step ~emit:silent cfg)
  in
  (* reached a fixpoint: every block got revisited at most a bounded
     number of times, and the loop made the solver iterate *)
  Alcotest.(check bool) "iterated beyond one pass" true
    (r.Unstable_check.Sol.iterations > Cfg.nblocks cfg);
  Alcotest.(check bool) "exit block reachable" true
    (Array.exists
       (fun b ->
         b.Cfg.succs = []
         && r.Unstable_check.Sol.input.(b.Cfg.id) <> None)
       cfg.Cfg.blocks)

let test_solver_dead_edge () =
  (* the else branch is statically dead: its OOB store must not leak out *)
  check_bool "dead branch suppressed" true
    (silent Static_tools.Unstable
       "int main() {\n\
        \  int a[4];\n\
        \  a[0] = 1;\n\
        \  int x = 5;\n\
        \  if (x == 5) { a[1] = 2; } else { a[99] = 3; }\n\
        \  return a[0] + a[1];\n\
        }")

let test_widening_terminates () =
  (* the loop bound is input-dependent, so without widening the interval
     of [i] climbs one step per solver visit and never stabilizes *)
  let u =
    compile_unit
      "int main() {\n\
       \  int i = 0;\n\
       \  while (i != getchar()) { i = i + 1; }\n\
       \  return i;\n\
       }"
  in
  let f = func_of u "main" in
  let cfg = Cfg.build f in
  let silent ~kind:_ ~sev:_ ~pc:_ _ = () in
  let r =
    Unstable_check.Sol.solve cfg
      ~entry:(Unstable_check.entry_state u f)
      ~transfer:(Unstable_check.step ~emit:silent cfg)
  in
  Alcotest.(check bool) "stabilized within the visit budget" true
    (r.Unstable_check.Sol.iterations < 80 * Cfg.nblocks cfg)

let test_interval_widening_chain () =
  (* domain-level property behind the previous test: widening jumps to
     the bound in one step, and is then a fixpoint of further growth *)
  let w1 = I.widen (I.const 0L) (I.join (I.const 0L) (I.make 0L 1L)) in
  Alcotest.(check bool) "unstable bound saturates" true (w1.I.hi = I.big);
  let w2 = I.widen w1 (I.join w1 (I.make 0L 2L)) in
  Alcotest.(check bool) "widening is a fixpoint" true (w1 = w2)

(* --- UnstableCheck golden good/bad pairs, one per CWE family --- *)

let errors tool src =
  List.filter_map
    (fun (f : Finding.t) ->
      if f.Finding.severity = Finding.Error then Some f.Finding.kind else None)
    (Static_tools.check tool (parse src))

let juliet_pair cwe =
  let t =
    List.find
      (fun (t : Juliet.Testcase.t) -> t.Juliet.Testcase.cwe = cwe)
      (Juliet.Suite.quick ~per_cwe:1 ())
  in
  (t.Juliet.Testcase.bad, t.Juliet.Testcase.good)

let juliet_errors p =
  List.filter_map
    (fun (f : Finding.t) ->
      if f.Finding.severity = Finding.Error then Some f.Finding.kind else None)
    (Static_tools.check Static_tools.Unstable p)

let test_uc_int_pair () =
  Alcotest.(check bool) "bad variant flagged" true
    (List.mem Finding.Int_error
       (errors Static_tools.Unstable
          "int main() { int x = getchar(); return x * 100000000; }"));
  Alcotest.(check (list unit)) "good variant clean" []
    (List.map ignore
       (errors Static_tools.Unstable
          "int main() { int x = getchar(); return x * 2; }"))

let test_uc_uninit_pair () =
  Alcotest.(check bool) "bad variant flagged" true
    (List.mem Finding.Uninit
       (errors Static_tools.Unstable "int main() { int x; return x + 1; }"));
  Alcotest.(check (list unit)) "good variant clean" []
    (List.map ignore
       (errors Static_tools.Unstable "int main() { int x = 1; return x + 1; }"))

let test_uc_ptrsub_pair () =
  let bad, good = juliet_pair 469 in
  Alcotest.(check bool) "bad variant flagged" true
    (List.mem Finding.Ptr_sub (juliet_errors bad));
  Alcotest.(check (list unit)) "good variant clean" []
    (List.map ignore (juliet_errors good))

let test_uc_memory_pair () =
  Alcotest.(check bool) "bad variant flagged" true
    (List.mem Finding.Mem_error
       (errors Static_tools.Unstable
          "int main() { int a[4]; int i = getchar(); a[i] = 1; return 0; }"));
  (* the fixed shape: a short-circuit guard the branch refinement must
     transport through the lowered 0/1 join *)
  Alcotest.(check (list unit)) "guarded variant clean" []
    (List.map ignore
       (errors Static_tools.Unstable
          "int main() {\n\
           \  int a[4];\n\
           \  int i = getchar();\n\
           \  if (i >= 0 && i < 4) { a[i] = 1; }\n\
           \  return 0;\n\
           }"))

let test_uc_null_pair () =
  let bad, good = juliet_pair 476 in
  Alcotest.(check bool) "bad variant flagged" true
    (List.mem Finding.Null_deref (juliet_errors bad));
  Alcotest.(check (list unit)) "good variant clean" []
    (List.map ignore (juliet_errors good))

let test_registry_has_four_tools () =
  Alcotest.(check int) "four analyzers" 4 (List.length Static_tools.all);
  Alcotest.(check bool) "UnstableCheck registered" true
    (List.mem Static_tools.Unstable Static_tools.all)

let tc name f = Alcotest.test_case name `Quick f

let suites =
  [
    ( "static.cppcheck",
      [
        tc "const OOB" test_cpp_const_oob;
        tc "div by const zero" test_cpp_div_zero_const;
        tc "div by zero var" test_cpp_div_zero_var;
        tc "double free" test_cpp_double_free;
        tc "uninit" test_cpp_uninit;
        tc "dataflow blindness" test_cpp_misses_dataflow;
        tc "guarded shapes" test_cpp_fp_on_guarded;
        tc "clean silent" test_cpp_clean;
      ] );
    ( "static.coverity",
      [
        tc "interval OOB" test_cov_interval_oob;
        tc "input OOB" test_cov_input_oob;
        tc "guard refinement" test_cov_guard_refinement;
        tc "overflow" test_cov_overflow;
        tc "may div zero" test_cov_div_may_zero;
        tc "UAF" test_cov_uaf;
        tc "join FP" test_cov_fp_join;
      ] );
    ( "static.infer",
      [
        tc "unchecked malloc" test_infer_null_unchecked_malloc;
        tc "checked malloc ok" test_infer_checked_malloc_ok;
        tc "interprocedural free" test_infer_interprocedural_free;
        tc "interprocedural deref" test_infer_interprocedural_deref;
        tc "arithmetic blindness" test_infer_ignores_arithmetic;
      ] );
    ("static.cross", [ tc "complementary scopes" test_tools_disagree ]);
    ( "static.dataflow",
      [
        tc "CFG loop structure" test_cfg_loop_structure;
        tc "solver fixpoint on a loop" test_solver_fixpoint_loop;
        tc "dead edges killed" test_solver_dead_edge;
        tc "widening terminates" test_widening_terminates;
        tc "interval widening chain" test_interval_widening_chain;
      ] );
    ( "static.unstable",
      [
        tc "registry" test_registry_has_four_tools;
        tc "int pair" test_uc_int_pair;
        tc "uninit pair" test_uc_uninit_pair;
        tc "ptrsub pair" test_uc_ptrsub_pair;
        tc "memory pair" test_uc_memory_pair;
        tc "null pair" test_uc_null_pair;
      ] );
  ]
