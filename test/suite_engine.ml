(* Tests for the engine session layer: the LRU primitive, the
   compile/link/observe caches, and the cross-validation properties the
   caches must satisfy (cached sessions are verdict-identical to the
   caching-disabled reference; the partition-based subset study matches
   the per-subset recomputation). *)

let frontend src =
  match Minic.frontend_of_source src with
  | Ok tp -> tp
  | Error msg -> Alcotest.failf "front end: %s" msg

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let stable_src = "int main() { print(\"ok %d\\n\", getchar()); return 0; }"

let unstable_src =
  "int main() {\n\
   \  int l;\n\
   \  int c = getchar();\n\
   \  if (c > 64) { l = c; }\n\
   \  print(\"%d\\n\", l);\n\
   \  return 0;\n\
   }"

(* --- the LRU primitive --- *)

let test_lru_basics () =
  let l = Engine.Lru.create ~budget_bytes:1000 in
  let v =
    Engine.Lru.find_or_compute l "a" ~weight:(fun _ -> 10) (fun () -> 1)
  in
  check_int "computed" 1 v;
  let v =
    Engine.Lru.find_or_compute l "a" ~weight:(fun _ -> 10) (fun () -> 2)
  in
  check_int "cached, not recomputed" 1 v;
  let s = Engine.Lru.stats l in
  check_int "one hit" 1 s.Engine.Lru.hits;
  check_int "one miss" 1 s.Engine.Lru.misses;
  check_int "one entry" 1 s.Engine.Lru.entries;
  check_int "ten bytes" 10 s.Engine.Lru.bytes

let test_lru_eviction_lru_order () =
  let l = Engine.Lru.create ~budget_bytes:100 in
  let put k = ignore (Engine.Lru.find_or_compute l k ~weight:(fun _ -> 40) (fun () -> k)) in
  put "a";
  put "b";
  (* touch "a" so "b" is the least recently used *)
  check_bool "a cached" true (Engine.Lru.find_opt l "a" = Some "a");
  (* third insert pushes past 100 bytes: evict down to 75 *)
  put "c";
  let s = Engine.Lru.stats l in
  check_bool "evicted at least one entry" true (s.Engine.Lru.evictions >= 1);
  check_bool "within budget" true (s.Engine.Lru.bytes <= 100);
  check_bool "oldest entry (b) evicted first" true
    (Engine.Lru.find_opt l "b" = None);
  check_bool "newest entry survives" true (Engine.Lru.find_opt l "c" = Some "c")

(* --- session caches --- *)

let profile0 = List.hd Cdcompiler.Profiles.all

let test_unit_cache_hit () =
  let s = Engine.Session.create ~cache_mb:16 () in
  let tp = frontend stable_src in
  let u1 = Engine.Session.compile s profile0 tp in
  let u2 = Engine.Session.compile s profile0 tp in
  check_bool "second compile is the cached unit" true (u1 == u2);
  let st = Engine.Session.stats s in
  check_int "unit hit" 1 st.Engine.Session.units.Engine.Session.hits;
  check_int "unit miss" 1 st.Engine.Session.units.Engine.Session.misses;
  (* a structurally equal but physically distinct program hits too:
     keys are content hashes, not physical identity *)
  let tp' = frontend stable_src in
  let u3 = Engine.Session.compile s profile0 tp' in
  check_bool "content-addressed: equal program hits" true (u1 == u3)

let test_image_cache_and_obs_store () =
  let s = Engine.Session.create ~cache_mb:16 () in
  let tp = frontend stable_src in
  let u = Engine.Session.compile s profile0 tp in
  let l1 = Engine.Session.link s u in
  let l2 = Engine.Session.link s u in
  check_bool "re-link is the cached image" true
    (Engine.Session.image l1 == Engine.Session.image l2);
  let o1 = Engine.Session.run s l1 ~input:"A" ~fuel:100_000 in
  let o2 = Engine.Session.run s l2 ~input:"A" ~fuel:100_000 in
  check_bool "replay equals the stored observation" true (o1 = o2);
  Alcotest.(check string) "raw stdout" "ok 65\n" o1.Engine.Session.obs_stdout;
  let st = Engine.Session.stats s in
  check_int "one observation stored" 1
    st.Engine.Session.observations.Engine.Session.entries;
  check_int "one observation hit" 1
    st.Engine.Session.observations.Engine.Session.hits;
  (* a different input or fuel is a different key *)
  let o3 = Engine.Session.run s l1 ~input:"B" ~fuel:100_000 in
  check_bool "different input, different observation" true (o3 <> o1);
  check_int "two observations stored" 2
    (Engine.Session.stats s).Engine.Session.observations.Engine.Session.entries

let test_disabled_session_is_passthrough () =
  let s = Engine.Session.create ~cache_mb:0 () in
  check_bool "caching off" false (Engine.Session.caching s);
  let tp = frontend stable_src in
  let u1 = Engine.Session.compile s profile0 tp in
  let u2 = Engine.Session.compile s profile0 tp in
  check_bool "recompiles every time" true (u1 != u2);
  let st = Engine.Session.stats s in
  check_int "no unit traffic counted" 0
    (st.Engine.Session.units.Engine.Session.hits
    + st.Engine.Session.units.Engine.Session.misses);
  check_bool "stats say disabled" false st.Engine.Session.caching

let test_oracle_shares_session_compiles () =
  (* two oracles over the same program on one session: the second one's
     ten compiles and links are all cache hits *)
  let s = Engine.Session.create ~cache_mb:64 () in
  let tp = frontend unstable_src in
  let o1 = Compdiff.Oracle.create ~session:s tp in
  let st1 = Engine.Session.stats s in
  let o2 = Compdiff.Oracle.create ~session:s tp in
  let st2 = Engine.Session.stats s in
  check_int "no new unit misses for the second oracle"
    st1.Engine.Session.units.Engine.Session.misses
    st2.Engine.Session.units.Engine.Session.misses;
  check_bool "ten unit hits for the second oracle" true
    (st2.Engine.Session.units.Engine.Session.hits
     >= st1.Engine.Session.units.Engine.Session.hits + 10);
  (* and their verdicts agree with each other and with a fresh oracle *)
  List.iter
    (fun input ->
      let v1 = Compdiff.Oracle.check o1 ~input in
      let v2 = Compdiff.Oracle.check o2 ~input in
      let fresh = Compdiff.Oracle.check (Compdiff.Oracle.create tp) ~input in
      check_bool "session oracles agree" true (v1 = v2);
      check_bool "matches a session-free oracle" true (v1 = fresh))
    [ ""; "A"; "Z" ]

let test_oracle_replay_hits_obs_store () =
  let s = Engine.Session.create ~cache_mb:64 () in
  let o = Compdiff.Oracle.create ~session:s (frontend unstable_src) in
  let v1 = Compdiff.Oracle.check o ~input:"" in
  let before = Engine.Session.stats s in
  let v2 = Compdiff.Oracle.check o ~input:"" in
  let after = Engine.Session.stats s in
  check_bool "replayed verdict identical" true (v1 = v2);
  check_int "replay adds no observation misses"
    before.Engine.Session.observations.Engine.Session.misses
    after.Engine.Session.observations.Engine.Session.misses;
  check_bool "replay served from the store" true
    (after.Engine.Session.observations.Engine.Session.hits
    > before.Engine.Session.observations.Engine.Session.hits)

(* --- the persistent disk cache --- *)

let temp_dir () =
  (* a unique, not-yet-existing directory name; Diskcache.create mkdirs *)
  let f = Filename.temp_file "cdc_test" "" in
  Sys.remove f;
  f

let read_whole path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let write_whole path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let rec disk_files dir =
  List.concat_map
    (fun name ->
      let p = Filename.concat dir name in
      if Sys.is_directory p then disk_files p else [ p ])
    (Array.to_list (Sys.readdir dir))

let test_diskcache_roundtrip () =
  let dir = temp_dir () in
  let d1 = Engine.Diskcache.create ~dir () in
  Engine.Diskcache.put d1 ~kind:"t" "k1" (42, "hello");
  (* a fresh handle over the same directory = a process restart *)
  let d2 = Engine.Diskcache.create ~dir () in
  check_bool "hit across restart" true
    (Engine.Diskcache.get d2 ~kind:"t" "k1" = Some (42, "hello"));
  check_bool "unknown key is a miss" true
    ((Engine.Diskcache.get d2 ~kind:"t" "nope" : (int * string) option) = None);
  check_bool "same key under another kind is a miss" true
    ((Engine.Diskcache.get d2 ~kind:"u" "k1" : (int * string) option) = None);
  let st = Engine.Diskcache.stats d2 in
  check_int "one hit counted" 1 st.Engine.Diskcache.disk_hits;
  check_int "two misses counted" 2 st.Engine.Diskcache.disk_misses

let test_diskcache_corruption_is_miss () =
  let dir = temp_dir () in
  let d = Engine.Diskcache.create ~dir () in
  Engine.Diskcache.put d ~kind:"t" "key" "payload-value";
  let get () : string option = Engine.Diskcache.get d ~kind:"t" "key" in
  check_bool "intact entry hits" true (get () = Some "payload-value");
  let path =
    match disk_files dir with
    | [ p ] -> p
    | l -> Alcotest.failf "expected one entry file, found %d" (List.length l)
  in
  let original = read_whole path in
  (* a crashed writer can only leave a prefix (writes are tmp+rename,
     but the guard must hold for any torn file): every truncation is a
     miss, never a wrong hit *)
  List.iter
    (fun len ->
      write_whole path (String.sub original 0 len);
      check_bool (Printf.sprintf "truncated to %d bytes is a miss" len) true
        (get () = None))
    [ 0; 3; 11; String.length original - 1 ];
  (* one flipped payload byte: the checksum rejects it *)
  let b = Bytes.of_string original in
  let last = Bytes.length b - 1 in
  Bytes.set b last (Char.chr ((Char.code (Bytes.get b last) + 1) land 0xff));
  write_whole path (Bytes.to_string b);
  check_bool "corrupt payload is a miss" true (get () = None);
  (* restoring the bytes restores the hit: the guard is the content *)
  write_whole path original;
  check_bool "restored entry hits again" true (get () = Some "payload-value")

let test_diskcache_running_counters () =
  let dir = temp_dir () in
  let d1 = Engine.Diskcache.create ~dir () in
  List.iter
    (fun k -> Engine.Diskcache.put d1 ~kind:"t" k ("value-" ^ k))
    [ "a"; "b"; "c" ];
  let on_disk () =
    let files = disk_files dir in
    ( List.length files,
      List.fold_left (fun a p -> a + (Unix.stat p).Unix.st_size) 0 files )
  in
  let entries, bytes = on_disk () in
  let st = Engine.Diskcache.stats d1 in
  check_int "entry count tracks fresh puts" entries
    st.Engine.Diskcache.disk_entries;
  check_int "byte count tracks fresh puts" bytes st.Engine.Diskcache.disk_bytes;
  (* overwriting an existing key must not inflate the running totals *)
  Engine.Diskcache.put d1 ~kind:"t" "b" "value-b";
  let st = Engine.Diskcache.stats d1 in
  check_int "overwrite leaves entry count" entries
    st.Engine.Diskcache.disk_entries;
  check_int "overwrite leaves byte count" bytes st.Engine.Diskcache.disk_bytes;
  check_int "but is still a store" 4 st.Engine.Diskcache.disk_stores;
  (* a fresh handle re-seeds the same totals from the startup scan *)
  let st2 = Engine.Diskcache.stats (Engine.Diskcache.create ~dir ()) in
  check_int "restart seeds entry count" entries
    st2.Engine.Diskcache.disk_entries;
  check_int "restart seeds byte count" bytes st2.Engine.Diskcache.disk_bytes

let test_diskcache_gc_honors_cap () =
  let dir = temp_dir () in
  let cap_bytes = 1024 * 1024 in
  let d = Engine.Diskcache.create ~dir ~cap_mb:1 () in
  (* ~300KB per entry: the 4th put crosses the 1MB cap and must trigger
     GC down to the 3/4 target without any explicit maintenance call *)
  let total = 6 in
  for k = 1 to total do
    Engine.Diskcache.put d ~kind:"big" (string_of_int k)
      (String.make 300_000 (Char.chr (64 + k)))
  done;
  let st = Engine.Diskcache.stats d in
  check_bool "byte count back under the cap" true
    (st.Engine.Diskcache.disk_bytes <= cap_bytes);
  check_bool "entries were evicted" true
    (st.Engine.Diskcache.disk_entries < total);
  check_bool "some entries survive" true
    (st.Engine.Diskcache.disk_entries > 0);
  (* the re-seeded counters agree with what is actually on disk *)
  let files = disk_files dir in
  check_int "entry count re-seeded from disk" (List.length files)
    st.Engine.Diskcache.disk_entries;
  check_int "byte count re-seeded from disk"
    (List.fold_left (fun a p -> a + (Unix.stat p).Unix.st_size) 0 files)
    st.Engine.Diskcache.disk_bytes;
  (* surviving entries still read back intact *)
  let readable = ref 0 in
  for k = 1 to total do
    match
      (Engine.Diskcache.get d ~kind:"big" (string_of_int k) : string option)
    with
    | Some v ->
      check_bool "surviving entry intact" true
        (v = String.make 300_000 (Char.chr (64 + k)));
      incr readable
    | None -> ()
  done;
  check_int "readable entries = counted entries" !readable
    st.Engine.Diskcache.disk_entries

let test_session_disk_restart () =
  let dir = temp_dir () in
  let tp = frontend unstable_src in
  let s1 = Engine.Session.create ~cache_mb:16 ~disk_dir:dir () in
  let l1 = Engine.Session.link s1 (Engine.Session.compile s1 profile0 tp) in
  let o1 = Engine.Session.run s1 l1 ~input:"A" ~fuel:100_000 in
  (* fresh session, same directory: in-memory caches are cold but the
     disk layer serves the compiled unit and the observation *)
  let s2 = Engine.Session.create ~cache_mb:16 ~disk_dir:dir () in
  let l2 = Engine.Session.link s2 (Engine.Session.compile s2 profile0 tp) in
  let o2 = Engine.Session.run s2 l2 ~input:"A" ~fuel:100_000 in
  check_bool "observation identical across restart" true (o1 = o2);
  (match (Engine.Session.stats s2).Engine.Session.disk with
  | None -> Alcotest.fail "expected disk stats"
  | Some d ->
    check_bool "nonzero disk hits after restart" true
      (d.Engine.Session.disk_hits > 0));
  (* the batched path agrees with the per-input path, duplicates included *)
  let obs =
    Engine.Session.run_batch s2 l2 ~inputs:[| "A"; "B"; "A" |] ~fuel:100_000
  in
  check_bool "batch equals per-input runs" true
    (obs.(0) = o2
    && obs.(2) = obs.(0)
    && obs.(1) = Engine.Session.run s2 l2 ~input:"B" ~fuel:100_000)

(* --- QCheck cross-validation properties --- *)

(* same token soup the front-end fuzz and oracle suites use *)
let gen_soup =
  let open QCheck.Gen in
  let token =
    oneofl
      [
        "int "; "long "; "double "; "if"; "else"; "while"; "return "; "break";
        "print"; "("; ")"; "{"; "}"; "["; "]"; ";"; ","; "+"; "-"; "*"; "/";
        "%"; "="; "=="; "<"; ">"; "&&"; "||"; "&"; "|"; "^"; "<<"; ">>"; "!";
        "~"; "?"; ":"; "x"; "y"; "foo"; "main"; "0"; "1"; "42"; "2147483647";
        "0x1F"; "7L"; "1.5"; "\"str\""; "'c'"; "__LINE__"; "static "; "for";
        "getchar()"; "malloc"; "free"; " "; "\n"; "//c\n"; "/*c*/";
      ]
  in
  let* n = int_range 0 40 in
  let* parts = list_repeat n token in
  return (String.concat "" parts)

let prop_cached_session_matches_disabled =
  QCheck.Test.make
    ~name:"cached session verdicts = caching-disabled session on random programs"
    ~count:60 (QCheck.make gen_soup)
    (fun soup ->
      let src = "int main() { " ^ soup ^ " ; return 0; }" in
      match Minic.frontend_of_source src with
      | Error _ -> true
      | Ok tp ->
        let cached = Engine.Session.create ~cache_mb:32 () in
        let disabled = Engine.Session.create ~cache_mb:0 () in
        let oc =
          Compdiff.Oracle.create ~session:cached ~fuel:20_000 ~max_fuel:80_000 tp
        in
        let od =
          Compdiff.Oracle.create ~session:disabled ~fuel:20_000 ~max_fuel:80_000
            tp
        in
        List.for_all
          (fun input ->
            let vc = Compdiff.Oracle.check oc ~input in
            (* same input twice: the replay must not change the verdict *)
            vc = Compdiff.Oracle.check od ~input
            && vc = Compdiff.Oracle.check oc ~input)
          [ ""; "A"; "zz" ])

(* random behaviour partitions: n implementations, values in 0..n-1 *)
let gen_partitions =
  let open QCheck.Gen in
  let* n = int_range 2 6 in
  let* nbugs = int_range 0 8 in
  let* parts =
    list_repeat nbugs (array_repeat n (int_range 0 (n - 1)))
  in
  return (n, parts)

let prop_study_matches_reference =
  QCheck.Test.make
    ~name:"partition-cached study = per-subset recomputation reference"
    ~count:200
    (QCheck.make gen_partitions)
    (fun (n, partitions) ->
      Compdiff.Subset.study ~n partitions
      = Compdiff.Subset.study_reference ~n partitions)

let tc name f = Alcotest.test_case name `Quick f

let suites =
  [
    ( "engine.lru",
      [
        tc "find_or_compute" test_lru_basics;
        tc "LRU eviction order" test_lru_eviction_lru_order;
      ] );
    ( "engine.session",
      [
        tc "unit cache" test_unit_cache_hit;
        tc "image cache + observation store" test_image_cache_and_obs_store;
        tc "disabled = passthrough" test_disabled_session_is_passthrough;
        tc "oracles share compiles" test_oracle_shares_session_compiles;
        tc "oracle replay hits the store" test_oracle_replay_hits_obs_store;
      ] );
    ( "engine.diskcache",
      [
        tc "round trip across handles" test_diskcache_roundtrip;
        tc "truncated/corrupt entries are misses" test_diskcache_corruption_is_miss;
        tc "running byte/entry counters" test_diskcache_running_counters;
        tc "GC honors the size cap" test_diskcache_gc_honors_cap;
        tc "session restart warm via disk" test_session_disk_restart;
      ] );
    ( "engine.cross_validation",
      [
        QCheck_alcotest.to_alcotest prop_cached_session_matches_disabled;
        QCheck_alcotest.to_alcotest prop_study_matches_reference;
      ] );
  ]
