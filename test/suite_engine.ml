(* Tests for the engine session layer: the LRU primitive, the
   compile/link/observe caches, and the cross-validation properties the
   caches must satisfy (cached sessions are verdict-identical to the
   caching-disabled reference; the partition-based subset study matches
   the per-subset recomputation). *)

let frontend src =
  match Minic.frontend_of_source src with
  | Ok tp -> tp
  | Error msg -> Alcotest.failf "front end: %s" msg

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let stable_src = "int main() { print(\"ok %d\\n\", getchar()); return 0; }"

let unstable_src =
  "int main() {\n\
   \  int l;\n\
   \  int c = getchar();\n\
   \  if (c > 64) { l = c; }\n\
   \  print(\"%d\\n\", l);\n\
   \  return 0;\n\
   }"

(* --- the LRU primitive --- *)

let test_lru_basics () =
  let l = Engine.Lru.create ~budget_bytes:1000 in
  let v =
    Engine.Lru.find_or_compute l "a" ~weight:(fun _ -> 10) (fun () -> 1)
  in
  check_int "computed" 1 v;
  let v =
    Engine.Lru.find_or_compute l "a" ~weight:(fun _ -> 10) (fun () -> 2)
  in
  check_int "cached, not recomputed" 1 v;
  let s = Engine.Lru.stats l in
  check_int "one hit" 1 s.Engine.Lru.hits;
  check_int "one miss" 1 s.Engine.Lru.misses;
  check_int "one entry" 1 s.Engine.Lru.entries;
  check_int "ten bytes" 10 s.Engine.Lru.bytes

let test_lru_eviction_lru_order () =
  let l = Engine.Lru.create ~budget_bytes:100 in
  let put k = ignore (Engine.Lru.find_or_compute l k ~weight:(fun _ -> 40) (fun () -> k)) in
  put "a";
  put "b";
  (* touch "a" so "b" is the least recently used *)
  check_bool "a cached" true (Engine.Lru.find_opt l "a" = Some "a");
  (* third insert pushes past 100 bytes: evict down to 75 *)
  put "c";
  let s = Engine.Lru.stats l in
  check_bool "evicted at least one entry" true (s.Engine.Lru.evictions >= 1);
  check_bool "within budget" true (s.Engine.Lru.bytes <= 100);
  check_bool "oldest entry (b) evicted first" true
    (Engine.Lru.find_opt l "b" = None);
  check_bool "newest entry survives" true (Engine.Lru.find_opt l "c" = Some "c")

(* --- session caches --- *)

let profile0 = List.hd Cdcompiler.Profiles.all

let test_unit_cache_hit () =
  let s = Engine.Session.create ~cache_mb:16 () in
  let tp = frontend stable_src in
  let u1 = Engine.Session.compile s profile0 tp in
  let u2 = Engine.Session.compile s profile0 tp in
  check_bool "second compile is the cached unit" true (u1 == u2);
  let st = Engine.Session.stats s in
  check_int "unit hit" 1 st.Engine.Session.units.Engine.Session.hits;
  check_int "unit miss" 1 st.Engine.Session.units.Engine.Session.misses;
  (* a structurally equal but physically distinct program hits too:
     keys are content hashes, not physical identity *)
  let tp' = frontend stable_src in
  let u3 = Engine.Session.compile s profile0 tp' in
  check_bool "content-addressed: equal program hits" true (u1 == u3)

let test_image_cache_and_obs_store () =
  let s = Engine.Session.create ~cache_mb:16 () in
  let tp = frontend stable_src in
  let u = Engine.Session.compile s profile0 tp in
  let l1 = Engine.Session.link s u in
  let l2 = Engine.Session.link s u in
  check_bool "re-link is the cached image" true
    (Engine.Session.image l1 == Engine.Session.image l2);
  let o1 = Engine.Session.run s l1 ~input:"A" ~fuel:100_000 in
  let o2 = Engine.Session.run s l2 ~input:"A" ~fuel:100_000 in
  check_bool "replay equals the stored observation" true (o1 = o2);
  Alcotest.(check string) "raw stdout" "ok 65\n" o1.Engine.Session.obs_stdout;
  let st = Engine.Session.stats s in
  check_int "one observation stored" 1
    st.Engine.Session.observations.Engine.Session.entries;
  check_int "one observation hit" 1
    st.Engine.Session.observations.Engine.Session.hits;
  (* a different input or fuel is a different key *)
  let o3 = Engine.Session.run s l1 ~input:"B" ~fuel:100_000 in
  check_bool "different input, different observation" true (o3 <> o1);
  check_int "two observations stored" 2
    (Engine.Session.stats s).Engine.Session.observations.Engine.Session.entries

let test_disabled_session_is_passthrough () =
  let s = Engine.Session.create ~cache_mb:0 () in
  check_bool "caching off" false (Engine.Session.caching s);
  let tp = frontend stable_src in
  let u1 = Engine.Session.compile s profile0 tp in
  let u2 = Engine.Session.compile s profile0 tp in
  check_bool "recompiles every time" true (u1 != u2);
  let st = Engine.Session.stats s in
  check_int "no unit traffic counted" 0
    (st.Engine.Session.units.Engine.Session.hits
    + st.Engine.Session.units.Engine.Session.misses);
  check_bool "stats say disabled" false st.Engine.Session.caching

let test_oracle_shares_session_compiles () =
  (* two oracles over the same program on one session: the second one's
     ten compiles and links are all cache hits *)
  let s = Engine.Session.create ~cache_mb:64 () in
  let tp = frontend unstable_src in
  let o1 = Compdiff.Oracle.create ~session:s tp in
  let st1 = Engine.Session.stats s in
  let o2 = Compdiff.Oracle.create ~session:s tp in
  let st2 = Engine.Session.stats s in
  check_int "no new unit misses for the second oracle"
    st1.Engine.Session.units.Engine.Session.misses
    st2.Engine.Session.units.Engine.Session.misses;
  check_bool "ten unit hits for the second oracle" true
    (st2.Engine.Session.units.Engine.Session.hits
     >= st1.Engine.Session.units.Engine.Session.hits + 10);
  (* and their verdicts agree with each other and with a fresh oracle *)
  List.iter
    (fun input ->
      let v1 = Compdiff.Oracle.check o1 ~input in
      let v2 = Compdiff.Oracle.check o2 ~input in
      let fresh = Compdiff.Oracle.check (Compdiff.Oracle.create tp) ~input in
      check_bool "session oracles agree" true (v1 = v2);
      check_bool "matches a session-free oracle" true (v1 = fresh))
    [ ""; "A"; "Z" ]

let test_oracle_replay_hits_obs_store () =
  let s = Engine.Session.create ~cache_mb:64 () in
  let o = Compdiff.Oracle.create ~session:s (frontend unstable_src) in
  let v1 = Compdiff.Oracle.check o ~input:"" in
  let before = Engine.Session.stats s in
  let v2 = Compdiff.Oracle.check o ~input:"" in
  let after = Engine.Session.stats s in
  check_bool "replayed verdict identical" true (v1 = v2);
  check_int "replay adds no observation misses"
    before.Engine.Session.observations.Engine.Session.misses
    after.Engine.Session.observations.Engine.Session.misses;
  check_bool "replay served from the store" true
    (after.Engine.Session.observations.Engine.Session.hits
    > before.Engine.Session.observations.Engine.Session.hits)

(* --- QCheck cross-validation properties --- *)

(* same token soup the front-end fuzz and oracle suites use *)
let gen_soup =
  let open QCheck.Gen in
  let token =
    oneofl
      [
        "int "; "long "; "double "; "if"; "else"; "while"; "return "; "break";
        "print"; "("; ")"; "{"; "}"; "["; "]"; ";"; ","; "+"; "-"; "*"; "/";
        "%"; "="; "=="; "<"; ">"; "&&"; "||"; "&"; "|"; "^"; "<<"; ">>"; "!";
        "~"; "?"; ":"; "x"; "y"; "foo"; "main"; "0"; "1"; "42"; "2147483647";
        "0x1F"; "7L"; "1.5"; "\"str\""; "'c'"; "__LINE__"; "static "; "for";
        "getchar()"; "malloc"; "free"; " "; "\n"; "//c\n"; "/*c*/";
      ]
  in
  let* n = int_range 0 40 in
  let* parts = list_repeat n token in
  return (String.concat "" parts)

let prop_cached_session_matches_disabled =
  QCheck.Test.make
    ~name:"cached session verdicts = caching-disabled session on random programs"
    ~count:60 (QCheck.make gen_soup)
    (fun soup ->
      let src = "int main() { " ^ soup ^ " ; return 0; }" in
      match Minic.frontend_of_source src with
      | Error _ -> true
      | Ok tp ->
        let cached = Engine.Session.create ~cache_mb:32 () in
        let disabled = Engine.Session.create ~cache_mb:0 () in
        let oc =
          Compdiff.Oracle.create ~session:cached ~fuel:20_000 ~max_fuel:80_000 tp
        in
        let od =
          Compdiff.Oracle.create ~session:disabled ~fuel:20_000 ~max_fuel:80_000
            tp
        in
        List.for_all
          (fun input ->
            let vc = Compdiff.Oracle.check oc ~input in
            (* same input twice: the replay must not change the verdict *)
            vc = Compdiff.Oracle.check od ~input
            && vc = Compdiff.Oracle.check oc ~input)
          [ ""; "A"; "zz" ])

(* random behaviour partitions: n implementations, values in 0..n-1 *)
let gen_partitions =
  let open QCheck.Gen in
  let* n = int_range 2 6 in
  let* nbugs = int_range 0 8 in
  let* parts =
    list_repeat nbugs (array_repeat n (int_range 0 (n - 1)))
  in
  return (n, parts)

let prop_study_matches_reference =
  QCheck.Test.make
    ~name:"partition-cached study = per-subset recomputation reference"
    ~count:200
    (QCheck.make gen_partitions)
    (fun (n, partitions) ->
      Compdiff.Subset.study ~n partitions
      = Compdiff.Subset.study_reference ~n partitions)

let tc name f = Alcotest.test_case name `Quick f

let suites =
  [
    ( "engine.lru",
      [
        tc "find_or_compute" test_lru_basics;
        tc "LRU eviction order" test_lru_eviction_lru_order;
      ] );
    ( "engine.session",
      [
        tc "unit cache" test_unit_cache_hit;
        tc "image cache + observation store" test_image_cache_and_obs_store;
        tc "disabled = passthrough" test_disabled_session_is_passthrough;
        tc "oracles share compiles" test_oracle_shares_session_compiles;
        tc "oracle replay hits the store" test_oracle_replay_hits_obs_store;
      ] );
    ( "engine.cross_validation",
      [
        QCheck_alcotest.to_alcotest prop_cached_session_matches_disabled;
        QCheck_alcotest.to_alcotest prop_study_matches_reference;
      ] );
  ]
