(* IR-level tests of the individual optimization passes, plus a stronger
   random-program agreement property with control flow and guarded array
   accesses (the "legal compilers" invariant under realistic programs). *)

open Cdcompiler
open Ir

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let mk_func code nregs =
  {
    name = "f";
    nparams = 0;
    nregs;
    slots = [||];
    code = Array.of_list code;
    code_lines = [||];
  }

let has f pred = Array.exists pred f.code
let count f pred = Array.fold_left (fun a i -> if pred i then a + 1 else a) 0 f.code

(* --- constfold --- *)

let test_constfold_chain () =
  (* r0=2; r1=3; r2=r0*r1; r3=r2+4 -> all constants *)
  let f =
    mk_func
      [
        Iconst (0, ImmI 2L);
        Iconst (1, ImmI 3L);
        Ibin (Bmul, W32, Csigned, 2, Reg 0, Reg 1);
        Ibin (Badd, W32, Csigned, 3, Reg 2, ImmI 4L);
        Iret (Some (Reg 3));
      ]
      4
  in
  let f' = Opt_constfold.run f in
  check_bool "chain folded" true
    (has f' (function Iconst (3, ImmI 10L) -> true | _ -> false))

let test_constfold_branch () =
  let f =
    mk_func
      [ Iconst (0, ImmI 1L); Ibr (Reg 0, 1, 2); Ilabel 1; Iret None; Ilabel 2; Iret None ]
      1
  in
  let f' = Opt_constfold.run f in
  check_bool "constant branch became a jump" true
    (has f' (function Ijmp 1 -> true | _ -> false))

let test_constfold_shift_poison () =
  (* x << 40 folds to 0 even with x unknown: the UB-exploiting choice *)
  let f = mk_func [ Ibin (Bshl, W32, Csigned, 1, Reg 0, ImmI 40L); Iret (Some (Reg 1)) ] 2 in
  let f' = Opt_constfold.run f in
  check_bool "poisoned shift" true
    (has f' (function Iconst (1, ImmI 0L) -> true | _ -> false))

let test_constfold_resets_at_labels () =
  (* the constant map must not survive a block boundary (a jump may enter
     at the label with a different value in r0) *)
  let f =
    mk_func
      [
        Iconst (0, ImmI 5L);
        Ijmp 1;
        Ilabel 1;
        Ibin (Badd, W32, Csigned, 1, Reg 0, ImmI 1L);
        Iret (Some (Reg 1));
      ]
      2
  in
  let f' = Opt_constfold.run f in
  check_bool "no folding across labels" true
    (has f' (function Ibin (Badd, _, _, 1, _, _) -> true | _ -> false))

(* --- copyprop --- *)

let test_copyprop_invalidation () =
  (* r1 = r0; r0 = 9; r2 = r1 + 0 -- r1 must NOT become the new r0 *)
  let f =
    mk_func
      [
        Imov (1, Reg 0);
        Iconst (0, ImmI 9L);
        Ibin (Badd, W32, Csigned, 2, Reg 1, ImmI 0L);
        Iret (Some (Reg 2));
      ]
      3
  in
  let f' = Opt_copyprop.run f in
  check_bool "stale copy not propagated" false
    (has f' (function Ibin (_, _, _, 2, Reg 0, _) -> true | _ -> false))

(* --- cse --- *)

let test_cse_dedups_lea_and_load () =
  let f =
    mk_func
      [
        Ilea (0, Sglobal "g");
        Iload (1, Reg 0);
        Ilea (2, Sglobal "g");
        Iload (3, Reg 2);
        Ibin (Badd, W32, Csigned, 4, Reg 1, Reg 3);
        Iret (Some (Reg 4));
      ]
      5
  in
  let f' = Opt_cse.run ~unsafe:false f in
  check_int "one lea survives" 1 (count f' (function Ilea _ -> true | _ -> false));
  check_int "one load survives" 1 (count f' (function Iload _ -> true | _ -> false))

let test_cse_store_clobbers_loads () =
  let f =
    mk_func
      [
        Ilea (0, Sglobal "g");
        Iload (1, Reg 0);
        Istore (Reg 0, ImmI 5L);
        Iload (2, Reg 0);
        Ibin (Badd, W32, Csigned, 3, Reg 1, Reg 2);
        Iret (Some (Reg 3));
      ]
      4
  in
  let safe = Opt_cse.run ~unsafe:false f in
  check_int "safe CSE keeps both loads" 2
    (count safe (function Iload _ -> true | _ -> false));
  let unsafe = Opt_cse.run ~unsafe:true f in
  check_int "the buggy CSE merges across the store" 1
    (count unsafe (function Iload _ -> true | _ -> false))

(* --- ubfold --- *)

let test_ubfold_add_pattern () =
  (* (x + y) < x  ~~>  y < 0 *)
  let f =
    mk_func
      [
        Ibin (Badd, W32, Csigned, 1, Reg 0, Reg 9);
        Icmp (Clt, W32, 2, Reg 1, Reg 0);
        Iret (Some (Reg 2));
      ]
      10
  in
  let f' = Opt_ubfold.run ~null_fold:false f in
  check_bool "rewritten to y<0" true
    (has f' (function Icmp (Clt, W32, 2, Reg 9, ImmI 0L) -> true | _ -> false))

let test_ubfold_sub_pattern () =
  (* (x - y) > x  ~~>  y < 0 *)
  let f =
    mk_func
      [
        Ibin (Bsub, W32, Csigned, 1, Reg 0, Reg 9);
        Icmp (Cgt, W32, 2, Reg 1, Reg 0);
        Iret (Some (Reg 2));
      ]
      10
  in
  let f' = Opt_ubfold.run ~null_fold:false f in
  check_bool "rewritten to y<0" true
    (has f' (function Icmp (Clt, W32, 2, Reg 9, ImmI 0L) -> true | _ -> false))

let test_ubfold_requires_signed () =
  (* the same shape with wrap semantics (compiler-introduced) must stay *)
  let f =
    mk_func
      [
        Ibin (Badd, W32, Cwrap, 1, Reg 0, Reg 9);
        Icmp (Clt, W32, 2, Reg 1, Reg 0);
        Iret (Some (Reg 2));
      ]
      10
  in
  let f' = Opt_ubfold.run ~null_fold:false f in
  check_bool "wrap arithmetic not rewritten" true
    (has f' (function Icmp (Clt, W32, 2, Reg 1, Reg 0) -> true | _ -> false))

let test_ubfold_null_check_after_deref () =
  let f =
    mk_func
      [
        Iload (1, Reg 0);
        Ipcmp (Ceq, 2, Reg 0, Nullptr);
        Ibr (Reg 2, 1, 2);
        Ilabel 1;
        Iret (Some (ImmI 1L));
        Ilabel 2;
        Iret (Some (Reg 1));
      ]
      3
  in
  let f' = Opt_ubfold.run ~null_fold:true f in
  check_bool "null test folded to false" true
    (has f' (function Iconst (2, ImmI 0L) -> true | _ -> false))

let test_ubfold_null_trap () =
  let f = mk_func [ Iload (1, Nullptr); Iret (Some (Reg 1)) ] 2 in
  let f' = Opt_ubfold.run ~null_trap:true ~null_fold:false f in
  check_bool "load from null became a trap" true
    (has f' (function Itrap _ -> true | _ -> false))

(* --- dce --- *)

let test_dce_unreachable_after_trap () =
  let f =
    mk_func
      [ Itrap "x"; Iconst (0, ImmI 1L); Iprint [ Flit "dead" ]; Iret None ]
      1
  in
  let f' = Opt_dce.run f in
  check_bool "code after a trap removed" false
    (has f' (function Iprint _ -> true | _ -> false))

let test_dce_keeps_side_effects () =
  let f =
    mk_func
      [
        Iconst (0, ImmI 1L);
        Istore (Reg 0, ImmI 2L); (* not removable even if r0 dead later *)
        Iprint [ Flit "hi" ];
        Iret None;
      ]
      1
  in
  let f' = Opt_dce.run f in
  check_bool "store kept" true (has f' (function Istore _ -> true | _ -> false));
  check_bool "print kept" true (has f' (function Iprint _ -> true | _ -> false))

let test_dce_removes_dead_division () =
  let f =
    mk_func
      [
        Iconst (0, ImmI 0L);
        Ibin (Bdiv, W32, Csigned, 1, ImmI 7L, Reg 0);
        Iret (Some (ImmI 0L));
      ]
      2
  in
  let f' = Opt_dce.run f in
  check_bool "dead division removed" false
    (has f' (function Ibin (Bdiv, _, _, _, _, _) -> true | _ -> false))

(* --- inline --- *)

let test_inline_respects_recursion () =
  let src =
    "int fact(int n) { if (n < 2) return 1; return n * fact(n - 1); }\n\
     int main() { return fact(5); }"
  in
  match Minic.frontend_of_source src with
  | Error e -> Alcotest.failf "frontend: %s" e
  | Ok tp ->
    let u = Pipeline.compile (Profiles.clangx "O3") tp in
    (* recursive callee is never inlined; the call must survive *)
    let main_f = Option.get (Ir.func u "main") in
    check_bool "recursive call survives" true
      (has main_f (function Icall (_, "fact", _) -> true | _ -> false));
    let r = Cdvm.Exec.run ~config:Cdvm.Exec.default_config u in
    check_bool "factorial correct" true (r.Cdvm.Exec.status = Cdvm.Trap.Exit 120)

let test_inline_chain_folds () =
  let src =
    "int three() { return 3; }\n\
     int four() { return three() + 1; }\n\
     int main() { return four() * 10; }"
  in
  match Minic.frontend_of_source src with
  | Error e -> Alcotest.failf "frontend: %s" e
  | Ok tp ->
    let u = Pipeline.compile (Profiles.clangx "O3") tp in
    let main_f = Option.get (Ir.func u "main") in
    check_int "no calls remain" 0 (count main_f (function Icall _ -> true | _ -> false));
    let r = Cdvm.Exec.run ~config:Cdvm.Exec.default_config u in
    check_bool "value" true (r.Cdvm.Exec.status = Cdvm.Trap.Exit 40)

(* --- peephole --- *)

let test_strength_pow2 () =
  let f = mk_func [ Ibin (Bmul, W32, Csigned, 1, Reg 0, ImmI 16L); Iret (Some (Reg 1)) ] 2 in
  let f' = Opt_peephole.strength f in
  check_bool "mul by 16 -> shl 4" true
    (has f' (function Ibin (Bshl, W32, Cwrap, 1, Reg 0, ImmI 4L) -> true | _ -> false))

let test_strength_non_pow2_kept () =
  let f = mk_func [ Ibin (Bmul, W32, Csigned, 1, Reg 0, ImmI 12L); Iret (Some (Reg 1)) ] 2 in
  let f' = Opt_peephole.strength f in
  check_bool "mul by 12 kept" true
    (has f' (function Ibin (Bmul, _, _, _, _, _) -> true | _ -> false))

let test_promote_mul_pattern () =
  let f =
    mk_func
      [
        Ibin (Bmul, W32, Csigned, 1, Reg 0, Reg 0);
        Icast (Sext3264, 2, Reg 1);
        Iret (Some (Reg 2));
      ]
      3
  in
  let f' = Opt_peephole.promote_mul f in
  check_bool "widened to a 64-bit multiply" true
    (has f' (function Ibin (Bmul, W64, _, 2, _, _) -> true | _ -> false))

(* --- whole-pipeline agreement property --- *)

(* random "parser-like" programs: loops over input with guarded array
   accesses and mixed arithmetic; all well-defined by construction *)
let gen_program_src =
  let open QCheck.Gen in
  let arith_op = oneofl [ "+"; "-"; "*" ] in
  let small = int_range 1 9 in
  let* n = int_range 4 8 in
  let* op1 = arith_op and* op2 = arith_op in
  let* k1 = small and* k2 = small and* k3 = small in
  let* use_while = bool in
  let loop_body =
    Printf.sprintf
      "    int c = peek(i);\n\
      \    if (c < 0) { break; }\n\
      \    int slot = (c %s %d) %% %d;\n\
      \    if (slot < 0) { slot = 0 - slot; }\n\
      \    tab[slot] = tab[slot] + 1;\n\
      \    acc = acc %s (c %% %d) %s %d;\n"
      op1 k1 n op2 (k2 + 1) op2 k3
  in
  let loop =
    if use_while then
      Printf.sprintf
        "  int i = 0;\n  while (i < input_len() && i < 24) {\n%s    i = i + 1;\n  }\n"
        loop_body
    else
      Printf.sprintf "  for (int i = 0; i < 24; i++) {\n%s  }\n"
        (String.concat ""
           [ "    if (i >= input_len()) { break; }\n"; loop_body ])
  in
  return
    (Printf.sprintf
       "int main() {\n\
       \  int tab[%d];\n\
       \  for (int z = 0; z < %d; z++) tab[z] = 0;\n\
       \  int acc = 0;\n\
        %s\
       \  for (int z = 0; z < %d; z++) print(\"%%d \", tab[z]);\n\
       \  print(\"| %%d\\n\", acc);\n\
       \  return 0;\n\
        }"
       n n loop n)

let prop_parsers_agree =
  QCheck.Test.make ~name:"all implementations agree on well-defined parsers"
    ~count:40
    QCheck.(pair (make gen_program_src) (string_of_size (QCheck.Gen.int_range 0 12)))
    (fun (src, input) ->
      match Minic.frontend_of_source src with
      | Error _ -> false
      | Ok tp ->
        let oracle = Compdiff.Oracle.create ~fuel:100_000 tp in
        not (Compdiff.Oracle.is_divergence (Compdiff.Oracle.check oracle ~input)))

let tc name f = Alcotest.test_case name `Quick f

let suites =
  [
    ( "passes.constfold",
      [
        tc "chain" test_constfold_chain;
        tc "branch" test_constfold_branch;
        tc "shift poison" test_constfold_shift_poison;
        tc "block boundaries" test_constfold_resets_at_labels;
      ] );
    ("passes.copyprop", [ tc "invalidation" test_copyprop_invalidation ]);
    ( "passes.cse",
      [
        tc "lea/load dedup" test_cse_dedups_lea_and_load;
        tc "store clobbers" test_cse_store_clobbers_loads;
      ] );
    ( "passes.ubfold",
      [
        tc "add pattern" test_ubfold_add_pattern;
        tc "sub pattern" test_ubfold_sub_pattern;
        tc "signedness required" test_ubfold_requires_signed;
        tc "null check after deref" test_ubfold_null_check_after_deref;
        tc "null trap" test_ubfold_null_trap;
      ] );
    ( "passes.dce",
      [
        tc "unreachable after trap" test_dce_unreachable_after_trap;
        tc "side effects kept" test_dce_keeps_side_effects;
        tc "dead division removed" test_dce_removes_dead_division;
      ] );
    ( "passes.inline",
      [
        tc "recursion guard" test_inline_respects_recursion;
        tc "call chains" test_inline_chain_folds;
      ] );
    ( "passes.peephole",
      [
        tc "strength pow2" test_strength_pow2;
        tc "strength non-pow2" test_strength_non_pow2_kept;
        tc "promote mul" test_promote_mul_pattern;
      ] );
    ( "passes.agreement",
      [ QCheck_alcotest.to_alcotest prop_parsers_agree ] );
  ]
