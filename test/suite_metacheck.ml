(* Tests for the metamorphic meta-checker: the typed-AST mapper and
   erasure, both transformation families, and the driver that turns the
   oracle on the sanitizers and static analyzers. *)

open Cdcompiler

let fe src =
  match Minic.frontend_of_source src with
  | Ok tp -> tp
  | Error msg -> Alcotest.failf "front end: %s" msg

let pp = Minic.Pretty.tprogram_to_string

(* the canonical eval-order seed: the oracle diverges (argument
   evaluation order), every sanitizer is silent *)
let evalorder_src =
  "int *addr_string(int v) {\n\
   \  static int buffer[8];\n\
   \  buffer[0] = 48 + v;\n\
   \  buffer[1] = 0;\n\
   \  return buffer;\n\
   }\n\
   int main() {\n\
   \  print(\"who-is %s tell %s\\n\", addr_string(1), addr_string(2));\n\
   \  return 0;\n\
   }"

(* UB-free reference program exercising loops, arithmetic and arrays *)
let clean_src =
  "int sum(int n) {\n\
   \  int acc = 0;\n\
   \  int i = 0;\n\
   \  while (i < n) {\n\
   \    acc = acc + i;\n\
   \    i = i + 1;\n\
   \  }\n\
   \  return acc;\n\
   }\n\
   int main() {\n\
   \  int a[4];\n\
   \  int k = 0;\n\
   \  while (k < 4) {\n\
   \    a[k] = sum(k);\n\
   \    k = k + 1;\n\
   \  }\n\
   \  print(\"%d %d %d %d\\n\", a[0], a[1], a[2], a[3]);\n\
   \  return 0;\n\
   }"

(* --- mapper and erasure --- *)

let test_mapper_identity () =
  List.iter
    (fun src ->
      let tp = fe src in
      let tp' = Minic.Tast.map_program Minic.Tast.default_mapper tp in
      Alcotest.(check string) "identity map" (pp tp) (pp tp'))
    [ evalorder_src; clean_src ]

let test_erase_retypechecks () =
  List.iter
    (fun src ->
      let tp = fe src in
      match Minic.Typecheck.check_program_result (Minic.Tast.erase_program tp) with
      | Error msg -> Alcotest.failf "erased program rejected: %s" msg
      | Ok tp' -> Alcotest.(check string) "round trip is stable" (pp tp) (pp tp'))
    [ evalorder_src; clean_src ]

let test_erase_runs_identically () =
  let tp = fe clean_src in
  let tp' =
    match Minic.Typecheck.check_program_result (Minic.Tast.erase_program tp) with
    | Ok tp' -> tp'
    | Error msg -> Alcotest.failf "retype: %s" msg
  in
  List.iter
    (fun profile ->
      let run t =
        let u = Pipeline.compile profile t in
        let r =
          Cdvm.Exec.run
            ~config:{ Cdvm.Exec.default_config with input = ""; fuel = 200_000 }
            u
        in
        (r.Cdvm.Exec.stdout, r.Cdvm.Exec.status)
      in
      Alcotest.(check bool)
        (Printf.sprintf "identical behaviour under %s" profile.Policy.pname)
        true
        (run tp = run tp'))
    [ Profiles.gccx "O0"; Profiles.gccx "O3"; Profiles.clangx "O2" ]

(* --- preserving twins --- *)

let test_preserving_twins () =
  let tp = fe evalorder_src in
  let twins = Metacheck.Transform.preserving tp in
  Alcotest.(check bool)
    (Printf.sprintf "at least 5 preserving twins (got %d)" (List.length twins))
    true
    (List.length twins >= 5);
  let rules = List.sort_uniq compare (List.map (fun t -> t.Metacheck.Transform.tw_rule) twins) in
  Alcotest.(check bool)
    (Printf.sprintf "at least 3 rule families (got %s)" (String.concat "," rules))
    true
    (List.length rules >= 3);
  List.iter
    (fun (tw : Metacheck.Transform.twin) ->
      match
        Minic.Typecheck.check_program_result
          (Minic.Tast.erase_program tw.Metacheck.Transform.tw_prog)
      with
      | Ok _ -> ()
      | Error msg ->
        Alcotest.failf "twin %s@%d does not re-typecheck: %s"
          tw.Metacheck.Transform.tw_rule tw.Metacheck.Transform.tw_line msg)
    twins

let test_preserving_keeps_behaviour_on_clean () =
  (* on a UB-free program every implementation must behave byte-identically
     on every preserving twin *)
  let tp = fe clean_src in
  let twins = Metacheck.Transform.preserving ~limit_per_rule:2 tp in
  Alcotest.(check bool) "has twins" true (twins <> []);
  let observe t =
    List.map
      (fun profile ->
        let u = Pipeline.compile profile t in
        let r =
          Cdvm.Exec.run
            ~config:{ Cdvm.Exec.default_config with input = ""; fuel = 400_000 }
            u
        in
        (r.Cdvm.Exec.stdout, r.Cdvm.Exec.status))
      Profiles.all
  in
  let base = observe tp in
  List.iter
    (fun (tw : Metacheck.Transform.twin) ->
      match
        Minic.Typecheck.check_program_result
          (Minic.Tast.erase_program tw.Metacheck.Transform.tw_prog)
      with
      | Error msg -> Alcotest.failf "twin rejected: %s" msg
      | Ok tp' ->
        Alcotest.(check bool)
          (Printf.sprintf "twin %s@%d observations identical"
             tw.Metacheck.Transform.tw_rule tw.Metacheck.Transform.tw_line)
          true
          (observe tp' = base))
    twins

(* --- eliminating twins --- *)

let div_src =
  "int main() {\n\
   \  int a = getchar();\n\
   \  int b = getchar();\n\
   \  print(\"%d\\n\", a / (b - b));\n\
   \  return 0;\n\
   }"

let test_guard_div_silences_ubsan () =
  let tp = fe div_src in
  Alcotest.(check bool) "baseline UBSan fires" true
    (Sanitizers.San.detects Sanitizers.San.Ubsan tp ~inputs:[ "AB" ]);
  let elims = Metacheck.Transform.eliminating tp in
  let guard =
    List.find_opt
      (fun e -> e.Metacheck.Transform.el_rule = "guard-div")
      elims
  in
  match guard with
  | None -> Alcotest.fail "guard-div produced no twin"
  | Some el ->
    Alcotest.(check bool) "complete" true el.Metacheck.Transform.el_complete;
    let tp' =
      match
        Minic.Typecheck.check_program_result
          (Minic.Tast.erase_program el.Metacheck.Transform.el_prog)
      with
      | Ok tp' -> tp'
      | Error msg -> Alcotest.failf "twin rejected: %s" msg
    in
    Alcotest.(check bool) "UBSan silent on guarded twin" false
      (Sanitizers.San.detects Sanitizers.San.Ubsan tp' ~inputs:[ "AB" ])

let uninit_src =
  "int main() {\n\
   \  int l;\n\
   \  int c = getchar();\n\
   \  if (c > 64) { l = c; }\n\
   \  if (l > 0) { print(\"pos\\n\"); }\n\
   \  return 0;\n\
   }"

let test_init_decl_silences_msan () =
  let tp = fe uninit_src in
  Alcotest.(check bool) "baseline MSan fires" true
    (Sanitizers.San.detects Sanitizers.San.Msan tp ~inputs:[ "" ]);
  let elims = Metacheck.Transform.eliminating tp in
  match
    List.find_opt (fun e -> e.Metacheck.Transform.el_rule = "init-decl") elims
  with
  | None -> Alcotest.fail "init-decl produced no twin"
  | Some el ->
    let tp' =
      match
        Minic.Typecheck.check_program_result
          (Minic.Tast.erase_program el.Metacheck.Transform.el_prog)
      with
      | Ok tp' -> tp'
      | Error msg -> Alcotest.failf "twin rejected: %s" msg
    in
    Alcotest.(check bool) "MSan silent on initialized twin" false
      (Sanitizers.San.detects Sanitizers.San.Msan tp' ~inputs:[ "" ])

(* --- driver --- *)

let test_driver_xval_fn () =
  (* eval-order seed: oracle diverges, sanitizers silent -> the driver
     must cross-validate a sanitizer FN *)
  let tp = fe evalorder_src in
  let r =
    Metacheck.Driver.analyze_naive ~limit:1 ~name:"evalorder" tp ~inputs:[ "" ]
  in
  Alcotest.(check (list (pair string string))) "all twins re-typecheck" []
    r.Metacheck.Driver.mc_retype_failures;
  Alcotest.(check bool) "oracle diverges at baseline" true
    (r.Metacheck.Driver.mc_baseline.Metacheck.Driver.v_oracle <> []);
  let xval =
    List.filter
      (fun f -> f.Metacheck.Driver.fl_what = Metacheck.Driver.Xval_fn)
      r.Metacheck.Driver.mc_flags
  in
  Alcotest.(check int) "one cross-validated FN per sanitizer" 3
    (List.length xval)

let test_driver_fp_on_guarded_div () =
  (* constant-zero divisor: Cppcheck-like pattern-matches the division
     inside the guard-div twin's conditional and keeps reporting -- a
     metamorphically exposed FP *)
  let tp = fe div_src in
  let r =
    Metacheck.Driver.analyze_naive ~limit:1 ~name:"div" tp ~inputs:[ "AB" ]
  in
  Alcotest.(check (list (pair string string))) "all twins re-typecheck" []
    r.Metacheck.Driver.mc_retype_failures;
  let fps =
    List.filter
      (fun f -> f.Metacheck.Driver.fl_what = Metacheck.Driver.Fp)
      r.Metacheck.Driver.mc_flags
  in
  Alcotest.(check bool) "at least one FP flagged" true (fps <> [])

let test_driver_batched_equals_naive () =
  let tp = fe div_src in
  let naive =
    Metacheck.Driver.analyze_naive ~limit:1 ~name:"div" tp ~inputs:[ "AB" ]
  in
  let batched =
    Metacheck.Driver.analyze ~limit:1 ~name:"div" tp ~inputs:[ "AB" ]
  in
  Alcotest.(check string) "batched and naive flags agree"
    (Metacheck.Driver.essence naive)
    (Metacheck.Driver.essence batched)

(* --- QCheck property: preserving transforms are invisible on UB-free
   programs (Juliet "good" variants) --- *)

let qcheck_preserving_on_good =
  let cases = Juliet.Suite.quick ~per_cwe:1 () in
  let profiles =
    [ Profiles.gccx "O0"; Profiles.gccx "O2"; Profiles.clangx "O3" ]
  in
  QCheck.Test.make ~name:"preserving twins: retypecheck + identical runs on good"
    ~count:10
    QCheck.(int_range 0 (List.length cases - 1))
    (fun i ->
      let case = List.nth cases i in
      let tp = Juliet.Testcase.frontend_good case in
      let inputs = case.Juliet.Testcase.inputs in
      let observe t =
        List.map
          (fun profile ->
            let u = Pipeline.compile profile t in
            List.map
              (fun input ->
                let r =
                  Cdvm.Exec.run
                    ~config:
                      { Cdvm.Exec.default_config with input; fuel = 400_000 }
                    u
                in
                (r.Cdvm.Exec.stdout, r.Cdvm.Exec.status))
              inputs)
          profiles
      in
      let base = observe tp in
      List.for_all
        (fun (tw : Metacheck.Transform.twin) ->
          match
            Minic.Typecheck.check_program_result
              (Minic.Tast.erase_program tw.Metacheck.Transform.tw_prog)
          with
          | Error _ -> false
          | Ok tp' -> observe tp' = base)
        (Metacheck.Transform.preserving ~limit_per_rule:1 tp))

let suites =
  [
    ( "metacheck.tast",
      [
        Alcotest.test_case "mapper identity" `Quick test_mapper_identity;
        Alcotest.test_case "erase re-typechecks" `Quick test_erase_retypechecks;
        Alcotest.test_case "erase runs identically" `Quick
          test_erase_runs_identically;
      ] );
    ( "metacheck.transform",
      [
        Alcotest.test_case "preserving twins" `Quick test_preserving_twins;
        Alcotest.test_case "preserving keeps behaviour" `Slow
          test_preserving_keeps_behaviour_on_clean;
        Alcotest.test_case "guard-div silences UBSan" `Quick
          test_guard_div_silences_ubsan;
        Alcotest.test_case "init-decl silences MSan" `Quick
          test_init_decl_silences_msan;
      ] );
    ( "metacheck.driver",
      [
        Alcotest.test_case "cross-validated sanitizer FN" `Slow
          test_driver_xval_fn;
        Alcotest.test_case "FP on guarded division" `Slow
          test_driver_fp_on_guarded_div;
        Alcotest.test_case "batched equals naive" `Slow
          test_driver_batched_equals_naive;
      ] );
    ( "metacheck.property",
      [ QCheck_alcotest.to_alcotest qcheck_preserving_on_good ] );
  ]
