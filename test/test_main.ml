(* Test entry point: each [Suite_*] module contributes alcotest suites. *)

let () =
  Alcotest.run "compdiff"
    (Suite_util.suites @ Suite_minic.suites @ Suite_compiler.suites
   @ Suite_sanitizers.suites @ Suite_engine.suites @ Suite_compdiff.suites
   @ Suite_static.suites @ Suite_fuzz.suites @ Suite_reduce.suites
   @ Suite_juliet.suites @ Suite_projects.suites @ Suite_vm.suites
   @ Suite_passes.suites @ Suite_frontend_fuzz.suites
   @ Suite_metacheck.suites @ Suite_serve.suites @ Suite_gen.suites
   @ Suite_trace.suites)
