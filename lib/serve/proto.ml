(* Wire protocol of the CompDiff oracle daemon (DESIGN.md §13).

   Transport: a Unix-domain stream socket.  After a fixed-size
   handshake ("CDS1" + u32 protocol version from the client, echoed by
   the server), the connection carries length-prefixed frames in both
   directions:

     u32 payload-length | payload

   Every payload starts with a u32 request id (chosen by the client,
   echoed verbatim in the matching response — responses to one client
   may be reordered by the scheduler, the id is what correlates them)
   followed by a u8 message tag and tag-specific fields.  All integers
   are little-endian u32 unless noted; strings and lists are
   length/count-prefixed.  The codecs are hand-rolled rather than
   [Marshal]: the payload layout is part of the versioned protocol
   surface, independent of the OCaml runtime on either end, and a
   malformed frame can never reach the unmarshaller of a long-running
   server.

   Versioning: [version] covers the whole request/response surface.  A
   server refuses a handshake whose version differs from its own (the
   reply carries the server's version, so the client can report the
   mismatch precisely); unknown message tags inside an accepted
   connection raise {!Malformed}, which the server answers with an
   [Err] response rather than dying. *)

exception Malformed of string

let version = 2
let hello_magic = "CDS1"
let hello_bytes = 8  (* magic + u32 version *)

(* frames above this are refused before allocation: a garbage length
   prefix must not make the server allocate gigabytes *)
let max_frame_bytes = 64 * 1024 * 1024

(* --- requests --- *)

type check_req = {
  ck_source : string;        (* MiniC source text; compiled server-side *)
  ck_inputs : string list;   (* one verdict per input, in order *)
  ck_profiles : string list; (* [] = the server's default (all ten) *)
  ck_fuel : int;             (* 0 = the server's default budget *)
  ck_strip : bool;           (* strip 0x... addresses before comparing *)
}

type fuzz_req = {
  fz_source : string;
  fz_execs : int;
  fz_seed : int;
  fz_seeds : string list;
  fz_profiles : string list;
  fz_fuel : int;
}

type metacheck_req = {
  mc_source : string;
  mc_inputs : string list;
  mc_limit : int;            (* preserving twins per transformation rule *)
  mc_profiles : string list;
  mc_fuel : int;
}

type reduce_req = {
  rd_source : string;
  rd_input : string;         (* the diverging input to shrink *)
  rd_max_checks : int;
  rd_profiles : string list;
  rd_fuel : int;
}

type explore_req = {
  ex_source : string;
  ex_input : string;         (* the (ideally reduced) diverging input *)
  ex_profiles : string list;
  ex_fuel : int;
  ex_limit : int;            (* step-recording cap; 0 = server default *)
}

type request =
  | Ping                     (* heartbeat: keeps the idle timers at bay *)
  | Get_stats
  | Check of check_req
  | Fuzz of fuzz_req
  | Metacheck of metacheck_req
  | Reduce of reduce_req
  | Explore of explore_req

(* --- responses --- *)

type obs = {
  ob_impl : string;
  ob_output : string;        (* normalized stdout *)
  ob_status : string;        (* Trap.status_to_string rendering *)
  ob_fuel : int;
}

type verdict =
  | V_agree of obs           (* ob_impl = "" : shared by every impl *)
  | V_diverge of obs list    (* per-implementation, in impl order *)

type client_stat = {
  cs_id : int;
  cs_outstanding : int;      (* queued + executing requests (credits used) *)
  cs_completed : int;
  cs_shed : int;             (* requests refused with Busy *)
}

type sched_stats = {
  sr_requests : int;         (* work requests accepted *)
  sr_shed : int;             (* work requests refused (quota exceeded) *)
  sr_flights : int;          (* oracle/driver executions *)
  sr_checks : int;           (* check inputs served *)
  sr_joined : int;           (* check requests that rode an existing flight *)
  sr_queue_depth : int;      (* work items waiting for an executor *)
  sr_pool_pending : int;     (* Cdutil.Pool backlog *)
  sr_oracles : int;          (* warm oracles resident *)
  sr_clients : client_stat list;
}

type stats_reply = {
  st_session : string;       (* Engine.Session.stats_to_json *)
  st_oracle : string;        (* aggregate Oracle.stats_to_json *)
  st_sched : sched_stats;
}

type fuzz_reply = {
  fr_execs : int;
  fr_divergent : int;
  fr_unique : int;
  fr_reports : (string * string) list;  (* (input, divergence report) *)
}

type metacheck_reply = {
  mr_preserving : int;
  mr_eliminating : int;
  mr_retype_failures : int;
  mr_flags : (string * string * string * string) list;
      (* (tool, rule, what, detail) *)
}

type reduce_reply = {
  rr_found : bool;           (* false: the input did not diverge *)
  rr_input : string;
  rr_reduced : string;
  rr_checks : int;
  rr_report : string;
}

type explore_reply = {
  er_found : bool;           (* false: the input did not diverge *)
  er_impl_a : string;        (* "" when not found *)
  er_impl_b : string;
  er_step_a : int;           (* first diverging step per side; -1 = none *)
  er_step_b : int;
  er_line : int;             (* attributed source line; -1 = unknown *)
  er_probes : int;           (* bisection probes spent on alignment *)
  er_report : string;        (* Localize.deep_to_string rendering *)
}

type response =
  | Pong
  | Stats_reply of stats_reply
  | Check_reply of verdict list
  | Fuzz_reply of fuzz_reply
  | Metacheck_reply of metacheck_reply
  | Reduce_reply of reduce_reply
  | Explore_reply of explore_reply
  | Busy of int              (* backpressure: the client's quota *)
  | Err of string

(* --- primitive codecs --- *)

let put_u8 buf n = Buffer.add_char buf (Char.chr (n land 0xff))

let put_u32 buf n =
  if n < 0 || n > 0xFFFFFFFF then
    invalid_arg (Printf.sprintf "Proto.put_u32: %d out of range" n);
  Buffer.add_char buf (Char.chr (n land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 24) land 0xff))

let put_bool buf b = put_u8 buf (if b then 1 else 0)

let put_str buf s =
  put_u32 buf (String.length s);
  Buffer.add_string buf s

let put_list buf put xs =
  put_u32 buf (List.length xs);
  List.iter (put buf) xs

(* a decode cursor over one payload *)
type cursor = { data : string; mutable pos : int }

let need c n =
  if c.pos + n > String.length c.data then
    raise (Malformed "truncated payload")

let get_u8 c =
  need c 1;
  let v = Char.code c.data.[c.pos] in
  c.pos <- c.pos + 1;
  v

let get_u32 c =
  need c 4;
  let b i = Char.code c.data.[c.pos + i] in
  let v = b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24) in
  c.pos <- c.pos + 4;
  v

let get_bool c = get_u8 c <> 0

let get_str c =
  let n = get_u32 c in
  need c n;
  let s = String.sub c.data c.pos n in
  c.pos <- c.pos + n;
  s

let get_list c get =
  let n = get_u32 c in
  List.init n (fun _ -> get c)

let finished c =
  if c.pos <> String.length c.data then
    raise (Malformed "trailing bytes in payload")

(* --- request codec --- *)

let tag_ping = 0
let tag_stats = 1
let tag_check = 2
let tag_fuzz = 3
let tag_metacheck = 4
let tag_reduce = 5
let tag_explore = 6

let encode_request ~(id : int) (r : request) : string =
  let buf = Buffer.create 128 in
  put_u32 buf id;
  (match r with
  | Ping -> put_u8 buf tag_ping
  | Get_stats -> put_u8 buf tag_stats
  | Check k ->
      put_u8 buf tag_check;
      put_str buf k.ck_source;
      put_list buf put_str k.ck_inputs;
      put_list buf put_str k.ck_profiles;
      put_u32 buf k.ck_fuel;
      put_bool buf k.ck_strip
  | Fuzz f ->
      put_u8 buf tag_fuzz;
      put_str buf f.fz_source;
      put_u32 buf f.fz_execs;
      put_u32 buf f.fz_seed;
      put_list buf put_str f.fz_seeds;
      put_list buf put_str f.fz_profiles;
      put_u32 buf f.fz_fuel
  | Metacheck m ->
      put_u8 buf tag_metacheck;
      put_str buf m.mc_source;
      put_list buf put_str m.mc_inputs;
      put_u32 buf m.mc_limit;
      put_list buf put_str m.mc_profiles;
      put_u32 buf m.mc_fuel
  | Reduce r ->
      put_u8 buf tag_reduce;
      put_str buf r.rd_source;
      put_str buf r.rd_input;
      put_u32 buf r.rd_max_checks;
      put_list buf put_str r.rd_profiles;
      put_u32 buf r.rd_fuel
  | Explore e ->
      put_u8 buf tag_explore;
      put_str buf e.ex_source;
      put_str buf e.ex_input;
      put_list buf put_str e.ex_profiles;
      put_u32 buf e.ex_fuel;
      put_u32 buf e.ex_limit);
  Buffer.contents buf

let decode_request (payload : string) : int * request =
  let c = { data = payload; pos = 0 } in
  let id = get_u32 c in
  let tag = get_u8 c in
  let r =
    if tag = tag_ping then Ping
    else if tag = tag_stats then Get_stats
    else if tag = tag_check then begin
      let ck_source = get_str c in
      let ck_inputs = get_list c get_str in
      let ck_profiles = get_list c get_str in
      let ck_fuel = get_u32 c in
      let ck_strip = get_bool c in
      Check { ck_source; ck_inputs; ck_profiles; ck_fuel; ck_strip }
    end
    else if tag = tag_fuzz then begin
      let fz_source = get_str c in
      let fz_execs = get_u32 c in
      let fz_seed = get_u32 c in
      let fz_seeds = get_list c get_str in
      let fz_profiles = get_list c get_str in
      let fz_fuel = get_u32 c in
      Fuzz { fz_source; fz_execs; fz_seed; fz_seeds; fz_profiles; fz_fuel }
    end
    else if tag = tag_metacheck then begin
      let mc_source = get_str c in
      let mc_inputs = get_list c get_str in
      let mc_limit = get_u32 c in
      let mc_profiles = get_list c get_str in
      let mc_fuel = get_u32 c in
      Metacheck { mc_source; mc_inputs; mc_limit; mc_profiles; mc_fuel }
    end
    else if tag = tag_reduce then begin
      let rd_source = get_str c in
      let rd_input = get_str c in
      let rd_max_checks = get_u32 c in
      let rd_profiles = get_list c get_str in
      let rd_fuel = get_u32 c in
      Reduce { rd_source; rd_input; rd_max_checks; rd_profiles; rd_fuel }
    end
    else if tag = tag_explore then begin
      let ex_source = get_str c in
      let ex_input = get_str c in
      let ex_profiles = get_list c get_str in
      let ex_fuel = get_u32 c in
      let ex_limit = get_u32 c in
      Explore { ex_source; ex_input; ex_profiles; ex_fuel; ex_limit }
    end
    else raise (Malformed (Printf.sprintf "unknown request tag %d" tag))
  in
  finished c;
  (id, r)

(* --- response codec --- *)

let rtag_pong = 0
let rtag_stats = 1
let rtag_check = 2
let rtag_fuzz = 3
let rtag_metacheck = 4
let rtag_reduce = 5
let rtag_busy = 6
let rtag_err = 7
let rtag_explore = 8

let put_obs buf (o : obs) =
  put_str buf o.ob_impl;
  put_str buf o.ob_output;
  put_str buf o.ob_status;
  put_u32 buf o.ob_fuel

let get_obs c : obs =
  let ob_impl = get_str c in
  let ob_output = get_str c in
  let ob_status = get_str c in
  let ob_fuel = get_u32 c in
  { ob_impl; ob_output; ob_status; ob_fuel }

let put_verdict buf = function
  | V_agree o ->
      put_u8 buf 0;
      put_obs buf o
  | V_diverge os ->
      put_u8 buf 1;
      put_list buf put_obs os

let get_verdict c =
  match get_u8 c with
  | 0 -> V_agree (get_obs c)
  | 1 -> V_diverge (get_list c get_obs)
  | n -> raise (Malformed (Printf.sprintf "unknown verdict tag %d" n))

let put_client_stat buf (s : client_stat) =
  put_u32 buf s.cs_id;
  put_u32 buf s.cs_outstanding;
  put_u32 buf s.cs_completed;
  put_u32 buf s.cs_shed

let get_client_stat c : client_stat =
  let cs_id = get_u32 c in
  let cs_outstanding = get_u32 c in
  let cs_completed = get_u32 c in
  let cs_shed = get_u32 c in
  { cs_id; cs_outstanding; cs_completed; cs_shed }

let put_pair buf (a, b) =
  put_str buf a;
  put_str buf b

let get_pair c =
  let a = get_str c in
  let b = get_str c in
  (a, b)

let encode_response ~(id : int) (r : response) : string =
  let buf = Buffer.create 128 in
  put_u32 buf id;
  (match r with
  | Pong -> put_u8 buf rtag_pong
  | Stats_reply s ->
      put_u8 buf rtag_stats;
      put_str buf s.st_session;
      put_str buf s.st_oracle;
      let h = s.st_sched in
      put_u32 buf h.sr_requests;
      put_u32 buf h.sr_shed;
      put_u32 buf h.sr_flights;
      put_u32 buf h.sr_checks;
      put_u32 buf h.sr_joined;
      put_u32 buf h.sr_queue_depth;
      put_u32 buf h.sr_pool_pending;
      put_u32 buf h.sr_oracles;
      put_list buf put_client_stat h.sr_clients
  | Check_reply vs ->
      put_u8 buf rtag_check;
      put_list buf put_verdict vs
  | Fuzz_reply f ->
      put_u8 buf rtag_fuzz;
      put_u32 buf f.fr_execs;
      put_u32 buf f.fr_divergent;
      put_u32 buf f.fr_unique;
      put_list buf put_pair f.fr_reports
  | Metacheck_reply m ->
      put_u8 buf rtag_metacheck;
      put_u32 buf m.mr_preserving;
      put_u32 buf m.mr_eliminating;
      put_u32 buf m.mr_retype_failures;
      put_list buf
        (fun buf (a, b, c, d) ->
          put_str buf a;
          put_str buf b;
          put_str buf c;
          put_str buf d)
        m.mr_flags
  | Reduce_reply r ->
      put_u8 buf rtag_reduce;
      put_bool buf r.rr_found;
      put_str buf r.rr_input;
      put_str buf r.rr_reduced;
      put_u32 buf r.rr_checks;
      put_str buf r.rr_report
  | Explore_reply e ->
      put_u8 buf rtag_explore;
      put_bool buf e.er_found;
      put_str buf e.er_impl_a;
      put_str buf e.er_impl_b;
      (* -1 sentinels ride the wire shifted by one: u32 is unsigned *)
      put_u32 buf (e.er_step_a + 1);
      put_u32 buf (e.er_step_b + 1);
      put_u32 buf (e.er_line + 1);
      put_u32 buf e.er_probes;
      put_str buf e.er_report
  | Busy quota ->
      put_u8 buf rtag_busy;
      put_u32 buf quota
  | Err msg ->
      put_u8 buf rtag_err;
      put_str buf msg);
  Buffer.contents buf

let decode_response (payload : string) : int * response =
  let c = { data = payload; pos = 0 } in
  let id = get_u32 c in
  let tag = get_u8 c in
  let r =
    if tag = rtag_pong then Pong
    else if tag = rtag_stats then begin
      let st_session = get_str c in
      let st_oracle = get_str c in
      let sr_requests = get_u32 c in
      let sr_shed = get_u32 c in
      let sr_flights = get_u32 c in
      let sr_checks = get_u32 c in
      let sr_joined = get_u32 c in
      let sr_queue_depth = get_u32 c in
      let sr_pool_pending = get_u32 c in
      let sr_oracles = get_u32 c in
      let sr_clients = get_list c get_client_stat in
      Stats_reply
        {
          st_session;
          st_oracle;
          st_sched =
            {
              sr_requests;
              sr_shed;
              sr_flights;
              sr_checks;
              sr_joined;
              sr_queue_depth;
              sr_pool_pending;
              sr_oracles;
              sr_clients;
            };
        }
    end
    else if tag = rtag_check then Check_reply (get_list c get_verdict)
    else if tag = rtag_fuzz then begin
      let fr_execs = get_u32 c in
      let fr_divergent = get_u32 c in
      let fr_unique = get_u32 c in
      let fr_reports = get_list c get_pair in
      Fuzz_reply { fr_execs; fr_divergent; fr_unique; fr_reports }
    end
    else if tag = rtag_metacheck then begin
      let mr_preserving = get_u32 c in
      let mr_eliminating = get_u32 c in
      let mr_retype_failures = get_u32 c in
      let mr_flags =
        get_list c (fun c ->
            let a = get_str c in
            let b = get_str c in
            let w = get_str c in
            let d = get_str c in
            (a, b, w, d))
      in
      Metacheck_reply { mr_preserving; mr_eliminating; mr_retype_failures; mr_flags }
    end
    else if tag = rtag_reduce then begin
      let rr_found = get_bool c in
      let rr_input = get_str c in
      let rr_reduced = get_str c in
      let rr_checks = get_u32 c in
      let rr_report = get_str c in
      Reduce_reply { rr_found; rr_input; rr_reduced; rr_checks; rr_report }
    end
    else if tag = rtag_explore then begin
      let er_found = get_bool c in
      let er_impl_a = get_str c in
      let er_impl_b = get_str c in
      let er_step_a = get_u32 c - 1 in
      let er_step_b = get_u32 c - 1 in
      let er_line = get_u32 c - 1 in
      let er_probes = get_u32 c in
      let er_report = get_str c in
      Explore_reply
        {
          er_found;
          er_impl_a;
          er_impl_b;
          er_step_a;
          er_step_b;
          er_line;
          er_probes;
          er_report;
        }
    end
    else if tag = rtag_busy then Busy (get_u32 c)
    else if tag = rtag_err then Err (get_str c)
    else raise (Malformed (Printf.sprintf "unknown response tag %d" tag))
  in
  finished c;
  (id, r)

(* --- framed socket IO --- *)

let really_write fd (s : string) : unit =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    let w = Unix.write fd b !off (n - !off) in
    if w <= 0 then raise End_of_file;
    off := !off + w
  done

(* [None] on a clean EOF at a frame boundary; [End_of_file] mid-frame *)
let really_read fd n : string option =
  let b = Bytes.create n in
  let off = ref 0 in
  let eof = ref false in
  while (not !eof) && !off < n do
    match Unix.read fd b !off (n - !off) with
    | 0 -> if !off = 0 then eof := true else raise End_of_file
    | r -> off := !off + r
  done;
  if !eof then None else Some (Bytes.unsafe_to_string b)

let write_frame fd (payload : string) : unit =
  let buf = Buffer.create (4 + String.length payload) in
  put_u32 buf (String.length payload);
  Buffer.add_string buf payload;
  really_write fd (Buffer.contents buf)

let u32_of_header (s : string) : int =
  Char.code s.[0]
  lor (Char.code s.[1] lsl 8)
  lor (Char.code s.[2] lsl 16)
  lor (Char.code s.[3] lsl 24)

let read_frame fd : string option =
  match really_read fd 4 with
  | None -> None
  | Some hdr ->
      let len = u32_of_header hdr in
      if len > max_frame_bytes then
        raise (Malformed (Printf.sprintf "frame of %d bytes refused" len));
      (match really_read fd len with
      | None -> raise End_of_file
      | Some payload -> Some payload)

(* --- handshake --- *)

let hello () : string =
  let buf = Buffer.create hello_bytes in
  Buffer.add_string buf hello_magic;
  put_u32 buf version;
  Buffer.contents buf

(* parse a hello blob; the version it carries (ours or not) *)
let parse_hello (s : string) : int =
  if String.length s <> hello_bytes || String.sub s 0 4 <> hello_magic then
    raise (Malformed "bad handshake magic");
  u32_of_header (String.sub s 4 4)
