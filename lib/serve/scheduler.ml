(* The serve-daemon scheduler (DESIGN.md §13): many client connections,
   one warm engine.

   Work requests from every client land in one FIFO; a small set of
   executor threads drains it.  The perf core is cross-client batching:
   when an executor pops a differential-check request it also claims
   every other queued check with the same oracle key (same source,
   profile set, fuel, normalization — from ANY client) and serves the
   whole group through ONE {!Compdiff.Oracle.check_batch} flight.  The
   oracle's binsig dedup then executes each behavioural class once per
   fuel level for the union of all riders' inputs, and the engine
   session's observation store serves repeats without executing at all —
   so concurrent clients asking about the same unit/image share one
   execution instead of re-running it per request.  Verdicts are
   positionally identical to per-request [check] calls by
   {!Compdiff.Oracle.check_batch}'s contract, so batching is invisible
   to clients.

   Backpressure is credit-based: each client holds [quota] credits; a
   work request consumes one on acceptance and returns it with the
   response.  A request arriving while the client has no credits is
   answered [Busy] IMMEDIATELY (never queued), so a slow or flooding
   client sheds its own load instead of growing the shared queue and
   stalling the pool for everyone else.  When a client dies or is timed
   out by the server, its queued requests are dropped and its credits
   vanish with it — a wedged client cannot pin queue slots forever.

   Oracles are compiled programs; compiling ten profiles dwarfs a check.
   A bounded warm table keyed by (source, profiles, fuel, strip) keeps
   recently used oracles alive across requests and clients — the
   daemon's reason to exist — and evicts least-recently-used beyond
   [max_oracles].  Heavy requests (fuzz campaigns, metacheck sweeps,
   reductions) run unbatched, one executor each, through the same shared
   session, so their compiles and observations warm the same caches. *)

type config = {
  session : Engine.Session.t;
  quota : int;            (* credits per client *)
  executors : int;        (* worker threads draining the queue *)
  max_oracles : int;      (* warm-oracle table bound *)
  default_fuel : int;
  default_profiles : Cdcompiler.Policy.profile list;
}

let default_config ?session () =
  {
    session =
      (match session with
      | Some s -> s
      | None -> Engine.Session.create ~cache_mb:128 ());
    quota = 32;
    executors = 2;
    max_oracles = 32;
    default_fuel = 200_000;
    default_profiles = Cdcompiler.Profiles.all;
  }

type client = {
  cl_id : int;
  cl_respond : int -> Proto.response -> unit;
      (* invoked from executor threads; must be safe to call after the
         connection died (writes there are dropped by the server) *)
  mutable cl_outstanding : int;  (* credits in use; under [mutex] *)
  mutable cl_completed : int;
  mutable cl_shed : int;
  mutable cl_dead : bool;
}

type item = {
  it_client : client;
  it_id : int;                   (* request id, echoed in the response *)
  it_req : Proto.request;
  it_okey : string option;       (* oracle key for coalescible checks *)
}

type t = {
  cfg : config;
  mutex : Mutex.t;
  cond : Condition.t;
  queue : item Queue.t;
  mutable stopping : bool;
  mutable threads : Thread.t list;
  mutable next_client : int;
  mutable clients : client list;
  oracles : (string, Compdiff.Oracle.t * int ref) Hashtbl.t;
      (* okey -> (oracle, last-use tick); under [mutex] *)
  mutable oracle_clock : int;
  (* counters (atomic: read by the stats path without the mutex) *)
  c_requests : int Atomic.t;
  c_shed : int Atomic.t;
  c_flights : int Atomic.t;
  c_checks : int Atomic.t;
  c_joined : int Atomic.t;
}

(* --- oracle key / construction --- *)

let okey_of_check (k : Proto.check_req) : string =
  (* exact source + exact profile list + fuel + strip: two requests with
     equal keys are served by one oracle with identical verdicts *)
  Printf.sprintf "%d|%b|%s|%s" k.ck_fuel k.ck_strip
    (String.concat "," k.ck_profiles)
    k.ck_source

exception Refused of string

let profiles_of_names cfg = function
  | [] -> cfg.default_profiles
  | names ->
      List.map
        (fun n ->
          match Cdcompiler.Profiles.by_name n with
          | Some p -> p
          | None -> raise (Refused (Printf.sprintf "unknown profile %s" n)))
        names

let frontend source =
  match Minic.frontend_of_source source with
  | Ok tp -> tp
  | Error msg -> raise (Refused (Printf.sprintf "parse error: %s" msg))

let fuel_or cfg fuel = if fuel <= 0 then cfg.default_fuel else fuel

(* under [t.mutex] *)
let evict_oracles_locked t =
  if Hashtbl.length t.oracles >= t.cfg.max_oracles then begin
    (* evict the least recently used warm oracle *)
    let victim = ref None in
    Hashtbl.iter
      (fun key (_, tick) ->
        match !victim with
        | Some (_, vt) when vt <= !tick -> ()
        | _ -> victim := Some (key, !tick))
      t.oracles;
    match !victim with
    | Some (vkey, _) -> Hashtbl.remove t.oracles vkey
    | None -> ()
  end

(* Warm-table lookup.  A miss compiles OUTSIDE the mutex — oracle
   construction compiles every profile and must not block submit, stats
   or the other executors.  Two executors racing on the same key both
   compile (the loser's work is cheap: the session's unit/image caches
   absorb the duplicate) and the first insertion wins, so every rider of
   a key uses one oracle object. *)
let oracle_for t (k : Proto.check_req) : Compdiff.Oracle.t =
  let key = okey_of_check k in
  Mutex.lock t.mutex;
  t.oracle_clock <- t.oracle_clock + 1;
  let hit =
    match Hashtbl.find_opt t.oracles key with
    | Some (o, tick) ->
        tick := t.oracle_clock;
        Some o
    | None -> None
  in
  Mutex.unlock t.mutex;
  match hit with
  | Some o -> o
  | None -> (
      let profiles = profiles_of_names t.cfg k.ck_profiles in
      let normalize =
        if k.ck_strip then Compdiff.Normalize.strip_hex_addresses
        else Compdiff.Normalize.identity
      in
      let o =
        Compdiff.Oracle.create ~session:t.cfg.session ~profiles ~normalize
          ~fuel:(fuel_or t.cfg k.ck_fuel) (frontend k.ck_source)
      in
      Mutex.lock t.mutex;
      t.oracle_clock <- t.oracle_clock + 1;
      let r =
        match Hashtbl.find_opt t.oracles key with
        | Some (o', tick) ->
            (* lost the race: keep the established oracle *)
            tick := t.oracle_clock;
            o'
        | None ->
            evict_oracles_locked t;
            Hashtbl.add t.oracles key (o, ref t.oracle_clock);
            o
      in
      Mutex.unlock t.mutex;
      r)

(* --- response construction --- *)

let obs_to_proto (name, (o : Compdiff.Oracle.observation)) : Proto.obs =
  {
    Proto.ob_impl = name;
    ob_output = o.Compdiff.Oracle.output;
    ob_status = Cdvm.Trap.status_to_string o.Compdiff.Oracle.status;
    ob_fuel = o.Compdiff.Oracle.fuel_used;
  }

let verdict_to_proto : Compdiff.Oracle.verdict -> Proto.verdict = function
  | Compdiff.Oracle.Agree o -> Proto.V_agree (obs_to_proto ("", o))
  | Compdiff.Oracle.Diverge obs -> Proto.V_diverge (List.map obs_to_proto obs)

(* respond and return the credit *)
let respond t (it : item) (r : Proto.response) : unit =
  Mutex.lock t.mutex;
  let dead = it.it_client.cl_dead in
  it.it_client.cl_outstanding <- it.it_client.cl_outstanding - 1;
  it.it_client.cl_completed <- it.it_client.cl_completed + 1;
  Mutex.unlock t.mutex;
  if not dead then try it.it_client.cl_respond it.it_id r with _ -> ()

let reply_of_exn = function
  | Refused msg -> Proto.Err msg
  | e -> Proto.Err (Printf.sprintf "internal error: %s" (Printexc.to_string e))

(* run [f], respond to [it] with its reply (or the error) *)
let guarded t it f =
  let reply = try f () with e -> reply_of_exn e in
  respond t it reply

(* --- flight execution (outside the mutex) --- *)

(* One coalesced check flight: the concatenated inputs of every rider go
   through a single [check_batch]; the verdict array is then split back
   per rider, in order. *)
let run_check_flight t (riders : (item * Proto.check_req) list) : unit =
  Atomic.incr t.c_flights;
  let joined = List.length riders - 1 in
  if joined > 0 then ignore (Atomic.fetch_and_add t.c_joined joined);
  match
    let oracle = oracle_for t (snd (List.hd riders)) in
    let inputs =
      Array.of_list (List.concat_map (fun (_, k) -> k.Proto.ck_inputs) riders)
    in
    ignore (Atomic.fetch_and_add t.c_checks (Array.length inputs));
    let verdicts = Compdiff.Oracle.check_batch oracle ~inputs in
    let pos = ref 0 in
    List.map
      (fun (it, k) ->
        let n = List.length k.Proto.ck_inputs in
        let mine = Array.sub verdicts !pos n in
        pos := !pos + n;
        ( it,
          Proto.Check_reply
            (Array.to_list (Array.map verdict_to_proto mine)) ))
      riders
  with
  | replies -> List.iter (fun (it, r) -> respond t it r) replies
  | exception e ->
      let r = reply_of_exn e in
      List.iter (fun (it, _) -> respond t it r) riders

let run_fuzz t (it : item) (f : Proto.fuzz_req) : unit =
  Atomic.incr t.c_flights;
  guarded t it (fun () ->
      let tp = frontend f.Proto.fz_source in
      let profiles = profiles_of_names t.cfg f.Proto.fz_profiles in
      let config =
        {
          Fuzz.Compdiff_afl.default_config with
          Fuzz.Compdiff_afl.max_execs = max 1 f.Proto.fz_execs;
          rng_seed = f.Proto.fz_seed;
          seeds = (if f.Proto.fz_seeds = [] then [ "" ] else f.Proto.fz_seeds);
          fuel = fuel_or t.cfg f.Proto.fz_fuel;
          profiles;
          session = Some t.cfg.session;
          reduce_on_save = false;
        }
      in
      let c = Fuzz.Compdiff_afl.run ~config tp in
      let reports =
        List.map
          (fun (e : Compdiff.Triage.diff_entry) ->
            ( e.Compdiff.Triage.input,
              Compdiff.Oracle.report_to_string ~input:e.Compdiff.Triage.input
                e.Compdiff.Triage.observations ))
          (Compdiff.Triage.representatives c.Fuzz.Compdiff_afl.diffs)
      in
      Proto.Fuzz_reply
        {
          Proto.fr_execs = c.Fuzz.Compdiff_afl.fuzz.Fuzz.Fuzzer.execs;
          fr_divergent = Compdiff.Triage.total_count c.Fuzz.Compdiff_afl.diffs;
          fr_unique = Compdiff.Triage.unique_count c.Fuzz.Compdiff_afl.diffs;
          fr_reports = reports;
        })

let run_metacheck t (it : item) (m : Proto.metacheck_req) : unit =
  Atomic.incr t.c_flights;
  guarded t it (fun () ->
      let tp = frontend m.Proto.mc_source in
      let profiles = profiles_of_names t.cfg m.Proto.mc_profiles in
      let inputs =
        if m.Proto.mc_inputs = [] then [ "" ] else m.Proto.mc_inputs
      in
      let r =
        Metacheck.Driver.analyze ~session:t.cfg.session ~profiles
          ~fuel:(fuel_or t.cfg m.Proto.mc_fuel)
          ~limit:(max 1 m.Proto.mc_limit) ~name:"serve" tp ~inputs
      in
      Proto.Metacheck_reply
        {
          Proto.mr_preserving = r.Metacheck.Driver.mc_preserving;
          mr_eliminating = r.Metacheck.Driver.mc_eliminating;
          mr_retype_failures =
            List.length r.Metacheck.Driver.mc_retype_failures;
          mr_flags =
            List.map
              (fun (f : Metacheck.Driver.flag) ->
                ( f.Metacheck.Driver.fl_tool,
                  f.Metacheck.Driver.fl_rule,
                  Metacheck.Driver.what_to_string f.Metacheck.Driver.fl_what,
                  f.Metacheck.Driver.fl_detail ))
              r.Metacheck.Driver.mc_flags;
        })

let run_reduce t (it : item) (r : Proto.reduce_req) : unit =
  Atomic.incr t.c_flights;
  guarded t it (fun () ->
      let check : Proto.check_req =
        {
          Proto.ck_source = r.Proto.rd_source;
          ck_inputs = [];
          ck_profiles = r.Proto.rd_profiles;
          ck_fuel = r.Proto.rd_fuel;
          ck_strip = false;
        }
      in
      let oracle = oracle_for t check in
      let input = r.Proto.rd_input in
      Atomic.incr t.c_checks;
      match Compdiff.Oracle.check oracle ~input with
      | Compdiff.Oracle.Agree _ ->
          Proto.Reduce_reply
            {
              Proto.rr_found = false;
              rr_input = input;
              rr_reduced = input;
              rr_checks = 0;
              rr_report = "";
            }
      | Compdiff.Oracle.Diverge obs -> (
          let program =
            match Minic.Parser.parse_program_result r.Proto.rd_source with
            | Ok p -> Some p
            | Error _ -> None
          in
          match
            Compdiff.Reduce.reduce
              ~max_checks:(max 1 r.Proto.rd_max_checks)
              ?program oracle ~input obs
          with
          | Some red ->
              Proto.Reduce_reply
                {
                  Proto.rr_found = true;
                  rr_input = input;
                  rr_reduced = red.Compdiff.Reduce.red_input;
                  rr_checks =
                    red.Compdiff.Reduce.red_stats.Compdiff.Reduce.checks;
                  rr_report =
                    Compdiff.Oracle.report_to_string
                      ~input:red.Compdiff.Reduce.red_input
                      red.Compdiff.Reduce.red_observations;
                }
          | None ->
              Proto.Reduce_reply
                {
                  Proto.rr_found = true;
                  rr_input = input;
                  rr_reduced = input;
                  rr_checks = 0;
                  rr_report = Compdiff.Oracle.report_to_string ~input obs;
                }))

let run_explore t (it : item) (e : Proto.explore_req) : unit =
  Atomic.incr t.c_flights;
  guarded t it (fun () ->
      let check : Proto.check_req =
        {
          Proto.ck_source = e.Proto.ex_source;
          ck_inputs = [];
          ck_profiles = e.Proto.ex_profiles;
          ck_fuel = e.Proto.ex_fuel;
          ck_strip = false;
        }
      in
      let oracle = oracle_for t check in
      let input = e.Proto.ex_input in
      let limit =
        if e.Proto.ex_limit > 0 then Some e.Proto.ex_limit else None
      in
      Atomic.incr t.c_checks;
      match Compdiff.Oracle.check oracle ~input with
      | Compdiff.Oracle.Agree _ ->
          Proto.Explore_reply
            {
              Proto.er_found = false;
              er_impl_a = "";
              er_impl_b = "";
              er_step_a = -1;
              er_step_b = -1;
              er_line = -1;
              er_probes = 0;
              er_report = "";
            }
      | Compdiff.Oracle.Diverge obs -> (
          match
            Compdiff.Localize.deep_of_divergence ?limit oracle
              (Compdiff.Oracle.binaries oracle)
              obs ~input
          with
          | None ->
              Proto.Explore_reply
                {
                  Proto.er_found = false;
                  er_impl_a = "";
                  er_impl_b = "";
                  er_step_a = -1;
                  er_step_b = -1;
                  er_line = -1;
                  er_probes = 0;
                  er_report = "divergence held no comparable pair";
                }
          | Some d ->
              let step side =
                match side.Compdiff.Localize.ds_at with
                | Some p -> p.Compdiff.Localize.pr_step
                | None -> -1
              in
              let line =
                match
                  ( d.Compdiff.Localize.deep_a.Compdiff.Localize.ds_at,
                    d.Compdiff.Localize.deep_b.Compdiff.Localize.ds_at )
                with
                | Some { Compdiff.Localize.pr_line = Some l; _ }, _
                | _, Some { Compdiff.Localize.pr_line = Some l; _ } ->
                    l
                | _ -> -1
              in
              Proto.Explore_reply
                {
                  Proto.er_found = true;
                  er_impl_a =
                    d.Compdiff.Localize.deep_a.Compdiff.Localize.ds_impl;
                  er_impl_b =
                    d.Compdiff.Localize.deep_b.Compdiff.Localize.ds_impl;
                  er_step_a = step d.Compdiff.Localize.deep_a;
                  er_step_b = step d.Compdiff.Localize.deep_b;
                  er_line = line;
                  er_probes = d.Compdiff.Localize.probes;
                  er_report = Compdiff.Localize.deep_to_string d;
                }))

(* --- the executor loop --- *)

(* pop one item; if it is a coalescible check, also claim every queued
   check with the same oracle key (cross-client batching) *)
let claim_flight t :
    [ `Stop | `Checks of (item * Proto.check_req) list | `One of item ] =
  Mutex.lock t.mutex;
  let rec wait () =
    if not (Queue.is_empty t.queue) then begin
      let it = Queue.pop t.queue in
      if it.it_client.cl_dead then begin
        (* dropped with its client: return the credit silently *)
        it.it_client.cl_outstanding <- it.it_client.cl_outstanding - 1;
        wait ()
      end
      else
        match (it.it_okey, it.it_req) with
        | Some key, Proto.Check k ->
            (* drain same-key checks, preserving queue order of the rest *)
            let riders = ref [ (it, k) ] in
            let keep = Queue.create () in
            Queue.iter
              (fun other ->
                match (other.it_okey, other.it_req) with
                | Some key', Proto.Check k'
                  when key' = key && not other.it_client.cl_dead ->
                    riders := (other, k') :: !riders
                | _ -> Queue.add other keep)
              t.queue;
            Queue.clear t.queue;
            Queue.transfer keep t.queue;
            `Checks (List.rev !riders)
        | _ -> `One it
    end
    else if t.stopping then `Stop
    else begin
      Condition.wait t.cond t.mutex;
      wait ()
    end
  in
  let r = wait () in
  Mutex.unlock t.mutex;
  r

let rec executor_loop t =
  match claim_flight t with
  | `Stop -> ()
  | `Checks riders ->
      run_check_flight t riders;
      executor_loop t
  | `One it ->
      (match it.it_req with
      | Proto.Fuzz f -> run_fuzz t it f
      | Proto.Metacheck m -> run_metacheck t it m
      | Proto.Reduce r -> run_reduce t it r
      | Proto.Explore e -> run_explore t it e
      | Proto.Check _ | Proto.Ping | Proto.Get_stats ->
          (* checks always carry an okey; ping/stats never enqueue *)
          respond t it (Proto.Err "unschedulable request"));
      executor_loop t

(* --- public interface --- *)

let create (cfg : config) : t =
  let t =
    {
      cfg =
        { cfg with quota = max 1 cfg.quota; executors = max 1 cfg.executors };
      mutex = Mutex.create ();
      cond = Condition.create ();
      queue = Queue.create ();
      stopping = false;
      threads = [];
      next_client = 0;
      clients = [];
      oracles = Hashtbl.create 16;
      oracle_clock = 0;
      c_requests = Atomic.make 0;
      c_shed = Atomic.make 0;
      c_flights = Atomic.make 0;
      c_checks = Atomic.make 0;
      c_joined = Atomic.make 0;
    }
  in
  t.threads <-
    List.init t.cfg.executors (fun _ -> Thread.create executor_loop t);
  t

let session t = t.cfg.session
let quota t = t.cfg.quota

let register_client t ~(respond : int -> Proto.response -> unit) : client =
  Mutex.lock t.mutex;
  let cl =
    {
      cl_id = t.next_client;
      cl_respond = respond;
      cl_outstanding = 0;
      cl_completed = 0;
      cl_shed = 0;
      cl_dead = false;
    }
  in
  t.next_client <- t.next_client + 1;
  t.clients <- cl :: t.clients;
  Mutex.unlock t.mutex;
  cl

(* A dead client's queued items are left in the queue but skipped (and
   their credits returned) when an executor reaches them; in-flight
   items complete and their response write is dropped by the server. *)
let release_client t (cl : client) : unit =
  Mutex.lock t.mutex;
  cl.cl_dead <- true;
  t.clients <- List.filter (fun c -> c != cl) t.clients;
  Mutex.unlock t.mutex

let sched_stats t : Proto.sched_stats =
  Mutex.lock t.mutex;
  let depth = Queue.length t.queue in
  let oracles = Hashtbl.length t.oracles in
  let clients =
    List.map
      (fun cl ->
        {
          Proto.cs_id = cl.cl_id;
          cs_outstanding = cl.cl_outstanding;
          cs_completed = cl.cl_completed;
          cs_shed = cl.cl_shed;
        })
      t.clients
  in
  Mutex.unlock t.mutex;
  {
    Proto.sr_requests = Atomic.get t.c_requests;
    sr_shed = Atomic.get t.c_shed;
    sr_flights = Atomic.get t.c_flights;
    sr_checks = Atomic.get t.c_checks;
    sr_joined = Atomic.get t.c_joined;
    sr_queue_depth = depth;
    sr_pool_pending = Cdutil.Pool.pending (Cdutil.Pool.global ());
    sr_oracles = oracles;
    sr_clients = clients;
  }

(* aggregate oracle counters across the warm table *)
let oracle_stats t : Compdiff.Oracle.stats =
  Mutex.lock t.mutex;
  let os = Hashtbl.fold (fun _ (o, _) acc -> o :: acc) t.oracles [] in
  Mutex.unlock t.mutex;
  List.fold_left
    (fun (acc : Compdiff.Oracle.stats) o ->
      let s = Compdiff.Oracle.stats o in
      {
        Compdiff.Oracle.checks =
          acc.Compdiff.Oracle.checks + s.Compdiff.Oracle.checks;
        vm_execs = acc.Compdiff.Oracle.vm_execs + s.Compdiff.Oracle.vm_execs;
        dedup_saved =
          acc.Compdiff.Oracle.dedup_saved + s.Compdiff.Oracle.dedup_saved;
        escalation_saved =
          acc.Compdiff.Oracle.escalation_saved
          + s.Compdiff.Oracle.escalation_saved;
      })
    {
      Compdiff.Oracle.checks = 0;
      vm_execs = 0;
      dedup_saved = 0;
      escalation_saved = 0;
    }
    os

let stats_reply t : Proto.response =
  Proto.Stats_reply
    {
      Proto.st_session =
        Engine.Session.stats_to_json (Engine.Session.stats t.cfg.session);
      st_oracle = Compdiff.Oracle.stats_to_json (oracle_stats t);
      st_sched = sched_stats t;
    }

(* [submit]: called from the server's per-client reader threads.  Ping
   and stats are answered inline (they must stay responsive when every
   executor is busy); work requests go through admission control. *)
let submit t (cl : client) ~(id : int) (req : Proto.request) : unit =
  match req with
  | Proto.Ping -> ( try cl.cl_respond id Proto.Pong with _ -> ())
  | Proto.Get_stats -> (
      let r = stats_reply t in
      try cl.cl_respond id r with _ -> ())
  | Proto.Check _ | Proto.Fuzz _ | Proto.Metacheck _ | Proto.Reduce _
  | Proto.Explore _ ->
      let okey =
        match req with
        | Proto.Check k -> Some (okey_of_check k)
        | _ -> None
      in
      Mutex.lock t.mutex;
      let accepted =
        (not cl.cl_dead) && (not t.stopping) && cl.cl_outstanding < t.cfg.quota
      in
      if accepted then begin
        cl.cl_outstanding <- cl.cl_outstanding + 1;
        Queue.add
          { it_client = cl; it_id = id; it_req = req; it_okey = okey }
          t.queue;
        Condition.signal t.cond
      end
      else cl.cl_shed <- cl.cl_shed + 1;
      Mutex.unlock t.mutex;
      if accepted then Atomic.incr t.c_requests
      else begin
        Atomic.incr t.c_shed;
        try cl.cl_respond id (Proto.Busy t.cfg.quota) with _ -> ()
      end

(* True when no work is queued or executing: the server's idle test. *)
let idle t : bool =
  Mutex.lock t.mutex;
  let idle =
    Queue.is_empty t.queue
    && List.for_all (fun cl -> cl.cl_outstanding = 0) t.clients
  in
  Mutex.unlock t.mutex;
  idle

let shutdown t : unit =
  Mutex.lock t.mutex;
  t.stopping <- true;
  Condition.broadcast t.cond;
  let ths = t.threads in
  t.threads <- [];
  Mutex.unlock t.mutex;
  List.iter Thread.join ths
