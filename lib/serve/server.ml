(* The serve daemon's socket layer: a Unix-domain listener, one reader
   thread per connection, and a housekeeping thread for timeouts.

   Each connection gets a dedicated reader thread that performs the
   handshake, then loops decoding frames and handing requests to the
   {!Scheduler}.  Responses are written by whichever thread produced
   them (reader for inline ping/stats, executors for work), serialized
   per-connection by a write mutex so interleaved frames cannot corrupt
   the stream.  A client that disconnects — cleanly or mid-request — is
   released from the scheduler: its queued requests are dropped, its
   in-flight responses discarded, and the daemon keeps serving everyone
   else.  A client that sends a malformed frame is answered [Err] once
   and disconnected.

   Fd discipline: only the connection's reader thread ever closes its
   fd, and only after its read loop has returned.  Every other party
   (timeout enforcement, daemon drain) retires a connection with
   [kill_conn] — mark dead + [Unix.shutdown] — which wakes the blocked
   reader with EOF; closing from another thread would race fd-number
   reuse against the in-flight read.  [send] checks the dead mark under
   the write mutex, so no response is ever written to a retired fd.

   Lifecycle: [client_timeout] drops connections with no traffic (data
   or ping) for that many seconds; [idle_timeout] exits the accept loop
   once the daemon has had no connections AND no scheduled work for that
   long, so scripted runs (bench, CI smoke) terminate by themselves
   instead of leaking daemons. *)

type config = {
  socket_path : string;
  sched : Scheduler.config;
  client_timeout : float;  (* seconds without traffic; 0 = no limit *)
  idle_timeout : float;    (* seconds without clients or work; 0 = run forever *)
  quiet : bool;
}

let default_config ?session ~socket_path () =
  {
    socket_path;
    sched = Scheduler.default_config ?session ();
    client_timeout = 0.;
    idle_timeout = 0.;
    quiet = false;
  }

type conn = {
  fd : Unix.file_descr;
  wmutex : Mutex.t;               (* serializes response frames *)
  mutable alive : bool;           (* under [wmutex] *)
  mutable last_seen : float;      (* Unix.gettimeofday of last frame *)
}

type t = {
  cfg : config;
  sched : Scheduler.t;
  listen_fd : Unix.file_descr;
  mutex : Mutex.t;                (* conns / stopping / last_active *)
  mutable conns : conn list;
  mutable stopping : bool;
  mutable last_active : float;
  mutable threads : Thread.t list;
}

let logf t fmt =
  if t.cfg.quiet then Printf.ifprintf stderr fmt else Printf.eprintf fmt

(* Send one response frame; drops silently once the connection died. *)
let send (c : conn) (id : int) (r : Proto.response) : unit =
  Mutex.lock c.wmutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock c.wmutex)
    (fun () ->
      if c.alive then
        try Proto.write_frame c.fd (Proto.encode_response ~id r)
        with _ -> c.alive <- false)

(* Retire a connection: no further sends, and a reader blocked in
   [read_frame] wakes with EOF.  Does NOT close the fd (see header). *)
let kill_conn (c : conn) : unit =
  Mutex.lock c.wmutex;
  c.alive <- false;
  Mutex.unlock c.wmutex;
  try Unix.shutdown c.fd Unix.SHUTDOWN_ALL with _ -> ()

(* Per-connection reader: handshake, then frame-decode loop.  Owns the
   fd: closes it exactly once, after the loop returns. *)
let reader_loop t (c : conn) : unit =
  let cl =
    Scheduler.register_client t.sched ~respond:(fun id r -> send c id r)
  in
  let bye reason =
    Scheduler.release_client t.sched cl;
    kill_conn c;
    (try Unix.close c.fd with _ -> ());
    Mutex.lock t.mutex;
    t.conns <- List.filter (fun c' -> c' != c) t.conns;
    t.last_active <- Unix.gettimeofday ();
    Mutex.unlock t.mutex;
    logf t "[serve] client %d disconnected (%s)\n%!" cl.Scheduler.cl_id reason
  in
  match
    (* handshake: client speaks first *)
    match Proto.really_read c.fd Proto.hello_bytes with
    | None -> `Closed
    | Some h ->
        let v = Proto.parse_hello h in
        if v <> Proto.version then
          `Bad (Printf.sprintf "protocol version %d (want %d)" v Proto.version)
        else begin
          Proto.really_write c.fd (Proto.hello ());
          `Ok
        end
  with
  | exception Proto.Malformed m -> bye (Printf.sprintf "bad hello: %s" m)
  | exception _ -> bye "handshake i/o error"
  | `Closed -> bye "closed before handshake"
  | `Bad m ->
      send c 0 (Proto.Err m);
      bye m
  | `Ok ->
      logf t "[serve] client %d connected\n%!" cl.Scheduler.cl_id;
      let rec loop () =
        match Proto.read_frame c.fd with
        | None -> bye "eof"
        | exception Proto.Malformed m ->
            send c 0 (Proto.Err (Printf.sprintf "malformed frame: %s" m));
            bye "malformed frame"
        | exception _ -> bye "read error"
        | Some frame -> (
            c.last_seen <- Unix.gettimeofday ();
            Mutex.lock t.mutex;
            t.last_active <- c.last_seen;
            Mutex.unlock t.mutex;
            match Proto.decode_request frame with
            | exception Proto.Malformed m ->
                send c 0 (Proto.Err (Printf.sprintf "malformed request: %s" m));
                bye "malformed request"
            | id, req ->
                Scheduler.submit t.sched cl ~id req;
                loop ())
      in
      loop ()

(* Wake a blocked [Unix.accept]: neither close nor shutdown reliably
   interrupts it across platforms, but a throwaway self-connection
   always does. *)
let wake_accept t : unit =
  match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
  | exception _ -> ()
  | fd ->
      (try Unix.connect fd (Unix.ADDR_UNIX t.cfg.socket_path) with _ -> ());
      (try Unix.close fd with _ -> ())

(* Housekeeping: enforce client and daemon idle timeouts. *)
let housekeeping_loop t : unit =
  let tick = 0.2 in
  let rec loop () =
    Thread.delay tick;
    Mutex.lock t.mutex;
    let stopping = t.stopping in
    let conns = t.conns in
    let last_active = t.last_active in
    Mutex.unlock t.mutex;
    if stopping then ()
    else begin
      let now = Unix.gettimeofday () in
      if t.cfg.client_timeout > 0. then
        List.iter
          (fun c ->
            if now -. c.last_seen > t.cfg.client_timeout then kill_conn c)
          conns;
      if
        t.cfg.idle_timeout > 0.
        && conns = []
        && Scheduler.idle t.sched
        && now -. last_active > t.cfg.idle_timeout
      then begin
        Mutex.lock t.mutex;
        t.stopping <- true;
        Mutex.unlock t.mutex;
        wake_accept t
      end
      else loop ()
    end
  in
  loop ()

let create (cfg : config) : t =
  (* a stale socket file from a dead daemon would fail the bind *)
  (try Unix.unlink cfg.socket_path with _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX cfg.socket_path);
  Unix.listen listen_fd 64;
  {
    cfg;
    sched = Scheduler.create cfg.sched;
    listen_fd;
    mutex = Mutex.create ();
    conns = [];
    stopping = false;
    last_active = Unix.gettimeofday ();
    threads = [];
  }

let sched t = t.sched

(* Blocking accept loop; returns when the daemon shuts down (idle
   timeout or [stop]).  Call from the main thread after [create]. *)
let serve (t : t) : unit =
  let hk = Thread.create housekeeping_loop t in
  t.threads <- hk :: t.threads;
  let rec accept_loop () =
    match Unix.accept t.listen_fd with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
    | exception _ ->
        Mutex.lock t.mutex;
        let stopping = t.stopping in
        Mutex.unlock t.mutex;
        if not stopping then failwith "serve: accept failed"
    | fd, _ ->
        Mutex.lock t.mutex;
        let stopping = t.stopping in
        Mutex.unlock t.mutex;
        if stopping then (try Unix.close fd with _ -> ())
        else begin
          let c =
            {
              fd;
              wmutex = Mutex.create ();
              alive = true;
              last_seen = Unix.gettimeofday ();
            }
          in
          Mutex.lock t.mutex;
          t.conns <- c :: t.conns;
          t.last_active <- c.last_seen;
          Mutex.unlock t.mutex;
          let th = Thread.create (fun () -> reader_loop t c) () in
          Mutex.lock t.mutex;
          t.threads <- th :: t.threads;
          Mutex.unlock t.mutex;
          accept_loop ()
        end
  in
  logf t "[serve] listening on %s\n%!" t.cfg.socket_path;
  accept_loop ();
  (* drain: retire remaining connections (their readers close the fds),
     join every thread, stop the scheduler *)
  Mutex.lock t.mutex;
  let conns = t.conns in
  Mutex.unlock t.mutex;
  List.iter kill_conn conns;
  Mutex.lock t.mutex;
  let ths = t.threads in
  t.threads <- [];
  Mutex.unlock t.mutex;
  let self = Thread.id (Thread.self ()) in
  List.iter (fun th -> if Thread.id th <> self then Thread.join th) ths;
  Scheduler.shutdown t.sched;
  (try Unix.close t.listen_fd with _ -> ());
  (try Unix.unlink t.cfg.socket_path with _ -> ());
  logf t "[serve] shut down\n%!"

(* Request shutdown from another thread (tests). *)
let stop (t : t) : unit =
  Mutex.lock t.mutex;
  t.stopping <- true;
  Mutex.unlock t.mutex;
  wake_accept t
