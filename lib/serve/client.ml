(* Client side of the serve protocol: connect, handshake, and a
   request/response demultiplexer.

   The daemon tags every response with the id of the request it answers
   and may deliver them out of submission order (coalesced check flights
   complete together; pings overtake queued work).  [call] therefore
   demuxes: whichever caller thread is idle performs the blocking frame
   read, parks responses for other ids in a pending table, and wakes
   their waiters — so one connection is safely shared by any number of
   threads, each with its own outstanding request.

   [send]/[recv] expose the raw pipelined layer for callers that want
   many requests in flight on one thread (the backpressure tests flood
   the daemon this way and count [Busy] replies). *)

exception Closed
(** The connection died (EOF or I/O error) while a reply was pending. *)

type t = {
  fd : Unix.file_descr;
  wmutex : Mutex.t;                       (* serializes request frames *)
  rmutex : Mutex.t;                       (* pending / reading / closed *)
  rcond : Condition.t;
  pending : (int, Proto.response) Hashtbl.t;
  mutable reading : bool;       (* a thread is inside the blocking read *)
  mutable next_id : int;
  mutable closed : bool;
}

let connect (path : string) : t =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e ->
     (try Unix.close fd with _ -> ());
     raise e);
  (* handshake: we speak first, the daemon echoes *)
  (try
     Proto.really_write fd (Proto.hello ());
     match Proto.really_read fd Proto.hello_bytes with
     | None -> failwith "server closed during handshake"
     | Some h ->
         let v = Proto.parse_hello h in
         if v <> Proto.version then
           failwith
             (Printf.sprintf "server protocol version %d (want %d)" v
                Proto.version)
   with e ->
     (try Unix.close fd with _ -> ());
     raise e);
  {
    fd;
    wmutex = Mutex.create ();
    rmutex = Mutex.create ();
    rcond = Condition.create ();
    pending = Hashtbl.create 16;
    reading = false;
    next_id = 1;
    closed = false;
  }

let close (t : t) : unit =
  Mutex.lock t.rmutex;
  let was_closed = t.closed in
  t.closed <- true;
  Condition.broadcast t.rcond;
  Mutex.unlock t.rmutex;
  if not was_closed then begin
    (try Unix.shutdown t.fd Unix.SHUTDOWN_ALL with _ -> ());
    try Unix.close t.fd with _ -> ()
  end

(* Fire one request; returns the id its response will carry. *)
let send (t : t) (req : Proto.request) : int =
  Mutex.lock t.wmutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.wmutex)
    (fun () ->
      let id = t.next_id in
      t.next_id <- t.next_id + 1;
      Proto.write_frame t.fd (Proto.encode_request ~id req);
      id)

(* Read the next response frame off the wire, bypassing the demux.  Only
   for single-threaded pipelined use; do not mix with [call]. *)
let recv (t : t) : (int * Proto.response) option =
  match Proto.read_frame t.fd with
  | None -> None
  | Some frame -> Some (Proto.decode_response frame)

(* Wait for the response to [id], reading frames on behalf of everyone. *)
let wait (t : t) (id : int) : Proto.response =
  Mutex.lock t.rmutex;
  let rec loop () =
    match Hashtbl.find_opt t.pending id with
    | Some r ->
        Hashtbl.remove t.pending id;
        Mutex.unlock t.rmutex;
        r
    | None ->
        if t.closed then begin
          Mutex.unlock t.rmutex;
          raise Closed
        end
        else if t.reading then begin
          (* someone else is on the wire; they will wake us *)
          Condition.wait t.rcond t.rmutex;
          loop ()
        end
        else begin
          t.reading <- true;
          Mutex.unlock t.rmutex;
          let result = try recv t with _ -> None in
          Mutex.lock t.rmutex;
          t.reading <- false;
          (match result with
          | Some (rid, r) -> Hashtbl.replace t.pending rid r
          | None -> t.closed <- true);
          Condition.broadcast t.rcond;
          loop ()
        end
  in
  loop ()

let call (t : t) (req : Proto.request) : Proto.response =
  wait t (send t req)

(* --- convenience wrappers --- *)

let ping (t : t) : bool = match call t Proto.Ping with
  | Proto.Pong -> true
  | _ -> false

let stats (t : t) : Proto.stats_reply option =
  match call t Proto.Get_stats with
  | Proto.Stats_reply s -> Some s
  | _ -> None

(* One JSON object for the whole daemon: the session and oracle members
   are the server-rendered JSON, embedded verbatim; the scheduler member
   is rendered here from the structured reply.  [batching_ratio] is
   checks per flight — the cross-client coalescing payoff the bench
   gates on (1.0 = no coalescing ever happened). *)
let stats_to_json (s : Proto.stats_reply) : string =
  let sc = s.Proto.st_sched in
  let ratio =
    float_of_int sc.Proto.sr_checks /. float_of_int (max 1 sc.Proto.sr_flights)
  in
  let clients =
    String.concat ","
      (List.map
         (fun (c : Proto.client_stat) ->
           Printf.sprintf
             "{\"id\":%d,\"outstanding\":%d,\"completed\":%d,\"shed\":%d}"
             c.Proto.cs_id c.Proto.cs_outstanding c.Proto.cs_completed
             c.Proto.cs_shed)
         sc.Proto.sr_clients)
  in
  Printf.sprintf
    "{\"session\":%s,\"oracle\":%s,\"scheduler\":{\"requests\":%d,\"shed\":%d,\"flights\":%d,\"checks\":%d,\"joined\":%d,\"batching_ratio\":%.3f,\"queue_depth\":%d,\"pool_pending\":%d,\"warm_oracles\":%d,\"clients\":[%s]}}"
    s.Proto.st_session s.Proto.st_oracle sc.Proto.sr_requests sc.Proto.sr_shed
    sc.Proto.sr_flights sc.Proto.sr_checks sc.Proto.sr_joined ratio
    sc.Proto.sr_queue_depth sc.Proto.sr_pool_pending sc.Proto.sr_oracles
    clients

let check (t : t) ?(profiles = []) ?(fuel = 0) ?(strip = false) ~source
    ~(inputs : string list) () : (Proto.verdict list, string) result =
  match
    call t
      (Proto.Check
         {
           Proto.ck_source = source;
           ck_inputs = inputs;
           ck_profiles = profiles;
           ck_fuel = fuel;
           ck_strip = strip;
         })
  with
  | Proto.Check_reply vs -> Ok vs
  | Proto.Busy q -> Error (Printf.sprintf "busy (quota %d)" q)
  | Proto.Err m -> Error m
  | _ -> Error "unexpected response"

let explore (t : t) ?(profiles = []) ?(fuel = 0) ?(limit = 0) ~source
    ~(input : string) () : (Proto.explore_reply, string) result =
  match
    call t
      (Proto.Explore
         {
           Proto.ex_source = source;
           ex_input = input;
           ex_profiles = profiles;
           ex_fuel = fuel;
           ex_limit = limit;
         })
  with
  | Proto.Explore_reply e -> Ok e
  | Proto.Busy q -> Error (Printf.sprintf "busy (quota %d)" q)
  | Proto.Err m -> Error m
  | _ -> Error "unexpected response"
