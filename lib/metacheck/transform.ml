(* Metamorphic transformations over the typed AST (the UBfuzz recipe).

   Two families:

   - {!preserving} rewrites keep every undefined behaviour of the input
     program intact: a checker report (or an oracle divergence class)
     that changes across such a twin exposes instability in the checker,
     not in the program.  Each rewrite is deliberately conservative —
     the applicability predicates below are the soundness argument (see
     DESIGN.md §11), and anything that cannot be argued is skipped.

   - {!eliminating} rewrites discharge one UB class at every site they
     can prove pure enough to rewrite: guards before divisions,
     saturating arithmetic, zero-initialization, index clamping.  A
     report of the discharged class that survives the twin is a false
     positive of the reporting tool.

   Every twin is a [Tast.tprogram]; callers erase and re-typecheck it
   ({!Tast.erase_program}), which must succeed by construction. *)

open Minic
open Minic.Tast

type twin = {
  tw_rule : string;
  tw_line : int; (* source line of the rewritten site *)
  tw_prog : tprogram;
}

type elim = {
  el_rule : string;
  el_kinds : Staticcheck.Finding.kind list; (* the classes discharged *)
  el_lines : int list; (* lines of the rewritten sites *)
  el_complete : bool; (* no site of the class was left unrewritten *)
  el_prog : tprogram;
}

(* --- purity predicates --- *)

(* A "total read" evaluates without calls, memory access, assignment or
   [__LINE__]: constants, variable reads and operators only.  Such an
   expression can be duplicated (its only side effects are the traps /
   sanitizer reports of its own operations, which fire identically at
   the first evaluation). *)
let rec total_read (e : texpr) : bool =
  match e.te with
  | TConstI _ | TConstF _ | TVar _ -> true
  | TUnop (_, a) | TCast (_, a) -> total_read a
  | TBinop (_, a, b) -> total_read a && total_read b
  | TCond (c, t, f) -> total_read c && total_read t && total_read f
  | TStr _ | TLine | TCall _ | TIndex _ | TDeref _ | TAddr _ | TAssign _
  | TDecay _ ->
    false

(* Stricter: total and additionally free of any operation that can trap,
   fire a sanitizer check, or branch (UBSan-checked signed arithmetic,
   division, shifts, short-circuit evaluation, float->int casts).  Such
   an expression can be *reordered* across another statement without
   perturbing which report fires first. *)
let rec inert_read (e : texpr) : bool =
  match e.te with
  | TConstI _ | TConstF _ | TVar _ -> true
  | TUnop ((Ast.Lnot | Ast.Bnot), a) -> inert_read a
  | TUnop (Ast.Neg, a) -> a.tty = Ast.Tdouble && inert_read a
  | TBinop
      ( ( Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne | Ast.Band
        | Ast.Bor | Ast.Bxor ),
        a,
        b ) ->
    inert_read a && inert_read b
  | TBinop
      ( ( Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod | Ast.Shl | Ast.Shr
        | Ast.Land | Ast.Lor ),
        _,
        _ ) ->
    false
  | TCast (_, a) -> a.tty <> Ast.Tdouble && inert_read a
  | TCond _ | TStr _ | TLine | TCall _ | TIndex _ | TDeref _ | TAddr _
  | TAssign _ | TDecay _ ->
    false

let rec add_vars acc (e : texpr) =
  match e.te with
  | TVar (_, n) -> n :: acc
  | TConstI _ | TConstF _ | TStr _ | TLine -> acc
  | TUnop (_, a) | TCast (_, a) | TDecay a | TDeref a | TAddr a -> add_vars acc a
  | TBinop (_, a, b) | TIndex (a, b) | TAssign (a, b) ->
    add_vars (add_vars acc a) b
  | TCall (_, args) -> List.fold_left add_vars acc args
  | TCond (a, b, c) -> add_vars (add_vars (add_vars acc a) b) c

let vars_of e = add_vars [] e

let rec expr_size (e : texpr) : int =
  match e.te with
  | TConstI _ | TConstF _ | TStr _ | TVar _ | TLine -> 1
  | TUnop (_, a) | TCast (_, a) | TDecay a | TDeref a | TAddr a ->
    1 + expr_size a
  | TBinop (_, a, b) | TIndex (a, b) | TAssign (a, b) ->
    1 + expr_size a + expr_size b
  | TCall (_, args) -> List.fold_left (fun n a -> n + expr_size a) 1 args
  | TCond (a, b, c) -> 1 + expr_size a + expr_size b + expr_size c

let int_ty = function Ast.Tint | Ast.Tlong -> true | _ -> false

(* --- generic k-th site rewriters --- *)

(* Rewrite the [k]-th (preorder) statement satisfying [select]; the
   replacement does not get re-traversed.  Returns the site's source
   line and the rewritten program, or [None] when fewer than [k+1]
   sites exist. *)
let rewrite_nth_stmt (tp : tprogram) ~(select : tstmt -> bool)
    ~(rw : tstmt -> tstmt list) (k : int) : (int * tprogram) option =
  let count = ref (-1) in
  let hit = ref None in
  let m =
    {
      default_mapper with
      m_stmt =
        (fun m s ->
          if !hit = None && select s then begin
            incr count;
            if !count = k then begin
              hit := Some s.tsloc.Ast.line;
              rw s
            end
            else default_stmt m s
          end
          else default_stmt m s);
    }
  in
  let tp' = map_program m tp in
  Option.map (fun line -> (line, tp')) !hit

(* Expression variant: [probe] returns the rewritten node when the
   expression is a site. *)
let rewrite_nth_expr (tp : tprogram) ~(probe : texpr -> texpr option) (k : int)
    : (int * tprogram) option =
  let count = ref (-1) in
  let hit = ref None in
  let m =
    {
      default_mapper with
      m_expr =
        (fun m e ->
          if !hit = None then
            match probe e with
            | Some e' ->
              incr count;
              if !count = k then begin
                hit := Some e.tloc.Ast.line;
                e'
              end
              else default_expr m e
            | None -> default_expr m e
          else default_expr m e);
    }
  in
  let tp' = map_program m tp in
  Option.map (fun line -> (line, tp')) !hit

(* --- UB-preserving rewrites --- *)

(* dead-branch: wrap any non-declaration statement in [if (1) { s }].
   The branch is always taken, the condition is a constant (no trap, no
   taint), and declarations are excluded so no scope shrinks. *)
let dead_branch tp k =
  rewrite_nth_stmt tp
    ~select:(fun s -> match s.ts with TSDecl _ -> false | _ -> true)
    ~rw:(fun s ->
      let one = { te = TConstI 1L; tty = Ast.Tint; tloc = s.tsloc } in
      [ { ts = TSIf (one, [ s ], []); tsloc = s.tsloc } ])
    k

(* stmt-reorder: swap two adjacent assignments [x = r1; y = r2] when the
   pair is provably order-independent even under UB: distinct targets,
   r1 does not read y, r2 does not read x, r1 is a total read (its traps
   and reports fire identically at its single evaluation in either
   order) and r2 is inert (it cannot trap, report or branch at all, so
   moving it earlier is invisible). *)
let reorder tp k =
  let count = ref (-1) in
  let hit = ref None in
  let is_site s1 s2 =
    match (s1.ts, s2.ts) with
    | ( TSExpr { te = TAssign ({ te = TVar (_, x); _ }, r1); _ },
        TSExpr { te = TAssign ({ te = TVar (_, y); _ }, r2); _ } ) ->
      x <> y && total_read r1 && inert_read r2
      && (not (List.mem y (vars_of r1)))
      && not (List.mem x (vars_of r2))
    | _ -> false
  in
  let m =
    {
      default_mapper with
      m_block =
        (fun m b ->
          let b = default_block m b in
          let rec walk acc = function
            | s1 :: s2 :: rest when !hit = None && is_site s1 s2 ->
              incr count;
              if !count = k then begin
                hit := Some s1.tsloc.Ast.line;
                List.rev_append acc (s2 :: s1 :: rest)
              end
              else walk (s1 :: acc) (s2 :: rest)
            | s :: rest -> walk (s :: acc) rest
            | [] -> List.rev acc
          in
          walk [] b);
    }
  in
  let tp' = map_program m tp in
  Option.map (fun line -> (line, tp')) !hit

(* loop-peel: [while (c) b] becomes [if (c) b; while (c) b].  Sound when
   the condition is a total read (the one extra evaluation on the
   non-entered path cannot have effects beyond those of its first normal
   evaluation) and the body declares nothing (no frame-slot duplication,
   which would perturb the stack layout uninitialized reads observe) and
   contains no break/continue at its own nesting level. *)
let rec has_decl b =
  List.exists
    (fun s ->
      match s.ts with
      | TSDecl _ -> true
      | TSIf (_, a, b') -> has_decl a || has_decl b'
      | TSWhile (_, b') -> has_decl b'
      | TSBlock b' -> has_decl b'
      | TSExpr _ | TSReturn _ | TSBreak | TSContinue | TSPrint _ -> false)
    b

let rec has_escape b =
  List.exists
    (fun s ->
      match s.ts with
      | TSBreak | TSContinue -> true
      | TSIf (_, a, b') -> has_escape a || has_escape b'
      | TSBlock b' -> has_escape b'
      | TSWhile _ -> false (* break/continue bind to the inner loop *)
      | TSExpr _ | TSDecl _ | TSReturn _ | TSPrint _ -> false)
    b

let peel tp k =
  rewrite_nth_stmt tp
    ~select:(fun s ->
      match s.ts with
      | TSWhile (c, b) ->
        total_read c && (not (has_decl b)) && not (has_escape b)
      | _ -> false)
    ~rw:(fun s ->
      match s.ts with
      | TSWhile (c, b) ->
        [ { ts = TSIf (c, b, []); tsloc = s.tsloc }; s ]
      | _ -> assert false)
    k

(* arith-identity: [e] becomes [e | 0] at pattern-relevant integer
   positions (divisors, indices, assignment right-hand sides).  Bitwise
   or with zero is the identity on every bit pattern, lowers to an
   unchecked wrapping operation (never UBSan-checked), and propagates
   taint unchanged — but it breaks the syntactic shapes brittle
   analyzers match on. *)
let identity tp k =
  let or_zero (x : texpr) : texpr =
    let zero = { te = TConstI 0L; tty = x.tty; tloc = x.tloc } in
    { te = TBinop (Ast.Bor, x, zero); tty = x.tty; tloc = x.tloc }
  in
  let probe e =
    match e.te with
    | TBinop (((Ast.Div | Ast.Mod) as op), a, b) when int_ty e.tty ->
      Some { e with te = TBinop (op, a, or_zero b) }
    | TIndex (p, i) when int_ty i.tty ->
      Some { e with te = TIndex (p, or_zero i) }
    | TAssign (l, r) when int_ty r.tty ->
      Some { e with te = TAssign (l, or_zero r) }
    | _ -> None
  in
  rewrite_nth_expr tp ~probe k

(* call-outline: [lv = rhs] with a total-read rhs becomes
   [lv = mc_out_k(v1, ..., vn)] where the fresh function returns rhs
   with its free locals passed by value.  The rhs's operations (and
   their traps/reports, which carry no function names) execute
   unchanged inside the callee; the caller's frame layout is untouched
   because callee frames are pushed beyond it. *)
let fresh_fname (tp : tprogram) : string =
  let taken n =
    Ast.is_builtin n || List.exists (fun f -> f.tfname = n) tp.tfuncs
  in
  let rec go i =
    let n = Printf.sprintf "mc_out_%d" i in
    if taken n then go (i + 1) else n
  in
  go 1

let rec param_vars acc (e : texpr) =
  match e.te with
  | TVar (Vlocal, n) -> if List.mem_assoc n acc then acc else acc @ [ (n, e.tty) ]
  | TVar (Vglobal, _) | TConstI _ | TConstF _ | TStr _ | TLine -> acc
  | TUnop (_, a) | TCast (_, a) | TDecay a | TDeref a | TAddr a ->
    param_vars acc a
  | TBinop (_, a, b) | TIndex (a, b) | TAssign (a, b) ->
    param_vars (param_vars acc a) b
  | TCall (_, args) -> List.fold_left param_vars acc args
  | TCond (a, b, c) -> param_vars (param_vars (param_vars acc a) b) c

let outline tp k =
  let name = fresh_fname tp in
  let newfn = ref None in
  let select s =
    match s.ts with
    | TSExpr { te = TAssign (_, rhs); _ } -> total_read rhs
    | _ -> false
  in
  let rw s =
    match s.ts with
    | TSExpr ({ te = TAssign (lv, rhs); _ } as e) ->
      let ps = param_vars [] rhs in
      let fn =
        {
          tfname = name;
          tparams = List.map (fun (n, t) -> (t, n)) ps;
          tfret = rhs.tty;
          tbody = [ { ts = TSReturn (Some rhs); tsloc = s.tsloc } ];
        }
      in
      newfn := Some fn;
      let args =
        List.map
          (fun (n, t) -> { te = TVar (Vlocal, n); tty = t; tloc = rhs.tloc })
          ps
      in
      let call = { te = TCall (name, args); tty = rhs.tty; tloc = rhs.tloc } in
      [ { s with ts = TSExpr { e with te = TAssign (lv, call) } } ]
    | _ -> assert false
  in
  match rewrite_nth_stmt tp ~select ~rw k with
  | Some (line, tp') -> (
    match !newfn with
    | Some fn -> Some (line, { tp' with tfuncs = fn :: tp'.tfuncs })
    | None -> None)
  | None -> None

let preserving_rules = [ "dead-branch"; "stmt-reorder"; "loop-peel"; "arith-identity"; "call-outline" ]

let preserving ?(limit_per_rule = 4) (tp : tprogram) : twin list =
  let take rule gen =
    let rec go k acc =
      if k >= limit_per_rule then List.rev acc
      else
        match gen k with
        | Some (line, p) ->
          go (k + 1) ({ tw_rule = rule; tw_line = line; tw_prog = p } :: acc)
        | None -> List.rev acc
    in
    go 0 []
  in
  take "dead-branch" (dead_branch tp)
  @ take "stmt-reorder" (reorder tp)
  @ take "loop-peel" (peel tp)
  @ take "arith-identity" (identity tp)
  @ take "call-outline" (outline tp)

(* --- UB-eliminating rewrites --- *)

(* guard-div: every integer [a / b] (and [%]) with total-read operands
   becomes [(b != 0 && !(a == MIN && b == -1)) ? a / b : 0].  The
   division can no longer divide by zero or overflow, so any Div_zero
   report that survives is a false positive. *)
let rec has_divmod (e : texpr) : bool =
  match e.te with
  | TBinop ((Ast.Div | Ast.Mod), _, _) -> true
  | TConstI _ | TConstF _ | TStr _ | TVar _ | TLine -> false
  | TUnop (_, a) | TCast (_, a) | TDecay a | TDeref a | TAddr a -> has_divmod a
  | TBinop (_, a, b) | TIndex (a, b) | TAssign (a, b) ->
    has_divmod a || has_divmod b
  | TCall (_, args) -> List.exists has_divmod args
  | TCond (a, b, c) -> has_divmod a || has_divmod b || has_divmod c

let guard_div (tp : tprogram) : elim option =
  let lines = ref [] in
  let incomplete = ref false in
  let m =
    {
      default_mapper with
      m_expr =
        (fun m e ->
          let e = default_expr m e in
          match e.te with
          | TBinop (((Ast.Div | Ast.Mod) as op), a, b) when int_ty e.tty ->
            if
              total_read a && total_read b
              && (not (has_divmod a))
              && not (has_divmod b)
            then begin
              lines := e.tloc.Ast.line :: !lines;
              let ty = e.tty in
              let loc = e.tloc in
              let ci v = { te = TConstI v; tty = ty; tloc = loc } in
              let bi o x y =
                { te = TBinop (o, x, y); tty = Ast.Tint; tloc = loc }
              in
              let min_v =
                if ty = Ast.Tlong then Int64.min_int else -2147483648L
              in
              let nonzero = bi Ast.Ne b (ci 0L) in
              let overflowing =
                bi Ast.Land (bi Ast.Eq a (ci min_v)) (bi Ast.Eq b (ci (-1L)))
              in
              let ok =
                bi Ast.Land nonzero
                  {
                    te = TUnop (Ast.Lnot, overflowing);
                    tty = Ast.Tint;
                    tloc = loc;
                  }
              in
              {
                e with
                te = TCond (ok, { e with te = TBinop (op, a, b) }, ci 0L);
              }
            end
            else begin
              incomplete := true;
              e
            end
          | _ -> e);
    }
  in
  let tp' = map_program m tp in
  if !lines = [] then None
  else
    Some
      {
        el_rule = "guard-div";
        el_kinds = [ Staticcheck.Finding.Div_zero ];
        el_lines = List.sort_uniq compare !lines;
        el_complete = not !incomplete;
        el_prog = tp';
      }

(* saturate-arith: 32-bit [a + b] / [-] / [*] / [-a] is computed at 64
   bits (where the 32-bit operands cannot overflow) and clamped back to
   the int range.  Signed-overflow UB is gone; an Int_error report that
   survives is a false positive. *)
let saturate (tp : tprogram) : elim option =
  let lines = ref [] in
  let incomplete = ref false in
  let clamp32 (loc : Ast.loc) (w : texpr) : texpr =
    let cl v = { te = TConstI v; tty = Ast.Tlong; tloc = loc } in
    let bi o x y = { te = TBinop (o, x, y); tty = Ast.Tint; tloc = loc } in
    let cond c t f = { te = TCond (c, t, f); tty = Ast.Tlong; tloc = loc } in
    let clamped =
      cond
        (bi Ast.Gt w (cl 2147483647L))
        (cl 2147483647L)
        (cond (bi Ast.Lt w (cl (-2147483648L))) (cl (-2147483648L)) w)
    in
    { te = TCast (Ast.Tint, clamped); tty = Ast.Tint; tloc = loc }
  in
  let wide (x : texpr) : texpr =
    { te = TCast (Ast.Tlong, x); tty = Ast.Tlong; tloc = x.tloc }
  in
  let m =
    {
      default_mapper with
      m_expr =
        (fun m e ->
          let e = default_expr m e in
          match e.te with
          | TBinop (((Ast.Add | Ast.Sub | Ast.Mul) as op), a, b)
            when e.tty = Ast.Tint ->
            if total_read a && total_read b && expr_size e <= 96 then begin
              lines := e.tloc.Ast.line :: !lines;
              let w =
                { te = TBinop (op, wide a, wide b); tty = Ast.Tlong; tloc = e.tloc }
              in
              clamp32 e.tloc w
            end
            else begin
              incomplete := true;
              e
            end
          | TUnop (Ast.Neg, a) when e.tty = Ast.Tint ->
            if total_read a && expr_size a <= 96 then begin
              lines := e.tloc.Ast.line :: !lines;
              let w =
                { te = TUnop (Ast.Neg, wide a); tty = Ast.Tlong; tloc = e.tloc }
              in
              clamp32 e.tloc w
            end
            else begin
              incomplete := true;
              e
            end
          | (TBinop ((Ast.Add | Ast.Sub | Ast.Mul), _, _) | TUnop (Ast.Neg, _))
            when e.tty = Ast.Tlong ->
            (* no wider type to saturate through *)
            incomplete := true;
            e
          | _ -> e);
    }
  in
  let tp' = map_program m tp in
  if !lines = [] then None
  else
    Some
      {
        el_rule = "saturate-arith";
        el_kinds = [ Staticcheck.Finding.Int_error ];
        el_lines = List.sort_uniq compare !lines;
        el_complete = not !incomplete;
        el_prog = tp';
      }

(* init-decl: scalar declarations without initializer get an explicit
   zero.  Uninitialized-use UB on those variables is gone; a surviving
   Uninit report is a false positive.  Pointers and arrays are left
   alone (a null init would merely trade one UB class for another). *)
let init_decl (tp : tprogram) : elim option =
  let lines = ref [] in
  let incomplete = ref false in
  let m =
    {
      default_mapper with
      m_stmt =
        (fun m s ->
          match s.ts with
          | TSDecl (t, n, None) -> (
            match t with
            | Ast.Tint | Ast.Tlong ->
              lines := s.tsloc.Ast.line :: !lines;
              [
                {
                  s with
                  ts = TSDecl (t, n, Some { te = TConstI 0L; tty = t; tloc = s.tsloc });
                };
              ]
            | Ast.Tdouble ->
              lines := s.tsloc.Ast.line :: !lines;
              [
                {
                  s with
                  ts =
                    TSDecl (t, n, Some { te = TConstF 0.; tty = t; tloc = s.tsloc });
                };
              ]
            | Ast.Tptr _ | Ast.Tarr _ | Ast.Tvoid ->
              incomplete := true;
              default_stmt m s)
          | _ -> default_stmt m s);
    }
  in
  let tp' = map_program m tp in
  if !lines = [] then None
  else
    Some
      {
        el_rule = "init-decl";
        el_kinds = [ Staticcheck.Finding.Uninit ];
        el_lines = List.sort_uniq compare !lines;
        el_complete = not !incomplete;
        el_prog = tp';
      }

(* clamp-index: [arr[i]] on a declared array of known size clamps the
   index into bounds.  Out-of-bounds UB at those sites is gone; heap
   and pointer accesses (unknown bounds) mark the pass incomplete. *)
let clamp_index (tp : tprogram) : elim option =
  let lines = ref [] in
  let incomplete = ref false in
  let m =
    {
      default_mapper with
      m_expr =
        (fun m e ->
          let e = default_expr m e in
          match e.te with
          | TIndex (base, idx) -> (
            let arr_size =
              match base.te with
              | TDecay inner -> (
                match inner.tty with
                | Ast.Tarr (_, n) when n > 0 -> Some n
                | _ -> None)
              | _ -> None
            in
            match arr_size with
            | Some n when int_ty idx.tty && total_read idx && expr_size idx <= 96
              ->
              lines := e.tloc.Ast.line :: !lines;
              let ci v =
                { te = TConstI (Int64.of_int v); tty = idx.tty; tloc = idx.tloc }
              in
              let bi o x y =
                { te = TBinop (o, x, y); tty = Ast.Tint; tloc = idx.tloc }
              in
              let cond c t f =
                { te = TCond (c, t, f); tty = idx.tty; tloc = idx.tloc }
              in
              let clamped =
                cond (bi Ast.Lt idx (ci 0)) (ci 0)
                  (cond (bi Ast.Ge idx (ci n)) (ci (n - 1)) idx)
              in
              { e with te = TIndex (base, clamped) }
            | _ ->
              incomplete := true;
              e)
          | TDeref _ ->
            (* a raw dereference is an unbounded access we cannot clamp *)
            incomplete := true;
            e
          | _ -> e);
    }
  in
  let tp' = map_program m tp in
  if !lines = [] then None
  else
    Some
      {
        el_rule = "clamp-index";
        el_kinds = [ Staticcheck.Finding.Mem_error ];
        el_lines = List.sort_uniq compare !lines;
        el_complete = not !incomplete;
        el_prog = tp';
      }

let eliminating (tp : tprogram) : elim list =
  List.filter_map
    (fun f -> f tp)
    [ guard_div; saturate; init_decl; clamp_index ]
