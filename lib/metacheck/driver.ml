(* The metamorphic meta-checker (turning the oracle on the checkers).

   For a seed program we compute a baseline verdict set — every static
   tool, every sanitizer, and the differential oracle itself — then
   generate metamorphic twins and compare:

   - a report that *vanishes* under a UB-preserving rewrite is
     FN-inducing instability of that checker (the bug is still there,
     the checker lost it);
   - a report that *survives* a UB-eliminating rewrite (or appears on
     the now-UB-free twin) is a false positive;
   - an oracle divergence with *no* sanitizer report at all is a
     cross-validated sanitizer FN: ground truth says the program is
     unstable and the sanitizers are silent.

   Twins are analyzed through the same engine {!Engine.Session} as the
   baseline, batched over {!Cdutil.Pool} ([analyze]) or sequentially
   ([analyze_naive]); both produce identical flags, which the bench
   cross-validates. *)

module Oracle = Compdiff.Oracle
module Triage = Compdiff.Triage

type what = Fn_instability | Fp | Xval_fn | Drift

let what_to_string = function
  | Fn_instability -> "FN-instability"
  | Fp -> "FP"
  | Xval_fn -> "cross-validated FN"
  | Drift -> "drift"

type flag = {
  fl_tool : string;
  fl_rule : string;  (* transform rule that exposed it; "baseline" for xval *)
  fl_what : what;
  fl_kind : Staticcheck.Finding.kind option;
  fl_detail : string;
}

type verdicts = {
  v_static : Report.t list;
  v_san : Report.t list;
  v_oracle : (string * int) list;
      (* diverging input -> partition signature *)
}

type result = {
  mc_name : string;
  mc_preserving : int;       (* preserving twins generated *)
  mc_eliminating : int;      (* eliminating twins generated *)
  mc_rules : string list;    (* distinct rules exercised *)
  mc_retype_failures : (string * string) list; (* rule, type error *)
  mc_baseline : verdicts;
  mc_flags : flag list;
}

(* --- per-program verdict extraction --- *)

let verdicts_of ?session ?profiles ?fuel (tp : Minic.Tast.tprogram)
    ~(inputs : string list) : verdicts =
  let p = Minic.Tast.erase_program tp in
  let v_static =
    List.concat_map
      (fun t -> Report.of_static t p)
      Staticcheck.Static_tools.all
  in
  let b = Sanitizers.San.build ?session tp in
  let v_san =
    List.concat_map
      (fun k -> Report.of_sanitizer ?fuel k b ~inputs)
      Sanitizers.San.all
  in
  let o = Oracle.create ?session ?profiles ?fuel ~jobs:1 tp in
  let v_oracle =
    (* one batched oracle pass over the whole input set *)
    let inputs_arr = Array.of_list inputs in
    let verdicts = Oracle.check_batch o ~inputs:inputs_arr in
    List.concat
      (List.mapi
         (fun i input ->
           match verdicts.(i) with
           | Oracle.Agree _ -> []
           | Oracle.Diverge obs ->
             [ (input, Triage.signature_of_partition (Oracle.partition o obs)) ])
         inputs)
  in
  { v_static; v_san; v_oracle }

(* Re-typecheck a twin by erasing it back to source form; every
   metamorphic twin must survive this or the transform is unsound. *)
let retype (tp : Minic.Tast.tprogram) :
    (Minic.Tast.tprogram, string) Stdlib.result =
  Minic.Typecheck.check_program_result (Minic.Tast.erase_program tp)

(* --- twin comparison --- *)

let flags_of_preserving ~(base : verdicts) ~(rule : string) (tw : verdicts) :
    flag list =
  let vanished = Report.diff base.v_static tw.v_static in
  let appeared = Report.diff tw.v_static base.v_static in
  let san_vanished = Report.diff base.v_san tw.v_san in
  let san_appeared = Report.diff tw.v_san base.v_san in
  let static_flags =
    List.map
      (fun (r : Report.t) ->
        {
          fl_tool = r.Report.r_tool;
          fl_rule = rule;
          fl_what = Fn_instability;
          fl_kind = Some r.Report.r_kind;
          fl_detail =
            Printf.sprintf "%s vanished under %s" (Report.to_string r) rule;
        })
      (vanished @ san_vanished)
  in
  let drift_flags =
    List.map
      (fun (r : Report.t) ->
        {
          fl_tool = r.Report.r_tool;
          fl_rule = rule;
          fl_what = Drift;
          fl_kind = Some r.Report.r_kind;
          fl_detail =
            Printf.sprintf "%s appeared under %s" (Report.to_string r) rule;
        })
      (appeared @ san_appeared)
  in
  let oracle_flags =
    List.filter_map
      (fun (input, sg) ->
        match List.assoc_opt input tw.v_oracle with
        | Some sg' when sg' = sg -> None
        | Some _ ->
          Some
            {
              fl_tool = Report.compdiff_tool;
              fl_rule = rule;
              fl_what = Drift;
              fl_kind = None;
              fl_detail =
                Printf.sprintf
                  "divergence class changed under %s on input %S" rule input;
            }
        | None ->
          Some
            {
              fl_tool = Report.compdiff_tool;
              fl_rule = rule;
              fl_what = Fn_instability;
              fl_kind = None;
              fl_detail =
                Printf.sprintf
                  "divergence vanished under %s on input %S" rule input;
            })
      base.v_oracle
  in
  let oracle_new =
    List.filter_map
      (fun (input, _) ->
        if List.mem_assoc input base.v_oracle then None
        else
          Some
            {
              fl_tool = Report.compdiff_tool;
              fl_rule = rule;
              fl_what = Drift;
              fl_kind = None;
              fl_detail =
                Printf.sprintf
                  "new divergence under %s on input %S" rule input;
            })
      tw.v_oracle
  in
  static_flags @ drift_flags @ oracle_flags @ oracle_new

let flags_of_eliminating ~(el : Transform.elim) (tw : verdicts) : flag list =
  let rule = el.Transform.el_rule in
  let kinds = el.Transform.el_kinds in
  let static_fp =
    List.filter_map
      (fun (r : Report.t) ->
        let line_hit =
          match r.Report.r_line with
          | Some l -> List.mem l el.Transform.el_lines
          | None -> false
        in
        if List.mem r.Report.r_kind kinds && line_hit then
          Some
            {
              fl_tool = r.Report.r_tool;
              fl_rule = rule;
              fl_what = Fp;
              fl_kind = Some r.Report.r_kind;
              fl_detail =
                Printf.sprintf "%s survives %s at a rewritten site"
                  (Report.to_string r) rule;
            }
        else None)
      tw.v_static
  in
  let san_fp =
    if not el.Transform.el_complete then []
      (* partial elimination: surviving dynamic reports are inconclusive *)
    else
      List.filter_map
        (fun (r : Report.t) ->
          if List.mem r.Report.r_kind kinds then
            Some
              {
                fl_tool = r.Report.r_tool;
                fl_rule = rule;
                fl_what = Fp;
                fl_kind = Some r.Report.r_kind;
                fl_detail =
                  Printf.sprintf "%s survives complete %s"
                    (Report.to_string r) rule;
              }
          else None)
        tw.v_san
  in
  static_fp @ san_fp

let xval_flags (base : verdicts) : flag list =
  if base.v_oracle = [] || base.v_san <> [] then []
  else
    List.map
      (fun k ->
        let input, sg = List.hd base.v_oracle in
        {
          fl_tool = Sanitizers.San.name k;
          fl_rule = "baseline";
          fl_what = Xval_fn;
          fl_kind = None;
          fl_detail =
            Printf.sprintf
              "oracle diverges (input %S, class %08x) with no sanitizer \
               report"
              input (sg land 0xffffffff);
        })
      Sanitizers.San.all

(* --- driver --- *)

let analyze_with ~map ?session ?profiles ?fuel ?(limit = 4) ~name
    (tp : Minic.Tast.tprogram) ~(inputs : string list) : result =
  let base = verdicts_of ?session ?profiles ?fuel tp ~inputs in
  let pres = Transform.preserving ~limit_per_rule:limit tp in
  let elims = Transform.eliminating tp in
  let check_pres (tw : Transform.twin) =
    match retype tw.Transform.tw_prog with
    | Error msg -> Error (tw.Transform.tw_rule, msg)
    | Ok tp' ->
      let v = verdicts_of ?session ?profiles ?fuel tp' ~inputs in
      Ok (flags_of_preserving ~base ~rule:tw.Transform.tw_rule v)
  in
  let check_elim (el : Transform.elim) =
    match retype el.Transform.el_prog with
    | Error msg -> Error (el.Transform.el_rule, msg)
    | Ok tp' ->
      let v = verdicts_of ?session ?profiles ?fuel tp' ~inputs in
      Ok (flags_of_eliminating ~el v)
  in
  let tasks =
    List.map (fun tw () -> check_pres tw) pres
    @ List.map (fun el () -> check_elim el) elims
  in
  let outs = map (fun th -> th ()) tasks in
  let failures =
    List.filter_map (function Error e -> Some e | Ok _ -> None) outs
  in
  let twin_flags =
    List.concat_map (function Ok fs -> fs | Error _ -> []) outs
  in
  let rules =
    List.sort_uniq compare
      (List.map (fun t -> t.Transform.tw_rule) pres
      @ List.map (fun e -> e.Transform.el_rule) elims)
  in
  {
    mc_name = name;
    mc_preserving = List.length pres;
    mc_eliminating = List.length elims;
    mc_rules = rules;
    mc_retype_failures = failures;
    mc_baseline = base;
    mc_flags = xval_flags base @ twin_flags;
  }

let analyze ?pool ?session ?profiles ?fuel ?limit ~name tp ~inputs : result =
  analyze_with ~map:(fun f xs -> Cdutil.Pool.map ?pool f xs) ?session
    ?profiles ?fuel ?limit ~name tp ~inputs

let analyze_naive ?session ?profiles ?fuel ?limit ~name tp ~inputs : result =
  analyze_with ~map:List.map ?session ?profiles ?fuel ?limit ~name tp ~inputs

(* Comparable essence of a result, for batched/naive cross-validation
   (flag order within a twin is deterministic; twin order is fixed by
   the transform enumeration, so whole results compare directly). *)
let essence (r : result) : string =
  String.concat "\n"
    (Printf.sprintf "%s p=%d e=%d fail=%d" r.mc_name r.mc_preserving
       r.mc_eliminating
       (List.length r.mc_retype_failures)
    :: List.map
         (fun f ->
           Printf.sprintf "%s|%s|%s|%s" f.fl_tool f.fl_rule
             (what_to_string f.fl_what)
             f.fl_detail)
         r.mc_flags)

(* --- rendering --- *)

let flag_to_string (f : flag) : string =
  Printf.sprintf "%-19s %-14s %-12s %s"
    (what_to_string f.fl_what)
    f.fl_tool f.fl_rule f.fl_detail

let result_to_string (r : result) : string =
  let buf = Buffer.create 512 in
  Printf.bprintf buf "== %s ==\n" r.mc_name;
  Printf.bprintf buf "preserving twins: %d\n" r.mc_preserving;
  Printf.bprintf buf "eliminating twins: %d\n" r.mc_eliminating;
  Printf.bprintf buf "rules: %s\n" (String.concat ", " r.mc_rules);
  Printf.bprintf buf "baseline: %d static, %d sanitizer, %d divergent input(s)\n"
    (List.length r.mc_baseline.v_static)
    (List.length r.mc_baseline.v_san)
    (List.length r.mc_baseline.v_oracle);
  List.iter
    (fun (rule, msg) ->
      Printf.bprintf buf "RETYPE FAILURE under %s: %s\n" rule msg)
    r.mc_retype_failures;
  List.iter (fun f -> Printf.bprintf buf "  %s\n" (flag_to_string f)) r.mc_flags;
  Buffer.contents buf
