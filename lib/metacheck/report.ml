(* The common verdict shape every checker is projected into.

   Static tools already speak {!Staticcheck.Finding.kind}; sanitizer
   reports are classified into the same vocabulary from their message
   text, and the oracle contributes one entry per diverging input (keyed
   by the renaming-invariant partition signature).  Metamorphic
   comparison then happens uniformly on sets of these. *)

type t = {
  r_tool : string;
  r_kind : Staticcheck.Finding.kind;
  r_line : int option; (* static findings carry a line; dynamic ones don't *)
}

let compdiff_tool = "CompDiff"

let tool_names =
  List.map Staticcheck.Static_tools.name Staticcheck.Static_tools.all
  @ List.map Sanitizers.San.name Sanitizers.San.all
  @ [ compdiff_tool ]

(* --- static extraction --- *)

(* detection-grade findings of one tool as reports *)
let of_static (t : Staticcheck.Static_tools.tool) (p : Minic.Ast.program) :
    t list =
  List.filter_map
    (fun (f : Staticcheck.Finding.t) ->
      if f.Staticcheck.Finding.severity = Staticcheck.Finding.Error then
        Some
          {
            r_tool = Staticcheck.Static_tools.name t;
            r_kind = f.Staticcheck.Finding.kind;
            r_line = Some f.Staticcheck.Finding.line;
          }
      else None)
    (Staticcheck.Static_tools.check t p)

(* --- sanitizer extraction --- *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* classify a sanitizer report message into the common kind vocabulary *)
let classify_san (kind : Sanitizers.San.kind) (msg : string) :
    Staticcheck.Finding.kind =
  match kind with
  | Sanitizers.San.Asan -> Staticcheck.Finding.Mem_error
  | Sanitizers.San.Msan -> Staticcheck.Finding.Uninit
  | Sanitizers.San.Ubsan ->
    if contains msg "division by zero" || contains msg "/ -1" then
      Staticcheck.Finding.Div_zero
    else if contains msg "shift" then Staticcheck.Finding.Ub_generic
    else if contains msg "null pointer" then Staticcheck.Finding.Null_deref
    else Staticcheck.Finding.Int_error

(* run one sanitizer over every input and collect the distinct report
   kinds (one build serves all inputs; hooks are per-run config) *)
let of_sanitizer ?fuel (kind : Sanitizers.San.kind)
    (b : Sanitizers.San.build) ~(inputs : string list) : t list =
  let kinds =
    List.sort_uniq compare
      (List.filter_map
         (fun input ->
           match
             (Sanitizers.San.run_built ?fuel kind b ~input).Cdvm.Exec.status
           with
           | Cdvm.Trap.San_report msg -> Some (classify_san kind msg)
           | Cdvm.Trap.Exit _ | Cdvm.Trap.Trap _ | Cdvm.Trap.Hang -> None)
         inputs)
  in
  List.map
    (fun k ->
      { r_tool = Sanitizers.San.name kind; r_kind = k; r_line = None })
    kinds

(* --- set-level comparison helpers --- *)

let key (r : t) = (r.r_tool, r.r_kind, r.r_line)

let diff (a : t list) (b : t list) : t list =
  let kb = List.map key b in
  List.filter (fun r -> not (List.mem (key r) kb)) a

let to_string (r : t) : string =
  Printf.sprintf "[%s] %s%s" r.r_tool
    (Staticcheck.Finding.kind_to_string r.r_kind)
    (match r.r_line with Some l -> Printf.sprintf " at line %d" l | None -> "")
