(* Evaluation of every tool on the benchmark suite (Table 3) plus the raw
   material for the subset study (Figure 1). *)

type test_eval = {
  test : Testcase.t;
  category : Cwe.category;
  (* static tools: (detected on bad, flagged good = false positive) *)
  coverity : bool * bool;
  cppcheck : bool * bool;
  infer : bool * bool;
  unstable : bool * bool;
  (* sanitizers: detected on bad / reported on good *)
  asan : bool * bool;
  ubsan : bool * bool;
  msan : bool * bool;
  (* CompDiff: detected on bad / diverged on good *)
  compdiff : bool * bool;
  (* behaviour partition of the 10 implementations on the bad variant's
     first bug-triggering input (all-zero when no divergence was found) *)
  partition : int array;
  (* §5 reporting: reduction of the bug-triggering input, when one was
     found and the reducer validated a (possibly equal) smaller one *)
  reduction : Compdiff.Reduce.stats option;
  (* combined execution counters of this test's bad+good oracles, for
     the suite-level `juliet --stats` summary *)
  oracle_stats : Compdiff.Oracle.stats;
}

let nimpls = List.length Cdcompiler.Profiles.all

let eval_static (tool : Staticcheck.Static_tools.tool) (t : Testcase.t)
    (category : Cwe.category) : bool * bool =
  let kinds = Cwe.matching_kinds category in
  ( Staticcheck.Static_tools.flags_kinds tool t.Testcase.bad kinds,
    Staticcheck.Static_tools.flags_kinds tool t.Testcase.good kinds )

(* one sanitizer build per variant serves all three kinds: the hook set
   is per-run, so ASan/UBSan/MSan share the compiled+linked binary *)
let eval_sanitizer ?fuel (kind : Sanitizers.San.kind)
    ~(bad_build : Sanitizers.San.build) ~(good_build : Sanitizers.San.build)
    ~(inputs : string list) : bool * bool =
  ( Sanitizers.San.detects_built ?fuel kind bad_build ~inputs,
    Sanitizers.San.detects_built ?fuel kind good_build ~inputs )

(* Cross-validation (acceptance gate of the parallel oracle): on every
   input, the deduped/pooled verdict must be structurally identical to
   the sequential naive one. *)
let validate_oracle (oracle : Compdiff.Oracle.t) ~(inputs : string list) : unit =
  List.iter
    (fun input ->
      let fast = Compdiff.Oracle.check oracle ~input in
      let naive = Compdiff.Oracle.check_naive oracle ~input in
      if fast <> naive then
        failwith
          (Printf.sprintf
             "Oracle cross-validation failed on input %S: deduped/parallel \
              verdict differs from the naive oracle"
             input))
    inputs

let add_oracle_stats (a : Compdiff.Oracle.stats) (b : Compdiff.Oracle.stats) :
    Compdiff.Oracle.stats =
  {
    Compdiff.Oracle.checks = a.Compdiff.Oracle.checks + b.Compdiff.Oracle.checks;
    vm_execs = a.Compdiff.Oracle.vm_execs + b.Compdiff.Oracle.vm_execs;
    dedup_saved = a.Compdiff.Oracle.dedup_saved + b.Compdiff.Oracle.dedup_saved;
    escalation_saved =
      a.Compdiff.Oracle.escalation_saved + b.Compdiff.Oracle.escalation_saved;
  }

let eval_compdiff ?session ?(fuel = 100_000) ?(validate = false)
    ?(reduce = true) ~(bad : Minic.Tast.tprogram)
    ~(good : Minic.Tast.tprogram) ~(inputs : string list) () :
    (bool * bool) * int array * Compdiff.Reduce.stats option
    * Compdiff.Oracle.stats =
  let oracle_bad = Compdiff.Oracle.create ?session ~fuel bad in
  let detected, partition, reduction =
    match Compdiff.Oracle.find_bug oracle_bad ~inputs with
    | Some (input, obs) ->
      let reduction =
        if reduce then
          Option.map
            (fun (r : Compdiff.Reduce.result) -> r.Compdiff.Reduce.red_stats)
            (Compdiff.Reduce.reduce ~max_checks:200 oracle_bad ~input obs)
        else None
      in
      (true, Compdiff.Oracle.partition oracle_bad obs, reduction)
    | None -> (false, Array.make nimpls 0, None)
  in
  let oracle_good = Compdiff.Oracle.create ?session ~fuel good in
  let fp = Compdiff.Oracle.detects oracle_good ~inputs in
  if validate then begin
    validate_oracle oracle_bad ~inputs;
    validate_oracle oracle_good ~inputs
  end;
  let ostats =
    add_oracle_stats
      (Compdiff.Oracle.stats oracle_bad)
      (Compdiff.Oracle.stats oracle_good)
  in
  ((detected, fp), partition, reduction, ostats)

let evaluate ?session ?(fuel = 100_000) ?validate ?reduce (t : Testcase.t) :
    test_eval =
  let category = (Cwe.info t.Testcase.cwe).Cwe.category in
  let bad = Testcase.frontend_bad t in
  let good = Testcase.frontend_good t in
  let inputs = t.Testcase.inputs in
  let compdiff, partition, reduction, oracle_stats =
    eval_compdiff ?session ~fuel ?validate ?reduce ~bad ~good ~inputs ()
  in
  (* the sanitizer builds reuse the session's unit/image caches (the
     bad/good programs were just compiled for the oracles under the
     same gccx-O0 profile) *)
  let bad_build = Sanitizers.San.build ?session bad in
  let good_build = Sanitizers.San.build ?session good in
  {
    test = t;
    category;
    coverity = eval_static Staticcheck.Static_tools.Coverity t category;
    cppcheck = eval_static Staticcheck.Static_tools.Cppcheck t category;
    infer = eval_static Staticcheck.Static_tools.Infer t category;
    unstable = eval_static Staticcheck.Static_tools.Unstable t category;
    asan = eval_sanitizer ~fuel Sanitizers.San.Asan ~bad_build ~good_build ~inputs;
    ubsan = eval_sanitizer ~fuel Sanitizers.San.Ubsan ~bad_build ~good_build ~inputs;
    msan = eval_sanitizer ~fuel Sanitizers.San.Msan ~bad_build ~good_build ~inputs;
    compdiff;
    partition;
    reduction;
    oracle_stats;
  }

(* Evaluating one test touches no shared mutable state of its own, so
   the suite can be spread over the pool; a shared session is safe (its
   caches are mutex-protected) and results keep suite order. *)
let evaluate_suite ?session ?fuel ?validate ?reduce
    ?(jobs = Cdutil.Pool.default_jobs ()) (tests : Testcase.t list) :
    test_eval list =
  let eval t = evaluate ?session ?fuel ?validate ?reduce t in
  if jobs > 1 then Cdutil.Pool.map eval tests else List.map eval tests

(* combined oracle counters over the whole suite (juliet --stats) *)
let sum_oracle_stats (evals : test_eval list) : Compdiff.Oracle.stats =
  List.fold_left
    (fun acc e -> add_oracle_stats acc e.oracle_stats)
    { Compdiff.Oracle.checks = 0; vm_execs = 0; dedup_saved = 0;
      escalation_saved = 0 }
    evals

(* --- Table 3 aggregation --- *)

type row = {
  label : string;
  categories : Cwe.category list;
  total : int;
  (* per tool: detection rate, false-positive rate *)
  r_coverity : float * float;
  r_cppcheck : float * float;
  r_infer : float * float;
  r_unstable : float * float;
  r_asan : float;
  r_ubsan : float;
  r_msan : float;
  r_san_total : float;       (* any sanitizer *)
  r_compdiff : float;
  unique : int;               (* CompDiff-only detections vs sanitizers *)
  r_reduction : float;
      (* mean input-size reduction of the bug-triggering inputs
         (1 - reduced/raw), over the detections the reducer validated *)
}

let rows_spec : (string * Cwe.category list) list =
  [
    ("121~127,415,416,590 Memory error", [ Cwe.Memory_error ]);
    ("475 UB for input to API", [ Cwe.Ub_api ]);
    ("588 Bad struct. pointer", [ Cwe.Bad_struct_ptr ]);
    ("685 Bad function call", [ Cwe.Bad_call ]);
    ("758 UB", [ Cwe.Ub_general ]);
    ("190,191,680 Integer error", [ Cwe.Int_error ]);
    ("369 Divide by zero", [ Cwe.Div_zero ]);
    ("476 Null pointer deref.", [ Cwe.Null_deref ]);
    ("457,665 Uninitialized memory", [ Cwe.Uninit ]);
    ("469 UB of pointer Sub.", [ Cwe.Ptr_sub ]);
  ]

let rate num den = if den = 0 then 0. else float_of_int num /. float_of_int den

(* false-positive rate as the paper defines it: incorrect reports out of
   all reports (bad-detections + good-flags) *)
let fp_rate ~detections ~good_flags =
  rate good_flags (detections + good_flags)

let aggregate (evals : test_eval list) : row list =
  List.map
    (fun (label, categories) ->
      let sel = List.filter (fun e -> List.mem e.category categories) evals in
      let total = List.length sel in
      let count f = List.length (List.filter f sel) in
      let static_pair get =
        let det = count (fun e -> fst (get e)) in
        let fp = count (fun e -> snd (get e)) in
        (rate det total, fp_rate ~detections:det ~good_flags:fp)
      in
      let san_total =
        count (fun e -> fst e.asan || fst e.ubsan || fst e.msan)
      in
      let compdiff_det = count (fun e -> fst e.compdiff) in
      let r_reduction =
        let rs =
          List.filter_map (fun e -> e.reduction) sel
          |> List.map Compdiff.Reduce.input_ratio
        in
        match rs with
        | [] -> 0.
        | _ -> List.fold_left ( +. ) 0. rs /. float_of_int (List.length rs)
      in
      let unique =
        count (fun e ->
            fst e.compdiff && not (fst e.asan || fst e.ubsan || fst e.msan))
      in
      {
        label;
        categories;
        total;
        r_coverity = static_pair (fun e -> e.coverity);
        r_cppcheck = static_pair (fun e -> e.cppcheck);
        r_infer = static_pair (fun e -> e.infer);
        r_unstable = static_pair (fun e -> e.unstable);
        r_asan = rate (count (fun e -> fst e.asan)) total;
        r_ubsan = rate (count (fun e -> fst e.ubsan)) total;
        r_msan = rate (count (fun e -> fst e.msan)) total;
        r_san_total = rate san_total total;
        r_compdiff = rate compdiff_det total;
        unique;
        r_reduction;
      })
    rows_spec

(* sanitizer / CompDiff false positives across the whole suite: the
   paper's Finding 5 expects all of these to be zero *)
let false_positive_counts (evals : test_eval list) =
  let count f = List.length (List.filter f evals) in
  [
    ("ASan", count (fun e -> snd e.asan));
    ("UBSan", count (fun e -> snd e.ubsan));
    ("MSan", count (fun e -> snd e.msan));
    ("CompDiff", count (fun e -> snd e.compdiff));
  ]

(* partitions of the detected bugs, for Figure 1 *)
let detected_partitions (evals : test_eval list) : int array list =
  List.filter_map
    (fun e -> if fst e.compdiff then Some e.partition else None)
    evals
