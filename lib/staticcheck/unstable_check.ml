(* UnstableCheck: an IR-level abstract interpreter that statically flags
   the instability classes the differential oracle detects dynamically.

   Unlike the three AST pattern matchers, this analyzer runs on the
   compiler IR (the gccx-O0 lowering: no optimizations, every local in a
   frame slot), builds a CFG, and solves a forward dataflow problem over
   the product of the interval, initialization and provenance domains
   (lib/staticcheck/dataflow/). It then replays every reachable block at
   the fixpoint and reports:

   - [Int_error]  signed arithmetic whose interval admits overflow, and
                  value-changing long->int truncation;
   - [Uninit]     reads of (maybe-)uninitialized slots, heap cells and
                  the junk register of a missing return;
   - [Ptr_sub]    subtraction or relational comparison of pointers with
                  distinct provenances (also through int casts);
   - [Mem_error]  out-of-bounds address math and accesses, use after
                  free, double free, free of non-heap pointers;
   - [Div_zero]   division/mod by a zero-admitting interval;
   - [Null_deref] loads/stores through (possibly) null pointers;
   - [Bad_call]   overlapping memcpy ranges;
   - [Ub_generic] layout-dependent pointer<->integer casts, shift-range.

   Reports on imprecise evidence (widened intervals, joined init states,
   may-null) are downgraded to [Warning]; only [Error] findings count as
   detections in Table 3. *)

open Cdcompiler.Ir
module I = Dataflow.Interval
module P = Dataflow.Provenance
module D = Dataflow.Initdom
module S = Dataflow.Absstate
module Cfg = Dataflow.Cfg

let tool_name = "UnstableCheck"

(* the analysis runs on the unoptimized lowering: closest to the source,
   before any implementation exploits the UB we are trying to find *)
let analysis_profile = Cdcompiler.Profiles.fuzz_profile

module Sol = Dataflow.Solver.Make (struct
  type t = S.t

  let join = S.join
  let widen = S.widen
  let equal = S.equal
end)

type emit = kind:Finding.kind -> sev:Finding.severity -> pc:int -> string -> unit

exception Halt   (* exit()/abort(): the rest of the block is dead *)

let negate_cmp = function
  | Clt -> Cge | Cle -> Cgt | Cgt -> Cle | Cge -> Clt | Ceq -> Cne | Cne -> Ceq

let swap_cmp = function
  | Clt -> Cgt | Cle -> Cge | Cgt -> Clt | Cge -> Cle | Ceq -> Ceq | Cne -> Cne

let itv_true = I.const 1L
let itv_false = I.const 0L

(* drop 0 from the edge of an interval when possible; [None] = the value
   can only be zero *)
let refine_itv_ne (itv : I.t) : I.t option =
  if itv.I.lo = 0L && itv.I.hi = 0L then None
  else if itv.I.lo = 0L then Some { itv with I.lo = 1L }
  else if itv.I.hi = 0L then Some { itv with I.hi = -1L }
  else Some itv

(* decide a comparison from interval evidence when possible *)
let eval_cmp c (va : S.aval) (vb : S.aval) : I.t =
  let a = va.S.itv and b = vb.S.itv in
  let known_ne () =
    I.meet a b = None
    || (va.S.nz && I.singleton b = Some 0L)
    || (vb.S.nz && I.singleton a = Some 0L)
  in
  match c with
  | Clt -> if a.I.hi < b.I.lo then itv_true else if a.I.lo >= b.I.hi then itv_false else I.bool_range
  | Cle -> if a.I.hi <= b.I.lo then itv_true else if a.I.lo > b.I.hi then itv_false else I.bool_range
  | Cgt -> if a.I.lo > b.I.hi then itv_true else if a.I.hi <= b.I.lo then itv_false else I.bool_range
  | Cge -> if a.I.lo >= b.I.hi then itv_true else if a.I.hi < b.I.lo then itv_false else I.bool_range
  | Ceq ->
    if I.is_singleton a && a = b then itv_true
    else if known_ne () then itv_false
    else I.bool_range
  | Cne ->
    if I.is_singleton a && a = b then itv_false
    else if known_ne () then itv_true
    else I.bool_range

(* transfer function for one basic block, emitting findings as a side
   effect; used both during the fixpoint (silent) and the replay *)
let step ~(emit : emit) (cfg : Cfg.t) (block : Cfg.block) (st0 : S.t) :
    (int * S.t) list =
  let f = cfg.Cfg.func in
  let st = ref st0 in
  let getr r = (!st).S.regs.(r) in
  let setr r v =
    let regs = Array.copy (!st).S.regs in
    regs.(r) <- v;
    st := { !st with S.regs = regs }
  in
  let ev = function
    | Reg r -> getr r
    | ImmI v -> S.vconst v
    | ImmF _ -> S.vfloat
    | Nullptr -> S.vnull
  in
  let clear_facts () = st := S.clear_facts !st in

  (* --- memory access checking --- *)
  (* resolve the targets of an access at cell offsets [span]; flags null,
     freed and out-of-bounds problems along the way *)
  let check_access ~pc ~what (pv : S.aval) (span : I.t) :
      (P.base * S.obj * I.t) list =
    match pv.S.ptr with
    | P.Pint | P.Ptop -> []
    | p when P.definitely_null p ->
      emit ~kind:Finding.Null_deref ~sev:Finding.Error ~pc
        (what ^ " through null pointer");
      []
    | p ->
      if P.may_be_null p then
        emit ~kind:Finding.Null_deref ~sev:Finding.Warning ~pc
          ("possible " ^ what ^ " through null pointer");
      List.filter_map
        (fun (base, off) ->
          let off = I.add off span in
          match S.get_obj !st base with
          | None -> None
          | Some o ->
            (match o.S.o_heap with
            | Some S.Freed ->
              emit ~kind:Finding.Mem_error ~sev:Finding.Error ~pc (what ^ " after free")
            | Some S.MaybeFreed ->
              emit ~kind:Finding.Mem_error ~sev:Finding.Warning ~pc
                ("possible " ^ what ^ " after free")
            | _ -> ());
            let size = o.S.o_size in
            let sev = if I.informed off then Finding.Error else Finding.Warning in
            if off.I.lo >= size.I.hi || off.I.hi < 0L then
              emit ~kind:Finding.Mem_error ~sev ~pc (what ^ " out of bounds")
            else if off.I.hi >= size.I.lo || off.I.lo < 0L then
              emit ~kind:Finding.Mem_error ~sev ~pc (what ^ " may be out of bounds");
            Some (base, o, off))
        (P.targets p)
  in

  let flag_init ~pc ~what (v : S.aval) =
    match v.S.init with
    | D.Uninit ->
      emit ~kind:Finding.Uninit ~sev:Finding.Error ~pc (what ^ " of uninitialized memory")
    | D.Maybe ->
      emit ~kind:Finding.Uninit ~sev:Finding.Warning ~pc
        (what ^ " of possibly-uninitialized memory")
    | D.Init -> ()
  in

  let do_load ~pc (pv : S.aval) : S.aval =
    match check_access ~pc ~what:"read" pv (I.const 0L) with
    | [] -> S.vunknown
    | ts ->
      let v =
        List.fold_left
          (fun acc (_, o, off) ->
            let cv = S.read_obj o off in
            (match cv.S.init with
            | D.Uninit ->
              emit ~kind:Finding.Uninit ~sev:Finding.Error ~pc
                "read of uninitialized memory"
            | D.Maybe ->
              (* a scalar that is only initialized on some paths is the
                 classic unstable shape; a maybe-initialized array cell is
                 usually loop-fill imprecision, so only warn *)
              let sev =
                if I.singleton o.S.o_size = Some 1L then Finding.Error
                else Finding.Warning
              in
              emit ~kind:Finding.Uninit ~sev ~pc
                "read of possibly-uninitialized memory"
            | D.Init -> ());
            match acc with None -> Some cv | Some a -> Some (S.join_aval a cv))
          None ts
        |> Option.get
      in
      let orig =
        match ts with
        | [ (base, o, off) ] when not o.S.o_multi -> (
          match I.singleton off with
          | Some k -> Some (base, Int64.to_int k)
          | None -> None)
        | _ -> None
      in
      { v with S.orig; truthy = S.no_preds; falsy = S.no_preds }
  in

  let do_store ~pc (pv : S.aval) (v : S.aval) =
    let ts = check_access ~pc ~what:"write" pv (I.const 0L) in
    let weak = List.length ts > 1 in
    let v = { v with S.truthy = S.no_preds; falsy = S.no_preds; orig = None } in
    List.iter
      (fun (base, _, off) ->
        match S.get_obj !st base with
        | None -> ()
        | Some o ->
          let v = if weak then S.join_aval (S.read_obj o off) v else v in
          st := S.set_obj !st base (S.write_obj o off v))
      ts;
    clear_facts ()
  in

  (* scan a %s / strlen string: reads cells until the first possible NUL;
     returns the possible length range *)
  let scan_string ~pc (pv : S.aval) : I.t =
    ignore (check_access ~pc ~what:"string read" pv (I.const 0L));
    match pv.S.ptr with
    | P.Pto { targets = [ (base, off) ]; _ } -> (
      match (S.get_obj !st base, I.singleton off) with
      | Some ({ S.o_cells = Some cells; _ } as o), Some k0
        when (not o.S.o_multi) && o.S.o_heap <> Some S.Freed ->
        let n = Array.length cells in
        let k0 = Int64.to_int k0 in
        if k0 < 0 || k0 >= n then I.top
        else begin
          let rec go i =
            if i >= n then begin
              emit ~kind:Finding.Mem_error ~sev:Finding.Error ~pc
                "string read runs past the end of the object (no terminator)";
              I.top
            end
            else begin
              let cv = cells.(i) in
              flag_init ~pc ~what:"string read" cv;
              if I.singleton cv.S.itv = Some 0L then I.of_int (i - k0)
              else if I.contains_zero cv.S.itv && not cv.S.nz then
                (* may stop here; stop scanning to stay conservative *)
                I.make (Int64.of_int (i - k0)) (Int64.of_int (n - k0))
              else go (i + 1)
            end
          in
          go k0
        end
      | _ -> I.top)
    | _ -> I.top
  in

  let bless_bases bases =
    List.iter
      (fun base ->
        match S.get_obj !st base with
        | Some o -> st := S.set_obj !st base (S.bless_obj o)
        | None -> ())
      bases
  in

  (* --- the instruction interpreter --- *)
  let exec pc ins =
    match ins with
    | Ilabel _ | Ijmp _ | Ibr _ | Iret _ | Itrap _ -> ()   (* handled by caller *)
    | Iconst (r, op) | Imov (r, op) -> (
      let v = ev op in
      let facts = S.Atoms (!st).S.facts in
      match op with
      | ImmI 0L | Nullptr ->
        setr r { v with S.truthy = S.Universe; falsy = facts }
      | ImmI _ -> setr r { v with S.truthy = facts; falsy = S.Universe }
      | Reg _ ->
        setr r
          {
            v with
            S.truthy = S.atoms_union v.S.truthy facts;
            falsy = S.atoms_union v.S.falsy facts;
          }
      | ImmF _ -> setr r v)
    | Ibin (op, w, sem, r, a, b) ->
      let va = ev a and vb = ev b in
      let ia = va.S.itv and ib = vb.S.itv in
      (* pointer subtraction smuggled through integer casts *)
      if op = Bsub && P.disjoint va.S.ptr vb.S.ptr then
        emit ~kind:Finding.Ptr_sub ~sev:Finding.Error ~pc
          "subtraction of pointers to distinct objects (via integer casts)";
      (match op with
      | Bdiv | Bmod ->
        if I.singleton ib = Some 0L then
          emit ~kind:Finding.Div_zero ~sev:Finding.Error ~pc "division by zero"
        else if I.informed ib && I.contains_zero ib && not vb.S.nz then
          emit ~kind:Finding.Div_zero ~sev:Finding.Warning ~pc
            "divisor interval admits zero"
      | Bshl | Bshr ->
        let width = match w with W32 -> 32L | W64 -> 64L in
        if I.informed ib then begin
          if ib.I.hi < 0L || ib.I.lo >= width then
            emit ~kind:Finding.Ub_generic ~sev:Finding.Error ~pc
              "shift amount exceeds the width"
          else if ib.I.lo < 0L || ib.I.hi >= width then
            emit ~kind:Finding.Ub_generic ~sev:Finding.Warning ~pc
              "shift amount may exceed the width"
        end;
        if op = Bshl && sem = Csigned && I.informed ia && ia.I.lo < 0L then
          emit ~kind:Finding.Int_error ~sev:Finding.Error ~pc
            "left shift of a negative value"
      | _ -> ());
      let raw =
        match op with
        | Badd -> I.add ia ib
        | Bsub -> I.sub ia ib
        | Bmul -> I.mul ia ib
        | Bdiv -> I.div ia ib
        | Bmod -> I.rem ia ib
        | Bshl -> I.shl ia ib
        | Bshr -> I.shr ia ib
        | Band -> I.band ia ib
        | Bor -> I.bor ia ib
        | Bxor -> I.bxor ia ib
      in
      (match (sem, op) with
      | Csigned, (Badd | Bsub | Bmul | Bshl) when I.informed ia && I.informed ib ->
        (* an out-of-range shift count blows [raw] up on its own; the
           range diagnostic above already covers that case *)
        let count_ok =
          op <> Bshl
          || (ib.I.lo >= 0L && ib.I.hi < (match w with W32 -> 32L | W64 -> 64L))
        in
        let possible =
          match w with W32 -> not (I.in_int32 raw) | W64 -> not (I.informed raw)
        in
        if possible && count_ok then
          emit ~kind:Finding.Int_error ~sev:Finding.Error ~pc
            (Printf.sprintf "signed %d-bit %s may overflow"
               (match w with W32 -> 32 | W64 -> 64)
               (string_of_ibin op))
      | _ -> ());
      let res =
        (* Csigned overflow is UB: it is reported above when provable, and
           the continuation assumes it does not happen (keeping widened
           sentinel bounds intact). Cwrap is defined wrap-around and must
           be modeled. *)
        match sem with
        | Csigned -> raw
        | Cwrap -> (
          match w with
          | W32 -> if I.in_int32 raw then raw else I.full_of_width W32
          | W64 -> raw)
      in
      setr r (S.mk_val ~init:(D.join va.S.init vb.S.init) res)
    | Ineg (w, sem, r, a) ->
      let va = ev a in
      (if sem = Csigned && w = W32 && I.informed va.S.itv
          && I.contains va.S.itv I.int32_min
       then
         emit ~kind:Finding.Int_error ~sev:Finding.Error ~pc
           "negation of INT_MIN overflows");
      setr r (S.mk_val ~init:va.S.init (I.neg va.S.itv))
    | Inot (_, r, a) ->
      let va = ev a in
      setr r (S.mk_val ~init:va.S.init (I.lognot va.S.itv))
    | Ifbin (_, r, _, _) | Ifma (r, _, _, _) | Ifneg (r, _) -> setr r S.vfloat
    | Ifcmp (_, r, _, _) -> setr r (S.mk_val I.bool_range)
    | Icmp (c, _, r, a, b) ->
      let va = ev a and vb = ev b in
      let res = eval_cmp c va vb in
      let mint rel =
        (match va.S.orig with
        | Some cell when I.informed vb.S.itv ->
          [ { S.a_cell = cell; a_rel = rel; a_rhs = S.Rconst vb.S.itv } ]
        | _ -> [])
        @
        match vb.S.orig with
        | Some cell when I.informed va.S.itv ->
          [ { S.a_cell = cell; a_rel = swap_cmp rel; a_rhs = S.Rconst va.S.itv } ]
        | _ -> []
      in
      let facts = (!st).S.facts in
      let truthy =
        if res = itv_false then S.Universe else S.Atoms (mint c @ facts)
      in
      let falsy =
        if res = itv_true then S.Universe
        else S.Atoms (mint (negate_cmp c) @ facts)
      in
      (* [cmp.ne x, 0] is the identity on truthiness and [cmp.eq x, 0]
         its negation (the lowering normalizes short-circuit operands
         this way), so the result inherits the operand's predicate
         sets; without this the comparison chain forgets every atom a
         nested comparison minted. *)
      let transported =
        match c with
        | Cne | Ceq ->
          let src =
            if I.singleton vb.S.itv = Some 0L then Some va
            else if I.singleton va.S.itv = Some 0L then Some vb
            else None
          in
          (match src with
          | Some v when c = Cne -> Some (v.S.truthy, v.S.falsy)
          | Some v -> Some (v.S.falsy, v.S.truthy)
          | None -> None)
        | _ -> None
      in
      let truthy, falsy =
        match transported with
        | Some (t, f) -> (S.atoms_union truthy t, S.atoms_union falsy f)
        | None -> (truthy, falsy)
      in
      setr r { (S.mk_val ~init:(D.join va.S.init vb.S.init) res) with S.truthy; falsy }
    | Ipcmp (c, r, a, b) ->
      let va = ev a and vb = ev b in
      (match c with
      | Clt | Cle | Cgt | Cge ->
        if P.disjoint va.S.ptr vb.S.ptr then
          emit ~kind:Finding.Ptr_sub ~sev:Finding.Error ~pc
            "relational comparison of pointers to distinct objects"
      | Ceq | Cne -> ());
      (* null tests mint provenance atoms for branch refinement *)
      let is_null_op o (v : S.aval) =
        (match o with Nullptr -> true | _ -> false) || P.definitely_null v.S.ptr
      in
      let other =
        if is_null_op a va then Some vb
        else if is_null_op b vb then Some va
        else None
      in
      let res =
        match other with
        | Some v -> (
          let nonnull =
            match v.S.ptr with
            | P.Pto { may_null = false; targets = _ :: _ } -> true
            | _ -> v.S.nz
          in
          let isnull = P.definitely_null v.S.ptr in
          match c with
          | Ceq -> if nonnull then itv_false else if isnull then itv_true else I.bool_range
          | Cne -> if nonnull then itv_true else if isnull then itv_false else I.bool_range
          | _ -> I.bool_range)
        | None -> I.bool_range
      in
      let mint rel =
        match other with
        | Some { S.orig = Some cell; _ } when rel = Ceq || rel = Cne ->
          [ { S.a_cell = cell; a_rel = rel; a_rhs = S.Rnull } ]
        | _ -> []
      in
      let facts = (!st).S.facts in
      let truthy = if res = itv_false then S.Universe else S.Atoms (mint c @ facts) in
      let falsy =
        if res = itv_true then S.Universe else S.Atoms (mint (negate_cmp c) @ facts)
      in
      setr r { (S.mk_val res) with S.truthy; falsy }
    | Ipadd (r, p, off) ->
      let vp = ev p and vo = ev off in
      let np = P.shift vp.S.ptr vo.S.itv in
      (match np with
      | P.Pto { targets; _ } ->
        List.iter
          (fun (base, o_off) ->
            match S.get_obj !st base with
            | None -> ()
            | Some o ->
              if I.informed o_off then begin
                (* one-past-the-end is legal; beyond it is not *)
                if o_off.I.lo > o.S.o_size.I.hi then
                  emit ~kind:Finding.Mem_error ~sev:Finding.Error ~pc
                    "pointer arithmetic past the end of the object"
                else if o_off.I.hi < 0L then
                  emit ~kind:Finding.Mem_error ~sev:Finding.Error ~pc
                    "pointer arithmetic before the start of the object"
              end)
          targets
      | _ -> ());
      setr r { (S.vptr np) with S.init = D.join vp.S.init vo.S.init }
    | Ipdiff (r, a, b) ->
      let va = ev a and vb = ev b in
      if P.disjoint va.S.ptr vb.S.ptr then
        emit ~kind:Finding.Ptr_sub ~sev:Finding.Error ~pc
          "subtraction of pointers to distinct objects";
      let itv =
        match (va.S.ptr, vb.S.ptr) with
        | P.Pto { targets = [ (b1, o1) ]; _ }, P.Pto { targets = [ (b2, o2) ]; _ }
          when b1 = b2 ->
          I.sub o1 o2
        | _ -> I.top
      in
      setr r (S.mk_val ~init:(D.join va.S.init vb.S.init) itv)
    | Icast (k, r, a) -> (
      let va = ev a in
      match k with
      | Sext3264 -> setr r { va with S.orig = None }
      | Trunc6432 ->
        if I.informed va.S.itv && not (I.in_int32 va.S.itv) then
          emit ~kind:Finding.Int_error ~sev:Finding.Error ~pc
            "long-to-int truncation changes the value";
        let itv = if I.in_int32 va.S.itv then va.S.itv else I.full_of_width W32 in
        setr r (S.mk_val ~init:va.S.init itv)
      | I2F _ | F2I _ -> setr r { S.vfloat with S.init = va.S.init }
      | P2I _ ->
        emit ~kind:Finding.Ub_generic ~sev:Finding.Warning ~pc
          "pointer-to-integer cast depends on the memory layout";
        (* keep the provenance: cross-object arithmetic on the integers
           is still a Ptr_sub *)
        setr r { (S.mk_val ~init:va.S.init I.top) with S.ptr = va.S.ptr }
      | I2P ->
        (* a null pointer constant is lowered as [i2p 0]; a pointer
           that round-tripped through an integer keeps its provenance *)
        let ptr =
          if I.singleton va.S.itv = Some 0L then P.null
          else match va.S.ptr with P.Pint -> P.Ptop | p -> p
        in
        setr r { (S.mk_val ~init:va.S.init I.top) with S.ptr })
    | Ilea (r, sym) ->
      let base =
        match sym with Sglobal g -> P.Bglobal g | Sslot i -> P.Bslot i
      in
      setr r (S.vptr (P.to_base base))
    | Iload (r, p) -> setr r (do_load ~pc (ev p))
    | Istore (p, v) -> do_store ~pc (ev p) (ev v)
    | Icall (r, _, args) ->
      (* intraprocedural: the callee may initialize and overwrite any
         object reachable from its arguments, and any global *)
      List.iter
        (fun a ->
          match (ev a).S.ptr with
          | P.Pto { targets; _ } -> bless_bases (List.map fst targets)
          | _ -> ())
        args;
      bless_bases
        (List.filter_map
           (fun (b, _) -> match b with P.Bglobal _ -> Some b | _ -> None)
           (!st).S.mem);
      clear_facts ();
      Option.iter (fun r -> setr r S.vunknown) r
    | Ibuiltin (r, name, args) -> (
      let vargs = List.map ev args in
      match (name, vargs) with
      | ("getchar" | "peek"), _ ->
        Option.iter (fun r -> setr r (S.vint (I.make (-1L) 255L))) r
      | "input_len", _ -> Option.iter (fun r -> setr r (S.vint (I.make 0L 4096L))) r
      | "malloc", [ vn ] ->
        Option.iter
          (fun r ->
            if vn.S.itv.I.hi <= 0L then setr r S.vnull
            else begin
              let base = P.Bheap pc in
              let may_null = vn.S.itv.I.lo <= 0L in
              let size =
                match I.meet vn.S.itv (I.make 1L I.big) with
                | Some s -> s
                | None -> vn.S.itv
              in
              let existing = S.get_obj !st base in
              let cells =
                match (I.singleton size, existing) with
                | Some k, None when k <= 128L ->
                  Some (Array.make (Int64.to_int k) S.vjunk)
                | _ -> None
              in
              let fresh =
                {
                  S.o_size = size;
                  o_cells = cells;
                  o_rest = S.vjunk;
                  o_heap = Some S.Alive;
                  o_multi = existing <> None;
                }
              in
              let o =
                match existing with
                | None -> fresh
                | Some old ->
                  { (S.join_obj ~w:false old fresh) with S.o_multi = true }
              in
              st := S.set_obj !st base o;
              setr r
                (S.vptr (P.Pto { may_null; targets = [ (base, I.const 0L) ] }))
            end)
          r
      | "free", [ pv ] ->
        (match pv.S.ptr with
        | P.Pint | P.Ptop -> ()
        | p when P.definitely_null p -> ()   (* free(NULL) is fine *)
        | p ->
          List.iter
            (fun (base, off) ->
              match base with
              | P.Bslot _ | P.Bglobal _ ->
                emit ~kind:Finding.Mem_error ~sev:Finding.Error ~pc
                  "free of a pointer that does not come from malloc"
              | P.Bheap _ -> (
                match S.get_obj !st base with
                | None -> ()
                | Some o ->
                  if I.informed off && not (I.contains_zero off) then
                    emit ~kind:Finding.Mem_error ~sev:Finding.Error ~pc
                      "free of an interior pointer";
                  (match o.S.o_heap with
                  | Some S.Freed ->
                    emit ~kind:Finding.Mem_error ~sev:Finding.Error ~pc "double free"
                  | Some S.MaybeFreed ->
                    emit ~kind:Finding.Mem_error ~sev:Finding.Warning ~pc
                      "possible double free"
                  | _ -> ());
                  let heap =
                    if o.S.o_multi then S.join_heap o.S.o_heap (Some S.Freed)
                    else Some S.Freed
                  in
                  st := S.set_obj !st base { o with S.o_heap = heap }))
            (P.targets p))
      | "memset", [ pv; vc; vl ] ->
        if vl.S.itv.I.hi > 0L then begin
          let span = I.make 0L (max 0L (Int64.sub vl.S.itv.I.hi 1L)) in
          let ts = check_access ~pc ~what:"memset write" pv span in
          let fill = S.mk_val ~nz:(vc.S.nz) vc.S.itv in
          List.iter
            (fun (base, _, span_off) ->
              match S.get_obj !st base with
              | None -> ()
              | Some o -> (
                match
                  ( I.singleton
                      (match P.targets pv.S.ptr with
                      | [ (_, off) ] -> off
                      | _ -> I.top),
                    I.singleton vl.S.itv,
                    o.S.o_cells )
                with
                | Some k0, Some len, Some cells
                  when (not o.S.o_multi) && List.length ts = 1 ->
                  let cells = Array.copy cells in
                  let n = Array.length cells in
                  let k0 = Int64.to_int k0 and len = Int64.to_int len in
                  for i = max 0 k0 to min (n - 1) (k0 + len - 1) do
                    cells.(i) <- fill
                  done;
                  st := S.set_obj !st base { o with S.o_cells = Some cells }
                | _ ->
                  st :=
                    S.set_obj !st base
                      (S.write_obj o span_off
                         (S.join_aval fill (S.read_obj o span_off)))))
            ts;
          clear_facts ()
        end
      | "memcpy", [ pd; ps; vl ] ->
        if vl.S.itv.I.hi > 0L then begin
          let span = I.make 0L (max 0L (Int64.sub vl.S.itv.I.hi 1L)) in
          (* overlapping src/dst is UB for memcpy, and the two memcpy
             directions of the implementations genuinely diverge on it *)
          (match (pd.S.ptr, ps.S.ptr) with
          | P.Pto { targets = [ (bd, od) ]; _ }, P.Pto { targets = [ (bs, os_) ]; _ }
            when bd = bs && I.informed od && I.informed os_ && I.informed vl.S.itv
            -> (
            let de = I.add od span and se = I.add os_ span in
            match (I.singleton od, I.singleton os_, I.singleton vl.S.itv) with
            | Some d0, Some s0, Some l ->
              if d0 < Int64.add s0 l && s0 < Int64.add d0 l then
                emit ~kind:Finding.Bad_call ~sev:Finding.Error ~pc
                  "memcpy source and destination overlap"
            | _ ->
              if I.meet de se <> None then
                emit ~kind:Finding.Bad_call ~sev:Finding.Warning ~pc
                  "memcpy source and destination may overlap")
          | _ -> ());
          let src_ts = check_access ~pc ~what:"memcpy read" ps span in
          let src_val =
            List.fold_left
              (fun acc (_, o, off) ->
                let cv = S.read_obj o off in
                flag_init ~pc ~what:"memcpy read" cv;
                match acc with
                | None -> Some cv
                | Some a -> Some (S.join_aval a cv))
              None src_ts
            |> Option.value ~default:S.vunknown
          in
          let dst_ts = check_access ~pc ~what:"memcpy write" pd span in
          List.iter
            (fun (base, _, off) ->
              match S.get_obj !st base with
              | None -> ()
              | Some o -> st := S.set_obj !st base (S.write_obj o off src_val))
            dst_ts;
          clear_facts ()
        end
      | "strlen", [ pv ] ->
        let len = scan_string ~pc pv in
        Option.iter
          (fun r -> setr r (S.vint (match I.meet len (I.make 0L I.big) with
                                    | Some l -> l
                                    | None -> I.make 0L I.big)))
          r
      | ("exit" | "abort"), _ -> raise Halt
      | _ -> Option.iter (fun r -> setr r S.vfloat) r)
    | Iprint items ->
      List.iter
        (function
          | Fstr op -> ignore (scan_string ~pc (ev op))
          | _ -> ())
        items
  in

  (* --- branch edges with refinement --- *)
  let refine_with_facts st atoms =
    match S.refine_atoms st atoms with
    | None -> None
    | Some st' -> Some { st' with S.facts = List.sort_uniq compare st'.S.facts }
  in
  let branch_edges pc cnd =
    let vc = ev cnd in
    let can_true =
      vc.S.truthy <> S.Universe
      && (not (P.definitely_null vc.S.ptr))
      && not (vc.S.ptr = P.Pint && vc.S.itv = itv_false)
    in
    let can_false =
      vc.S.falsy <> S.Universe && (not vc.S.nz)
      &&
      match vc.S.ptr with
      | P.Pto { may_null; _ } -> may_null
      | P.Pint -> I.contains_zero vc.S.itv
      | P.Ptop -> true
    in
    ignore pc;
    let self_atom rel =
      match vc.S.orig with
      | None -> []
      | Some cell ->
        if vc.S.ptr = P.Pint then
          [ { S.a_cell = cell; a_rel = rel; a_rhs = S.Rconst (I.const 0L) } ]
        else [ { S.a_cell = cell; a_rel = rel; a_rhs = S.Rnull } ]
    in
    let mk_edge can preds extra self_refine =
      if not can then None
      else begin
        let atoms = (match preds with S.Universe -> [] | S.Atoms l -> l) @ extra in
        match refine_with_facts !st atoms with
        | None -> None
        | Some st' -> (
          match cnd with
          | Reg r ->
            let regs = Array.copy st'.S.regs in
            regs.(r) <- self_refine regs.(r);
            Some { st' with S.regs = regs }
          | _ -> Some st')
      end
    in
    let on_true =
      mk_edge can_true vc.S.truthy (self_atom Cne) (fun v ->
          let itv =
            if v.S.itv = I.bool_range then itv_true
            else
              match refine_itv_ne v.S.itv with Some i -> i | None -> v.S.itv
          in
          { v with S.itv; nz = true; ptr = P.drop_null v.S.ptr })
    in
    let on_false =
      mk_edge can_false vc.S.falsy (self_atom Ceq) (fun v ->
          let itv =
            match I.meet v.S.itv (I.const 0L) with
            | Some i -> i
            | None -> v.S.itv
          in
          let ptr =
            match P.only_null v.S.ptr with Some p -> p | None -> v.S.ptr
          in
          { v with S.itv; ptr })
    in
    (on_true, on_false)
  in

  (* --- walk the block --- *)
  try
    let last = block.Cfg.last in
    for i = block.Cfg.first to last - 1 do
      exec i f.code.(i)
    done;
    match f.code.(last) with
    | Ijmp _ -> (
      match block.Cfg.succs with [ s ] -> [ (s, !st) ] | _ -> [])
    | Ibr (cnd, _, _) -> (
      let on_true, on_false = branch_edges last cnd in
      match block.Cfg.succs with
      | [ t; e ] ->
        (match on_true with Some s -> [ (t, s) ] | None -> [])
        @ (match on_false with Some s -> [ (e, s) ] | None -> [])
      | [ s ] ->
        (* both labels equal: no refinement possible *)
        [ (s, !st) ]
      | _ -> [])
    | Iret op ->
      (match op with
      | Some (Reg r) when (getr r).S.init = D.Uninit ->
        emit ~kind:Finding.Uninit ~sev:Finding.Error ~pc:last
          "function may return without a value (junk register)"
      | Some (Reg r) when (getr r).S.init = D.Maybe ->
        emit ~kind:Finding.Uninit ~sev:Finding.Warning ~pc:last
          "function may return a possibly-uninitialized value"
      | _ -> ());
      []
    | Itrap _ -> []
    | ins ->
      exec last ins;
      (match block.Cfg.succs with [ s ] -> [ (s, !st) ] | _ -> [])
  with Halt -> []

(* --- interprocedural constant seeding ---

   Parameters normally enter as unknown values. When every call site of
   a function passes a compile-time constant at some parameter position,
   that parameter is seeded with the join of those constants — the
   one-level constant propagation that catches a helper always invoked
   with an overflowing offset, or a null literal handed to a
   dereferencing callee. Call arguments are resolved only through
   registers defined exactly once in the caller, so control flow cannot
   smuggle in a different value. *)

type seed = Sint of I.t | Snull

let join_seed a b =
  match (a, b) with
  | Sint x, Sint y -> Some (Sint (I.join x y))
  | Snull, Snull -> Some Snull
  | _ -> None

let param_seeds (u : unit_) : (string, seed option array) Hashtbl.t =
  let seeds : (string, seed option array) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun ((_, f) : string * ifunc) ->
      (* constants held by single-definition registers of this caller *)
      let ndefs = Hashtbl.create 16 in
      Array.iter
        (fun ins ->
          match Cdcompiler.Ir.def ins with
          | Some r ->
            Hashtbl.replace ndefs r
              (1 + Option.value ~default:0 (Hashtbl.find_opt ndefs r))
          | None -> ())
        f.code;
      let consts = Hashtbl.create 16 in
      let resolve = function
        | ImmI k -> Some (Sint (I.const k))
        | Nullptr -> Some Snull
        | ImmF _ -> None
        | Reg r ->
          if Hashtbl.find_opt ndefs r = Some 1 then Hashtbl.find_opt consts r
          else None
      in
      Array.iter
        (fun ins ->
          (match ins with
          | Iconst (r, op) | Imov (r, op) -> (
            match resolve op with
            | Some s -> Hashtbl.replace consts r s
            | None -> ())
          | Icast (I2P, r, op) -> (
            match resolve op with
            | Some (Sint itv) when I.singleton itv = Some 0L ->
              Hashtbl.replace consts r Snull
            | _ -> ())
          | _ -> ());
          match ins with
          | Icall (_, callee, args) ->
            let here = Array.of_list (List.map resolve args) in
            (match Hashtbl.find_opt seeds callee with
            | None -> Hashtbl.replace seeds callee here
            | Some acc ->
              let n = min (Array.length acc) (Array.length here) in
              let joined =
                Array.init n (fun i ->
                    match (acc.(i), here.(i)) with
                    | Some a, Some b -> join_seed a b
                    | _ -> None)
              in
              Hashtbl.replace seeds callee joined)
          | _ -> ())
        f.code)
    u.funcs;
  seeds

(* --- per-function driver --- *)

let entry_state (u : unit_) (f : ifunc) : S.t =
  let regs = Array.make (max f.nregs 1) S.vjunk in
  let seeds =
    match Hashtbl.find_opt (param_seeds u) f.name with
    | Some arr -> arr
    | None -> [||]
  in
  for i = 0 to min (f.nparams - 1) (Array.length regs - 1) do
    regs.(i) <-
      (match if i < Array.length seeds then seeds.(i) else None with
      | Some (Sint itv) -> S.vint itv
      | Some Snull -> S.vnull
      | None -> S.vunknown)
  done;
  let slot_objs =
    Array.to_list
      (Array.mapi
         (fun i (s : frame_slot) ->
           let cells =
             if s.slot_size <= 128 && s.slot_size > 0 then
               Some (Array.make s.slot_size S.vjunk)
             else None
           in
           ( P.Bslot i,
             {
               S.o_size = I.of_int s.slot_size;
               o_cells = cells;
               o_rest = S.vjunk;
               o_heap = None;
               o_multi = false;
             } ))
         f.slots)
  in
  let global_objs =
    List.map
      (fun (g : iglobal) ->
        let cells =
          if g.g_size <= 128 && g.g_size > 0 then
            Some
              (Array.init g.g_size (fun i ->
                   match List.nth_opt g.g_init i with
                   | Some v -> S.vconst v
                   | None -> S.vconst 0L))
          else None
        in
        ( P.Bglobal g.g_name,
          {
            S.o_size = I.of_int g.g_size;
            o_cells = cells;
            o_rest = S.vunknown;
            o_heap = None;
            o_multi = false;
          } ))
      u.globals
  in
  {
    S.regs;
    mem = List.sort (fun (a, _) (b, _) -> compare a b) (slot_objs @ global_objs);
    facts = [];
  }

type raw_finding = {
  rf_kind : Finding.kind;
  rf_sev : Finding.severity;
  rf_func : string;
  rf_pc : int;
  rf_msg : string;
}

let analyze_func (u : unit_) (fname : string) (f : ifunc) : raw_finding list =
  if Array.length f.code = 0 then []
  else begin
    let cfg = Cfg.build f in
    let silent ~kind:_ ~sev:_ ~pc:_ _ = () in
    match Sol.solve cfg ~entry:(entry_state u f) ~transfer:(step ~emit:silent cfg) with
    | exception Dataflow.Solver.Diverged -> []   (* refuse to report half-baked facts *)
    | { Sol.input; _ } ->
      let acc = ref [] in
      let record ~kind ~sev ~pc msg =
        acc :=
          { rf_kind = kind; rf_sev = sev; rf_func = fname; rf_pc = pc; rf_msg = msg }
          :: !acc
      in
      Array.iteri
        (fun bid in_st ->
          match in_st with
          | None -> ()
          | Some st -> ignore (step ~emit:record cfg cfg.Cfg.blocks.(bid) st))
        input;
      List.rev !acc
  end

let check_unit (u : unit_) : Finding.t list =
  List.concat_map
    (fun (fname, f) ->
      analyze_func u fname f
      |> List.map (fun rf ->
             let line =
               match Cdcompiler.Ir.line_of_pc f rf.rf_pc with
               | Some l when l > 0 -> l
               | _ -> rf.rf_pc   (* line table gone: pc still keys dedup *)
             in
             Finding.make ~tool:tool_name ~kind:rf.rf_kind ~severity:rf.rf_sev
               ~func:rf.rf_func ~line rf.rf_msg))
    u.funcs

(* Entry point matching the other analyzers: AST in, findings out. The
   program is type-checked and lowered with the analysis profile first;
   programs that do not type-check produce no findings. *)
let check (p : Minic.Ast.program) : Finding.t list =
  match Minic.Typecheck.check_program_result p with
  | Error _ -> []
  | Ok tp -> check_unit (Cdcompiler.Pipeline.compile analysis_profile tp)
