(* Findings reported by the static analyzers. *)

type kind =
  | Mem_error      (* buffer overflow/underflow, UAF, double free, bad free *)
  | Int_error      (* signed overflow / underflow / truncation *)
  | Div_zero
  | Null_deref
  | Uninit
  | Bad_call       (* wrong arguments, UB input to API *)
  | Ptr_sub        (* pointer subtraction across objects *)
  | Ub_generic     (* other undefined behaviour *)

(* [Error] is a detection-grade report (counted in Table 3); [Warning] is
   a downgraded report the analyzer is not confident enough in — typically
   because interval or points-to information was imprecise. *)
type severity = Error | Warning

type t = {
  tool : string;
  kind : kind;
  line : int;
  severity : severity;
  func : string option;  (* enclosing function, when the analyzer knows it *)
  message : string;
}

let kind_to_string = function
  | Mem_error -> "memory-error"
  | Int_error -> "integer-error"
  | Div_zero -> "division-by-zero"
  | Null_deref -> "null-dereference"
  | Uninit -> "uninitialized-use"
  | Bad_call -> "bad-call"
  | Ptr_sub -> "pointer-subtraction"
  | Ub_generic -> "undefined-behavior"

let severity_to_string = function Error -> "error" | Warning -> "warning"

(* The three AST pattern matchers predate severities and only report what
   they are sure of, hence the [Error] default. *)
let make ?(severity = Error) ?func ~tool ~kind ~line message =
  { tool; kind; line; severity; func; message }

let pp ppf f =
  Format.fprintf ppf "[%s] %s at line %d%s: %s (%s)" f.tool
    (severity_to_string f.severity) f.line
    (match f.func with None -> "" | Some fn -> " in '" ^ fn ^ "'")
    f.message (kind_to_string f.kind)
