(* Pointer-provenance domain: which object a pointer may point into, at
   which cell offsets, and whether it may be null.

   Provenance is what makes "unstable" pointer operations statically
   visible: subtracting or ordering pointers with distinct bases has an
   implementation-defined answer (the paper's CWE-469 family), and the
   differential oracle observes exactly those operations diverging. *)

type base =
  | Bglobal of string
  | Bslot of int        (* frame slot of the analyzed function *)
  | Bheap of int        (* allocation site: pc of the malloc *)

type t =
  | Pint                                       (* not a pointer *)
  | Ptop                                       (* unknown pointer *)
  | Pto of {
      may_null : bool;
      targets : (base * Interval.t) list;      (* sorted by base *)
    }

let null = Pto { may_null = true; targets = [] }
let to_base b = Pto { may_null = false; targets = [ (b, Interval.const 0L) ] }

let definitely_null = function
  | Pto { may_null = true; targets = [] } -> true
  | _ -> false

let may_be_null = function
  | Pto { may_null; _ } -> may_null
  | Pint | Ptop -> false

let targets = function Pto { targets; _ } -> targets | Pint | Ptop -> []

let merge_targets ta tb =
  let rec go ta tb =
    match (ta, tb) with
    | [], r | r, [] -> r
    | (ba, oa) :: ra, (bb, ob) :: rb ->
      let c = compare ba bb in
      if c = 0 then (ba, Interval.join oa ob) :: go ra rb
      else if c < 0 then (ba, oa) :: go ra ((bb, ob) :: rb)
      else (bb, ob) :: go ((ba, oa) :: ra) rb
  in
  go ta tb

let join a b =
  match (a, b) with
  | Pint, Pint -> Pint
  | Pto a', Pto b' ->
    Pto
      {
        may_null = a'.may_null || b'.may_null;
        targets = merge_targets a'.targets b'.targets;
      }
  | (Pto _ as p), Pint | Pint, (Pto _ as p) ->
    (* an integer (e.g. 0 materialized on one branch) joined with a
       pointer: keep the pointer view, conservatively nullable *)
    (match p with
    | Pto p' -> Pto { p' with may_null = true }
    | _ -> assert false)
  | Ptop, _ | _, Ptop -> Ptop

(* shift every target offset by [d] cells *)
let shift p d =
  match p with
  | Pint | Ptop -> p
  | Pto p' ->
    Pto { p' with targets = List.map (fun (b, o) -> (b, Interval.add o d)) p'.targets }

(* drop the null possibility (after a successful null check) *)
let drop_null = function
  | Pto p -> Pto { p with may_null = false }
  | p -> p

(* keep only the null possibility (after a failed null check); [None]
   when the pointer cannot be null, i.e. the edge is dead *)
let only_null = function
  | Pto { may_null = true; _ } -> Some null
  | Pto { may_null = false; _ } -> None
  | p -> Some p

(* two pointers definitely address distinct objects *)
let disjoint a b =
  match (a, b) with
  | Pto { targets = ta; may_null = false }, Pto { targets = tb; may_null = false }
    when ta <> [] && tb <> [] ->
    List.for_all (fun (ba, _) -> List.for_all (fun (bb, _) -> ba <> bb) tb) ta
  | _ -> false

let base_to_string = function
  | Bglobal g -> "@" ^ g
  | Bslot i -> Printf.sprintf "slot[%d]" i
  | Bheap pc -> Printf.sprintf "heap@%d" pc

let to_string = function
  | Pint -> "int"
  | Ptop -> "ptr?"
  | Pto { may_null; targets } ->
    Printf.sprintf "ptr{%s%s}"
      (String.concat ","
         (List.map
            (fun (b, o) -> base_to_string b ^ "+" ^ Interval.to_string o)
            targets))
      (if may_null then ",null?" else "")
