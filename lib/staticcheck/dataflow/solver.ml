(* Generic monotone-framework worklist solver.

   Functorized over an abstract domain; the transfer function is
   edge-sensitive: for a block and its in-state it returns one out-state
   per live successor edge, which lets clients refine on branch outcomes
   and kill statically-dead edges (an omitted successor receives
   nothing). Unreachable blocks keep no state ([None]).

   Widening kicks in at any block whose in-state has changed
   [widen_delay] times, which covers loop heads without computing a loop
   forest; [max_visits] bounds the per-block iteration count as a safety
   net against a non-stabilizing domain. *)

module type DOMAIN = sig
  type t

  val join : t -> t -> t
  val widen : t -> t -> t   (* widen old new, result must cover new *)
  val equal : t -> t -> bool
end

exception Diverged

module Make (D : DOMAIN) = struct
  type result = {
    input : D.t option array;   (* in-state per block; None = unreachable *)
    iterations : int;           (* total block visits until the fixpoint *)
  }

  let solve ?(widen_delay = 3) ?(max_visits = 80) ?(narrow_passes = 3)
      (cfg : Cfg.t) ~(entry : D.t)
      ~(transfer : Cfg.block -> D.t -> (int * D.t) list) : result =
    let n = Cfg.nblocks cfg in
    let input = Array.make n None in
    let changes = Array.make n 0 in
    let visits = ref 0 in
    if n = 0 then { input; iterations = 0 }
    else begin
      input.(cfg.entry) <- Some entry;
      (* worklist ordered by reverse postorder for fast convergence *)
      let rpo_index = Array.make n 0 in
      Array.iteri (fun i id -> rpo_index.(id) <- i) cfg.rpo;
      let module Q = Set.Make (struct
        type t = int * int
        let compare = compare
      end) in
      let queue = ref (Q.singleton (rpo_index.(cfg.entry), cfg.entry)) in
      while not (Q.is_empty !queue) do
        let ((_, id) as item) = Q.min_elt !queue in
        queue := Q.remove item !queue;
        incr visits;
        match input.(id) with
        | None -> ()
        | Some in_state ->
          List.iter
            (fun (succ, out) ->
              let updated =
                match input.(succ) with
                | None -> Some out
                | Some old ->
                  let joined = D.join old out in
                  let next =
                    if changes.(succ) >= widen_delay then D.widen old joined
                    else joined
                  in
                  if D.equal old next then None else Some next
              in
              match updated with
              | None -> ()
              | Some next ->
                changes.(succ) <- changes.(succ) + 1;
                if changes.(succ) > max_visits then raise Diverged;
                input.(succ) <- Some next;
                queue := Q.add (rpo_index.(succ), succ) !queue)
            (transfer cfg.blocks.(id) in_state)
      done;
      (* Decreasing (narrowing) passes: widening overshoots loop-carried
         values, and the join-with-old in the main loop can never undo
         that, even though branch refinement keeps producing the tight
         edge states. The solution to the fixpoint equations applied once
         more *from* a post-fixpoint descends by monotonicity, so a few
         Jacobi rounds of [in'(b) = join of predecessor out-edges] recover
         the refined bounds. *)
      for _ = 1 to narrow_passes do
        let acc = Array.make n None in
        acc.(cfg.entry) <- Some entry;
        Array.iteri
          (fun id st ->
            match st with
            | None -> ()
            | Some s ->
              List.iter
                (fun (succ, out) ->
                  acc.(succ) <-
                    (match acc.(succ) with
                    | None -> Some out
                    | Some a -> Some (D.join a out)))
                (transfer cfg.blocks.(id) s))
          input;
        Array.blit acc 0 input 0 n
      done;
      { input; iterations = !visits }
    end
end
