(* Interval domain over int64, saturating at +-2^61.

   The saturation bound is a sentinel: a bound equal to [big] (resp.
   [-big]) means "unknown in this direction" — either the value came from
   widening or an operation overflowed the analyzer's own arithmetic.
   {!informed} distinguishes bounds that genuinely derive from program
   constants and inputs from saturated junk; the checker only trusts
   informed intervals when deciding to report. *)

type t = { lo : int64; hi : int64 }   (* invariant: lo <= hi *)

let big = 0x2000_0000_0000_0000L      (* 2^61 *)
let neg_big = Int64.neg big

let clamp v = if v < neg_big then neg_big else if v > big then big else v

let make lo hi =
  if lo > hi then invalid_arg "Interval.make";
  { lo = clamp lo; hi = clamp hi }

let const v = make v v
let of_int v = const (Int64.of_int v)
let top = { lo = neg_big; hi = big }
let bool_range = { lo = 0L; hi = 1L }

let is_singleton i = i.lo = i.hi
let singleton i = if is_singleton i then Some i.lo else None
let contains i v = i.lo <= v && v <= i.hi
let contains_zero i = contains i 0L

(* neither bound is the saturation sentinel *)
let informed i = i.lo > neg_big && i.hi < big

let int32_min = -2147483648L
let int32_max = 2147483647L
let in_int32 i = i.lo >= int32_min && i.hi <= int32_max

(* the value range of a C int / long; used to model wrap-around results *)
let full_of_width = function
  | Cdcompiler.Ir.W32 -> { lo = int32_min; hi = int32_max }
  | Cdcompiler.Ir.W64 -> top

let join a b = { lo = min a.lo b.lo; hi = max a.hi b.hi }
let leq a b = b.lo <= a.lo && a.hi <= b.hi

let meet a b =
  let lo = max a.lo b.lo and hi = min a.hi b.hi in
  if lo > hi then None else Some { lo; hi }

(* widen [old_] [new_]: keep stable bounds, blow unstable ones to the
   sentinel. Guarantees termination of ascending chains. *)
let widen old_ new_ =
  {
    lo = (if new_.lo < old_.lo then neg_big else old_.lo);
    hi = (if new_.hi > old_.hi then big else old_.hi);
  }

(* --- saturating scalar ops (operands are within +-2^61, so int64
   arithmetic below never overflows except through mul, which is
   checked) --- *)

let sat_add a b = clamp (Int64.add a b)
let sat_sub a b = clamp (Int64.sub a b)

let sat_mul a b =
  if a = 0L || b = 0L then 0L
  else
    let p = Int64.mul a b in
    if Int64.div p a <> b then (if (a < 0L) = (b < 0L) then big else neg_big)
    else clamp p

let add a b = { lo = sat_add a.lo b.lo; hi = sat_add a.hi b.hi }
let sub a b = { lo = sat_sub a.lo b.hi; hi = sat_sub a.hi b.lo }
let neg a = { lo = clamp (Int64.neg a.hi); hi = clamp (Int64.neg a.lo) }

let mul a b =
  let p1 = sat_mul a.lo b.lo and p2 = sat_mul a.lo b.hi in
  let p3 = sat_mul a.hi b.lo and p4 = sat_mul a.hi b.hi in
  { lo = min (min p1 p2) (min p3 p4); hi = max (max p1 p2) (max p3 p4) }

(* C division truncates toward zero; [div] assumes the divisor side that
   contains zero has been handled by the caller. *)
let div_nonzero a b =
  let q x y = Int64.div x y in
  let cands =
    [ q a.lo b.lo; q a.lo b.hi; q a.hi b.lo; q a.hi b.hi ]
    @ (if contains b 1L then [ a.lo; a.hi ] else [])
    @ if contains b (-1L) then [ Int64.neg a.lo; Int64.neg a.hi ] else []
  in
  let lo = List.fold_left min (List.hd cands) cands in
  let hi = List.fold_left max (List.hd cands) cands in
  { lo = clamp lo; hi = clamp hi }

let div a b =
  let parts =
    List.filter_map
      (fun side -> Option.map (div_nonzero a) side)
      [ meet b { lo = neg_big; hi = -1L }; meet b { lo = 1L; hi = big } ]
  in
  match parts with
  | [] -> top                       (* divisor can only be zero: UB anyway *)
  | p :: ps -> List.fold_left join p ps

let rem a b =
  let m = max (Int64.abs b.lo) (Int64.abs b.hi) in
  if m = 0L then top
  else
    let bound = Int64.sub m 1L in
    if a.lo >= 0L then { lo = 0L; hi = clamp (min a.hi bound) }
    else { lo = clamp (Int64.neg bound); hi = clamp bound }

let shl a b =
  match singleton b with
  | Some k when k >= 0L && k < 62L ->
    mul a (const (Int64.shift_left 1L (Int64.to_int k)))
  | _ ->
    if a.lo >= 0L && b.lo >= 0L && b.hi < 62L then
      {
        lo = a.lo;
        hi = sat_mul a.hi (Int64.shift_left 1L (Int64.to_int b.hi));
      }
    else top

let shr a b =
  if b.lo >= 0L && b.hi <= 63L then begin
    let s x k = Int64.shift_right x (Int64.to_int k) in
    let cands = [ s a.lo b.lo; s a.lo b.hi; s a.hi b.lo; s a.hi b.hi ] in
    {
      lo = clamp (List.fold_left min (List.hd cands) cands);
      hi = clamp (List.fold_left max (List.hd cands) cands);
    }
  end
  else top

let rec pow2_above v acc =
  if acc > v || acc >= big then Int64.mul acc 2L else pow2_above v (Int64.mul acc 2L)

let band a b =
  match (singleton a, singleton b) with
  | _, Some c when c >= 0L -> { lo = 0L; hi = c }
  | Some c, _ when c >= 0L -> { lo = 0L; hi = c }
  | _ ->
    if a.lo >= 0L && b.lo >= 0L then { lo = 0L; hi = min a.hi b.hi } else top

let bor a b =
  if a.lo >= 0L && b.lo >= 0L then
    { lo = max a.lo b.lo; hi = clamp (Int64.sub (pow2_above (max a.hi b.hi) 1L) 1L) }
  else top

let bxor a b =
  if a.lo >= 0L && b.lo >= 0L then
    { lo = 0L; hi = clamp (Int64.sub (pow2_above (max a.hi b.hi) 1L) 1L) }
  else top

let lognot a = sub (const (-1L)) a   (* ~x = -x - 1 *)

let to_string i =
  if i = top then "[T]"
  else
    Printf.sprintf "[%s,%s]"
      (if i.lo = neg_big then "-inf" else Int64.to_string i.lo)
      (if i.hi = big then "+inf" else Int64.to_string i.hi)
