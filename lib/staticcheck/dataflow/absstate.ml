(* Composite abstract state for the IR-level analyses: the product of the
   interval, initialization and provenance domains over registers and
   memory cells, plus the path facts used for branch refinement.

   Path facts deserve a note. The lowering materializes short-circuit
   conditions as 0/1 joins ([lower_logic] in lib/compiler/lower.ml), so
   by the time [Ibr] tests the combined value, the individual comparisons
   are out of scope. We keep refinement information in two places:

   - every value carries [truthy]/[falsy] predicate sets: atomic facts
     that hold whenever the value is nonzero (resp. zero). Comparison
     results mint atoms about the cells their operands were loaded from;
     0/1 constants mint the [Universe] marker on the impossible side and
     snapshot the current path facts on the other; copies absorb path
     facts. Intersection at joins keeps exactly the facts valid on every
     arriving path.
   - the state's [facts] list accumulates atoms applied on branch edges,
     so a constant materialized under a guard remembers the guard.

   Facts are invalidated wholesale at any memory write or call, which is
   crude but safe: the lowering never interleaves a store between a
   comparison and the branch consuming it. *)

type cell = Provenance.base * int

type rhs = Rconst of Interval.t | Rnull

type atom = {
  a_cell : cell;
  a_rel : Cdcompiler.Ir.cmp;   (* current value of a_cell REL rhs *)
  a_rhs : rhs;
}

type preds = Universe | Atoms of atom list

type aval = {
  itv : Interval.t;
  init : Initdom.t;
  ptr : Provenance.t;
  nz : bool;             (* known nonzero: a hole the interval can't express *)
  orig : cell option;    (* freshly loaded from this cell *)
  truthy : preds;
  falsy : preds;
}

type heap_state = Alive | Freed | MaybeFreed

type obj = {
  o_size : Interval.t;             (* in cells *)
  o_cells : aval array option;     (* per-cell values when size is small+known *)
  o_rest : aval;                   (* summary for untracked cells *)
  o_heap : heap_state option;      (* None for slots and globals *)
  o_multi : bool;                  (* allocation site may execute repeatedly *)
}

type t = {
  regs : aval array;
  mem : (Provenance.base * obj) list;   (* sorted by base *)
  facts : atom list;                    (* sorted, for canonical equality *)
}

(* --- value constructors --- *)

let no_preds = Atoms []

let bottom_preds = Universe

let mk_val ?(init = Initdom.Init) ?(ptr = Provenance.Pint) ?(nz = false)
    ?(orig = None) ?(truthy = no_preds) ?(falsy = no_preds) itv =
  { itv; init; ptr; nz; orig; truthy; falsy }

let vint itv = mk_val itv
let vconst v = mk_val ~nz:(v <> 0L) (Interval.const v)

(* completely unknown but initialized: could be an int or a pointer *)
let vunknown = mk_val ~ptr:Provenance.Ptop Interval.top

(* junk: uninitialized memory or register; its concrete bits differ per
   implementation, which is the instability being modeled *)
let vjunk = mk_val ~init:Initdom.Uninit ~ptr:Provenance.Ptop Interval.top

let vnull = mk_val ~ptr:Provenance.null ~truthy:bottom_preds Interval.top
let vfloat = mk_val Interval.top
let vptr p = mk_val ~ptr:p ~nz:true Interval.top

(* --- predicate sets --- *)

let atoms_inter a b =
  match (a, b) with
  | Universe, x | x, Universe -> x
  | Atoms xa, Atoms xb -> Atoms (List.filter (fun x -> List.mem x xb) xa)

let atoms_union a b =
  match (a, b) with
  | Universe, _ | _, Universe -> Universe
  | Atoms xa, Atoms xb ->
    Atoms (xa @ List.filter (fun x -> not (List.mem x xa)) xb)

let facts_inter fa fb = List.filter (fun x -> List.mem x fb) fa

(* --- joins / widening --- *)

let join_aval a b =
  {
    itv = Interval.join a.itv b.itv;
    init = Initdom.join a.init b.init;
    ptr = Provenance.join a.ptr b.ptr;
    nz = a.nz && b.nz;
    orig = (if a.orig = b.orig then a.orig else None);
    truthy = atoms_inter a.truthy b.truthy;
    falsy = atoms_inter a.falsy b.falsy;
  }

let widen_aval old_ new_ =
  let j = join_aval old_ new_ in
  { j with itv = Interval.widen old_.itv (Interval.join old_.itv new_.itv) }

let join_heap a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some x, Some y -> Some (if x = y then x else MaybeFreed)

let summarize (o : obj) : aval =
  match o.o_cells with
  | None -> o.o_rest
  | Some cells -> Array.fold_left join_aval o.o_rest cells

let join_obj ~w a b =
  let jv = if w then widen_aval else join_aval in
  let cells =
    match (a.o_cells, b.o_cells) with
    | Some ca, Some cb when Array.length ca = Array.length cb ->
      Some (Array.map2 jv ca cb)
    | _, _ -> None
  in
  let rest =
    match cells with
    | Some _ -> jv a.o_rest b.o_rest
    | None -> jv (summarize a) (summarize b)
  in
  {
    o_size = (if w then Interval.widen a.o_size (Interval.join a.o_size b.o_size)
              else Interval.join a.o_size b.o_size);
    o_cells = cells;
    o_rest = rest;
    o_heap = join_heap a.o_heap b.o_heap;
    o_multi = a.o_multi || b.o_multi;
  }

let rec join_mem ~w ma mb =
  match (ma, mb) with
  | [], r | r, [] -> r    (* object exists on one path only: keep it *)
  | (ba, oa) :: ra, (bb, ob) :: rb ->
    let c = compare ba bb in
    if c = 0 then (ba, join_obj ~w oa ob) :: join_mem ~w ra rb
    else if c < 0 then (ba, oa) :: join_mem ~w ra ((bb, ob) :: rb)
    else (bb, ob) :: join_mem ~w ((ba, oa) :: ra) rb

let combine ~w a b =
  let jv = if w then widen_aval else join_aval in
  {
    regs = Array.map2 jv a.regs b.regs;
    mem = join_mem ~w a.mem b.mem;
    facts = facts_inter a.facts b.facts;
  }

let join a b = combine ~w:false a b
let widen old_ new_ = combine ~w:true old_ new_
let equal (a : t) (b : t) = a = b

(* --- memory access --- *)

let get_obj st base = List.assoc_opt base st.mem

let set_obj st base o =
  let rec go = function
    | [] -> [ (base, o) ]
    | (b, _) :: r when b = base -> (base, o) :: r
    | (b, x) :: r when compare b base > 0 -> (base, o) :: (b, x) :: r
    | p :: r -> p :: go r
  in
  { st with mem = go st.mem }

(* join of all cell values an access with offsets [off] may read *)
let read_obj (o : obj) (off : Interval.t) : aval =
  match o.o_cells with
  | None -> summarize o
  | Some cells ->
    let n = Array.length cells in
    let lo = max 0 (Int64.to_int (max (-1L) off.Interval.lo)) in
    let hi = min (n - 1) (Int64.to_int (min (Int64.of_int n) off.Interval.hi)) in
    if lo > hi then o.o_rest
    else begin
      let acc = ref cells.(lo) in
      for i = lo + 1 to hi do
        acc := join_aval !acc cells.(i)
      done;
      !acc
    end

(* strong update when the destination is a single tracked cell of a
   single-instance object; weak (join) otherwise *)
let write_obj (o : obj) (off : Interval.t) (v : aval) : obj =
  match o.o_cells with
  | None -> { o with o_rest = join_aval o.o_rest v }
  | Some cells ->
    let n = Array.length cells in
    let cells = Array.copy cells in
    (match Interval.singleton off with
    | Some k when (not o.o_multi) && k >= 0L && k < Int64.of_int n ->
      cells.(Int64.to_int k) <- v
    | _ ->
      let lo = max 0 (Int64.to_int (max (-1L) off.Interval.lo)) in
      let hi = min (n - 1) (Int64.to_int (min (Int64.of_int n) off.Interval.hi)) in
      for i = lo to hi do
        cells.(i) <- join_aval cells.(i) v
      done);
    { o with o_cells = Some cells }

(* forget everything about an object except its size: the callee may have
   written arbitrary data into it. We optimistically assume the callee
   initialized what it touched (the classic tool compromise: treating
   every out-parameter as possibly-skipped would drown real uninit reads
   in false positives). *)
let bless_obj (o : obj) : obj = { o with o_cells = None; o_rest = vunknown }

(* --- refinement --- *)

let refine_itv (rel : Cdcompiler.Ir.cmp) (rhs : Interval.t) (v : Interval.t) :
    Interval.t option =
  let open Cdcompiler.Ir in
  match rel with
  | Clt -> Interval.meet v { Interval.lo = Interval.neg_big; hi = Int64.sub rhs.Interval.hi 1L }
  | Cle -> Interval.meet v { Interval.lo = Interval.neg_big; hi = rhs.Interval.hi }
  | Cgt -> Interval.meet v { Interval.lo = Int64.add rhs.Interval.lo 1L; hi = Interval.big }
  | Cge -> Interval.meet v { Interval.lo = rhs.Interval.lo; hi = Interval.big }
  | Ceq -> Interval.meet v rhs
  | Cne -> (
    match Interval.singleton rhs with
    | Some k ->
      if v.Interval.lo = k && v.Interval.hi = k then None
      else if v.Interval.lo = k then Some { v with Interval.lo = Int64.add k 1L }
      else if v.Interval.hi = k then Some { v with Interval.hi = Int64.sub k 1L }
      else Some v
    | None -> Some v)

(* Apply one atom to the state; [None] means the constraint is
   unsatisfiable, i.e. the refined edge is dead. Refinement is a strong
   (narrowing) update, so it only applies to tracked single-instance
   cells. *)
let refine_atom (st : t) (a : atom) : t option =
  let base, idx = a.a_cell in
  match get_obj st base with
  | None -> Some st
  | Some o when o.o_multi -> Some st
  | Some o -> (
    match o.o_cells with
    | Some cells when idx >= 0 && idx < Array.length cells -> (
      let v = cells.(idx) in
      match a.a_rhs with
      | Rnull -> (
        let open Cdcompiler.Ir in
        match a.a_rel with
        | Ceq -> (
          match Provenance.only_null v.ptr with
          | None -> None
          | Some p ->
            let cells = Array.copy cells in
            cells.(idx) <- { v with ptr = p; nz = false };
            Some (set_obj st base { o with o_cells = Some cells }))
        | Cne ->
          if Provenance.definitely_null v.ptr then None
          else begin
            let cells = Array.copy cells in
            cells.(idx) <- { v with ptr = Provenance.drop_null v.ptr; nz = true };
            Some (set_obj st base { o with o_cells = Some cells })
          end
        | _ -> Some st)
      | Rconst rhs -> (
        match refine_itv a.a_rel rhs v.itv with
        | None -> None
        | Some itv ->
          let nz = v.nz || not (Interval.contains_zero itv)
                   || (a.a_rel = Cdcompiler.Ir.Cne && Interval.singleton rhs = Some 0L)
          in
          let cells = Array.copy cells in
          cells.(idx) <- { v with itv; nz };
          Some (set_obj st base { o with o_cells = Some cells })))
    | _ -> Some st)

let refine_atoms (st : t) (atoms : atom list) : t option =
  List.fold_left
    (fun acc a ->
      match acc with
      | None -> None
      | Some st ->
        (match refine_atom st a with
        | None -> None
        | Some st' -> Some { st' with facts = a :: st'.facts }))
    (Some st) atoms

(* memory was written or a callee ran: every transported fact is stale *)
let clear_facts (st : t) : t =
  let strip = function Universe -> Universe | Atoms _ -> Atoms [] in
  {
    st with
    facts = [];
    regs = Array.map (fun v -> { v with truthy = strip v.truthy; falsy = strip v.falsy }) st.regs;
  }
