(* Three-valued initialization lattice for frame slots, heap cells and
   registers: Uninit < Maybe < Init is not the order — the lattice is
   the flat join of the two definite states:

        Maybe
        /   \
     Uninit  Init

   A read of [Uninit] is a definite bug; a read of [Maybe] is only a
   may-bug (one path initializes), which the checker downgrades. *)

type t = Uninit | Maybe | Init

let join a b = if a = b then a else Maybe
let leq a b = a = b || b = Maybe

let to_string = function
  | Uninit -> "uninit"
  | Maybe -> "maybe-init"
  | Init -> "init"
