(* Control-flow graph over the linear register IR.

   Basic blocks are maximal instruction ranges: a leader is the function
   entry, every [Ilabel], and every instruction following a terminator
   ([Ijmp]/[Ibr]/[Iret]/[Itrap]). Successors come from the final
   instruction of the block; a block whose last instruction is not a
   terminator falls through to the next block. *)

open Cdcompiler.Ir

type block = {
  id : int;
  first : int;            (* index of the first instruction *)
  last : int;             (* index of the last instruction, inclusive *)
  succs : int list;
  preds : int list;
}

type t = {
  func : ifunc;
  blocks : block array;
  entry : int;            (* always 0 when the function is non-empty *)
  rpo : int array;        (* block ids in reverse postorder from entry *)
}

let is_terminator = function
  | Ijmp _ | Ibr _ | Iret _ | Itrap _ -> true
  | _ -> false

let instrs cfg (b : block) =
  Array.sub cfg.func.code b.first (b.last - b.first + 1)

let build (f : ifunc) : t =
  let n = Array.length f.code in
  let leader = Array.make (max n 1) false in
  if n > 0 then leader.(0) <- true;
  Array.iteri
    (fun i ins ->
      (match ins with Ilabel _ -> leader.(i) <- true | _ -> ());
      if is_terminator ins && i + 1 < n then leader.(i + 1) <- true)
    f.code;
  (* block index for every leader, and label -> block map *)
  let starts = ref [] in
  for i = n - 1 downto 0 do
    if leader.(i) then starts := i :: !starts
  done;
  let starts = Array.of_list !starts in
  let nblocks = Array.length starts in
  let block_of_start = Hashtbl.create 16 in
  Array.iteri (fun id s -> Hashtbl.add block_of_start s id) starts;
  let block_of_label = Hashtbl.create 16 in
  Array.iteri
    (fun i ins ->
      match ins with
      | Ilabel l -> Hashtbl.replace block_of_label l (Hashtbl.find block_of_start i)
      | _ -> ())
    f.code;
  let target l =
    match Hashtbl.find_opt block_of_label l with
    | Some b -> b
    | None -> invalid_arg "Cfg.build: jump to unknown label"
  in
  let blocks =
    Array.init nblocks (fun id ->
        let first = starts.(id) in
        let last = if id + 1 < nblocks then starts.(id + 1) - 1 else n - 1 in
        let succs =
          match f.code.(last) with
          | Ijmp l -> [ target l ]
          | Ibr (_, t, e) ->
            let t = target t and e = target e in
            if t = e then [ t ] else [ t; e ]
          | Iret _ | Itrap _ -> []
          | _ -> if id + 1 < nblocks then [ id + 1 ] else []
        in
        { id; first; last; succs; preds = [] })
  in
  let preds = Array.make nblocks [] in
  Array.iter
    (fun b -> List.iter (fun s -> preds.(s) <- b.id :: preds.(s)) b.succs)
    blocks;
  let blocks = Array.map (fun b -> { b with preds = List.rev preds.(b.id) }) blocks in
  (* reverse postorder via DFS from the entry *)
  let seen = Array.make nblocks false in
  let order = ref [] in
  let rec dfs id =
    if not seen.(id) then begin
      seen.(id) <- true;
      List.iter dfs blocks.(id).succs;
      order := id :: !order
    end
  in
  if nblocks > 0 then dfs 0;
  { func = f; blocks; entry = 0; rpo = Array.of_list !order }

let nblocks cfg = Array.length cfg.blocks

let to_string cfg =
  let buf = Buffer.create 256 in
  Array.iter
    (fun b ->
      Buffer.add_string buf
        (Printf.sprintf "B%d [%d..%d] -> {%s} <- {%s}\n" b.id b.first b.last
           (String.concat "," (List.map string_of_int b.succs))
           (String.concat "," (List.map string_of_int b.preds))))
    cfg.blocks;
  Buffer.contents buf
