(* Registry and uniform interface over the static analyzers: the three
   AST pattern matchers modeled after off-the-shelf tools, plus the
   IR-level dataflow analyzer ({!Unstable_check}). *)

type tool = Coverity | Cppcheck | Infer | Unstable

let name = function
  | Coverity -> "Coverity-like"
  | Cppcheck -> "Cppcheck-like"
  | Infer -> "Infer-like"
  | Unstable -> "UnstableCheck"

let all = [ Coverity; Cppcheck; Infer; Unstable ]

(* findings deduplicated by (kind, line): the replay of a block that is
   reachable along several paths must not inflate the report count *)
let dedup (fs : Finding.t list) : Finding.t list =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun (f : Finding.t) ->
      let key = (f.Finding.kind, f.Finding.line) in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    fs

let check (t : tool) (p : Minic.Ast.program) : Finding.t list =
  dedup
    (match t with
    | Coverity -> Coverity_like.check p
    | Cppcheck -> Cppcheck_like.check p
    | Infer -> Infer_like.check p
    | Unstable -> Unstable_check.check p)

(* --- cross-tool dedup ---

   One row per (kind, line) across every tool, so a defect flagged by
   three analyzers reads as one finding with three confirmations rather
   than three findings.  Severity is the best (Error over Warning) any
   tool assigned; the representative finding comes from the first tool
   that saw the site, in [all] order. *)

type cross = {
  cx_finding : Finding.t;  (* representative (first tool, best severity) *)
  cx_tools : tool list;    (* every tool that flagged this (kind, line) *)
}

let check_all (p : Minic.Ast.program) : cross list =
  let rows : ((Finding.kind * int) * cross ref) list ref = ref [] in
  List.iter
    (fun t ->
      List.iter
        (fun (f : Finding.t) ->
          let key = (f.Finding.kind, f.Finding.line) in
          match List.assoc_opt key !rows with
          | Some r ->
            let c = !r in
            let best =
              if
                c.cx_finding.Finding.severity = Finding.Warning
                && f.Finding.severity = Finding.Error
              then f
              else c.cx_finding
            in
            r := { cx_finding = best; cx_tools = c.cx_tools @ [ t ] }
          | None ->
            rows := !rows @ [ (key, ref { cx_finding = f; cx_tools = [ t ] }) ])
        (check t p))
    all;
  List.map (fun (_, r) -> !r) !rows

let cross_to_string (c : cross) : string =
  Printf.sprintf "%s  [agreed by: %s]"
    (Format.asprintf "%a" Finding.pp c.cx_finding)
    (String.concat ", " (List.map name c.cx_tools))

(* does the tool report anything at all on this program? Only
   detection-grade ([Error]) findings count. *)
let flags_program (t : tool) (p : Minic.Ast.program) : bool =
  List.exists (fun f -> f.Finding.severity = Finding.Error) (check t p)

(* does it report an [Error]-severity finding of one of the given kinds? *)
let flags_kinds (t : tool) (p : Minic.Ast.program) (kinds : Finding.kind list) : bool =
  List.exists
    (fun f ->
      f.Finding.severity = Finding.Error && List.mem f.Finding.kind kinds)
    (check t p)
