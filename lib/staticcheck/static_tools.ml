(* Registry and uniform interface over the static analyzers: the three
   AST pattern matchers modeled after off-the-shelf tools, plus the
   IR-level dataflow analyzer ({!Unstable_check}). *)

type tool = Coverity | Cppcheck | Infer | Unstable

let name = function
  | Coverity -> "Coverity-like"
  | Cppcheck -> "Cppcheck-like"
  | Infer -> "Infer-like"
  | Unstable -> "UnstableCheck"

let all = [ Coverity; Cppcheck; Infer; Unstable ]

(* findings deduplicated by (kind, line): the replay of a block that is
   reachable along several paths must not inflate the report count *)
let dedup (fs : Finding.t list) : Finding.t list =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun (f : Finding.t) ->
      let key = (f.Finding.kind, f.Finding.line) in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    fs

let check (t : tool) (p : Minic.Ast.program) : Finding.t list =
  dedup
    (match t with
    | Coverity -> Coverity_like.check p
    | Cppcheck -> Cppcheck_like.check p
    | Infer -> Infer_like.check p
    | Unstable -> Unstable_check.check p)

(* does the tool report anything at all on this program? Only
   detection-grade ([Error]) findings count. *)
let flags_program (t : tool) (p : Minic.Ast.program) : bool =
  List.exists (fun f -> f.Finding.severity = Finding.Error) (check t p)

(* does it report an [Error]-severity finding of one of the given kinds? *)
let flags_kinds (t : tool) (p : Minic.Ast.program) (kinds : Finding.kind list) : bool =
  List.exists
    (fun f ->
      f.Finding.severity = Finding.Error && List.mem f.Finding.kind kinds)
    (check t p)
