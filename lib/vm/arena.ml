(* Persistent execution arenas.

   A fresh run of the reference interpreter allocates an entire address
   space ({!Mem.create}: several stack-sized arrays plus global
   placement), an output buffer, and three register-file arrays per
   call.  An arena owns all of that scratch state for one linked image
   and is *reset* between runs instead of reallocated:

   - the memory returns to its post-create state via {!Mem.reset}
     (see the soundness argument there);
   - the output buffer is cleared but keeps its backing storage;
   - register files live in a per-call-depth scratch pool.  A frame at
     depth [d] always uses [scratch.(d)], so caller and callee never
     alias; acquisition clears only the written-flags (values and taint
     are gated by them), and the junk a never-written register reads is
     derived from [(frame_seq, reg)] alone, which {!Exec.run_linked}
     restarts at 0 every run -- so reused scratch is indistinguishable
     from fresh arrays.

   Arenas are single-domain scratch: share one per pool worker, never
   across concurrent runs. *)

type scratch = {
  mutable s_regs : Value.t array;
  mutable s_taint : bool array;
  mutable s_written : bool array;
  mutable s_slots : int array;     (* slot object ids, slot-index order *)
}

type t = {
  image : Image.t;
  mem : Mem.t;
  out : Buffer.t;
  scratch : scratch array;         (* indexed by call depth *)
}

(* call-depth limit; [Trap.Stack_overflow] past this *)
let max_depth = 256

let create (image : Image.t) : t =
  {
    image;
    mem = Mem.create image.Image.runtime image.Image.globals;
    out = Buffer.create 256;
    scratch =
      Array.init max_depth (fun _ ->
          { s_regs = [||]; s_taint = [||]; s_written = [||]; s_slots = [||] });
  }

let reset (a : t) : unit =
  Mem.reset a.mem;
  Buffer.clear a.out
