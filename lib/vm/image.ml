(* The load/link stage: pre-resolve a compiled {!Ir.unit_} into an
   immutable executable image.

   The tree-walking reference interpreter pays per-dispatch costs that
   have nothing to do with the semantics under test: label lookups go
   through a hashtable on every jump, call targets through an
   association list, builtins through string comparison, and globals
   through a name table.  Linking resolves all of those once:

   - branch targets become instruction indices (an [Ljmp]/[Lbr] target
     is the pc of the [Llabel] itself, so fuel accounting and coverage
     are unchanged);
   - call targets become integer indices into a function table;
   - builtin names become an enum;
   - [Ilea] on a global becomes the object id it will resolve to (the
     global object table is a pure function of the runtime layout and
     the global list, so ids computed at link time are exactly the ids
     any fresh {!Mem.t} for this unit assigns);
   - per-function metadata is precomputed: frame placement
     ({!Mem.layout_frame}) and the coverage block ids ([Llabel] carries
     the hashed id, [l_entry_block] the function-entry id).

   [l_code] is parallel to the source [code] array -- same length, same
   pc for every instruction -- so the linked executor's fuel and
   coverage behaviour is index-for-index identical to the reference.

   Link-time resolution failures (unknown function, global or builtin,
   missing label) are *deferred*, not raised: the reference interpreter
   only faults when the bad instruction actually executes, and the
   linked executor must be byte-identical to it.  A missing label [l]
   is encoded as the negative target [-1 - l]; unknown names keep their
   own constructors and raise the reference's exact message when
   reached. *)

open Cdcompiler

type builtin =
  | Bgetchar
  | Binput_len
  | Bpeek
  | Bmalloc
  | Bfree
  | Bmemset
  | Bmemcpy
  | Bstrlen
  | Bexit
  | Babort
  | Bpow
  | Bsqrt
  | Bexp2
  | Bfloor
  | Bunknown of string  (* raises when executed, like the reference *)

let builtin_of_name = function
  | "getchar" -> Bgetchar
  | "input_len" -> Binput_len
  | "peek" -> Bpeek
  | "malloc" -> Bmalloc
  | "free" -> Bfree
  | "memset" -> Bmemset
  | "memcpy" -> Bmemcpy
  | "strlen" -> Bstrlen
  | "exit" -> Bexit
  | "abort" -> Babort
  | "pow" -> Bpow
  | "sqrt" -> Bsqrt
  | "exp2" -> Bexp2
  | "floor" -> Bfloor
  | n -> Bunknown n

(* Pre-decoded instructions.  [Iconst]/[Imov] collapse into [Lconst]
   (the reference treats them identically); [Icmp]'s width is dropped
   (the reference ignores it).  Branch targets < 0 encode a missing
   label [-1 - l]. *)
type linstr =
  | Lconst of Ir.reg * Ir.operand
  | Lbin of Ir.ibin * Ir.width * Ir.csem * Ir.reg * Ir.operand * Ir.operand
  | Lneg of Ir.width * Ir.csem * Ir.reg * Ir.operand
  | Lnot of Ir.width * Ir.reg * Ir.operand
  | Lfbin of Ir.fbin * Ir.reg * Ir.operand * Ir.operand
  | Lfma of Ir.reg * Ir.operand * Ir.operand * Ir.operand
  | Lfneg of Ir.reg * Ir.operand
  | Lcmp of Ir.cmp * Ir.reg * Ir.operand * Ir.operand
  | Lfcmp of Ir.cmp * Ir.reg * Ir.operand * Ir.operand
  | Lpcmp of Ir.cmp * Ir.reg * Ir.operand * Ir.operand
  | Lpadd of Ir.reg * Ir.operand * Ir.operand
  | Lpdiff of Ir.reg * Ir.operand * Ir.operand
  | Lcast of Ir.cast * Ir.reg * Ir.operand
  | Llea_global of Ir.reg * int            (* resolved object id *)
  | Llea_slot of Ir.reg * int
  | Lload of Ir.reg * Ir.operand
  | Lstore of Ir.operand * Ir.operand
  | Lcall of Ir.reg option * int * Ir.operand array
  | Lcall_unknown of string * Ir.operand array
  | Lbuiltin of Ir.reg option * builtin * Ir.operand array
  | Lprint of Ir.fmt_item list
  | Ljmp of int
  | Lbr of Ir.operand * int * int
  | Lret of Ir.operand option
  | Llabel of int                          (* precomputed coverage block id *)
  | Lfail of string                        (* link error, raised on execution *)
  | Ltrap

type lfunc = {
  l_name : string;
  l_nparams : int;
  l_nregs : int;                           (* as in the source ifunc *)
  l_slots : Ir.frame_slot array;
  l_frame : Mem.frame_layout;              (* precomputed placement *)
  l_code : linstr array;                   (* parallel to the source code *)
  l_entry_block : int;                     (* coverage id of function entry *)
}

type t = {
  unit_ : Ir.unit_;                        (* the source binary *)
  runtime : Policy.runtime;
  globals : Ir.iglobal list;
  funcs : lfunc array;
  entry : int;                             (* index of "main", or -1 *)
  global_ids : (string, int) Hashtbl.t;    (* name -> object id *)
}

(* first binding wins, like [List.assoc_opt] on [unit_.funcs] *)
let index_funcs (funcs : (string * Ir.ifunc) list) : (string, int) Hashtbl.t =
  let h = Hashtbl.create 16 in
  List.iteri
    (fun i (name, _) -> if not (Hashtbl.mem h name) then Hashtbl.add h name i)
    funcs;
  h

let link_func ~(fidx : (string, int) Hashtbl.t)
    ~(gids : (string, int) Hashtbl.t) ~(layout : Policy.layout)
    (fname : string) (f : Ir.ifunc) : lfunc =
  let label_pc = Hashtbl.create 16 in
  (* [Hashtbl.replace]: the last occurrence of a duplicate label wins,
     exactly as the reference interpreter's label map fills *)
  Array.iteri
    (fun i ins ->
      match ins with Ir.Ilabel l -> Hashtbl.replace label_pc l i | _ -> ())
    f.Ir.code;
  let target l =
    match Hashtbl.find_opt label_pc l with Some i -> i | None -> -1 - l
  in
  let link_instr (ins : Ir.instr) : linstr =
    match ins with
    | Ir.Iconst (r, o) | Ir.Imov (r, o) -> Lconst (r, o)
    | Ir.Ibin (op, w, sem, r, a, b) -> Lbin (op, w, sem, r, a, b)
    | Ir.Ineg (w, sem, r, a) -> Lneg (w, sem, r, a)
    | Ir.Inot (w, r, a) -> Lnot (w, r, a)
    | Ir.Ifbin (op, r, a, b) -> Lfbin (op, r, a, b)
    | Ir.Ifma (r, a, b, c) -> Lfma (r, a, b, c)
    | Ir.Ifneg (r, a) -> Lfneg (r, a)
    | Ir.Icmp (c, _w, r, a, b) -> Lcmp (c, r, a, b)
    | Ir.Ifcmp (c, r, a, b) -> Lfcmp (c, r, a, b)
    | Ir.Ipcmp (c, r, a, b) -> Lpcmp (c, r, a, b)
    | Ir.Ipadd (r, p, o) -> Lpadd (r, p, o)
    | Ir.Ipdiff (r, a, b) -> Lpdiff (r, a, b)
    | Ir.Icast (k, r, a) -> Lcast (k, r, a)
    | Ir.Ilea (r, Ir.Sglobal g) -> (
        match Hashtbl.find_opt gids g with
        | Some id -> Llea_global (r, id)
        | None -> Lfail ("Exec: unknown global " ^ g))
    | Ir.Ilea (r, Ir.Sslot i) -> Llea_slot (r, i)
    | Ir.Iload (r, p) -> Lload (r, p)
    | Ir.Istore (p, x) -> Lstore (p, x)
    | Ir.Icall (dest, callee, args) -> (
        let args = Array.of_list args in
        match Hashtbl.find_opt fidx callee with
        | Some i -> Lcall (dest, i, args)
        | None -> Lcall_unknown (callee, args))
    | Ir.Ibuiltin (dest, bname, args) ->
        Lbuiltin (dest, builtin_of_name bname, Array.of_list args)
    | Ir.Iprint items -> Lprint items
    | Ir.Ijmp l -> Ljmp (target l)
    | Ir.Ibr (c, lt, lf) -> Lbr (c, target lt, target lf)
    | Ir.Iret o -> Lret o
    | Ir.Ilabel l -> Llabel (Coverage.block_id ~fname ~label:l)
    | Ir.Itrap _ -> Ltrap
  in
  {
    l_name = fname;
    l_nparams = f.Ir.nparams;
    l_nregs = f.Ir.nregs;
    l_slots = f.Ir.slots;
    l_frame = Mem.layout_frame layout f.Ir.slots;
    l_code = Array.map link_instr f.Ir.code;
    l_entry_block = Coverage.block_id ~fname ~label:(-1);
  }

let link (u : Ir.unit_) : t =
  let runtime = u.Ir.runtime in
  let fidx = index_funcs u.Ir.funcs in
  (* the global object table is deterministic in (layout, globals), so a
     throwaway memory yields the ids every execution memory will use *)
  let gids = Mem.global_ids (Mem.create runtime u.Ir.globals) in
  let layout = runtime.Policy.layout in
  let funcs =
    Array.of_list
      (List.map (fun (name, f) -> link_func ~fidx ~gids ~layout name f) u.Ir.funcs)
  in
  let entry =
    match Hashtbl.find_opt fidx "main" with Some i -> i | None -> -1
  in
  { unit_ = u; runtime; globals = u.Ir.globals; funcs; entry; global_ids = gids }
