(* The load/link stage: pre-resolve a compiled {!Ir.unit_} into an
   immutable executable image.

   The tree-walking reference interpreter pays per-dispatch costs that
   have nothing to do with the semantics under test: label lookups go
   through a hashtable on every jump, call targets through an
   association list, builtins through string comparison, and globals
   through a name table.  Linking resolves all of those once:

   - branch targets become instruction indices (an [Ljmp]/[Lbr] target
     is the pc of the [Llabel] itself, so fuel accounting and coverage
     are unchanged);
   - call targets become integer indices into a function table;
   - builtin names become an enum;
   - [Ilea] on a global becomes the object id it will resolve to (the
     global object table is a pure function of the runtime layout and
     the global list, so ids computed at link time are exactly the ids
     any fresh {!Mem.t} for this unit assigns);
   - per-function metadata is precomputed: frame placement
     ({!Mem.layout_frame}) and the coverage block ids ([Llabel] carries
     the hashed id, [l_entry_block] the function-entry id).

   [l_code] is parallel to the source [code] array -- same length, same
   pc for every instruction -- so the linked executor's fuel and
   coverage behaviour is index-for-index identical to the reference.

   Link-time resolution failures (unknown function, global or builtin,
   missing label) are *deferred*, not raised: the reference interpreter
   only faults when the bad instruction actually executes, and the
   linked executor must be byte-identical to it.  A missing label [l]
   is encoded as the negative target [-1 - l]; unknown names keep their
   own constructors and raise the reference's exact message when
   reached. *)

open Cdcompiler

type builtin =
  | Bgetchar
  | Binput_len
  | Bpeek
  | Bmalloc
  | Bfree
  | Bmemset
  | Bmemcpy
  | Bstrlen
  | Bexit
  | Babort
  | Bpow
  | Bsqrt
  | Bexp2
  | Bfloor
  | Bunknown of string  (* raises when executed, like the reference *)

let builtin_of_name = function
  | "getchar" -> Bgetchar
  | "input_len" -> Binput_len
  | "peek" -> Bpeek
  | "malloc" -> Bmalloc
  | "free" -> Bfree
  | "memset" -> Bmemset
  | "memcpy" -> Bmemcpy
  | "strlen" -> Bstrlen
  | "exit" -> Bexit
  | "abort" -> Babort
  | "pow" -> Bpow
  | "sqrt" -> Bsqrt
  | "exp2" -> Bexp2
  | "floor" -> Bfloor
  | n -> Bunknown n

(* Pre-decoded instructions.  [Iconst]/[Imov] collapse into [Lconst]
   (the reference treats them identically); [Icmp]'s width is dropped
   (the reference ignores it).  Branch targets < 0 encode a missing
   label [-1 - l]. *)
type linstr =
  | Lconst of Ir.reg * Ir.operand
  | Lbin of Ir.ibin * Ir.width * Ir.csem * Ir.reg * Ir.operand * Ir.operand
  | Lneg of Ir.width * Ir.csem * Ir.reg * Ir.operand
  | Lnot of Ir.width * Ir.reg * Ir.operand
  | Lfbin of Ir.fbin * Ir.reg * Ir.operand * Ir.operand
  | Lfma of Ir.reg * Ir.operand * Ir.operand * Ir.operand
  | Lfneg of Ir.reg * Ir.operand
  | Lcmp of Ir.cmp * Ir.reg * Ir.operand * Ir.operand
  | Lfcmp of Ir.cmp * Ir.reg * Ir.operand * Ir.operand
  | Lpcmp of Ir.cmp * Ir.reg * Ir.operand * Ir.operand
  | Lpadd of Ir.reg * Ir.operand * Ir.operand
  | Lpdiff of Ir.reg * Ir.operand * Ir.operand
  | Lcast of Ir.cast * Ir.reg * Ir.operand
  | Llea_global of Ir.reg * int            (* resolved object id *)
  | Llea_slot of Ir.reg * int
  | Lload of Ir.reg * Ir.operand
  | Lstore of Ir.operand * Ir.operand
  | Lcall of Ir.reg option * int * Ir.operand array
  | Lcall_unknown of string * Ir.operand array
  | Lbuiltin of Ir.reg option * builtin * Ir.operand array
  | Lprint of Ir.fmt_item list
  | Ljmp of int
  | Lbr of Ir.operand * int * int
  | Lret of Ir.operand option
  | Llabel of int                          (* precomputed coverage block id *)
  | Lfail of string                        (* link error, raised on execution *)
  | Ltrap

(* Threaded operands: immediates are boxed once at link time, so the
   executor's operand evaluation never allocates for constants.  [Tval]
   carries taint [false] by construction (immediates are never junk). *)
type topnd =
  | Treg of int
  | Tval of Value.t                        (* pre-boxed immediate *)

(* The threaded opstream: one [tinstr] per source instruction (same
   length, same pc -- the identity pc map), except that a fused
   superinstruction at pc [i] *also* performs the work of pc [i+1].
   Fusion is sound because branch targets are always [Tlabel] pcs: a
   non-label instruction at [i+1] is only ever reached by fallthrough
   from [i], so when [i] is fused the slot at [i+1] is unreachable (it
   still holds the normal translation, defensively).  Each fused op
   burns fuel twice with the reference's exact intermediate check, so
   [Fuel_out] fires at the identical instruction count. *)
type tinstr =
  | Tconst of int * topnd
  | Tbin of Ir.ibin * Ir.width * Ir.csem * int * topnd * topnd
  | Tneg of Ir.width * Ir.csem * int * topnd
  | Tnot of Ir.width * int * topnd
  | Tfbin of Ir.fbin * int * topnd * topnd
  | Tfma of int * topnd * topnd * topnd
  | Tfneg of int * topnd
  | Tcmp of Ir.cmp * int * topnd * topnd
  | Tfcmp of Ir.cmp * int * topnd * topnd
  | Tpcmp of Ir.cmp * int * topnd * topnd
  | Tpadd of int * topnd * topnd
  | Tpdiff of int * topnd * topnd
  | Tcast of Ir.cast * int * topnd
  | Tlea_global of int * int
  | Tlea_slot of int * int
  | Tload of int * topnd
  | Tstore of topnd * topnd
  | Tcall of int * int * topnd array       (* dest reg, or -1 for none *)
  | Tcall_unknown of string * topnd array
  | Tbuiltin of int * builtin * topnd array
  | Tprint of Ir.fmt_item list
  | Tjmp of int
  | Tbr of topnd * int * int
  | Tret of topnd option
  | Tlabel of int
  | Tfail of string
  | Ttrap
  (* fused superinstructions (2 source instructions each) *)
  | Tcmp_br of Ir.cmp * int * topnd * topnd * int * int
      (* cmp into r immediately consumed by a branch on r *)
  | Tconst2 of int * Value.t * int * Value.t
      (* two adjacent immediate constant loads *)
  | Tload_bin of int * topnd * Ir.ibin * Ir.width * Ir.csem * int * topnd
      (* load into r immediately consumed as the binop's left operand *)
  | Tload_slot of int * int
      (* lea slot[i] into a link-proven dead register immediately
         dereferenced by a load: (dest reg, slot index).  The pointer
         write is elided -- sound because the lea's register is read
         nowhere else in the function *)
  | Tstore_slot of int * topnd
      (* lea slot[i] + store through it: (slot index, stored operand) *)
  | Tload_global of int * int
      (* lea global + load: (dest reg, resolved object id) *)
  | Tstore_global of int * topnd
      (* lea global + store: (resolved object id, stored operand) *)

type lfunc = {
  l_name : string;
  l_nparams : int;
  l_nregs : int;                           (* as in the source ifunc *)
  l_slots : Ir.frame_slot array;
  l_frame : Mem.frame_layout;              (* precomputed placement *)
  l_code : linstr array;                   (* parallel to the source code *)
  l_ops : tinstr array;                    (* threaded form, same pcs *)
  l_entry_block : int;                     (* coverage id of function entry *)
}

type t = {
  unit_ : Ir.unit_;                        (* the source binary *)
  runtime : Policy.runtime;
  globals : Ir.iglobal list;
  funcs : lfunc array;
  entry : int;                             (* index of "main", or -1 *)
  global_ids : (string, int) Hashtbl.t;    (* name -> object id *)
}

(* first binding wins, like [List.assoc_opt] on [unit_.funcs] *)
let index_funcs (funcs : (string * Ir.ifunc) list) : (string, int) Hashtbl.t =
  let h = Hashtbl.create 16 in
  List.iteri
    (fun i (name, _) -> if not (Hashtbl.mem h name) then Hashtbl.add h name i)
    funcs;
  h

(* --- threaded translation --- *)

let topnd_of (o : Ir.operand) : topnd =
  match o with
  | Ir.Reg r -> Treg r
  | Ir.ImmI v -> Tval (Value.Vint v)
  | Ir.ImmF f -> Tval (Value.Vfloat f)
  | Ir.Nullptr -> Tval (Value.Vptr Value.null)

(* an immediate whose box can be folded into the instruction itself *)
let imm_value (o : Ir.operand) : Value.t option =
  match o with
  | Ir.Reg _ -> None
  | Ir.ImmI v -> Some (Value.Vint v)
  | Ir.ImmF f -> Some (Value.Vfloat f)
  | Ir.Nullptr -> Some (Value.Vptr Value.null)

let dest_of = function Some r -> r | None -> -1

(* single-instruction translation; fusion happens in a second scan *)
let tinstr_of (ins : linstr) : tinstr =
  match ins with
  | Lconst (r, o) -> Tconst (r, topnd_of o)
  | Lbin (op, w, sem, r, a, b) -> Tbin (op, w, sem, r, topnd_of a, topnd_of b)
  | Lneg (w, sem, r, a) -> Tneg (w, sem, r, topnd_of a)
  | Lnot (w, r, a) -> Tnot (w, r, topnd_of a)
  | Lfbin (op, r, a, b) -> Tfbin (op, r, topnd_of a, topnd_of b)
  | Lfma (r, a, b, c) -> Tfma (r, topnd_of a, topnd_of b, topnd_of c)
  | Lfneg (r, a) -> Tfneg (r, topnd_of a)
  | Lcmp (c, r, a, b) -> Tcmp (c, r, topnd_of a, topnd_of b)
  | Lfcmp (c, r, a, b) -> Tfcmp (c, r, topnd_of a, topnd_of b)
  | Lpcmp (c, r, a, b) -> Tpcmp (c, r, topnd_of a, topnd_of b)
  | Lpadd (r, p, o) -> Tpadd (r, topnd_of p, topnd_of o)
  | Lpdiff (r, a, b) -> Tpdiff (r, topnd_of a, topnd_of b)
  | Lcast (k, r, a) -> Tcast (k, r, topnd_of a)
  | Llea_global (r, id) -> Tlea_global (r, id)
  | Llea_slot (r, i) -> Tlea_slot (r, i)
  | Lload (r, p) -> Tload (r, topnd_of p)
  | Lstore (p, x) -> Tstore (topnd_of p, topnd_of x)
  | Lcall (dest, fi, args) -> Tcall (dest_of dest, fi, Array.map topnd_of args)
  | Lcall_unknown (fname, args) -> Tcall_unknown (fname, Array.map topnd_of args)
  | Lbuiltin (dest, b, args) -> Tbuiltin (dest_of dest, b, Array.map topnd_of args)
  | Lprint items -> Tprint items
  | Ljmp t -> Tjmp t
  | Lbr (c, lt, lf) -> Tbr (topnd_of c, lt, lf)
  | Lret o -> Tret (Option.map topnd_of o)
  | Llabel blk -> Tlabel blk
  | Lfail msg -> Tfail msg
  | Ltrap -> Ttrap

(* Per-register read counts over a whole function, for dead-register
   fusion: a lea whose register is read exactly once (by the adjacent
   load/store) leaves no other way to observe the pointer write, so the
   fused form may elide it entirely. *)
let reg_reads ~(nregs : int) (code : linstr array) : int array =
  let reads = Array.make (max 1 nregs) 0 in
  let op (o : Ir.operand) =
    match o with
    | Ir.Reg r -> if r >= 0 && r < Array.length reads then reads.(r) <- reads.(r) + 1
    | Ir.ImmI _ | Ir.ImmF _ | Ir.Nullptr -> ()
  in
  let item (it : Ir.fmt_item) =
    match it with
    | Ir.Flit _ -> ()
    | Ir.Fint o | Ir.Flong o | Ir.Fuint o | Ir.Fhex o | Ir.Fchar o
    | Ir.Fstr o | Ir.Ffloat o | Ir.Fptr o -> op o
  in
  Array.iter
    (fun ins ->
      match ins with
      | Lconst (_, a) | Lneg (_, _, _, a) | Lnot (_, _, a) | Lfneg (_, a)
      | Lcast (_, _, a) | Lload (_, a) | Lbr (a, _, _) | Lret (Some a) ->
        op a
      | Lbin (_, _, _, _, a, b) | Lfbin (_, _, a, b) | Lcmp (_, _, a, b)
      | Lfcmp (_, _, a, b) | Lpcmp (_, _, a, b) | Lpadd (_, a, b)
      | Lpdiff (_, a, b) | Lstore (a, b) ->
        op a; op b
      | Lfma (_, a, b, c) -> op a; op b; op c
      | Lcall (_, _, args) | Lcall_unknown (_, args) | Lbuiltin (_, _, args) ->
        Array.iter op args
      | Lprint items -> List.iter item items
      | Llea_global _ | Llea_slot _ | Ljmp _ | Lret None | Llabel _
      | Lfail _ | Ltrap -> ())
    code;
  reads

(* Fuse common adjacent pairs.  Safe because only [Llabel] pcs are jump
   targets (see [target]): a fused second half can never be entered
   directly.  Each fused op replicates the reference's per-instruction
   fuel ticks, so verdicts (incl. mid-pair [Fuel_out]) are unchanged. *)
let translate ~(nregs : int) (code : linstr array) : tinstr array =
  let n = Array.length code in
  let ops = Array.map tinstr_of code in
  let reads = reg_reads ~nregs code in
  let dead r = r >= 0 && r < Array.length reads && reads.(r) = 1 in
  let i = ref 0 in
  while !i < n - 1 do
    (match (code.(!i), code.(!i + 1)) with
    | Lcmp (c, r, a, b), Lbr (Ir.Reg r', lt, lf) when r = r' ->
        ops.(!i) <- Tcmp_br (c, r, topnd_of a, topnd_of b, lt, lf);
        incr i
    | Lconst (r1, o1), Lconst (r2, o2) -> (
        match (imm_value o1, imm_value o2) with
        | Some v1, Some v2 ->
            ops.(!i) <- Tconst2 (r1, v1, r2, v2);
            incr i
        | _ -> ())
    | Lload (r1, p), Lbin (op, w, sem, r2, Ir.Reg a, b) when a = r1 ->
        ops.(!i) <- Tload_bin (r1, topnd_of p, op, w, sem, r2, topnd_of b);
        incr i
    (* slot/global address formation feeding a single adjacent access:
       the pointer register is read exactly once, so its write (value,
       taint, written flag alike) is unobservable and can be elided *)
    | Llea_slot (r, s), Lload (r2, Ir.Reg pr) when pr = r && dead r ->
        ops.(!i) <- Tload_slot (r2, s);
        incr i
    | Llea_slot (r, s), Lstore (Ir.Reg pr, x) when pr = r && dead r ->
        ops.(!i) <- Tstore_slot (s, topnd_of x);
        incr i
    | Llea_global (r, id), Lload (r2, Ir.Reg pr) when pr = r && dead r ->
        ops.(!i) <- Tload_global (r2, id);
        incr i
    | Llea_global (r, id), Lstore (Ir.Reg pr, x) when pr = r && dead r ->
        ops.(!i) <- Tstore_global (id, topnd_of x);
        incr i
    | _ -> ());
    incr i
  done;
  ops

let link_func ~(fidx : (string, int) Hashtbl.t)
    ~(gids : (string, int) Hashtbl.t) ~(layout : Policy.layout)
    ~(intern_builtin : string -> builtin) (fname : string) (f : Ir.ifunc) :
    lfunc =
  let label_pc = Hashtbl.create 16 in
  (* [Hashtbl.replace]: the last occurrence of a duplicate label wins,
     exactly as the reference interpreter's label map fills *)
  Array.iteri
    (fun i ins ->
      match ins with Ir.Ilabel l -> Hashtbl.replace label_pc l i | _ -> ())
    f.Ir.code;
  let target l =
    match Hashtbl.find_opt label_pc l with Some i -> i | None -> -1 - l
  in
  let link_instr (ins : Ir.instr) : linstr =
    match ins with
    | Ir.Iconst (r, o) | Ir.Imov (r, o) -> Lconst (r, o)
    | Ir.Ibin (op, w, sem, r, a, b) -> Lbin (op, w, sem, r, a, b)
    | Ir.Ineg (w, sem, r, a) -> Lneg (w, sem, r, a)
    | Ir.Inot (w, r, a) -> Lnot (w, r, a)
    | Ir.Ifbin (op, r, a, b) -> Lfbin (op, r, a, b)
    | Ir.Ifma (r, a, b, c) -> Lfma (r, a, b, c)
    | Ir.Ifneg (r, a) -> Lfneg (r, a)
    | Ir.Icmp (c, _w, r, a, b) -> Lcmp (c, r, a, b)
    | Ir.Ifcmp (c, r, a, b) -> Lfcmp (c, r, a, b)
    | Ir.Ipcmp (c, r, a, b) -> Lpcmp (c, r, a, b)
    | Ir.Ipadd (r, p, o) -> Lpadd (r, p, o)
    | Ir.Ipdiff (r, a, b) -> Lpdiff (r, a, b)
    | Ir.Icast (k, r, a) -> Lcast (k, r, a)
    | Ir.Ilea (r, Ir.Sglobal g) -> (
        match Hashtbl.find_opt gids g with
        | Some id -> Llea_global (r, id)
        | None -> Lfail ("Exec: unknown global " ^ g))
    | Ir.Ilea (r, Ir.Sslot i) -> Llea_slot (r, i)
    | Ir.Iload (r, p) -> Lload (r, p)
    | Ir.Istore (p, x) -> Lstore (p, x)
    | Ir.Icall (dest, callee, args) -> (
        let args = Array.of_list args in
        match Hashtbl.find_opt fidx callee with
        | Some i -> Lcall (dest, i, args)
        | None -> Lcall_unknown (callee, args))
    | Ir.Ibuiltin (dest, bname, args) ->
        Lbuiltin (dest, intern_builtin bname, Array.of_list args)
    | Ir.Iprint items -> Lprint items
    | Ir.Ijmp l -> Ljmp (target l)
    | Ir.Ibr (c, lt, lf) -> Lbr (c, target lt, target lf)
    | Ir.Iret o -> Lret o
    | Ir.Ilabel l -> Llabel (Coverage.block_id ~fname ~label:l)
    | Ir.Itrap _ -> Ltrap
  in
  let l_code = Array.map link_instr f.Ir.code in
  {
    l_name = fname;
    l_nparams = f.Ir.nparams;
    l_nregs = f.Ir.nregs;
    l_slots = f.Ir.slots;
    l_frame = Mem.layout_frame layout f.Ir.slots;
    l_code;
    l_ops = translate ~nregs:f.Ir.nregs l_code;
    l_entry_block = Coverage.block_id ~fname ~label:(-1);
  }

let link (u : Ir.unit_) : t =
  let runtime = u.Ir.runtime in
  let fidx = index_funcs u.Ir.funcs in
  (* the global object table is deterministic in (layout, globals), so a
     throwaway memory yields the ids every execution memory will use *)
  let gids = Mem.global_ids (Mem.create runtime u.Ir.globals) in
  let layout = runtime.Policy.layout in
  (* builtin names resolve once per unit, not once per call-site; the
     memo also shares one [Bunknown] block per unresolved name *)
  let builtins : (string, builtin) Hashtbl.t = Hashtbl.create 8 in
  let intern_builtin name =
    match Hashtbl.find_opt builtins name with
    | Some b -> b
    | None ->
        let b = builtin_of_name name in
        Hashtbl.add builtins name b;
        b
  in
  let funcs =
    Array.of_list
      (List.map
         (fun (name, f) ->
           link_func ~fidx ~gids ~layout ~intern_builtin name f)
         u.Ir.funcs)
  in
  let entry =
    match Hashtbl.find_opt fidx "main" with Some i -> i | None -> -1
  in
  { unit_ = u; runtime; globals = u.Ir.globals; funcs; entry; global_ids = gids }
