(* AFL-style edge coverage map.

   Basic blocks hash to map indices; an executed edge bumps a byte bucket
   [(prev >> 1) xor cur]. The fuzzer compares maps through the classified
   bucket trick AFL uses (counts quantized to powers of two) to decide
   whether an input reached new behaviour. *)

type t = {
  map : Bytes.t;
  mutable last_loc : int;
}

let size = 1 lsl 13

let create () = { map = Bytes.make size '\000'; last_loc = 0 }

let reset t =
  Bytes.fill t.map 0 size '\000';
  t.last_loc <- 0

let block_id ~fname ~label = Cdutil.Rng.mix (Cdutil.Murmur3.hash fname) label land (size - 1)

let hit t cur =
  let edge = (t.last_loc lsr 1) lxor cur land (size - 1) in
  let c = Char.code (Bytes.get t.map edge) in
  if c < 255 then Bytes.set t.map edge (Char.chr (c + 1));
  t.last_loc <- cur

(* quantize a hit count into AFL's eight buckets *)
let bucket = function
  | 0 -> 0
  | 1 -> 1
  | 2 -> 2
  | 3 -> 4
  | n when n < 8 -> 8
  | n when n < 16 -> 16
  | n when n < 32 -> 32
  | n when n < 128 -> 64
  | _ -> 128

(* fold the classified map into [virgin]; returns the number of map
   positions that contributed a new bucket bit — the input's coverage
   novelty (0 means it reached nothing new) *)
let merge_count ~virgin t =
  let novel = ref 0 in
  for i = 0 to size - 1 do
    let b = bucket (Char.code (Bytes.get t.map i)) in
    if b <> 0 then begin
      let seen = Char.code (Bytes.get virgin i) in
      if b land lnot seen <> 0 then begin
        incr novel;
        Bytes.set virgin i (Char.chr (seen lor b))
      end
    end
  done;
  !novel

let merge_into ~virgin t = merge_count ~virgin t > 0

let count_nonzero t =
  let n = ref 0 in
  Bytes.iter (fun c -> if c <> '\000' then incr n) t.map;
  !n
