(* The simulated address space.

   Three flat regions -- globals, heap, stack -- whose cells are addressed
   absolutely; an object table supplies provenance (bounds, liveness) on
   top. The region bases, inter-object gaps, slot order and allocator
   reuse strategy all come from the producing implementation's
   {!Cdcompiler.Policy.layout}, so the same store performed by two
   binaries can land on different victims -- the MemError/UninitMem
   divergence mechanism.

   Out-of-bounds or dangling accesses are resolved by absolute address:
   inside a mapped region they silently read/write whatever is there;
   outside, they trap. Uninitialized stack cells read deterministic
   "junk" derived from the implementation's stack seed, and are never
   cleared between frames (stack reuse), so uninitialized locals see
   leftovers exactly like real stacks do. *)

open Cdcompiler

exception Trapped of Trap.t

(* Taint/written flag vectors are [Bytes.t] rather than [bool array]: a
   bool array costs a full word per element and is scanned on every
   major-GC mark pass, which made each pooled arena ~192 KiB of live
   marked set (the engine's image cache retains hundreds of arenas).
   Bytes cost one byte per flag and the collector skips their contents.
   The unsafe accessors are justified because every index has already
   passed the same region bounds check as the adjacent value-array
   access. *)
module Flags = struct
  let make n (v : bool) = Bytes.make n (if v then '\001' else '\000')
  let[@inline] get (b : Bytes.t) i = Bytes.unsafe_get b i <> '\000'

  let[@inline] set (b : Bytes.t) i (v : bool) =
    Bytes.unsafe_set b i (if v then '\001' else '\000')

  let fill (b : Bytes.t) pos len (v : bool) =
    Bytes.fill b pos len (if v then '\001' else '\000')
end

type obj_kind = Kglobal | Kstack | Kheap

type obj = {
  id : int;
  kind : obj_kind;
  base : int;              (* absolute address of cell 0 *)
  size : int;              (* cells *)
  mutable alive : bool;
  oname : string;          (* diagnostics: global/slot name or "heap" *)
}

type t = {
  layout : Policy.layout;
  uninit_heap : Policy.uninit_policy;
  stack_seed : int;
  (* object table *)
  mutable objects : obj array;        (* id -> obj; id 0 unused (null) *)
  mutable nobjects : int;
  (* globals region *)
  globals_mem : Value.t array;
  globals_taint : Bytes.t;
  globals_init : Value.t array;       (* post-create snapshot, for [reset] *)
  globals_len : int;                  (* mapped extent in cells *)
  mutable globals_dirty : bool;       (* any global write since reset? *)
  globals_by_base : (int * int) array; (* (base, id), sorted by base *)
  initial_nobjects : int;             (* object-table size right after create *)
  (* stack region: cells persist across frames (stack reuse) *)
  stack_mem : Value.t array;
  stack_taint : Bytes.t;
  stack_written : Bytes.t;            (* lazily materialized junk *)
  mutable stack_wlo : int;            (* dirty range of stack_written/taint, *)
  mutable stack_whi : int;            (* inclusive indices; wlo > whi = clean *)
  mutable sp : int;                   (* next free address (grows down) *)
  mutable frames : frame list;        (* innermost first *)
  (* heap region *)
  mutable heap_mem : Value.t array;
  mutable heap_taint : Bytes.t;
  mutable heap_break : int;           (* next fresh absolute address *)
  mutable free_list : (int * int * int) list; (* (base, size, old_id), LIFO *)
  mutable heap_by_base : (int, int) Hashtbl.t; (* base -> id, live or freed *)
}

and frame = {
  f_base : int;                       (* lowest address of the frame *)
  f_size : int;
  f_slots : (int * int) array;        (* (slot offset within frame, obj id) *)
}

let stack_top m = m.layout.Policy.stack_base + m.layout.Policy.stack_size

let fresh_obj m kind base size oname =
  let id = m.nobjects in
  let o = { id; kind; base; size; alive = true; oname } in
  if id >= Array.length m.objects then begin
    let bigger = Array.make (max 16 (2 * Array.length m.objects)) o in
    Array.blit m.objects 0 bigger 0 (Array.length m.objects);
    m.objects <- bigger
  end;
  m.objects.(id) <- o;
  m.nobjects <- id + 1;
  o

let obj m id =
  if id > 0 && id < m.nobjects then Some m.objects.(id) else None

(* --- construction --- *)

let create (runtime : Policy.runtime) (globals : Ir.iglobal list) : t =
  let layout = runtime.Policy.layout in
  (* lay out globals *)
  let gap = layout.Policy.global_gap in
  let total =
    List.fold_left (fun acc g -> acc + g.Ir.g_size + gap) 0 globals
  in
  let globals_mem = Array.make (max 1 total) Value.zero in
  let globals_taint = Flags.make (max 1 total) false in
  let m =
    {
      layout;
      uninit_heap = runtime.Policy.uninit_heap;
      stack_seed = runtime.Policy.stack_seed;
      objects = Array.make 64 { id = 0; kind = Kglobal; base = 0; size = 0; alive = false; oname = "<null>" };
      nobjects = 1;
      globals_mem;
      globals_taint;
      globals_init = [||];
      globals_len = total;
      globals_dirty = false;
      globals_by_base = [||];
      initial_nobjects = 1;
      stack_mem = Array.make layout.Policy.stack_size Value.zero;
      stack_taint = Flags.make layout.Policy.stack_size true;
      stack_written = Flags.make layout.Policy.stack_size false;
      stack_wlo = max_int;
      stack_whi = -1;
      sp = layout.Policy.stack_base + layout.Policy.stack_size;
      frames = [];
      heap_mem = Array.make 256 Value.zero;
      heap_taint = Flags.make 256 true;
      heap_break = layout.Policy.heap_base;
      free_list = [];
      heap_by_base = Hashtbl.create 16;
    }
  in
  let by_base = ref [] in
  let cursor = ref 0 in
  let placement =
    if layout.Policy.globals_reversed then List.rev globals else globals
  in
  List.iter
    (fun (g : Ir.iglobal) ->
      let base = layout.Policy.globals_base + !cursor in
      let o = fresh_obj m Kglobal base g.Ir.g_size g.Ir.g_name in
      List.iteri
        (fun i v ->
          if i < g.Ir.g_size then globals_mem.(!cursor + i) <- Value.Vint v)
        g.Ir.g_init;
      by_base := (base, o.id) :: !by_base;
      cursor := !cursor + g.Ir.g_size + gap)
    placement;
  {
    m with
    globals_by_base = Array.of_list (List.rev !by_base);
    globals_init = Array.copy globals_mem;
    initial_nobjects = m.nobjects;
  }

(* Return the address space to its post-[create] state, reusing every
   allocation.  Equivalence argument (per region):
   - globals: values restored from the snapshot, taint cleared;
   - stack: values are never cleared between frames even in a fresh
     memory (stack reuse), and a cell with [stack_written = false] reads
     deterministic junk derived only from [(stack_seed, addr)] — so
     clearing the written/taint flags over the dirtied range makes every
     cell read exactly what a fresh stack would;
   - heap: the break returns to [heap_base] and the free list empties,
     so every future [malloc] takes the fresh-block path (which
     re-junks its cells); the used prefix is re-zeroed because
     inter-block gap cells are readable and a fresh memory holds zeros
     there;
   - objects: ids restart at the post-create count, so allocation
     sequence numbers (Pobjseq ordering) replay identically. *)
let reset (m : t) : unit =
  (* only [write_abs] mutates the globals region after [create], so a
     run that never stored to a global leaves it in post-create state
     and the snapshot restore can be skipped entirely *)
  if m.globals_dirty then begin
    Array.blit m.globals_init 0 m.globals_mem 0 (Array.length m.globals_init);
    Flags.fill m.globals_taint 0 (Bytes.length m.globals_taint) false;
    m.globals_dirty <- false
  end;
  if m.stack_wlo <= m.stack_whi then begin
    let len = m.stack_whi - m.stack_wlo + 1 in
    Flags.fill m.stack_written m.stack_wlo len false;
    Flags.fill m.stack_taint m.stack_wlo len true;
    m.stack_wlo <- max_int;
    m.stack_whi <- -1
  end;
  m.sp <- stack_top m;
  m.frames <- [];
  let heap_used = m.heap_break - m.layout.Policy.heap_base in
  if heap_used > 0 then begin
    Array.fill m.heap_mem 0 heap_used Value.zero;
    Flags.fill m.heap_taint 0 heap_used true
  end;
  m.heap_break <- m.layout.Policy.heap_base;
  m.free_list <- [];
  Hashtbl.reset m.heap_by_base;
  for id = 1 to m.initial_nobjects - 1 do
    m.objects.(id).alive <- true
  done;
  m.nobjects <- m.initial_nobjects

(* name -> object id, for Ilea *)
let global_ids (m : t) : (string, int) Hashtbl.t =
  let h = Hashtbl.create 16 in
  Array.iter
    (fun (_, id) ->
      match obj m id with Some o -> Hashtbl.replace h o.oname id | None -> ())
    m.globals_by_base;
  h

(* --- junk values --- *)

let stack_junk m addr =
  Value.Vint (Policy.uninit_value (Policy.Upattern m.stack_seed) ~addr)

let heap_junk m addr = Value.Vint (Policy.uninit_value m.uninit_heap ~addr)

(* --- absolute-address cell access --- *)

(* Region dispatch is inlined into each accessor (rather than shared
   through a [cell_ref] variant) so the hot path never allocates: the
   executor performs several cell accesses per interpreted instruction
   and a 2-word box per access dominated its GC traffic. *)

let[@inline] bad_addr addr = raise (Trapped (Trap.Segfault addr))

(* allocation-free value read; taint lives in [read_abs_taint] *)
let read_abs_v m addr : Value.t =
  let l = m.layout in
  if addr >= l.Policy.globals_base && addr < l.Policy.globals_base + m.globals_len
  then m.globals_mem.(addr - l.Policy.globals_base)
  else if addr >= l.Policy.stack_base && addr < stack_top m then begin
    let i = addr - l.Policy.stack_base in
    if Flags.get m.stack_written i then m.stack_mem.(i) else stack_junk m addr
  end
  else if addr >= l.Policy.heap_base && addr < m.heap_break then
    m.heap_mem.(addr - l.Policy.heap_base)
  else bad_addr addr

let read_abs_taint m addr : bool =
  let l = m.layout in
  if addr >= l.Policy.globals_base && addr < l.Policy.globals_base + m.globals_len
  then Flags.get m.globals_taint (addr - l.Policy.globals_base)
  else if addr >= l.Policy.stack_base && addr < stack_top m then
    Flags.get m.stack_taint (addr - l.Policy.stack_base)
  else if addr >= l.Policy.heap_base && addr < m.heap_break then
    Flags.get m.heap_taint (addr - l.Policy.heap_base)
  else bad_addr addr

let read_abs m addr : Value.t * bool = (read_abs_v m addr, read_abs_taint m addr)

let write_abs m addr (v : Value.t) ~(taint : bool) =
  let l = m.layout in
  if addr >= l.Policy.globals_base && addr < l.Policy.globals_base + m.globals_len
  then begin
    let i = addr - l.Policy.globals_base in
    m.globals_mem.(i) <- v;
    Flags.set m.globals_taint i taint;
    m.globals_dirty <- true
  end
  else if addr >= l.Policy.stack_base && addr < stack_top m then begin
    let i = addr - l.Policy.stack_base in
    m.stack_mem.(i) <- v;
    Flags.set m.stack_written i true;
    Flags.set m.stack_taint i taint;
    if i < m.stack_wlo then m.stack_wlo <- i;
    if i > m.stack_whi then m.stack_whi <- i
  end
  else if addr >= l.Policy.heap_base && addr < m.heap_break then begin
    let i = addr - l.Policy.heap_base in
    m.heap_mem.(i) <- v;
    Flags.set m.heap_taint i taint
  end
  else bad_addr addr

(* --- pointer resolution --- *)

let addr_of_ptr m (p : Value.ptr) : int =
  if Value.is_wild p then p.Value.off
  else
    match obj m p.Value.obj with
    | Some o -> o.base + p.Value.off
    | None -> raise (Trapped (Trap.Segfault p.Value.off))

(* Base address of an object, for the executor's fused slot/global
   accesses: equivalent to [addr_of_ptr] on [{obj = id; off = 0}]
   (object ids start at 1, so such a pointer is never null or wild). *)
let base_of_obj m id : int =
  match obj m id with
  | Some o -> o.base
  | None -> raise (Trapped (Trap.Segfault 0))

(* absolute address -> (object, offset), if any object contains it *)
let object_at m addr : (obj * int) option =
  let l = m.layout in
  if addr >= l.Policy.globals_base && addr < l.Policy.globals_base + m.globals_len
  then begin
    (* binary search over globals_by_base *)
    let arr = m.globals_by_base in
    let n = Array.length arr in
    let rec search lo hi acc =
      if lo > hi then acc
      else begin
        let mid = (lo + hi) / 2 in
        let base, _ = arr.(mid) in
        if base <= addr then search (mid + 1) hi (Some mid) else search lo (mid - 1) acc
      end
    in
    match search 0 (n - 1) None with
    | Some i ->
      let base, id = arr.(i) in
      let o = m.objects.(id) in
      if addr < base + o.size then Some (o, addr - base) else None
    | None -> None
  end
  else if addr >= l.Policy.stack_base && addr < stack_top m then begin
    let rec in_frames = function
      | [] -> None
      | f :: rest ->
        if addr >= f.f_base && addr < f.f_base + f.f_size then begin
          let found = ref None in
          Array.iter
            (fun (off, id) ->
              let o = m.objects.(id) in
              let b = f.f_base + off in
              if addr >= b && addr < b + o.size then found := Some (o, addr - b))
            f.f_slots;
          !found
        end
        else in_frames rest
    in
    in_frames m.frames
  end
  else if addr >= l.Policy.heap_base && addr < m.heap_break then begin
    (* scan heap blocks by base: base <= addr < base+size *)
    let found = ref None in
    Hashtbl.iter
      (fun base id ->
        let o = m.objects.(id) in
        if addr >= base && addr < base + o.size then found := Some (o, addr - base))
      m.heap_by_base;
    !found
  end
  else None

(* forge a pointer from an integer address (int-to-pointer cast) *)
let ptr_of_addr m addr : Value.ptr =
  if addr = 0 then Value.null
  else
    match object_at m addr with
    | Some (o, off) -> { Value.obj = o.id; off }
    | None -> Value.wild addr

(* --- stack frames --- *)

let grow_gap n = n (* identity; kept for clarity *)

(* Frame placement depends only on the layout policy and the slot sizes,
   so it can be computed once per function at link time: total frame size
   (gaps and alignment applied) plus per-slot offsets in slot-index
   order.  Slot *object ids* are allocation sequence numbers and must
   still be drawn at push time, in layout order. *)
type frame_layout = {
  fl_size : int;
  fl_offsets : int array;              (* slot-index order *)
}

let layout_frame (l : Policy.layout) (slots : Ir.frame_slot array) :
    frame_layout =
  let n = Array.length slots in
  let gap = grow_gap l.Policy.slot_gap in
  let raw =
    Array.fold_left (fun acc (s : Ir.frame_slot) -> acc + s.Ir.slot_size + gap) 0 slots
  in
  let align = max 1 l.Policy.frame_align in
  let size = max align ((raw + align - 1) / align * align) in
  let offsets = Array.make n 0 in
  let cursor = ref 0 in
  let place k =
    offsets.(k) <- !cursor;
    cursor := !cursor + slots.(k).Ir.slot_size + gap
  in
  if l.Policy.slots_reversed then
    for k = n - 1 downto 0 do place k done
  else
    for k = 0 to n - 1 do place k done;
  { fl_size = size; fl_offsets = offsets }

(* Push a frame with a precomputed placement, filling [ids] (length >= n,
   slot-index order) with the fresh slot object ids. *)
let push_frame_laid m (slots : Ir.frame_slot array) (fl : frame_layout)
    (ids : int array) : unit =
  let l = m.layout in
  let n = Array.length slots in
  let base = m.sp - fl.fl_size in
  if base < l.Policy.stack_base then raise (Trapped Trap.Stack_overflow);
  m.sp <- base;
  let alloc k =
    let s = slots.(k) in
    let o = fresh_obj m Kstack (base + fl.fl_offsets.(k)) s.Ir.slot_size s.Ir.slot_name in
    ids.(k) <- o.id
  in
  (* ids are sequence numbers: allocate in layout order, like placement *)
  if l.Policy.slots_reversed then
    for k = n - 1 downto 0 do alloc k done
  else
    for k = 0 to n - 1 do alloc k done;
  (* mark the frame's cells as uninitialized for taint purposes, but do NOT
     clear values: stack reuse *)
  let lo = base - l.Policy.stack_base in
  Flags.fill m.stack_taint lo fl.fl_size true;
  let f_slots = Array.init n (fun i -> (fl.fl_offsets.(i), ids.(i))) in
  m.frames <- { f_base = base; f_size = fl.fl_size; f_slots } :: m.frames

(* Compute a frame layout for [slots] (size list in slot-index order) and
   push it. Returns the slot object ids in slot-index order. *)
let push_frame m (slots : Ir.frame_slot array) : int array =
  let fl = layout_frame m.layout slots in
  let ids = Array.make (Array.length slots) 0 in
  push_frame_laid m slots fl ids;
  ids

let pop_frame m =
  match m.frames with
  | [] -> invalid_arg "Mem.pop_frame: no frame"
  | f :: rest ->
    Array.iter (fun (_, id) -> m.objects.(id).alive <- false) f.f_slots;
    m.sp <- f.f_base + f.f_size;
    m.frames <- rest

(* --- heap --- *)

let ensure_heap_capacity m needed =
  let cap = Array.length m.heap_mem in
  if needed > cap then begin
    let ncap = max needed (2 * cap) in
    let nm = Array.make ncap Value.zero in
    let nt = Flags.make ncap true in
    Array.blit m.heap_mem 0 nm 0 cap;
    Bytes.blit m.heap_taint 0 nt 0 cap;
    m.heap_mem <- nm;
    m.heap_taint <- nt
  end

let heap_limit_cells = 1 lsl 20

let malloc m (n : int) : Value.ptr =
  if n <= 0 || n > heap_limit_cells then Value.null
  else begin
    let l = m.layout in
    let reuse =
      if l.Policy.heap_reuse then begin
        let rec take acc = function
          | [] -> None
          | (base, size, old_id) :: rest when size >= n ->
            m.free_list <- List.rev_append acc rest;
            Some (base, size, old_id)
          | entry :: rest -> take (entry :: acc) rest
        in
        take [] m.free_list
      end
      else None
    in
    match reuse with
    | Some (base, _size, old_id) ->
      (* the old block's identity dies; its cells keep their contents but
         become uninitialized-for-taint *)
      Hashtbl.remove m.heap_by_base base;
      (match obj m old_id with Some o -> o.alive <- false | None -> ());
      let o = fresh_obj m Kheap base n "heap" in
      Hashtbl.replace m.heap_by_base base o.id;
      let lo = base - l.Policy.heap_base in
      Flags.fill m.heap_taint lo n true;
      { Value.obj = o.id; off = 0 }
    | None ->
      let base = m.heap_break in
      let o = fresh_obj m Kheap base n "heap" in
      m.heap_break <- base + n + l.Policy.heap_gap;
      ensure_heap_capacity m (m.heap_break - l.Policy.heap_base);
      Hashtbl.replace m.heap_by_base base o.id;
      (* fresh block: junk contents per policy *)
      let lo = base - l.Policy.heap_base in
      Flags.fill m.heap_taint lo n true;
      for i = 0 to n - 1 do
        m.heap_mem.(lo + i) <- heap_junk m (base + i)
      done;
      { Value.obj = o.id; off = 0 }
  end

(* Returns what kind of free this was, so sanitizer hooks can classify it:
   [`Ok], [`Double] or [`Invalid]. Without a sanitizer, a double free
   corrupts the free list exactly like a real allocator; an invalid free
   aborts like glibc. *)
let free m (p : Value.ptr) : [ `Ok | `Double | `Invalid | `Null ] =
  if Value.is_null p then `Null
  else if Value.is_wild p then `Invalid
  else
    match obj m p.Value.obj with
    | None -> `Invalid
    | Some o ->
      if o.kind <> Kheap || p.Value.off <> 0 then `Invalid
      else if not o.alive then begin
        (* double free: push the block again (allocator corruption) *)
        m.free_list <- (o.base, o.size, o.id) :: m.free_list;
        `Double
      end
      else begin
        o.alive <- false;
        m.free_list <- (o.base, o.size, o.id) :: m.free_list;
        `Ok
      end
