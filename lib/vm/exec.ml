(* The IR interpreter ("running a binary").

   Execution is total over arbitrary (even UB-riddled) programs: type
   confusions introduced by uninitialized junk or memory punning are
   resolved by deterministic coercions, so two binaries never differ by
   accident of the VM -- only through their compiled code and their
   run-time policies.

   Fuel plays the role of AFL++'s execution timeout: when it runs out the
   status is [Hang], which the oracle treats with timeout escalation
   rather than as an output.

   Two executors share every semantic helper in this file:

   - [run] is the tree-walking *reference*: it interprets [Ir.instr]
     directly, allocating a fresh address space and register files per
     run, resolving labels and call targets through per-run tables.
   - [run_linked] executes a pre-resolved {!Image.t}, reusing an
     {!Arena.t} across runs.  It exists for throughput; the reference
     exists to check it (mirroring [Oracle.check_naive]): both must
     produce byte-identical [(stdout, status, fuel_used)]. *)

open Cdcompiler
open Ir

exception Exit_program of int
exception Fuel_out
exception Output_limit_exc

type config = {
  fuel : int;
  max_output : int;
  coverage : Coverage.t option;
  hooks : Hooks.t;
  input : string;
  on_print : (fn:string -> string -> unit) option;
      (* observation hook: called once per executed print statement with
         the enclosing function and the rendered text; used by the
         fault-localization prototype (paper Section 5) *)
}

let default_config =
  {
    fuel = 200_000;
    max_output = 1 lsl 20;
    coverage = None;
    hooks = Hooks.none;
    input = "";
    on_print = None;
  }

type result = {
  stdout : string;
  status : Trap.status;
  fuel_used : int;
}

(* mutable per-run state shared by both executors *)
type state = {
  mem : Mem.t;
  runtime : Policy.runtime;
  global_ids : (string, int) Hashtbl.t;
  cfg : config;
  out : Buffer.t;
  mutable fuel_left : int;
  mutable in_pos : int;
  mutable depth : int;
  mutable frame_seq : int;
  uninit_reg : Policy.uninit_policy;
}

let max_depth = Arena.max_depth

(* --- coercions: make every value usable at every type --- *)

let as_int st (v : Value.t) : int64 =
  match v with
  | Value.Vint x -> x
  | Value.Vfloat f -> Int64.bits_of_float f
  | Value.Vptr p ->
    if Value.is_null p then 0L else Int64.of_int (Mem.addr_of_ptr st.mem p)

and as_float (v : Value.t) : float =
  match v with
  | Value.Vfloat f -> f
  | Value.Vint x -> Int64.float_of_bits x
  | Value.Vptr _ -> 0.

and as_ptr st (v : Value.t) : Value.ptr =
  match v with
  | Value.Vptr p -> p
  | Value.Vint x -> Mem.ptr_of_addr st.mem (Int64.to_int x)
  | Value.Vfloat f -> Mem.ptr_of_addr st.mem (int_of_float f)

(* --- registers --- *)

(* junk depends only on (frame sequence number, register index): frame
   1 of run N sees the same junk as frame 1 of run 1 *)
let reg_junk st fseq r =
  match st.uninit_reg with
  | Policy.Uzero -> Value.Vint 0L
  | Policy.Upattern _ as p ->
    Value.Vint (Policy.uninit_value p ~addr:((fseq * 131) + r))

(* reference per-call frame *)
type frame = {
  func : ifunc;
  regs : Value.t array;
  rtaint : bool array;
  rwritten : bool array;
  slot_ids : int array;
  fseq : int;
}

let read_reg st fr r : Value.t * bool =
  if fr.rwritten.(r) then (fr.regs.(r), fr.rtaint.(r))
  else (reg_junk st fr.fseq r, true)

let write_reg fr r (v : Value.t) (taint : bool) =
  fr.regs.(r) <- v;
  fr.rtaint.(r) <- taint;
  fr.rwritten.(r) <- true

let eval_operand st fr (o : operand) : Value.t * bool =
  match o with
  | Reg r -> read_reg st fr r
  | ImmI v -> (Value.Vint v, false)
  | ImmF f -> (Value.Vfloat f, false)
  | Nullptr -> (Value.Vptr Value.null, false)

(* --- integer semantics --- *)

let bits = function W32 -> 32 | W64 -> 64

let norm w v = match w with W32 -> Value.norm32 v | W64 -> v

(* Hardware-style evaluation: shifts mask their count (x86), division by
   zero and INT_MIN/-1 trap. The compiler's constant folder made different
   choices for UB shifts -- that asymmetry is intentional. *)
let eval_ibin op w (a : int64) (b : int64) : int64 =
  match op with
  | Badd -> norm w (Int64.add a b)
  | Bsub -> norm w (Int64.sub a b)
  | Bmul -> norm w (Int64.mul a b)
  | Bdiv ->
    if b = 0L then raise (Mem.Trapped Trap.Div_by_zero)
    else if b = -1L && a = (match w with W32 -> -2147483648L | W64 -> Int64.min_int)
    then raise (Mem.Trapped Trap.Div_by_zero) (* x86 #DE covers both *)
    else norm w (Int64.div a b)
  | Bmod ->
    if b = 0L then raise (Mem.Trapped Trap.Div_by_zero)
    else if b = -1L && a = (match w with W32 -> -2147483648L | W64 -> Int64.min_int)
    then raise (Mem.Trapped Trap.Div_by_zero)
    else norm w (Int64.rem a b)
  | Bshl ->
    let c = Int64.to_int b land (bits w - 1) in
    norm w (Int64.shift_left a c)
  | Bshr ->
    let c = Int64.to_int b land (bits w - 1) in
    norm w (Int64.shift_right a c)
  | Band -> Int64.logand a b
  | Bor -> Int64.logor a b
  | Bxor -> Int64.logxor a b

let eval_cmp c (a : int64) (b : int64) : int64 =
  let r =
    match c with
    | Clt -> a < b
    | Cle -> a <= b
    | Cgt -> a > b
    | Cge -> a >= b
    | Ceq -> a = b
    | Cne -> a <> b
  in
  if r then 1L else 0L

let eval_fcmp c (a : float) (b : float) : int64 =
  let r =
    match c with
    | Clt -> a < b
    | Cle -> a <= b
    | Cgt -> a > b
    | Cge -> a >= b
    | Ceq -> a = b
    | Cne -> a <> b
  in
  if r then 1L else 0L

(* --- memory access with hooks --- *)

(* hooks run before the hardware consequence so a sanitizer can turn a
   would-be trap (or a silent corruption) into a report *)
let load st (p : Value.ptr) ~(ptaint : bool) : Value.t * bool =
  st.cfg.hooks.Hooks.on_deref_taint ~taint:ptaint;
  st.cfg.hooks.Hooks.on_access st.mem p Hooks.Aread;
  if Value.is_null p then raise (Mem.Trapped Trap.Null_deref);
  Mem.read_abs st.mem (Mem.addr_of_ptr st.mem p)

let store st (p : Value.ptr) ~(ptaint : bool) (v : Value.t) (taint : bool) =
  st.cfg.hooks.Hooks.on_deref_taint ~taint:ptaint;
  st.cfg.hooks.Hooks.on_access st.mem p Hooks.Awrite;
  if Value.is_null p then raise (Mem.Trapped Trap.Null_deref);
  Mem.write_abs st.mem (Mem.addr_of_ptr st.mem p) v ~taint

(* --- output --- *)

let put st s =
  Buffer.add_string st.out s;
  if Buffer.length st.out > st.cfg.max_output then raise Output_limit_exc

let read_cstring st (p : Value.ptr) : string =
  let buf = Buffer.create 16 in
  let rec go i =
    if i >= 4096 then ()
    else begin
      let v, _ = load st { p with Value.off = p.Value.off + i } ~ptaint:false in
      let c = Int64.to_int (as_int st v) land 0xff in
      if c = 0 then ()
      else begin
        Buffer.add_char buf (Char.chr c);
        go (i + 1)
      end
    end
  in
  go 0;
  Buffer.contents buf

(* [value] abstracts over which register file the executor reads *)
let print_item st (value : operand -> Value.t) (item : fmt_item) =
  match item with
  | Flit s -> put st s
  | Fint o ->
    put st (Int32.to_string (Int64.to_int32 (as_int st (value o))))
  | Flong o -> put st (Int64.to_string (as_int st (value o)))
  | Fuint o ->
    put st (Printf.sprintf "%Lu" (Int64.logand (as_int st (value o)) 0xFFFFFFFFL))
  | Fhex o ->
    put st (Printf.sprintf "%Lx" (Int64.logand (as_int st (value o)) 0xFFFFFFFFL))
  | Fchar o ->
    put st (String.make 1 (Char.chr (Int64.to_int (as_int st (value o)) land 0xff)))
  | Fstr o -> put st (read_cstring st (as_ptr st (value o)))
  | Ffloat o -> put st (Printf.sprintf "%f" (as_float (value o)))
  | Fptr o ->
    let p = as_ptr st (value o) in
    let addr = if Value.is_null p then 0 else Mem.addr_of_ptr st.mem p in
    put st (Printf.sprintf "0x%x" addr)

(* --- pointer comparison / casts --- *)

let eval_pcmp st c (a : Value.ptr) (b : Value.ptr) : int64 =
  let abs p = if Value.is_null p then 0 else Mem.addr_of_ptr st.mem p in
  match c with
  | Ceq -> if abs a = abs b then 1L else 0L
  | Cne -> if abs a <> abs b then 1L else 0L
  | Clt | Cle | Cgt | Cge ->
    let xa, xb =
      match st.runtime.Policy.ptrcmp with
      | Policy.Pabs -> (abs a, abs b)
      | Policy.Pobjseq ->
        (* compare by allocation sequence, then offset; encode as a pair *)
        ((a.Value.obj * 1_000_000) + a.Value.off, (b.Value.obj * 1_000_000) + b.Value.off)
    in
    eval_cmp c (Int64.of_int xa) (Int64.of_int xb)

let eval_cast st k (v : Value.t) : Value.t =
  match k with
  | Sext3264 -> Value.Vint (as_int st v) (* W32 already sign-extended *)
  | Trunc6432 -> Value.Vint (Value.norm32 (as_int st v))
  | I2F _ -> Value.Vfloat (Int64.to_float (as_int st v))
  | F2I w ->
    let f = as_float v in
    let x =
      if Float.is_nan f || f >= 9.22e18 || f <= -9.22e18 then Int64.min_int
      else Int64.of_float f
    in
    Value.Vint (norm w x)
  | P2I w -> Value.Vint (norm w (as_int st v))
  | I2P -> Value.Vptr (as_ptr st v)

(* --- builtins --- *)

(* builtins only look at argument *values* and always return untainted
   results, so one core serves both executors *)
let exec_builtin_v st (b : Image.builtin) (argv : Value.t array) : Value.t =
  let int_arg i = as_int st argv.(i) in
  let ptr_arg i = as_ptr st argv.(i) in
  let float_arg i = as_float argv.(i) in
  match b with
  | Image.Bgetchar ->
    if st.in_pos < String.length st.cfg.input then begin
      let c = Char.code st.cfg.input.[st.in_pos] in
      st.in_pos <- st.in_pos + 1;
      Value.Vint (Int64.of_int c)
    end
    else Value.Vint (-1L)
  | Image.Binput_len -> Value.Vint (Int64.of_int (String.length st.cfg.input))
  | Image.Bpeek ->
    let i = Int64.to_int (int_arg 0) in
    if i >= 0 && i < String.length st.cfg.input then
      Value.Vint (Int64.of_int (Char.code st.cfg.input.[i]))
    else Value.Vint (-1L)
  | Image.Bmalloc ->
    let n = Int64.to_int (int_arg 0) in
    Value.Vptr (Mem.malloc st.mem n)
  | Image.Bfree ->
    let p = ptr_arg 0 in
    let cls = Mem.free st.mem p in
    st.cfg.hooks.Hooks.on_free st.mem p cls;
    (match cls with
    | `Invalid -> raise (Mem.Trapped Trap.Invalid_free)
    | `Ok | `Double | `Null -> ());
    Value.zero
  | Image.Bmemset ->
    let p = ptr_arg 0 and v = int_arg 1 and n = Int64.to_int (int_arg 2) in
    for i = 0 to n - 1 do
      store st { p with Value.off = p.Value.off + i } ~ptaint:false
        (Value.Vint (Value.norm32 v)) false
    done;
    Value.zero
  | Image.Bmemcpy ->
    (* copy direction is unspecified for overlapping regions; each libc
       (i.e. each implementation's runtime) picks its own *)
    let d = ptr_arg 0 and s = ptr_arg 1 and n = Int64.to_int (int_arg 2) in
    let copy i =
      let v, t = load st { s with Value.off = s.Value.off + i } ~ptaint:false in
      store st { d with Value.off = d.Value.off + i } ~ptaint:false v t
    in
    if st.runtime.Policy.memcpy_backward then
      for i = n - 1 downto 0 do copy i done
    else
      for i = 0 to n - 1 do copy i done;
    Value.zero
  | Image.Bstrlen ->
    let p = ptr_arg 0 in
    let rec go i =
      if i >= 4096 then i
      else begin
        let v, _ = load st { p with Value.off = p.Value.off + i } ~ptaint:false in
        if as_int st v = 0L then i else go (i + 1)
      end
    in
    Value.Vint (Int64.of_int (go 0))
  | Image.Bexit -> raise (Exit_program (Int64.to_int (int_arg 0) land 0xff))
  | Image.Babort -> raise (Mem.Trapped Trap.Abort_called)
  | Image.Bpow -> Value.Vfloat (Float.pow (float_arg 0) (float_arg 1))
  | Image.Bsqrt -> Value.Vfloat (Float.sqrt (float_arg 0))
  | Image.Bexp2 ->
    (* deliberately computed as e^(x ln 2): bit-level different from
       pow(2,x), the floating-point divergence of RQ2 *)
    Value.Vfloat (Float.exp (float_arg 0 *. Float.log 2.))
  | Image.Bfloor -> Value.Vfloat (Float.floor (float_arg 0))
  | Image.Bunknown name -> invalid_arg ("Exec: unknown builtin " ^ name)

(* ===== reference executor ===== *)

(* per-run function table: name -> (ifunc, eagerly linked label map).
   Labels use [replace] so the last duplicate wins, matching the image
   linker. *)
type ftab = (string, ifunc * (int, int) Hashtbl.t) Hashtbl.t

let build_ftab (u : unit_) : ftab =
  let h = Hashtbl.create 16 in
  List.iter
    (fun (name, f) ->
      if not (Hashtbl.mem h name) then begin
        let labels = Hashtbl.create 16 in
        Array.iteri
          (fun i ins ->
            match ins with Ilabel l -> Hashtbl.replace labels l i | _ -> ())
          f.code;
        Hashtbl.add h name (f, labels)
      end)
    u.funcs;
  h

let rec call st (tab : ftab) (fname : string) (args : (Value.t * bool) list) :
    Value.t * bool =
  let f, labels =
    match Hashtbl.find_opt tab fname with
    | Some fl -> fl
    | None -> invalid_arg ("Exec: unknown function " ^ fname)
  in
  if st.depth >= max_depth then raise (Mem.Trapped Trap.Stack_overflow);
  st.depth <- st.depth + 1;
  st.frame_seq <- st.frame_seq + 1;
  let slot_ids = Mem.push_frame st.mem f.slots in
  let fr =
    {
      func = f;
      regs = Array.make (max 1 f.nregs) Value.zero;
      rtaint = Array.make (max 1 f.nregs) false;
      rwritten = Array.make (max 1 f.nregs) false;
      slot_ids;
      fseq = st.frame_seq;
    }
  in
  List.iteri
    (fun i (v, t) -> if i < f.nregs then write_reg fr i v t)
    args;
  (match st.cfg.coverage with
  | Some cov -> Coverage.hit cov (Coverage.block_id ~fname ~label:(-1))
  | None -> ());
  let result = run_code st tab fr labels in
  Mem.pop_frame st.mem;
  st.depth <- st.depth - 1;
  result

and run_code st tab fr labels : Value.t * bool =
  let code = fr.func.code in
  let n = Array.length code in
  let pc = ref 0 in
  let jump l =
    match Hashtbl.find_opt labels l with
    | Some i -> pc := i
    | None -> invalid_arg (Printf.sprintf "Exec: missing label L%d in %s" l fr.func.name)
  in
  let return_value = ref (Value.zero, false) in
  let running = ref true in
  while !running do
    if !pc >= n then begin
      (* fell off the end of a function with no return: void epilogue *)
      running := false
    end
    else begin
      st.fuel_left <- st.fuel_left - 1;
      if st.fuel_left <= 0 then raise Fuel_out;
      let ins = code.(!pc) in
      incr pc;
      match ins with
      | Ilabel l ->
        (match st.cfg.coverage with
        | Some cov ->
          Coverage.hit cov (Coverage.block_id ~fname:fr.func.name ~label:l)
        | None -> ())
      | Iconst (r, o) | Imov (r, o) ->
        let v, t = eval_operand st fr o in
        write_reg fr r v t
      | Ibin (op, w, sem, r, a, b) ->
        let va, ta = eval_operand st fr a in
        let vb, tb = eval_operand st fr b in
        let ia = as_int st va and ib = as_int st vb in
        if sem = Csigned then st.cfg.hooks.Hooks.on_signed_arith op w ia ib;
        write_reg fr r (Value.Vint (eval_ibin op w ia ib)) (ta || tb)
      | Ineg (w, sem, r, a) ->
        let va, ta = eval_operand st fr a in
        let ia = as_int st va in
        if sem = Csigned then st.cfg.hooks.Hooks.on_signed_arith Bsub w 0L ia;
        write_reg fr r (Value.Vint (norm w (Int64.neg ia))) ta
      | Inot (w, r, a) ->
        let va, ta = eval_operand st fr a in
        write_reg fr r (Value.Vint (norm w (Int64.lognot (as_int st va)))) ta
      | Ifbin (op, r, a, b) ->
        let va, ta = eval_operand st fr a in
        let vb, tb = eval_operand st fr b in
        let x = as_float va and y = as_float vb in
        let z =
          match op with
          | FAdd -> x +. y
          | FSub -> x -. y
          | FMul -> x *. y
          | FDiv -> x /. y
        in
        write_reg fr r (Value.Vfloat z) (ta || tb)
      | Ifma (r, a, b, c) ->
        let va, ta = eval_operand st fr a in
        let vb, tb = eval_operand st fr b in
        let vc, tc = eval_operand st fr c in
        write_reg fr r
          (Value.Vfloat (Float.fma (as_float va) (as_float vb) (as_float vc)))
          (ta || tb || tc)
      | Ifneg (r, a) ->
        let va, ta = eval_operand st fr a in
        write_reg fr r (Value.Vfloat (-.as_float va)) ta
      | Icmp (c, _w, r, a, b) ->
        let va, ta = eval_operand st fr a in
        let vb, tb = eval_operand st fr b in
        write_reg fr r (Value.Vint (eval_cmp c (as_int st va) (as_int st vb))) (ta || tb)
      | Ifcmp (c, r, a, b) ->
        let va, ta = eval_operand st fr a in
        let vb, tb = eval_operand st fr b in
        write_reg fr r (Value.Vint (eval_fcmp c (as_float va) (as_float vb))) (ta || tb)
      | Ipcmp (c, r, a, b) ->
        let va, ta = eval_operand st fr a in
        let vb, tb = eval_operand st fr b in
        let pa = as_ptr st va and pb = as_ptr st vb in
        write_reg fr r (Value.Vint (eval_pcmp st c pa pb)) (ta || tb)
      | Ipadd (r, p, off) ->
        let vp, tp = eval_operand st fr p in
        let voff, toff = eval_operand st fr off in
        let pp = as_ptr st vp in
        let d = Int64.to_int (as_int st voff) in
        write_reg fr r (Value.Vptr { pp with Value.off = pp.Value.off + d }) (tp || toff)
      | Ipdiff (r, a, b) ->
        let va, ta = eval_operand st fr a in
        let vb, tb = eval_operand st fr b in
        let pa = as_ptr st va and pb = as_ptr st vb in
        let aa = if Value.is_null pa then 0 else Mem.addr_of_ptr st.mem pa in
        let ab = if Value.is_null pb then 0 else Mem.addr_of_ptr st.mem pb in
        write_reg fr r (Value.Vint (Value.norm32 (Int64.of_int (aa - ab)))) (ta || tb)
      | Icast (k, r, a) ->
        let va, ta = eval_operand st fr a in
        write_reg fr r (eval_cast st k va) ta
      | Ilea (r, Sglobal g) ->
        (match Hashtbl.find_opt st.global_ids g with
        | Some id -> write_reg fr r (Value.Vptr { Value.obj = id; off = 0 }) false
        | None -> invalid_arg ("Exec: unknown global " ^ g))
      | Ilea (r, Sslot i) ->
        write_reg fr r (Value.Vptr { Value.obj = fr.slot_ids.(i); off = 0 }) false
      | Iload (r, p) ->
        let vp, tp = eval_operand st fr p in
        let v, t = load st (as_ptr st vp) ~ptaint:tp in
        write_reg fr r v t
      | Istore (p, x) ->
        let vp, tp = eval_operand st fr p in
        let vx, tx = eval_operand st fr x in
        store st (as_ptr st vp) ~ptaint:tp vx tx
      | Icall (dest, fname, args) ->
        let argv = List.map (eval_operand st fr) args in
        let v, t = call st tab fname argv in
        (match dest with Some r -> write_reg fr r v t | None -> ())
      | Ibuiltin (dest, bname, args) ->
        let argv = Array.of_list (List.map (fun o -> fst (eval_operand st fr o)) args) in
        let v = exec_builtin_v st (Image.builtin_of_name bname) argv in
        (match dest with Some r -> write_reg fr r v false | None -> ())
      | Iprint items ->
        let value o = fst (eval_operand st fr o) in
        (match st.cfg.on_print with
        | None -> List.iter (print_item st value) items
        | Some notify ->
          let before = Buffer.length st.out in
          List.iter (print_item st value) items;
          let text =
            Buffer.sub st.out before (Buffer.length st.out - before)
          in
          notify ~fn:fr.func.name text)
      | Ijmp l -> jump l
      | Ibr (c, lt, lf) ->
        let vc, tc = eval_operand st fr c in
        st.cfg.hooks.Hooks.on_branch ~taint:tc;
        if Value.truthy vc then jump lt else jump lf
      | Iret None ->
        return_value := (Value.zero, false);
        running := false
      | Iret (Some o) ->
        return_value := eval_operand st fr o;
        running := false
      | Itrap _ -> raise (Mem.Trapped Trap.Abort_called)
    end
  done;
  !return_value

(* --- reference entry point --- *)

let run ?(config = default_config) (u : Ir.unit_) : result =
  let mem = Mem.create u.runtime u.globals in
  let st =
    {
      mem;
      runtime = u.runtime;
      global_ids = Mem.global_ids mem;
      cfg = config;
      out = Buffer.create 256;
      fuel_left = config.fuel;
      in_pos = 0;
      depth = 0;
      frame_seq = 0;
      uninit_reg = u.runtime.Policy.uninit_reg;
    }
  in
  let tab = build_ftab u in
  let status =
    try
      let v, _ = call st tab "main" [] in
      Trap.Exit (Int64.to_int (as_int st v) land 0xff)
    with
    | Exit_program code -> Trap.Exit code
    | Mem.Trapped t -> Trap.Trap t
    | Fuel_out -> Trap.Hang
    | Output_limit_exc -> Trap.Trap Trap.Output_limit
    | Hooks.Report msg -> Trap.San_report msg
  in
  {
    stdout = Buffer.contents st.out;
    status;
    fuel_used = config.fuel - st.fuel_left;
  }

(* ===== linked executor ===== *)

let leval st (sc : Arena.scratch) (fseq : int) (o : operand) : Value.t * bool =
  match o with
  | Reg r ->
    if sc.Arena.s_written.(r) then (sc.Arena.s_regs.(r), sc.Arena.s_taint.(r))
    else (reg_junk st fseq r, true)
  | ImmI v -> (Value.Vint v, false)
  | ImmF f -> (Value.Vfloat f, false)
  | Nullptr -> (Value.Vptr Value.null, false)

(* make the depth's scratch usable for [lf]: grow if needed, and clear
   the written flags (values and taint are only read through them) *)
let acquire_scratch (sc : Arena.scratch) (lf : Image.lfunc) =
  let n = max 1 lf.Image.l_nregs in
  if Array.length sc.Arena.s_regs < n then begin
    sc.Arena.s_regs <- Array.make n Value.zero;
    sc.Arena.s_taint <- Array.make n false;
    sc.Arena.s_written <- Array.make n false
  end
  else Array.fill sc.Arena.s_written 0 n false;
  let k = Array.length lf.Image.l_slots in
  if Array.length sc.Arena.s_slots < k then
    sc.Arena.s_slots <- Array.make k 0

(* [caller]/[caller_fseq] evaluate the argument operands; the entry call
   passes an arbitrary scratch (its argument array is empty) *)
let rec lcall st (arena : Arena.t) (img : Image.t) (fi : int)
    (args : operand array) (caller : Arena.scratch) (caller_fseq : int) :
    Value.t * bool =
  let lf = img.Image.funcs.(fi) in
  if st.depth >= max_depth then raise (Mem.Trapped Trap.Stack_overflow);
  let sc = arena.Arena.scratch.(st.depth) in
  st.depth <- st.depth + 1;
  st.frame_seq <- st.frame_seq + 1;
  let fseq = st.frame_seq in
  acquire_scratch sc lf;
  let nregs = lf.Image.l_nregs in
  for i = 0 to Array.length args - 1 do
    if i < nregs then begin
      let v, t = leval st caller caller_fseq args.(i) in
      sc.Arena.s_regs.(i) <- v;
      sc.Arena.s_taint.(i) <- t;
      sc.Arena.s_written.(i) <- true
    end
  done;
  Mem.push_frame_laid st.mem lf.Image.l_slots lf.Image.l_frame sc.Arena.s_slots;
  (match st.cfg.coverage with
  | Some cov -> Coverage.hit cov lf.Image.l_entry_block
  | None -> ());
  let result = lrun st arena img lf sc fseq in
  Mem.pop_frame st.mem;
  st.depth <- st.depth - 1;
  result

and lrun st (arena : Arena.t) (img : Image.t) (lf : Image.lfunc)
    (sc : Arena.scratch) (fseq : int) : Value.t * bool =
  let code = lf.Image.l_code in
  let n = Array.length code in
  let regs = sc.Arena.s_regs in
  let rtaint = sc.Arena.s_taint in
  let rwritten = sc.Arena.s_written in
  let slot_ids = sc.Arena.s_slots in
  let wr r v t =
    regs.(r) <- v;
    rtaint.(r) <- t;
    rwritten.(r) <- true
  in
  let ev o =
    match o with
    | Reg r ->
      if rwritten.(r) then (regs.(r), rtaint.(r)) else (reg_junk st fseq r, true)
    | ImmI v -> (Value.Vint v, false)
    | ImmF f -> (Value.Vfloat f, false)
    | Nullptr -> (Value.Vptr Value.null, false)
  in
  let pc = ref 0 in
  (* negative targets encode a label the linker could not resolve; fault
     only when taken, with the reference's message *)
  let jump t =
    if t >= 0 then pc := t
    else
      invalid_arg
        (Printf.sprintf "Exec: missing label L%d in %s" (-1 - t) lf.Image.l_name)
  in
  let return_value = ref (Value.zero, false) in
  let running = ref true in
  while !running do
    if !pc >= n then running := false
    else begin
      st.fuel_left <- st.fuel_left - 1;
      if st.fuel_left <= 0 then raise Fuel_out;
      let ins = code.(!pc) in
      incr pc;
      match ins with
      | Image.Llabel blk ->
        (match st.cfg.coverage with
        | Some cov -> Coverage.hit cov blk
        | None -> ())
      | Image.Lconst (r, o) ->
        let v, t = ev o in
        wr r v t
      | Image.Lbin (op, w, sem, r, a, b) ->
        let va, ta = ev a in
        let vb, tb = ev b in
        let ia = as_int st va and ib = as_int st vb in
        if sem = Csigned then st.cfg.hooks.Hooks.on_signed_arith op w ia ib;
        wr r (Value.Vint (eval_ibin op w ia ib)) (ta || tb)
      | Image.Lneg (w, sem, r, a) ->
        let va, ta = ev a in
        let ia = as_int st va in
        if sem = Csigned then st.cfg.hooks.Hooks.on_signed_arith Bsub w 0L ia;
        wr r (Value.Vint (norm w (Int64.neg ia))) ta
      | Image.Lnot (w, r, a) ->
        let va, ta = ev a in
        wr r (Value.Vint (norm w (Int64.lognot (as_int st va)))) ta
      | Image.Lfbin (op, r, a, b) ->
        let va, ta = ev a in
        let vb, tb = ev b in
        let x = as_float va and y = as_float vb in
        let z =
          match op with
          | FAdd -> x +. y
          | FSub -> x -. y
          | FMul -> x *. y
          | FDiv -> x /. y
        in
        wr r (Value.Vfloat z) (ta || tb)
      | Image.Lfma (r, a, b, c) ->
        let va, ta = ev a in
        let vb, tb = ev b in
        let vc, tc = ev c in
        wr r
          (Value.Vfloat (Float.fma (as_float va) (as_float vb) (as_float vc)))
          (ta || tb || tc)
      | Image.Lfneg (r, a) ->
        let va, ta = ev a in
        wr r (Value.Vfloat (-.as_float va)) ta
      | Image.Lcmp (c, r, a, b) ->
        let va, ta = ev a in
        let vb, tb = ev b in
        wr r (Value.Vint (eval_cmp c (as_int st va) (as_int st vb))) (ta || tb)
      | Image.Lfcmp (c, r, a, b) ->
        let va, ta = ev a in
        let vb, tb = ev b in
        wr r (Value.Vint (eval_fcmp c (as_float va) (as_float vb))) (ta || tb)
      | Image.Lpcmp (c, r, a, b) ->
        let va, ta = ev a in
        let vb, tb = ev b in
        let pa = as_ptr st va and pb = as_ptr st vb in
        wr r (Value.Vint (eval_pcmp st c pa pb)) (ta || tb)
      | Image.Lpadd (r, p, off) ->
        let vp, tp = ev p in
        let voff, toff = ev off in
        let pp = as_ptr st vp in
        let d = Int64.to_int (as_int st voff) in
        wr r (Value.Vptr { pp with Value.off = pp.Value.off + d }) (tp || toff)
      | Image.Lpdiff (r, a, b) ->
        let va, ta = ev a in
        let vb, tb = ev b in
        let pa = as_ptr st va and pb = as_ptr st vb in
        let aa = if Value.is_null pa then 0 else Mem.addr_of_ptr st.mem pa in
        let ab = if Value.is_null pb then 0 else Mem.addr_of_ptr st.mem pb in
        wr r (Value.Vint (Value.norm32 (Int64.of_int (aa - ab)))) (ta || tb)
      | Image.Lcast (k, r, a) ->
        let va, ta = ev a in
        wr r (eval_cast st k va) ta
      | Image.Llea_global (r, id) ->
        wr r (Value.Vptr { Value.obj = id; off = 0 }) false
      | Image.Llea_slot (r, i) ->
        wr r (Value.Vptr { Value.obj = slot_ids.(i); off = 0 }) false
      | Image.Lload (r, p) ->
        let vp, tp = ev p in
        let v, t = load st (as_ptr st vp) ~ptaint:tp in
        wr r v t
      | Image.Lstore (p, x) ->
        let vp, tp = ev p in
        let vx, tx = ev x in
        store st (as_ptr st vp) ~ptaint:tp vx tx
      | Image.Lcall (dest, fi, args) ->
        let v, t = lcall st arena img fi args sc fseq in
        (match dest with Some r -> wr r v t | None -> ())
      | Image.Lcall_unknown (fname, args) ->
        Array.iter (fun o -> ignore (ev o)) args;
        invalid_arg ("Exec: unknown function " ^ fname)
      | Image.Lbuiltin (dest, b, args) ->
        let argv = Array.map (fun o -> fst (ev o)) args in
        let v = exec_builtin_v st b argv in
        (match dest with Some r -> wr r v false | None -> ())
      | Image.Lprint items ->
        let value o = fst (ev o) in
        (match st.cfg.on_print with
        | None -> List.iter (print_item st value) items
        | Some notify ->
          let before = Buffer.length st.out in
          List.iter (print_item st value) items;
          let text =
            Buffer.sub st.out before (Buffer.length st.out - before)
          in
          notify ~fn:lf.Image.l_name text)
      | Image.Ljmp t -> jump t
      | Image.Lbr (c, lt, lf_) ->
        let vc, tc = ev c in
        st.cfg.hooks.Hooks.on_branch ~taint:tc;
        if Value.truthy vc then jump lt else jump lf_
      | Image.Lret None ->
        return_value := (Value.zero, false);
        running := false
      | Image.Lret (Some o) ->
        return_value := ev o;
        running := false
      | Image.Lfail msg -> invalid_arg msg
      | Image.Ltrap -> raise (Mem.Trapped Trap.Abort_called)
    end
  done;
  !return_value

(* --- linked entry point --- *)

(* Run a linked image.  With [?arena], all scratch state is reused: the
   arena is reset first, so a caller only needs [Arena.create] once per
   image (per domain -- arenas are not shareable across domains). *)
let run_linked ?(config = default_config) ?arena (img : Image.t) : result =
  let a =
    match arena with
    | Some a ->
      if a.Arena.image != img then
        invalid_arg "Exec.run_linked: arena was created for a different image";
      Arena.reset a;
      a
    | None -> Arena.create img
  in
  let st =
    {
      mem = a.Arena.mem;
      runtime = img.Image.runtime;
      global_ids = img.Image.global_ids;
      cfg = config;
      out = a.Arena.out;
      fuel_left = config.fuel;
      in_pos = 0;
      depth = 0;
      frame_seq = 0;
      uninit_reg = img.Image.runtime.Policy.uninit_reg;
    }
  in
  let status =
    try
      if img.Image.entry < 0 then invalid_arg "Exec: unknown function main";
      let v, _ =
        lcall st a img img.Image.entry [||] a.Arena.scratch.(0) 0
      in
      Trap.Exit (Int64.to_int (as_int st v) land 0xff)
    with
    | Exit_program code -> Trap.Exit code
    | Mem.Trapped t -> Trap.Trap t
    | Fuel_out -> Trap.Hang
    | Output_limit_exc -> Trap.Trap Trap.Output_limit
    | Hooks.Report msg -> Trap.San_report msg
  in
  {
    stdout = Buffer.contents st.out;
    status;
    fuel_used = config.fuel - st.fuel_left;
  }
