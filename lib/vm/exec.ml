(* The IR interpreter ("running a binary").

   Execution is total over arbitrary (even UB-riddled) programs: type
   confusions introduced by uninitialized junk or memory punning are
   resolved by deterministic coercions, so two binaries never differ by
   accident of the VM -- only through their compiled code and their
   run-time policies.

   Fuel plays the role of AFL++'s execution timeout: when it runs out the
   status is [Hang], which the oracle treats with timeout escalation
   rather than as an output.

   Two executors share every semantic helper in this file:

   - [run] is the tree-walking *reference*: it interprets [Ir.instr]
     directly, allocating a fresh address space and register files per
     run, resolving labels and call targets through per-run tables.
   - [run_linked] executes a pre-resolved {!Image.t}, reusing an
     {!Arena.t} across runs.  It exists for throughput; the reference
     exists to check it (mirroring [Oracle.check_naive]): both must
     produce byte-identical [(stdout, status, fuel_used)]. *)

open Cdcompiler
open Ir

exception Exit_program of int
exception Fuel_out
exception Output_limit_exc

type config = {
  fuel : int;
  max_output : int;
  coverage : Coverage.t option;
  input : string;
  observer : Observer.t;
      (* what the run exposes: sanitizer hooks plus an observation level
         (Silent / Prints / Steps).  The Prints level feeds the
         fault-localization prototype (paper Section 5); Steps feeds the
         trace recorder. *)
}

let default_config =
  {
    fuel = 200_000;
    max_output = 1 lsl 20;
    coverage = None;
    input = "";
    observer = Observer.silent;
  }

type result = {
  stdout : string;
  status : Trap.status;
  fuel_used : int;
}

(* mutable per-run state shared by all executors.  [hooks], [notify]
   and [smem] are resolved from the observer once per run so the
   per-instruction paths never re-match on the observation level. *)
type state = {
  mem : Mem.t;
  runtime : Policy.runtime;
  global_ids : (string, int) Hashtbl.t;
  cfg : config;
  hooks : Hooks.t;
  notify : (fn:string -> string -> unit) option;
  smem : (int -> Value.t -> unit) option;  (* Steps-level store record *)
  out : Buffer.t;
  mutable fuel_left : int;
  mutable in_pos : int;
  mutable depth : int;
  mutable frame_seq : int;
  uninit_reg : Policy.uninit_policy;
}

let make_state ~mem ~(runtime : Policy.runtime) ~global_ids ~(cfg : config)
    ~out : state =
  {
    mem;
    runtime;
    global_ids;
    cfg;
    hooks = cfg.observer.Observer.hooks;
    notify = Observer.print_cb cfg.observer;
    smem =
      (match cfg.observer.Observer.level with
      | Observer.Steps s ->
        Some (fun addr v -> s.Observer.on_mem_write ~addr v)
      | Observer.Silent | Observer.Prints _ -> None);
    out;
    fuel_left = cfg.fuel;
    in_pos = 0;
    depth = 0;
    frame_seq = 0;
    uninit_reg = runtime.Policy.uninit_reg;
  }

let max_depth = Arena.max_depth

(* --- coercions: make every value usable at every type --- *)

let as_int st (v : Value.t) : int64 =
  match v with
  | Value.Vint x -> x
  | Value.Vfloat f -> Int64.bits_of_float f
  | Value.Vptr p ->
    if Value.is_null p then 0L else Int64.of_int (Mem.addr_of_ptr st.mem p)

and as_float (v : Value.t) : float =
  match v with
  | Value.Vfloat f -> f
  | Value.Vint x -> Int64.float_of_bits x
  | Value.Vptr _ -> 0.

and as_ptr st (v : Value.t) : Value.ptr =
  match v with
  | Value.Vptr p -> p
  | Value.Vint x -> Mem.ptr_of_addr st.mem (Int64.to_int x)
  | Value.Vfloat f -> Mem.ptr_of_addr st.mem (int_of_float f)

(* --- registers --- *)

(* junk depends only on (frame sequence number, register index): frame
   1 of run N sees the same junk as frame 1 of run 1 *)
let reg_junk st fseq r =
  match st.uninit_reg with
  | Policy.Uzero -> Value.Vint 0L
  | Policy.Upattern _ as p ->
    Value.Vint (Policy.uninit_value p ~addr:((fseq * 131) + r))

(* reference per-call frame *)
type frame = {
  func : ifunc;
  regs : Value.t array;
  rtaint : bool array;
  rwritten : bool array;
  slot_ids : int array;
  fseq : int;
}

let read_reg st fr r : Value.t * bool =
  if fr.rwritten.(r) then (fr.regs.(r), fr.rtaint.(r))
  else (reg_junk st fr.fseq r, true)

let write_reg fr r (v : Value.t) (taint : bool) =
  fr.regs.(r) <- v;
  fr.rtaint.(r) <- taint;
  fr.rwritten.(r) <- true

let eval_operand st fr (o : operand) : Value.t * bool =
  match o with
  | Reg r -> read_reg st fr r
  | ImmI v -> (Value.Vint v, false)
  | ImmF f -> (Value.Vfloat f, false)
  | Nullptr -> (Value.Vptr Value.null, false)

(* --- integer semantics --- *)

let bits = function W32 -> 32 | W64 -> 64

let norm w v = match w with W32 -> Value.norm32 v | W64 -> v

(* Hardware-style evaluation: shifts mask their count (x86), division by
   zero and INT_MIN/-1 trap. The compiler's constant folder made different
   choices for UB shifts -- that asymmetry is intentional. *)
let eval_ibin op w (a : int64) (b : int64) : int64 =
  match op with
  | Badd -> norm w (Int64.add a b)
  | Bsub -> norm w (Int64.sub a b)
  | Bmul -> norm w (Int64.mul a b)
  | Bdiv ->
    if b = 0L then raise (Mem.Trapped Trap.Div_by_zero)
    else if b = -1L && a = (match w with W32 -> -2147483648L | W64 -> Int64.min_int)
    then raise (Mem.Trapped Trap.Div_by_zero) (* x86 #DE covers both *)
    else norm w (Int64.div a b)
  | Bmod ->
    if b = 0L then raise (Mem.Trapped Trap.Div_by_zero)
    else if b = -1L && a = (match w with W32 -> -2147483648L | W64 -> Int64.min_int)
    then raise (Mem.Trapped Trap.Div_by_zero)
    else norm w (Int64.rem a b)
  | Bshl ->
    let c = Int64.to_int b land (bits w - 1) in
    norm w (Int64.shift_left a c)
  | Bshr ->
    let c = Int64.to_int b land (bits w - 1) in
    norm w (Int64.shift_right a c)
  | Band -> Int64.logand a b
  | Bor -> Int64.logor a b
  | Bxor -> Int64.logxor a b

let cmp_holds c (a : int64) (b : int64) : bool =
  match c with
  | Clt -> a < b
  | Cle -> a <= b
  | Cgt -> a > b
  | Cge -> a >= b
  | Ceq -> a = b
  | Cne -> a <> b

let eval_cmp c (a : int64) (b : int64) : int64 =
  if cmp_holds c a b then 1L else 0L

let fcmp_holds c (a : float) (b : float) : bool =
  match c with
  | Clt -> a < b
  | Cle -> a <= b
  | Cgt -> a > b
  | Cge -> a >= b
  | Ceq -> a = b
  | Cne -> a <> b

let eval_fcmp c (a : float) (b : float) : int64 =
  if fcmp_holds c a b then 1L else 0L

(* shared result boxes: comparison results never allocate *)
let value_one = Value.Vint 1L

(* Small-constant box table: 32-bit results in [0, 4096) reuse a
   preallocated box, so counter-style arithmetic in the threaded
   executor allocates nothing at all. *)
let small_boxes = Array.init 4096 (fun i -> Value.Vint (Int64.of_int i))

let box_i32 (x : int) : Value.t =
  if x >= 0 && x < 4096 then Array.unsafe_get small_boxes x
  else Value.Vint (Int64.of_int x)

(* Sign-extend the low 32 bits of a native int.  Every stored W32 value
   is norm32-sign-extended, so both operands of a 32-bit binop fit a
   native 63-bit int; add/sub/shift cannot overflow it, and the one
   multiply corner that wraps mod 2^63 (|a*b| = 2^62) preserves the low
   32 bits, which is all [Value.norm32] keeps.  Taking the low 32 bits
   of the native result is therefore exactly the Int64 semantics. *)
let wrap32 (x : int) : int = (x lsl 31) asr 31

(* Native-int fast path for the threaded executor's integer binops:
   bit-for-bit [eval_ibin] with the Int64 boxing removed.  Division and
   remainder keep the trapping slow path. *)
let eval_bin_boxed op w (ia : int64) (ib : int64) : Value.t =
  match w with
  | W64 -> Value.Vint (eval_ibin op w ia ib)
  | W32 -> (
    let a = Int64.to_int ia and b = Int64.to_int ib in
    match op with
    | Badd -> box_i32 (wrap32 (a + b))
    | Bsub -> box_i32 (wrap32 (a - b))
    | Bmul -> box_i32 (wrap32 (a * b))
    | Band -> box_i32 (a land b)
    | Bor -> box_i32 (a lor b)
    | Bxor -> box_i32 (a lxor b)
    | Bshl -> box_i32 (wrap32 (a lsl (b land 31)))
    | Bshr -> box_i32 (a asr (b land 31))
    | Bdiv | Bmod -> Value.Vint (eval_ibin op w ia ib))

(* --- memory access with hooks --- *)

(* hooks run before the hardware consequence so a sanitizer can turn a
   would-be trap (or a silent corruption) into a report *)
let load st (p : Value.ptr) ~(ptaint : bool) : Value.t * bool =
  st.hooks.Hooks.on_deref_taint ~taint:ptaint;
  st.hooks.Hooks.on_access st.mem p Hooks.Aread;
  if Value.is_null p then raise (Mem.Trapped Trap.Null_deref);
  Mem.read_abs st.mem (Mem.addr_of_ptr st.mem p)

(* every store funnels through here (builtins included), so recording
   the write for a Steps observer in one place catches them all *)
let store st (p : Value.ptr) ~(ptaint : bool) (v : Value.t) (taint : bool) =
  st.hooks.Hooks.on_deref_taint ~taint:ptaint;
  st.hooks.Hooks.on_access st.mem p Hooks.Awrite;
  if Value.is_null p then raise (Mem.Trapped Trap.Null_deref);
  let addr = Mem.addr_of_ptr st.mem p in
  Mem.write_abs st.mem addr v ~taint;
  match st.smem with Some record -> record addr v | None -> ()

(* Hook-free pointer resolution for the threaded executor: when a run is
   uninstrumented ([hooks == Hooks.none]) the only observable effects of
   [load]/[store] are the null trap and the cell access itself, so the
   no-op closure calls and the result tuple can be dropped. *)
let[@inline] plain_addr st (p : Value.ptr) : int =
  if Value.is_null p then raise (Mem.Trapped Trap.Null_deref);
  Mem.addr_of_ptr st.mem p

(* --- output --- *)

let put st s =
  Buffer.add_string st.out s;
  if Buffer.length st.out > st.cfg.max_output then raise Output_limit_exc

let read_cstring st (p : Value.ptr) : string =
  let buf = Buffer.create 16 in
  let rec go i =
    if i >= 4096 then ()
    else begin
      let v, _ = load st { p with Value.off = p.Value.off + i } ~ptaint:false in
      let c = Int64.to_int (as_int st v) land 0xff in
      if c = 0 then ()
      else begin
        Buffer.add_char buf (Char.chr c);
        go (i + 1)
      end
    end
  in
  go 0;
  Buffer.contents buf

(* [value] abstracts over which register file the executor reads *)
let print_item st (value : operand -> Value.t) (item : fmt_item) =
  match item with
  | Flit s -> put st s
  | Fint o ->
    put st (Int32.to_string (Int64.to_int32 (as_int st (value o))))
  | Flong o -> put st (Int64.to_string (as_int st (value o)))
  | Fuint o ->
    put st (Printf.sprintf "%Lu" (Int64.logand (as_int st (value o)) 0xFFFFFFFFL))
  | Fhex o ->
    put st (Printf.sprintf "%Lx" (Int64.logand (as_int st (value o)) 0xFFFFFFFFL))
  | Fchar o ->
    put st (String.make 1 (Char.chr (Int64.to_int (as_int st (value o)) land 0xff)))
  | Fstr o -> put st (read_cstring st (as_ptr st (value o)))
  | Ffloat o -> put st (Printf.sprintf "%f" (as_float (value o)))
  | Fptr o ->
    let p = as_ptr st (value o) in
    let addr = if Value.is_null p then 0 else Mem.addr_of_ptr st.mem p in
    put st (Printf.sprintf "0x%x" addr)

(* --- pointer comparison / casts --- *)

let eval_pcmp st c (a : Value.ptr) (b : Value.ptr) : int64 =
  let abs p = if Value.is_null p then 0 else Mem.addr_of_ptr st.mem p in
  match c with
  | Ceq -> if abs a = abs b then 1L else 0L
  | Cne -> if abs a <> abs b then 1L else 0L
  | Clt | Cle | Cgt | Cge ->
    let xa, xb =
      match st.runtime.Policy.ptrcmp with
      | Policy.Pabs -> (abs a, abs b)
      | Policy.Pobjseq ->
        (* compare by allocation sequence, then offset; encode as a pair *)
        ((a.Value.obj * 1_000_000) + a.Value.off, (b.Value.obj * 1_000_000) + b.Value.off)
    in
    eval_cmp c (Int64.of_int xa) (Int64.of_int xb)

let eval_cast st k (v : Value.t) : Value.t =
  match k with
  | Sext3264 -> Value.Vint (as_int st v) (* W32 already sign-extended *)
  | Trunc6432 -> Value.Vint (Value.norm32 (as_int st v))
  | I2F _ -> Value.Vfloat (Int64.to_float (as_int st v))
  | F2I w ->
    let f = as_float v in
    let x =
      if Float.is_nan f || f >= 9.22e18 || f <= -9.22e18 then Int64.min_int
      else Int64.of_float f
    in
    Value.Vint (norm w x)
  | P2I w -> Value.Vint (norm w (as_int st v))
  | I2P -> Value.Vptr (as_ptr st v)

(* --- builtins --- *)

(* builtins only look at argument *values* and always return untainted
   results, so one core serves both executors *)
let exec_builtin_v st (b : Image.builtin) (argv : Value.t array) : Value.t =
  let int_arg i = as_int st argv.(i) in
  let ptr_arg i = as_ptr st argv.(i) in
  let float_arg i = as_float argv.(i) in
  match b with
  | Image.Bgetchar ->
    if st.in_pos < String.length st.cfg.input then begin
      let c = Char.code st.cfg.input.[st.in_pos] in
      st.in_pos <- st.in_pos + 1;
      Value.Vint (Int64.of_int c)
    end
    else Value.Vint (-1L)
  | Image.Binput_len -> Value.Vint (Int64.of_int (String.length st.cfg.input))
  | Image.Bpeek ->
    let i = Int64.to_int (int_arg 0) in
    if i >= 0 && i < String.length st.cfg.input then
      Value.Vint (Int64.of_int (Char.code st.cfg.input.[i]))
    else Value.Vint (-1L)
  | Image.Bmalloc ->
    let n = Int64.to_int (int_arg 0) in
    Value.Vptr (Mem.malloc st.mem n)
  | Image.Bfree ->
    let p = ptr_arg 0 in
    let cls = Mem.free st.mem p in
    st.hooks.Hooks.on_free st.mem p cls;
    (match cls with
    | `Invalid -> raise (Mem.Trapped Trap.Invalid_free)
    | `Ok | `Double | `Null -> ());
    Value.zero
  | Image.Bmemset ->
    let p = ptr_arg 0 and v = int_arg 1 and n = Int64.to_int (int_arg 2) in
    for i = 0 to n - 1 do
      store st { p with Value.off = p.Value.off + i } ~ptaint:false
        (Value.Vint (Value.norm32 v)) false
    done;
    Value.zero
  | Image.Bmemcpy ->
    (* copy direction is unspecified for overlapping regions; each libc
       (i.e. each implementation's runtime) picks its own *)
    let d = ptr_arg 0 and s = ptr_arg 1 and n = Int64.to_int (int_arg 2) in
    let copy i =
      let v, t = load st { s with Value.off = s.Value.off + i } ~ptaint:false in
      store st { d with Value.off = d.Value.off + i } ~ptaint:false v t
    in
    if st.runtime.Policy.memcpy_backward then
      for i = n - 1 downto 0 do copy i done
    else
      for i = 0 to n - 1 do copy i done;
    Value.zero
  | Image.Bstrlen ->
    let p = ptr_arg 0 in
    let rec go i =
      if i >= 4096 then i
      else begin
        let v, _ = load st { p with Value.off = p.Value.off + i } ~ptaint:false in
        if as_int st v = 0L then i else go (i + 1)
      end
    in
    Value.Vint (Int64.of_int (go 0))
  | Image.Bexit -> raise (Exit_program (Int64.to_int (int_arg 0) land 0xff))
  | Image.Babort -> raise (Mem.Trapped Trap.Abort_called)
  | Image.Bpow -> Value.Vfloat (Float.pow (float_arg 0) (float_arg 1))
  | Image.Bsqrt -> Value.Vfloat (Float.sqrt (float_arg 0))
  | Image.Bexp2 ->
    (* deliberately computed as e^(x ln 2): bit-level different from
       pow(2,x), the floating-point divergence of RQ2 *)
    Value.Vfloat (Float.exp (float_arg 0 *. Float.log 2.))
  | Image.Bfloor -> Value.Vfloat (Float.floor (float_arg 0))
  | Image.Bunknown name -> invalid_arg ("Exec: unknown builtin " ^ name)

(* ===== reference executor ===== *)

(* per-run function table: name -> (ifunc, eagerly linked label map).
   Labels use [replace] so the last duplicate wins, matching the image
   linker. *)
type ftab = (string, ifunc * (int, int) Hashtbl.t) Hashtbl.t

let build_ftab (u : unit_) : ftab =
  let h = Hashtbl.create 16 in
  List.iter
    (fun (name, f) ->
      if not (Hashtbl.mem h name) then begin
        let labels = Hashtbl.create 16 in
        Array.iteri
          (fun i ins ->
            match ins with Ilabel l -> Hashtbl.replace labels l i | _ -> ())
          f.code;
        Hashtbl.add h name (f, labels)
      end)
    u.funcs;
  h

let rec call st (tab : ftab) (fname : string) (args : (Value.t * bool) list) :
    Value.t * bool =
  let f, labels =
    match Hashtbl.find_opt tab fname with
    | Some fl -> fl
    | None -> invalid_arg ("Exec: unknown function " ^ fname)
  in
  if st.depth >= max_depth then raise (Mem.Trapped Trap.Stack_overflow);
  st.depth <- st.depth + 1;
  st.frame_seq <- st.frame_seq + 1;
  let slot_ids = Mem.push_frame st.mem f.slots in
  let fr =
    {
      func = f;
      regs = Array.make (max 1 f.nregs) Value.zero;
      rtaint = Array.make (max 1 f.nregs) false;
      rwritten = Array.make (max 1 f.nregs) false;
      slot_ids;
      fseq = st.frame_seq;
    }
  in
  List.iteri
    (fun i (v, t) -> if i < f.nregs then write_reg fr i v t)
    args;
  (match st.cfg.coverage with
  | Some cov -> Coverage.hit cov (Coverage.block_id ~fname ~label:(-1))
  | None -> ());
  let result = run_code st tab fr labels in
  Mem.pop_frame st.mem;
  st.depth <- st.depth - 1;
  result

and run_code st tab fr labels : Value.t * bool =
  let code = fr.func.code in
  let n = Array.length code in
  let pc = ref 0 in
  let jump l =
    match Hashtbl.find_opt labels l with
    | Some i -> pc := i
    | None -> invalid_arg (Printf.sprintf "Exec: missing label L%d in %s" l fr.func.name)
  in
  let return_value = ref (Value.zero, false) in
  let running = ref true in
  while !running do
    if !pc >= n then begin
      (* fell off the end of a function with no return: void epilogue *)
      running := false
    end
    else begin
      st.fuel_left <- st.fuel_left - 1;
      if st.fuel_left <= 0 then raise Fuel_out;
      let ins = code.(!pc) in
      incr pc;
      match ins with
      | Ilabel l ->
        (match st.cfg.coverage with
        | Some cov ->
          Coverage.hit cov (Coverage.block_id ~fname:fr.func.name ~label:l)
        | None -> ())
      | Iconst (r, o) | Imov (r, o) ->
        let v, t = eval_operand st fr o in
        write_reg fr r v t
      | Ibin (op, w, sem, r, a, b) ->
        let va, ta = eval_operand st fr a in
        let vb, tb = eval_operand st fr b in
        let ia = as_int st va and ib = as_int st vb in
        if sem = Csigned then st.hooks.Hooks.on_signed_arith op w ia ib;
        write_reg fr r (Value.Vint (eval_ibin op w ia ib)) (ta || tb)
      | Ineg (w, sem, r, a) ->
        let va, ta = eval_operand st fr a in
        let ia = as_int st va in
        if sem = Csigned then st.hooks.Hooks.on_signed_arith Bsub w 0L ia;
        write_reg fr r (Value.Vint (norm w (Int64.neg ia))) ta
      | Inot (w, r, a) ->
        let va, ta = eval_operand st fr a in
        write_reg fr r (Value.Vint (norm w (Int64.lognot (as_int st va)))) ta
      | Ifbin (op, r, a, b) ->
        let va, ta = eval_operand st fr a in
        let vb, tb = eval_operand st fr b in
        let x = as_float va and y = as_float vb in
        let z =
          match op with
          | FAdd -> x +. y
          | FSub -> x -. y
          | FMul -> x *. y
          | FDiv -> x /. y
        in
        write_reg fr r (Value.Vfloat z) (ta || tb)
      | Ifma (r, a, b, c) ->
        let va, ta = eval_operand st fr a in
        let vb, tb = eval_operand st fr b in
        let vc, tc = eval_operand st fr c in
        write_reg fr r
          (Value.Vfloat (Float.fma (as_float va) (as_float vb) (as_float vc)))
          (ta || tb || tc)
      | Ifneg (r, a) ->
        let va, ta = eval_operand st fr a in
        write_reg fr r (Value.Vfloat (-.as_float va)) ta
      | Icmp (c, _w, r, a, b) ->
        let va, ta = eval_operand st fr a in
        let vb, tb = eval_operand st fr b in
        write_reg fr r (Value.Vint (eval_cmp c (as_int st va) (as_int st vb))) (ta || tb)
      | Ifcmp (c, r, a, b) ->
        let va, ta = eval_operand st fr a in
        let vb, tb = eval_operand st fr b in
        write_reg fr r (Value.Vint (eval_fcmp c (as_float va) (as_float vb))) (ta || tb)
      | Ipcmp (c, r, a, b) ->
        let va, ta = eval_operand st fr a in
        let vb, tb = eval_operand st fr b in
        let pa = as_ptr st va and pb = as_ptr st vb in
        write_reg fr r (Value.Vint (eval_pcmp st c pa pb)) (ta || tb)
      | Ipadd (r, p, off) ->
        let vp, tp = eval_operand st fr p in
        let voff, toff = eval_operand st fr off in
        let pp = as_ptr st vp in
        let d = Int64.to_int (as_int st voff) in
        write_reg fr r (Value.Vptr { pp with Value.off = pp.Value.off + d }) (tp || toff)
      | Ipdiff (r, a, b) ->
        let va, ta = eval_operand st fr a in
        let vb, tb = eval_operand st fr b in
        let pa = as_ptr st va and pb = as_ptr st vb in
        let aa = if Value.is_null pa then 0 else Mem.addr_of_ptr st.mem pa in
        let ab = if Value.is_null pb then 0 else Mem.addr_of_ptr st.mem pb in
        write_reg fr r (Value.Vint (Value.norm32 (Int64.of_int (aa - ab)))) (ta || tb)
      | Icast (k, r, a) ->
        let va, ta = eval_operand st fr a in
        write_reg fr r (eval_cast st k va) ta
      | Ilea (r, Sglobal g) ->
        (match Hashtbl.find_opt st.global_ids g with
        | Some id -> write_reg fr r (Value.Vptr { Value.obj = id; off = 0 }) false
        | None -> invalid_arg ("Exec: unknown global " ^ g))
      | Ilea (r, Sslot i) ->
        write_reg fr r (Value.Vptr { Value.obj = fr.slot_ids.(i); off = 0 }) false
      | Iload (r, p) ->
        let vp, tp = eval_operand st fr p in
        let v, t = load st (as_ptr st vp) ~ptaint:tp in
        write_reg fr r v t
      | Istore (p, x) ->
        let vp, tp = eval_operand st fr p in
        let vx, tx = eval_operand st fr x in
        store st (as_ptr st vp) ~ptaint:tp vx tx
      | Icall (dest, fname, args) ->
        let argv = List.map (eval_operand st fr) args in
        let v, t = call st tab fname argv in
        (match dest with Some r -> write_reg fr r v t | None -> ())
      | Ibuiltin (dest, bname, args) ->
        let argv = Array.of_list (List.map (fun o -> fst (eval_operand st fr o)) args) in
        let v = exec_builtin_v st (Image.builtin_of_name bname) argv in
        (match dest with Some r -> write_reg fr r v false | None -> ())
      | Iprint items ->
        let value o = fst (eval_operand st fr o) in
        (match st.notify with
        | None -> List.iter (print_item st value) items
        | Some notify ->
          let before = Buffer.length st.out in
          List.iter (print_item st value) items;
          let text =
            Buffer.sub st.out before (Buffer.length st.out - before)
          in
          notify ~fn:fr.func.name text)
      | Ijmp l -> jump l
      | Ibr (c, lt, lf) ->
        let vc, tc = eval_operand st fr c in
        st.hooks.Hooks.on_branch ~taint:tc;
        if Value.truthy vc then jump lt else jump lf
      | Iret None ->
        return_value := (Value.zero, false);
        running := false
      | Iret (Some o) ->
        return_value := eval_operand st fr o;
        running := false
      | Itrap _ -> raise (Mem.Trapped Trap.Abort_called)
    end
  done;
  !return_value

(* --- reference entry point --- *)

let run ?(config = default_config) (u : Ir.unit_) : result =
  (match config.observer.Observer.level with
  | Observer.Steps _ ->
    (* step records carry function *indices* and un-fused pcs, both of
       which only exist on a linked image *)
    invalid_arg "Exec.run: Steps observation needs a linked image (run_linked)"
  | Observer.Silent | Observer.Prints _ -> ());
  let mem = Mem.create u.runtime u.globals in
  let st =
    make_state ~mem ~runtime:u.runtime ~global_ids:(Mem.global_ids mem)
      ~cfg:config ~out:(Buffer.create 256)
  in
  let tab = build_ftab u in
  let status =
    try
      let v, _ = call st tab "main" [] in
      Trap.Exit (Int64.to_int (as_int st v) land 0xff)
    with
    | Exit_program code -> Trap.Exit code
    | Mem.Trapped t -> Trap.Trap t
    | Fuel_out -> Trap.Hang
    | Output_limit_exc -> Trap.Trap Trap.Output_limit
    | Hooks.Report msg -> Trap.San_report msg
  in
  {
    stdout = Buffer.contents st.out;
    status;
    fuel_used = config.fuel - st.fuel_left;
  }

(* ===== threaded linked executor ===== *)

(* Operand evaluation is split into a value read and a taint read so the
   hot loop never allocates an intermediate [(value, taint)] tuple --
   that tuple was the single largest allocation source of the previous
   linked executor.  Immediates ([Tval]) are boxed once at link time. *)
let tev_v st (sc : Arena.scratch) (fseq : int) (o : Image.topnd) : Value.t =
  match o with
  | Image.Treg r ->
    if sc.Arena.s_written.(r) then sc.Arena.s_regs.(r) else reg_junk st fseq r
  | Image.Tval v -> v

let tev_t (sc : Arena.scratch) (o : Image.topnd) : bool =
  match o with
  | Image.Treg r -> (not sc.Arena.s_written.(r)) || sc.Arena.s_taint.(r)
  | Image.Tval _ -> false

(* make the depth's scratch usable for [lf]: grow if needed, and clear
   the written flags (values and taint are only read through them) *)
let acquire_scratch (sc : Arena.scratch) (lf : Image.lfunc) =
  let n = max 1 lf.Image.l_nregs in
  if Array.length sc.Arena.s_regs < n then begin
    sc.Arena.s_regs <- Array.make n Value.zero;
    sc.Arena.s_taint <- Array.make n false;
    sc.Arena.s_written <- Array.make n false
  end
  else Array.fill sc.Arena.s_written 0 n false;
  let k = Array.length lf.Image.l_slots in
  if Array.length sc.Arena.s_slots < k then
    sc.Arena.s_slots <- Array.make k 0

(* [caller]/[caller_fseq] evaluate the argument operands; the entry call
   passes an arbitrary scratch (its argument array is empty) *)
let rec lcall st (arena : Arena.t) (img : Image.t) (fi : int)
    (args : Image.topnd array) (caller : Arena.scratch) (caller_fseq : int) :
    Value.t * bool =
  let lf = img.Image.funcs.(fi) in
  if st.depth >= max_depth then raise (Mem.Trapped Trap.Stack_overflow);
  let sc = arena.Arena.scratch.(st.depth) in
  st.depth <- st.depth + 1;
  st.frame_seq <- st.frame_seq + 1;
  let fseq = st.frame_seq in
  acquire_scratch sc lf;
  let nregs = lf.Image.l_nregs in
  for i = 0 to Array.length args - 1 do
    if i < nregs then begin
      sc.Arena.s_regs.(i) <- tev_v st caller caller_fseq args.(i);
      sc.Arena.s_taint.(i) <- tev_t caller args.(i);
      sc.Arena.s_written.(i) <- true
    end
  done;
  Mem.push_frame_laid st.mem lf.Image.l_slots lf.Image.l_frame sc.Arena.s_slots;
  (match st.cfg.coverage with
  | Some cov -> Coverage.hit cov lf.Image.l_entry_block
  | None -> ());
  let result = trun st arena img lf sc fseq in
  Mem.pop_frame st.mem;
  st.depth <- st.depth - 1;
  result

and trun st (arena : Arena.t) (img : Image.t) (lf : Image.lfunc)
    (sc : Arena.scratch) (fseq : int) : Value.t * bool =
  let code = lf.Image.l_ops in
  let n = Array.length code in
  let hooks = st.hooks in
  let plain = hooks == Hooks.none in
  let coverage = st.cfg.coverage in
  let regs = sc.Arena.s_regs in
  let rtaint = sc.Arena.s_taint in
  let rwritten = sc.Arena.s_written in
  let slot_ids = sc.Arena.s_slots in
  (* register indices were validated against [l_nregs] when the image
     was linked and the arena arrays are sized from it, so the register
     file can skip bounds checks *)
  let wr r v t =
    Array.unsafe_set regs r v;
    Array.unsafe_set rtaint r t;
    Array.unsafe_set rwritten r true
  in
  (* split value/taint reads: no tuple allocation per operand *)
  let ev_v (o : Image.topnd) =
    match o with
    | Image.Treg r ->
      if Array.unsafe_get rwritten r then Array.unsafe_get regs r
      else reg_junk st fseq r
    | Image.Tval v -> v
  in
  let ev_t (o : Image.topnd) =
    match o with
    | Image.Treg r ->
      (not (Array.unsafe_get rwritten r)) || Array.unsafe_get rtaint r
    | Image.Tval _ -> false
  in
  let pc = ref 0 in
  (* negative targets encode a label the linker could not resolve; fault
     only when taken, with the reference's message *)
  let jump t =
    if t >= 0 then pc := t
    else
      invalid_arg
        (Printf.sprintf "Exec: missing label L%d in %s" (-1 - t) lf.Image.l_name)
  in
  (* a fused op covers two source instructions; the second one's fuel
     tick happens between the halves, exactly where the reference's
     per-instruction check sits *)
  let fuel_tick () =
    st.fuel_left <- st.fuel_left - 1;
    if st.fuel_left <= 0 then raise Fuel_out
  in
  let return_value = ref (Value.zero, false) in
  let running = ref true in
  while !running do
    if !pc >= n then running := false
    else begin
      st.fuel_left <- st.fuel_left - 1;
      if st.fuel_left <= 0 then raise Fuel_out;
      (* pc stays within [0, n): the loop guard covers fall-off and every
         linker-resolved jump target is an in-range index *)
      let ins = Array.unsafe_get code !pc in
      incr pc;
      match ins with
      | Image.Tlabel blk ->
        (match coverage with
        | Some cov -> Coverage.hit cov blk
        | None -> ())
      | Image.Tconst (r, o) -> wr r (ev_v o) (ev_t o)
      | Image.Tconst2 (r1, v1, r2, v2) ->
        wr r1 v1 false;
        fuel_tick ();
        wr r2 v2 false;
        incr pc (* the fused op consumed the slot at pc+1 *)
      | Image.Tbin (op, w, sem, r, a, b) ->
        let va = ev_v a in
        let vb = ev_v b in
        let ia = as_int st va and ib = as_int st vb in
        if sem = Csigned then hooks.Hooks.on_signed_arith op w ia ib;
        wr r (eval_bin_boxed op w ia ib) (ev_t a || ev_t b)
      | Image.Tneg (w, sem, r, a) ->
        let ia = as_int st (ev_v a) in
        if sem = Csigned then hooks.Hooks.on_signed_arith Bsub w 0L ia;
        let v =
          match w with
          | W32 -> box_i32 (wrap32 (-Int64.to_int ia))
          | W64 -> Value.Vint (Int64.neg ia)
        in
        wr r v (ev_t a)
      | Image.Tnot (w, r, a) ->
        wr r (Value.Vint (norm w (Int64.lognot (as_int st (ev_v a))))) (ev_t a)
      | Image.Tfbin (op, r, a, b) ->
        let x = as_float (ev_v a) and y = as_float (ev_v b) in
        let z =
          match op with
          | FAdd -> x +. y
          | FSub -> x -. y
          | FMul -> x *. y
          | FDiv -> x /. y
        in
        wr r (Value.Vfloat z) (ev_t a || ev_t b)
      | Image.Tfma (r, a, b, c) ->
        wr r
          (Value.Vfloat
             (Float.fma (as_float (ev_v a)) (as_float (ev_v b))
                (as_float (ev_v c))))
          (ev_t a || ev_t b || ev_t c)
      | Image.Tfneg (r, a) -> wr r (Value.Vfloat (-.as_float (ev_v a))) (ev_t a)
      | Image.Tcmp (c, r, a, b) ->
        let res = cmp_holds c (as_int st (ev_v a)) (as_int st (ev_v b)) in
        wr r (if res then value_one else Value.zero) (ev_t a || ev_t b)
      | Image.Tcmp_br (c, r, a, b, lt, lf_) ->
        (* cmp half *)
        let res = cmp_holds c (as_int st (ev_v a)) (as_int st (ev_v b)) in
        let t = ev_t a || ev_t b in
        wr r (if res then value_one else Value.zero) t;
        (* branch half (reads the register just written) *)
        fuel_tick ();
        if not plain then hooks.Hooks.on_branch ~taint:t;
        if res then jump lt else jump lf_
      | Image.Tfcmp (c, r, a, b) ->
        let res = fcmp_holds c (as_float (ev_v a)) (as_float (ev_v b)) in
        wr r (if res then value_one else Value.zero) (ev_t a || ev_t b)
      | Image.Tpcmp (c, r, a, b) ->
        let pa = as_ptr st (ev_v a) and pb = as_ptr st (ev_v b) in
        wr r (Value.Vint (eval_pcmp st c pa pb)) (ev_t a || ev_t b)
      | Image.Tpadd (r, p, off) ->
        let pp = as_ptr st (ev_v p) in
        let d = Int64.to_int (as_int st (ev_v off)) in
        wr r
          (Value.Vptr { pp with Value.off = pp.Value.off + d })
          (ev_t p || ev_t off)
      | Image.Tpdiff (r, a, b) ->
        let pa = as_ptr st (ev_v a) and pb = as_ptr st (ev_v b) in
        let aa = if Value.is_null pa then 0 else Mem.addr_of_ptr st.mem pa in
        let ab = if Value.is_null pb then 0 else Mem.addr_of_ptr st.mem pb in
        wr r (Value.Vint (Value.norm32 (Int64.of_int (aa - ab)))) (ev_t a || ev_t b)
      | Image.Tcast (k, r, a) -> wr r (eval_cast st k (ev_v a)) (ev_t a)
      | Image.Tlea_global (r, id) ->
        wr r (Value.Vptr { Value.obj = id; off = 0 }) false
      | Image.Tlea_slot (r, i) ->
        wr r (Value.Vptr { Value.obj = slot_ids.(i); off = 0 }) false
      | Image.Tload (r, p) ->
        let vp = ev_v p in
        if plain then begin
          let addr = plain_addr st (as_ptr st vp) in
          wr r (Mem.read_abs_v st.mem addr) (Mem.read_abs_taint st.mem addr)
        end
        else begin
          let v, t = load st (as_ptr st vp) ~ptaint:(ev_t p) in
          wr r v t
        end
      | Image.Tload_bin (r1, p, op, w, sem, r2, b) ->
        if plain then begin
          (* load half, hook-free *)
          let addr = plain_addr st (as_ptr st (ev_v p)) in
          let v = Mem.read_abs_v st.mem addr in
          let t = Mem.read_abs_taint st.mem addr in
          wr r1 v t;
          (* binop half: its left operand is the register just written *)
          fuel_tick ();
          let vb = ev_v b in
          let ia = as_int st v and ib = as_int st vb in
          wr r2 (eval_bin_boxed op w ia ib) (t || ev_t b);
          incr pc (* the fused op consumed the slot at pc+1 *)
        end
        else begin
          (* load half *)
          let vp = ev_v p in
          let v, t = load st (as_ptr st vp) ~ptaint:(ev_t p) in
          wr r1 v t;
          (* binop half: its left operand is the register just written *)
          fuel_tick ();
          let vb = ev_v b in
          let ia = as_int st v and ib = as_int st vb in
          if sem = Csigned then hooks.Hooks.on_signed_arith op w ia ib;
          wr r2 (eval_bin_boxed op w ia ib) (t || ev_t b);
          incr pc (* the fused op consumed the slot at pc+1 *)
        end
      | Image.Tstore (p, x) ->
        let vp = ev_v p in
        let vx = ev_v x in
        if plain then
          Mem.write_abs st.mem (plain_addr st (as_ptr st vp)) vx ~taint:(ev_t x)
        else store st (as_ptr st vp) ~ptaint:(ev_t p) vx (ev_t x)
      | Image.Tload_slot (r, i) ->
        (* lea half: the pointer register is link-proven dead, so its
           write is elided; only the fuel tick remains *)
        fuel_tick ();
        let sid = Array.unsafe_get slot_ids i in
        if plain then begin
          let addr = Mem.base_of_obj st.mem sid in
          wr r (Mem.read_abs_v st.mem addr) (Mem.read_abs_taint st.mem addr)
        end
        else begin
          (* lea-produced pointers carry taint [false] *)
          let v, t = load st { Value.obj = sid; Value.off = 0 } ~ptaint:false in
          wr r v t
        end;
        incr pc (* the fused op consumed the slot at pc+1 *)
      | Image.Tstore_slot (i, x) ->
        fuel_tick ();
        let vx = ev_v x in
        let sid = Array.unsafe_get slot_ids i in
        if plain then
          Mem.write_abs st.mem (Mem.base_of_obj st.mem sid) vx ~taint:(ev_t x)
        else store st { Value.obj = sid; Value.off = 0 } ~ptaint:false vx (ev_t x);
        incr pc
      | Image.Tload_global (r, gid) ->
        fuel_tick ();
        if plain then begin
          let addr = Mem.base_of_obj st.mem gid in
          wr r (Mem.read_abs_v st.mem addr) (Mem.read_abs_taint st.mem addr)
        end
        else begin
          let v, t = load st { Value.obj = gid; Value.off = 0 } ~ptaint:false in
          wr r v t
        end;
        incr pc
      | Image.Tstore_global (gid, x) ->
        fuel_tick ();
        let vx = ev_v x in
        if plain then
          Mem.write_abs st.mem (Mem.base_of_obj st.mem gid) vx ~taint:(ev_t x)
        else store st { Value.obj = gid; Value.off = 0 } ~ptaint:false vx (ev_t x);
        incr pc
      | Image.Tcall (dest, fi, args) ->
        let v, t = lcall st arena img fi args sc fseq in
        if dest >= 0 then wr dest v t
      | Image.Tcall_unknown (fname, args) ->
        Array.iter (fun o -> ignore (ev_v o)) args;
        invalid_arg ("Exec: unknown function " ^ fname)
      | Image.Tbuiltin (dest, b, args) ->
        let argv = Array.map ev_v args in
        let v = exec_builtin_v st b argv in
        if dest >= 0 then wr dest v false
      | Image.Tprint items ->
        let value (o : operand) =
          match o with
          | Reg r -> if rwritten.(r) then regs.(r) else reg_junk st fseq r
          | ImmI v -> Value.Vint v
          | ImmF f -> Value.Vfloat f
          | Nullptr -> Value.Vptr Value.null
        in
        (match st.notify with
        | None -> List.iter (print_item st value) items
        | Some notify ->
          let before = Buffer.length st.out in
          List.iter (print_item st value) items;
          let text =
            Buffer.sub st.out before (Buffer.length st.out - before)
          in
          notify ~fn:lf.Image.l_name text)
      | Image.Tjmp t -> jump t
      | Image.Tbr (c, lt, lf_) ->
        let vc = ev_v c in
        if not plain then hooks.Hooks.on_branch ~taint:(ev_t c);
        if Value.truthy vc then jump lt else jump lf_
      | Image.Tret None ->
        return_value := (Value.zero, false);
        running := false
      | Image.Tret (Some o) ->
        return_value := (ev_v o, ev_t o);
        running := false
      | Image.Tfail msg -> invalid_arg msg
      | Image.Ttrap -> raise (Mem.Trapped Trap.Abort_called)
    end
  done;
  !return_value

(* ===== stepped executor (Steps observation) ===== *)

(* Interprets the un-fused linked code ([Image.lfunc.l_code]) with
   reference-style per-call frames, feeding every instruction, register
   write, memory write, call and return into the observer's step sink.
   [l_code] is index-for-index parallel to the source code -- same pcs,
   same fuel ticks -- so recorded pcs line up with [Ir.line_of_pc] and
   (stdout, status, fuel_used) stays byte-identical to the other two
   executors.  Throughput is traded for completeness: fresh arrays per
   call, no fusion, a sink call per instruction (DESIGN.md section 15). *)

type sframe = {
  slf : Image.lfunc;
  sfi : int;                               (* index in the image table *)
  sregs : Value.t array;
  srtaint : bool array;
  srwritten : bool array;
  sslot_ids : int array;
  sfseq : int;
}

let sread_reg st fr r : Value.t * bool =
  if fr.srwritten.(r) then (fr.sregs.(r), fr.srtaint.(r))
  else (reg_junk st fr.sfseq r, true)

let swrite_reg (sink : Observer.step_sink) fr r (v : Value.t) (taint : bool) =
  sink.Observer.on_reg_write ~reg:r v;
  fr.sregs.(r) <- v;
  fr.srtaint.(r) <- taint;
  fr.srwritten.(r) <- true

let seval st fr (o : operand) : Value.t * bool =
  match o with
  | Reg r -> sread_reg st fr r
  | ImmI v -> (Value.Vint v, false)
  | ImmF f -> (Value.Vfloat f, false)
  | Nullptr -> (Value.Vptr Value.null, false)

let rec scall st (sink : Observer.step_sink) (img : Image.t) (fi : int)
    (args : (Value.t * bool) list) : Value.t * bool =
  let lf = img.Image.funcs.(fi) in
  if st.depth >= max_depth then raise (Mem.Trapped Trap.Stack_overflow);
  st.depth <- st.depth + 1;
  st.frame_seq <- st.frame_seq + 1;
  let slot_ids = Array.make (Array.length lf.Image.l_slots) 0 in
  Mem.push_frame_laid st.mem lf.Image.l_slots lf.Image.l_frame slot_ids;
  let fr =
    {
      slf = lf;
      sfi = fi;
      sregs = Array.make (max 1 lf.Image.l_nregs) Value.zero;
      srtaint = Array.make (max 1 lf.Image.l_nregs) false;
      srwritten = Array.make (max 1 lf.Image.l_nregs) false;
      sslot_ids = slot_ids;
      sfseq = st.frame_seq;
    }
  in
  (* the call record precedes the argument writes, so a replayer knows
     they land in the callee's frame *)
  sink.Observer.on_call ~fi;
  List.iteri
    (fun i (v, t) -> if i < lf.Image.l_nregs then swrite_reg sink fr i v t)
    args;
  (match st.cfg.coverage with
  | Some cov -> Coverage.hit cov lf.Image.l_entry_block
  | None -> ());
  let result = srun st sink img fr in
  Mem.pop_frame st.mem;
  st.depth <- st.depth - 1;
  sink.Observer.on_ret ();
  result

and srun st (sink : Observer.step_sink) (img : Image.t) (fr : sframe) :
    Value.t * bool =
  let lf = fr.slf in
  let code = lf.Image.l_code in
  let n = Array.length code in
  let pc = ref 0 in
  let jump t =
    if t >= 0 then pc := t
    else
      invalid_arg
        (Printf.sprintf "Exec: missing label L%d in %s" (-1 - t) lf.Image.l_name)
  in
  let return_value = ref (Value.zero, false) in
  let running = ref true in
  while !running do
    if !pc >= n then running := false
    else begin
      st.fuel_left <- st.fuel_left - 1;
      if st.fuel_left <= 0 then raise Fuel_out;
      let cur = !pc in
      incr pc;
      sink.Observer.on_step ~fi:fr.sfi ~pc:cur ~depth:st.depth;
      match code.(cur) with
      | Image.Llabel blk ->
        (match st.cfg.coverage with
        | Some cov -> Coverage.hit cov blk
        | None -> ())
      | Image.Lconst (r, o) ->
        let v, t = seval st fr o in
        swrite_reg sink fr r v t
      | Image.Lbin (op, w, sem, r, a, b) ->
        let va, ta = seval st fr a in
        let vb, tb = seval st fr b in
        let ia = as_int st va and ib = as_int st vb in
        if sem = Csigned then st.hooks.Hooks.on_signed_arith op w ia ib;
        swrite_reg sink fr r (Value.Vint (eval_ibin op w ia ib)) (ta || tb)
      | Image.Lneg (w, sem, r, a) ->
        let va, ta = seval st fr a in
        let ia = as_int st va in
        if sem = Csigned then st.hooks.Hooks.on_signed_arith Bsub w 0L ia;
        swrite_reg sink fr r (Value.Vint (norm w (Int64.neg ia))) ta
      | Image.Lnot (w, r, a) ->
        let va, ta = seval st fr a in
        swrite_reg sink fr r (Value.Vint (norm w (Int64.lognot (as_int st va)))) ta
      | Image.Lfbin (op, r, a, b) ->
        let va, ta = seval st fr a in
        let vb, tb = seval st fr b in
        let x = as_float va and y = as_float vb in
        let z =
          match op with
          | FAdd -> x +. y
          | FSub -> x -. y
          | FMul -> x *. y
          | FDiv -> x /. y
        in
        swrite_reg sink fr r (Value.Vfloat z) (ta || tb)
      | Image.Lfma (r, a, b, c) ->
        let va, ta = seval st fr a in
        let vb, tb = seval st fr b in
        let vc, tc = seval st fr c in
        swrite_reg sink fr r
          (Value.Vfloat (Float.fma (as_float va) (as_float vb) (as_float vc)))
          (ta || tb || tc)
      | Image.Lfneg (r, a) ->
        let va, ta = seval st fr a in
        swrite_reg sink fr r (Value.Vfloat (-.as_float va)) ta
      | Image.Lcmp (c, r, a, b) ->
        let va, ta = seval st fr a in
        let vb, tb = seval st fr b in
        swrite_reg sink fr r
          (Value.Vint (eval_cmp c (as_int st va) (as_int st vb)))
          (ta || tb)
      | Image.Lfcmp (c, r, a, b) ->
        let va, ta = seval st fr a in
        let vb, tb = seval st fr b in
        swrite_reg sink fr r
          (Value.Vint (eval_fcmp c (as_float va) (as_float vb)))
          (ta || tb)
      | Image.Lpcmp (c, r, a, b) ->
        let va, ta = seval st fr a in
        let vb, tb = seval st fr b in
        let pa = as_ptr st va and pb = as_ptr st vb in
        swrite_reg sink fr r (Value.Vint (eval_pcmp st c pa pb)) (ta || tb)
      | Image.Lpadd (r, p, off) ->
        let vp, tp = seval st fr p in
        let voff, toff = seval st fr off in
        let pp = as_ptr st vp in
        let d = Int64.to_int (as_int st voff) in
        swrite_reg sink fr r
          (Value.Vptr { pp with Value.off = pp.Value.off + d })
          (tp || toff)
      | Image.Lpdiff (r, a, b) ->
        let va, ta = seval st fr a in
        let vb, tb = seval st fr b in
        let pa = as_ptr st va and pb = as_ptr st vb in
        let aa = if Value.is_null pa then 0 else Mem.addr_of_ptr st.mem pa in
        let ab = if Value.is_null pb then 0 else Mem.addr_of_ptr st.mem pb in
        swrite_reg sink fr r (Value.Vint (Value.norm32 (Int64.of_int (aa - ab)))) (ta || tb)
      | Image.Lcast (k, r, a) ->
        let va, ta = seval st fr a in
        swrite_reg sink fr r (eval_cast st k va) ta
      | Image.Llea_global (r, id) ->
        swrite_reg sink fr r (Value.Vptr { Value.obj = id; off = 0 }) false
      | Image.Llea_slot (r, i) ->
        swrite_reg sink fr r
          (Value.Vptr { Value.obj = fr.sslot_ids.(i); off = 0 })
          false
      | Image.Lload (r, p) ->
        let vp, tp = seval st fr p in
        let v, t = load st (as_ptr st vp) ~ptaint:tp in
        swrite_reg sink fr r v t
      | Image.Lstore (p, x) ->
        let vp, tp = seval st fr p in
        let vx, tx = seval st fr x in
        store st (as_ptr st vp) ~ptaint:tp vx tx
      | Image.Lcall (dest, fi, args) ->
        let argv = Array.to_list (Array.map (seval st fr) args) in
        let v, t = scall st sink img fi argv in
        (match dest with Some r -> swrite_reg sink fr r v t | None -> ())
      | Image.Lcall_unknown (fname, args) ->
        Array.iter (fun o -> ignore (seval st fr o)) args;
        invalid_arg ("Exec: unknown function " ^ fname)
      | Image.Lbuiltin (dest, b, args) ->
        let argv = Array.map (fun o -> fst (seval st fr o)) args in
        let v = exec_builtin_v st b argv in
        (match dest with Some r -> swrite_reg sink fr r v false | None -> ())
      | Image.Lprint items ->
        let value o = fst (seval st fr o) in
        (match st.notify with
        | None -> List.iter (print_item st value) items
        | Some notify ->
          let before = Buffer.length st.out in
          List.iter (print_item st value) items;
          let text =
            Buffer.sub st.out before (Buffer.length st.out - before)
          in
          notify ~fn:lf.Image.l_name text)
      | Image.Ljmp t -> jump t
      | Image.Lbr (c, lt, lf_) ->
        let vc, tc = seval st fr c in
        st.hooks.Hooks.on_branch ~taint:tc;
        if Value.truthy vc then jump lt else jump lf_
      | Image.Lret None ->
        return_value := (Value.zero, false);
        running := false
      | Image.Lret (Some o) ->
        return_value := seval st fr o;
        running := false
      | Image.Lfail msg -> invalid_arg msg
      | Image.Ltrap -> raise (Mem.Trapped Trap.Abort_called)
    end
  done;
  !return_value

(* --- linked entry point --- *)

let status_of_run (st : state) (body : unit -> Value.t * bool) : Trap.status =
  try
    let v, _ = body () in
    Trap.Exit (Int64.to_int (as_int st v) land 0xff)
  with
  | Exit_program code -> Trap.Exit code
  | Mem.Trapped t -> Trap.Trap t
  | Fuel_out -> Trap.Hang
  | Output_limit_exc -> Trap.Trap Trap.Output_limit
  | Hooks.Report msg -> Trap.San_report msg

(* Run a linked image.  With [?arena], all scratch state is reused: the
   arena is reset first, so a caller only needs [Arena.create] once per
   image (per domain -- arenas are not shareable across domains).  A
   [Steps] observer routes to the stepped executor instead, which
   allocates fresh memory and frames: stepped runs are observation
   tools, never the throughput path, and must not disturb pooled
   state. *)
let run_linked ?(config = default_config) ?arena (img : Image.t) : result =
  match config.observer.Observer.level with
  | Observer.Steps sink ->
    let mem = Mem.create img.Image.runtime img.Image.globals in
    let st =
      make_state ~mem ~runtime:img.Image.runtime
        ~global_ids:img.Image.global_ids ~cfg:config ~out:(Buffer.create 256)
    in
    let status =
      status_of_run st (fun () ->
          if img.Image.entry < 0 then invalid_arg "Exec: unknown function main";
          scall st sink img img.Image.entry [])
    in
    {
      stdout = Buffer.contents st.out;
      status;
      fuel_used = config.fuel - st.fuel_left;
    }
  | Observer.Silent | Observer.Prints _ ->
    let a =
      match arena with
      | Some a ->
        if a.Arena.image != img then
          invalid_arg "Exec.run_linked: arena was created for a different image";
        Arena.reset a;
        a
      | None -> Arena.create img
    in
    let st =
      make_state ~mem:a.Arena.mem ~runtime:img.Image.runtime
        ~global_ids:img.Image.global_ids ~cfg:config ~out:a.Arena.out
    in
    let status =
      status_of_run st (fun () ->
          if img.Image.entry < 0 then invalid_arg "Exec: unknown function main";
          lcall st a img img.Image.entry [||] a.Arena.scratch.(0) 0)
    in
    {
      stdout = Buffer.contents st.out;
      status;
      fuel_used = config.fuel - st.fuel_left;
    }

(* Run many inputs against one image through one arena, without
   re-validating or re-creating per-run structure.  [Arena.reset]
   between runs is the only per-input setup; the globals blit inside it
   is skipped when the previous run never wrote a global ({!Mem.reset}'s
   dirty gate).  [on_each i r] fires after input [i] completes, before
   the next run starts -- the fuzzer uses it to harvest coverage between
   runs.  Results are positionally identical to mapping {!run_linked}
   over [inputs] with the same config and arena. *)
let run_batch ?(config = default_config) ?arena ?on_each (img : Image.t)
    ~(inputs : string array) : result array =
  let a =
    match arena with
    | Some a ->
      if a.Arena.image != img then
        invalid_arg "Exec.run_batch: arena was created for a different image";
      a
    | None -> Arena.create img
  in
  Array.mapi
    (fun i input ->
      let r = run_linked ~config:{ config with input } ~arena:a img in
      (match on_each with Some f -> f i r | None -> ());
      r)
    inputs
