(* What a run lets the outside world see.

   Every consumer of the VM used to pick its own observation mechanism:
   the localizer passed an [on_print] closure, the sanitizers a
   {!Hooks.t}, the oracle nothing at all.  An {!Observer.t} unifies
   them into one field of [Exec.config] with three *levels*:

   - [Silent]  -- nothing is observed beyond (stdout, status, fuel).
     This is the oracle's path; the threaded executor keeps its
     hook-free fast path whenever the sanitizer hooks are [Hooks.none],
     so silence costs nothing by construction.
   - [Prints]  -- one callback per executed print statement, with the
     enclosing function name and the rendered text.  This is the event
     level optimizations preserve (DESIGN.md section 15), and the one
     classic localization compares.
   - [Steps]   -- a full per-instruction feed: pc before each
     instruction, every register write, every memory write (including
     those inside builtins like memset/memcpy), call/return boundaries
     and print events.  Recording at this level is how the trace store
     ([Cdtrace]) captures a run for time-travel replay.

   Sanitizer hooks are orthogonal to the level -- an instrumented binary
   can run silently (the fuzzer) or while being traced -- so they travel
   alongside it rather than as a fourth level. *)

type step_sink = {
  on_step : fi:int -> pc:int -> depth:int -> unit;
      (** before each instruction dispatch, after its fuel tick; [fi] is
          the function's index in the image table, [pc] its index in the
          un-fused code array (identical to the source [Ir] pc) *)
  on_reg_write : reg:int -> Value.t -> unit;
      (** after a register write of the current frame *)
  on_mem_write : addr:int -> Value.t -> unit;
      (** after a store to absolute address [addr], builtins included *)
  on_call : fi:int -> unit;
      (** frame pushed; subsequent register writes hit the callee *)
  on_ret : unit -> unit;
      (** frame popped; subsequent register writes hit the caller *)
  on_print_ev : fn:string -> string -> unit;
      (** a print statement executed, same payload as the [Prints] level *)
}

type level =
  | Silent
  | Prints of (fn:string -> string -> unit)
  | Steps of step_sink

type t = {
  hooks : Hooks.t;  (** sanitizer instrumentation; [Hooks.none] = plain *)
  level : level;
}

let silent = { hooks = Hooks.none; level = Silent }
let prints cb = { hooks = Hooks.none; level = Prints cb }
let steps sink = { hooks = Hooks.none; level = Steps sink }

(* a sanitized build observed at the [Silent] level: today's fuzzer *)
let sanitize hooks = { hooks; level = Silent }

(* the per-print callback implied by the level, if any; executors
   resolve this once per run, not once per print *)
let print_cb (t : t) : (fn:string -> string -> unit) option =
  match t.level with
  | Silent -> None
  | Prints cb -> Some cb
  | Steps s -> Some (fun ~fn text -> s.on_print_ev ~fn text)
