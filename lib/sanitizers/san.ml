(* Driver for sanitizer-instrumented runs.

   A "sanitizer build" is the unoptimizing build (the fuzzer's compiler,
   as in CompDiff-AFL++ where B_fuzz carries the sanitizer checks) plus
   the corresponding VM hooks. *)

open Cdcompiler

type kind = Asan | Ubsan | Msan

let name = function Asan -> "ASan" | Ubsan -> "UBSan" | Msan -> "MSan"

let hooks = function
  | Asan -> Asan.hooks
  | Ubsan -> Ubsan.hooks
  | Msan -> Msan.hooks

let all = [ Asan; Ubsan; Msan ]

(* the build sanitizers instrument: unoptimized, every local observable *)
let build_profile = Profiles.gccx "O0"

(* A reusable sanitizer build: the instrumented binary compiled and
   linked once, paired with a persistent arena.  The hook set is a
   per-run config, so one build serves all three sanitizers.  The arena
   is single-domain scratch: share a build within one task only. *)
type build = {
  image : Cdvm.Image.t;
  arena : Cdvm.Arena.t;
}

(* With a session, the compile and the link are served by its caches
   (the instrumented binary is the plain unoptimized one; hooks are
   per-run config).  Sanitized executions must never go through the
   session's observation store — hooks make a run more than a function
   of (image, input, fuel) — so this keeps a private arena and runs the
   image directly. *)
let build ?session (tp : Minic.Tast.tprogram) : build =
  let image =
    match session with
    | Some s ->
        Engine.Session.image (Engine.Session.link s (Engine.Session.compile s build_profile tp))
    | None -> Cdvm.Image.link (Pipeline.compile build_profile tp)
  in
  { image; arena = Cdvm.Arena.create image }

let run_built ?(fuel = 200_000) (kind : kind) (b : build) ~(input : string) :
    Cdvm.Exec.result =
  Cdvm.Exec.run_linked
    ~config:
      {
        Cdvm.Exec.default_config with
        Cdvm.Exec.input;
        fuel;
        observer = Cdvm.Observer.sanitize (hooks kind);
      }
    ~arena:b.arena b.image

let run ?fuel (kind : kind) (tp : Minic.Tast.tprogram) ~(input : string) :
    Cdvm.Exec.result =
  run_built ?fuel kind (build tp) ~input

(* Did this sanitizer report anything on any of the inputs?  The whole
   set runs as one VM batch on the build's arena (hooks are per-run
   config, so batching never touches an observation store). *)
let detects_built ?(fuel = 200_000) (kind : kind) (b : build)
    ~(inputs : string list) : bool =
  let config =
    {
      Cdvm.Exec.default_config with
      Cdvm.Exec.fuel;
      observer = Cdvm.Observer.sanitize (hooks kind);
    }
  in
  let results =
    Cdvm.Exec.run_batch ~config ~arena:b.arena b.image
      ~inputs:(Array.of_list inputs)
  in
  Array.exists
    (fun r ->
      match r.Cdvm.Exec.status with
      | Cdvm.Trap.San_report _ -> true
      | Cdvm.Trap.Exit _ | Cdvm.Trap.Trap _ | Cdvm.Trap.Hang -> false)
    results

let detects ?fuel (kind : kind) (tp : Minic.Tast.tprogram) ~(inputs : string list) :
    bool =
  detects_built ?fuel kind (build tp) ~inputs

(* First report message, for diagnostics. *)
let first_report_built ?fuel (kind : kind) (b : build)
    ~(inputs : string list) : string option =
  List.find_map
    (fun input ->
      match (run_built ?fuel kind b ~input).Cdvm.Exec.status with
      | Cdvm.Trap.San_report msg -> Some msg
      | Cdvm.Trap.Exit _ | Cdvm.Trap.Trap _ | Cdvm.Trap.Hang -> None)
    inputs

let first_report ?fuel (kind : kind) (tp : Minic.Tast.tprogram)
    ~(inputs : string list) : string option =
  first_report_built ?fuel kind (build tp) ~inputs
