(** Driver for sanitizer-instrumented runs.

    A "sanitizer build" is the unoptimizing build (the same compiler
    configuration the fuzzer uses for [B_fuzz]) executed with the
    corresponding VM hook set. A report terminates the run with
    {!Cdvm.Trap.San_report}. *)

type kind = Asan | Ubsan | Msan

val name : kind -> string

val hooks : kind -> Cdvm.Hooks.t
(** The VM instrumentation implementing this sanitizer's checks (and its
    documented blind spots — see {!Asan}, {!Ubsan}, {!Msan}). *)

val all : kind list

val build_profile : Cdcompiler.Policy.profile
(** The compiler configuration sanitizer builds use. *)

type build
(** A reusable sanitizer build: the instrumented binary compiled and
    linked once ({!Cdvm.Image.link}), with a persistent execution arena.
    One build serves all three sanitizers (the hook set is per-run), but
    it is single-domain scratch: do not share across concurrent tasks. *)

val build : ?session:Engine.Session.t -> Minic.Tast.tprogram -> build
(** [build ?session tp]: with a session, the compile and link are served
    by its unit/image caches; the sanitized executions themselves always
    run directly (hooked runs must bypass the observation store). *)

val run_built : ?fuel:int -> kind -> build -> input:string -> Cdvm.Exec.result

val detects_built : ?fuel:int -> kind -> build -> inputs:string list -> bool

val run :
  ?fuel:int -> kind -> Minic.Tast.tprogram -> input:string -> Cdvm.Exec.result
(** One-shot [build] + [run_built]. *)

val detects : ?fuel:int -> kind -> Minic.Tast.tprogram -> inputs:string list -> bool
(** Did the sanitizer report anything on any of the inputs? *)

val first_report_built :
  ?fuel:int -> kind -> build -> inputs:string list -> string option
(** First report message over the inputs on an existing build, [None]
    when the sanitizer stays silent. *)

val first_report :
  ?fuel:int -> kind -> Minic.Tast.tprogram -> inputs:string list -> string option
