(* CompDiff-AFL++ (Algorithm 1, complete).

   The fuzzer drives an instrumented build [B_fuzz]; every generated
   input additionally runs on the k differential binaries, whose outputs
   are checksummed and compared. Diverging inputs land in the [diffs]
   triage store ("save s' to disk" / the diffs/ directory of the paper).

   Sanitizers remain compatible: passing [sanitizer] instruments B_fuzz
   exactly like AFL++ would, without touching the differential set. *)

open Cdcompiler

type config = {
  seeds : string list;
  max_execs : int;
  fuel : int;
  rng_seed : int;
  profiles : Policy.profile list;   (* the differential implementations *)
  sanitizer : Sanitizers.San.kind option; (* on B_fuzz only *)
  normalize : Compdiff.Normalize.filter;
  diff_every : int;                 (* run the oracle on every nth input; 1 = paper *)
  divergence_feedback : bool;
      (* the paper's Section 5 proposal (NEZHA-style): treat an input
         exhibiting a previously unseen divergence signature as
         interesting, feeding it back into the mutation queue *)
  jobs : int;                       (* oracle parallelism; 0 = Pool.default_jobs *)
  reduce_on_save : bool;
      (* the Section 5 reporting step: ddmin every first-of-its-signature
         divergent input as it is saved, so diffs/ holds reduced
         reproducers, not raw havoc blobs *)
  reduce_checks : int;              (* validation budget per reduction *)
  session : Engine.Session.t option;
      (* engine session for B_fuzz compilation, the oracle, and the
         on-save reductions; None = a private uncached one *)
}

let default_config =
  {
    seeds = [ "" ];
    max_execs = 2_000;
    fuel = 100_000;
    rng_seed = 1;
    profiles = Profiles.all;
    sanitizer = None;
    normalize = Compdiff.Normalize.identity;
    diff_every = 1;
    divergence_feedback = false;
    jobs = 0;
    reduce_on_save = true;
    reduce_checks = 400;
    session = None;
  }

type campaign = {
  fuzz : Fuzzer.campaign;
  diffs : Compdiff.Triage.t;
  oracle : Compdiff.Oracle.t;
  diff_checks : int;                (* oracle invocations *)
}

let run ?(config = default_config) (tp : Minic.Tast.tprogram) : campaign =
  let fuzz_unit =
    match config.session with
    | Some s -> Engine.Session.compile s Profiles.fuzz_profile tp
    | None -> Pipeline.compile Profiles.fuzz_profile tp
  in
  let jobs =
    if config.jobs > 0 then config.jobs else Cdutil.Pool.default_jobs ()
  in
  let oracle =
    Compdiff.Oracle.create ?session:config.session ~profiles:config.profiles
      ~normalize:config.normalize ~fuel:config.fuel ~jobs tp
  in
  let triage = Compdiff.Triage.create () in
  let counter = ref 0 in
  let checks = ref 0 in
  let on_input input =
    incr counter;
    if !counter mod config.diff_every = 0 then begin
      incr checks;
      match Compdiff.Oracle.check oracle ~input with
      | Compdiff.Oracle.Diverge obs ->
        let freshness = Compdiff.Triage.add triage oracle ~input obs in
        (* reduce on save: only first-of-signature entries, so the cost
           is bounded by the number of unique divergences, not inputs *)
        if freshness = `New && config.reduce_on_save then begin
          match
            Compdiff.Reduce.reduce ~max_checks:config.reduce_checks oracle
              ~input obs
          with
          | Some r ->
            Compdiff.Triage.attach_reduced triage ~input
              {
                Compdiff.Triage.red_input = r.Compdiff.Reduce.red_input;
                red_observations = r.Compdiff.Reduce.red_observations;
                red_checks = r.Compdiff.Reduce.red_stats.Compdiff.Reduce.checks;
              }
          | None -> ()
        end;
        if config.divergence_feedback && freshness = `New then
          Fuzzer.Interesting
        else Fuzzer.Boring
      | Compdiff.Oracle.Agree _ -> Fuzzer.Boring
    end
    else Fuzzer.Boring
  in
  let hooks =
    match config.sanitizer with
    | Some k -> Sanitizers.San.hooks k
    | None -> Cdvm.Hooks.none
  in
  let fuzz =
    Fuzzer.run
      ~config:
        {
          Fuzzer.seeds = config.seeds;
          max_execs = config.max_execs;
          fuel = config.fuel;
          rng_seed = config.rng_seed;
          det_bytes = Fuzzer.default_config.Fuzzer.det_bytes;
          hooks;
          on_input = Some on_input;
        }
      fuzz_unit
  in
  { fuzz; diffs = triage; oracle; diff_checks = !checks }

let found_divergence (c : campaign) = Compdiff.Triage.total_count c.diffs > 0
