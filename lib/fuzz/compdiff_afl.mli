(** CompDiff-AFL++ — Algorithm 1 of the paper, complete.

    A coverage-guided fuzzing loop drives the instrumented build
    [B_fuzz]; every generated input additionally runs on the [k]
    differential binaries, and inputs with divergent (normalized,
    checksummed) outputs are saved and triaged.

    Sanitizers compose exactly as in AFL++: they instrument [B_fuzz]
    only, leaving the differential set untouched. *)

type config = {
  seeds : string list;              (** initial corpus *)
  max_execs : int;                  (** execution budget on [B_fuzz] *)
  fuel : int;                       (** per-execution instruction budget *)
  rng_seed : int;
  profiles : Cdcompiler.Policy.profile list;
      (** the differential implementation set (default: all ten) *)
  sanitizer : Sanitizers.San.kind option;
      (** instrument [B_fuzz] with this sanitizer, as AFL++ would *)
  normalize : Compdiff.Normalize.filter;
      (** per-target output normalization (RQ5) *)
  diff_every : int;
      (** run the oracle on every [n]-th generated input; [1] is the
          paper's configuration *)
  divergence_feedback : bool;
      (** the paper's Section 5 proposal (NEZHA-style): an input with a
          previously unseen divergence signature is fed back into the
          mutation queue even without new coverage *)
  jobs : int;
      (** worker parallelism of the differential oracle;
          [0] (the default) means {!Cdutil.Pool.default_jobs} *)
  reduce_on_save : bool;
      (** run {!Compdiff.Reduce} on every first-of-its-signature
          divergent input as it is saved (default [true]), so the triage
          store holds reduced reproducers alongside the raw blobs *)
  reduce_checks : int;
      (** per-divergence validation budget of the on-save reduction *)
  session : Engine.Session.t option;
      (** engine session shared by the [B_fuzz] compile, the oracle, and
          the on-save reductions ([None], the default, uses a private
          caching-disabled session) *)
}

val default_config : config

type campaign = {
  fuzz : Fuzzer.campaign;           (** the underlying fuzzing run *)
  diffs : Compdiff.Triage.t;        (** the "diffs/" directory *)
  oracle : Compdiff.Oracle.t;
  diff_checks : int;                (** oracle invocations *)
}

val run : ?config:config -> Minic.Tast.tprogram -> campaign

val found_divergence : campaign -> bool
