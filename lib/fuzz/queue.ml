(* The seed queue.

   Entries that exercised new coverage buckets (or triggered oracle
   interest) enter the queue; selection cycles round-robin, and a
   fitness-guided power schedule decides how many mutations each visit
   spends on the seed. Fitness combines AFL's favored heuristic (small,
   fast seeds) with coverage novelty, divergence feedback and an
   exploration bonus for recent finds. *)

type entry = {
  id : int;
  data : string;
  fuel_used : int;
  found_at : int;     (* execution count when discovered *)
  novelty : int;      (* virgin-map positions this entry newly touched *)
  divergent : bool;   (* the oracle declared the input interesting *)
}

type t = {
  mutable entries : entry array;
  mutable n : int;
  mutable cursor : int;
  mutable next_id : int;
  mutable latest_find : int; (* largest found_at over all entries *)
}

let dummy =
  { id = 0; data = ""; fuel_used = 0; found_at = 0; novelty = 0;
    divergent = false }

let create () =
  { entries = Array.make 16 dummy; n = 0; cursor = 0; next_id = 0;
    latest_find = 0 }

let length t = t.n

let add ?(novelty = 0) ?(divergent = false) t ~(data : string)
    ~(fuel_used : int) ~(found_at : int) : entry =
  let e = { id = t.next_id; data; fuel_used; found_at; novelty; divergent } in
  t.next_id <- t.next_id + 1;
  if found_at > t.latest_find then t.latest_find <- found_at;
  if t.n = Array.length t.entries then begin
    let bigger = Array.make (2 * t.n) e in
    Array.blit t.entries 0 bigger 0 t.n;
    t.entries <- bigger
  end;
  t.entries.(t.n) <- e;
  t.n <- t.n + 1;
  e

let is_empty t = t.n = 0

(* Round-robin selection.

   The cursor is kept in [0, n] and wrapped explicitly: an unbounded
   cursor reduced with [mod t.n] changes meaning whenever the queue
   grows mid-cycle (the same seed can be revisited twice per cycle while
   a fresh seed is skipped).  Entries are append-only, so positions
   never move, appends land ahead of the sweep front, and one sweep
   visits every entry present when it passes exactly once. *)
let select t : entry =
  if t.n = 0 then invalid_arg "Queue.select: empty queue";
  if t.cursor >= t.n then t.cursor <- 0;
  let e = t.entries.(t.cursor) in
  t.cursor <- t.cursor + 1;
  e

(* a random second parent for splicing *)
let random_other t rng (not_id : int) : entry option =
  if t.n <= 1 then None
  else begin
    let rec pick tries =
      if tries = 0 then None
      else begin
        let e = t.entries.(Cdutil.Rng.int rng t.n) in
        if e.id <> not_id then Some e else pick (tries - 1)
      end
    in
    pick 4
  end

(* Energy: how many mutations a seed receives per visit.

   - small, fast seeds get more (AFL's favored heuristic);
   - seeds that opened many new coverage buckets get a novelty bonus
     proportional to how much they discovered;
   - seeds the differential oracle declared interesting get a divergence
     bonus (mutating near a divergence finds neighbouring ones);
   - seeds found in the recent half of the campaign's discoveries get an
     exploration bonus, so late finds are exercised before the cycle
     returns to the early corpus. *)
let energy t (e : entry) : int =
  let base = 16 in
  let size_bonus = if String.length e.data <= 16 then 8 else 0 in
  let speed_bonus = if e.fuel_used < 2_000 then 8 else 0 in
  let novelty_bonus = min 24 (4 * e.novelty) in
  let divergence_bonus = if e.divergent then 16 else 0 in
  let exploration_bonus =
    if t.latest_find > 0 && 2 * e.found_at >= t.latest_find then 8 else 0
  in
  base + size_bonus + speed_bonus + novelty_bonus + divergence_bonus
  + exploration_bonus

let to_list t = Array.to_list (Array.sub t.entries 0 t.n)
