(* Coverage-guided greybox fuzzing (the unhighlighted part of
   Algorithm 1), with an optional per-input oracle callback (the
   highlighted CompDiff part) and optional sanitizer hooks on the
   instrumented binary.

   The loop is AFL++'s: select a seed, mutate it, execute the
   instrumented build; save crashing inputs, keep coverage-increasing
   inputs as new seeds. Every generated input is also handed to
   [on_input], which CompDiff-AFL++ uses to run the differential
   binaries. *)

open Cdutil

type config = {
  seeds : string list;
  max_execs : int;
  fuel : int;
  rng_seed : int;
  det_bytes : int;
      (* AFL's deterministic stage, reduced: sweep all 256 values through
         the first [det_bytes] payload positions of every initial seed *)
  hooks : Cdvm.Hooks.t;            (* sanitizers on the fuzzing build *)
  on_input : (string -> interest) option;
      (* the CompDiff hook; [Interesting] force-adds the input to the
         queue even without new coverage (divergence-as-feedback, the
         NEZHA-style extension of the paper's Section 5) *)
}

and interest = Boring | Interesting

let default_config =
  {
    seeds = [ "" ];
    max_execs = 2_000;
    fuel = 100_000;
    rng_seed = 1;
    det_bytes = 2;
    hooks = Cdvm.Hooks.none;
    on_input = None;
  }

type crash = {
  crash_input : string;
  crash_status : Cdvm.Trap.status;
  at_exec : int;
}

type campaign = {
  execs : int;
  queue : Queue.entry list;
  crashes : crash list;
  edges_covered : int;
  san_reports : (string * string) list; (* input, report *)
}

type state = {
  target : Cdcompiler.Ir.unit_;
  image : Cdvm.Image.t;          (* target, linked once per campaign *)
  arena : Cdvm.Arena.t;          (* persistent-mode scratch, reset per exec *)
  cfg : config;
  rng : Rng.t;
  cov : Cdvm.Coverage.t;
  virgin : Bytes.t;
  queue : Queue.t;
  mutable execs : int;
  mutable crashes : crash list;
  mutable san_reports : (string * string) list;
  (* crash and sanitizer dedup are separate namespaces: a trap string
     and a sanitizer message that happen to collide (e.g. both render
     as "divide-by-zero") must not suppress each other's first report *)
  mutable crash_sigs : (string, unit) Hashtbl.t;
  mutable san_sigs : (string, unit) Hashtbl.t;
}

let execute st (input : string) : Cdvm.Exec.result * int =
  Cdvm.Coverage.reset st.cov;
  let r =
    Cdvm.Exec.run_linked
      ~config:
        {
          Cdvm.Exec.default_config with
          Cdvm.Exec.input;
          fuel = st.cfg.fuel;
          coverage = Some st.cov;
          observer = Cdvm.Observer.sanitize st.cfg.hooks;
        }
      ~arena:st.arena st.image
  in
  st.execs <- st.execs + 1;
  let novelty = Cdvm.Coverage.merge_count ~virgin:st.virgin st.cov in
  (r, novelty)

let process st (input : string) (r : Cdvm.Exec.result) ~(novelty : int) =
  (match r.Cdvm.Exec.status with
  | Cdvm.Trap.Trap t ->
    let sig_ = Cdvm.Trap.to_string t in
    if not (Hashtbl.mem st.crash_sigs sig_) then begin
      Hashtbl.add st.crash_sigs sig_ ();
      st.crashes <-
        { crash_input = input; crash_status = r.Cdvm.Exec.status; at_exec = st.execs }
        :: st.crashes
    end
  | Cdvm.Trap.San_report msg ->
    if not (Hashtbl.mem st.san_sigs msg) then begin
      Hashtbl.add st.san_sigs msg ();
      st.san_reports <- (input, msg) :: st.san_reports
    end
  | Cdvm.Trap.Exit _ | Cdvm.Trap.Hang -> ());
  (* the CompDiff hook: Algorithm 1 lines 9-12; a divergence-feedback
     oracle may declare the input interesting on its own *)
  let oracle_interest =
    match st.cfg.on_input with
    | Some f -> f input = Interesting
    | None -> false
  in
  if novelty > 0 || oracle_interest then
    ignore
      (Queue.add st.queue ~novelty ~divergent:oracle_interest ~data:input
         ~fuel_used:r.Cdvm.Exec.fuel_used ~found_at:st.execs)

let consider st (input : string) =
  let r, novelty = execute st input in
  process st input r ~novelty

(* Run a pre-computed input list as ONE VM batch on the campaign arena
   (amortized reset), replaying the per-exec bookkeeping in order from
   [on_each]: execs counter, virgin-map merge, crash/report dedup, queue
   updates and the oracle hook all see exactly the state they would have
   seen under sequential [consider] calls.  Only stages whose inputs do
   not depend on execution results may batch (seed import and the
   deterministic sweep); havoc mutations read the evolving queue and
   stay sequential. *)
let consider_batch st (inputs : string array) =
  if Array.length inputs > 0 then begin
    Cdvm.Coverage.reset st.cov;
    let config =
      {
        Cdvm.Exec.default_config with
        Cdvm.Exec.fuel = st.cfg.fuel;
        coverage = Some st.cov;
        observer = Cdvm.Observer.sanitize st.cfg.hooks;
      }
    in
    ignore
      (Cdvm.Exec.run_batch ~config ~arena:st.arena
         ~on_each:(fun i r ->
           st.execs <- st.execs + 1;
           let novelty = Cdvm.Coverage.merge_count ~virgin:st.virgin st.cov in
           process st inputs.(i) r ~novelty;
           Cdvm.Coverage.reset st.cov)
         st.image ~inputs)
  end

let run ?(config = default_config) (target : Cdcompiler.Ir.unit_) : campaign =
  (* an empty corpus is a valid configuration, not a crash: fall back to
     the empty input, exactly what AFL does with a null seed *)
  let seeds = match config.seeds with [] -> [ "" ] | l -> l in
  let image = Cdvm.Image.link target in
  let st =
    {
      target;
      image;
      arena = Cdvm.Arena.create image;
      cfg = config;
      rng = Rng.create config.rng_seed;
      cov = Cdvm.Coverage.create ();
      virgin = Bytes.make Cdvm.Coverage.size '\000';
      queue = Queue.create ();
      execs = 0;
      crashes = [];
      san_reports = [];
      crash_sigs = Hashtbl.create 16;
      san_sigs = Hashtbl.create 16;
    }
  in
  (* seed the queue (one VM batch: the corpus is fixed up front) *)
  consider_batch st (Array.of_list seeds);
  (* deterministic stage on the initial corpus: enumerate every byte value
     at the first few payload positions (position 0 is the record tag the
     corpus already covers).  The candidate set is input-independent, so
     it is generated up front, truncated to the exec budget (the batch
     runs exactly the candidates the sequential loop would have), and
     executed as one batch. *)
  let det_cands = ref [] in
  List.iter
    (fun s ->
      let n = String.length s in
      for pos = 1 to min config.det_bytes (n - 1) do
        for v = 0 to 255 do
          if s.[pos] <> Char.chr v then begin
            let b = Bytes.of_string s in
            Bytes.set b pos (Char.chr v);
            det_cands := Bytes.to_string b :: !det_cands
          end
        done
      done)
    seeds;
  let remaining = max 0 (config.max_execs - st.execs) in
  consider_batch st
    (Array.of_list
       (List.filteri (fun i _ -> i < remaining) (List.rev !det_cands)));
  if Queue.is_empty st.queue then
    (* ensure progress even if no seed increased coverage (e.g. duplicate
       seeds): keep the first one *)
    ignore (Queue.add st.queue ~data:(List.hd seeds) ~fuel_used:0 ~found_at:0);
  (* main loop *)
  while st.execs < config.max_execs do
    let seed = Queue.select st.queue in
    let energy = Queue.energy st.queue seed in
    let budget = min energy (config.max_execs - st.execs) in
    for _ = 1 to budget do
      let input =
        if Rng.int st.rng 4 = 0 then
          match Queue.random_other st.queue st.rng seed.Queue.id with
          | Some other -> Mutator.splice st.rng seed.Queue.data other.Queue.data
          | None -> Mutator.havoc st.rng seed.Queue.data
        else Mutator.havoc st.rng seed.Queue.data
      in
      consider st input
    done
  done;
  {
    execs = st.execs;
    queue = Queue.to_list st.queue;
    crashes = List.rev st.crashes;
    edges_covered =
      (let n = ref 0 in
       Bytes.iter (fun c -> if c <> '\000' then incr n) st.virgin;
       !n);
    san_reports = List.rev st.san_reports;
  }
