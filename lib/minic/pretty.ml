(* Pretty-printer: renders an AST back to MiniC concrete syntax.

   Used to dump generated Juliet-style programs for inspection and by the
   parser round-trip property tests ([parse (print p)] preserves meaning). *)

open Ast

let prec_of_binop = function
  | Mul | Div | Mod -> 9
  | Add | Sub -> 8
  | Shl | Shr -> 7
  | Lt | Le | Gt | Ge -> 6
  | Eq | Ne -> 5
  | Band -> 4
  | Bxor -> 3
  | Bor -> 2
  | Land -> 1
  | Lor -> 0

let binop_str = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | Shl -> "<<" | Shr -> ">>"
  | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | Eq -> "==" | Ne -> "!="
  | Band -> "&" | Bor -> "|" | Bxor -> "^"
  | Land -> "&&" | Lor -> "||"

let unop_str = function Neg -> "-" | Lnot -> "!" | Bnot -> "~"

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\000' -> Buffer.add_string buf "\\0"
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Floats must re-lex: the lexer only accepts [-]digits.digits (no
   exponent, no inf/nan), so %.17g output like "2.5e-05" would not
   round-trip. Finite values that %.17g cannot render lexably fall back
   to a full decimal expansion (exact for every double, then trailing
   zeros are stripped); non-finite values print as constant expressions
   with the same value. *)
let float_is_lexable s =
  let n = String.length s in
  let ok = ref (n > 0) and dot = ref (-1) in
  String.iteri
    (fun i c ->
      match c with
      | '0' .. '9' -> ()
      | '-' when i = 0 -> ()
      | '.' when !dot < 0 -> dot := i
      | _ -> ok := false)
    s;
  !ok && !dot > 0 && !dot < n - 1 && (s.[0] <> '-' || !dot > 1)

let strip_float_zeros s =
  let n = String.length s in
  match String.index_opt s '.' with
  | None -> s
  | Some d ->
    let e = ref (n - 1) in
    while !e > d + 1 && s.[!e] = '0' do decr e done;
    String.sub s 0 (!e + 1)

let finite_float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else
    let s = Printf.sprintf "%.17g" f in
    if float_is_lexable s then s
    else strip_float_zeros (Printf.sprintf "%.1074f" f)

(* [ctx] is the precedence of the surrounding operator; parentheses are
   emitted when the child binds less tightly. Levels: 12 primary,
   11 postfix (indexing), 10 prefix (unary operators, casts, negative
   literals), 9..0 binary operators, assignment lowest. *)
let rec pp_expr_prec ctx ppf e =
  let prec_wrap p body =
    if p < ctx then Format.fprintf ppf "(%t)" body else body ppf
  in
  match e.e with
  | EInt v ->
    prec_wrap (if v < 0L then 10 else 12) (fun ppf -> Format.fprintf ppf "%Ld" v)
  | ELong v ->
    prec_wrap (if v < 0L then 10 else 12) (fun ppf -> Format.fprintf ppf "%LdL" v)
  | EFloat f ->
    if Float.is_nan f then
      Format.pp_print_string ppf "(0.0 / 0.0)"
    else if f = Float.infinity then Format.pp_print_string ppf "(1.0 / 0.0)"
    else if f = Float.neg_infinity then
      Format.pp_print_string ppf "(-1.0 / 0.0)"
    else
      prec_wrap
        (if Float.sign_bit f then 10 else 12)
        (fun ppf -> Format.pp_print_string ppf (finite_float_repr f))
  | EStr s -> Format.fprintf ppf "\"%s\"" (escape_string s)
  | EVar v -> Format.pp_print_string ppf v
  | ELine -> Format.pp_print_string ppf "__LINE__"
  | EUnop (Neg, a) when starts_with_minus a ->
    (* "-" before an operand that renders with a leading "-" would lex
       as the "--" token: force parentheses *)
    prec_wrap 10 (fun ppf -> Format.fprintf ppf "-(%a)" (pp_expr_prec 0) a)
  | EUnop (op, a) ->
    prec_wrap 10 (fun ppf ->
        Format.fprintf ppf "%s%a" (unop_str op) (pp_expr_prec 10) a)
  | EBinop (op, a, b) ->
    let p = prec_of_binop op in
    prec_wrap p (fun ppf ->
        Format.fprintf ppf "%a %s %a" (pp_expr_prec p) a (binop_str op)
          (pp_expr_prec (p + 1)) b)
  | ECall (f, args) ->
    Format.fprintf ppf "%s(%a)" f
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         (pp_expr_prec 0))
      args
  | EIndex (a, i) ->
    (* postfix binds tighter than prefix: the base must render at
       postfix level, or indexing a dereference would print as
       "*p[i]", which re-parses with the index under the star *)
    prec_wrap 11 (fun ppf ->
        Format.fprintf ppf "%a[%a]" (pp_expr_prec 11) a (pp_expr_prec 0) i)
  | EDeref a ->
    prec_wrap 10 (fun ppf -> Format.fprintf ppf "*%a" (pp_expr_prec 10) a)
  | EAddr a ->
    prec_wrap 10 (fun ppf -> Format.fprintf ppf "&%a" (pp_expr_prec 10) a)
  | EAssign (l, r) ->
    let body ppf =
      Format.fprintf ppf "%a = %a" (pp_expr_prec 10) l (pp_expr_prec 0) r
    in
    if ctx > 0 then Format.fprintf ppf "(%t)" body else body ppf
  | ECast (t, a) ->
    prec_wrap 10 (fun ppf ->
        Format.fprintf ppf "(%a) %a" pp_typ t (pp_expr_prec 10) a)
  | ECond (c, t, f) ->
    Format.fprintf ppf "(%a ? %a : %a)" (pp_expr_prec 1) c (pp_expr_prec 0) t
      (pp_expr_prec 0) f

and starts_with_minus e =
  match e.e with
  | EUnop (Neg, _) -> true
  | EInt v | ELong v -> v < 0L
  | EFloat f -> f = Float.neg_infinity || (not (Float.is_nan f)) && Float.sign_bit f
  | _ -> false

let pp_expr ppf e = pp_expr_prec 0 ppf e

let rec base_and_array = function
  | Tarr (t, n) ->
    let base, dims = base_and_array t in
    (base, n :: dims)
  | t -> (t, [])

let pp_decl_head ppf (t, name) =
  let base, dims = base_and_array t in
  Format.fprintf ppf "%a %s" pp_typ base name;
  List.iter (fun n -> Format.fprintf ppf "[%d]" n) dims

let rec pp_stmt indent ppf st =
  let pad = String.make indent ' ' in
  match st.s with
  | SExpr e -> Format.fprintf ppf "%s%a;" pad pp_expr e
  | SDecl d ->
    Format.fprintf ppf "%s%s%a" pad
      (if d.dstatic then "static " else "")
      pp_decl_head (d.dtyp, d.dname);
    (match d.dinit with
    | Some e -> Format.fprintf ppf " = %a;" pp_expr e
    | None -> Format.fprintf ppf ";")
  | SIf (c, t, []) ->
    Format.fprintf ppf "%sif (%a) {\n%a\n%s}" pad pp_expr c (pp_block (indent + 2)) t pad
  | SIf (c, t, f) ->
    Format.fprintf ppf "%sif (%a) {\n%a\n%s} else {\n%a\n%s}" pad pp_expr c
      (pp_block (indent + 2)) t pad (pp_block (indent + 2)) f pad
  | SWhile (c, b) ->
    Format.fprintf ppf "%swhile (%a) {\n%a\n%s}" pad pp_expr c (pp_block (indent + 2)) b pad
  | SReturn None -> Format.fprintf ppf "%sreturn;" pad
  | SReturn (Some e) -> Format.fprintf ppf "%sreturn %a;" pad pp_expr e
  | SBreak -> Format.fprintf ppf "%sbreak;" pad
  | SContinue -> Format.fprintf ppf "%scontinue;" pad
  | SPrint (fmt, []) -> Format.fprintf ppf "%sprint(\"%s\");" pad (escape_string fmt)
  | SPrint (fmt, args) ->
    Format.fprintf ppf "%sprint(\"%s\", %a);" pad (escape_string fmt)
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         pp_expr)
      args
  | SBlock b -> Format.fprintf ppf "%s{\n%a\n%s}" pad (pp_block (indent + 2)) b pad

and pp_block indent ppf stmts =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "\n")
    (pp_stmt indent) ppf stmts

let pp_func ppf f =
  let pp_params ppf = function
    | [] -> Format.pp_print_string ppf "void"
    | ps ->
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
        (fun ppf (t, n) -> pp_decl_head ppf (t, n))
        ppf ps
  in
  Format.fprintf ppf "%a %s(%a) {\n%a\n}" pp_typ f.fret f.fname pp_params f.params
    (pp_block 2) f.body

let pp_global ppf g =
  pp_decl_head ppf (g.gtyp, g.gname);
  match g.ginit with
  | [] -> Format.fprintf ppf ";"
  | [ v ] -> Format.fprintf ppf " = %Ld;" v
  | vs ->
    Format.fprintf ppf " = {%s};" (String.concat ", " (List.map Int64.to_string vs))

let pp_program ppf p =
  List.iter (fun g -> Format.fprintf ppf "%a\n" pp_global g) p.globals;
  if p.globals <> [] then Format.pp_print_newline ppf ();
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "\n\n")
    pp_func ppf p.funcs

let program_to_string p = Format.asprintf "%a\n" pp_program p
let expr_to_string e = Format.asprintf "%a" pp_expr e
let stmt_to_string s = Format.asprintf "%a" (pp_stmt 0) s

(* Typed programs print through erasure: what you see is the MiniC
   source whose re-elaboration is the typed program (used to dump the
   metamorphic twins for inspection). *)
let pp_tprogram ppf tp = pp_program ppf (Tast.erase_program tp)
let tprogram_to_string tp = Format.asprintf "%a\n" pp_tprogram tp
